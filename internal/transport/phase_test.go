package transport

import (
	"fmt"
	"sync"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/wire"
)

// TestPhasePerEdgeFIFO is the ordering property of the fabric's parallel
// phase mode, run under -race: many sender goroutines (one per endpoint, as
// in the cluster's worker pool) send numbered messages to several
// destinations concurrently inside a phase. After the merge, every edge
// (sender, destination) must deliver its messages in exactly the sender's
// program order — distinct edges may interleave freely, one edge never
// reorders.
func TestPhasePerEdgeFIFO(t *testing.T) {
	const (
		senders = 6
		dests   = 3
		perEdge = 40
	)
	net := NewNetwork(1)
	type edge struct{ from, to ids.NodeID }
	var mu sync.Mutex
	got := make(map[edge][]uint64)

	var allSenders, allDests []ids.NodeID
	for s := 0; s < senders; s++ {
		allSenders = append(allSenders, ids.NodeID(fmt.Sprintf("S%d", s)))
	}
	for d := 0; d < dests; d++ {
		allDests = append(allDests, ids.NodeID(fmt.Sprintf("D%d", d)))
	}
	for _, d := range allDests {
		to := d
		net.Endpoint(to).SetHandler(func(from ids.NodeID, msg wire.Message) []Envelope {
			mu.Lock()
			got[edge{from, to}] = append(got[edge{from, to}], msg.(*wire.HughesStamp).Stamp)
			mu.Unlock()
			return nil
		})
	}

	eps := make([]*InprocEndpoint, senders)
	for i, s := range allSenders {
		eps[i] = net.Endpoint(s)
	}

	net.BeginPhase()
	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(ep *InprocEndpoint, i int) {
			defer wg.Done()
			// Interleave destinations so each edge's sends are spread across
			// the sender's whole outbox, not contiguous runs.
			for k := 0; k < perEdge; k++ {
				for d := 0; d < dests; d++ {
					to := allDests[(d+i)%dests]
					if err := ep.Send(to, &wire.HughesStamp{Stamp: uint64(k)}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(eps[i], i)
	}
	wg.Wait()
	if net.Pending() != 0 {
		t.Fatalf("phase sends leaked into the queue: %d pending", net.Pending())
	}
	net.EndPhase()
	want := senders * dests * perEdge
	if net.Pending() != want {
		t.Fatalf("merged %d messages, want %d", net.Pending(), want)
	}
	net.Drain(0)

	if len(got) != senders*dests {
		t.Fatalf("saw %d edges, want %d", len(got), senders*dests)
	}
	for e, stamps := range got {
		if len(stamps) != perEdge {
			t.Fatalf("edge %s->%s delivered %d messages, want %d", e.from, e.to, len(stamps), perEdge)
		}
		for k, s := range stamps {
			if s != uint64(k) {
				t.Fatalf("edge %s->%s reordered: position %d carries stamp %d", e.from, e.to, k, s)
			}
		}
	}
}

// TestPhaseDistinctEdgesInterleave pins the other half of the contract: the
// canonical merge orders whole sender outboxes by sender id, so messages on
// distinct edges DO interleave relative to wall-clock send order — the
// fabric promises per-edge FIFO, not a global total order of send times.
func TestPhaseDistinctEdgesInterleave(t *testing.T) {
	net := NewNetwork(1)
	var order []string
	net.Endpoint("D").SetHandler(func(from ids.NodeID, msg wire.Message) []Envelope {
		order = append(order, fmt.Sprintf("%s:%d", from, msg.(*wire.HughesStamp).Stamp))
		return nil
	})
	a, b := net.Endpoint("A"), net.Endpoint("B")

	net.BeginPhase()
	// Wall-clock order: B:0, A:0, B:1, A:1 — but the merge is canonical.
	_ = b.Send("D", &wire.HughesStamp{Stamp: 0})
	_ = a.Send("D", &wire.HughesStamp{Stamp: 0})
	_ = b.Send("D", &wire.HughesStamp{Stamp: 1})
	_ = a.Send("D", &wire.HughesStamp{Stamp: 1})
	net.EndPhase()
	net.Drain(0)

	want := []string{"A:0", "A:1", "B:0", "B:1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("delivery order %v, want canonical %v", order, want)
	}
}

// TestPhaseReusableAcrossRounds checks the per-edge sequence counters and
// outboxes survive BeginPhase/EndPhase cycles (a cluster runs two phases per
// GC round, forever).
func TestPhaseReusableAcrossRounds(t *testing.T) {
	net := NewNetwork(1)
	delivered := 0
	net.Endpoint("D").SetHandler(func(ids.NodeID, wire.Message) []Envelope {
		delivered++
		return nil
	})
	ep := net.Endpoint("A")
	for round := 0; round < 5; round++ {
		net.BeginPhase()
		for k := 0; k < 3; k++ {
			if err := ep.Send("D", &wire.HughesStamp{Stamp: uint64(k)}); err != nil {
				t.Fatal(err)
			}
		}
		net.EndPhase()
		net.Drain(0)
	}
	if delivered != 15 {
		t.Fatalf("delivered %d, want 15", delivered)
	}
}

// TestPhaseNestedBeginPanics pins the misuse guards.
func TestPhaseNestedBeginPanics(t *testing.T) {
	net := NewNetwork(1)
	net.BeginPhase()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested BeginPhase did not panic")
			}
		}()
		net.BeginPhase()
	}()
	net.EndPhase()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EndPhase without BeginPhase did not panic")
			}
		}()
		net.EndPhase()
	}()
}
