package transport

import (
	"sync"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/wire"
)

func ping(seq uint64) wire.Message {
	return &wire.HughesThreshold{Threshold: seq}
}

func TestInprocDelivery(t *testing.T) {
	net := NewNetwork(1)
	a := net.Endpoint("A")
	b := net.Endpoint("B")
	var got []uint64
	var from []ids.NodeID
	b.SetHandler(func(f ids.NodeID, m wire.Message) []Envelope {
		from = append(from, f)
		got = append(got, m.(*wire.HughesThreshold).Threshold)
		return nil
	})
	for i := uint64(1); i <= 3; i++ {
		if err := a.Send("B", ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	if net.Pending() != 3 {
		t.Fatalf("Pending = %d", net.Pending())
	}
	n := net.Drain(0)
	if n != 3 || len(got) != 3 {
		t.Fatalf("delivered %d, handler saw %d", n, len(got))
	}
	// FIFO without faults.
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("out of order: %v", got)
		}
	}
	if from[0] != "A" {
		t.Fatalf("from = %v", from)
	}
}

func TestInprocEndpointIdentity(t *testing.T) {
	net := NewNetwork(1)
	a1 := net.Endpoint("A")
	a2 := net.Endpoint("A")
	if a1 != a2 {
		t.Fatal("Endpoint not idempotent per node")
	}
	if a1.Self() != "A" {
		t.Fatalf("Self = %s", a1.Self())
	}
}

func TestInprocHandlerMaySend(t *testing.T) {
	// A handler returning send effects extends the drain (transitive
	// quiescence): A -> B -> C.
	net := NewNetwork(1)
	a, b, c := net.Endpoint("A"), net.Endpoint("B"), net.Endpoint("C")
	_, _ = a, b
	var final uint64
	b.SetHandler(func(_ ids.NodeID, m wire.Message) []Envelope {
		return []Envelope{{To: "C", Msg: ping(m.(*wire.HughesThreshold).Threshold + 1)}}
	})
	c.SetHandler(func(_ ids.NodeID, m wire.Message) []Envelope {
		final = m.(*wire.HughesThreshold).Threshold
		return nil
	})
	if err := net.Endpoint("A").Send("B", ping(10)); err != nil {
		t.Fatal(err)
	}
	net.Drain(0)
	if final != 11 {
		t.Fatalf("final = %d", final)
	}
}

func TestInprocDropWithoutHandler(t *testing.T) {
	net := NewNetwork(1)
	a := net.Endpoint("A")
	net.Endpoint("B") // no handler installed
	if err := a.Send("B", ping(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("Z", ping(2)); err != nil { // no such endpoint at all
		t.Fatal(err)
	}
	net.Drain(0)
	_, delivered, dropped := net.Counts()
	if delivered[wire.KindHughesThreshold] != 0 {
		t.Fatal("message delivered to handler-less endpoint")
	}
	if dropped[wire.KindHughesThreshold] != 2 {
		t.Fatalf("dropped = %d, want 2", dropped[wire.KindHughesThreshold])
	}
}

func TestInprocLoss(t *testing.T) {
	net := NewNetwork(7)
	net.SetFaults(Faults{LossRate: 1.0})
	a, b := net.Endpoint("A"), net.Endpoint("B")
	count := 0
	b.SetHandler(func(ids.NodeID, wire.Message) []Envelope { count++; return nil })
	for i := 0; i < 10; i++ {
		if err := a.Send("B", ping(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Drain(0)
	if count != 0 {
		t.Fatalf("delivered %d with LossRate 1.0", count)
	}
	sent, _, dropped := net.Counts()
	if sent[wire.KindHughesThreshold] != 10 || dropped[wire.KindHughesThreshold] != 10 {
		t.Fatalf("sent=%v dropped=%v", sent, dropped)
	}
}

func TestInprocDuplication(t *testing.T) {
	net := NewNetwork(7)
	net.SetFaults(Faults{DupRate: 1.0})
	a, b := net.Endpoint("A"), net.Endpoint("B")
	count := 0
	b.SetHandler(func(ids.NodeID, wire.Message) []Envelope { count++; return nil })
	for i := 0; i < 5; i++ {
		if err := a.Send("B", ping(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Drain(0)
	if count != 10 {
		t.Fatalf("delivered %d with DupRate 1.0, want 10", count)
	}
}

func TestInprocReorderIsPermutation(t *testing.T) {
	net := NewNetwork(99)
	net.SetFaults(Faults{ReorderRate: 1.0})
	a, b := net.Endpoint("A"), net.Endpoint("B")
	var got []uint64
	b.SetHandler(func(_ ids.NodeID, m wire.Message) []Envelope {
		got = append(got, m.(*wire.HughesThreshold).Threshold)
		return nil
	})
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send("B", ping(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Drain(0)
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	seen := make(map[uint64]bool)
	inOrder := true
	for i, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
		if v != uint64(i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("reorder fault produced strictly FIFO delivery for 50 messages")
	}
}

func TestInprocFaultsAffectsFilter(t *testing.T) {
	net := NewNetwork(7)
	net.SetFaults(Faults{LossRate: 1.0, Affects: []wire.Kind{wire.KindCDM}})
	a, b := net.Endpoint("A"), net.Endpoint("B")
	count := 0
	b.SetHandler(func(ids.NodeID, wire.Message) []Envelope { count++; return nil })
	// Non-CDM traffic is unaffected by the fault plan.
	if err := a.Send("B", ping(1)); err != nil {
		t.Fatal(err)
	}
	// CDM traffic is lost.
	if err := a.Send("B", &wire.CDM{}); err != nil {
		t.Fatal(err)
	}
	net.Drain(0)
	if count != 1 {
		t.Fatalf("delivered %d, want only the non-CDM message", count)
	}
}

func TestInprocDeterministicWithSeed(t *testing.T) {
	run := func() []uint64 {
		net := NewNetwork(1234)
		net.SetFaults(Faults{LossRate: 0.3, DupRate: 0.2, ReorderRate: 0.5})
		a, b := net.Endpoint("A"), net.Endpoint("B")
		var got []uint64
		b.SetHandler(func(_ ids.NodeID, m wire.Message) []Envelope {
			got = append(got, m.(*wire.HughesThreshold).Threshold)
			return nil
		})
		for i := 0; i < 30; i++ {
			_ = a.Send("B", ping(uint64(i)))
		}
		net.Drain(0)
		return got
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("non-deterministic lengths: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("non-deterministic order at %d", i)
		}
	}
}

func TestInprocDrainLimit(t *testing.T) {
	net := NewNetwork(1)
	a, b := net.Endpoint("A"), net.Endpoint("B")
	b.SetHandler(func(ids.NodeID, wire.Message) []Envelope { return nil })
	for i := 0; i < 10; i++ {
		_ = a.Send("B", ping(uint64(i)))
	}
	if n := net.Drain(4); n != 4 {
		t.Fatalf("Drain(4) = %d", n)
	}
	if net.Pending() != 6 {
		t.Fatalf("Pending = %d", net.Pending())
	}
}

func TestInprocBytesSentAccounting(t *testing.T) {
	net := NewNetwork(1)
	a := net.Endpoint("A")
	net.Endpoint("B").SetHandler(func(ids.NodeID, wire.Message) []Envelope { return nil })
	msg := ping(300)
	if err := a.Send("B", msg); err != nil {
		t.Fatal(err)
	}
	if got, want := net.BytesSent(), uint64(len(wire.Encode(msg))); got != want {
		t.Fatalf("BytesSent = %d, want %d", got, want)
	}
}

func TestInprocNilMessageRejected(t *testing.T) {
	net := NewNetwork(1)
	if err := net.Endpoint("A").Send("B", nil); err == nil {
		t.Fatal("nil message accepted")
	}
}

func TestInprocCloseStopsDelivery(t *testing.T) {
	net := NewNetwork(1)
	a, b := net.Endpoint("A"), net.Endpoint("B")
	count := 0
	b.SetHandler(func(ids.NodeID, wire.Message) []Envelope { count++; return nil })
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	_ = a.Send("B", ping(1))
	net.Drain(0)
	if count != 0 {
		t.Fatal("closed endpoint received a message")
	}
}

func TestInprocConcurrentSends(t *testing.T) {
	// Send is safe from many goroutines (the TCP-backed node does this).
	net := NewNetwork(1)
	a, b := net.Endpoint("A"), net.Endpoint("B")
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(ids.NodeID, wire.Message) []Envelope {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.Send("B", ping(uint64(i)))
			}
		}()
	}
	wg.Wait()
	net.Drain(0)
	if count != 800 {
		t.Fatalf("delivered %d, want 800", count)
	}
}
