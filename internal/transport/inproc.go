package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dgc/internal/ids"
	"dgc/internal/obs"
	"dgc/internal/wire"
)

// Faults configures the in-process fabric's fault injection. All randomness
// derives from the seeded generator of the owning Network, so runs are
// reproducible.
type Faults struct {
	// LossRate is the probability in [0,1] that a message is dropped.
	LossRate float64
	// DupRate is the probability that a message is enqueued twice.
	DupRate float64
	// ReorderRate is the probability that a message is inserted at a random
	// queue position instead of the tail.
	ReorderRate float64
	// Affects restricts fault injection to messages of the given kinds;
	// empty means all kinds are affected.
	Affects []wire.Kind
}

func (f Faults) affects(k wire.Kind) bool {
	if len(f.Affects) == 0 {
		return true
	}
	for _, a := range f.Affects {
		if a == k {
			return true
		}
	}
	return false
}

type envelope struct {
	from, to ids.NodeID
	msg      wire.Message
}

// phaseEnv is one send captured during a phase: the envelope plus its
// per-edge (sender→receiver) sequence number. The stamps make the FIFO
// contract explicit — EndPhase verifies each edge's stamps are strictly
// increasing while it merges.
type phaseEnv struct {
	env envelope
	seq uint64
}

// Network is the deterministic in-memory fabric. Messages are queued on
// Send and delivered when the owner pumps with Step or Drain; handlers run
// inline in the pumping goroutine and may Send further messages.
type Network struct {
	mu        sync.Mutex
	endpoints map[ids.NodeID]*InprocEndpoint
	queue     []envelope
	faults    Faults
	rng       *rand.Rand

	// inPhase, when set, diverts endpoint sends into the endpoints' own
	// outboxes instead of the shared queue. See BeginPhase. Checked
	// lock-free on every Send so the flag costs nothing outside phases.
	inPhase atomic.Bool

	// Stats, guarded by mu.
	sent      map[wire.Kind]uint64
	delivered map[wire.Kind]uint64
	dropped   map[wire.Kind]uint64
	bytes     uint64 // encoded size of sent messages (accounting only)

	// met, when non-nil, mirrors the fabric counters into an observability
	// instrument block (one block for the whole fabric). Guarded by mu.
	met *obs.TransportMetrics
}

// NewNetwork returns a fabric seeded for reproducible fault injection.
func NewNetwork(seed int64) *Network {
	return &Network{
		endpoints: make(map[ids.NodeID]*InprocEndpoint),
		rng:       rand.New(rand.NewSource(seed)),
		sent:      make(map[wire.Kind]uint64),
		delivered: make(map[wire.Kind]uint64),
		dropped:   make(map[wire.Kind]uint64),
	}
}

// SetFaults installs the fault plan. Safe to call between pumping rounds.
func (n *Network) SetFaults(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// SetMetrics mirrors the fabric's counters into a transport instrument block
// (nil disables). Safe to call between pumping rounds.
func (n *Network) SetMetrics(tm *obs.TransportMetrics) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.met = tm
}

// Endpoint returns (creating if needed) the endpoint for the given node.
func (n *Network) Endpoint(id ids.NodeID) *InprocEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &InprocEndpoint{net: n, self: id}
	n.endpoints[id] = ep
	return ep
}

// Pending returns the number of queued, undelivered messages.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Step delivers one message. It reports whether a message was delivered
// (false when the queue is empty or the destination has no handler — the
// message is then dropped, like a datagram to a dead process).
func (n *Network) Step() bool {
	n.mu.Lock()
	if len(n.queue) == 0 {
		n.mu.Unlock()
		return false
	}
	env := n.queue[0]
	n.queue = n.queue[1:]
	ep := n.endpoints[env.to]
	var h Handler
	if ep != nil {
		h = ep.handler()
	}
	if h == nil {
		n.dropped[env.msg.Kind()]++
		if n.met != nil {
			n.met.MsgsDropped.Inc()
		}
		n.mu.Unlock()
		return false
	}
	n.delivered[env.msg.Kind()]++
	if n.met != nil {
		n.met.MsgsReceived.Inc()
	}
	n.mu.Unlock()

	// Deliver outside the lock. The handler returns its response sends as
	// effects; they are enqueued here, after it returns, in the order the
	// handler produced them — the same queue evolution as the historical
	// re-entrant-Send contract, so schedules (and the fault-RNG stream)
	// are unchanged.
	for _, o := range h(env.from, env.msg) {
		_ = n.send(env.to, o.To, o.Msg)
	}
	return true
}

// Drain pumps until the queue is empty or limit messages have been
// delivered (limit <= 0 means no limit). Returns the number of deliveries.
// Handlers sending new messages extend the drain, so Drain reaches global
// quiescence.
func (n *Network) Drain(limit int) int {
	delivered := 0
	for n.Pending() > 0 {
		if limit > 0 && delivered >= limit {
			break
		}
		if n.Step() {
			delivered++
		}
	}
	return delivered
}

// Counts reports per-kind sent/delivered/dropped counters.
func (n *Network) Counts() (sent, delivered, dropped map[wire.Kind]uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return cloneCounts(n.sent), cloneCounts(n.delivered), cloneCounts(n.dropped)
}

// BytesSent reports the total encoded size of all sent messages (including
// dropped ones): the traffic the protocol would put on a real network.
func (n *Network) BytesSent() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytes
}

func cloneCounts(m map[wire.Kind]uint64) map[wire.Kind]uint64 {
	out := make(map[wire.Kind]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// BeginPhase switches the fabric into phase mode: until EndPhase, each
// endpoint captures its own sends locally, stamped with per-edge
// (sender→receiver) sequence numbers, instead of entering the shared queue —
// so sends from different nodes never serialize against each other. Phase
// mode is how the cluster keeps concurrent senders deterministic: fault
// randomness and queue order are decided at EndPhase by a canonical merge,
// not by goroutine scheduling. Messages are never delivered while a phase is
// open (delivery only happens in Step/Drain, which the owner calls between
// phases).
//
// The caller must ensure every phase send has returned before calling
// EndPhase (the cluster's worker-pool barrier does); sends racing the
// transition are a misuse.
func (n *Network) BeginPhase() {
	if !n.inPhase.CompareAndSwap(false, true) {
		panic("transport: BeginPhase while a phase is open")
	}
}

// EndPhase closes the phase and merges every endpoint's captured sends into
// the queue: senders in canonical (sorted node id) order, each sender's
// sends in production order — which is exactly per-edge sequence order, an
// invariant EndPhase verifies against the stamps. Each send runs through the
// normal path — accounting, fault injection, enqueue — so the queue contents
// and the fault-randomness stream are bit-identical to running the senders
// sequentially in canonical order.
func (n *Network) EndPhase() {
	if !n.inPhase.CompareAndSwap(true, false) {
		panic("transport: EndPhase without BeginPhase")
	}
	n.mu.Lock()
	eps := make([]*InprocEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].self < eps[j].self })

	for _, ep := range eps {
		ep.outMu.Lock()
		outbox := ep.outbox
		ep.outbox = nil
		ep.outMu.Unlock()
		if len(outbox) == 0 {
			continue
		}
		n.mu.Lock()
		lastSeq := make(map[ids.NodeID]uint64, 4)
		for _, pe := range outbox {
			if last, dup := lastSeq[pe.env.to]; dup && pe.seq <= last {
				n.mu.Unlock()
				panic(fmt.Sprintf("transport: per-edge FIFO violation %s->%s (seq %d after %d)",
					pe.env.from, pe.env.to, pe.seq, last))
			}
			lastSeq[pe.env.to] = pe.seq
			n.sendLocked(pe.env.from, pe.env.to, pe.env.msg)
		}
		n.mu.Unlock()
	}
}

func (n *Network) send(from, to ids.NodeID, msg wire.Message) error {
	if msg == nil {
		return fmt.Errorf("transport: nil message")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sendLocked(from, to, msg)
	return nil
}

// sendLocked runs one send through accounting, fault injection and the
// queue. Caller holds mu.
func (n *Network) sendLocked(from, to ids.NodeID, msg wire.Message) {
	n.sent[msg.Kind()]++
	size := uint64(wire.EncodedSize(msg))
	n.bytes += size
	if n.met != nil {
		n.met.MsgsSent.Inc()
		n.met.BytesSent.Add(size)
	}

	if n.faults.affects(msg.Kind()) {
		if n.faults.LossRate > 0 && n.rng.Float64() < n.faults.LossRate {
			n.dropped[msg.Kind()]++
			if n.met != nil {
				n.met.MsgsDropped.Inc()
			}
			return // silently lost, as on a real network
		}
		copies := 1
		if n.faults.DupRate > 0 && n.rng.Float64() < n.faults.DupRate {
			copies = 2
		}
		for i := 0; i < copies; i++ {
			n.enqueue(envelope{from: from, to: to, msg: msg})
		}
		return
	}
	n.enqueue(envelope{from: from, to: to, msg: msg})
}

// enqueue appends or, under the reorder fault, inserts at a random position.
// Caller holds mu.
func (n *Network) enqueue(env envelope) {
	if n.faults.affects(env.msg.Kind()) && n.faults.ReorderRate > 0 && n.rng.Float64() < n.faults.ReorderRate && len(n.queue) > 0 {
		pos := n.rng.Intn(len(n.queue) + 1)
		n.queue = append(n.queue, envelope{})
		copy(n.queue[pos+1:], n.queue[pos:])
		n.queue[pos] = env
		return
	}
	n.queue = append(n.queue, env)
}

// InprocEndpoint attaches one node to a Network.
type InprocEndpoint struct {
	net  *Network
	self ids.NodeID

	mu sync.Mutex
	h  Handler

	// outMu guards the phase outbox and per-edge sequence counters. During
	// a phase only this node's own worker sends through the endpoint, so
	// the lock is uncontended — the point of phase mode is that senders on
	// different nodes share no state at all.
	outMu   sync.Mutex
	outbox  []phaseEnv
	edgeSeq map[ids.NodeID]uint64
}

var _ Endpoint = (*InprocEndpoint)(nil)

// Self implements Endpoint.
func (e *InprocEndpoint) Self() ids.NodeID { return e.self }

// Send implements Endpoint. While the fabric is in phase mode the send is
// captured in this endpoint's outbox with the next sequence number for the
// (self, to) edge; otherwise it goes straight to the shared queue.
func (e *InprocEndpoint) Send(to ids.NodeID, msg wire.Message) error {
	if e.net.inPhase.Load() {
		if msg == nil {
			return fmt.Errorf("transport: nil message")
		}
		e.outMu.Lock()
		if e.edgeSeq == nil {
			e.edgeSeq = make(map[ids.NodeID]uint64)
		}
		e.edgeSeq[to]++
		e.outbox = append(e.outbox, phaseEnv{
			env: envelope{from: e.self, to: to, msg: msg},
			seq: e.edgeSeq[to],
		})
		e.outMu.Unlock()
		return nil
	}
	return e.net.send(e.self, to, msg)
}

// SetHandler implements Endpoint.
func (e *InprocEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.h = h
}

func (e *InprocEndpoint) handler() Handler {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.h
}

// Close implements Endpoint: the endpoint stops receiving (its queue entries
// are dropped at delivery time).
func (e *InprocEndpoint) Close() error {
	e.SetHandler(nil)
	return nil
}
