// Package transport moves wire messages between processes.
//
// Two implementations are provided:
//
//   - Network / inproc endpoints: a deterministic in-memory message fabric
//     for simulation, with seeded fault injection (loss, duplication,
//     reordering, per-kind filters) and explicit pumping so tests are
//     reproducible;
//   - TCP endpoints: real sockets with length-prefixed frames, one process
//     per node, for the distributed deployment (cmd/dgc-node).
//
// Both deliver through the same Handler interface, so every layer above is
// transport-agnostic.
//
// Delivery follows an effect contract: a handler does not call Send while
// it runs — it returns the messages it wants transmitted, and the transport
// performs those sends after the handler has returned. This keeps handlers
// pure with respect to the transport (no re-entrant sends from the delivery
// context) and is what lets the node layer run as a state machine whose
// outputs are explicit effect lists.
package transport

import (
	"dgc/internal/ids"
	"dgc/internal/wire"
)

// Envelope pairs a destination with a message: the effect form of a send.
type Envelope struct {
	To  ids.NodeID
	Msg wire.Message
}

// Handler consumes one delivered message and returns the messages the
// receiving node wants transmitted in response (nil when there are none).
// The transport performs those sends on the node's behalf after the handler
// returns; implementations must not call Endpoint.Send from within the
// handler (that would re-enter the transport from its own delivery
// context). Ownership of the returned slice passes to the transport.
//
// Implementations must be safe for calls from the transport's delivery
// context (the pumping goroutine for inproc, a connection-reader goroutine
// for TCP).
type Handler func(from ids.NodeID, msg wire.Message) []Envelope

// Stager is implemented by transports that can coalesce a burst of sends:
// between BeginStage and the matching FlushStage, messages are collected and
// shipped together (the TCP endpoint packs them into batch frames, one per
// peer). Layers that produce send bursts (a node's GC tick, a batched
// delivery) type-assert their transport against Stager and bracket the burst
// when it is available. The in-process fabric does not implement Stager: its
// deterministic parallel mode is the Network's BeginPhase/EndPhase per-edge
// sequencing, driven by the cluster, not by individual nodes.
type Stager interface {
	BeginStage()
	FlushStage()
}

// Endpoint is one node's attachment to a transport.
type Endpoint interface {
	// Self returns the node this endpoint belongs to.
	Self() ids.NodeID
	// Send queues msg for delivery to the destination node. Send never
	// blocks on the destination; delivery is asynchronous and may fail
	// silently (the whole protocol stack tolerates message loss).
	Send(to ids.NodeID, msg wire.Message) error
	// SetHandler installs the delivery callback. Must be called before any
	// message can be delivered to this endpoint.
	SetHandler(h Handler)
	// Close detaches the endpoint.
	Close() error
}
