package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dgc/internal/ids"
	"dgc/internal/obs"
	"dgc/internal/wire"
)

// maxFrame bounds a single TCP frame; snapshots are never shipped whole, so
// protocol messages stay small.
const maxFrame = 16 << 20

// batchChunk bounds the encoded size of one staged batch: a GC round's
// traffic to one peer is split into frames of roughly this size, keeping
// per-frame memory and receiver latency bounded while still amortizing the
// syscall and framing cost over many messages.
const batchChunk = 256 << 10

// Dial backoff tuning: after a failed dial the peer is quarantined for
// dialBackoffBase doubling per consecutive failure up to dialBackoffMax,
// with ±50% jitter so a partitioned cluster does not thundering-herd one
// recovering process. Sends during the quarantine fail fast instead of
// re-dialing — a dead peer costs one connect attempt per backoff window,
// not one per CDM.
const (
	dialBackoffBase = 5 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

// peerConn is an established outbound connection with its buffered writer.
// The bufio layer coalesces the 4-byte header, envelope and body writes of a
// frame (and, in staged mode, whole frame runs) into single syscalls.
type peerConn struct {
	c  net.Conn
	bw *bufio.Writer
}

// dialState tracks reconnect backoff for one peer.
type dialState struct {
	failures int
	until    time.Time // quarantine deadline; zero when healthy
}

// framePool recycles frame build buffers across sends.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// TCPEndpoint is a real-socket endpoint: it listens for inbound frames and
// dials peers on demand. Frames are 4-byte big-endian length prefixed wire
// envelopes: sender name followed by the encoded message.
//
// TCPEndpoint implements Stager: between BeginStage and FlushStage, sends
// are collected per destination and shipped as one wire.Batch frame per
// peer (chunked at batchChunk), so a GC round costs one syscall per peer
// instead of one per CDM.
type TCPEndpoint struct {
	self ids.NodeID

	mu       sync.Mutex
	h        Handler
	peers    map[ids.NodeID]string // node -> dial address
	conns    map[ids.NodeID]*peerConn
	dialing  map[ids.NodeID]*dialState
	accepted map[net.Conn]struct{} // inbound connections, closed on Close
	ln       net.Listener
	closed   bool

	writeMu sync.Mutex // serializes frame writes per endpoint

	stageMu    sync.Mutex
	stageDepth int
	staged     map[ids.NodeID][]wire.Message

	// met is the endpoint's transport instrument block. Initialized to a
	// private registry so hot paths never nil-check; SetMetrics rebinds it to
	// a scraped registry. Atomic because send and read paths race with it.
	met atomic.Pointer[obs.TransportMetrics]

	wg sync.WaitGroup
}

var (
	_ Endpoint = (*TCPEndpoint)(nil)
	_ Stager   = (*TCPEndpoint)(nil)
)

// ListenTCP starts an endpoint for node self on addr ("host:port", use port
// 0 for ephemeral). peers maps the other nodes' names to their dial
// addresses; it may be extended later with AddPeer.
func ListenTCP(self ids.NodeID, addr string, peers map[ids.NodeID]string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		self:     self,
		peers:    make(map[ids.NodeID]string, len(peers)),
		conns:    make(map[ids.NodeID]*peerConn),
		dialing:  make(map[ids.NodeID]*dialState),
		accepted: make(map[net.Conn]struct{}),
		staged:   make(map[ids.NodeID][]wire.Message),
		ln:       ln,
	}
	e.met.Store(obs.NewTransportMetrics(obs.NewRegistry()))
	for n, a := range peers {
		e.peers[n] = a
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's listening address (useful with port 0).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// AddPeer registers or updates a peer's dial address and clears any dial
// backoff (the address change is fresh information).
func (e *TCPEndpoint) AddPeer(node ids.NodeID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[node] = addr
	delete(e.dialing, node)
}

// Self implements Endpoint.
func (e *TCPEndpoint) Self() ids.NodeID { return e.self }

// SetMetrics rebinds the endpoint's transport instruments (typically to a
// registry served by /metrics). A nil argument is ignored.
func (e *TCPEndpoint) SetMetrics(tm *obs.TransportMetrics) {
	if tm != nil {
		e.met.Store(tm)
	}
}

// SetHandler implements Endpoint.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.h = h
}

// Send implements Endpoint. In staged mode the message is queued for the
// destination and shipped at FlushStage. Otherwise a failed write tears down
// the cached connection and retries once with a fresh dial; a second failure
// is returned (and may be treated as message loss by callers).
func (e *TCPEndpoint) Send(to ids.NodeID, msg wire.Message) error {
	if msg == nil {
		return errors.New("transport: nil message")
	}
	e.stageMu.Lock()
	if e.stageDepth > 0 {
		e.staged[to] = append(e.staged[to], msg)
		e.stageMu.Unlock()
		return nil
	}
	e.stageMu.Unlock()
	return e.sendNow(to, msg)
}

func (e *TCPEndpoint) sendNow(to ids.NodeID, msg wire.Message) error {
	met := e.met.Load()
	bp := framePool.Get().(*[]byte)
	frame, err := e.buildFrame((*bp)[:0], msg)
	if err != nil {
		framePool.Put(bp)
		met.SendErrors.Inc()
		return err
	}
	err = e.writeFrameRetry(to, frame)
	if err != nil {
		met.SendErrors.Inc()
	} else {
		met.BytesSent.Add(uint64(len(frame)))
		if b, ok := msg.(*wire.Batch); ok {
			met.BatchesSent.Inc()
			met.MsgsSent.Add(uint64(len(b.Msgs)))
		} else {
			met.MsgsSent.Inc()
		}
	}
	*bp = frame[:0]
	framePool.Put(bp)
	return err
}

func (e *TCPEndpoint) writeFrameRetry(to ids.NodeID, frame []byte) error {
	if err := e.writeFrame(to, frame); err != nil {
		e.dropConn(to)
		return e.writeFrame(to, frame)
	}
	return nil
}

// buildFrame appends the framed encoding of msg to buf: 4-byte big-endian
// payload length, sender name, encoded message.
func (e *TCPEndpoint) buildFrame(buf []byte, msg wire.Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = appendLenString(buf, string(e.self))
	buf = wire.AppendEncode(buf, msg)
	payload := len(buf) - start - 4
	if payload > maxFrame {
		return buf[:start], fmt.Errorf("transport: frame too large (%d bytes)", payload)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(payload))
	return buf, nil
}

// writeFrame writes one pre-built frame to the peer's buffered connection
// and flushes. The flush error (not just the buffered-write error) is
// returned so callers see connection failures synchronously and can redial.
func (e *TCPEndpoint) writeFrame(to ids.NodeID, frame []byte) error {
	pc, err := e.connTo(to)
	if err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if _, err := pc.bw.Write(frame); err != nil {
		return err
	}
	return pc.bw.Flush()
}

// BeginStage implements Stager: subsequent sends are collected instead of
// written. Nestable; only the matching outermost FlushStage ships.
func (e *TCPEndpoint) BeginStage() {
	e.stageMu.Lock()
	e.stageDepth++
	e.stageMu.Unlock()
}

// FlushStage implements Stager: ships everything staged since BeginStage,
// one batch frame per destination (chunked at batchChunk), destinations in
// sorted order. Write failures follow Send semantics: one redial retry, then
// the traffic to that peer is dropped (the protocol stack tolerates loss).
func (e *TCPEndpoint) FlushStage() {
	e.stageMu.Lock()
	if e.stageDepth == 0 {
		e.stageMu.Unlock()
		panic("transport: FlushStage without BeginStage")
	}
	e.stageDepth--
	if e.stageDepth > 0 {
		e.stageMu.Unlock()
		return
	}
	staged := e.staged
	e.staged = make(map[ids.NodeID][]wire.Message)
	e.stageMu.Unlock()

	dests := make([]ids.NodeID, 0, len(staged))
	for to := range staged {
		dests = append(dests, to)
	}
	ids.SortNodeIDs(dests)
	for _, to := range dests {
		e.sendStaged(to, staged[to])
	}
}

// sendStaged ships one peer's staged messages as batch frames of bounded
// size. A single message skips the batch wrapper entirely.
func (e *TCPEndpoint) sendStaged(to ids.NodeID, msgs []wire.Message) {
	for len(msgs) > 0 {
		n, size := 1, wire.EncodedSize(msgs[0])
		for n < len(msgs) && size < batchChunk {
			size += wire.EncodedSize(msgs[n])
			n++
		}
		var err error
		if n == 1 {
			err = e.sendNow(to, msgs[0])
		} else {
			err = e.sendNow(to, &wire.Batch{Msgs: msgs[:n]})
		}
		_ = err // best-effort: loss is tolerated, backoff curbs retries
		msgs = msgs[n:]
	}
}

// connTo returns the cached connection to the peer, dialing if needed.
// While the peer is in dial backoff, it fails fast without touching the
// network.
func (e *TCPEndpoint) connTo(to ids.NodeID) (*peerConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("transport: endpoint closed")
	}
	if pc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return pc, nil
	}
	addr, ok := e.peers[to]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("transport: unknown peer %s", to)
	}
	if ds := e.dialing[to]; ds != nil && time.Now().Before(ds.until) {
		until := ds.until
		e.mu.Unlock()
		return nil, fmt.Errorf("transport: peer %s in dial backoff for %v", to, time.Until(until).Round(time.Millisecond))
	}
	e.mu.Unlock()

	e.met.Load().Dials.Inc()
	c, err := net.Dial("tcp", addr)

	e.mu.Lock()
	if err != nil {
		e.met.Load().DialFailures.Inc()
		ds := e.dialing[to]
		if ds == nil {
			ds = &dialState{}
			e.dialing[to] = ds
		}
		ds.failures++
		ds.until = time.Now().Add(backoffDelay(ds.failures))
		e.mu.Unlock()
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	delete(e.dialing, to)
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil, errors.New("transport: endpoint closed")
	}
	if prev, ok := e.conns[to]; ok {
		// Lost a race with another Send; keep the first connection.
		e.mu.Unlock()
		c.Close()
		return prev, nil
	}
	pc := &peerConn{c: c, bw: bufio.NewWriterSize(c, 64<<10)}
	e.conns[to] = pc
	e.mu.Unlock()
	return pc, nil
}

// backoffDelay returns the quarantine for the n-th consecutive dial failure:
// exponential from dialBackoffBase, capped at dialBackoffMax, jittered to
// 50–100% of the nominal value.
func backoffDelay(failures int) time.Duration {
	d := dialBackoffBase
	for i := 1; i < failures && d < dialBackoffMax; i++ {
		d *= 2
	}
	if d > dialBackoffMax {
		d = dialBackoffMax
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

func (e *TCPEndpoint) dropConn(to ids.NodeID) {
	e.mu.Lock()
	if pc, ok := e.conns[to]; ok {
		delete(e.conns, to)
		pc.c.Close()
		e.met.Load().ConnsDropped.Inc()
	}
	e.mu.Unlock()
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.accepted, conn)
		e.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > maxFrame {
			return // protocol violation; drop the connection
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		met := e.met.Load()
		met.FramesReceived.Inc()
		met.BytesReceived.Add(uint64(4 + n))
		from, rest, ok := readLenString(payload)
		if !ok {
			met.DecodeErrors.Inc()
			return
		}
		msg, err := wire.Decode(rest)
		if err != nil {
			met.DecodeErrors.Inc()
			continue // malformed message: datagram semantics, skip it
		}
		e.mu.Lock()
		h := e.h
		e.mu.Unlock()
		if h == nil {
			met.MsgsDropped.Inc()
			continue
		}
		// Batches are a framing construct: unpack and deliver individually,
		// preserving order. Nested batches are rejected by the decoder.
		// The handler's response sends are staged across the whole batch so
		// one inbound batch costs at most one outbound batch per peer.
		if b, ok := msg.(*wire.Batch); ok {
			met.MsgsReceived.Add(uint64(len(b.Msgs)))
			e.BeginStage()
			for _, sub := range b.Msgs {
				e.transmit(h(ids.NodeID(from), sub))
			}
			e.FlushStage()
			continue
		}
		met.MsgsReceived.Inc()
		e.transmit(h(ids.NodeID(from), msg))
	}
}

// transmit performs a handler's effect sends. Multi-message effect lists
// are staged so a burst of responses ships as one batch frame per peer.
func (e *TCPEndpoint) transmit(outs []Envelope) {
	if len(outs) == 0 {
		return
	}
	if len(outs) > 1 {
		e.BeginStage()
		defer e.FlushStage()
	}
	for _, o := range outs {
		// Best-effort, like every send: the protocol tolerates loss.
		_ = e.Send(o.To, o.Msg)
	}
}

// Close implements Endpoint: it stops the listener, closes every outbound
// and inbound connection, and joins the accept and read goroutines so no
// readLoop outlives the endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.h = nil
	conns := make([]net.Conn, 0, len(e.conns)+len(e.accepted))
	for _, pc := range e.conns {
		conns = append(conns, pc.c)
	}
	for c := range e.accepted {
		conns = append(conns, c)
	}
	e.conns = map[ids.NodeID]*peerConn{}
	e.mu.Unlock()

	err := e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	e.wg.Wait()
	return err
}

func appendLenString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readLenString(data []byte) (s string, rest []byte, ok bool) {
	n, w := binary.Uvarint(data)
	if w <= 0 || n > uint64(len(data)-w) {
		return "", nil, false
	}
	return string(data[w : w+int(n)]), data[w+int(n):], true
}
