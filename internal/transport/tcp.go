package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"dgc/internal/ids"
	"dgc/internal/wire"
)

// maxFrame bounds a single TCP frame; snapshots are never shipped whole, so
// protocol messages stay small.
const maxFrame = 16 << 20

// TCPEndpoint is a real-socket endpoint: it listens for inbound frames and
// dials peers on demand. Frames are 4-byte big-endian length prefixed wire
// envelopes: sender name followed by the encoded message.
type TCPEndpoint struct {
	self ids.NodeID

	mu       sync.Mutex
	h        Handler
	peers    map[ids.NodeID]string // node -> dial address
	conns    map[ids.NodeID]net.Conn
	accepted []net.Conn // inbound connections, closed on Close
	ln       net.Listener
	closed   bool
	writeMu  sync.Mutex // serializes frame writes per endpoint
	wg       sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP starts an endpoint for node self on addr ("host:port", use port
// 0 for ephemeral). peers maps the other nodes' names to their dial
// addresses; it may be extended later with AddPeer.
func ListenTCP(self ids.NodeID, addr string, peers map[ids.NodeID]string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		self:  self,
		peers: make(map[ids.NodeID]string, len(peers)),
		conns: make(map[ids.NodeID]net.Conn),
		ln:    ln,
	}
	for n, a := range peers {
		e.peers[n] = a
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's listening address (useful with port 0).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// AddPeer registers or updates a peer's dial address.
func (e *TCPEndpoint) AddPeer(node ids.NodeID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[node] = addr
}

// Self implements Endpoint.
func (e *TCPEndpoint) Self() ids.NodeID { return e.self }

// SetHandler implements Endpoint.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.h = h
}

// Send implements Endpoint. A failed write tears down the cached connection
// and retries once with a fresh dial; a second failure is returned (and may
// be treated as message loss by callers).
func (e *TCPEndpoint) Send(to ids.NodeID, msg wire.Message) error {
	frame, err := e.buildFrame(msg)
	if err != nil {
		return err
	}
	if err := e.writeFrame(to, frame); err != nil {
		e.dropConn(to)
		return e.writeFrame(to, frame)
	}
	return nil
}

func (e *TCPEndpoint) buildFrame(msg wire.Message) ([]byte, error) {
	if msg == nil {
		return nil, errors.New("transport: nil message")
	}
	var payload []byte
	payload = appendLenString(payload, string(e.self))
	payload = append(payload, wire.Encode(msg)...)
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("transport: frame too large (%d bytes)", len(payload))
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	return frame, nil
}

func (e *TCPEndpoint) writeFrame(to ids.NodeID, frame []byte) error {
	conn, err := e.connTo(to)
	if err != nil {
		return err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	_, err = conn.Write(frame)
	return err
}

func (e *TCPEndpoint) connTo(to ids.NodeID) (net.Conn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("transport: endpoint closed")
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %s", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	e.mu.Lock()
	if prev, ok := e.conns[to]; ok {
		// Lost a race with another Send; keep the first connection.
		e.mu.Unlock()
		c.Close()
		return prev, nil
	}
	e.conns[to] = c
	e.mu.Unlock()
	return c, nil
}

func (e *TCPEndpoint) dropConn(to ids.NodeID) {
	e.mu.Lock()
	if c, ok := e.conns[to]; ok {
		delete(e.conns, to)
		c.Close()
	}
	e.mu.Unlock()
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.accepted = append(e.accepted, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr)
		if n == 0 || n > maxFrame {
			return // protocol violation; drop the connection
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		from, rest, ok := readLenString(payload)
		if !ok {
			return
		}
		msg, err := wire.Decode(rest)
		if err != nil {
			continue // malformed message: datagram semantics, skip it
		}
		e.mu.Lock()
		h := e.h
		e.mu.Unlock()
		if h != nil {
			h(ids.NodeID(from), msg)
		}
	}
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.h = nil
	conns := make([]net.Conn, 0, len(e.conns)+len(e.accepted))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	conns = append(conns, e.accepted...)
	e.conns = map[ids.NodeID]net.Conn{}
	e.accepted = nil
	e.mu.Unlock()

	err := e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	e.wg.Wait()
	return err
}

func appendLenString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readLenString(data []byte) (s string, rest []byte, ok bool) {
	n, w := binary.Uvarint(data)
	if w <= 0 || n > uint64(len(data)-w) {
		return "", nil, false
	}
	return string(data[w : w+int(n)]), data[w+int(n):], true
}
