package transport

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/obs"
	"dgc/internal/wire"
)

// collector gathers delivered messages with synchronization for tests.
type collector struct {
	mu   sync.Mutex
	msgs []wire.Message
	from []ids.NodeID
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handler(from ids.NodeID, m wire.Message) []Envelope {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.from = append(c.from, from)
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// waitFor blocks until n messages arrived or the deadline passes.
func (c *collector) waitFor(t *testing.T, n int, d time.Duration) []wire.Message {
	t.Helper()
	deadline := time.Now().Add(d)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.msgs) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d messages", len(c.msgs), n)
		}
		// Poll with a short sleep; Cond has no timed wait.
		c.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		c.mu.Lock()
	}
	return append([]wire.Message(nil), c.msgs...)
}

func newTCPPair(t *testing.T) (*TCPEndpoint, *TCPEndpoint, *collector, *collector) {
	t.Helper()
	a, err := ListenTCP("A", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("B", "127.0.0.1:0", nil)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.AddPeer("B", b.Addr())
	b.AddPeer("A", a.Addr())
	ca, cb := newCollector(), newCollector()
	a.SetHandler(ca.handler)
	b.SetHandler(cb.handler)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, ca, cb
}

func TestTCPRoundTrip(t *testing.T) {
	a, b, ca, cb := newTCPPair(t)
	if err := a.Send("B", &wire.HughesThreshold{Threshold: 42}); err != nil {
		t.Fatal(err)
	}
	msgs := cb.waitFor(t, 1, 2*time.Second)
	if got := msgs[0].(*wire.HughesThreshold).Threshold; got != 42 {
		t.Fatalf("payload = %d", got)
	}
	cb.mu.Lock()
	from := cb.from[0]
	cb.mu.Unlock()
	if from != "A" {
		t.Fatalf("from = %s", from)
	}
	// And the reverse direction.
	if err := b.Send("A", &wire.HughesThreshold{Threshold: 7}); err != nil {
		t.Fatal(err)
	}
	back := ca.waitFor(t, 1, 2*time.Second)
	if got := back[0].(*wire.HughesThreshold).Threshold; got != 7 {
		t.Fatalf("payload = %d", got)
	}
}

func TestTCPOrderedDelivery(t *testing.T) {
	a, _, _, cb := newTCPPair(t)
	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send("B", &wire.HughesThreshold{Threshold: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := cb.waitFor(t, n, 5*time.Second)
	for i, m := range msgs {
		if m.(*wire.HughesThreshold).Threshold != uint64(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestTCPComplexMessage(t *testing.T) {
	a, _, _, cb := newTCPPair(t)
	cdm := &wire.CDM{
		Det:   core.DetectionID{Origin: "A", Seq: 5},
		Along: ids.RefID{Src: "A", Dst: ids.GlobalRef{Node: "B", Obj: 4}},
		Entries: []wire.CDMEntry{
			{Ref: ids.RefID{Src: "A", Dst: ids.GlobalRef{Node: "B", Obj: 4}}, InSource: true, SrcIC: 3, InTarget: true, TgtIC: 3},
		},
	}
	if err := a.Send("B", cdm); err != nil {
		t.Fatal(err)
	}
	msgs := cb.waitFor(t, 1, 2*time.Second)
	got := msgs[0].(*wire.CDM)
	if got.Det != cdm.Det || len(got.Entries) != 1 || got.Entries[0] != cdm.Entries[0] {
		t.Fatalf("CDM mismatch: %+v", got)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _, _, _ := newTCPPair(t)
	if err := a.Send("Z", &wire.HughesThreshold{}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP("A", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("B", &wire.HughesThreshold{}); err == nil {
		t.Fatal("send after close succeeded")
	}
	// Double close is a no-op.
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("A", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := ListenTCP("B", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("B", b1.Addr())
	c1 := newCollector()
	b1.SetHandler(c1.handler)
	if err := a.Send("B", &wire.HughesThreshold{Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	c1.waitFor(t, 1, 2*time.Second)
	addr := b1.Addr()
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart B on the same address.
	b2, err := ListenTCP("B", addr, nil)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer b2.Close()
	c2 := newCollector()
	b2.SetHandler(c2.handler)
	// Sends against the dead cached connection may "succeed" locally before
	// the RST arrives (the message is then lost — datagram semantics) or
	// fail and trigger the endpoint's redial. Keep sending until one gets
	// through the fresh connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = a.Send("B", &wire.HughesThreshold{Threshold: 2})
		c2.mu.Lock()
		n := len(c2.msgs)
		c2.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not reconnect to restarted peer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	msgs := c2.waitFor(t, 1, 2*time.Second)
	if msgs[0].(*wire.HughesThreshold).Threshold != 2 {
		t.Fatal("wrong payload after reconnect")
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	a, _, _, cb := newTCPPair(t)
	var wg sync.WaitGroup
	const per, workers = 50, 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send("B", &wire.HughesThreshold{Threshold: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	cb.waitFor(t, per*workers, 5*time.Second)
}

func TestTCPStagedBatchDelivery(t *testing.T) {
	a, _, _, cb := newTCPPair(t)
	a.BeginStage()
	const n = 20
	for i := 0; i < n; i++ {
		if err := a.Send("B", &wire.HughesThreshold{Threshold: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing may hit the wire while staged.
	time.Sleep(20 * time.Millisecond)
	cb.mu.Lock()
	early := len(cb.msgs)
	cb.mu.Unlock()
	if early != 0 {
		t.Fatalf("%d messages delivered before FlushStage", early)
	}
	a.FlushStage()
	msgs := cb.waitFor(t, n, 5*time.Second)
	for i, m := range msgs {
		if m.(*wire.HughesThreshold).Threshold != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, m)
		}
	}
}

func TestTCPStagedNesting(t *testing.T) {
	a, _, _, cb := newTCPPair(t)
	a.BeginStage()
	a.BeginStage()
	if err := a.Send("B", &wire.HughesThreshold{Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	a.FlushStage() // inner: must NOT ship yet
	time.Sleep(20 * time.Millisecond)
	cb.mu.Lock()
	early := len(cb.msgs)
	cb.mu.Unlock()
	if early != 0 {
		t.Fatal("inner FlushStage shipped messages")
	}
	a.FlushStage() // outer: ships
	cb.waitFor(t, 1, 2*time.Second)

	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced FlushStage did not panic")
		}
	}()
	a.FlushStage()
}

func TestTCPStagedMixedPeers(t *testing.T) {
	// Three endpoints; A stages traffic to both B and C and flushes in order.
	a, b, _, cb := newTCPPair(t)
	_ = b
	c, err := ListenTCP("C", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a.AddPeer("C", c.Addr())
	cc := newCollector()
	c.SetHandler(cc.handler)

	a.BeginStage()
	for i := 0; i < 5; i++ {
		if err := a.Send("B", &wire.HughesThreshold{Threshold: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("C", &wire.HughesThreshold{Threshold: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.FlushStage() // ships to both peers, sorted destination order
	got := cb.waitFor(t, 5, 5*time.Second)
	for i, m := range got {
		if m.(*wire.HughesThreshold).Threshold != uint64(i) {
			t.Fatalf("B out of order at %d", i)
		}
	}
	gotC := cc.waitFor(t, 5, 5*time.Second)
	for i, m := range gotC {
		if m.(*wire.HughesThreshold).Threshold != uint64(100+i) {
			t.Fatalf("C out of order at %d", i)
		}
	}
}

func TestTCPDialBackoffFailsFast(t *testing.T) {
	a, err := ListenTCP("A", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Reserve an address with nothing listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	a.AddPeer("B", dead)

	if err := a.Send("B", &wire.HughesThreshold{}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	// Within the quarantine window, sends must fail fast without dialing.
	start := time.Now()
	if err := a.Send("B", &wire.HughesThreshold{}); err == nil {
		t.Fatal("send during backoff succeeded")
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("backoff send took %v; expected fail-fast", d)
	}
	// AddPeer clears the backoff so a fresh address is tried immediately.
	b, err := ListenTCP("B", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cb := newCollector()
	b.SetHandler(cb.handler)
	a.AddPeer("B", b.Addr())
	if err := a.Send("B", &wire.HughesThreshold{Threshold: 9}); err != nil {
		t.Fatal(err)
	}
	cb.waitFor(t, 1, 2*time.Second)
}

func TestTCPCloseJoinsReadLoops(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		a, b, _, cb := func(t *testing.T) (*TCPEndpoint, *TCPEndpoint, *collector, *collector) {
			a, err := ListenTCP("A", "127.0.0.1:0", nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ListenTCP("B", "127.0.0.1:0", nil)
			if err != nil {
				t.Fatal(err)
			}
			a.AddPeer("B", b.Addr())
			b.AddPeer("A", a.Addr())
			ca, cb := newCollector(), newCollector()
			a.SetHandler(ca.handler)
			b.SetHandler(cb.handler)
			return a, b, ca, cb
		}(t)
		if err := a.Send("B", &wire.HughesThreshold{Threshold: 1}); err != nil {
			t.Fatal(err)
		}
		cb.waitFor(t, 1, 2*time.Second)
		// Close must join the accept loop and every readLoop.
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Allow the runtime to settle, then verify no goroutine pile-up.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestTCPCDMTracePropagation pins the observability contract that a
// detection's causal trace id rides the CDM unchanged across a real socket
// hop: what the sender stamped is exactly what the receiving handler decodes.
func TestTCPCDMTracePropagation(t *testing.T) {
	a, _, _, cb := newTCPPair(t)
	det := core.DetectionID{Origin: "P7", Seq: 3}
	tr := core.TraceIDFor(det)
	if tr == 0 {
		t.Fatal("TraceIDFor returned zero")
	}
	msg := &wire.CDM{
		Det: det, Along: ids.RefID{Src: "A", Dst: ids.GlobalRef{Node: "B", Obj: 4}}, Hops: 2, Trace: tr,
		Entries: []wire.CDMEntry{
			{Ref: ids.RefID{Src: "B", Dst: ids.GlobalRef{Node: "A", Obj: 1}}, InSource: true, SrcIC: 1},
		},
	}
	if err := a.Send("B", msg); err != nil {
		t.Fatal(err)
	}
	got := cb.waitFor(t, 1, 2*time.Second)
	cdm, ok := got[0].(*wire.CDM)
	if !ok {
		t.Fatalf("received %T, want *wire.CDM", got[0])
	}
	if cdm.Trace != tr {
		t.Fatalf("trace id mangled across the hop: got %#x, want %#x", cdm.Trace, tr)
	}
	if cdm.Det != det || cdm.Hops != 2 {
		t.Fatalf("CDM identity changed: %+v", cdm)
	}
}

// TestTCPMetrics exercises the transport instrument block over real sockets:
// sends, receives, frames and byte counts all move, and SetMetrics rebinding
// is observed by subsequent traffic.
func TestTCPMetrics(t *testing.T) {
	a, b, _, cb := newTCPPair(t)
	reg := obs.NewRegistry()
	a.SetMetrics(obs.NewTransportMetrics(reg))
	breg := obs.NewRegistry()
	b.SetMetrics(obs.NewTransportMetrics(breg))
	const n = 5
	for i := 0; i < n; i++ {
		if err := a.Send("B", &wire.HughesThreshold{Threshold: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cb.waitFor(t, n, 2*time.Second)
	am, bm := a.met.Load(), b.met.Load()
	if am.MsgsSent.Value() != n {
		t.Fatalf("MsgsSent = %d, want %d", am.MsgsSent.Value(), n)
	}
	if am.BytesSent.Value() == 0 {
		t.Fatal("BytesSent did not move")
	}
	if am.Dials.Value() == 0 {
		t.Fatal("Dials did not move")
	}
	if bm.MsgsReceived.Value() != n {
		t.Fatalf("MsgsReceived = %d, want %d", bm.MsgsReceived.Value(), n)
	}
	if bm.FramesReceived.Value() == 0 || bm.BytesReceived.Value() == 0 {
		t.Fatal("receive-side frame/byte counters did not move")
	}
}
