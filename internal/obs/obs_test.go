package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dgc_test_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("dgc_test_depth", "help")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dgc_x_total", "help")
	a.Inc()
	b := r.Counter("dgc_x_total", "other help ignored")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	if b.Value() != 1 {
		t.Fatalf("value lost on rebind: %d", b.Value())
	}
	h1 := r.Histogram("dgc_h", "help", []float64{1, 2})
	h2 := r.Histogram("dgc_h", "help", []float64{99}) // bounds ignored on rebind
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dgc_y", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge over existing counter name did not panic")
		}
	}()
	r.Gauge("dgc_y", "help")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dgc_lat_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 105.65 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`dgc_lat_seconds_bucket{le="0.1"} 2`, // cumulative: 0.05 and 0.1
		`dgc_lat_seconds_bucket{le="1"} 3`,
		`dgc_lat_seconds_bucket{le="10"} 4`,
		`dgc_lat_seconds_bucket{le="+Inf"} 5`,
		`dgc_lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestWriteTextGroupsFamiliesAcrossRegistries(t *testing.T) {
	r1 := NewRegistry(Label{Key: "node", Value: "P1"})
	r2 := NewRegistry(Label{Key: "node", Value: "P2"})
	r1.Counter("dgc_z_total", "z help").Inc()
	r2.Counter("dgc_z_total", "z help").Add(2)
	var sb strings.Builder
	if err := WriteText(&sb, r1, r2); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Count(text, "# HELP dgc_z_total") != 1 || strings.Count(text, "# TYPE dgc_z_total") != 1 {
		t.Fatalf("family header not deduplicated:\n%s", text)
	}
	for _, want := range []string{`dgc_z_total{node="P1"} 1`, `dgc_z_total{node="P2"} 2`} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry(Label{Key: "node", Value: `a"b\c`})
	r.Counter("dgc_esc_total", "help").Inc()
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `node="a\"b\\c"`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestDump(t *testing.T) {
	s := NewSet()
	reg := s.Node("P1")
	reg.Counter("dgc_d_total", "help").Add(3)
	reg.Histogram("dgc_d_seconds", "help", []float64{1}).Observe(0.5)
	d := s.Dump()
	if d[`dgc_d_total{node="P1"}`] != 3 {
		t.Fatalf("dump counter: %v", d)
	}
	if d[`dgc_d_seconds_count{node="P1"}`] != 1 || d[`dgc_d_seconds_sum{node="P1"}`] != 0.5 {
		t.Fatalf("dump histogram: %v", d)
	}
}

func TestNilSetNodeIsSafe(t *testing.T) {
	var s *Set
	reg := s.Node("P1")
	reg.Counter("dgc_n_total", "help").Inc() // must not panic
	if s.Registries() != nil {
		t.Fatal("nil set should have no registries")
	}
}

func TestSetNodeIdempotent(t *testing.T) {
	s := NewSet()
	if s.Node("P1") != s.Node("P1") {
		t.Fatal("Node not idempotent")
	}
	if len(s.Registries()) != 1 {
		t.Fatalf("registries = %d", len(s.Registries()))
	}
}

func TestNodeMetricsRegistersAll(t *testing.T) {
	s := NewSet()
	nm := NewNodeMetrics(s.Node("P1"))
	nm.DetectionsStarted.Inc()
	nm.DetectionLatency.Observe(0.01)
	nm.MailboxDepth.Set(3)
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	series := 0
	for _, name := range []string{
		"dgc_detections_started_total", "dgc_detections_aborted_total",
		"dgc_cycles_found_total", "dgc_cdms_sent_total", "dgc_cdms_handled_total",
		"dgc_cdms_dropped_total", "dgc_cdms_deduped_total", "dgc_cdms_race_dropped_total",
		"dgc_scions_freed_total", "dgc_detection_latency_seconds", "dgc_cdm_hops",
		"dgc_scions_created_total", "dgc_scions_dropped_total", "dgc_lgc_runs_total",
		"dgc_lgc_objects_swept_total", "dgc_stub_sets_sent_total", "dgc_stub_sets_applied_total",
		"dgc_summarizations_total", "dgc_summary_cache_hits_total",
		"dgc_lgc_duration_seconds", "dgc_summarize_duration_seconds",
		"dgc_invokes_sent_total", "dgc_invokes_handled_total", "dgc_replies_handled_total",
		"dgc_calls_failed_total", "dgc_heap_objects", "dgc_scions", "dgc_stubs",
		"dgc_detections_inflight", "dgc_pending_calls", "dgc_mailbox_depth",
		"dgc_mailbox_capacity", "dgc_mailbox_dropped_total",
		"dgc_credit_stalls_total", "dgc_credit_pending", "dgc_credit_grants_total",
	} {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("missing family %s", name)
			continue
		}
		series++
	}
	if series < 15 {
		t.Fatalf("only %d families exposed", series)
	}
	// Rebinding the same registry returns live instruments bound to the same
	// underlying series (the restart path).
	nm2 := NewNodeMetrics(s.Node("P1"))
	if nm2.DetectionsStarted.Value() != 1 {
		t.Fatal("rebind lost counter value")
	}
}

func TestTransportMetricsRegistersAll(t *testing.T) {
	reg := NewRegistry()
	tm := NewTransportMetrics(reg)
	tm.MsgsSent.Inc()
	tm.BytesSent.Add(10)
	var sb strings.Builder
	if err := WriteText(&sb, reg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"dgc_transport_msgs_sent_total", "dgc_transport_bytes_sent_total",
		"dgc_transport_send_errors_total", "dgc_transport_batches_sent_total",
		"dgc_transport_msgs_received_total", "dgc_transport_bytes_received_total",
		"dgc_transport_frames_received_total", "dgc_transport_decode_errors_total",
		"dgc_transport_dials_total", "dgc_transport_dial_failures_total",
		"dgc_transport_conns_dropped_total", "dgc_transport_msgs_dropped_total",
	} {
		if !strings.Contains(sb.String(), "# TYPE "+name+" ") {
			t.Errorf("missing family %s", name)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dgc_cc_total", "help")
	h := r.Histogram("dgc_ch_seconds", "help", DurationBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter = %d, histogram count = %d", c.Value(), h.Count())
	}
}

func TestHTTPHandler(t *testing.T) {
	s := NewSet()
	s.Node("P1").Counter("dgc_http_total", "help").Inc()
	h := NewHTTPHandler(s, func() any { return map[string]int{"objects": 3} })
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), sb.String()
	}

	code, ctype, body := get("/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics: code=%d type=%q", code, ctype)
	}
	if !strings.Contains(body, `dgc_http_total{node="P1"} 1`) {
		t.Fatalf("metrics body:\n%s", body)
	}

	code, ctype, body = get("/debug/dgc")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("debug: code=%d type=%q", code, ctype)
	}
	if !strings.Contains(body, `"objects": 3`) {
		t.Fatalf("debug body:\n%s", body)
	}
}

func TestHTTPHandlerNoDebug(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(NewSet(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/dgc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("debug without provider: code=%d", resp.StatusCode)
	}
}
