// Package obs is the zero-dependency observability substrate: atomic
// counters, gauges and bucketed histograms collected in per-node registries
// and exposed in the Prometheus text format. The node layer, the transports
// and the command-line drivers all report into it, so deterministic
// simulations and live TCP deployments share one metrics vocabulary (see
// DESIGN.md §9 for the metric name table).
//
// Everything here is safe for concurrent use and never feeds back into
// protocol decisions: instrumentation may observe wall-clock time without
// perturbing the deterministic simulator.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one exposition label, rendered as key="value" on every sample of
// a registry.
type Label struct {
	Key, Value string
}

// metric is the family-member contract: every registered instrument knows
// its name, help text, Prometheus type, and how to render or dump itself.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string
	write(w io.Writer, labels string)
	dump(labels string, out map[string]float64)
}

// Registry holds one label-set's worth of metrics — typically one node's.
// Registration is idempotent by name: asking for an existing name returns
// the existing instrument (a type mismatch panics), which is what lets a
// restarted machine rebind to the registry its predecessor populated.
type Registry struct {
	labels string // rendered label block, e.g. `node="P1"`, possibly empty

	mu     sync.Mutex
	order  []metric
	byName map[string]metric
}

// NewRegistry returns a registry whose samples carry the given labels.
func NewRegistry(labels ...Label) *Registry {
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return &Registry{labels: sb.String(), byName: make(map[string]metric)}
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) register(name string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := make()
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the registry's monotonically increasing counter with the
// given name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{name: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic("obs: " + name + " already registered as a " + m.metricType())
	}
	return c
}

// Gauge returns the registry's gauge with the given name, creating it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: " + name + " already registered as a " + m.metricType())
	}
	return g
}

// Histogram returns the registry's histogram with the given name, creating
// it on first use with the given bucket upper bounds (ascending; an +Inf
// bucket is implicit). Re-registration ignores the bounds argument and
// returns the existing histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, func() metric {
		h := &Histogram{name: name, help: help, bounds: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic("obs: " + name + " already registered as a " + m.metricType())
	}
	return h
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }

func (c *Counter) write(w io.Writer, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", c.name, wrapLabels(labels), c.v.Load())
}

func (c *Counter) dump(labels string, out map[string]float64) {
	out[c.name+wrapLabels(labels)] = float64(c.v.Load())
}

// Gauge is an instantaneous int64 value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }

func (g *Gauge) write(w io.Writer, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", g.name, wrapLabels(labels), g.v.Load())
}

func (g *Gauge) dump(labels string, out map[string]float64) {
	out[g.name+wrapLabels(labels)] = float64(g.v.Load())
}

// Histogram counts observations into cumulative le-buckets with a running
// sum, Prometheus-style. Observe is lock-free: per-bucket atomic counts plus
// a CAS loop for the float sum.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf implicit
	counts     []atomic.Uint64
	count      atomic.Uint64
	sum        atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or len (the +Inf bucket)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }

func (h *Histogram) write(w io.Writer, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, wrapLabels(joinLabels(labels, `le="`+formatFloat(b)+`"`)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, wrapLabels(joinLabels(labels, `le="+Inf"`)), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, wrapLabels(labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, wrapLabels(labels), h.count.Load())
}

func (h *Histogram) dump(labels string, out map[string]float64) {
	out[h.name+"_count"+wrapLabels(labels)] = float64(h.count.Load())
	out[h.name+"_sum"+wrapLabels(labels)] = h.Sum()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// family is one metric name's exposition group across registries.
type family struct {
	name, help, typ string
	members         []struct {
		m      metric
		labels string
	}
}

// WriteText renders every registry's metrics in the Prometheus text format,
// grouping samples of the same family (metric name) across registries under
// one HELP/TYPE header — the layout Prometheus requires when many nodes
// share a process.
func WriteText(w io.Writer, regs ...*Registry) error {
	var order []string
	fams := make(map[string]*family)
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		ms := append([]metric(nil), r.order...)
		labels := r.labels
		r.mu.Unlock()
		for _, m := range ms {
			f, ok := fams[m.metricName()]
			if !ok {
				f = &family{name: m.metricName(), help: m.metricHelp(), typ: m.metricType()}
				fams[m.metricName()] = f
				order = append(order, m.metricName())
			}
			f.members = append(f.members, struct {
				m      metric
				labels string
			}{m, labels})
		}
	}
	bw := &errWriter{w: w}
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, mb := range f.members {
			mb.m.write(bw, mb.labels)
		}
	}
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// Dump flattens every registry's current values into a map keyed by
// "name{labels}" — counters and gauges directly, histograms as their _count
// and _sum. The map marshals to deterministic (key-sorted) JSON, which is
// what cmd/dgc-sim's per-round metric dump relies on.
func Dump(regs ...*Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		ms := append([]metric(nil), r.order...)
		labels := r.labels
		r.mu.Unlock()
		for _, m := range ms {
			m.dump(labels, out)
		}
	}
	return out
}

// Set is a collection of registries keyed by node name: one Set serves a
// whole process (a live daemon's single node, or every node of a simulated
// cluster), and the HTTP handler exposes all of them in one scrape.
type Set struct {
	mu    sync.Mutex
	order []string
	regs  map[string]*Registry
}

// NewSet returns an empty registry collection.
func NewSet() *Set {
	return &Set{regs: make(map[string]*Registry)}
}

// Node returns the registry labeled node="name", creating it on first use.
// Safe on a nil Set: instrumentation then reports into a fresh private
// registry that nothing scrapes, so instrumented code needs no nil guards.
func (s *Set) Node(name string) *Registry {
	if s == nil {
		return NewRegistry(Label{Key: "node", Value: name})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.regs[name]; ok {
		return r
	}
	r := NewRegistry(Label{Key: "node", Value: name})
	s.regs[name] = r
	s.order = append(s.order, name)
	return r
}

// Labeled returns the registry stored under key with the given label set,
// creating it on first use — the home for process-level series whose labels
// are not a node name (e.g. the dgc_build_info version/commit gauge). Keys
// live in a separate namespace from Node names, so a node called "build"
// cannot collide with a Labeled("build", ...) registry. Labels are fixed at
// creation; later calls with the same key return the existing registry.
// Safe on a nil Set (returns a fresh private registry nothing scrapes).
func (s *Set) Labeled(key string, labels ...Label) *Registry {
	if s == nil {
		return NewRegistry(labels...)
	}
	key = "\x00" + key // private namespace, disjoint from node names
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.regs[key]; ok {
		return r
	}
	r := NewRegistry(labels...)
	s.regs[key] = r
	s.order = append(s.order, key)
	return r
}

// Registries returns the set's registries in creation order.
func (s *Set) Registries() []*Registry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Registry, len(s.order))
	for i, name := range s.order {
		out[i] = s.regs[name]
	}
	return out
}

// WriteText renders the whole set in the Prometheus text format.
func (s *Set) WriteText(w io.Writer) error { return WriteText(w, s.Registries()...) }

// Dump flattens the whole set (see Dump).
func (s *Set) Dump() map[string]float64 { return Dump(s.Registries()...) }
