package obs

// The shared metric vocabulary. Every series a node or transport reports is
// declared here, in one place, so simulations, live daemons and dashboards
// agree on names (documented in DESIGN.md §9). Constructors are idempotent
// per registry: restoring a machine into an existing registry rebinds to the
// same instruments.

// DetectionLatencyBuckets bounds the per-detection latency histogram: from
// sub-millisecond (in-process simulation) to tens of seconds (wide-area
// detections spanning many summarization rounds).
var DetectionLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DurationBuckets bounds the daemon-duration histograms (LGC, summarize):
// microseconds for small heaps up to seconds for pathological ones.
var DurationBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1,
}

// HopBuckets bounds the CDM forwarding-depth histogram (the detector's hop
// budget defaults to 256).
var HopBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// BatchSectionBuckets bounds the sections-per-BatchCDM histogram: one
// section per candidate sharing an edge, up to the detection round's
// candidate budget.
var BatchSectionBuckets = []float64{2, 4, 8, 16, 32, 64, 128, 256, 512}

// NodeMetrics is one node's instrument block, covering detection, the local
// and acyclic collectors, RPC and the runtime mailbox.
type NodeMetrics struct {
	// Cycle detection.
	DetectionsStarted *Counter
	DetectionsAborted *Counter
	CyclesFound       *Counter
	CDMsSent          *Counter
	CDMsHandled       *Counter
	CDMsDropped       *Counter
	CDMsDeduped       *Counter
	CDMsRaceDropped   *Counter
	ScionsFreed       *Counter
	DetectionLatency  *Histogram
	CDMHops           *Histogram

	// Batched detection and hierarchical aggregation (static zero when
	// Config.BatchDetection / AggregateDetection are off).
	BatchCDMsSent       *Counter
	BatchSections       *Histogram
	PartialReturns      *Counter
	DetectionRelaunches *Counter

	// Reference listing and local GC.
	ScionsCreated     *Counter
	ScionsDropped     *Counter
	LGCRuns           *Counter
	ObjectsSwept      *Counter
	StubSetsSent      *Counter
	StubSetsApplied   *Counter
	Summarizations    *Counter
	SummaryCacheHits  *Counter
	LGCDuration       *Histogram
	SummarizeDuration *Histogram

	// Remote invocation.
	InvokesSent    *Counter
	InvokesHandled *Counter
	RepliesHandled *Counter
	CallsFailed    *Counter

	// Instantaneous state.
	HeapObjects          *Gauge
	Scions               *Gauge
	Stubs                *Gauge
	DetectionsInflight   *Gauge
	DetectionInflightAge *Gauge
	PendingCalls         *Gauge

	// LiveRuntime mailbox (static zero under the simulator's Node driver).
	MailboxDepth    *Gauge
	MailboxCapacity *Gauge
	MailboxDropped  *Counter

	// LiveRuntime credit backpressure (static zero when
	// RuntimeConfig.Backpressure is off).
	CreditStalls  *Counter
	CreditPending *Gauge
	CreditGrants  *Counter

	// Cluster membership and lease-guarded reclamation (static zero when
	// Config.Membership is nil).
	MembersAlive       *Gauge
	MembersSuspect     *Gauge
	MembersDead        *Gauge
	MemberTransitions  *Counter
	GossipSent         *Counter
	GossipReceived     *Counter
	MemberDetectAborts *Counter
	LeaseActiveHolders *Gauge
	LeaseReclaimed     *Counter
	LeaseHandoffs      *Counter
}

// NewNodeMetrics registers (or rebinds) the node instrument block on reg.
func NewNodeMetrics(reg *Registry) *NodeMetrics {
	return &NodeMetrics{
		DetectionsStarted: reg.Counter("dgc_detections_started_total", "Cycle detections initiated at this node that made a first hop."),
		DetectionsAborted: reg.Counter("dgc_detections_aborted_total", "CDM deliveries terminated by an invocation-counter mismatch (mutator race)."),
		CyclesFound:       reg.Counter("dgc_cycles_found_total", "CDM deliveries that proved a distributed garbage cycle."),
		CDMsSent:          reg.Counter("dgc_cdms_sent_total", "Cycle detection messages forwarded to peers."),
		CDMsHandled:       reg.Counter("dgc_cdms_handled_total", "Cycle detection messages delivered to this node."),
		CDMsDropped:       reg.Counter("dgc_cdms_dropped_total", "CDM deliveries discarded for referencing a scion absent from the summary."),
		CDMsDeduped:       reg.Counter("dgc_cdms_deduped_total", "CDM deliveries that added no new information to the accumulated view."),
		CDMsRaceDropped:   reg.Counter("dgc_cdms_race_dropped_total", "CDM deliveries conflicting with the accumulated per-detection view."),
		ScionsFreed:       reg.Counter("dgc_scions_freed_total", "Scions deleted because a detection proved them part of a garbage cycle."),
		DetectionLatency:  reg.Histogram("dgc_detection_latency_seconds", "Seconds from first sight of a detection at this node to its terminal outcome here (cycle found or abort).", DetectionLatencyBuckets),
		CDMHops:           reg.Histogram("dgc_cdm_hops", "Forwarding depth carried by delivered CDMs.", HopBuckets),

		BatchCDMsSent:       reg.Counter("dgc_batch_cdms_sent_total", "Multi-candidate BatchCDM messages sent to peers."),
		BatchSections:       reg.Histogram("dgc_batch_cdm_sections", "Detection sections carried per BatchCDM sent.", BatchSectionBuckets),
		PartialReturns:      reg.Counter("dgc_partial_returns_total", "Aggregation-mode partial match results returned to detection origins."),
		DetectionRelaunches: reg.Counter("dgc_detection_relaunches_total", "Detections re-launched by their origin after merging partial returns."),

		ScionsCreated:     reg.Counter("dgc_scions_created_total", "Incoming-reference scions created."),
		ScionsDropped:     reg.Counter("dgc_scions_dropped_total", "Scions deleted by reference-listing stub-set application."),
		LGCRuns:           reg.Counter("dgc_lgc_runs_total", "Local garbage collections run."),
		ObjectsSwept:      reg.Counter("dgc_lgc_objects_swept_total", "Objects reclaimed by local collections."),
		StubSetsSent:      reg.Counter("dgc_stub_sets_sent_total", "NewSetStubs messages sent after local collections."),
		StubSetsApplied:   reg.Counter("dgc_stub_sets_applied_total", "NewSetStubs messages applied from peers."),
		Summarizations:    reg.Counter("dgc_summarizations_total", "Graph summarization runs (including cache hits)."),
		SummaryCacheHits:  reg.Counter("dgc_summary_cache_hits_total", "Summarizations satisfied by the mutation-epoch cache."),
		LGCDuration:       reg.Histogram("dgc_lgc_duration_seconds", "Wall-clock duration of local collections.", DurationBuckets),
		SummarizeDuration: reg.Histogram("dgc_summarize_duration_seconds", "Wall-clock duration of full summary rebuilds (cache hits excluded).", DurationBuckets),

		InvokesSent:    reg.Counter("dgc_invokes_sent_total", "Remote invocations sent."),
		InvokesHandled: reg.Counter("dgc_invokes_handled_total", "Remote invocations served."),
		RepliesHandled: reg.Counter("dgc_replies_handled_total", "Invocation replies received."),
		CallsFailed:    reg.Counter("dgc_calls_failed_total", "Invocations that failed or expired."),

		HeapObjects:          reg.Gauge("dgc_heap_objects", "Objects currently on the heap."),
		Scions:               reg.Gauge("dgc_scions", "Incoming-reference scions currently recorded."),
		Stubs:                reg.Gauge("dgc_stubs", "Outgoing-reference stubs currently recorded."),
		DetectionsInflight:   reg.Gauge("dgc_detections_inflight", "Detections currently tracked at this node (traced, not yet terminal)."),
		DetectionInflightAge: reg.Gauge("dgc_detection_inflight_age_seconds", "Age in whole seconds of the oldest detection still inflight at this node (0 when none)."),
		PendingCalls:         reg.Gauge("dgc_pending_calls", "Remote invocations awaiting replies."),

		MailboxDepth:    reg.Gauge("dgc_mailbox_depth", "Runtime mailbox occupancy at last consume."),
		MailboxCapacity: reg.Gauge("dgc_mailbox_capacity", "Runtime mailbox capacity."),
		MailboxDropped:  reg.Counter("dgc_mailbox_dropped_total", "Inbound transport deliveries dropped on mailbox overflow."),

		CreditStalls:  reg.Counter("dgc_credit_stalls_total", "Outbound messages parked because a peer's credit window was exhausted."),
		CreditPending: reg.Gauge("dgc_credit_pending", "Outbound messages currently parked awaiting credit."),
		CreditGrants:  reg.Counter("dgc_credit_grants_total", "Credit grants announced to peers."),

		MembersAlive:       reg.Gauge("dgc_member_alive", "Directory members currently joining, alive or draining."),
		MembersSuspect:     reg.Gauge("dgc_member_suspect", "Directory members currently suspected by the failure detector."),
		MembersDead:        reg.Gauge("dgc_member_dead", "Directory members declared dead or departed."),
		MemberTransitions:  reg.Counter("dgc_member_transitions_total", "Membership state transitions recorded in the directory."),
		GossipSent:         reg.Counter("dgc_member_gossip_sent_total", "Membership gossip messages sent (piggybacked and anti-entropy)."),
		GossipReceived:     reg.Counter("dgc_member_gossip_received_total", "Membership gossip messages merged from peers."),
		MemberDetectAborts: reg.Counter("dgc_member_detection_aborts_total", "Detections aborted because every remaining edge routed through a dead member."),
		LeaseActiveHolders: reg.Gauge("dgc_lease_active", "Remote holders whose scions are currently lease-guarded."),
		LeaseReclaimed:     reg.Counter("dgc_lease_reclaimed_total", "Scions reclaimed because their holder was declared dead past its lease."),
		LeaseHandoffs:      reg.Counter("dgc_lease_handoffs_total", "Lease-handoff messages applied, taking a draining holder's scions into custody."),
	}
}

// TransportMetrics is one endpoint's instrument block, shared by the TCP
// endpoint and the in-process fabric.
type TransportMetrics struct {
	MsgsSent       *Counter
	BytesSent      *Counter
	SendErrors     *Counter
	BatchesSent    *Counter
	MsgsReceived   *Counter
	BytesReceived  *Counter
	FramesReceived *Counter
	DecodeErrors   *Counter
	Dials          *Counter
	DialFailures   *Counter
	ConnsDropped   *Counter
	MsgsDropped    *Counter
}

// NewTransportMetrics registers (or rebinds) the transport instrument block
// on reg.
func NewTransportMetrics(reg *Registry) *TransportMetrics {
	return &TransportMetrics{
		MsgsSent:       reg.Counter("dgc_transport_msgs_sent_total", "Protocol messages sent (batch members counted individually)."),
		BytesSent:      reg.Counter("dgc_transport_bytes_sent_total", "Encoded bytes sent, including framing."),
		SendErrors:     reg.Counter("dgc_transport_send_errors_total", "Sends that failed after the reconnect retry."),
		BatchesSent:    reg.Counter("dgc_transport_batches_sent_total", "Batch frames shipped."),
		MsgsReceived:   reg.Counter("dgc_transport_msgs_received_total", "Protocol messages delivered to the handler (batch members counted individually)."),
		BytesReceived:  reg.Counter("dgc_transport_bytes_received_total", "Frame bytes received, including framing."),
		FramesReceived: reg.Counter("dgc_transport_frames_received_total", "Frames read off inbound connections."),
		DecodeErrors:   reg.Counter("dgc_transport_decode_errors_total", "Inbound frames whose payload failed to decode."),
		Dials:          reg.Counter("dgc_transport_dials_total", "Outbound connection attempts."),
		DialFailures:   reg.Counter("dgc_transport_dial_failures_total", "Outbound connection attempts that failed."),
		ConnsDropped:   reg.Counter("dgc_transport_conns_dropped_total", "Cached outbound connections torn down after a write failure."),
		MsgsDropped:    reg.Counter("dgc_transport_msgs_dropped_total", "Messages dropped in transit (fault injection or dead destination)."),
	}
}
