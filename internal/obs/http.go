package obs

import (
	"encoding/json"
	"net/http"
)

// NewHTTPHandler returns the opt-in introspection endpoint served by
// cmd/dgc-node, cmd/dgc-sim and examples/tcpcluster:
//
//	GET /metrics    Prometheus text exposition of every registry in set
//	GET /debug/dgc  JSON snapshot from the debug callback (one entry per
//	                node: table sizes, inflight detections with trace ids,
//	                last daemon timestamps, mailbox stats)
//
// debug may be nil, in which case /debug/dgc serves 404. The callback runs
// on the HTTP serving goroutine; implementations route through their
// driver's serialization (Node.step / LiveRuntime.do) themselves.
func NewHTTPHandler(set *Set, debug func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = set.WriteText(w)
	})
	mux.HandleFunc("/debug/dgc", func(w http.ResponseWriter, r *http.Request) {
		if debug == nil {
			http.NotFound(w, r)
			return
		}
		data, err := json.MarshalIndent(debug(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
		_, _ = w.Write([]byte("\n"))
	})
	return mux
}
