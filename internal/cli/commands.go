package cli

import (
	"context"
	"encoding/base64"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"dgc/internal/admin"
)

// fail prints err and returns exit code 1.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "dgcctl: %v\n", err)
	return 1
}

func newFlagSet(name string, stderr io.Writer) (*flag.FlagSet, *endpointFlags) {
	fs := flag.NewFlagSet("dgcctl "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	ef := &endpointFlags{}
	ef.register(fs)
	return fs, ef
}

func cmdStatus(args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("status", stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	printStatus(stdout, f)
	return 0
}

func printStatus(w io.Writer, f *fleet) {
	fmt.Fprintf(w, "build %s (%s, %s)\n", f.build.Version, f.build.Commit, f.build.Go)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tSTATE\tADDR\tCLOCK\tOBJECTS\tSCIONS\tSTUBS\tSWEPT\tDETECTIONS\tCYCLES\tINFLIGHT\tFAULTS")
	for _, id := range f.nodeIDs() {
		st := f.status[id]
		faults := "-"
		if st.Faults != nil && st.Faults.Active() {
			var parts []string
			if st.Faults.DropRate > 0 {
				parts = append(parts, fmt.Sprintf("drop=%.2f", st.Faults.DropRate))
			}
			if st.Faults.DelayMS > 0 {
				parts = append(parts, fmt.Sprintf("delay=%dms", st.Faults.DelayMS))
			}
			if st.Faults.Isolate {
				parts = append(parts, "isolated")
			} else if len(st.Faults.Partition) > 0 {
				parts = append(parts, "cut:"+strings.Join(st.Faults.Partition, "+"))
			}
			faults = strings.Join(parts, ",")
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			st.Node, st.State, st.Addr, st.Clock, st.Objects, st.Scions, st.Stubs,
			st.ObjectsSwept, st.Detections.Started, st.Detections.CyclesFound,
			st.Detections.Inflight, faults)
	}
	tw.Flush()
}

func cmdTop(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("top", stderr)
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	n := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return 0
			case <-time.After(*interval):
			}
		}
		if err := f.refresh(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "--- %s ---\n", time.Now().Format(time.TimeOnly))
		printStatus(stdout, f)
	}
	return 0
}

func cmdTables(args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("tables", stderr)
	nodeID := fs.String("node", "", "node to dump (optional on single-node clusters)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	id := *nodeID
	if id == "" {
		if id, err = f.one(); err != nil {
			return fail(stderr, err)
		}
	}
	c, err := f.client(id)
	if err != nil {
		return fail(stderr, err)
	}
	reply, err := c.Tables(id)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "node %s: %d scions, %d stubs\n", reply.Node, len(reply.Scions), len(reply.Stubs))
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "KIND\tREF\tIC")
	for _, sc := range reply.Scions {
		fmt.Fprintf(tw, "scion\t%s\t%d\n", sc.Ref, sc.IC)
	}
	for _, st := range reply.Stubs {
		fmt.Fprintf(tw, "stub\t%s\t%d\n", st.Ref, st.IC)
	}
	tw.Flush()
	return 0
}

func cmdDetect(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("detect", stderr)
	nodeID := fs.String("node", "", "node to start the detection round on (default: every node)")
	scion := fs.String("scion", "", `force one candidate, "SRC->OBJ@NODE" (as printed by tables)`)
	follow := fs.Bool("follow", false, "poll the detection to a terminal outcome via its trace id")
	timeout := fs.Duration("timeout", 30*time.Second, "give up following after this long")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	// Baseline every server's journal head BEFORE triggering anything, so
	// the follow stream replays exactly the events this command caused.
	baselines := make(map[*Client]uint64)
	if *follow {
		// A node that hasn't completed its first gossip exchange can't
		// route detections reliably; fail fast instead of timing out.
		if err := checkMembersReady(f); err != nil {
			return fail(stderr, err)
		}
		for _, sv := range f.servers() {
			head, err := sv.c.JournalHead(ctx, "")
			if err != nil {
				return fail(stderr, fmt.Errorf("%s: no event stream (server predates journals?): %w", sv.nodes[0], err))
			}
			baselines[sv.c] = head
		}
	}

	var traceID string
	switch {
	case *scion != "":
		// The scion names its owner: route there.
		ref, err := admin.ParseRefID(*scion)
		if err != nil {
			return fail(stderr, err)
		}
		owner := string(ref.Dst.Node)
		c, err := f.client(owner)
		if err != nil {
			return fail(stderr, err)
		}
		reply, err := c.Detect(owner, *scion)
		if err != nil {
			return fail(stderr, err)
		}
		res := reply.Result
		fmt.Fprintf(stdout, "detection %s/%d at %s: %s (trace %s)\n",
			res.Origin, res.Seq, owner, res.Outcome, res.TraceID)
		for _, g := range res.GarbageScions {
			fmt.Fprintf(stdout, "  garbage scion %s\n", g)
		}
		if res.Outcome != "forwarded" {
			return 0 // already terminal, nothing to follow
		}
		traceID = res.TraceID
	case *nodeID != "":
		c, err := f.client(*nodeID)
		if err != nil {
			return fail(stderr, err)
		}
		reply, err := c.Detect(*nodeID, "")
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "%s: started %d detections\n", *nodeID, reply.Started)
	default:
		total := 0
		for _, id := range f.nodeIDs() {
			c, err := f.client(id)
			if err != nil {
				continue
			}
			reply, err := c.Detect(id, "")
			if err != nil {
				fmt.Fprintf(stderr, "dgcctl: %s: %v\n", id, err)
				continue
			}
			total += reply.Started
		}
		fmt.Fprintf(stdout, "started %d detections across %d nodes\n", total, len(f.nodeIDs()))
	}
	if !*follow {
		return 0
	}
	return followDetections(ctx, f, traceID, baselines, *timeout, stdout, stderr)
}

// followDetections follows the event stream of every admin server until a
// terminal detection event arrives: cycle-found, or detection-end (whose
// detail carries the outcome). Following one trace id filters the streams to
// that detection; otherwise any terminal event past the pre-trigger journal
// baseline resolves the wait. No counter polling: the journal replay from
// the baseline makes the race between "detection finished" and "client
// subscribed" unlosable.
func followDetections(ctx context.Context, f *fleet, traceID string, baselines map[*Client]uint64, timeout time.Duration, stdout, stderr io.Writer) int {
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	terminal := make(chan admin.EventJSON, len(f.servers()))
	for _, sv := range f.servers() {
		sv := sv
		go func() {
			since := baselines[sv.c]
			if traceID != "" {
				// The trace filter scopes the replay, so rewind to the full
				// retained history: a detection that raced ahead of the
				// baseline capture is still found.
				since = 0
			}
			done := false
			for !done && ctx.Err() == nil {
				opts := EventStreamOptions{
					Since:   since,
					Kinds:   "cycle-found,detection-end",
					TraceID: traceID,
					Follow:  true,
					Timeout: timeout,
				}
				_, err := sv.c.StreamEvents(ctx, opts, func(e admin.EventJSON) bool {
					if e.Seq == 0 {
						return true // truncation/eviction marker
					}
					if e.Seq > since {
						since = e.Seq
					}
					select {
					case terminal <- e:
					default:
					}
					done = true
					return false
				})
				if err != nil && ctx.Err() == nil {
					// Node mid-restart or stream cut; resume from last seq.
					select {
					case <-ctx.Done():
					case <-time.After(200 * time.Millisecond):
					}
				}
			}
		}()
	}

	select {
	case <-ctx.Done():
		fmt.Fprintf(stderr, "dgcctl: detection still in flight after %v\n", timeout)
		return 1
	case e := <-terminal:
		outcome := e.Kind
		if o := detailField(e.Detail, "outcome"); o != "" {
			outcome = o
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if outcome == "cycle-found" {
			fmt.Fprintf(stdout, "cycle found at %s after %v", e.Node, elapsed)
		} else {
			fmt.Fprintf(stdout, "detection %s at %s after %v", outcome, e.Node, elapsed)
		}
		if e.Trace != "" {
			fmt.Fprintf(stdout, " (trace %s)", e.Trace)
		}
		fmt.Fprintln(stdout)
		return 0
	}
}

func cmdMembers(args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("members", stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "VIEW\tMEMBER\tSTATE\tINC\tADDR")
	views := 0
	for _, sv := range f.servers() {
		reply, err := sv.c.Members()
		if err != nil {
			fmt.Fprintf(stderr, "dgcctl: %s: %v\n", sv.nodes[0], err)
			continue
		}
		viewers := make([]string, 0, len(reply.Nodes))
		for id := range reply.Nodes {
			viewers = append(viewers, id)
		}
		sort.Strings(viewers)
		for _, viewer := range viewers {
			views++
			for _, m := range reply.Nodes[viewer] {
				fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\n", viewer, m.Node, m.State, m.Incarnation, m.Addr)
			}
		}
	}
	tw.Flush()
	if views == 0 {
		fmt.Fprintln(stdout, "no membership directories (cluster running with membership off?)")
	}
	return 0
}

func cmdJoin(args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("join", stderr)
	name := fs.String("node", "", "new member's node id (or pass 'name=addr' positionally)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id, addr := *name, ""
	switch fs.NArg() {
	case 1:
		arg := fs.Arg(0)
		if n, a, ok := strings.Cut(arg, "="); ok {
			id, addr = n, a
		} else {
			addr = arg
		}
	default:
		fmt.Fprintln(stderr, "usage: dgcctl join [-node NAME] <name=addr | addr>")
		return 2
	}
	if id == "" || addr == "" {
		return fail(stderr, fmt.Errorf("join needs the new member's name and transport address (name=addr)"))
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	// Seed the newcomer into every admin server: each hosted node records it
	// as joining and starts gossiping with it; the newcomer learns the rest
	// of the directory from the gossip it receives back.
	seeded := 0
	for _, sv := range f.servers() {
		if err := sv.c.Join(id, addr); err != nil {
			fmt.Fprintf(stderr, "dgcctl: %s: %v\n", sv.nodes[0], err)
			continue
		}
		seeded++
	}
	if seeded == 0 {
		return fail(stderr, fmt.Errorf("no server accepted the join"))
	}
	fmt.Fprintf(stdout, "member %s (%s) seeded into %d servers; gossip completes the join\n", id, addr, seeded)
	return 0
}

func cmdDrain(args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("drain", stderr)
	nodeID := fs.String("node", "", "node to drain (or pass it positionally)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id := *nodeID
	if fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: dgcctl drain <node>")
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	if id == "" {
		if id, err = f.one(); err != nil {
			return fail(stderr, err)
		}
	}
	c, err := f.client(id)
	if err != nil {
		return fail(stderr, err)
	}
	if err := c.Drain(id); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "%s: draining (references migrating; the node declares itself dead when done)\n", id)
	return 0
}

// checkMembersReady fails fast when any hosted node still sees itself as
// "joining" — gossip hasn't completed, so a detection launched now would
// stall rather than converge. Servers without membership pass vacuously.
func checkMembersReady(f *fleet) error {
	for _, sv := range f.servers() {
		reply, err := sv.c.Members()
		if err != nil {
			continue // pre-membership server: nothing to check
		}
		for _, viewer := range sv.nodes {
			for _, m := range reply.Nodes[viewer] {
				if m.Node == viewer && m.State == "joining" {
					return fmt.Errorf("node %s is still joining (no gossip exchanged yet) — wait for 'dgcctl members' to show it alive", viewer)
				}
			}
		}
	}
	return nil
}

func cmdInject(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(stderr, "usage: dgcctl inject kill|restart|delay|drop|partition|heal [flags]")
		return 2
	}
	action, rest := args[0], args[1:]
	fs, ef := newFlagSet("inject "+action, stderr)
	nodeID := fs.String("node", "", "target node (optional on single-node clusters)")
	rate := fs.Float64("rate", 0, "drop probability for 'drop' (0..1)")
	delay := fs.Duration("delay", 0, "injected latency for 'delay'")
	peers := fs.String("peers", "", "comma-separated peers for 'partition' (empty = isolate from all)")
	ttl := fs.Duration("for", 0, "auto-heal delay/drop/partition after this long (0 = until healed)")
	recoverAfter := fs.Duration("recover", 0, "auto-restart after 'kill' (0 = stay down)")
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	id := *nodeID
	if id == "" {
		if id, err = f.one(); err != nil {
			return fail(stderr, err)
		}
	}
	c, err := f.client(id)
	if err != nil {
		return fail(stderr, err)
	}
	req := admin.InjectRequest{Action: action, Rate: *rate}
	if *delay > 0 {
		req.Delay = delay.String()
	}
	if *ttl > 0 {
		req.For = ttl.String()
	}
	if *recoverAfter > 0 {
		req.Recover = recoverAfter.String()
	}
	if *peers != "" {
		req.Peers = strings.Split(*peers, ",")
	}
	if err := c.Inject(id, req); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "%s: %s injected\n", id, action)
	return 0
}

func cmdSnapshot(args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("snapshot", stderr)
	nodeID := fs.String("node", "", "target node (optional on single-node clusters)")
	out := fs.String("o", "", "write the state here (default <node>.state)")
	restore := fs.String("restore", "", "restore the node from this state file instead of saving")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}
	id := *nodeID
	if id == "" {
		if id, err = f.one(); err != nil {
			return fail(stderr, err)
		}
	}
	c, err := f.client(id)
	if err != nil {
		return fail(stderr, err)
	}
	if *restore != "" {
		data, err := os.ReadFile(*restore)
		if err != nil {
			return fail(stderr, err)
		}
		if err := c.Restore(id, base64.StdEncoding.EncodeToString(data)); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "%s: restored %d bytes from %s\n", id, len(data), *restore)
		return 0
	}
	reply, err := c.Snapshot(id)
	if err != nil {
		return fail(stderr, err)
	}
	data, err := base64.StdEncoding.DecodeString(reply.State)
	if err != nil {
		return fail(stderr, err)
	}
	path := *out
	if path == "" {
		path = id + ".state"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "%s: %d bytes saved to %s\n", id, len(data), path)
	return 0
}
