package cli

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dgc/internal/admin"
)

func te(node string, seq uint64, kind, detail string, ms int) traceEvent {
	return traceEvent{
		EventJSON: admin.EventJSON{Node: node, Seq: seq, Kind: kind, Detail: detail},
		at:        time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC).Add(time.Duration(ms) * time.Millisecond),
	}
}

func TestDetailField(t *testing.T) {
	d := "det=A/3 to=B along=A->1@B hops=2"
	if got := detailField(d, "to"); got != "B" {
		t.Errorf("to = %q", got)
	}
	if got := detailField(d, "hops"); got != "2" {
		t.Errorf("hops = %q", got)
	}
	if got := detailField(d, "missing"); got != "" {
		t.Errorf("missing = %q", got)
	}
	// "to" must not match the "to=..." inside another key's value prefix.
	if got := detailField("auto=x to=y", "to"); got != "y" {
		t.Errorf("to = %q", got)
	}
}

func TestBuildSpanTreeCausalOrder(t *testing.T) {
	// B originates, forwards to A, A forwards to C, C finds the cycle and B
	// records the terminal outcome: the tree must read B -> A -> C.
	events := []traceEvent{
		te("B", 1, "detection-start", "det=B/1 candidate=A->1@B", 0),
		te("B", 2, "cdm-sent", "det=B/1 to=A along=A->1@B hops=1", 1),
		te("A", 1, "cdm-handled", "det=B/1 outcome=forwarded", 2),
		te("A", 2, "cdm-sent", "det=B/1 to=C along=C->1@A hops=2", 3),
		te("C", 1, "cdm-handled", "det=B/1 outcome=forwarded", 4),
		te("C", 2, "cdm-sent", "det=B/1 to=B along=B->1@C hops=3", 5),
		te("B", 3, "cycle-found", "det=B/1 members=3", 6),
		te("B", 4, "detection-end", "det=B/1 outcome=cycle-found", 7),
	}
	root := buildSpanTree(events)
	if root == nil || root.node != "B" {
		t.Fatalf("root = %+v, want B", root)
	}
	if len(root.children) != 1 || root.children[0].node != "A" {
		t.Fatalf("B children = %+v, want [A]", root.children)
	}
	a := root.children[0]
	if len(a.children) != 1 || a.children[0].node != "C" {
		t.Fatalf("A children = %+v, want [C]", a.children)
	}
	if n := len(root.events); n != 4 {
		t.Errorf("B holds %d events, want 4", n)
	}

	term, ok := terminalEvent(events)
	if !ok || term.Kind != "detection-end" {
		t.Errorf("terminal = %+v ok=%v", term, ok)
	}

	var out bytes.Buffer
	printSpanTree(&out, root, events[0].at)
	s := out.String()
	for _, want := range []string{"B (4 events)", "  A (2 events)", "    C (2 events)", "cycle-found"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	// A's block must come after B's and before C's (causal depth ordering).
	if bi, ai, ci := strings.Index(s, "B (4"), strings.Index(s, "A (2"), strings.Index(s, "C (2"); !(bi < ai && ai < ci) {
		t.Errorf("block order B=%d A=%d C=%d:\n%s", bi, ai, ci, s)
	}
}

func TestBuildSpanTreeOrphansAttachToRoot(t *testing.T) {
	// The linking cdm-sent from B to C was truncated out of the ring: C still
	// shows up, parented to the root rather than dropped from the tree.
	events := []traceEvent{
		te("B", 1, "detection-start", "det=B/1", 0),
		te("C", 1, "cdm-handled", "det=B/1 outcome=forwarded", 2),
	}
	root := buildSpanTree(events)
	if root.node != "B" || len(root.children) != 1 || root.children[0].node != "C" {
		t.Fatalf("tree = %+v", root)
	}
}

func TestBuildSpanTreeNoStart(t *testing.T) {
	// History truncated past detection-start: the oldest-seen node roots the
	// tree so the command still renders something useful.
	events := []traceEvent{
		te("A", 5, "cdm-handled", "det=B/1 outcome=forwarded", 0),
		te("A", 6, "cdm-sent", "det=B/1 to=C hops=4", 1),
		te("C", 9, "cycle-found", "det=B/1", 2),
	}
	root := buildSpanTree(events)
	if root.node != "A" || len(root.children) != 1 || root.children[0].node != "C" {
		t.Fatalf("tree = %+v", root)
	}
	if buildSpanTree(nil) != nil {
		t.Error("empty events should yield nil tree")
	}
}
