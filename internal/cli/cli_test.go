package cli

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

var traceIDRe = regexp.MustCompile(`trace ([0-9a-f]{16})`)

// syncBuffer lets the up goroutine and test assertions share a writer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

const e2eSpec = `
cluster:
  tick: 25ms
  lgc_every: 2
  snapshot_every: 4
  detect_every: 0     # detections run only when dgcctl forces them
  candidate_age: 0
  demo_ring: garbage
nodes:
  - id: A
  - id: B
  - id: C
`

// TestLiveE2EDgcctl drives a real 3-node TCP cluster end to end purely
// through the dgcctl command surface: up -> status -> forced detection of
// the demo garbage ring -> kill/recover -> snapshot. The name keeps it in
// CI's live-e2e (-race) net.
func TestLiveE2EDgcctl(t *testing.T) {
	dir := t.TempDir()
	specFile := filepath.Join(dir, "cluster.yaml")
	epFile := filepath.Join(dir, "endpoints")
	if err := os.WriteFile(specFile, []byte(e2eSpec), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	upOut := &syncBuffer{}
	upDone := make(chan int, 1)
	go func() {
		upDone <- RunContext(ctx, []string{"up", "-f", specFile, "-endpoints-file", epFile}, upOut, upOut)
	}()

	// The cluster is ready when the endpoints file appears and status works.
	ef := []string{"-endpoints-file", epFile}
	waitFor(t, 15*time.Second, "cluster up", func() bool {
		if _, err := os.Stat(epFile); err != nil {
			return false
		}
		var out bytes.Buffer
		return Run(append([]string{"status"}, ef...), &out, io.Discard) == 0 &&
			strings.Count(out.String(), "running") == 3
	})

	// The garbage ring: one anchor per node, kept alive only by scions.
	var status bytes.Buffer
	if code := Run(append([]string{"status"}, ef...), &status, &status); code != 0 {
		t.Fatalf("status: exit %d\n%s", code, status.String())
	}
	if !strings.Contains(status.String(), "A") || !strings.Contains(status.String(), "build ") {
		t.Fatalf("status output:\n%s", status.String())
	}

	var tables bytes.Buffer
	if code := Run(append([]string{"tables", "-node", "B"}, ef...), &tables, &tables); code != 0 {
		t.Fatalf("tables: exit %d\n%s", code, tables.String())
	}
	// Anchors are each node's first allocation, so A's reference into B is
	// deterministically the scion A->1@B.
	if !strings.Contains(tables.String(), "A->1@B") {
		t.Fatalf("tables -node B missing expected scion A->1@B:\n%s", tables.String())
	}

	// Force detection at the known scion until the ring is reclaimed.
	// A single attempt can land mid-churn and abort; the operator loop is
	// "run dgcctl detect again". -follow resolves through the event stream
	// (no counter polling), and every attempt prints its causal trace id.
	sawTrace := false
	waitFor(t, 20*time.Second, "ring reclaimed via dgcctl detect", func() bool {
		var out bytes.Buffer
		Run(append([]string{"detect", "-scion", "A->1@B", "-follow", "-timeout", "5s"}, ef...), &out, &out)
		sawTrace = sawTrace || traceIDRe.MatchString(out.String())
		return clusterObjects(t, epFile) == 0
	})
	if !sawTrace {
		t.Fatal("detect output never printed a trace id")
	}

	// tail replays the retained journal; the cycle-found line names the
	// winning detection's trace id (a racing attempt may have printed its
	// own id above, so the journal is the authority).
	var tail bytes.Buffer
	if code := Run(append([]string{"tail", "-all", "-kind", "cycle-found", "-for", "1s"}, ef...), &tail, &tail); code != 0 {
		t.Fatalf("tail: exit %d\n%s", code, tail.String())
	}
	m := regexp.MustCompile(`cycle-found\s+\[([0-9a-f]{16})\]`).FindStringSubmatch(tail.String())
	if m == nil {
		t.Fatalf("tail shows no cycle-found event:\n%s", tail.String())
	}

	// The winning detection crossed the whole ring: its reconstructed
	// timeline must be a causal span tree spanning all three nodes ending in
	// a terminal event.
	var tl bytes.Buffer
	if code := Run(append(append([]string{"trace", "-wait", "5s"}, ef...), m[1]), &tl, &tl); code != 0 {
		t.Fatalf("trace: exit %d\n%s", code, tl.String())
	}
	for _, want := range []string{"across 3 nodes", "detection-start", "cdm-sent", "cycle-found", "A (", "B (", "C ("} {
		if !strings.Contains(tl.String(), want) {
			t.Fatalf("trace output missing %q:\n%s", want, tl.String())
		}
	}

	// Chaos: kill B with auto-recover, confirm it comes back.
	var inj bytes.Buffer
	if code := Run(append([]string{"inject", "kill", "-node", "B", "-recover", "200ms"}, ef...), &inj, &inj); code != 0 {
		t.Fatalf("inject kill: exit %d\n%s", code, inj.String())
	}
	waitFor(t, 15*time.Second, "B recovered", func() bool {
		var out bytes.Buffer
		if Run(append([]string{"status"}, ef...), &out, io.Discard) != 0 {
			return false
		}
		return strings.Count(out.String(), "running") == 3
	})

	// Snapshot through the API.
	stateFile := filepath.Join(dir, "a.state")
	var snap bytes.Buffer
	if code := Run(append([]string{"snapshot", "-node", "A", "-o", stateFile}, ef...), &snap, &snap); code != 0 {
		t.Fatalf("snapshot: exit %d\n%s", code, snap.String())
	}
	if fi, err := os.Stat(stateFile); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot wrote nothing: %v", err)
	}

	cancel()
	select {
	case code := <-upDone:
		if code != 0 {
			t.Fatalf("up exited %d:\n%s", code, upOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("up did not shut down:\n%s", upOut.String())
	}
	if !strings.Contains(upOut.String(), "cluster stopped") {
		t.Errorf("up output missing graceful stop:\n%s", upOut.String())
	}
}

// clusterObjects sums live objects across the cluster via the admin API.
func clusterObjects(t *testing.T, epFile string) int {
	t.Helper()
	data, err := os.ReadFile(epFile)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := parseEndpointsFile(data)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ep := range eps {
		reply, err := NewClient(ep.Addr).Status()
		if err != nil {
			return -1 // mid-restart; caller retries
		}
		for _, st := range reply.Nodes {
			total += st.Objects
		}
	}
	return total
}

func waitFor(t *testing.T, timeout time.Duration, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !fn() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestUpRejectsBadSpec(t *testing.T) {
	dir := t.TempDir()
	specFile := filepath.Join(dir, "bad.yaml")
	if err := os.WriteFile(specFile, []byte("cluster:\n  wibble: 1\nnodes:\n  - id: A\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := Run([]string{"up", "-f", specFile}, &out, &out); code == 0 {
		t.Fatalf("up accepted a bad spec:\n%s", out.String())
	}
}

func TestEndpointResolution(t *testing.T) {
	// -e list with and without names.
	ef := &endpointFlags{list: "A=1.2.3.4:1, 5.6.7.8:2"}
	eps, err := ef.resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := []Endpoint{{Name: "A", Addr: "1.2.3.4:1"}, {Addr: "5.6.7.8:2"}}
	if len(eps) != 2 || eps[0] != want[0] || eps[1] != want[1] {
		t.Errorf("resolve -e = %+v", eps)
	}

	// Endpoints file.
	dir := t.TempDir()
	file := filepath.Join(dir, "eps")
	if err := os.WriteFile(file, []byte("# comment\nA 127.0.0.1:1\nB 127.0.0.1:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ef = &endpointFlags{file: file}
	eps, err = ef.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0].Name != "A" || eps[1].Addr != "127.0.0.1:2" {
		t.Errorf("resolve file = %+v", eps)
	}

	// Missing everything fails with guidance.
	ef = &endpointFlags{file: filepath.Join(dir, "nope")}
	if _, err := ef.resolve(); err == nil || !strings.Contains(err.Error(), "dgcctl up") {
		t.Errorf("missing endpoints error = %v", err)
	}
}

func TestUnknownCommand(t *testing.T) {
	var out bytes.Buffer
	if code := Run([]string{"frobnicate"}, &out, &out); code != 2 {
		t.Errorf("unknown command exit = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "Usage") {
		t.Errorf("no usage shown:\n%s", out.String())
	}
}
