// Package cli implements dgcctl, the operator CLI over the admin control
// plane (internal/admin). Every command talks to running clusters purely
// through the versioned JSON admin API — the same surface cmd/dgc-node,
// cmd/dgc-sim and examples/tcpcluster serve — so one binary drives any of
// them. The entry point is testable: Run takes argv and writers and returns
// an exit code, with no global state.
package cli

import (
	"context"
	"fmt"
	"io"
)

const usage = `dgcctl drives a running dgc cluster through its admin API.

Usage: dgcctl <command> [flags]

Commands:
  status     cluster overview: per-node state, tables, detection counters
  top        live status, refreshed periodically
  tables     one node's scion and stub tables
  detect     force cycle detection (a full round, or one scion with -scion)
  tail       follow the live event journal of every node, merged
  trace      reconstruct one detection's causal span tree across nodes
  inject     fault injection: kill, restart, delay, drop, partition, heal
  snapshot   save (or -restore) a node's durable collector state
  members    per-node views of the gossip membership directory
  join       seed a new member (name=addr) into every running node
  drain      migrate a node's exported references, then retire it
  up         start a local TCP cluster from a declarative spec file

Auth:
  Servers started with -admin-token (or $DGC_ADMIN_TOKEN) require a bearer
  token: pass -token, or set DGC_ADMIN_TOKEN for dgcctl too.

Endpoints:
  Commands find admin endpoints via -e (comma-separated [name=]host:port),
  the DGCCTL_ENDPOINTS environment variable (same syntax), or an endpoints
  file written by 'dgcctl up' (-endpoints-file, default dgcctl.endpoints).

Run 'dgcctl <command> -h' for command flags.
`

// Run executes one dgcctl invocation: args is argv without the program name.
func Run(args []string, stdout, stderr io.Writer) int {
	return RunContext(context.Background(), args, stdout, stderr)
}

// RunContext is Run with cancellation: long-running commands (up, top,
// detect -follow) stop cleanly when ctx is done.
func RunContext(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "status":
		return cmdStatus(rest, stdout, stderr)
	case "top":
		return cmdTop(ctx, rest, stdout, stderr)
	case "tables":
		return cmdTables(rest, stdout, stderr)
	case "detect":
		return cmdDetect(ctx, rest, stdout, stderr)
	case "tail":
		return cmdTail(ctx, rest, stdout, stderr)
	case "trace":
		return cmdTrace(ctx, rest, stdout, stderr)
	case "inject":
		return cmdInject(rest, stdout, stderr)
	case "snapshot":
		return cmdSnapshot(rest, stdout, stderr)
	case "members":
		return cmdMembers(rest, stdout, stderr)
	case "join":
		return cmdJoin(rest, stdout, stderr)
	case "drain":
		return cmdDrain(rest, stdout, stderr)
	case "up":
		return cmdUp(ctx, rest, stdout, stderr)
	case "help", "-h", "--help", "-help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "dgcctl: unknown command %q\n\n%s", cmd, usage)
		return 2
	}
}
