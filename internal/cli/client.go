package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dgc/internal/admin"
	"dgc/internal/node"
)

// Endpoint is one admin API address, optionally tagged with the node it
// hosts (a single server may host several nodes — dgc-sim, tcpcluster).
type Endpoint struct {
	Name string // node id when known, "" otherwise
	Addr string // host:port of the admin HTTP listener
}

// endpointFlags are the shared -e / -endpoints-file pair every command
// registers.
type endpointFlags struct {
	list string
	file string
}

func (ef *endpointFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&ef.list, "e", "", "admin endpoints, comma-separated [name=]host:port (overrides the endpoints file)")
	fs.StringVar(&ef.file, "endpoints-file", "", "endpoints file written by 'dgcctl up' (default $DGCCTL_ENDPOINTS or dgcctl.endpoints)")
}

// resolve returns the endpoint list: -e beats DGCCTL_ENDPOINTS beats the
// endpoints file.
func (ef *endpointFlags) resolve() ([]Endpoint, error) {
	list := ef.list
	if list == "" {
		if env := os.Getenv("DGCCTL_ENDPOINTS"); env != "" && !strings.Contains(env, string(os.PathSeparator)) && !fileExists(env) {
			list = env
		}
	}
	if list != "" {
		var eps []Endpoint
		for _, item := range strings.Split(list, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			name, addr, ok := strings.Cut(item, "=")
			if !ok {
				eps = append(eps, Endpoint{Addr: item})
			} else {
				eps = append(eps, Endpoint{Name: name, Addr: addr})
			}
		}
		if len(eps) == 0 {
			return nil, fmt.Errorf("empty endpoint list %q", list)
		}
		return eps, nil
	}
	file := ef.file
	if file == "" {
		if env := os.Getenv("DGCCTL_ENDPOINTS"); env != "" && fileExists(env) {
			file = env
		} else {
			file = "dgcctl.endpoints"
		}
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("no endpoints: pass -e, set DGCCTL_ENDPOINTS, or run 'dgcctl up' (%v)", err)
	}
	return parseEndpointsFile(data)
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// parseEndpointsFile reads the "name addr" lines 'dgcctl up' writes.
func parseEndpointsFile(data []byte) ([]Endpoint, error) {
	var eps []Endpoint
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch len(fields) {
		case 1:
			eps = append(eps, Endpoint{Addr: fields[0]})
		case 2:
			eps = append(eps, Endpoint{Name: fields[0], Addr: fields[1]})
		default:
			return nil, fmt.Errorf("malformed endpoints line %q", line)
		}
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("endpoints file is empty")
	}
	return eps, nil
}

// Client talks to one admin server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the admin server at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

func (c *Client) post(path string, body []byte, out any) error {
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

func decodeReply(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s", apiErr.Error)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Status fetches /api/v1/status.
func (c *Client) Status() (*admin.StatusReply, error) {
	var reply admin.StatusReply
	if err := c.get("/api/v1/status", &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Detections fetches /api/v1/detections.
func (c *Client) Detections() (*admin.DetectionsReply, error) {
	var reply admin.DetectionsReply
	if err := c.get("/api/v1/detections", &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// TablesReply mirrors the /api/v1/tables payload.
type TablesReply struct {
	SchemaVersion int `json:"schema_version"`
	node.TableDump
}

// Tables fetches one node's scion/stub tables.
func (c *Client) Tables(nodeID string) (*TablesReply, error) {
	var reply TablesReply
	if err := c.get("/api/v1/tables?node="+nodeID, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Detect forces detection on nodeID: a full candidate round, or one scion
// when scion is non-empty.
func (c *Client) Detect(nodeID, scion string) (*admin.DetectReply, error) {
	path := "/api/v1/detect?node=" + nodeID
	if scion != "" {
		path += "&scion=" + strings.ReplaceAll(scion, ">", "%3E")
	}
	var reply admin.DetectReply
	if err := c.post(path, nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Inject posts a fault-injection action.
func (c *Client) Inject(nodeID string, req admin.InjectRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.post("/api/v1/inject?node="+nodeID, body, nil)
}

// Snapshot serializes a node's durable state.
func (c *Client) Snapshot(nodeID string) (*admin.SnapshotReply, error) {
	var reply admin.SnapshotReply
	if err := c.post("/api/v1/snapshot?node="+nodeID, nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Restore replaces a node's durable state with base64 text.
func (c *Client) Restore(nodeID, stateB64 string) error {
	return c.post("/api/v1/restore?node="+nodeID, []byte(stateB64), nil)
}

// fleet is the resolved set of admin endpoints a command operates on, with
// the node -> client mapping discovered from live status.
type fleet struct {
	eps     []Endpoint
	clients map[string]*Client // node id -> client, filled by refresh
	status  map[string]admin.NodeStatus
	build   admin.BuildInfo
}

func newFleet(ef *endpointFlags) (*fleet, error) {
	eps, err := ef.resolve()
	if err != nil {
		return nil, err
	}
	return &fleet{eps: eps}, nil
}

// refresh queries status from every endpoint, building the merged per-node
// view and the node -> client routing table. Unreachable endpoints named in
// the endpoints file degrade to a "down" row instead of failing the whole
// command (a killed node's admin listener dies with it).
func (f *fleet) refresh() error {
	f.clients = make(map[string]*Client)
	f.status = make(map[string]admin.NodeStatus)
	var firstErr error
	reached := 0
	for _, ep := range f.eps {
		c := NewClient(ep.Addr)
		reply, err := c.Status()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %v", ep.Addr, err)
			}
			if ep.Name != "" {
				f.status[ep.Name] = admin.NodeStatus{Node: ep.Name, State: "unreachable"}
				f.clients[ep.Name] = c
			}
			continue
		}
		reached++
		f.build = reply.Build
		for id, st := range reply.Nodes {
			f.status[id] = st
			f.clients[id] = c
		}
	}
	if reached == 0 {
		return fmt.Errorf("no admin endpoint reachable: %v", firstErr)
	}
	return nil
}

// client returns the admin client hosting nodeID.
func (f *fleet) client(nodeID string) (*Client, error) {
	if c, ok := f.clients[nodeID]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("no endpoint hosts node %q (known: %s)", nodeID, strings.Join(f.nodeIDs(), ", "))
}

// one returns the only node's id, for single-node clusters where -node can
// be omitted.
func (f *fleet) one() (string, error) {
	ids := f.nodeIDs()
	if len(ids) == 1 {
		return ids[0], nil
	}
	return "", fmt.Errorf("-node is required (cluster has %d nodes: %s)", len(ids), strings.Join(ids, ", "))
}

func (f *fleet) nodeIDs() []string {
	ids := make([]string, 0, len(f.status))
	for id := range f.status {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
