package cli

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dgc/internal/admin"
	"dgc/internal/node"
)

// Endpoint is one admin API address, optionally tagged with the node it
// hosts (a single server may host several nodes — dgc-sim, tcpcluster).
type Endpoint struct {
	Name string // node id when known, "" otherwise
	Addr string // host:port of the admin HTTP listener
}

// endpointFlags are the shared -e / -endpoints-file / -token set every
// command registers.
type endpointFlags struct {
	list  string
	file  string
	token string
}

func (ef *endpointFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&ef.list, "e", "", "admin endpoints, comma-separated [name=]host:port (overrides the endpoints file)")
	fs.StringVar(&ef.file, "endpoints-file", "", "endpoints file written by 'dgcctl up' (default $DGCCTL_ENDPOINTS or dgcctl.endpoints)")
	fs.StringVar(&ef.token, "token", os.Getenv("DGC_ADMIN_TOKEN"), "bearer token for servers started with -admin-token (default $DGC_ADMIN_TOKEN)")
}

// resolve returns the endpoint list: -e beats DGCCTL_ENDPOINTS beats the
// endpoints file.
func (ef *endpointFlags) resolve() ([]Endpoint, error) {
	list := ef.list
	if list == "" {
		if env := os.Getenv("DGCCTL_ENDPOINTS"); env != "" && !strings.Contains(env, string(os.PathSeparator)) && !fileExists(env) {
			list = env
		}
	}
	if list != "" {
		var eps []Endpoint
		for _, item := range strings.Split(list, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			name, addr, ok := strings.Cut(item, "=")
			if !ok {
				eps = append(eps, Endpoint{Addr: item})
			} else {
				eps = append(eps, Endpoint{Name: name, Addr: addr})
			}
		}
		if len(eps) == 0 {
			return nil, fmt.Errorf("empty endpoint list %q", list)
		}
		return eps, nil
	}
	file := ef.file
	if file == "" {
		if env := os.Getenv("DGCCTL_ENDPOINTS"); env != "" && fileExists(env) {
			file = env
		} else {
			file = "dgcctl.endpoints"
		}
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("no endpoints: pass -e, set DGCCTL_ENDPOINTS, or run 'dgcctl up' (%v)", err)
	}
	return parseEndpointsFile(data)
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// parseEndpointsFile reads the "name addr" lines 'dgcctl up' writes.
func parseEndpointsFile(data []byte) ([]Endpoint, error) {
	var eps []Endpoint
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch len(fields) {
		case 1:
			eps = append(eps, Endpoint{Addr: fields[0]})
		case 2:
			eps = append(eps, Endpoint{Name: fields[0], Addr: fields[1]})
		default:
			return nil, fmt.Errorf("malformed endpoints line %q", line)
		}
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("endpoints file is empty")
	}
	return eps, nil
}

// Client talks to one admin server.
type Client struct {
	base  string
	token string // bearer token sent on every request when non-empty
	hc    *http.Client
	// sc serves the long-lived /api/v1/events streams: no overall timeout
	// (the server bounds stream duration), cancellation via context.
	sc *http.Client
}

// NewClient returns a client for the admin server at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 10 * time.Second},
		sc:   &http.Client{},
	}
}

// SetToken makes every request carry "Authorization: Bearer <token>", for
// servers started with an admin token.
func (c *Client) SetToken(token string) { c.token = token }

func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

func (c *Client) get(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

func (c *Client) post(path string, body []byte, out any) error {
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

func decodeReply(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s", apiErr.Error)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Status fetches /api/v1/status.
func (c *Client) Status() (*admin.StatusReply, error) {
	var reply admin.StatusReply
	if err := c.get("/api/v1/status", &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Detections fetches /api/v1/detections.
func (c *Client) Detections() (*admin.DetectionsReply, error) {
	var reply admin.DetectionsReply
	if err := c.get("/api/v1/detections", &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// TablesReply mirrors the /api/v1/tables payload.
type TablesReply struct {
	SchemaVersion int `json:"schema_version"`
	node.TableDump
}

// Tables fetches one node's scion/stub tables.
func (c *Client) Tables(nodeID string) (*TablesReply, error) {
	var reply TablesReply
	if err := c.get("/api/v1/tables?node="+nodeID, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Detect forces detection on nodeID: a full candidate round, or one scion
// when scion is non-empty.
func (c *Client) Detect(nodeID, scion string) (*admin.DetectReply, error) {
	path := "/api/v1/detect?node=" + nodeID
	if scion != "" {
		path += "&scion=" + strings.ReplaceAll(scion, ">", "%3E")
	}
	var reply admin.DetectReply
	if err := c.post(path, nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Inject posts a fault-injection action.
func (c *Client) Inject(nodeID string, req admin.InjectRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.post("/api/v1/inject?node="+nodeID, body, nil)
}

// Snapshot serializes a node's durable state.
func (c *Client) Snapshot(nodeID string) (*admin.SnapshotReply, error) {
	var reply admin.SnapshotReply
	if err := c.post("/api/v1/snapshot?node="+nodeID, nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Restore replaces a node's durable state with base64 text.
func (c *Client) Restore(nodeID, stateB64 string) error {
	return c.post("/api/v1/restore?node="+nodeID, []byte(stateB64), nil)
}

// Members fetches the per-node membership directory views.
func (c *Client) Members() (*admin.MembersReply, error) {
	var reply admin.MembersReply
	if err := c.get("/api/v1/members", &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Join seeds a new member (name + transport dial address) into every node
// this server hosts.
func (c *Client) Join(nodeID, addr string) error {
	body, err := json.Marshal(admin.JoinRequest{Node: nodeID, Addr: addr})
	if err != nil {
		return err
	}
	return c.post("/api/v1/join", body, nil)
}

// Drain starts nodeID's voluntary departure.
func (c *Client) Drain(nodeID string) error {
	return c.post("/api/v1/drain?node="+nodeID, nil, nil)
}

// EventStreamOptions selects the /api/v1/events slice to stream.
type EventStreamOptions struct {
	Node    string        // ?node= (optional; servers default to their first journaled node)
	Since   uint64        // resume after this sequence number
	Kinds   string        // comma-separated kind names, "" = all
	TraceID string        // hex causal trace id, "" = all
	Follow  bool          // long-poll live events after the backlog
	Timeout time.Duration // server-side stream bound in follow mode
}

func (o EventStreamOptions) query() string {
	q := url.Values{}
	if o.Node != "" {
		q.Set("node", o.Node)
	}
	if o.Since > 0 {
		q.Set("since", strconv.FormatUint(o.Since, 10))
	}
	if o.Kinds != "" {
		q.Set("kind", o.Kinds)
	}
	if o.TraceID != "" {
		q.Set("trace", o.TraceID)
	}
	if o.Follow {
		q.Set("follow", "true")
	}
	if o.Timeout > 0 {
		q.Set("timeout", o.Timeout.String())
	}
	return q.Encode()
}

// StreamEvents reads the admin event journal as NDJSON, invoking fn for
// every line (journal events and truncation markers both). fn returning
// false stops the stream early. The returned head is the journal's sequence
// number at request time (the Dgc-Journal-Head header), usable as a
// baseline for a later Since.
func (c *Client) StreamEvents(ctx context.Context, opts EventStreamOptions, fn func(admin.EventJSON) bool) (head uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/events?"+opts.query(), nil)
	if err != nil {
		return 0, err
	}
	c.authorize(req)
	resp, err := c.sc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return 0, fmt.Errorf("%s", apiErr.Error)
		}
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	head, _ = strconv.ParseUint(resp.Header.Get("Dgc-Journal-Head"), 10, 64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev admin.EventJSON
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return head, fmt.Errorf("bad event line %q: %w", line, err)
		}
		if !fn(ev) {
			return head, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return head, err
	}
	return head, nil
}

// JournalHead returns the endpoint journal's current sequence number
// without replaying any events (a since-past-the-end probe).
func (c *Client) JournalHead(ctx context.Context, nodeID string) (uint64, error) {
	return c.StreamEvents(ctx, EventStreamOptions{
		Node:  nodeID,
		Since: math.MaxUint64,
	}, func(admin.EventJSON) bool { return false })
}

// fleet is the resolved set of admin endpoints a command operates on, with
// the node -> client mapping discovered from live status.
type fleet struct {
	eps     []Endpoint
	token   string
	clients map[string]*Client // node id -> client, filled by refresh
	status  map[string]admin.NodeStatus
	build   admin.BuildInfo
}

func newFleet(ef *endpointFlags) (*fleet, error) {
	eps, err := ef.resolve()
	if err != nil {
		return nil, err
	}
	return &fleet{eps: eps, token: ef.token}, nil
}

// refresh queries status from every endpoint, building the merged per-node
// view and the node -> client routing table. Unreachable endpoints named in
// the endpoints file degrade to a "down" row instead of failing the whole
// command (a killed node's admin listener dies with it).
func (f *fleet) refresh() error {
	f.clients = make(map[string]*Client)
	f.status = make(map[string]admin.NodeStatus)
	var firstErr error
	reached := 0
	for _, ep := range f.eps {
		c := NewClient(ep.Addr)
		c.SetToken(f.token)
		reply, err := c.Status()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %v", ep.Addr, err)
			}
			if ep.Name != "" {
				f.status[ep.Name] = admin.NodeStatus{Node: ep.Name, State: "unreachable"}
				f.clients[ep.Name] = c
			}
			continue
		}
		reached++
		f.build = reply.Build
		for id, st := range reply.Nodes {
			f.status[id] = st
			f.clients[id] = c
		}
	}
	if reached == 0 {
		return fmt.Errorf("no admin endpoint reachable: %v", firstErr)
	}
	return nil
}

// client returns the admin client hosting nodeID.
func (f *fleet) client(nodeID string) (*Client, error) {
	if c, ok := f.clients[nodeID]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("no endpoint hosts node %q (known: %s)", nodeID, strings.Join(f.nodeIDs(), ", "))
}

// one returns the only node's id, for single-node clusters where -node can
// be omitted.
func (f *fleet) one() (string, error) {
	ids := f.nodeIDs()
	if len(ids) == 1 {
		return ids[0], nil
	}
	return "", fmt.Errorf("-node is required (cluster has %d nodes: %s)", len(ids), strings.Join(ids, ", "))
}

func (f *fleet) nodeIDs() []string {
	ids := make([]string, 0, len(f.status))
	for id := range f.status {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// serverClient is one distinct admin server and the nodes it hosts.
type serverClient struct {
	c     *Client
	nodes []string
}

// servers deduplicates the node -> client routing table into one entry per
// admin server (a dgc-sim or tcpcluster process hosts several nodes behind
// one listener), in stable node-id order.
func (f *fleet) servers() []serverClient {
	index := make(map[*Client]int)
	var out []serverClient
	for _, id := range f.nodeIDs() {
		c := f.clients[id]
		i, ok := index[c]
		if !ok {
			i = len(out)
			index[c] = i
			out = append(out, serverClient{c: c})
		}
		out[i].nodes = append(out[i].nodes, id)
	}
	return out
}
