package cli

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"dgc/internal/admin"
)

// traceEvent is one journal event tagged with its parsed wall-clock stamp,
// ready for cross-node merging. Events from different admin servers carry
// independent sequence numbers, so the timestamp is the merge key.
type traceEvent struct {
	admin.EventJSON
	at time.Time
}

// collectTrace pulls every retained event for one causal trace id from every
// distinct admin server in the fleet and returns them merged in time order.
// A multi-node server (dgc-sim) shares one journal across its nodes, so each
// server is queried exactly once.
func collectTrace(ctx context.Context, f *fleet, traceID string) ([]traceEvent, error) {
	var all []traceEvent
	seen := make(map[string]bool) // "node#seq" dedup across overlapping streams
	var lastErr error
	ok := 0
	for _, sv := range f.servers() {
		_, err := sv.c.StreamEvents(ctx, EventStreamOptions{TraceID: traceID}, func(e admin.EventJSON) bool {
			if e.Seq == 0 {
				return true // truncation marker, not a journal event
			}
			key := e.Node + "#" + strconv.FormatUint(e.Seq, 10)
			if seen[key] {
				return true
			}
			seen[key] = true
			te := traceEvent{EventJSON: e}
			if e.TS != "" {
				if t, err := time.Parse(time.RFC3339Nano, e.TS); err == nil {
					te.at = t
				}
			}
			all = append(all, te)
			return true
		})
		if err != nil {
			lastErr = err
			continue
		}
		ok++
	}
	if ok == 0 && lastErr != nil {
		return nil, lastErr
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].at.Before(all[j].at) })
	return all, nil
}

// detailField extracts key=value fields from an event detail string
// ("det=A/3 to=B along=... hops=2" -> detailField(d, "to") == "B").
func detailField(detail, key string) string {
	for _, tok := range strings.Fields(detail) {
		if v, found := strings.CutPrefix(tok, key+"="); found {
			return v
		}
	}
	return ""
}

// span is one node's slice of a detection timeline: the events that ran
// there, plus the child nodes the detection was forwarded to from here.
type span struct {
	node     string
	events   []traceEvent
	children []*span
}

// buildSpanTree assembles the causal span tree for one trace from its
// time-ordered events. The root is the node that recorded detection-start;
// parent edges come from cdm-sent/batch-cdm "to=" fields, walked in time
// order so a node attaches under the first connected node that sent to it.
// Events on nodes never named by a send (possible when the ring truncated
// the linking event) attach under the root rather than being dropped.
func buildSpanTree(events []traceEvent) *span {
	if len(events) == 0 {
		return nil
	}
	spans := make(map[string]*span)
	order := []string{}
	get := func(node string) *span {
		if s, ok := spans[node]; ok {
			return s
		}
		s := &span{node: node}
		spans[node] = s
		order = append(order, node)
		return s
	}
	for _, e := range events {
		get(e.Node).events = append(get(e.Node).events, e)
	}

	root := ""
	for _, e := range events {
		if e.Kind == "detection-start" {
			root = e.Node
			break
		}
	}
	if root == "" {
		root = order[0] // truncated history: oldest-seen node stands in
	}

	attached := map[string]bool{root: true}
	attach := func(parent, child string) {
		if attached[child] || child == parent {
			return
		}
		if _, ok := spans[child]; !ok {
			return // sent to a node that recorded nothing we can see
		}
		p := spans[parent]
		p.children = append(p.children, spans[child])
		attached[child] = true
	}
	// Walk sends in time order; only a node already in the tree may adopt,
	// so causality flows outward from the root.
	for _, e := range events {
		if e.Kind != "cdm-sent" && e.Kind != "batch-cdm" {
			continue
		}
		to := detailField(e.Detail, "to")
		if to == "" || !attached[e.Node] {
			continue
		}
		attach(e.Node, to)
	}
	// Orphans (linking event truncated or filtered): hang under the root.
	for _, node := range order {
		if !attached[node] {
			attach(root, node)
		}
	}
	return spans[root]
}

// terminalEvent reports whether the trace reached a terminal outcome: the
// origin emitted detection-end, or a cycle was confirmed anywhere.
func terminalEvent(events []traceEvent) (traceEvent, bool) {
	for i := len(events) - 1; i >= 0; i-- {
		if k := events[i].Kind; k == "detection-end" || k == "cycle-found" {
			return events[i], true
		}
	}
	return traceEvent{}, false
}

// printSpanTree renders the causal tree: one block per node in causal
// (forwarding) order, events stamped relative to the first event of the
// whole trace.
func printSpanTree(w io.Writer, root *span, t0 time.Time) {
	var walk func(s *span, depth int)
	walk = func(s *span, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(w, "%s%s (%d events)\n", indent, s.node, len(s.events))
		for _, e := range s.events {
			rel := "      ?"
			if !e.at.IsZero() && !t0.IsZero() {
				rel = fmt.Sprintf("+%s", e.at.Sub(t0).Round(10*time.Microsecond))
			}
			fmt.Fprintf(w, "%s  %-12s %-15s %s\n", indent, rel, e.Kind, e.Detail)
		}
		// Children in order of first event, so siblings read chronologically.
		sort.SliceStable(s.children, func(i, j int) bool {
			ci, cj := s.children[i], s.children[j]
			if len(ci.events) == 0 || len(cj.events) == 0 {
				return len(cj.events) == 0
			}
			return ci.events[0].at.Before(cj.events[0].at)
		})
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

func cmdTrace(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("trace", stderr)
	wait := fs.Duration("wait", 0, "keep polling until the trace reaches a terminal event")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: dgcctl trace [flags] <trace-id>")
		return 2
	}
	traceID := fs.Arg(0)
	if _, err := strconv.ParseUint(traceID, 16, 64); err != nil {
		return fail(stderr, fmt.Errorf("bad trace id %q: want hex as printed by detect", traceID))
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}

	deadline := time.Now().Add(*wait)
	var events []traceEvent
	for {
		events, err = collectTrace(ctx, f, traceID)
		if err != nil {
			return fail(stderr, err)
		}
		if _, done := terminalEvent(events); done || *wait <= 0 || time.Now().After(deadline) {
			break
		}
		select {
		case <-ctx.Done():
			return 1
		case <-time.After(100 * time.Millisecond):
		}
	}
	if len(events) == 0 {
		return fail(stderr, fmt.Errorf("no events for trace %s (expired from the ring, or wrong id?)", traceID))
	}

	root := buildSpanTree(events)
	nodes := make(map[string]bool)
	for _, e := range events {
		nodes[e.Node] = true
	}
	term, done := terminalEvent(events)
	outcome := "in flight"
	if done {
		outcome = term.Kind
		if o := detailField(term.Detail, "outcome"); o != "" {
			outcome = o
		}
	}
	fmt.Fprintf(stdout, "trace %s: %d events across %d nodes, %s\n",
		traceID, len(events), len(nodes), outcome)
	printSpanTree(stdout, root, events[0].at)
	return 0
}
