package cli

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"dgc/internal/admin"
)

// cmdTail streams live journal events from every admin server in the fleet,
// merged onto stdout as they arrive. By default it baselines at "now" and
// follows; -all replays each server's retained history first.
func cmdTail(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs, ef := newFlagSet("tail", stderr)
	kinds := fs.String("kind", "", "comma-separated event kinds to keep (default all)")
	traceID := fs.String("trace", "", "keep only events of one causal trace id (hex)")
	all := fs.Bool("all", false, "replay retained history before following")
	dur := fs.Duration("for", 0, "stop after this long (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := newFleet(ef)
	if err != nil {
		return fail(stderr, err)
	}
	if err := f.refresh(); err != nil {
		return fail(stderr, err)
	}

	if *dur > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *dur)
		defer cancel()
	}

	var mu sync.Mutex // serializes output lines across server streams
	print := func(e admin.EventJSON) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case e.Seq == 0 && e.Missed > 0:
			fmt.Fprintf(stderr, "dgcctl: %s\n", e.Detail)
		case e.Seq == 0:
			fmt.Fprintf(stderr, "dgcctl: %s\n", e.Detail)
		default:
			tid := ""
			if e.Trace != "" {
				tid = " [" + e.Trace + "]"
			}
			fmt.Fprintf(stdout, "%-12s #%-6d %-15s%s %s\n", e.Node, e.Seq, e.Kind, tid, e.Detail)
		}
	}

	var wg sync.WaitGroup
	for _, sv := range f.servers() {
		sv := sv
		wg.Add(1)
		go func() {
			defer wg.Done()
			since := uint64(0)
			if !*all {
				head, err := sv.c.JournalHead(ctx, "")
				if err != nil {
					mu.Lock()
					fmt.Fprintf(stderr, "dgcctl: %s: %v\n", sv.nodes[0], err)
					mu.Unlock()
					return
				}
				since = head
			}
			// The server caps each follow stream; reconnect from the last
			// seen sequence until the command's own deadline.
			for ctx.Err() == nil {
				opts := EventStreamOptions{
					Since: since, Kinds: *kinds, TraceID: *traceID,
					Follow: true, Timeout: time.Minute,
				}
				_, err := sv.c.StreamEvents(ctx, opts, func(e admin.EventJSON) bool {
					if e.Seq > since {
						since = e.Seq
					}
					print(e)
					return true
				})
				if err != nil && ctx.Err() == nil {
					mu.Lock()
					fmt.Fprintf(stderr, "dgcctl: %s: %v\n", sv.nodes[0], err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return 0
}
