package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dgc/internal/admin"
	"dgc/internal/ids"
	"dgc/internal/node"
)

func cmdUp(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	// up creates endpoints rather than resolving them, so it registers its
	// own flag set without the shared -e/-endpoints-file resolution pair.
	fs := flag.NewFlagSet("dgcctl up", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specFile := fs.String("f", "", "cluster spec file, YAML subset or JSON (required)")
	endpointsOut := fs.String("endpoints-file", "dgcctl.endpoints", "write 'name addr' admin endpoints here for other dgcctl commands")
	adminToken := fs.String("admin-token", os.Getenv("DGC_ADMIN_TOKEN"), "require this bearer token on every admin API (default $DGC_ADMIN_TOKEN; empty = open)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specFile == "" {
		fmt.Fprintln(stderr, "dgcctl up: -f cluster spec is required")
		return 2
	}
	text, err := os.ReadFile(*specFile)
	if err != nil {
		return fail(stderr, err)
	}
	spec, err := admin.ParseClusterSpec(text)
	if err != nil {
		return fail(stderr, err)
	}
	for _, w := range spec.Warnings {
		fmt.Fprintf(stderr, "dgcctl up: warning: %s\n", w)
	}
	cl, err := startCluster(spec, *adminToken, stdout, stderr)
	if err != nil {
		return fail(stderr, err)
	}
	defer cl.stop(stdout)

	if err := cl.writeEndpoints(*endpointsOut); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "cluster up: %d nodes, endpoints in %s\n", len(cl.sups), *endpointsOut)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-ctx.Done():
	case s := <-sig:
		fmt.Fprintf(stdout, "\nreceived %v, shutting down\n", s)
	}
	return 0
}

// liveCluster is one 'dgcctl up' process: per-node supervisors, each with
// its own admin server and HTTP listener.
type liveCluster struct {
	sups      []*admin.Supervisor
	admins    []string // concrete admin addresses, index-aligned with sups
	listeners []net.Listener
	servers   []*http.Server
}

// startCluster resolves the spec, starts every node, wires the peer mesh
// once the ephemeral transport ports are known, serves one admin API per
// node, and seeds the demo ring when requested.
func startCluster(spec *admin.ClusterSpec, adminToken string, stdout, stderr io.Writer) (*liveCluster, error) {
	specs, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	cl := &liveCluster{}
	failure := func(err error) (*liveCluster, error) {
		cl.stop(io.Discard)
		return nil, err
	}
	for _, ns := range specs {
		sup, err := admin.StartNode(ns)
		if err != nil {
			return failure(fmt.Errorf("start %s: %w", ns.ID, err))
		}
		cl.sups = append(cl.sups, sup)
	}
	// Ephemeral ports are now concrete: wire the full mesh.
	for _, a := range cl.sups {
		for _, b := range cl.sups {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}
	// One admin server per node, on the node's declared admin address.
	for i, sup := range cl.sups {
		adminAddr := spec.Nodes[i].Admin
		if adminAddr == "" {
			adminAddr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", adminAddr)
		if err != nil {
			return failure(fmt.Errorf("admin listen %s for %s: %w", adminAddr, sup.ID(), err))
		}
		srv := admin.NewServer(sup.Metrics())
		srv.SetToken(adminToken)
		srv.AddNode(sup)
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		cl.listeners = append(cl.listeners, ln)
		cl.servers = append(cl.servers, hs)
		cl.admins = append(cl.admins, ln.Addr().String())
		fmt.Fprintf(stdout, "node %s: transport %s, admin http://%s\n", sup.ID(), sup.Addr(), ln.Addr())
	}
	if spec.DemoRing == "rooted" || spec.DemoRing == "garbage" {
		if err := buildDemoRing(cl.sups, spec.DemoRing == "rooted"); err != nil {
			return failure(fmt.Errorf("demo ring: %w", err))
		}
		fmt.Fprintf(stdout, "demo ring built across %d nodes (%s)\n", len(cl.sups), spec.DemoRing)
	}
	return cl, nil
}

// buildDemoRing allocates one anchor per node and links them into an
// inter-node ring through the remote-invocation API (acquire + store), the
// same construction as examples/tcpcluster. With rooted=false the ring is
// left unrooted — the canonical distributed garbage cycle only the cycle
// detector can reclaim, ready for `dgcctl detect`.
func buildDemoRing(sups []*admin.Supervisor, rooted bool) error {
	if len(sups) < 2 {
		return fmt.Errorf("need at least 2 nodes, have %d", len(sups))
	}
	anchors := make([]ids.GlobalRef, len(sups))
	for i, sup := range sups {
		rt := sup.Runtime()
		if rt == nil {
			return fmt.Errorf("node %s is down", sup.ID())
		}
		var obj ids.ObjID
		if err := rt.With(func(m node.Mutator) {
			obj = m.Alloc([]byte("anchor-" + string(sup.ID())))
			// Anchors start rooted so local collectors can't sweep them
			// while the ring is being linked over the wire.
			if err := m.Root(obj); err != nil {
				panic(err) // fresh object: cannot fail
			}
		}); err != nil {
			return err
		}
		anchors[i] = ids.GlobalRef{Node: sup.ID(), Obj: obj}
	}
	for i, sup := range sups {
		target := anchors[(i+1)%len(sups)]
		holder := anchors[i].Obj
		done := make(chan error, 1)
		rt := sup.Runtime()
		if rt == nil {
			return fmt.Errorf("node %s is down", sup.ID())
		}
		if err := rt.AcquireRemote(target, func(m node.Mutator, ok bool) {
			if !ok {
				done <- fmt.Errorf("acquire %s from %s failed", target, m.Node())
				return
			}
			done <- m.Store(holder, target)
		}); err != nil {
			return err
		}
		select {
		case err := <-done:
			if err != nil {
				return err
			}
		case <-time.After(10 * time.Second):
			return fmt.Errorf("linking %s -> %s timed out", anchors[i], target)
		}
	}
	if !rooted {
		// Unroot every anchor: the ring becomes pure distributed cyclic
		// garbage (scions keep each node's anchor alive locally).
		for i, sup := range sups {
			rt := sup.Runtime()
			if rt == nil {
				return fmt.Errorf("node %s is down", sup.ID())
			}
			obj := anchors[i].Obj
			if err := rt.With(func(m node.Mutator) { m.Unroot(obj) }); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeEndpoints persists "name addr" lines other dgcctl commands resolve.
func (cl *liveCluster) writeEndpoints(path string) error {
	var b strings.Builder
	b.WriteString("# written by dgcctl up\n")
	for i, sup := range cl.sups {
		fmt.Fprintf(&b, "%s %s\n", sup.ID(), cl.admins[i])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// stop shuts the cluster down gracefully: admin servers first (no new
// operations), then each supervisor (state flush + clean transport close).
func (cl *liveCluster) stop(stdout io.Writer) {
	for _, hs := range cl.servers {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = hs.Shutdown(shutdownCtx)
		cancel()
	}
	for _, sup := range cl.sups {
		if err := sup.Stop(); err != nil {
			fmt.Fprintf(stdout, "stop %s: %v\n", sup.ID(), err)
		}
	}
	fmt.Fprintln(stdout, "cluster stopped")
}
