// Package baseline implements two complete distributed garbage collectors
// from the paper's related work, over the same heap/stub/scion substrate as
// the DCDA, for head-to-head comparison benchmarks:
//
//   - Hughes (1985) timestamp propagation with a global-minimum termination
//     service [7]: complete, but requires a consensus-like global threshold
//     computation and does continuous global work even when no garbage
//     exists — the scalability cost the paper criticizes;
//
//   - Maheshwari & Liskov (1997) distributed back-tracing [11]: traces the
//     inverse reference graph from a suspect towards roots via chained
//     remote procedure calls, requiring per-trace state at every visited
//     process — the state cost the paper criticizes.
//
// Both are implemented for quiescent graphs (no concurrent mutator), which
// is all the comparison experiments need; their original papers add
// barriers we do not reproduce.
package baseline

import (
	"fmt"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
	"dgc/internal/workload"
)

// Proc is the minimal process substrate shared by both baselines: a heap
// and reference-listing tables, without the DCDA machinery.
type Proc struct {
	Heap  *heap.Heap
	Table *refs.Table
}

// NewProc returns an empty baseline process.
func NewProc(id ids.NodeID) *Proc {
	return &Proc{Heap: heap.New(id), Table: refs.NewTable(id)}
}

// ID returns the process identifier.
func (p *Proc) ID() ids.NodeID { return p.Heap.Node() }

// World is a set of baseline processes materialized from a topology.
type World struct {
	Procs map[ids.NodeID]*Proc
	Order []ids.NodeID
	// Names maps topology object names to global references.
	Names map[string]ids.GlobalRef
}

// Build materializes a workload topology into baseline processes with
// correctly paired stubs and scions.
func Build(topo *workload.Topology) (*World, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	w := &World{Procs: make(map[ids.NodeID]*Proc), Names: make(map[string]ids.GlobalRef)}
	for _, n := range topo.Nodes() {
		w.Procs[n] = NewProc(n)
		w.Order = append(w.Order, n)
	}
	for _, spec := range topo.Objects {
		p := w.Procs[spec.Node]
		var payload []byte
		if spec.Payload > 0 {
			payload = make([]byte, spec.Payload)
		}
		o := p.Heap.Alloc(payload)
		if spec.Rooted {
			if err := p.Heap.AddRoot(o.ID); err != nil {
				return nil, err
			}
		}
		w.Names[spec.Name] = ids.GlobalRef{Node: spec.Node, Obj: o.ID}
	}
	for _, e := range topo.Edges {
		f, g := w.Names[e.From], w.Names[e.To]
		fp := w.Procs[f.Node]
		if f.Node == g.Node {
			if err := fp.Heap.AddLocalRef(f.Obj, g.Obj); err != nil {
				return nil, err
			}
			continue
		}
		if err := fp.Heap.AddRemoteRef(f.Obj, g); err != nil {
			return nil, err
		}
		fp.Table.EnsureStub(g)
		w.Procs[g.Node].Table.EnsureScion(f.Node, g.Obj)
	}
	return w, nil
}

// LGC runs a reference-listing local collection on every process and
// applies the resulting stub sets immediately (settled round). Returns
// objects swept and NewSetStubs-equivalent messages exchanged.
func (w *World) LGC() (swept, messages int) {
	type targeted struct {
		to  ids.NodeID
		msg refs.StubSetMsg
	}
	var pending []targeted
	for _, id := range w.Order {
		p := w.Procs[id]
		seeds := p.Heap.Roots()
		seeds = append(seeds, p.Table.ScionTargets()...)
		live := p.Heap.ReachableFrom(seeds...)
		for _, objID := range p.Heap.IDs() {
			if _, ok := live[objID]; !ok {
				p.Heap.Delete(objID)
				swept++
			}
		}
		wanted := make(map[ids.GlobalRef]struct{})
		for _, r := range p.Heap.RemoteRefsFrom(live) {
			wanted[r] = struct{}{}
		}
		byNode := make(map[ids.NodeID][]ids.ObjID)
		for _, s := range p.Table.Stubs() {
			byNode[s.Target.Node] = nil // remember peer even if all stubs die
			if _, ok := wanted[s.Target]; !ok {
				p.Table.DeleteStub(s.Target)
			}
		}
		for r := range wanted {
			p.Table.EnsureStub(r)
		}
		for _, s := range p.Table.Stubs() {
			byNode[s.Target.Node] = append(byNode[s.Target.Node], s.Target.Obj)
		}
		for to, objs := range byNode {
			pending = append(pending, targeted{to: to, msg: refs.StubSetMsg{From: id, Objs: objs}})
		}
	}
	for _, t := range pending {
		messages++
		p := w.Procs[t.to]
		if p == nil {
			continue
		}
		listed := make(map[ids.ObjID]struct{}, len(t.msg.Objs))
		for _, o := range t.msg.Objs {
			listed[o] = struct{}{}
		}
		for _, sc := range p.Table.Scions() {
			if sc.Src != t.msg.From {
				continue
			}
			if _, ok := listed[sc.Obj]; !ok {
				p.Table.DeleteScion(sc.Src, sc.Obj)
			}
		}
	}
	return swept, messages
}

// TotalObjects sums live objects across processes.
func (w *World) TotalObjects() int {
	total := 0
	for _, p := range w.Procs {
		total += p.Heap.Len()
	}
	return total
}

// TotalScions sums scions across processes.
func (w *World) TotalScions() int {
	total := 0
	for _, p := range w.Procs {
		total += p.Table.NumScions()
	}
	return total
}

func (w *World) proc(id ids.NodeID) (*Proc, error) {
	p := w.Procs[id]
	if p == nil {
		return nil, fmt.Errorf("baseline: unknown process %s", id)
	}
	return p, nil
}
