package baseline

import (
	"dgc/internal/ids"
	"dgc/internal/wire"
)

// Backtracer implements distributed back-tracing in the style of Maheshwari
// & Liskov [11], the second related-work baseline.
//
// Starting from a suspect object (the target of a scion), the collector
// walks the INVERSE reference graph towards roots: within a process it
// finds the scions whose objects lead to the suspect; across processes it
// asks each such scion's holder process to back-trace the holders of the
// corresponding stub. If no walk reaches a local root, the suspect is
// garbage and its scions are deleted (the acyclic collector then unravels
// the objects).
//
// The walk is a chain of remote procedure calls mirrored by the
// BacktraceRequest/BacktraceReply wire messages; the visited set carried
// along is the per-detection state the paper criticizes ("requires
// processes to keep state about detections on course"), here materialized
// in the trace itself. The simulation executes the recursion synchronously
// and counts one request and one reply per inter-process hop.
type Backtracer struct {
	World   *World
	traceID uint64
	Stats   BacktraceStats
}

// BacktraceStats counts baseline activity.
type BacktraceStats struct {
	Traces          uint64
	Messages        uint64 // request + reply messages
	MaxVisited      int    // largest visited set over all traces
	ScionsDeleted   uint64
	ObjectsSwept    uint64
	StubSetMessages uint64
	Rounds          uint64
}

// NewBacktracer builds the baseline over a world.
func NewBacktracer(w *World) *Backtracer {
	return &Backtracer{World: w}
}

// TraceSuspect back-traces from the given object and reports whether any
// local root was found behind it. The object must belong to node.
func (b *Backtracer) TraceSuspect(node ids.NodeID, obj ids.ObjID) (rootFound bool, err error) {
	b.traceID++
	b.Stats.Traces++
	visited := make(map[ids.RefID]struct{})
	found, err := b.traceAt(node, obj, visited)
	if len(visited) > b.Stats.MaxVisited {
		b.Stats.MaxVisited = len(visited)
	}
	return found, err
}

// traceAt is the per-process back-trace step for one object.
func (b *Backtracer) traceAt(node ids.NodeID, obj ids.ObjID, visited map[ids.RefID]struct{}) (bool, error) {
	p, err := b.World.proc(node)
	if err != nil {
		return false, err
	}
	if !p.Heap.Contains(obj) {
		return false, nil
	}
	if _, ok := p.Heap.ReachableFromRoots()[obj]; ok {
		return true, nil
	}
	// Scions whose object leads (locally) to obj are the inverse edges out
	// of this process.
	for _, sc := range p.Table.Scions() {
		if _, leads := p.Heap.ReachableFrom(sc.Obj)[obj]; !leads {
			continue
		}
		ref := sc.RefID(node)
		if _, seen := visited[ref]; seen {
			continue
		}
		visited[ref] = struct{}{}

		// Cross-process hop: ask the holder process. We materialize the
		// request/reply pair for message accounting, then execute the
		// remote step in-process.
		req := wire.BacktraceRequest{
			TraceID: b.traceID,
			Origin:  node,
			From:    node,
			Obj:     sc.Obj,
			Visited: visitedList(visited),
		}
		b.Stats.Messages++ // request
		holderProc, err := b.World.proc(sc.Src)
		if err != nil {
			return false, err
		}
		target := ids.GlobalRef{Node: node, Obj: req.Obj}
		found := false
		for holder := range holderProc.Heap.HoldersOf(target) {
			ok, err := b.traceAt(sc.Src, holder, visited)
			if err != nil {
				return false, err
			}
			if ok {
				found = true
				break
			}
		}
		b.Stats.Messages++ // reply
		if found {
			return true, nil
		}
	}
	return false, nil
}

func visitedList(visited map[ids.RefID]struct{}) []ids.RefID {
	out := make([]ids.RefID, 0, len(visited))
	for r := range visited {
		out = append(out, r)
	}
	ids.SortRefIDs(out)
	return out
}

// Round performs one collection round: back-trace every suspect (scion
// target not locally reachable), delete the scions of proven-garbage
// suspects, then run local collections.
func (b *Backtracer) Round() error {
	b.Stats.Rounds++
	type suspect struct {
		node ids.NodeID
		obj  ids.ObjID
	}
	var suspects []suspect
	for _, id := range b.World.Order {
		p := b.World.Procs[id]
		rootReach := p.Heap.ReachableFromRoots()
		for _, obj := range p.Table.ScionTargets() {
			if _, ok := rootReach[obj]; !ok {
				suspects = append(suspects, suspect{node: id, obj: obj})
			}
		}
	}
	for _, s := range suspects {
		found, err := b.TraceSuspect(s.node, s.obj)
		if err != nil {
			return err
		}
		if found {
			continue
		}
		p := b.World.Procs[s.node]
		for _, sc := range p.Table.ScionsForObject(s.obj) {
			p.Table.DeleteScion(sc.Src, sc.Obj)
			b.Stats.ScionsDeleted++
		}
	}
	swept, msgs := b.World.LGC()
	b.Stats.ObjectsSwept += uint64(swept)
	b.Stats.StubSetMessages += uint64(msgs)
	return nil
}

// RunUntilStable rounds until no progress, returning rounds executed.
func (b *Backtracer) RunUntilStable(maxRounds int) (int, error) {
	prev := -1
	for r := 0; r < maxRounds; r++ {
		cur := b.World.TotalObjects() + b.World.TotalScions()
		if cur == prev {
			return r, nil
		}
		prev = cur
		if err := b.Round(); err != nil {
			return r, err
		}
	}
	return maxRounds, nil
}
