package baseline

import (
	"dgc/internal/ids"
	"dgc/internal/refs"
	"dgc/internal/wire"
)

// Hughes implements a timestamp-propagation complete DGC in the style of
// Hughes [7], the first of the paper's related-work baselines.
//
// Every process keeps a timestamp per scion. Each round, every process
// propagates timestamps forward: a stub reachable from a local root carries
// the current global round number; a stub reachable from a scion carries
// that scion's timestamp; stubs take the maximum. Stub timestamps are sent
// to the matching scions (HughesStamp messages), which keep their maximum.
// Live structures therefore keep receiving fresh timestamps, while garbage
// — cyclic or not — has its timestamps frozen at the time it died.
//
// A scion whose timestamp falls more than Lag rounds behind the global
// round is garbage and is deleted. Computing the threshold safely requires
// agreement on global progress — the termination-detection/consensus
// component that makes Hughes-style collectors non-scalable and
// fault-intolerant (the paper cites [5]); here a central coordinator
// gathers one report per process and broadcasts the threshold each round
// (2N HughesThreshold-equivalent messages), which is the cost the
// comparison benchmarks expose: CONTINUOUS global work proportional to the
// whole distributed graph, even when nothing is garbage, versus the DCDA's
// work proportional to candidate cycles only.
//
// The simulation runs in settled rounds (every message delivered before the
// next round), so Lag bounds timestamp propagation delay: the number of
// remote hops on any root-to-scion path, at most the total number of
// inter-process references. NewHughes picks that worst case automatically.
type Hughes struct {
	World *World
	// Lag is the staleness threshold in rounds.
	Lag uint64

	round  uint64
	stamps map[ids.NodeID]map[refs.ScionKey]uint64
	Stats  HughesStats
}

// HughesStats counts baseline activity.
type HughesStats struct {
	Rounds            uint64
	StampMessages     uint64 // stub->scion timestamp messages
	ThresholdMessages uint64 // coordinator gather/broadcast messages
	StubSetMessages   uint64 // reference-listing traffic from the LGC step
	ScionsDeleted     uint64
	ObjectsSwept      uint64
}

// NewHughes builds the baseline over a world, with the conservative
// worst-case lag.
func NewHughes(w *World) *Hughes {
	h := &Hughes{World: w, stamps: make(map[ids.NodeID]map[refs.ScionKey]uint64)}
	totalRefs := 0
	for _, id := range w.Order {
		totalRefs += w.Procs[id].Table.NumScions()
	}
	h.Lag = uint64(totalRefs + len(w.Order) + 1)
	for _, id := range w.Order {
		h.stamps[id] = make(map[refs.ScionKey]uint64)
	}
	return h
}

func (h *Hughes) stamp(node ids.NodeID, key refs.ScionKey) uint64 {
	return h.stamps[node][key]
}

// Round executes one settled collection round: timestamp propagation,
// threshold agreement, scion expiry and a local collection sweep.
func (h *Hughes) Round() {
	h.round++
	h.Stats.Rounds++

	// Phase 1: forward propagation within each process, producing one
	// HughesStamp message per (destination, stamp value) group.
	type delivery struct {
		to  ids.NodeID
		msg wire.HughesStamp
	}
	var deliveries []delivery
	for _, id := range h.World.Order {
		p := h.World.Procs[id]
		rootReach := p.Heap.ReachableFromRoots()

		// stubStamp accumulates the max timestamp reaching each stub.
		stubStamp := make(map[ids.GlobalRef]uint64)
		for _, st := range p.Table.Stubs() {
			for holder := range p.Heap.HoldersOf(st.Target) {
				if _, ok := rootReach[holder]; ok {
					stubStamp[st.Target] = h.round
					break
				}
			}
		}
		for _, sc := range p.Table.Scions() {
			reach := p.Heap.ReachableFrom(sc.Obj)
			scStamp := h.stamp(id, refs.ScionKey{Src: sc.Src, Obj: sc.Obj})
			for _, tgt := range p.Heap.RemoteRefsFrom(reach) {
				if p.Table.Stub(tgt) == nil {
					continue
				}
				if scStamp > stubStamp[tgt] {
					stubStamp[tgt] = scStamp
				}
			}
		}
		// Group stub stamps into messages per (node, stamp).
		grouped := make(map[ids.NodeID]map[uint64][]ids.ObjID)
		for tgt, stamp := range stubStamp {
			if grouped[tgt.Node] == nil {
				grouped[tgt.Node] = make(map[uint64][]ids.ObjID)
			}
			grouped[tgt.Node][stamp] = append(grouped[tgt.Node][stamp], tgt.Obj)
		}
		for to, byStamp := range grouped {
			for stamp, objs := range byStamp {
				deliveries = append(deliveries, delivery{
					to:  to,
					msg: wire.HughesStamp{From: id, Stamp: stamp, Objs: objs},
				})
			}
		}
	}
	for _, d := range deliveries {
		h.Stats.StampMessages++
		p := h.World.Procs[d.to]
		if p == nil {
			continue
		}
		for _, obj := range d.msg.Objs {
			key := refs.ScionKey{Src: d.msg.From, Obj: obj}
			if p.Table.Scion(d.msg.From, obj) == nil {
				continue
			}
			if d.msg.Stamp > h.stamps[d.to][key] {
				h.stamps[d.to][key] = d.msg.Stamp
			}
		}
	}

	// Phase 2: threshold agreement — one report to and one broadcast from
	// the coordinator per process, every round, whether or not any garbage
	// exists.
	h.Stats.ThresholdMessages += 2 * uint64(len(h.World.Order))
	var threshold uint64
	if h.round > h.Lag {
		threshold = h.round - h.Lag
	}

	// Phase 3: expire scions whose timestamp fell behind the threshold.
	for _, id := range h.World.Order {
		p := h.World.Procs[id]
		for _, sc := range p.Table.Scions() {
			key := refs.ScionKey{Src: sc.Src, Obj: sc.Obj}
			if h.stamps[id][key] < threshold {
				p.Table.DeleteScion(sc.Src, sc.Obj)
				delete(h.stamps[id], key)
				h.Stats.ScionsDeleted++
			}
		}
	}

	// Phase 4: local collections + reference listing.
	swept, msgs := h.World.LGC()
	h.Stats.ObjectsSwept += uint64(swept)
	h.Stats.StubSetMessages += uint64(msgs)
}

// RunUntilStable runs rounds until the world has not shrunk for Lag+1
// consecutive rounds (frozen timestamps take up to Lag rounds to fall
// behind the threshold) or maxRounds elapses. Returns rounds executed.
func (h *Hughes) RunUntilStable(maxRounds int) int {
	prev := -1
	quiet := uint64(0)
	for r := 0; r < maxRounds; r++ {
		cur := h.World.TotalObjects() + h.World.TotalScions()
		if cur == prev {
			quiet++
			if quiet > h.Lag {
				return r
			}
		} else {
			quiet = 0
		}
		prev = cur
		h.Round()
	}
	return maxRounds
}
