package baseline

import (
	"testing"

	"dgc/internal/ids"
	"dgc/internal/workload"
)

func build(t *testing.T, topo *workload.Topology) *World {
	t.Helper()
	w, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildFigure3(t *testing.T) {
	w := build(t, workload.Figure3())
	if w.TotalObjects() != 14 {
		t.Fatalf("objects = %d", w.TotalObjects())
	}
	if w.TotalScions() != 4 {
		t.Fatalf("scions = %d", w.TotalScions())
	}
	if len(w.Order) != 4 {
		t.Fatalf("procs = %d", len(w.Order))
	}
	if _, err := w.proc("P9"); err == nil {
		t.Fatal("unknown proc lookup succeeded")
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	bad := &workload.Topology{
		Objects: []workload.ObjSpec{{Name: "x", Node: "P1"}},
		Edges:   []workload.EdgeSpec{{From: "x", To: "y"}},
	}
	if _, err := Build(bad); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestWorldLGCReclaimsAcyclic(t *testing.T) {
	w := build(t, workload.AcyclicChain(4))
	for i := 0; i < 6; i++ {
		w.LGC()
	}
	if w.TotalObjects() != 0 || w.TotalScions() != 0 {
		t.Fatalf("leftovers: objs=%d scions=%d", w.TotalObjects(), w.TotalScions())
	}
}

func TestWorldLGCPreservesCycle(t *testing.T) {
	// Reference listing alone must leak the distributed cycle: that is the
	// problem both baselines (and the DCDA) exist to solve.
	w := build(t, workload.Figure3())
	for i := 0; i < 5; i++ {
		w.LGC()
	}
	if w.TotalObjects() != 13 { // only A is reclaimed
		t.Fatalf("objects = %d, want 13", w.TotalObjects())
	}
}

func TestHughesCollectsCycle(t *testing.T) {
	w := build(t, workload.Figure3())
	h := NewHughes(w)
	rounds := h.RunUntilStable(200)
	if w.TotalObjects() != 0 {
		t.Fatalf("cycle not collected after %d rounds: %d objects", rounds, w.TotalObjects())
	}
	if h.Stats.ScionsDeleted == 0 {
		t.Fatal("no scions expired")
	}
	// The consensus traffic is continuous: 2N messages per round.
	if h.Stats.ThresholdMessages != 8*h.Stats.Rounds {
		t.Fatalf("threshold messages = %d over %d rounds", h.Stats.ThresholdMessages, h.Stats.Rounds)
	}
}

func TestHughesPreservesLiveRing(t *testing.T) {
	w := build(t, workload.LiveRing(4, 2))
	h := NewHughes(w)
	for i := 0; i < int(h.Lag)*3+20; i++ {
		h.Round()
	}
	if w.TotalObjects() != 8 {
		t.Fatalf("live ring damaged: %d objects", w.TotalObjects())
	}
}

func TestHughesMixedLiveAndGarbage(t *testing.T) {
	// Figure 1: live dependency W holds the cycle; Hughes must keep it all,
	// then collect once the root is dropped.
	topo := workload.Figure1()
	w := build(t, topo)
	h := NewHughes(w)
	for i := 0; i < int(h.Lag)*2+10; i++ {
		h.Round()
	}
	if got := w.TotalObjects(); got != 14 {
		t.Fatalf("objects = %d, want 14 (cycle+W, A collected)", got)
	}
	// Drop the root.
	wref := w.Names["W"]
	w.Procs[wref.Node].Heap.RemoveRoot(wref.Obj)
	rounds := h.RunUntilStable(300)
	if w.TotalObjects() != 0 {
		t.Fatalf("not collected after root drop (%d rounds): %d objects", rounds, w.TotalObjects())
	}
}

func TestHughesContinuousCostEvenWhenQuiescent(t *testing.T) {
	// The paper's criticism quantified: a fully live world still pays stamp
	// and threshold messages every round.
	w := build(t, workload.LiveRing(3, 1))
	h := NewHughes(w)
	before := h.Stats.StampMessages + h.Stats.ThresholdMessages
	for i := 0; i < 10; i++ {
		h.Round()
	}
	after := h.Stats.StampMessages + h.Stats.ThresholdMessages
	perRound := (after - before) / 10
	if perRound < uint64(2*len(w.Order)) {
		t.Fatalf("per-round cost = %d, expected continuous traffic", perRound)
	}
}

func TestBacktraceCollectsCycle(t *testing.T) {
	w := build(t, workload.Figure3())
	b := NewBacktracer(w)
	rounds, err := b.RunUntilStable(20)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalObjects() != 0 {
		t.Fatalf("cycle not collected after %d rounds: %d objects", rounds, w.TotalObjects())
	}
	if b.Stats.Messages == 0 || b.Stats.Traces == 0 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestBacktracePreservesLive(t *testing.T) {
	w := build(t, workload.LiveRing(4, 2))
	b := NewBacktracer(w)
	if _, err := b.RunUntilStable(15); err != nil {
		t.Fatal(err)
	}
	if w.TotalObjects() != 8 {
		t.Fatalf("live ring damaged: %d objects", w.TotalObjects())
	}
}

func TestBacktraceFigure1Dependency(t *testing.T) {
	w := build(t, workload.Figure1())
	b := NewBacktracer(w)
	if _, err := b.RunUntilStable(15); err != nil {
		t.Fatal(err)
	}
	if got := w.TotalObjects(); got != 14 {
		t.Fatalf("objects = %d, want cycle+W preserved", got)
	}
	wref := w.Names["W"]
	w.Procs[wref.Node].Heap.RemoveRoot(wref.Obj)
	if _, err := b.RunUntilStable(20); err != nil {
		t.Fatal(err)
	}
	if w.TotalObjects() != 0 {
		t.Fatalf("objects = %d after dependency death", w.TotalObjects())
	}
}

func TestBacktraceSuspectDirect(t *testing.T) {
	w := build(t, workload.Figure3())
	b := NewBacktracer(w)
	f := w.Names["F"]
	found, err := b.TraceSuspect(f.Node, f.Obj)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("garbage cycle suspect reported as rooted")
	}
	// Root B at P1 and retry: now rooted.
	bRef := w.Names["B"]
	if err := w.Procs["P1"].Heap.AddRoot(bRef.Obj); err != nil {
		t.Fatal(err)
	}
	found, err = b.TraceSuspect(f.Node, f.Obj)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("rooted suspect reported as garbage")
	}
}

func TestBacktraceVisitedStateGrowsWithCycle(t *testing.T) {
	// The per-trace state (visited set) grows with cycle length: the
	// paper's state criticism, measurable.
	small := NewBacktracer(build(t, workload.Ring(3, 1)))
	big := NewBacktracer(build(t, workload.Ring(8, 1)))
	if _, err := small.RunUntilStable(10); err != nil {
		t.Fatal(err)
	}
	if _, err := big.RunUntilStable(15); err != nil {
		t.Fatal(err)
	}
	if big.Stats.MaxVisited <= small.Stats.MaxVisited {
		t.Fatalf("visited: big=%d small=%d", big.Stats.MaxVisited, small.Stats.MaxVisited)
	}
}

func TestBacktraceMutualCycles(t *testing.T) {
	w := build(t, workload.Figure4())
	b := NewBacktracer(w)
	rounds, err := b.RunUntilStable(20)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalObjects() != 0 {
		t.Fatalf("mutual cycles not collected (%d rounds): %d objects", rounds, w.TotalObjects())
	}
}

func TestBaselinesOnRandomGraphs(t *testing.T) {
	// Both baselines must agree with ground truth on random topologies —
	// they are comparison points, so they must be correct too.
	for seed := int64(1); seed <= 5; seed++ {
		topo := workload.RandomGraph(seed, workload.RandomConfig{
			Procs: 4, ObjsPerProc: 6, OutDegree: 1.8, RemoteFrac: 0.4, RootFrac: 0.15,
		})
		expectLive := func(w *World) int {
			live := globalLive(w)
			return len(live)
		}

		wb := build(t, topo)
		want := expectLive(wb)
		b := NewBacktracer(wb)
		if _, err := b.RunUntilStable(40); err != nil {
			t.Fatal(err)
		}
		if got := wb.TotalObjects(); got != want {
			t.Errorf("seed %d: backtrace left %d objects, want %d", seed, got, want)
		}

		wh := build(t, topo)
		h := NewHughes(wh)
		h.RunUntilStable(int(h.Lag)*4 + 50)
		if got := wh.TotalObjects(); got != want {
			t.Errorf("seed %d: hughes left %d objects, want %d", seed, got, want)
		}
	}
}

// globalLive computes ground truth over a baseline world.
func globalLive(w *World) map[ids.GlobalRef]struct{} {
	live := make(map[ids.GlobalRef]struct{})
	var queue []ids.GlobalRef
	push := func(ref ids.GlobalRef) {
		p := w.Procs[ref.Node]
		if p == nil || !p.Heap.Contains(ref.Obj) {
			return
		}
		if _, ok := live[ref]; ok {
			return
		}
		live[ref] = struct{}{}
		queue = append(queue, ref)
	}
	for _, id := range w.Order {
		for _, r := range w.Procs[id].Heap.Roots() {
			push(ids.GlobalRef{Node: id, Obj: r})
		}
	}
	for len(queue) > 0 {
		ref := queue[0]
		queue = queue[1:]
		o := w.Procs[ref.Node].Heap.Get(ref.Obj)
		for _, l := range o.Locals {
			push(ids.GlobalRef{Node: ref.Node, Obj: l})
		}
		for _, r := range o.Remotes {
			push(r)
		}
	}
	return live
}
