package ids

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func testRef(i int) RefID {
	return RefID{
		Src: NodeID(fmt.Sprintf("P%d", i%7)),
		Dst: GlobalRef{Node: NodeID(fmt.Sprintf("Q%d", i%5)), Obj: ObjID(i)},
	}
}

func TestInternerRoundTrip(t *testing.T) {
	tb := NewInterner()
	const n = 500
	ids := make([]int32, n)
	for i := 0; i < n; i++ {
		ids[i] = tb.Intern(testRef(i))
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	seen := make(map[int32]bool, n)
	for i := 0; i < n; i++ {
		if got := tb.Intern(testRef(i)); got != ids[i] {
			t.Fatalf("re-Intern(%d) = %d, first sight gave %d", i, got, ids[i])
		}
		if got, ok := tb.Lookup(testRef(i)); !ok || got != ids[i] {
			t.Fatalf("Lookup(%d) = %d,%v, want %d", i, got, ok, ids[i])
		}
		if got := tb.Ref(ids[i]); got != testRef(i) {
			t.Fatalf("Ref(%d) = %v, want %v", ids[i], got, testRef(i))
		}
		if seen[ids[i]] {
			t.Fatalf("id %d assigned twice", ids[i])
		}
		seen[ids[i]] = true
		if ids[i] >= tb.Bound() {
			t.Fatalf("id %d >= Bound() %d", ids[i], tb.Bound())
		}
	}
}

func TestInternerShardLensDecomposition(t *testing.T) {
	tb := NewInterner()
	for i := 0; i < 300; i++ {
		id := tb.Intern(testRef(i))
		// The interleaved id space: shard index in the low bits, local slot
		// above, local slot within the shard's published length.
		local, shard := id>>internShardShift, id&internShardMask
		if local >= tb.ShardLens()[shard] {
			t.Fatalf("id %d: local %d >= shard %d len %d", id, local, shard, tb.ShardLens()[shard])
		}
	}
	lens := tb.ShardLens()
	sum := int32(0)
	for _, n := range lens {
		sum += n
	}
	if int(sum) != tb.Len() {
		t.Fatalf("sum(ShardLens) = %d, Len = %d", sum, tb.Len())
	}
	if b := InternBound(lens); b != tb.Bound() {
		t.Fatalf("InternBound(ShardLens) = %d, Bound = %d", b, tb.Bound())
	}
}

func TestInternerRefUnassignedPanics(t *testing.T) {
	tb := NewInterner()
	tb.Intern(testRef(0))
	for _, id := range []int32{-1, tb.Bound(), tb.Bound() + InternShards} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ref(%d) did not panic", id)
				}
			}()
			tb.Ref(id)
		}()
	}
}

// TestInternerConcurrentStress hammers one table from many goroutines — run
// under -race — interleaving first sights of a shared reference set with
// lookups and reverse resolution. Every goroutine must observe one
// consistent assignment: same ref, same id, round-tripping through Ref.
func TestInternerConcurrentStress(t *testing.T) {
	tb := NewInterner()
	const (
		workers = 8
		refs    = 400
		rounds  = 5
	)
	got := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]int32, refs)
			for round := 0; round < rounds; round++ {
				for i := 0; i < refs; i++ {
					// Stagger the visit order per worker so shards see
					// first-sight races from all sides (offset, stride 1 —
					// every worker still visits every ref).
					j := (i + w*refs/workers) % refs
					id := tb.Intern(testRef(j))
					if round > 0 && id != ids[j] {
						t.Errorf("worker %d: ref %d id changed %d -> %d", w, j, ids[j], id)
						return
					}
					ids[j] = id
					if back := tb.Ref(id); back != testRef(j) {
						t.Errorf("worker %d: Ref(%d) = %v, want %v", w, id, back, testRef(j))
						return
					}
					if lid, ok := tb.Lookup(testRef(j)); !ok || lid != id {
						t.Errorf("worker %d: Lookup(%d) = %d,%v, want %d", w, j, lid, ok, id)
						return
					}
				}
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for i := range got[0] {
			if got[w][i] != got[0][i] {
				t.Fatalf("workers 0 and %d disagree on ref %d: %d vs %d", w, i, got[0][i], got[w][i])
			}
		}
	}
	if tb.Len() != refs {
		t.Fatalf("Len = %d, want %d", tb.Len(), refs)
	}
	if b := tb.Bound(); b < int32(refs) || b > int32(refs)*InternShards {
		t.Fatalf("Bound = %d out of range [%d, %d]", b, refs, refs*InternShards)
	}
}

// BenchmarkInternParallel measures the steady-state Intern fast path under
// contention: all refs pre-assigned, every worker re-interning the full set.
func BenchmarkInternParallel(b *testing.B) {
	tb := NewInterner()
	const refs = 1024
	set := make([]RefID, refs)
	for i := range set {
		set[i] = testRef(i)
		tb.Intern(set[i])
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tb.Intern(set[i&(refs-1)])
			i++
		}
	})
}

// BenchmarkInternFirstSightParallel measures contended assignment: each
// iteration interns a fresh reference, so every call takes a shard lock.
func BenchmarkInternFirstSightParallel(b *testing.B) {
	tb := NewInterner()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			tb.Intern(RefID{Src: "S", Dst: GlobalRef{Node: "D", Obj: ObjID(i)}})
		}
	})
}
