package ids

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestGlobalRefString(t *testing.T) {
	g := GlobalRef{Node: "P2", Obj: 6}
	if got, want := g.String(), "6@P2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestGlobalRefIsZero(t *testing.T) {
	if !(GlobalRef{}).IsZero() {
		t.Error("zero GlobalRef should report IsZero")
	}
	if (GlobalRef{Node: "P1"}).IsZero() {
		t.Error("non-zero GlobalRef should not report IsZero")
	}
	if (GlobalRef{Obj: 1}).IsZero() {
		t.Error("non-zero GlobalRef should not report IsZero")
	}
}

func TestGlobalRefLessOrdering(t *testing.T) {
	cases := []struct {
		a, b GlobalRef
		want bool
	}{
		{GlobalRef{"P1", 1}, GlobalRef{"P2", 0}, true},
		{GlobalRef{"P2", 0}, GlobalRef{"P1", 1}, false},
		{GlobalRef{"P1", 1}, GlobalRef{"P1", 2}, true},
		{GlobalRef{"P1", 2}, GlobalRef{"P1", 1}, false},
		{GlobalRef{"P1", 1}, GlobalRef{"P1", 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRefIDString(t *testing.T) {
	r := RefID{Src: "P1", Dst: GlobalRef{Node: "P2", Obj: 6}}
	if got, want := r.String(), "P1->6@P2"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRefIDLessTotalOrder(t *testing.T) {
	// Less must be a strict weak ordering: irreflexive and asymmetric.
	f := func(aSrc, bSrc uint8, aNode, bNode uint8, aObj, bObj ObjID) bool {
		a := RefID{Src: NodeID(rune('A' + aSrc%4)), Dst: GlobalRef{Node: NodeID(rune('A' + aNode%4)), Obj: aObj % 8}}
		b := RefID{Src: NodeID(rune('A' + bSrc%4)), Dst: GlobalRef{Node: NodeID(rune('A' + bNode%4)), Obj: bObj % 8}}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortRefIDsDeterministic(t *testing.T) {
	refs := []RefID{
		{Src: "P3", Dst: GlobalRef{"P1", 2}},
		{Src: "P1", Dst: GlobalRef{"P2", 9}},
		{Src: "P1", Dst: GlobalRef{"P2", 3}},
		{Src: "P1", Dst: GlobalRef{"P1", 3}},
	}
	SortRefIDs(refs)
	if !sort.SliceIsSorted(refs, func(i, j int) bool { return refs[i].Less(refs[j]) }) {
		t.Errorf("SortRefIDs left slice unsorted: %v", refs)
	}
	if refs[0].Src != "P1" || refs[0].Dst != (GlobalRef{"P1", 3}) {
		t.Errorf("unexpected first element %v", refs[0])
	}
}

func TestSortGlobalRefs(t *testing.T) {
	refs := []GlobalRef{{"P2", 1}, {"P1", 9}, {"P1", 2}}
	SortGlobalRefs(refs)
	want := []GlobalRef{{"P1", 2}, {"P1", 9}, {"P2", 1}}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("SortGlobalRefs = %v, want %v", refs, want)
		}
	}
}

func TestSortNodeIDs(t *testing.T) {
	nodes := []NodeID{"P3", "P1", "P2"}
	SortNodeIDs(nodes)
	if nodes[0] != "P1" || nodes[1] != "P2" || nodes[2] != "P3" {
		t.Errorf("SortNodeIDs = %v", nodes)
	}
}

func TestFormatRefSet(t *testing.T) {
	set := map[RefID]struct{}{
		{Src: "P3", Dst: GlobalRef{"P1", 2}}: {},
		{Src: "P1", Dst: GlobalRef{"P2", 6}}: {},
	}
	if got, want := FormatRefSet(set), "{P1->6@P2, P3->2@P1}"; got != want {
		t.Errorf("FormatRefSet = %q, want %q", got, want)
	}
	if got, want := FormatRefSet(nil), "{}"; got != want {
		t.Errorf("FormatRefSet(nil) = %q, want %q", got, want)
	}
}
