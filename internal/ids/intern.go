package ids

import (
	"sync"
	"sync/atomic"
)

// internChunkSize is the number of RefIDs per storage chunk. Chunked storage
// lets readers resolve ids without locks: a chunk's slots are written before
// the id is published, and the spine (the slice of chunk pointers) is
// replaced copy-on-write, so a published id always points at initialized
// memory.
const internChunkSize = 1024

type internChunk [internChunkSize]RefID

// Interner assigns small dense integers to reference identifiers. The CDM
// algebra keys every entry by a RefID — two strings and an integer — and the
// detection hot path clones, merges and matches algebras constantly; hashing
// and copying the string-bearing keys dominated those operations. Interning
// maps each distinct RefID to an int32 once, so the algebra can store dense
// entries, compare keys with integer comparisons and clone with memcpy.
//
// Identifiers are never released: the table grows monotonically with the set
// of distinct inter-process references a process has seen, which is bounded
// by the reference-listing tables it already keeps. Interned ids are a
// process-local compression and MUST never appear on the wire — peers'
// tables assign different ids to the same reference.
//
// All methods are safe for concurrent use. Reads (Lookup, Ref, Len and the
// Intern fast path) are lock-free: the id index is a sync.Map and reverse
// storage is reached through an atomic spine pointer. Only first sight of a
// reference takes the write lock.
type Interner struct {
	mu    sync.Mutex // serializes id assignment
	idx   sync.Map   // RefID -> int32
	spine atomic.Pointer[[]*internChunk]
	n     atomic.Int32 // published length; slots < n are immutable
}

// NewInterner returns an empty table.
func NewInterner() *Interner {
	t := &Interner{}
	t.spine.Store(&[]*internChunk{})
	return t
}

// Intern returns the dense id for r, assigning the next free one on first
// sight.
func (t *Interner) Intern(r RefID) int32 {
	if id, ok := t.idx.Load(r); ok {
		return id.(int32)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.idx.Load(r); ok {
		return id.(int32)
	}
	id := t.n.Load()
	spine := *t.spine.Load()
	if int(id) == len(spine)*internChunkSize {
		grown := make([]*internChunk, len(spine), len(spine)+1)
		copy(grown, spine)
		grown = append(grown, new(internChunk))
		t.spine.Store(&grown)
		spine = grown
	}
	// Fill the slot before publishing the id: the sync.Map store (and the
	// caller's own synchronization when it hands entries to other
	// goroutines) orders this write before any Ref(id) read.
	spine[int(id)/internChunkSize][int(id)%internChunkSize] = r
	t.idx.Store(r, id)
	t.n.Store(id + 1)
	return id
}

// Lookup returns the dense id for r without assigning one. ok is false when
// r has never been interned.
func (t *Interner) Lookup(r RefID) (int32, bool) {
	if id, ok := t.idx.Load(r); ok {
		return id.(int32), true
	}
	return 0, false
}

// Ref returns the RefID for a dense id previously returned by Intern.
// Panics on ids never assigned, like an out-of-range slice index.
func (t *Interner) Ref(id int32) RefID {
	if id < 0 || id >= t.n.Load() {
		panic("ids: Ref of unassigned intern id")
	}
	spine := *t.spine.Load()
	return spine[int(id)/internChunkSize][int(id)%internChunkSize]
}

// Len returns the number of distinct references interned so far.
func (t *Interner) Len() int {
	return int(t.n.Load())
}
