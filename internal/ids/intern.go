package ids

import (
	"sync"
	"sync/atomic"
)

// internChunkSize is the number of RefIDs per storage chunk. Chunked storage
// lets readers resolve ids without locks: a chunk's slots are written before
// the id is published, and the spine (the slice of chunk pointers) is
// replaced copy-on-write, so a published id always points at initialized
// memory.
const internChunkSize = 1024

// InternShards is the number of independent shards an Interner assigns ids
// from. A power of two, so the shard of an id is a mask and the local slot a
// shift. 16 shards keep first-sight assignment contention negligible up to
// the worker-pool sizes the cluster runs (id assignment from different
// shards shares no lock and no cache line).
const (
	InternShards     = 16
	internShardMask  = InternShards - 1
	internShardShift = 4
)

type internChunk [internChunkSize]RefID

// internShard is one independent id space. Interleaved ids — global id =
// local*InternShards + shard — keep every shard's ids disjoint without any
// cross-shard coordination, at the price of holes: the set of assigned
// global ids is no longer dense. Callers that build id-indexed tables size
// them by Bound() and tolerate unassigned slots.
type internShard struct {
	mu    sync.Mutex // serializes id assignment within the shard
	idx   sync.Map   // RefID -> int32 (global id)
	spine atomic.Pointer[[]*internChunk]
	n     atomic.Int32 // published local length; local slots < n are immutable

	// Pad shards apart so two shards' assignment counters never share a
	// cache line under concurrent Intern storms.
	_ [64]byte
}

// Interner assigns small dense integers to reference identifiers. The CDM
// algebra keys every entry by a RefID — two strings and an integer — and the
// detection hot path clones, merges and matches algebras constantly; hashing
// and copying the string-bearing keys dominated those operations. Interning
// maps each distinct RefID to an int32 once, so the algebra can store dense
// entries, compare keys with integer comparisons and clone with memcpy.
//
// Identifiers are never released: the table grows monotonically with the set
// of distinct inter-process references a process has seen, which is bounded
// by the reference-listing tables it already keeps. Interned ids are a
// process-local compression and MUST never appear on the wire — peers'
// tables assign different ids to the same reference.
//
// Assignment is sharded InternShards ways by a hash of the reference, with
// interleaved id spaces (global id = local*InternShards + shardIndex), so
// concurrent first sights in different shards never contend — the former
// single assignment mutex serialized every node of an in-process cluster.
// Ids are NOT densely assigned across the table as a whole; Bound() gives
// the exclusive upper bound for id-indexed side tables.
//
// All methods are safe for concurrent use. Reads (Lookup, Ref, Len and the
// Intern fast path) are lock-free: each shard's id index is a sync.Map and
// reverse storage is reached through an atomic spine pointer. Only first
// sight of a reference takes its shard's write lock.
type Interner struct {
	shards [InternShards]internShard
}

// NewInterner returns an empty table.
func NewInterner() *Interner {
	t := &Interner{}
	for i := range t.shards {
		t.shards[i].spine.Store(&[]*internChunk{})
	}
	return t
}

// internHash is FNV-1a over the reference's fields, used only to pick a
// shard. Any fixed mixing works; FNV keeps it allocation-free.
func internHash(r RefID) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(r.Src); i++ {
		h ^= uint64(r.Src[i])
		h *= prime64
	}
	h ^= 0xFF
	h *= prime64
	for i := 0; i < len(r.Dst.Node); i++ {
		h ^= uint64(r.Dst.Node[i])
		h *= prime64
	}
	h ^= uint64(r.Dst.Obj)
	h *= prime64
	return h
}

// Intern returns the id for r, assigning the next free one in r's shard on
// first sight.
func (t *Interner) Intern(r RefID) int32 {
	si := int32(internHash(r) & internShardMask)
	s := &t.shards[si]
	if id, ok := s.idx.Load(r); ok {
		return id.(int32)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.idx.Load(r); ok {
		return id.(int32)
	}
	local := s.n.Load()
	spine := *s.spine.Load()
	if int(local) == len(spine)*internChunkSize {
		grown := make([]*internChunk, len(spine), len(spine)+1)
		copy(grown, spine)
		grown = append(grown, new(internChunk))
		s.spine.Store(&grown)
		spine = grown
	}
	// Fill the slot before publishing the id: the sync.Map store (and the
	// caller's own synchronization when it hands entries to other
	// goroutines) orders this write before any Ref(id) read.
	spine[int(local)/internChunkSize][int(local)%internChunkSize] = r
	id := local*InternShards + si
	s.idx.Store(r, id)
	s.n.Store(local + 1)
	return id
}

// Lookup returns the id for r without assigning one. ok is false when r has
// never been interned.
func (t *Interner) Lookup(r RefID) (int32, bool) {
	s := &t.shards[internHash(r)&internShardMask]
	if id, ok := s.idx.Load(r); ok {
		return id.(int32), true
	}
	return 0, false
}

// Ref returns the RefID for an id previously returned by Intern.
// Panics on ids never assigned, like an out-of-range slice index.
func (t *Interner) Ref(id int32) RefID {
	local := id >> internShardShift
	s := &t.shards[id&internShardMask]
	if id < 0 || local >= s.n.Load() {
		panic("ids: Ref of unassigned intern id")
	}
	spine := *s.spine.Load()
	return spine[int(local)/internChunkSize][int(local)%internChunkSize]
}

// Len returns the number of distinct references interned so far.
func (t *Interner) Len() int {
	total := 0
	for i := range t.shards {
		total += int(t.shards[i].n.Load())
	}
	return total
}

// ShardLens snapshots every shard's published id count. Shard counters are
// monotone, so a caller holding a snapshot can later detect growth shard by
// shard — the coverage check of id-indexed caches (see internal/core's
// canonical-rank cache).
func (t *Interner) ShardLens() [InternShards]int32 {
	var out [InternShards]int32
	for i := range t.shards {
		out[i] = t.shards[i].n.Load()
	}
	return out
}

// Bound returns an exclusive upper bound on the ids assigned so far: every
// id returned by Intern is < Bound(), but with sharded interleaved id
// spaces not every value below it is assigned. Side tables indexed by id
// size themselves with Bound and leave holes.
func (t *Interner) Bound() int32 {
	return InternBound(t.ShardLens())
}

// InternBound is Bound computed from a ShardLens snapshot.
func InternBound(lens [InternShards]int32) int32 {
	var bound int32
	for s, n := range lens {
		if n == 0 {
			continue
		}
		if b := (n-1)*InternShards + int32(s) + 1; b > bound {
			bound = b
		}
	}
	return bound
}
