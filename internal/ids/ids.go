// Package ids defines the identifier types shared by every layer of the
// distributed garbage collector: node identifiers, object identifiers,
// global references (an object qualified by its owning node) and reference
// identifiers (one specific inter-process reference, the element type of the
// CDM algebra).
package ids

import (
	"sort"
	"strconv"
	"strings"
)

// NodeID names a process in the distributed system. Node identifiers are
// opaque strings (host:port for TCP deployments, symbolic names such as "P1"
// in simulations and in the paper's examples).
type NodeID string

// ObjID identifies an object within a single process. Object identifiers are
// allocated densely per node and are never reused within a run.
type ObjID uint64

// GlobalRef names an object anywhere in the distributed system: the node that
// owns it plus its object identifier within that node.
type GlobalRef struct {
	Node NodeID
	Obj  ObjID
}

// String renders the reference in the paper's subscript style, e.g. "F@P2".
func (g GlobalRef) String() string {
	// Manual concat: this renders on every journal emission and table dump,
	// where nested Sprintf calls dominated the cost.
	return strconv.FormatUint(uint64(g.Obj), 10) + "@" + string(g.Node)
}

// IsZero reports whether g is the zero reference (no node and object 0).
func (g GlobalRef) IsZero() bool { return g.Node == "" && g.Obj == 0 }

// Less imposes a total order on global references (node, then object). Used
// to produce deterministic iteration orders in snapshots, wire encoding and
// test output.
func (g GlobalRef) Less(o GlobalRef) bool {
	if g.Node != o.Node {
		return g.Node < o.Node
	}
	return g.Obj < o.Obj
}

// RefID identifies one inter-process reference: the node holding the
// outgoing reference (Src) and the referenced object (Dst). A stub at Src and
// a scion at Dst.Node describe the two ends of the same RefID.
//
// RefID is the element type of the CDM algebra. The paper denotes elements by
// the target object alone (e.g. F_P2) because its examples have a single
// incoming reference per object; keying by the full reference keeps matching
// exact when an object has several scions.
type RefID struct {
	Src NodeID
	Dst GlobalRef
}

// String renders the reference as "P1->F@P2".
func (r RefID) String() string {
	return string(r.Src) + "->" + r.Dst.String()
}

// Less imposes a total order on reference identifiers.
func (r RefID) Less(o RefID) bool {
	if r.Src != o.Src {
		return r.Src < o.Src
	}
	return r.Dst.Less(o.Dst)
}

// SortGlobalRefs sorts a slice of global references in place into the
// canonical order defined by GlobalRef.Less.
func SortGlobalRefs(refs []GlobalRef) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
}

// SortRefIDs sorts a slice of reference identifiers in place into the
// canonical order defined by RefID.Less.
func SortRefIDs(refs []RefID) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
}

// SortNodeIDs sorts node identifiers in place.
func SortNodeIDs(nodes []NodeID) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
}

// FormatRefSet renders a set of reference identifiers as a deterministic
// brace-enclosed list, e.g. "{P1->2@P2, P3->7@P4}". Intended for logs and
// test diagnostics.
func FormatRefSet(set map[RefID]struct{}) string {
	refs := make([]RefID, 0, len(set))
	for r := range set {
		refs = append(refs, r)
	}
	SortRefIDs(refs)
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range refs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}
