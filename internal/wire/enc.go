package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"dgc/internal/ids"
)

// Low-level append helpers. All integers are unsigned varints; strings and
// byte slices are length-prefixed.

func putUint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func putBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func putString(buf []byte, s string) []byte {
	buf = putUint(buf, uint64(len(s)))
	return append(buf, s...)
}

func putNode(buf []byte, n ids.NodeID) []byte { return putString(buf, string(n)) }

func putGlobalRef(buf []byte, g ids.GlobalRef) []byte {
	buf = putNode(buf, g.Node)
	return putUint(buf, uint64(g.Obj))
}

func putRefID(buf []byte, r ids.RefID) []byte {
	buf = putNode(buf, r.Src)
	return putGlobalRef(buf, r.Dst)
}

func putGlobalRefs(buf []byte, refs []ids.GlobalRef) []byte {
	buf = putUint(buf, uint64(len(refs)))
	for _, r := range refs {
		buf = putGlobalRef(buf, r)
	}
	return buf
}

func putObjIDs(buf []byte, objs []ids.ObjID) []byte {
	buf = putUint(buf, uint64(len(objs)))
	for _, o := range objs {
		buf = putUint(buf, uint64(o))
	}
	return buf
}

// reader is a cursor over an encoded message with sticky errors.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.pos)
		return 0
	}
	// Strict: reject non-minimal varints so every accepted message
	// re-encodes to the same bytes (a padded zero like 0x80 0x00 would
	// otherwise smuggle distinct wire forms of equal messages).
	if n > 1 && r.data[r.pos+n-1] == 0 {
		r.fail("non-minimal varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) count() int {
	v := r.uint()
	if v > uint64(len(r.data)) {
		r.fail("implausible count %d", v)
		return 0
	}
	return int(v)
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.data) {
		r.fail("truncated bool at offset %d", r.pos)
		return false
	}
	b := r.data[r.pos]
	r.pos++
	if b > 1 {
		// Strict: only the canonical encodings are accepted, so every
		// accepted message re-encodes to the same bytes.
		r.fail("non-canonical bool %#x at offset %d", b, r.pos-1)
		return false
	}
	return b == 1
}

func (r *reader) string() string {
	n := r.count()
	if r.err != nil {
		return ""
	}
	if r.pos+n > len(r.data) {
		r.fail("truncated string at offset %d (+%d)", r.pos, n)
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

// nodeIntern caches decoded NodeID strings. Node names recur constantly — a
// CDM with n entries carries 2n+3 of them from a handful of distinct values —
// and the map lookup keyed by string(bytes) does not allocate on a hit, so
// interning removes the dominant share of decode allocations. Reads go
// through an atomic pointer to an immutable map (copy-on-write on insert —
// distinct node names are few, so full copies are rare), making the hit path
// lock-free: no read-lock RMW per decoded name. The cache is capped; past the
// cap, unseen names fall through to a plain allocation (correct, just
// slower), which keeps a hostile peer from growing it without bound.
var nodeIntern struct {
	mu sync.Mutex // serializes inserts
	m  atomic.Pointer[map[string]ids.NodeID]
}

const nodeInternCap = 4096

func init() {
	m := make(map[string]ids.NodeID)
	nodeIntern.m.Store(&m)
}

func internNode(b []byte) ids.NodeID {
	if n, ok := (*nodeIntern.m.Load())[string(b)]; ok {
		return n
	}
	n := ids.NodeID(b)
	nodeIntern.mu.Lock()
	old := *nodeIntern.m.Load()
	if _, ok := old[string(n)]; !ok && len(old) < nodeInternCap {
		next := make(map[string]ids.NodeID, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[string(n)] = n
		nodeIntern.m.Store(&next)
	}
	nodeIntern.mu.Unlock()
	return n
}

func (r *reader) node() ids.NodeID {
	n := r.count()
	if r.err != nil {
		return ""
	}
	if r.pos+n > len(r.data) {
		r.fail("truncated string at offset %d (+%d)", r.pos, n)
		return ""
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return internNode(b)
}

func (r *reader) globalRef() ids.GlobalRef {
	n := r.node()
	o := ids.ObjID(r.uint())
	return ids.GlobalRef{Node: n, Obj: o}
}

func (r *reader) refID() ids.RefID {
	src := r.node()
	dst := r.globalRef()
	return ids.RefID{Src: src, Dst: dst}
}

func (r *reader) globalRefs() []ids.GlobalRef {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]ids.GlobalRef, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.globalRef())
	}
	return out
}

func (r *reader) objIDs() []ids.ObjID {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]ids.ObjID, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, ids.ObjID(r.uint()))
	}
	return out
}
