// Package wire defines every message exchanged between processes — remote
// invocation, reference-listing (CreateScion / NewSetStubs), cycle detection
// (CDM / DeleteScion) and the baseline collectors' traffic — together with a
// compact, self-describing binary encoding used by the TCP transport.
//
// The in-process transport passes Message values directly; encoding is only
// exercised on real sockets and in its own tests, keeping the deterministic
// simulation fast.
package wire

import (
	"fmt"
	"sync"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. The numeric values are part of the wire format.
const (
	KindInvokeRequest Kind = iota + 1
	KindInvokeReply
	KindCreateScion
	KindCreateScionAck
	KindNewSetStubs
	KindCDM
	KindDeleteScion
	KindHughesStamp
	KindHughesThreshold
	KindBacktraceRequest
	KindBacktraceReply
	KindBatch
	KindCredit
	KindBatchCDM
	KindGossip
	KindLeaseHandoff
)

// String returns the protocol name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInvokeRequest:
		return "InvokeRequest"
	case KindInvokeReply:
		return "InvokeReply"
	case KindCreateScion:
		return "CreateScion"
	case KindCreateScionAck:
		return "CreateScionAck"
	case KindNewSetStubs:
		return "NewSetStubs"
	case KindCDM:
		return "CDM"
	case KindDeleteScion:
		return "DeleteScion"
	case KindHughesStamp:
		return "HughesStamp"
	case KindHughesThreshold:
		return "HughesThreshold"
	case KindBacktraceRequest:
		return "BacktraceRequest"
	case KindBacktraceReply:
		return "BacktraceReply"
	case KindBatch:
		return "Batch"
	case KindCredit:
		return "Credit"
	case KindBatchCDM:
		return "BatchCDM"
	case KindGossip:
		return "Gossip"
	case KindLeaseHandoff:
		return "LeaseHandoff"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is implemented by every wire message.
type Message interface {
	Kind() Kind
	// encode appends the message body (without the kind tag) to buf.
	encode(buf []byte) []byte
}

// encPool recycles encode scratch buffers. Buffers grow to the largest
// message they have carried and are reused across Encode/EncodedSize/frame
// building, so steady-state encoding performs exactly one allocation (the
// returned exact-size slice) — and zero when callers use AppendEncode.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// getEncBuf returns a pooled scratch buffer with at least sizeHint capacity.
func getEncBuf(sizeHint int) *[]byte {
	bp := encPool.Get().(*[]byte)
	if cap(*bp) < sizeHint {
		*bp = make([]byte, 0, sizeHint)
	}
	return bp
}

func putEncBuf(bp *[]byte) {
	*bp = (*bp)[:0]
	encPool.Put(bp)
}

// AppendEncode serializes a message with its kind tag, appending to buf.
// This is the zero-allocation path used by the TCP frame builder; Encode
// wraps it for callers that want a fresh slice.
func AppendEncode(buf []byte, m Message) []byte {
	buf = append(buf, byte(m.Kind()))
	return m.encode(buf)
}

// Encode serializes a message with its kind tag. The returned slice is
// exactly sized; encoding scratch comes from a pool.
func Encode(m Message) []byte {
	bp := getEncBuf(64)
	scratch := AppendEncode((*bp)[:0], m)
	out := make([]byte, len(scratch))
	copy(out, scratch)
	*bp = scratch
	putEncBuf(bp)
	return out
}

// EncodedSize returns len(Encode(m)) without allocating: the transports use
// it for traffic accounting and frame sizing.
func EncodedSize(m Message) int {
	// Hot message kinds answer analytically (the +1 is the kind byte);
	// everything else pays one pooled encode walk.
	if s, ok := m.(interface{ encodedSize() int }); ok {
		return 1 + s.encodedSize()
	}
	bp := getEncBuf(64)
	n := len(AppendEncode((*bp)[:0], m))
	putEncBuf(bp)
	return n
}

// Decode parses a message produced by Encode.
func Decode(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty message")
	}
	r := &reader{data: data, pos: 1}
	var m Message
	switch Kind(data[0]) {
	case KindInvokeRequest:
		m = decodeInvokeRequest(r)
	case KindInvokeReply:
		m = decodeInvokeReply(r)
	case KindCreateScion:
		m = decodeCreateScion(r)
	case KindCreateScionAck:
		m = decodeCreateScionAck(r)
	case KindNewSetStubs:
		m = decodeNewSetStubs(r)
	case KindCDM:
		m = decodeCDM(r)
	case KindDeleteScion:
		m = decodeDeleteScion(r)
	case KindHughesStamp:
		m = decodeHughesStamp(r)
	case KindHughesThreshold:
		m = decodeHughesThreshold(r)
	case KindBacktraceRequest:
		m = decodeBacktraceRequest(r)
	case KindBacktraceReply:
		m = decodeBacktraceReply(r)
	case KindBatch:
		m = decodeBatch(r)
	case KindCredit:
		m = decodeCredit(r)
	case KindBatchCDM:
		m = decodeBatchCDM(r)
	case KindGossip:
		m = decodeGossip(r)
	case KindLeaseHandoff:
		m = decodeLeaseHandoff(r)
	default:
		return nil, fmt.Errorf("wire: unknown kind %d", data[0])
	}
	if r.err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", Kind(data[0]), r.err)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s", len(data)-r.pos, Kind(data[0]))
	}
	return m, nil
}
