// Package wire defines every message exchanged between processes — remote
// invocation, reference-listing (CreateScion / NewSetStubs), cycle detection
// (CDM / DeleteScion) and the baseline collectors' traffic — together with a
// compact, self-describing binary encoding used by the TCP transport.
//
// The in-process transport passes Message values directly; encoding is only
// exercised on real sockets and in its own tests, keeping the deterministic
// simulation fast.
package wire

import (
	"fmt"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. The numeric values are part of the wire format.
const (
	KindInvokeRequest Kind = iota + 1
	KindInvokeReply
	KindCreateScion
	KindCreateScionAck
	KindNewSetStubs
	KindCDM
	KindDeleteScion
	KindHughesStamp
	KindHughesThreshold
	KindBacktraceRequest
	KindBacktraceReply
)

// String returns the protocol name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInvokeRequest:
		return "InvokeRequest"
	case KindInvokeReply:
		return "InvokeReply"
	case KindCreateScion:
		return "CreateScion"
	case KindCreateScionAck:
		return "CreateScionAck"
	case KindNewSetStubs:
		return "NewSetStubs"
	case KindCDM:
		return "CDM"
	case KindDeleteScion:
		return "DeleteScion"
	case KindHughesStamp:
		return "HughesStamp"
	case KindHughesThreshold:
		return "HughesThreshold"
	case KindBacktraceRequest:
		return "BacktraceRequest"
	case KindBacktraceReply:
		return "BacktraceReply"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is implemented by every wire message.
type Message interface {
	Kind() Kind
	// encode appends the message body (without the kind tag) to buf.
	encode(buf []byte) []byte
}

// Encode serializes a message with its kind tag.
func Encode(m Message) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(m.Kind()))
	return m.encode(buf)
}

// Decode parses a message produced by Encode.
func Decode(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty message")
	}
	r := &reader{data: data, pos: 1}
	var m Message
	switch Kind(data[0]) {
	case KindInvokeRequest:
		m = decodeInvokeRequest(r)
	case KindInvokeReply:
		m = decodeInvokeReply(r)
	case KindCreateScion:
		m = decodeCreateScion(r)
	case KindCreateScionAck:
		m = decodeCreateScionAck(r)
	case KindNewSetStubs:
		m = decodeNewSetStubs(r)
	case KindCDM:
		m = decodeCDM(r)
	case KindDeleteScion:
		m = decodeDeleteScion(r)
	case KindHughesStamp:
		m = decodeHughesStamp(r)
	case KindHughesThreshold:
		m = decodeHughesThreshold(r)
	case KindBacktraceRequest:
		m = decodeBacktraceRequest(r)
	case KindBacktraceReply:
		m = decodeBacktraceReply(r)
	default:
		return nil, fmt.Errorf("wire: unknown kind %d", data[0])
	}
	if r.err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", Kind(data[0]), r.err)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s", len(data)-r.pos, Kind(data[0]))
	}
	return m, nil
}
