package wire

import "dgc/internal/ids"

// MemberRecord is one directory entry as it travels in a Gossip message:
// the flat wire twin of membership.Member (wire does not import membership,
// the node layer converts).
type MemberRecord struct {
	Node        ids.NodeID
	Addr        string
	Incarnation uint64
	State       uint8
}

// Gossip carries the sender's full membership directory, either piggybacked
// on regular protocol traffic or as a periodic anti-entropy push. Ack marks
// a reply sent because the receiver held strictly newer records; acks are
// never answered, bounding any exchange at two messages.
type Gossip struct {
	Ack     bool
	Members []MemberRecord
}

func (*Gossip) Kind() Kind { return KindGossip }

func (m *Gossip) encode(buf []byte) []byte {
	buf = putBool(buf, m.Ack)
	buf = putUint(buf, uint64(len(m.Members)))
	for _, r := range m.Members {
		buf = putNode(buf, r.Node)
		buf = putString(buf, r.Addr)
		buf = putUint(buf, r.Incarnation)
		buf = putUint(buf, uint64(r.State))
	}
	return buf
}

func (m *Gossip) encodedSize() int {
	n := 1 + uvarintSize(uint64(len(m.Members)))
	for _, r := range m.Members {
		n += nodeSize(r.Node) + uvarintSize(uint64(len(r.Addr))) + len(r.Addr) +
			uvarintSize(r.Incarnation) + uvarintSize(uint64(r.State))
	}
	return n
}

func decodeGossip(r *reader) *Gossip {
	var m Gossip
	m.Ack = r.bool()
	n := r.count()
	if n > 0 {
		m.Members = make([]MemberRecord, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		var rec MemberRecord
		rec.Node = r.node()
		rec.Addr = r.string()
		rec.Incarnation = r.uint()
		s := r.uint()
		if r.err == nil && (s == 0 || s > 255) {
			r.fail("member state %d out of range", s)
			break
		}
		rec.State = uint8(s)
		m.Members = append(m.Members, rec)
	}
	return &m
}

// LeaseHandoff is sent by a draining holder to the owner of objects it
// holds references to: the owner takes the listed scions into custody
// (pinned against lease expiry) and releases them through the normal
// deletion path once the holder's departure is final.
type LeaseHandoff struct {
	Holder ids.NodeID
	Objs   []ids.ObjID
}

func (*LeaseHandoff) Kind() Kind { return KindLeaseHandoff }

func (m *LeaseHandoff) encode(buf []byte) []byte {
	buf = putNode(buf, m.Holder)
	return putObjIDs(buf, m.Objs)
}

func (m *LeaseHandoff) encodedSize() int {
	n := nodeSize(m.Holder) + uvarintSize(uint64(len(m.Objs)))
	for _, o := range m.Objs {
		n += uvarintSize(uint64(o))
	}
	return n
}

func decodeLeaseHandoff(r *reader) *LeaseHandoff {
	return &LeaseHandoff{Holder: r.node(), Objs: r.objIDs()}
}
