package wire

import (
	"math"

	"dgc/internal/core"
	"dgc/internal/ids"
)

// BatchSection is one detection's slice of a BatchCDM: the detection
// identity, its causal trace id and its algebra. Sections are independent —
// a receiver processes each exactly as it would a standalone CDM carrying
// the same algebra — so batching is a pure transport optimization.
type BatchSection struct {
	Det   core.DetectionID
	Trace uint64
	// Entries is the flattened algebra in canonical reference order
	// (FlattenAlg's contract). Decoded sections always carry entries with
	// interned ids resolved once per distinct reference via the batch
	// dictionary; in-process sections carry src instead and leave Entries
	// nil until a codec needs them.
	Entries []CDMEntry

	// src is the unflattened algebra for in-process deliveries, with the
	// same sharing contract as CDM.src: receivers treat it as immutable.
	// Zero on decoded sections.
	src core.Alg
}

// NewBatchSection builds a lazily-flattened section around an algebra
// (shared, not copied — the algebra must not be mutated afterwards).
func NewBatchSection(det core.DetectionID, trace uint64, alg core.Alg) BatchSection {
	return BatchSection{Det: det, Trace: trace, src: alg}
}

// interned reports whether the section's entries carry cached interned ids.
func (s *BatchSection) interned() bool {
	return len(s.Entries) > 0 && s.Entries[0].iid != 0
}

// MergeAlgInto merges the section's algebra into a, with core.Alg.Merge's
// semantics. In-process sections merge the sender's dense algebra directly;
// decoded sections merge off the dictionary-interned entries, so no
// reference is hashed more than once per message regardless of how many
// sections repeat it.
func (s *BatchSection) MergeAlgInto(a core.Alg) (changed, conflict bool) {
	if s.src != (core.Alg{}) {
		return a.Merge(s.src)
	}
	if s.interned() {
		return a.MergeInterned(len(s.Entries), func(i int) (int32, core.Entry) {
			e := s.Entries[i]
			return e.iid - 1, core.Entry{
				InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
			}
		})
	}
	return a.Merge(s.Alg())
}

// Alg reconstructs the algebra carried by the section.
func (s *BatchSection) Alg() core.Alg {
	if s.src != (core.Alg{}) {
		return s.src.Clone()
	}
	if s.interned() {
		return core.BuildAlgInterned(len(s.Entries), func(i int) (int32, core.Entry) {
			e := s.Entries[i]
			return e.iid - 1, core.Entry{
				InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
			}
		})
	}
	return core.BuildAlg(len(s.Entries), func(i int) (ids.RefID, core.Entry) {
		e := s.Entries[i]
		return e.Ref, core.Entry{
			InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
		}
	})
}

// BatchCDM is a multi-candidate cycle detection message: every detection
// whose derivation exits a node via the same outgoing reference travels as
// one section of one message instead of one CDM each. On the wire the
// sections share a reference dictionary — the canonically-sorted union of
// every section's references, encoded once — and entries name references by
// dictionary index, so overlapping closures (the whole point of batching)
// pay for each reference string once per message, not once per section.
//
// With Return set the message is a hierarchical-aggregation partial result
// traveling back to each section's detection origin (the coordinator);
// Along is meaningless and zero in that case.
type BatchCDM struct {
	// Along is the reference every section travels along (along.Dst.Node is
	// the receiver), exactly as CDM.Along. Zero for Return messages.
	Along ids.RefID
	// Hops is the forwarding depth shared by the batch (sections split from
	// one delivery share one depth).
	Hops uint32
	// Return marks a partial-match result returning to the detections'
	// origin under the hierarchical aggregation mode.
	Return bool
	// Sections holds one entry per detection. Never empty on the wire: the
	// decoder rejects zero-section batches.
	Sections []BatchSection
}

// NewBatchCDM builds a batched detection message from lazily-flattened
// sections (NewBatchSection).
func NewBatchCDM(along ids.RefID, hops int, ret bool, sections []BatchSection) *BatchCDM {
	return &BatchCDM{Along: along, Hops: uint32(hops), Return: ret, Sections: sections}
}

// Kind implements Message.
func (*BatchCDM) Kind() Kind { return KindBatchCDM }

// batchEntry is one flattened section entry referencing the dictionary.
type batchEntry struct {
	idx      uint32
	inSource bool
	srcIC    uint64
	inTarget bool
	tgtIC    uint64
}

// batchFlat is the shared-dictionary wire form of a batch: the canonical
// union of every section's references plus per-section index entries.
type batchFlat struct {
	dict []ids.RefID
	secs [][]batchEntry
}

// flatten computes the shared-dictionary form. Section entry lists are in
// canonical reference order (FlattenAlg for in-process sections, enforced by
// the decoder for decoded ones), so dictionary indices are assigned with a
// single merge walk per section and no hashing. Not cached: encoding only
// happens at a real socket, where the walk is noise next to the write.
func (m *BatchCDM) flatten() batchFlat {
	lists := make([][]CDMEntry, len(m.Sections))
	total := 0
	for i := range m.Sections {
		s := &m.Sections[i]
		if s.Entries != nil || s.src == (core.Alg{}) {
			lists[i] = s.Entries
		} else {
			lists[i] = FlattenAlg(s.src)
		}
		total += len(lists[i])
	}
	all := make([]ids.RefID, 0, total)
	for _, l := range lists {
		for i := range l {
			all = append(all, l[i].Ref)
		}
	}
	ids.SortRefIDs(all)
	dict := make([]ids.RefID, 0, len(all))
	for i, r := range all {
		if i == 0 || all[i-1] != r {
			dict = append(dict, r)
		}
	}
	secs := make([][]batchEntry, len(lists))
	for i, l := range lists {
		es := make([]batchEntry, len(l))
		j := 0
		for k := range l {
			e := &l[k]
			for j < len(dict) && dict[j] != e.Ref {
				j++
			}
			es[k] = batchEntry{
				idx: uint32(j), inSource: e.InSource, srcIC: e.SrcIC,
				inTarget: e.InTarget, tgtIC: e.TgtIC,
			}
		}
		secs[i] = es
	}
	return batchFlat{dict: dict, secs: secs}
}

func (m *BatchCDM) encode(buf []byte) []byte {
	f := m.flatten()
	buf = putRefID(buf, m.Along)
	buf = putUint(buf, uint64(m.Hops))
	buf = putBool(buf, m.Return)
	buf = putUint(buf, uint64(len(f.dict)))
	for _, r := range f.dict {
		buf = putRefID(buf, r)
	}
	buf = putUint(buf, uint64(len(m.Sections)))
	for i := range m.Sections {
		s := &m.Sections[i]
		buf = putNode(buf, s.Det.Origin)
		buf = putUint(buf, s.Det.Seq)
		buf = putUint(buf, s.Trace)
		es := f.secs[i]
		buf = putUint(buf, uint64(len(es)))
		for _, e := range es {
			buf = putUint(buf, uint64(e.idx))
			buf = putBool(buf, e.inSource)
			buf = putUint(buf, e.srcIC)
			buf = putBool(buf, e.inTarget)
			buf = putUint(buf, e.tgtIC)
		}
	}
	return buf
}

// encodedSize returns len(m.encode(nil)) without writing bytes: one flatten
// walk, no buffer.
func (m *BatchCDM) encodedSize() int {
	f := m.flatten()
	n := refIDSize(m.Along) + uvarintSize(uint64(m.Hops)) + 1 +
		uvarintSize(uint64(len(f.dict)))
	for _, r := range f.dict {
		n += refIDSize(r)
	}
	n += uvarintSize(uint64(len(m.Sections)))
	for i := range m.Sections {
		s := &m.Sections[i]
		n += nodeSize(s.Det.Origin) + uvarintSize(s.Det.Seq) + uvarintSize(s.Trace)
		es := f.secs[i]
		n += uvarintSize(uint64(len(es)))
		for _, e := range es {
			n += uvarintSize(uint64(e.idx)) + 2 + uvarintSize(e.srcIC) + uvarintSize(e.tgtIC)
		}
	}
	return n
}

// decodeBatchCDM parses and validates a batch. The decoder enforces the
// canonical form the encoder produces — dictionary strictly sorted, every
// dictionary reference used, section entries strictly ascending by index,
// at least one section, at least one entry per section, no duplicate
// detection ids — so any accepted input re-encodes byte-identically.
// Dictionary references are interned once each; every entry of every
// section then carries its interned id for MergeInterned on the receive
// path.
func decodeBatchCDM(r *reader) *BatchCDM {
	m := &BatchCDM{Along: r.refID()}
	hops := r.uint()
	if hops > math.MaxUint32 {
		r.fail("hops %d overflows uint32", hops)
	}
	m.Hops = uint32(hops)
	m.Return = r.bool()
	nd := r.count()
	dict := make([]ids.RefID, 0, min(nd, 1024))
	iids := make([]int32, 0, min(nd, 1024))
	for i := 0; i < nd && r.err == nil; i++ {
		ref := r.refID()
		if r.err != nil {
			break
		}
		if i > 0 && !dict[i-1].Less(ref) {
			r.fail("batch dictionary not in canonical order")
			break
		}
		dict = append(dict, ref)
		iids = append(iids, core.InternRef(ref)+1)
	}
	if r.err != nil {
		return m
	}
	used := make([]bool, len(dict))
	ns := r.count()
	if ns == 0 && r.err == nil {
		r.fail("batch cdm with zero sections")
	}
	seen := make(map[core.DetectionID]struct{}, min(ns, 1024))
	for i := 0; i < ns && r.err == nil; i++ {
		s := BatchSection{
			Det:   core.DetectionID{Origin: r.node(), Seq: r.uint()},
			Trace: r.uint(),
		}
		ne := r.count()
		if ne == 0 && r.err == nil {
			r.fail("batch section with zero entries")
		}
		prev := -1
		for j := 0; j < ne && r.err == nil; j++ {
			idx := r.uint()
			if r.err != nil {
				break
			}
			if idx >= uint64(len(dict)) {
				r.fail("entry ref index %d out of dictionary range %d", idx, len(dict))
				break
			}
			if int(idx) <= prev {
				r.fail("section entries not in canonical order")
				break
			}
			prev = int(idx)
			used[idx] = true
			s.Entries = append(s.Entries, CDMEntry{
				Ref:      dict[idx],
				iid:      iids[idx],
				InSource: r.bool(),
				SrcIC:    r.uint(),
				InTarget: r.bool(),
				TgtIC:    r.uint(),
			})
		}
		if r.err != nil {
			break
		}
		if _, dup := seen[s.Det]; dup {
			r.fail("duplicate detection %s/%d in batch", s.Det.Origin, s.Det.Seq)
			break
		}
		seen[s.Det] = struct{}{}
		m.Sections = append(m.Sections, s)
	}
	if r.err == nil {
		for i, u := range used {
			if !u {
				r.fail("unused dictionary ref %d", i)
				break
			}
		}
	}
	return m
}
