package wire

// Batch bundles several messages into one wire frame. The TCP transport's
// staging mode collects every message a GC phase produces for one peer and
// ships them as a single Batch — one length-prefixed frame, one syscall —
// instead of one frame per CDM. Batches are a pure framing construct: the
// receiver unpacks and delivers the sub-messages individually, so the
// protocol layers never see them.
//
// Encoding: a count followed by the length-prefixed canonical encoding of
// each sub-message. Nested batches are rejected on decode — nothing
// legitimately produces them, and forbidding them bounds unpacking depth.
type Batch struct {
	Msgs []Message
}

// Kind implements Message.
func (*Batch) Kind() Kind { return KindBatch }

func (m *Batch) encode(buf []byte) []byte {
	buf = putUint(buf, uint64(len(m.Msgs)))
	bp := getEncBuf(64)
	scratch := (*bp)[:0]
	for _, sub := range m.Msgs {
		scratch = AppendEncode(scratch[:0], sub)
		buf = putUint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
	}
	*bp = scratch
	putEncBuf(bp)
	return buf
}

func decodeBatch(r *reader) *Batch {
	n := r.count()
	m := &Batch{}
	if n > 0 && r.err == nil {
		m.Msgs = make([]Message, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		ln := r.count()
		if r.err != nil {
			break
		}
		if r.pos+ln > len(r.data) {
			r.fail("truncated batch element %d at offset %d (+%d)", i, r.pos, ln)
			break
		}
		sub := r.data[r.pos : r.pos+ln]
		r.pos += ln
		if ln > 0 && Kind(sub[0]) == KindBatch {
			r.fail("nested batch at element %d", i)
			break
		}
		msg, err := Decode(sub)
		if err != nil {
			r.fail("batch element %d: %v", i, err)
			break
		}
		m.Msgs = append(m.Msgs, msg)
	}
	return m
}
