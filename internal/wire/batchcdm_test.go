package wire

import (
	"reflect"
	"strings"
	"testing"

	"dgc/internal/core"
	"dgc/internal/ids"
)

// batchRefs returns a few distinct canonical references for batch tests.
func batchRefs() []ids.RefID {
	return []ids.RefID{
		{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 1}},
		{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 5}},
		{Src: "P2", Dst: ids.GlobalRef{Node: "P3", Obj: 2}},
		{Src: "P3", Dst: ids.GlobalRef{Node: "P1", Obj: 9}},
	}
}

// testBatch builds a three-section batch whose sections overlap on refs —
// the shared-dictionary case batching exists for.
func testBatch(ret bool) *BatchCDM {
	rs := batchRefs()
	a1 := core.NewAlg()
	a1.Set(rs[0], core.Entry{InSource: true, SrcIC: 2})
	a1.Set(rs[2], core.Entry{InTarget: true, TgtIC: 3})
	a2 := core.NewAlg()
	a2.Set(rs[0], core.Entry{InSource: true, SrcIC: 2, InTarget: true, TgtIC: 2})
	a2.Set(rs[1], core.Entry{InTarget: true, TgtIC: 7})
	a3 := core.NewAlg()
	a3.Set(rs[3], core.Entry{InSource: true, SrcIC: 1})
	return NewBatchCDM(rs[2], 4, ret, []BatchSection{
		NewBatchSection(core.DetectionID{Origin: "P1", Seq: 1}, 11, a1),
		NewBatchSection(core.DetectionID{Origin: "P1", Seq: 2}, 12, a2),
		NewBatchSection(core.DetectionID{Origin: "P4", Seq: 1}, 13, a3),
	})
}

func TestBatchCDMRoundTrip(t *testing.T) {
	for _, ret := range []bool{false, true} {
		m := testBatch(ret)
		data := Encode(m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("ret=%v: decode: %v", ret, err)
		}
		b, ok := got.(*BatchCDM)
		if !ok {
			t.Fatalf("decoded %T", got)
		}
		if b.Along != m.Along || b.Hops != m.Hops || b.Return != m.Return {
			t.Fatalf("header mismatch: %+v vs %+v", b, m)
		}
		if len(b.Sections) != len(m.Sections) {
			t.Fatalf("sections = %d, want %d", len(b.Sections), len(m.Sections))
		}
		for i := range m.Sections {
			ws, ds := &m.Sections[i], &b.Sections[i]
			if ds.Det != ws.Det || ds.Trace != ws.Trace {
				t.Fatalf("section %d identity mismatch", i)
			}
			if !ds.Alg().Equal(ws.Alg()) {
				t.Fatalf("section %d algebra mismatch", i)
			}
		}
		// Canonical form: the decoded message re-encodes byte-identically.
		if re := Encode(b); !reflect.DeepEqual(re, data) {
			t.Fatalf("ret=%v: not canonical:\n in  %x\n out %x", ret, data, re)
		}
	}
}

func TestBatchSectionMergePathsAgree(t *testing.T) {
	// The three merge paths — in-process dense algebra, decoded interned
	// entries, and plain rebuilt entries — must produce identical unions.
	m := testBatch(false)
	data := Encode(m)
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	b := dec.(*BatchCDM)
	for i := range m.Sections {
		inProc, decoded := core.NewAlg(), core.NewAlg()
		if _, conflict := m.Sections[i].MergeAlgInto(inProc); conflict {
			t.Fatalf("section %d: in-process merge conflict", i)
		}
		if _, conflict := b.Sections[i].MergeAlgInto(decoded); conflict {
			t.Fatalf("section %d: decoded merge conflict", i)
		}
		if !inProc.Equal(decoded) {
			t.Fatalf("section %d: merge paths disagree", i)
		}
	}
}

func TestBatchCDMTruncationErrorsNotPanics(t *testing.T) {
	for _, ret := range []bool{false, true} {
		data := Encode(testBatch(ret))
		for n := 1; n < len(data); n++ {
			if _, err := Decode(data[:n]); err == nil {
				t.Fatalf("ret=%v: %d-byte prefix of %d accepted", ret, n, len(data))
			}
		}
	}
}

// rawBatch hand-assembles a KindBatchCDM payload so tests can express
// malformed framings the encoder cannot produce.
type rawBatch struct{ buf []byte }

func newRawBatch(along ids.RefID, hops uint64, ret bool, dict []ids.RefID) *rawBatch {
	b := &rawBatch{buf: []byte{byte(KindBatchCDM)}}
	b.buf = putRefID(b.buf, along)
	b.buf = putUint(b.buf, hops)
	b.buf = putBool(b.buf, ret)
	b.buf = putUint(b.buf, uint64(len(dict)))
	for _, r := range dict {
		b.buf = putRefID(b.buf, r)
	}
	return b
}

func (b *rawBatch) sections(n int) *rawBatch {
	b.buf = putUint(b.buf, uint64(n))
	return b
}

func (b *rawBatch) section(origin ids.NodeID, seq uint64, entries ...uint64) *rawBatch {
	b.buf = putNode(b.buf, origin)
	b.buf = putUint(b.buf, seq)
	b.buf = putUint(b.buf, 99) // trace
	b.buf = putUint(b.buf, uint64(len(entries)))
	for _, idx := range entries {
		b.buf = putUint(b.buf, idx)
		b.buf = putBool(b.buf, true) // in source
		b.buf = putUint(b.buf, 1)    // src ic
		b.buf = putBool(b.buf, false)
		b.buf = putUint(b.buf, 0)
	}
	return b
}

func TestBatchCDMRejectsMalformed(t *testing.T) {
	rs := batchRefs()
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{
			"zero sections",
			newRawBatch(rs[0], 1, false, rs[:1]).sections(0).buf,
			"zero sections",
		},
		{
			"zero-entry section",
			newRawBatch(rs[0], 1, false, rs[:1]).sections(1).section("P1", 1).buf,
			"zero entries",
		},
		{
			"duplicate detection ids",
			newRawBatch(rs[0], 1, false, rs[:1]).sections(2).
				section("P1", 7, 0).section("P1", 7, 0).buf,
			"duplicate detection",
		},
		{
			"dictionary out of order",
			newRawBatch(rs[0], 1, false, []ids.RefID{rs[1], rs[0]}).sections(1).
				section("P1", 1, 0, 1).buf,
			"canonical order",
		},
		{
			"unused dictionary ref",
			newRawBatch(rs[0], 1, false, rs[:2]).sections(1).section("P1", 1, 0).buf,
			"unused dictionary ref",
		},
		{
			"entry index out of range",
			newRawBatch(rs[0], 1, false, rs[:1]).sections(1).section("P1", 1, 3).buf,
			"out of dictionary range",
		},
		{
			"entries out of order",
			newRawBatch(rs[0], 1, false, rs[:2]).sections(1).section("P1", 1, 1, 0).buf,
			"canonical order",
		},
		{
			"repeated entry index",
			newRawBatch(rs[0], 1, false, rs[:1]).sections(1).section("P1", 1, 0, 0).buf,
			"canonical order",
		},
		{
			"hops overflow",
			newRawBatch(rs[0], 1<<40, false, rs[:1]).sections(1).section("P1", 1, 0).buf,
			"overflows",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("malformed batch accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
