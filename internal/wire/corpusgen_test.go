package wire

import (
	"os"
	"strconv"
	"testing"

	"dgc/internal/ids"
)

// TestGenerateBatchCorpus regenerates the checked-in BatchCDM fuzz corpus
// (valid batches plus the malformed framings the decoder must reject without
// panicking). Skipped unless WIRE_GEN_CORPUS is set; the written files are
// committed under testdata/fuzz/FuzzDecode.
func TestGenerateBatchCorpus(t *testing.T) {
	if os.Getenv("WIRE_GEN_CORPUS") == "" {
		t.Skip("set WIRE_GEN_CORPUS=1 to regenerate")
	}
	rs := batchRefs()
	entries := map[string][]byte{
		"batchcdm-valid":         Encode(testBatch(false)),
		"batchcdm-return":        Encode(testBatch(true)),
		"batchcdm-truncated":     Encode(testBatch(false))[:20],
		"batchcdm-zero-sections": newRawBatch(rs[0], 1, false, rs[:1]).sections(0).buf,
		"batchcdm-zero-entries":  newRawBatch(rs[0], 1, false, rs[:1]).sections(1).section("P1", 1).buf,
		"batchcdm-dup-detection": newRawBatch(rs[0], 1, false, rs[:1]).sections(2).
			section("P1", 7, 0).section("P1", 7, 0).buf,
		"batchcdm-unsorted-dict": newRawBatch(rs[0], 1, false, []ids.RefID{rs[1], rs[0]}).
			sections(1).section("P1", 1, 0, 1).buf,
	}
	for name, data := range entries {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile("testdata/fuzz/FuzzDecode/"+name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
