package wire

import (
	"math"
	"math/bits"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

// Analytic sizes of the encoder's primitives, for messages hot enough to
// answer EncodedSize without an encode walk. Must mirror enc.go exactly.

func uvarintSize(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

func nodeSize(n ids.NodeID) int { return uvarintSize(uint64(len(n))) + len(n) }

func refIDSize(r ids.RefID) int {
	return nodeSize(r.Src) + nodeSize(r.Dst.Node) + uvarintSize(uint64(r.Dst.Obj))
}

// ---- remote invocation --------------------------------------------------

// InvokeRequest asks the destination to invoke a method on one of its
// objects. Args carries references exported with the call (their scions at
// the owning processes were created before the request was sent). StubIC is
// the caller's invocation counter after the send-side bump, piggy-backed per
// §3.2.
type InvokeRequest struct {
	CallID uint64
	From   ids.NodeID
	Target ids.GlobalRef
	Method string
	Args   []ids.GlobalRef
	StubIC uint64
}

// Kind implements Message.
func (*InvokeRequest) Kind() Kind { return KindInvokeRequest }

func (m *InvokeRequest) encode(buf []byte) []byte {
	buf = putUint(buf, m.CallID)
	buf = putNode(buf, m.From)
	buf = putGlobalRef(buf, m.Target)
	buf = putString(buf, m.Method)
	buf = putGlobalRefs(buf, m.Args)
	return putUint(buf, m.StubIC)
}

func decodeInvokeRequest(r *reader) *InvokeRequest {
	return &InvokeRequest{
		CallID: r.uint(),
		From:   r.node(),
		Target: r.globalRef(),
		Method: r.string(),
		Args:   r.globalRefs(),
		StubIC: r.uint(),
	}
}

// InvokeReply carries the result of an InvokeRequest back to the caller,
// including any references returned by the method (exported by the callee).
// ScionIC piggy-backs the callee's counter after the reply-side bump.
type InvokeReply struct {
	CallID  uint64
	From    ids.NodeID
	Target  ids.GlobalRef // the invoked object (identifies the reference)
	OK      bool
	Err     string
	Returns []ids.GlobalRef
	ScionIC uint64
}

// Kind implements Message.
func (*InvokeReply) Kind() Kind { return KindInvokeReply }

func (m *InvokeReply) encode(buf []byte) []byte {
	buf = putUint(buf, m.CallID)
	buf = putNode(buf, m.From)
	buf = putGlobalRef(buf, m.Target)
	buf = putBool(buf, m.OK)
	buf = putString(buf, m.Err)
	buf = putGlobalRefs(buf, m.Returns)
	return putUint(buf, m.ScionIC)
}

func decodeInvokeReply(r *reader) *InvokeReply {
	return &InvokeReply{
		CallID:  r.uint(),
		From:    r.node(),
		Target:  r.globalRef(),
		OK:      r.bool(),
		Err:     r.string(),
		Returns: r.globalRefs(),
		ScionIC: r.uint(),
	}
}

// ---- reference listing ---------------------------------------------------

// CreateScion asks the destination (the owner of Obj) to create a scion
// recording that Holder now references Obj. Sent by an exporter before it
// hands the reference to Holder, preserving the scion-before-stub ordering
// that keeps reference listing safe.
type CreateScion struct {
	ExportID uint64 // exporter-local id for matching the ack
	From     ids.NodeID
	Holder   ids.NodeID
	Obj      ids.ObjID
}

// Kind implements Message.
func (*CreateScion) Kind() Kind { return KindCreateScion }

func (m *CreateScion) encode(buf []byte) []byte {
	buf = putUint(buf, m.ExportID)
	buf = putNode(buf, m.From)
	buf = putNode(buf, m.Holder)
	return putUint(buf, uint64(m.Obj))
}

func decodeCreateScion(r *reader) *CreateScion {
	return &CreateScion{
		ExportID: r.uint(),
		From:     r.node(),
		Holder:   r.node(),
		Obj:      ids.ObjID(r.uint()),
	}
}

// CreateScionAck confirms scion creation to the exporter.
type CreateScionAck struct {
	ExportID uint64
	From     ids.NodeID
	OK       bool
	Err      string
}

// Kind implements Message.
func (*CreateScionAck) Kind() Kind { return KindCreateScionAck }

func (m *CreateScionAck) encode(buf []byte) []byte {
	buf = putUint(buf, m.ExportID)
	buf = putNode(buf, m.From)
	buf = putBool(buf, m.OK)
	return putString(buf, m.Err)
}

func decodeCreateScionAck(r *reader) *CreateScionAck {
	return &CreateScionAck{
		ExportID: r.uint(),
		From:     r.node(),
		OK:       r.bool(),
		Err:      r.string(),
	}
}

// NewSetStubs wraps the reference-listing stub-set message (§1).
type NewSetStubs struct {
	Set refs.StubSetMsg
}

// Kind implements Message.
func (*NewSetStubs) Kind() Kind { return KindNewSetStubs }

func (m *NewSetStubs) encode(buf []byte) []byte {
	buf = putNode(buf, m.Set.From)
	buf = putUint(buf, m.Set.Seq)
	return putObjIDs(buf, m.Set.Objs)
}

func decodeNewSetStubs(r *reader) *NewSetStubs {
	return &NewSetStubs{Set: refs.StubSetMsg{
		From: r.node(),
		Seq:  r.uint(),
		Objs: r.objIDs(),
	}}
}

// ---- cycle detection -----------------------------------------------------

// CDMEntry is the flattened wire form of one algebra entry.
type CDMEntry struct {
	Ref      ids.RefID
	InSource bool
	SrcIC    uint64
	InTarget bool
	TgtIC    uint64

	// iid is the process-local interned id of Ref, biased by one (0 means
	// unknown). Never encoded — interned ids are meaningless to peers — so
	// it is zero on decoded and literal-constructed entries and set only by
	// FlattenAlg, which fills whole entry lists uniformly. It lets
	// in-process deliveries rebuild or merge the algebra without re-hashing
	// any reference.
	iid int32
}

// CDM is a cycle detection message: the detection identity, the reference it
// travels along, the forwarding depth, the causal trace id, and the algebra.
type CDM struct {
	Det   core.DetectionID
	Along ids.RefID
	Hops  uint32
	// Trace is the detection's causal trace id (core.TraceIDFor), carried
	// unchanged across every hop so observability tooling can follow one
	// detection through multiple processes.
	Trace   uint64
	Entries []CDMEntry

	// src is the algebra the message was flattened from. Never encoded: it
	// exists so in-process deliveries (the in-memory fabric passes message
	// pointers) can merge the already-id-sorted dense entries directly,
	// skipping the flatten→re-sort round-trip. Receivers treat it as
	// immutable — Merge never mutates its operand and the detector clones
	// before deriving — which is what makes sharing one algebra across the
	// whole fan-out and every local delivery safe. Zero on decoded messages.
	src core.Alg
}

// Kind implements Message.
func (*CDM) Kind() Kind { return KindCDM }

func (m *CDM) encode(buf []byte) []byte {
	buf = putNode(buf, m.Det.Origin)
	buf = putUint(buf, m.Det.Seq)
	buf = putRefID(buf, m.Along)
	buf = putUint(buf, uint64(m.Hops))
	buf = putUint(buf, m.Trace)
	if m.Entries == nil && m.src != (core.Alg{}) {
		// Lazily-flattened message (NewCDMFromAlg): encode straight off the
		// algebra in canonical order — byte-identical to the eager path, no
		// materialized entry list.
		buf = putUint(buf, uint64(m.src.Len()))
		m.src.EachCanonical(func(r ids.RefID, e core.Entry) bool {
			buf = putRefID(buf, r)
			buf = putBool(buf, e.InSource)
			buf = putUint(buf, e.SrcIC)
			buf = putBool(buf, e.InTarget)
			buf = putUint(buf, e.TgtIC)
			return true
		})
		return buf
	}
	buf = putUint(buf, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		buf = putRefID(buf, e.Ref)
		buf = putBool(buf, e.InSource)
		buf = putUint(buf, e.SrcIC)
		buf = putBool(buf, e.InTarget)
		buf = putUint(buf, e.TgtIC)
	}
	return buf
}

// encodedSize returns len(m.encode(nil)) without encoding. CDMs dominate
// detection traffic and the transports size every message (inproc byte
// accounting, TCP batch chunking), so the walk is worth skipping.
func (m *CDM) encodedSize() int {
	n := nodeSize(m.Det.Origin) + uvarintSize(m.Det.Seq) +
		refIDSize(m.Along) + uvarintSize(uint64(m.Hops)) + uvarintSize(m.Trace)
	if m.Entries == nil && m.src != (core.Alg{}) {
		// Sizes are order-independent, so the lazy path walks the algebra
		// unsorted.
		n += uvarintSize(uint64(m.src.Len()))
		m.src.Each(func(r ids.RefID, e core.Entry) bool {
			n += refIDSize(r) + 2 + uvarintSize(e.SrcIC) + uvarintSize(e.TgtIC)
			return true
		})
		return n
	}
	n += uvarintSize(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		n += refIDSize(e.Ref) + 2 + uvarintSize(e.SrcIC) + uvarintSize(e.TgtIC)
	}
	return n
}

func decodeCDM(r *reader) *CDM {
	m := &CDM{
		Det:   core.DetectionID{Origin: r.node(), Seq: r.uint()},
		Along: r.refID(),
	}
	hops := r.uint()
	if hops > math.MaxUint32 {
		r.fail("hops %d overflows uint32", hops)
	}
	m.Hops = uint32(hops)
	m.Trace = r.uint()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Entries = append(m.Entries, CDMEntry{
			Ref:      r.refID(),
			InSource: r.bool(),
			SrcIC:    r.uint(),
			InTarget: r.bool(),
			TgtIC:    r.uint(),
		})
	}
	return m
}

// FlattenAlg flattens an algebra into wire entries in canonical reference
// order, with each entry carrying its process-local interned id. The
// canonical order is computed from the algebra's cached integer ranks, so
// flattening never compares reference strings. The returned slice is treated
// as immutable: the detector's fan-out shares one flattening across the CDMs
// sent to every eligible peer.
func FlattenAlg(alg core.Alg) []CDMEntry {
	entries := make([]CDMEntry, 0, alg.Len())
	alg.EachCanonicalInterned(func(id int32, r ids.RefID, e core.Entry) bool {
		entries = append(entries, CDMEntry{
			Ref: r, InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
			iid: id + 1,
		})
		return true
	})
	return entries
}

// NewCDM builds a CDM message from an algebra, flattening entries in
// canonical reference order.
func NewCDM(det core.DetectionID, along ids.RefID, alg core.Alg, hops int) *CDM {
	return NewCDMFromFlat(det, along, alg, FlattenAlg(alg), hops)
}

// NewCDMFromFlat builds a CDM around an algebra and its already-flattened
// entry list (FlattenAlg's output), sharing both.
func NewCDMFromFlat(det core.DetectionID, along ids.RefID, alg core.Alg, entries []CDMEntry, hops int) *CDM {
	return &CDM{Det: det, Along: along, Hops: uint32(hops), Entries: entries, src: alg}
}

// NewCDMFromAlg builds a lazily-flattened CDM: the message carries only the
// algebra, Entries stays nil, and the codec flattens during encode (which
// in-process deliveries never reach). This is the detector fan-out's
// constructor — one algebra shared across every peer's CDM, one allocation
// per message. trace is the detection's causal trace id (core.TraceIDFor).
func NewCDMFromAlg(det core.DetectionID, along ids.RefID, alg core.Alg, hops int, trace uint64) *CDM {
	return &CDM{Det: det, Along: along, Hops: uint32(hops), Trace: trace, src: alg}
}

// interned reports whether the message's entries carry cached interned ids
// (entry lists are uniform: all from FlattenAlg or all without ids).
func (m *CDM) interned() bool {
	return len(m.Entries) > 0 && m.Entries[0].iid != 0
}

// MergeAlgInto merges the carried algebra into a, with Merge's semantics.
// Messages built in this process merge the sender's algebra directly (its
// entries are already dense and id-sorted — no hashing, no sorting); decoded
// messages with cached interned ids merge off the flattened entries; plain
// decoded messages rebuild an algebra first.
func (m *CDM) MergeAlgInto(a core.Alg) (changed, conflict bool) {
	if m.src != (core.Alg{}) {
		return a.Merge(m.src)
	}
	if m.interned() {
		return a.MergeInterned(len(m.Entries), func(i int) (int32, core.Entry) {
			e := m.Entries[i]
			return e.iid - 1, core.Entry{
				InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
			}
		})
	}
	return a.Merge(m.Alg())
}

// Alg reconstructs the algebra carried by the message. Messages built in
// this process clone the carried algebra (one copy, no hashing or sorting);
// decoded messages intern each reference and rebuild.
func (m *CDM) Alg() core.Alg {
	if m.src != (core.Alg{}) {
		return m.src.Clone()
	}
	if m.interned() {
		return core.BuildAlgInterned(len(m.Entries), func(i int) (int32, core.Entry) {
			e := m.Entries[i]
			return e.iid - 1, core.Entry{
				InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
			}
		})
	}
	return core.BuildAlg(len(m.Entries), func(i int) (ids.RefID, core.Entry) {
		e := m.Entries[i]
		return e.Ref, core.Entry{
			InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
		}
	})
}

// DeleteScion tells the destination that the scion for Ref belongs to a
// detected distributed garbage cycle (BroadcastDelete mode).
type DeleteScion struct {
	Det core.DetectionID
	Ref ids.RefID
}

// Kind implements Message.
func (*DeleteScion) Kind() Kind { return KindDeleteScion }

func (m *DeleteScion) encode(buf []byte) []byte {
	buf = putNode(buf, m.Det.Origin)
	buf = putUint(buf, m.Det.Seq)
	return putRefID(buf, m.Ref)
}

func decodeDeleteScion(r *reader) *DeleteScion {
	return &DeleteScion{
		Det: core.DetectionID{Origin: r.node(), Seq: r.uint()},
		Ref: r.refID(),
	}
}

// ---- baselines -------------------------------------------------------------

// HughesStamp propagates a timestamp from stubs to scions (Hughes 1985
// baseline): the destination must raise the stamps of the listed objects to
// Stamp.
type HughesStamp struct {
	From  ids.NodeID
	Stamp uint64
	Objs  []ids.ObjID
}

// Kind implements Message.
func (*HughesStamp) Kind() Kind { return KindHughesStamp }

func (m *HughesStamp) encode(buf []byte) []byte {
	buf = putNode(buf, m.From)
	buf = putUint(buf, m.Stamp)
	return putObjIDs(buf, m.Objs)
}

func decodeHughesStamp(r *reader) *HughesStamp {
	return &HughesStamp{From: r.node(), Stamp: r.uint(), Objs: r.objIDs()}
}

// HughesThreshold broadcasts the new global minimum redo threshold computed
// by the (consensus-requiring) termination service of the Hughes baseline.
type HughesThreshold struct {
	Threshold uint64
}

// Kind implements Message.
func (*HughesThreshold) Kind() Kind { return KindHughesThreshold }

func (m *HughesThreshold) encode(buf []byte) []byte {
	return putUint(buf, m.Threshold)
}

func decodeHughesThreshold(r *reader) *HughesThreshold {
	return &HughesThreshold{Threshold: r.uint()}
}

// BacktraceRequest asks the destination to report, for its object Obj,
// whether Obj is locally reachable and which incoming references (scions)
// lead to it (Maheshwari–Liskov back-tracing baseline). Visited carries the
// trace's path state — the per-process detection state the paper criticizes.
type BacktraceRequest struct {
	TraceID uint64
	Origin  ids.NodeID
	From    ids.NodeID
	Obj     ids.ObjID
	Visited []ids.RefID
}

// Kind implements Message.
func (*BacktraceRequest) Kind() Kind { return KindBacktraceRequest }

func (m *BacktraceRequest) encode(buf []byte) []byte {
	buf = putUint(buf, m.TraceID)
	buf = putNode(buf, m.Origin)
	buf = putNode(buf, m.From)
	buf = putUint(buf, uint64(m.Obj))
	buf = putUint(buf, uint64(len(m.Visited)))
	for _, v := range m.Visited {
		buf = putRefID(buf, v)
	}
	return buf
}

func decodeBacktraceRequest(r *reader) *BacktraceRequest {
	m := &BacktraceRequest{
		TraceID: r.uint(),
		Origin:  r.node(),
		From:    r.node(),
		Obj:     ids.ObjID(r.uint()),
	}
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Visited = append(m.Visited, r.refID())
	}
	return m
}

// BacktraceReply reports a sub-trace result to the requester: whether a
// local root was found anywhere behind the traced object.
type BacktraceReply struct {
	TraceID   uint64
	From      ids.NodeID
	Obj       ids.ObjID
	RootFound bool
}

// Kind implements Message.
func (*BacktraceReply) Kind() Kind { return KindBacktraceReply }

func (m *BacktraceReply) encode(buf []byte) []byte {
	buf = putUint(buf, m.TraceID)
	buf = putNode(buf, m.From)
	buf = putUint(buf, uint64(m.Obj))
	return putBool(buf, m.RootFound)
}

func decodeBacktraceReply(r *reader) *BacktraceReply {
	return &BacktraceReply{
		TraceID:   r.uint(),
		From:      r.node(),
		Obj:       ids.ObjID(r.uint()),
		RootFound: r.bool(),
	}
}

// Credit is a flow-control grant from a message consumer back to a producer:
// the cumulative count of messages the sender of the Credit has consumed on
// that edge since the consumer started. The count is cumulative and the
// receiver keeps only the maximum seen, so lost, duplicated or reordered
// grants are all harmless — every grant simply re-announces the latest
// consumed position. Credit messages are exempt from flow control themselves.
// See node.RuntimeConfig.Backpressure.
type Credit struct {
	Consumed uint64
}

// Kind implements Message.
func (*Credit) Kind() Kind { return KindCredit }

func (m *Credit) encode(buf []byte) []byte {
	return putUint(buf, m.Consumed)
}

func decodeCredit(r *reader) *Credit {
	return &Credit{Consumed: r.uint()}
}
