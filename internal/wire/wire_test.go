package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data := Encode(m)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%s): %v", m.Kind(), err)
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("kind mismatch: %s vs %s", got.Kind(), m.Kind())
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	g1 := ids.GlobalRef{Node: "P2", Obj: 6}
	g2 := ids.GlobalRef{Node: "P4", Obj: 17}
	r1 := ids.RefID{Src: "P1", Dst: g1}
	r2 := ids.RefID{Src: "P2", Dst: g2}
	det := core.DetectionID{Origin: "P2", Seq: 9}

	msgs := []Message{
		&InvokeRequest{CallID: 3, From: "P1", Target: g1, Method: "store", Args: []ids.GlobalRef{g2}, StubIC: 7},
		&InvokeRequest{CallID: 4, From: "P1", Target: g1}, // empty args
		&InvokeReply{CallID: 3, From: "P2", Target: g1, OK: true, Returns: []ids.GlobalRef{g1, g2}, ScionIC: 8},
		&InvokeReply{CallID: 3, From: "P2", Target: g1, OK: false, Err: "no such method"},
		&CreateScion{ExportID: 5, From: "P1", Holder: "P3", Obj: 6},
		&CreateScionAck{ExportID: 5, From: "P2", OK: true},
		&CreateScionAck{ExportID: 5, From: "P2", OK: false, Err: "no such object"},
		&NewSetStubs{Set: refs.StubSetMsg{From: "P1", Seq: 12, Objs: []ids.ObjID{1, 5, 9}}},
		&NewSetStubs{Set: refs.StubSetMsg{From: "P1", Seq: 13}},
		&CDM{Det: det, Along: r2, Hops: 3, Trace: 0xfeedface12345678, Entries: []CDMEntry{
			{Ref: r1, InSource: true, SrcIC: 2},
			{Ref: r2, InSource: true, SrcIC: 1, InTarget: true, TgtIC: 1},
		}},
		&DeleteScion{Det: det, Ref: r1},
		&HughesStamp{From: "P1", Stamp: 77, Objs: []ids.ObjID{2, 3}},
		&HughesThreshold{Threshold: 42},
		&BacktraceRequest{TraceID: 1, Origin: "P1", From: "P3", Obj: 4, Visited: []ids.RefID{r1, r2}},
		&BacktraceReply{TraceID: 1, From: "P2", Obj: 4, RootFound: true},
		&Batch{Msgs: []Message{
			&HughesThreshold{Threshold: 42},
			&DeleteScion{Det: det, Ref: r1},
		}},
		&Batch{},
		&Gossip{Members: []MemberRecord{
			{Node: "P1", Addr: "10.0.0.1:7001", Incarnation: 3, State: 2},
			{Node: "P2", Incarnation: 0, State: 5},
		}},
		&Gossip{Ack: true},
		&LeaseHandoff{Holder: "P3", Objs: []ids.ObjID{2, 7, 9}},
		&LeaseHandoff{Holder: "P3"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s round trip mismatch:\n got %#v\nwant %#v", m.Kind(), got, m)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should fail")
	}
	if _, err := Decode([]byte{0xEE}); err == nil {
		t.Error("Decode(unknown kind) should fail")
	}
	// Truncations of a valid message must all fail.
	data := Encode(&InvokeRequest{CallID: 3, From: "P1", Target: ids.GlobalRef{Node: "P2", Obj: 6}, Method: "m"})
	for cut := 1; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d decoded successfully", cut)
		}
	}
	// Trailing garbage must fail.
	if _, err := Decode(append(append([]byte{}, data...), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestCDMAlgConversion(t *testing.T) {
	alg := core.NewAlg()
	r1 := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 1}}
	r2 := ids.RefID{Src: "P2", Dst: ids.GlobalRef{Node: "P4", Obj: 2}}
	alg.AddSource(r1, 5)
	alg.AddTarget(r2, 3)
	alg.AddSource(r2, 3)

	det := core.DetectionID{Origin: "P2", Seq: 1}
	msg := NewCDM(det, r2, alg, 5)
	if len(msg.Entries) != 2 {
		t.Fatalf("entries = %d", len(msg.Entries))
	}
	// Canonical order: r1 < r2.
	if msg.Entries[0].Ref != r1 || msg.Entries[1].Ref != r2 {
		t.Fatalf("entry order: %v, %v", msg.Entries[0].Ref, msg.Entries[1].Ref)
	}
	back := msg.Alg()
	if !back.Equal(alg) {
		t.Fatalf("Alg round trip: %v vs %v", back, alg)
	}
}

func TestCDMAlgConversionProperty(t *testing.T) {
	f := func(srcBits, tgtBits uint8, icSeed uint8) bool {
		alg := core.NewAlg()
		for i := 0; i < 8; i++ {
			r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: ids.ObjID(i)}}
			if srcBits&(1<<i) != 0 {
				alg.AddSource(r, uint64(icSeed)+uint64(i))
			}
			if tgtBits&(1<<i) != 0 {
				alg.AddTarget(r, uint64(icSeed)*2+uint64(i))
			}
		}
		msg := NewCDM(core.DetectionID{Origin: "X", Seq: 1}, ids.RefID{}, alg, 0)
		data := Encode(msg)
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return got.(*CDM).Alg().Equal(alg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBatchRejectsNesting(t *testing.T) {
	inner := Encode(&Batch{Msgs: []Message{&HughesThreshold{Threshold: 1}}})
	data := []byte{byte(KindBatch), 1}
	data = putUint(data, uint64(len(inner)))
	data = append(data, inner...)
	if _, err := Decode(data); err == nil {
		t.Fatal("nested batch accepted")
	}
	// Empty sub-message must also be rejected.
	data = []byte{byte(KindBatch), 1, 0}
	if _, err := Decode(data); err == nil {
		t.Fatal("empty batch element accepted")
	}
}

// TestNewCDMBytesMatchReference builds the wire CDM two ways — through the
// interned algebra's NewCDM and by hand from a parallel map (the retired
// representation) — and requires byte-identical encodings. Together with
// core's algReference property tests this pins the interned algebra's wire
// output to the old implementation's.
func TestNewCDMBytesMatchReference(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		alg := core.NewAlg()
		mirror := map[ids.RefID]core.Entry{}
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			r := ids.RefID{
				Src: ids.NodeID([]string{"P1", "P2", "P3"}[rng.Intn(3)]),
				Dst: ids.GlobalRef{Node: ids.NodeID([]string{"P4", "P5"}[rng.Intn(2)]), Obj: ids.ObjID(rng.Intn(6))},
			}
			if rng.Intn(2) == 0 {
				alg.AddSource(r, uint64(rng.Intn(4)))
			}
			if rng.Intn(2) == 0 {
				alg.AddTarget(r, uint64(rng.Intn(4)))
			}
			if e, ok := alg.Get(r); ok {
				mirror[r] = e
			}
		}
		det := core.DetectionID{Origin: "P2", Seq: uint64(seed)}
		along := ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P1", Obj: 1}}
		tr := core.TraceIDFor(det)
		eager := NewCDM(det, along, alg, 3)
		eager.Trace = tr
		got := Encode(eager)

		// Reference flattening: sorted map keys, exactly as the retired
		// map-based NewCDM did it.
		keys := make([]ids.RefID, 0, len(mirror))
		for r := range mirror {
			keys = append(keys, r)
		}
		ids.SortRefIDs(keys)
		ref := &CDM{Det: det, Along: along, Hops: 3, Trace: tr}
		for _, r := range keys {
			e := mirror[r]
			ref.Entries = append(ref.Entries, CDMEntry{
				Ref: r, InSource: e.InSource, SrcIC: e.SrcIC, InTarget: e.InTarget, TgtIC: e.TgtIC,
			})
		}
		want := Encode(ref)
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: wire bytes differ\n got %x\nwant %x", seed, got, want)
		}

		// The lazily-flattened constructor (what the detector fan-out sends)
		// must produce the same bytes and the same size as the eager path.
		lazy := NewCDMFromAlg(det, along, alg, 3, tr)
		if lb := Encode(lazy); !bytes.Equal(lb, want) {
			t.Fatalf("seed %d: lazy wire bytes differ\n got %x\nwant %x", seed, lb, want)
		}
		if n := EncodedSize(lazy); n != len(want) {
			t.Fatalf("seed %d: lazy EncodedSize = %d, want %d", seed, n, len(want))
		}
		if !lazy.Alg().Equal(alg) {
			t.Fatalf("seed %d: lazy Alg() mismatch", seed)
		}
	}
}

func TestEncodedSizeAndAppendEncode(t *testing.T) {
	det := core.DetectionID{Origin: "P2", Seq: 9}
	r1 := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 6}}
	msgs := []Message{
		&HughesThreshold{Threshold: 42},
		&DeleteScion{Det: det, Ref: r1},
		&Batch{Msgs: []Message{&DeleteScion{Det: det, Ref: r1}}},
		&Gossip{Ack: true, Members: []MemberRecord{{Node: "P1", Addr: "h:1", Incarnation: 300, State: 2}}},
		&LeaseHandoff{Holder: "P3", Objs: []ids.ObjID{2, 700}},
	}
	for _, m := range msgs {
		data := Encode(m)
		if n := EncodedSize(m); n != len(data) {
			t.Errorf("%s: EncodedSize = %d, len(Encode) = %d", m.Kind(), n, len(data))
		}
		prefix := []byte{0xAB, 0xCD}
		app := AppendEncode(append([]byte{}, prefix...), m)
		if !bytes.Equal(app[:2], prefix) || !bytes.Equal(app[2:], data) {
			t.Errorf("%s: AppendEncode mismatch", m.Kind())
		}
	}

	// The CDM answers EncodedSize analytically: sweep values across varint
	// width boundaries and verify against the real encoder.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		m := &CDM{
			Det:   core.DetectionID{Origin: ids.NodeID(randName(rng)), Seq: randUint(rng)},
			Along: randRefID(rng),
			Hops:  uint32(randUint(rng)),
			Trace: randUint(rng),
		}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			m.Entries = append(m.Entries, CDMEntry{
				Ref:      randRefID(rng),
				InSource: rng.Intn(2) == 0,
				SrcIC:    randUint(rng),
				InTarget: rng.Intn(2) == 0,
				TgtIC:    randUint(rng),
			})
		}
		if n, data := EncodedSize(m), Encode(m); n != len(data) {
			t.Fatalf("trial %d: CDM EncodedSize = %d, len(Encode) = %d", trial, n, len(data))
		}
	}
}

func randName(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(12))
	for i := range b {
		b[i] = byte('A' + rng.Intn(26))
	}
	return string(b)
}

func randUint(rng *rand.Rand) uint64 {
	// Bias across varint widths: a random bit length, then a random value.
	return rng.Uint64() >> uint(rng.Intn(64))
}

func randRefID(rng *rand.Rand) ids.RefID {
	return ids.RefID{
		Src: ids.NodeID(randName(rng)),
		Dst: ids.GlobalRef{Node: ids.NodeID(randName(rng)), Obj: ids.ObjID(randUint(rng))},
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvokeRequest; k <= KindLeaseHandoff; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}
