package wire

import (
	"reflect"
	"testing"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

// FuzzDecode hardens the wire decoder against arbitrary input: it must
// never panic, and whatever it accepts must re-encode to the exact same
// bytes (canonical form) and decode again to an equal message.
func FuzzDecode(f *testing.F) {
	// Seed with one encoding of every message kind.
	g1 := ids.GlobalRef{Node: "P2", Obj: 6}
	r1 := ids.RefID{Src: "P1", Dst: g1}
	seeds := []Message{
		&InvokeRequest{CallID: 3, From: "P1", Target: g1, Method: "store", Args: []ids.GlobalRef{g1}, StubIC: 7},
		&InvokeReply{CallID: 3, From: "P2", Target: g1, OK: true, Returns: []ids.GlobalRef{g1}},
		&CreateScion{ExportID: 5, From: "P1", Holder: "P3", Obj: 6},
		&CreateScionAck{ExportID: 5, From: "P2", OK: true},
		&NewSetStubs{Set: refs.StubSetMsg{From: "P1", Seq: 12, Objs: []ids.ObjID{1, 5}}},
		&CDM{Det: core.DetectionID{Origin: "P2", Seq: 9}, Along: r1, Hops: 2,
			Entries: []CDMEntry{{Ref: r1, InSource: true, SrcIC: 2, InTarget: true, TgtIC: 2}}},
		&DeleteScion{Det: core.DetectionID{Origin: "P2", Seq: 9}, Ref: r1},
		&HughesStamp{From: "P1", Stamp: 77, Objs: []ids.ObjID{2}},
		&HughesThreshold{Threshold: 42},
		&BacktraceRequest{TraceID: 1, Origin: "P1", From: "P3", Obj: 4, Visited: []ids.RefID{r1}},
		&BacktraceReply{TraceID: 1, From: "P2", Obj: 4, RootFound: true},
		&Batch{Msgs: []Message{
			&HughesThreshold{Threshold: 42},
			&CDM{Det: core.DetectionID{Origin: "P2", Seq: 9}, Along: r1, Hops: 2,
				Entries: []CDMEntry{{Ref: r1, InSource: true, SrcIC: 2}}},
		}},
		&Batch{},
		testBatch(false),
		testBatch(true),
	}
	for _, m := range seeds {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re := Encode(m)
		if !reflect.DeepEqual(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode not stable: %#v vs %#v", m, m2)
		}
	})
}
