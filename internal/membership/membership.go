// Package membership maintains each node's view of the cluster: a versioned
// member directory (node id, transport address, incarnation, state)
// propagated by gossip piggybacked on existing protocol traffic plus a
// periodic anti-entropy exchange, with phi-accrual-style suspicion driving
// alive → suspect → dead transitions from observed message inter-arrival
// times.
//
// The directory is a CRDT-ish map: records merge by (incarnation,
// state-precedence), so every order of gossip delivery converges to the same
// view. A node refutes its own suspicion by bumping its incarnation; death
// is sticky and only a strictly higher incarnation (a restarted holder)
// revives a member. The deterministic simulator never enables membership —
// its directory is implicitly static — so simulation fingerprints are
// untouched.
package membership

import (
	"sort"

	"dgc/internal/ids"
)

// State is one member's lifecycle position. The numeric order IS the merge
// precedence at equal incarnation: a later state always wins, so `dead`
// dominates everything and a same-incarnation `alive` can never un-suspect
// a member (refutation requires an incarnation bump, as in SWIM).
type State uint8

const (
	// Joining: registered in the directory but not yet heard from.
	Joining State = iota + 1
	// Alive: traffic observed (or gossip says so).
	Alive
	// Suspect: silent past the failure detector's adaptive threshold.
	Suspect
	// Draining: departing voluntarily; hands its references off first.
	Draining
	// Dead: declared failed (or cleanly departed). Scions held on its
	// behalf are reclaimed once its lease runs out.
	Dead
)

var stateNames = map[State]string{
	Joining:  "joining",
	Alive:    "alive",
	Suspect:  "suspect",
	Draining: "draining",
	Dead:     "dead",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return "unknown"
}

// Member is one directory record.
type Member struct {
	Node        ids.NodeID
	Addr        string
	Incarnation uint64
	State       State
}

// Transition reports one record's state change, for journaling and metrics.
type Transition struct {
	Member Member
	Prev   State // zero when the member was just discovered
}

// Config tunes the tracker. All durations are logical ticks of the owning
// node's clock.
type Config struct {
	// GossipEvery is the anti-entropy period: every GossipEvery ticks the
	// full directory is pushed to one peer in rotation, restating state
	// that piggybacked gossip may have lost. Default 4.
	GossipEvery uint64
	// SuspectAfter is the silence floor before suspicion. The effective
	// threshold per peer is max(SuspectAfter, 4× its smoothed message
	// inter-arrival gap) — the phi-accrual idea of scaling suspicion to
	// observed cadence, integer-arithmetic flavored. Default 16.
	SuspectAfter uint64
	// DeadAfter is how long a member stays suspect before it is declared
	// dead. Default 24.
	DeadAfter uint64
	// LeaseTicks is the scion lease length: a dead holder's scions are
	// reclaimed only once it has also been silent this long (see
	// refs.HolderLeases). Default 240.
	LeaseTicks uint64
	// DrainLinger is how many ticks a draining node lingers after its
	// lease handoffs are sent before declaring itself dead (departed),
	// giving the handoffs and final gossip time to flush. Default 8.
	DrainLinger uint64
}

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.GossipEvery == 0 {
		c.GossipEvery = 4
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 16
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 24
	}
	if c.LeaseTicks == 0 {
		c.LeaseTicks = 240
	}
	if c.DrainLinger == 0 {
		c.DrainLinger = 8
	}
	return c
}

// Tracker is one node's membership state: the directory plus the local
// failure detector. Not safe for concurrent use; it lives inside the
// protocol machine and is driven by machine inputs only.
type Tracker struct {
	cfg     Config
	self    ids.NodeID
	version uint64
	members map[ids.NodeID]*Member

	// lastHeard / meanGap feed the failure detector: the tick a message
	// from each peer last arrived and the smoothed inter-arrival gap
	// (EWMA, integer arithmetic: mean ← (3·mean + gap)/4).
	lastHeard map[ids.NodeID]uint64
	meanGap   map[ids.NodeID]uint64

	suspectSince map[ids.NodeID]uint64
	drainStarted uint64
	heardAny     bool

	// addrDirty accumulates records whose transport address is new or
	// changed; the driver drains it and reprograms its endpoint.
	addrDirty []Member

	cursor     int    // anti-entropy rotation position (non-dead peers)
	deadCursor int    // rotation position of the dead-peer probe
	pushes     uint64 // anti-entropy pushes issued, for probe scheduling
}

// NewTracker builds a tracker whose own record starts joining at
// incarnation 0. addr may be empty until the transport address is known
// (SetSelfAddr).
func NewTracker(self ids.NodeID, addr string, cfg Config) *Tracker {
	t := &Tracker{
		cfg:          cfg.WithDefaults(),
		self:         self,
		version:      1,
		members:      make(map[ids.NodeID]*Member),
		lastHeard:    make(map[ids.NodeID]uint64),
		meanGap:      make(map[ids.NodeID]uint64),
		suspectSince: make(map[ids.NodeID]uint64),
	}
	t.members[self] = &Member{Node: self, Addr: addr, State: Joining}
	return t
}

// Config returns the tracker's effective (defaulted) configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Version counts directory mutations; gossip is worth sending to a peer
// whose last push predates it.
func (t *Tracker) Version() uint64 { return t.version }

// Self returns this node's own record.
func (t *Tracker) Self() Member { return *t.members[t.self] }

// SetSelfAddr records this node's advertised transport address.
func (t *Tracker) SetSelfAddr(addr string) {
	me := t.members[t.self]
	if addr == "" || me.Addr == addr {
		return
	}
	me.Addr = addr
	t.version++
}

// SeedPeer registers a peer as joining at incarnation 0 (static wiring,
// `dgcctl up`, a join RPC). The peer counts as heard now so the failure
// detector gives it a full silence window to come up. Seeding an already
// known peer only updates its address.
func (t *Tracker) SeedPeer(node ids.NodeID, addr string, now uint64) *Transition {
	if node == t.self {
		t.SetSelfAddr(addr)
		return nil
	}
	if m, ok := t.members[node]; ok {
		if addr != "" && m.Addr != addr {
			m.Addr = addr
			t.version++
			t.addrDirty = append(t.addrDirty, *m)
		}
		return nil
	}
	m := &Member{Node: node, Addr: addr, State: Joining}
	t.members[node] = m
	t.lastHeard[node] = now
	t.version++
	if addr != "" {
		t.addrDirty = append(t.addrDirty, *m)
	}
	return &Transition{Member: *m}
}

// Observe records one inbound message from a peer: the failure detector's
// arrival stream. A joining or suspect peer flips back to alive; a dead one
// does not (death is refuted only by a higher incarnation via gossip).
func (t *Tracker) Observe(from ids.NodeID, now uint64) *Transition {
	m, ok := t.members[from]
	if !ok {
		return nil
	}
	if last, heard := t.lastHeard[from]; heard && now > last {
		gap := now - last
		if mean := t.meanGap[from]; mean == 0 {
			t.meanGap[from] = gap
		} else {
			t.meanGap[from] = (3*mean + gap) / 4
		}
	}
	t.lastHeard[from] = now
	t.heardAny = true
	if m.State != Joining && m.State != Suspect {
		return nil
	}
	prev := m.State
	m.State = Alive
	delete(t.suspectSince, from)
	t.version++
	return &Transition{Member: *m, Prev: prev}
}

// dominates reports whether record a supersedes record b.
func dominates(a, b Member) bool {
	if a.Incarnation != b.Incarnation {
		return a.Incarnation > b.Incarnation
	}
	return a.State > b.State
}

// Merge folds gossiped records into the directory and returns the state
// changes it caused, in input order. Records about self that claim suspicion
// or death are refuted by bumping our incarnation past theirs.
func (t *Tracker) Merge(records []Member, now uint64) []Transition {
	var trs []Transition
	for _, r := range records {
		if r.State < Joining || r.State > Dead {
			continue
		}
		if r.Node == t.self {
			if tr := t.mergeSelf(r); tr != nil {
				trs = append(trs, *tr)
			}
			continue
		}
		local, known := t.members[r.Node]
		if !known {
			m := &Member{Node: r.Node, Addr: r.Addr, Incarnation: r.Incarnation, State: r.State}
			t.members[r.Node] = m
			t.lastHeard[r.Node] = now
			if m.State == Suspect {
				t.suspectSince[r.Node] = now
			}
			t.version++
			if m.Addr != "" {
				t.addrDirty = append(t.addrDirty, *m)
			}
			trs = append(trs, Transition{Member: *m})
			continue
		}
		if r.Addr != "" && local.Addr == "" {
			local.Addr = r.Addr
			t.version++
			t.addrDirty = append(t.addrDirty, *local)
		}
		if !dominates(r, *local) {
			continue
		}
		prev := local.State
		local.Incarnation = r.Incarnation
		local.State = r.State
		if r.Addr != "" && local.Addr != r.Addr {
			local.Addr = r.Addr
			t.addrDirty = append(t.addrDirty, *local)
		}
		switch r.State {
		case Suspect:
			if _, ok := t.suspectSince[r.Node]; !ok {
				t.suspectSince[r.Node] = now
			}
		case Alive, Joining, Draining:
			// A higher incarnation revived (or re-announced) the member:
			// restart its silence window so the detector does not
			// instantly re-suspect it.
			delete(t.suspectSince, r.Node)
			t.lastHeard[r.Node] = now
		}
		t.version++
		if prev != local.State {
			trs = append(trs, Transition{Member: *local, Prev: prev})
		}
	}
	return trs
}

// mergeSelf handles a gossiped record about this node itself.
func (t *Tracker) mergeSelf(r Member) *Transition {
	me := t.members[t.self]
	if me.State == Draining || me.State == Dead {
		// Departure is self-managed; nothing others say changes it.
		return nil
	}
	if r.Incarnation < me.Incarnation {
		return nil
	}
	if r.State < Suspect {
		if r.Incarnation > me.Incarnation {
			// Someone remembers a later life of us (we restarted without
			// our old incarnation). Jump past it so our records dominate.
			me.Incarnation = r.Incarnation + 1
			t.version++
		}
		return nil
	}
	// Refute suspicion/death: a higher incarnation is the only thing that
	// overrides those states in every peer's merge.
	prev := me.State
	me.Incarnation = r.Incarnation + 1
	me.State = Alive
	t.version++
	if prev == Alive {
		return nil
	}
	return &Transition{Member: *me, Prev: prev}
}

// Tick runs the failure detector and self-state progression for one clock
// advance, returning the transitions in canonical member order.
func (t *Tracker) Tick(now uint64) []Transition {
	var trs []Transition
	me := t.members[t.self]
	if me.State == Joining && (len(t.members) == 1 || t.heardAny) {
		// First gossip round completed (or there is nobody to wait for).
		me.State = Alive
		t.version++
		trs = append(trs, Transition{Member: *me, Prev: Joining})
	}
	if me.State == Draining && t.drainStarted > 0 && now-t.drainStarted >= t.cfg.DrainLinger {
		me.State = Dead
		me.Incarnation++
		t.drainStarted = 0
		t.version++
		trs = append(trs, Transition{Member: *me, Prev: Draining})
	}
	for _, id := range t.canonical() {
		if id == t.self {
			continue
		}
		m := t.members[id]
		elapsed := now - t.lastHeard[id]
		threshold := t.cfg.SuspectAfter
		if adaptive := 4 * t.meanGap[id]; adaptive > threshold {
			threshold = adaptive
		}
		switch m.State {
		case Alive, Joining:
			if elapsed > threshold {
				prev := m.State
				m.State = Suspect
				t.suspectSince[id] = now
				t.version++
				trs = append(trs, Transition{Member: *m, Prev: prev})
			}
		case Suspect:
			if now-t.suspectSince[id] > t.cfg.DeadAfter {
				m.State = Dead
				delete(t.suspectSince, id)
				t.version++
				trs = append(trs, Transition{Member: *m, Prev: Suspect})
			}
		case Draining:
			// A drainer that crashes mid-drain still dies, just on a
			// longer horizon (it normally declares departure itself).
			if elapsed > threshold+t.cfg.DeadAfter {
				m.State = Dead
				t.version++
				trs = append(trs, Transition{Member: *m, Prev: Draining})
			}
		}
	}
	return trs
}

// BeginDrain moves this node to draining with an incarnation bump so the
// record dominates any concurrent suspicion. No-op when already departing.
func (t *Tracker) BeginDrain(now uint64) *Transition {
	me := t.members[t.self]
	if me.State == Draining || me.State == Dead {
		return nil
	}
	prev := me.State
	me.State = Draining
	me.Incarnation++
	t.drainStarted = now
	t.version++
	return &Transition{Member: *me, Prev: prev}
}

// State returns a member's current state (zero when unknown).
func (t *Tracker) State(node ids.NodeID) State {
	if m, ok := t.members[node]; ok {
		return m.State
	}
	return 0
}

// IsDead reports whether the directory has declared the node dead. Unknown
// nodes are not dead: a static-mesh peer outside the directory must keep
// working exactly as before membership existed.
func (t *Tracker) IsDead(node ids.NodeID) bool { return t.State(node) == Dead }

// Draining reports whether this node itself is departing.
func (t *Tracker) Draining() bool {
	s := t.members[t.self].State
	return s == Draining || s == Dead
}

// Snapshot returns every record in canonical node order.
func (t *Tracker) Snapshot() []Member {
	out := make([]Member, 0, len(t.members))
	for _, id := range t.canonical() {
		out = append(out, *t.members[id])
	}
	return out
}

// HasNewsFor reports whether the directory holds records strictly newer
// than the given ones (a member they lack, or a dominating record): the
// condition for answering a gossip push with our own.
func (t *Tracker) HasNewsFor(records []Member) bool {
	byNode := make(map[ids.NodeID]Member, len(records))
	for _, r := range records {
		byNode[r.Node] = r
	}
	for id, m := range t.members {
		r, ok := byNode[id]
		if !ok || dominates(*m, r) {
			return true
		}
	}
	return false
}

// NextGossipPeer returns the next anti-entropy target. The rotation runs
// through the non-dead peers in canonical order, but every fourth push (and
// whenever no live peer remains) targets a dead-declared peer instead: the
// refutation channel. Without it two sides of a healed partition that
// declared each other dead would each skip the other forever — dead is
// refutable only by the higher incarnation the probed node gossips back, so
// somebody has to keep talking to the dead. ok is false when there is no
// peer at all.
func (t *Tracker) NextGossipPeer() (ids.NodeID, bool) {
	t.pushes++
	if t.pushes%4 == 0 {
		if id, ok := t.nextPeer(&t.deadCursor, Dead); ok {
			return id, true
		}
	}
	if id, ok := t.nextPeer(&t.cursor, 0); ok {
		return id, true
	}
	return t.nextPeer(&t.deadCursor, Dead)
}

// nextPeer rotates cursor through the canonical order, returning the next
// peer whose state matches want (want == 0 means any non-dead state).
func (t *Tracker) nextPeer(cursor *int, want State) (ids.NodeID, bool) {
	order := t.canonical()
	for range order {
		id := order[*cursor%len(order)]
		*cursor++
		if id == t.self {
			continue
		}
		dead := t.members[id].State == Dead
		if (want == Dead) != dead {
			continue
		}
		return id, true
	}
	return "", false
}

// TakeAddrUpdates drains the records whose transport address was learned or
// changed since the last call; the driver applies them to its endpoint.
func (t *Tracker) TakeAddrUpdates() []Member {
	out := t.addrDirty
	t.addrDirty = nil
	return out
}

// Counts tallies the directory by state, for the member gauges.
func (t *Tracker) Counts() (alive, suspect, dead int) {
	for _, m := range t.members {
		switch m.State {
		case Alive, Joining, Draining:
			alive++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return
}

func (t *Tracker) canonical() []ids.NodeID {
	out := make([]ids.NodeID, 0, len(t.members))
	for id := range t.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
