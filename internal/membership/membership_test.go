package membership

import (
	"testing"

	"dgc/internal/ids"
)

func newT(self ids.NodeID, peers ...ids.NodeID) *Tracker {
	t := NewTracker(self, "addr-"+string(self), Config{})
	for _, p := range peers {
		t.SeedPeer(p, "addr-"+string(p), 0)
	}
	return t
}

func TestSelfAliveImmediatelyWhenAlone(t *testing.T) {
	tr := newT("P1")
	trs := tr.Tick(1)
	if len(trs) != 1 || trs[0].Member.Node != "P1" || trs[0].Member.State != Alive {
		t.Fatalf("Tick = %+v", trs)
	}
}

func TestSelfJoiningUntilFirstGossip(t *testing.T) {
	tr := newT("P1", "P2")
	if trs := tr.Tick(1); len(trs) != 0 {
		t.Fatalf("went alive before hearing anyone: %+v", trs)
	}
	tr.Observe("P2", 2)
	trs := tr.Tick(2)
	var selfAlive bool
	for _, x := range trs {
		if x.Member.Node == "P1" && x.Member.State == Alive {
			selfAlive = true
		}
	}
	if !selfAlive {
		t.Fatalf("self not alive after first exchange: %+v", trs)
	}
}

func TestObserveFlipsJoiningPeerAlive(t *testing.T) {
	tr := newT("P1", "P2")
	x := tr.Observe("P2", 3)
	if x == nil || x.Member.State != Alive || x.Prev != Joining {
		t.Fatalf("Observe = %+v", x)
	}
	if tr.State("P2") != Alive {
		t.Fatalf("state = %v", tr.State("P2"))
	}
}

func TestSilenceDrivesSuspectThenDead(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1)
	cfg := tr.Config()
	// Quiet until past the suspicion floor.
	deadline := 1 + cfg.SuspectAfter
	for now := uint64(2); now <= deadline; now++ {
		for _, x := range tr.Tick(now) {
			if x.Member.Node == "P2" {
				t.Fatalf("tick %d: early transition %+v", now, x)
			}
		}
	}
	trs := tr.Tick(deadline + 1)
	if got := tr.State("P2"); got != Suspect {
		t.Fatalf("state after silence = %v (%+v)", got, trs)
	}
	for now := deadline + 2; now <= deadline+1+cfg.DeadAfter; now++ {
		tr.Tick(now)
	}
	if got := tr.State("P2"); got != Suspect {
		t.Fatalf("dead before DeadAfter elapsed: %v", got)
	}
	tr.Tick(deadline + 2 + cfg.DeadAfter)
	if got := tr.State("P2"); got != Dead {
		t.Fatalf("state = %v, want dead", got)
	}
}

func TestAdaptiveThresholdScalesWithCadence(t *testing.T) {
	// A peer heard every 20 ticks must not be suspected at the 16-tick
	// floor: the threshold adapts to 4× the smoothed gap.
	tr := newT("P1", "P2")
	now := uint64(0)
	for i := 0; i < 5; i++ {
		now += 20
		tr.Observe("P2", now)
	}
	for n := now + 1; n <= now+40; n++ {
		tr.Tick(n)
	}
	if got := tr.State("P2"); got != Alive {
		t.Fatalf("slow-cadence peer suspected: %v", got)
	}
}

func TestObserveRecoversSuspect(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1)
	for now := uint64(2); now < 40; now++ {
		tr.Tick(now)
	}
	if tr.State("P2") != Suspect {
		t.Fatalf("setup: state = %v", tr.State("P2"))
	}
	x := tr.Observe("P2", 40)
	if x == nil || x.Member.State != Alive || x.Prev != Suspect {
		t.Fatalf("Observe = %+v", x)
	}
}

func TestDeadIsStickyAgainstTraffic(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1)
	for now := uint64(2); now < 100; now++ {
		tr.Tick(now)
	}
	if tr.State("P2") != Dead {
		t.Fatalf("setup: state = %v", tr.State("P2"))
	}
	if x := tr.Observe("P2", 100); x != nil {
		t.Fatalf("traffic revived a dead member: %+v", x)
	}
	if tr.State("P2") != Dead {
		t.Fatalf("state = %v", tr.State("P2"))
	}
}

func TestHigherIncarnationRevivesDead(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1)
	for now := uint64(2); now < 100; now++ {
		tr.Tick(now)
	}
	trs := tr.Merge([]Member{{Node: "P2", Incarnation: 1, State: Alive}}, 100)
	if len(trs) != 1 || trs[0].Member.State != Alive || trs[0].Prev != Dead {
		t.Fatalf("Merge = %+v", trs)
	}
	// The silence window restarted: no instant re-suspect.
	if got := tr.Tick(101); len(got) != 0 {
		t.Fatalf("re-suspected immediately: %+v", got)
	}
}

func TestMergePrecedenceAtEqualIncarnation(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1) // alive @ inc 0
	trs := tr.Merge([]Member{{Node: "P2", Incarnation: 0, State: Suspect}}, 2)
	if len(trs) != 1 || trs[0].Member.State != Suspect {
		t.Fatalf("suspect did not dominate alive at equal incarnation: %+v", trs)
	}
	// Alive at the same incarnation must NOT refute suspicion.
	if trs := tr.Merge([]Member{{Node: "P2", Incarnation: 0, State: Alive}}, 3); len(trs) != 0 {
		t.Fatalf("alive@same-inc overrode suspect: %+v", trs)
	}
	// Alive at a higher incarnation does.
	trs = tr.Merge([]Member{{Node: "P2", Incarnation: 1, State: Alive}}, 4)
	if len(trs) != 1 || trs[0].Member.State != Alive {
		t.Fatalf("alive@higher-inc did not refute: %+v", trs)
	}
}

func TestSelfRefutesSuspicion(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1)
	tr.Tick(1)
	v := tr.Version()
	trs := tr.Merge([]Member{{Node: "P1", Incarnation: 0, State: Suspect}}, 2)
	me := tr.Self()
	if me.State != Alive || me.Incarnation != 1 {
		t.Fatalf("self = %+v (transitions %+v)", me, trs)
	}
	if tr.Version() == v {
		t.Fatal("refutation did not bump the directory version")
	}
}

func TestMergeDiscoversNewMember(t *testing.T) {
	tr := newT("P1", "P2")
	trs := tr.Merge([]Member{{Node: "P3", Addr: "h3:1", Incarnation: 0, State: Alive}}, 5)
	if len(trs) != 1 || trs[0].Member.Node != "P3" || trs[0].Prev != 0 {
		t.Fatalf("Merge = %+v", trs)
	}
	ups := tr.TakeAddrUpdates()
	if len(ups) != 2 || ups[1].Node != "P3" || ups[1].Addr != "h3:1" {
		t.Fatalf("addr updates = %+v", ups)
	}
	if len(tr.TakeAddrUpdates()) != 0 {
		t.Fatal("addr updates not drained")
	}
}

func TestDrainLifecycle(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1)
	tr.Tick(1)
	x := tr.BeginDrain(10)
	if x == nil || x.Member.State != Draining || x.Member.Incarnation != 1 {
		t.Fatalf("BeginDrain = %+v", x)
	}
	if !tr.Draining() {
		t.Fatal("Draining() = false")
	}
	linger := tr.Config().DrainLinger
	selfTrs := func(trs []Transition) []Transition {
		var out []Transition
		for _, x := range trs {
			if x.Member.Node == "P1" {
				out = append(out, x)
			}
		}
		return out
	}
	if trs := selfTrs(tr.Tick(10 + linger - 1)); len(trs) != 0 {
		t.Fatalf("departed before linger: %+v", trs)
	}
	trs := selfTrs(tr.Tick(10 + linger))
	if len(trs) != 1 || trs[0].Member.State != Dead || trs[0].Prev != Draining {
		t.Fatalf("Tick = %+v", trs)
	}
	// Departure is self-managed: gossip cannot resurrect us.
	if trs := tr.Merge([]Member{{Node: "P1", Incarnation: 99, State: Alive}}, 30); len(trs) != 0 {
		t.Fatalf("gossip resurrected a departed self: %+v", trs)
	}
}

func TestHasNewsFor(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Observe("P2", 1) // P2 alive@0, P1 joining@0
	snap := tr.Snapshot()
	if tr.HasNewsFor(snap) {
		t.Fatal("news against own snapshot")
	}
	stale := []Member{{Node: "P1", State: Joining}, {Node: "P2", State: Joining}}
	if !tr.HasNewsFor(stale) {
		t.Fatal("no news against stale records")
	}
	if !tr.HasNewsFor([]Member{{Node: "P1", State: Joining}}) {
		t.Fatal("no news when peer lacks a member")
	}
}

func TestNextGossipPeerProbesDeadEveryFourth(t *testing.T) {
	tr := newT("P1", "P2", "P3")
	tr.Observe("P2", 1)
	// Kill P3 via merge.
	tr.Merge([]Member{{Node: "P3", Incarnation: 0, State: Dead}}, 1)
	seen := map[ids.NodeID]int{}
	for i := 0; i < 8; i++ {
		p, ok := tr.NextGossipPeer()
		if !ok {
			t.Fatal("no gossip peer")
		}
		seen[p]++
	}
	// Live rotation sticks to P2, but every fourth push probes the dead P3 so
	// a wrongly-declared peer always has a refutation channel.
	if seen["P2"] != 6 || seen["P3"] != 2 {
		t.Fatalf("rotation = %v, want 6×P2 and 2×P3", seen)
	}
}

func TestNextGossipPeerFallsBackToDeadWhenNoLivePeer(t *testing.T) {
	tr := newT("P1", "P2")
	tr.Merge([]Member{{Node: "P2", Incarnation: 0, State: Dead}}, 1)
	p, ok := tr.NextGossipPeer()
	if !ok || p != "P2" {
		t.Fatalf("NextGossipPeer = %v %v, want the dead P2 as fallback", p, ok)
	}
}

func TestMutualDeadHealsThroughDeadProbe(t *testing.T) {
	p1 := newT("P1", "P2")
	p2 := newT("P2", "P1")
	p1.Observe("P2", 1)
	p2.Observe("P1", 1)
	// A long bidirectional partition: each side declares the other dead.
	p1.Merge([]Member{{Node: "P2", Incarnation: 0, State: Dead}}, 2)
	p2.Merge([]Member{{Node: "P1", Incarnation: 0, State: Dead}}, 2)
	if !p1.IsDead("P2") || !p2.IsDead("P1") {
		t.Fatal("setup: mutual dead declaration did not take")
	}
	// Partition heals: run push/ack gossip rounds. The dead-peer probe is the
	// only traffic either side will aim at the other, and it must be enough —
	// the pushed record claiming the receiver dead triggers its incarnation
	// bump, and the ack carries the refutation back.
	trackers := map[ids.NodeID]*Tracker{"P1": p1, "P2": p2}
	healed := func() bool { return p1.State("P2") == Alive && p2.State("P1") == Alive }
	now := uint64(3)
	for round := 0; round < 8 && !healed(); round++ {
		for id, tr := range trackers {
			peer, ok := tr.NextGossipPeer()
			if !ok {
				t.Fatal("no gossip peer")
			}
			dst := trackers[peer]
			push := tr.Snapshot()
			dst.Merge(push, now)
			dst.Observe(id, now)
			if dst.HasNewsFor(push) {
				tr.Merge(dst.Snapshot(), now)
				tr.Observe(peer, now)
			}
		}
		now++
	}
	if !healed() {
		t.Fatalf("mutual dead never healed: P1 sees P2 %v, P2 sees P1 %v",
			p1.State("P2"), p2.State("P1"))
	}
}

func TestSnapshotCanonicalOrderAndCounts(t *testing.T) {
	tr := newT("P3", "P1", "P2")
	tr.Observe("P1", 1)
	snap := tr.Snapshot()
	if len(snap) != 3 || snap[0].Node != "P1" || snap[1].Node != "P2" || snap[2].Node != "P3" {
		t.Fatalf("Snapshot = %+v", snap)
	}
	alive, suspect, dead := tr.Counts()
	if alive != 3 || suspect != 0 || dead != 0 {
		t.Fatalf("Counts = %d %d %d", alive, suspect, dead)
	}
}
