// Package lgc implements the per-process local garbage collector (LGC): a
// tracing mark-and-sweep collector over a node's heap.
//
// The cooperation contract with the acyclic distributed collector (paper §4)
// is exactly two-sided:
//
//  1. the LGC treats scion targets as additional roots, so objects that are
//     only remotely reachable are preserved;
//  2. after each collection the LGC regenerates the stub table from the
//     remote references held by surviving objects, which feeds the
//     NewSetStubs protocol.
//
// Note the deliberate asymmetry that makes distributed cycles leak (and the
// DCDA necessary): scions act as roots, so a cycle threading several
// processes keeps every local fragment alive even when no process can reach
// it from a real root.
package lgc

import (
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

// Result reports one collection.
type Result struct {
	// Swept is the number of objects reclaimed.
	Swept int
	// StubsCreated / StubsDeleted count stub-table changes from the
	// regeneration step.
	StubsCreated int
	StubsDeleted int
	// Live is the number of surviving objects.
	Live int
	// LocallyReachable is the number of survivors reachable from real local
	// roots (as opposed to kept alive only by scions).
	LocallyReachable int
}

// Collector binds an LGC to one node's heap and reference tables.
type Collector struct {
	heap  *heap.Heap
	table *refs.Table
	// Rounds counts completed collections.
	Rounds int
}

// New returns a collector over the given heap and tables.
func New(h *heap.Heap, t *refs.Table) *Collector {
	return &Collector{heap: h, table: t}
}

// Collect runs one full mark-and-sweep cycle and regenerates the stub table.
//
// pinned lists outgoing references that must keep their stubs even if no
// live object currently holds them: references "on the stack" of an
// in-flight remote invocation (exported arguments or returns whose scions
// are still being created). They play the role of thread-stack roots for
// the distributed collector.
func (c *Collector) Collect(pinned ...ids.GlobalRef) Result {
	var res Result

	// Mark. Two traces: from real local roots (for reachability statistics
	// and, indirectly, Local.Reach summarization), and from roots + scions
	// (the actual liveness). Both are epoch Marks over the heap's reusable
	// scratch; the roots-only count must be captured before the second
	// traversal recycles the epoch.
	roots := c.heap.Roots()
	rootsMark := c.heap.MarkReachable(roots...)
	res.LocallyReachable = rootsMark.Len()
	seeds := append(roots, c.table.ScionTargets()...)
	liveMark := c.heap.MarkReachable(seeds...)

	// Sweep. Deleting objects does not disturb the mark epoch.
	for _, id := range c.heap.IDs() {
		if !liveMark.Contains(id) {
			c.heap.Delete(id)
			res.Swept++
		}
	}

	// Regenerate the stub table: stubs are exactly the remote references
	// held by live objects ("the LGC generates a new set of stubs each time
	// it runs", §1). Invocation counters of surviving stubs are preserved.
	wanted := make(map[ids.GlobalRef]struct{})
	for _, r := range c.heap.RemoteRefsFromMark(liveMark) {
		wanted[r] = struct{}{}
	}
	for _, r := range pinned {
		wanted[r] = struct{}{}
	}
	for _, s := range c.table.Stubs() {
		if _, ok := wanted[s.Target]; !ok {
			c.table.DeleteStub(s.Target)
			res.StubsDeleted++
		}
	}
	for r := range wanted {
		if _, created := c.table.EnsureStub(r); created {
			res.StubsCreated++
		}
	}

	res.Live = c.heap.Len()
	c.Rounds++
	return res
}

// LocallyReachable returns the set of objects reachable from real local
// roots only (no scions). Exposed for the summarizer, which needs it to set
// Local.Reach flags on stubs.
func (c *Collector) LocallyReachable() map[ids.ObjID]struct{} {
	return c.heap.ReachableFromRoots()
}
