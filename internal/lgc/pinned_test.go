package lgc

import (
	"testing"

	"dgc/internal/ids"
)

func TestPinnedRefsKeepStubs(t *testing.T) {
	h, tb, c := newNode(t, "P1")
	// No object holds the reference; only the pin protects the stub.
	target := ids.GlobalRef{Node: "P2", Obj: 6}
	tb.EnsureStub(target)
	if _, err := tb.BumpStubIC(target); err != nil {
		t.Fatal(err)
	}
	_ = h

	res := c.Collect(target)
	if res.StubsDeleted != 0 {
		t.Fatalf("pinned stub deleted: %+v", res)
	}
	s := tb.Stub(target)
	if s == nil || s.IC != 1 {
		t.Fatalf("pinned stub lost or reset: %+v", s)
	}

	// Without the pin the stub is reclaimed.
	res = c.Collect()
	if res.StubsDeleted != 1 || tb.Stub(target) != nil {
		t.Fatalf("unpinned stub survived: %+v", res)
	}
}

func TestPinnedRefCreatesStubIfMissing(t *testing.T) {
	_, tb, c := newNode(t, "P1")
	target := ids.GlobalRef{Node: "P2", Obj: 6}
	res := c.Collect(target)
	if res.StubsCreated != 1 || tb.Stub(target) == nil {
		t.Fatalf("pinned ref did not materialize a stub: %+v", res)
	}
}
