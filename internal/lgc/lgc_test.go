package lgc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

func newNode(t *testing.T, name ids.NodeID) (*heap.Heap, *refs.Table, *Collector) {
	t.Helper()
	h := heap.New(name)
	tb := refs.NewTable(name)
	return h, tb, New(h, tb)
}

func TestCollectReclaimsUnreachable(t *testing.T) {
	h, _, c := newNode(t, "P1")
	a := h.Alloc(nil)
	b := h.Alloc(nil)
	garbage := h.Alloc(nil)
	_ = garbage
	if err := h.AddLocalRef(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	res := c.Collect()
	if res.Swept != 1 || res.Live != 2 {
		t.Fatalf("result = %+v", res)
	}
	if !h.Contains(a.ID) || !h.Contains(b.ID) || h.Contains(garbage.ID) {
		t.Fatal("wrong objects survived")
	}
	if c.Rounds != 1 {
		t.Fatalf("Rounds = %d", c.Rounds)
	}
}

func TestScionsActAsRoots(t *testing.T) {
	h, tb, c := newNode(t, "P2")
	// Object kept alive only by an incoming remote reference.
	remote := h.Alloc(nil)
	downstream := h.Alloc(nil)
	if err := h.AddLocalRef(remote.ID, downstream.ID); err != nil {
		t.Fatal(err)
	}
	tb.EnsureScion("P1", remote.ID)
	res := c.Collect()
	if res.Swept != 0 {
		t.Fatalf("swept %d, want 0", res.Swept)
	}
	if res.LocallyReachable != 0 {
		t.Fatalf("LocallyReachable = %d, want 0", res.LocallyReachable)
	}
	// Remove the scion: both objects must now be reclaimed.
	tb.DeleteScion("P1", remote.ID)
	res = c.Collect()
	if res.Swept != 2 || h.Len() != 0 {
		t.Fatalf("result = %+v, heap len %d", res, h.Len())
	}
}

func TestCollectRegeneratesStubs(t *testing.T) {
	h, tb, c := newNode(t, "P1")
	live := h.Alloc(nil)
	dead := h.Alloc(nil)
	if err := h.AddRoot(live.ID); err != nil {
		t.Fatal(err)
	}
	liveTarget := ids.GlobalRef{Node: "P2", Obj: 6}
	deadTarget := ids.GlobalRef{Node: "P3", Obj: 9}
	if err := h.AddRemoteRef(live.ID, liveTarget); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRemoteRef(dead.ID, deadTarget); err != nil {
		t.Fatal(err)
	}
	// Pre-existing stub for the dead holder's ref and its IC-carrying twin.
	tb.EnsureStub(liveTarget)
	if _, err := tb.BumpStubIC(liveTarget); err != nil {
		t.Fatal(err)
	}
	tb.EnsureStub(deadTarget)

	res := c.Collect()
	if res.StubsDeleted != 1 || res.StubsCreated != 0 {
		t.Fatalf("result = %+v", res)
	}
	if tb.Stub(deadTarget) != nil {
		t.Fatal("stub for dead holder survived")
	}
	s := tb.Stub(liveTarget)
	if s == nil {
		t.Fatal("live stub deleted")
	}
	if s.IC != 1 {
		t.Fatalf("surviving stub lost its IC: %d", s.IC)
	}
}

func TestCollectCreatesMissingStubs(t *testing.T) {
	h, tb, c := newNode(t, "P1")
	a := h.Alloc(nil)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	target := ids.GlobalRef{Node: "P2", Obj: 1}
	if err := h.AddRemoteRef(a.ID, target); err != nil {
		t.Fatal(err)
	}
	res := c.Collect()
	if res.StubsCreated != 1 {
		t.Fatalf("StubsCreated = %d", res.StubsCreated)
	}
	if tb.Stub(target) == nil {
		t.Fatal("stub not created")
	}
}

func TestLocalCycleIsReclaimed(t *testing.T) {
	h, _, c := newNode(t, "P1")
	a, b := h.Alloc(nil), h.Alloc(nil)
	if err := h.AddLocalRef(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.AddLocalRef(b.ID, a.ID); err != nil {
		t.Fatal(err)
	}
	res := c.Collect()
	if res.Swept != 2 || h.Len() != 0 {
		t.Fatalf("local cycle not reclaimed: %+v", res)
	}
}

func TestDistributedCycleFragmentLeaksWithoutDCDA(t *testing.T) {
	// The motivating leak: an object kept alive only by a scion, holding a
	// remote reference back out. The LGC alone must never reclaim it.
	h, tb, c := newNode(t, "P2")
	f := h.Alloc(nil)
	tb.EnsureScion("P1", f.ID)
	if err := h.AddRemoteRef(f.ID, ids.GlobalRef{Node: "P1", Obj: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res := c.Collect()
		if res.Swept != 0 {
			t.Fatalf("round %d swept %d, want 0", i, res.Swept)
		}
	}
	if tb.Stub(ids.GlobalRef{Node: "P1", Obj: 4}) == nil {
		t.Fatal("outgoing stub of scion-rooted object missing")
	}
}

// Safety property: Collect never reclaims an object reachable from roots or
// scions, and always reclaims everything else, on random heaps.
func TestCollectSafetyAndCompletenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New("P1")
		tb := refs.NewTable("P1")
		c := New(h, tb)
		n := 3 + rng.Intn(40)
		objs := make([]ids.ObjID, n)
		for i := range objs {
			objs[i] = h.Alloc(nil).ID
		}
		for i := 0; i < 2*n; i++ {
			if err := h.AddLocalRef(objs[rng.Intn(n)], objs[rng.Intn(n)]); err != nil {
				return false
			}
		}
		if rng.Intn(4) > 0 {
			_ = h.AddRoot(objs[rng.Intn(n)])
		}
		if rng.Intn(4) > 0 {
			tb.EnsureScion("P9", objs[rng.Intn(n)])
		}
		seeds := h.Roots()
		seeds = append(seeds, tb.ScionTargets()...)
		expected := h.ReachableFrom(seeds...)

		c.Collect()

		if h.Len() != len(expected) {
			return false
		}
		for id := range expected {
			if !h.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLocallyReachableHelper(t *testing.T) {
	h, tb, c := newNode(t, "P1")
	a := h.Alloc(nil)
	b := h.Alloc(nil)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	tb.EnsureScion("P2", b.ID)
	lr := c.LocallyReachable()
	if _, ok := lr[a.ID]; !ok {
		t.Error("root object not locally reachable")
	}
	if _, ok := lr[b.ID]; ok {
		t.Error("scion-only object must not be locally reachable")
	}
}
