package node

import (
	"encoding/binary"
	"fmt"

	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/refs"
	"dgc/internal/snapshot"
)

// Persistence: a machine's collector state can be saved and restored across
// process restarts — the setting that motivates the paper ("when
// considering persistence, distributed garbage simply accumulates over
// time"). The persisted state is
//
//   - the heap (serialized with the binary snapshot codec),
//   - the stub and scion tables WITH their invocation counters (losing a
//     counter would fabricate or mask mutator activity for in-flight
//     detections; keeping them means detections spanning the restart abort
//     or proceed exactly as the paper's rules dictate),
//   - the reference-listing sequence numbers (a process restarting from
//     sequence zero would have its authoritative stub sets discarded as
//     stale by its peers),
//   - the logical clock and snapshot version.
//
// Volatile state is deliberately dropped: pending calls and exports (their
// pins die with the process; the scions they created self-heal through
// NewSetStubs), summaries (rebuilt at the next summarization; CDMs
// arriving before then are dropped by safety rule 1) and the CDM
// accumulators (droppable cache by construction).

const persistMagic = "DGCN\x01"

// Save serializes the machine's durable collector state.
func (m *Machine) Save() ([]byte, error) {
	heapBlob, err := (snapshot.BinaryCodec{}).Encode(m.heap)
	if err != nil {
		return nil, m.errf("Save: heap: %v", err)
	}

	buf := make([]byte, 0, len(heapBlob)+1024)
	buf = append(buf, persistMagic...)
	buf = putPStr(buf, string(m.id))
	buf = binary.AppendUvarint(buf, m.clock)
	buf = binary.AppendUvarint(buf, m.snapVersion)
	buf = binary.AppendUvarint(buf, m.detectCursor)

	buf = binary.AppendUvarint(buf, uint64(len(heapBlob)))
	buf = append(buf, heapBlob...)

	stubs := m.table.Stubs()
	buf = binary.AppendUvarint(buf, uint64(len(stubs)))
	for _, s := range stubs {
		buf = putPStr(buf, string(s.Target.Node))
		buf = binary.AppendUvarint(buf, uint64(s.Target.Obj))
		buf = binary.AppendUvarint(buf, s.IC)
	}
	scions := m.table.Scions()
	buf = binary.AppendUvarint(buf, uint64(len(scions)))
	for _, s := range scions {
		buf = putPStr(buf, string(s.Src))
		buf = binary.AppendUvarint(buf, uint64(s.Obj))
		buf = binary.AppendUvarint(buf, s.IC)
	}

	out, in := m.acyclic.SeqState()
	for _, entries := range [][]refs.SeqEntry{out, in} {
		buf = binary.AppendUvarint(buf, uint64(len(entries)))
		for _, e := range entries {
			buf = putPStr(buf, string(e.Node))
			buf = binary.AppendUvarint(buf, e.Seq)
		}
	}
	return buf, nil
}

// RestoreMachine reconstructs a protocol machine from state produced by
// Save. The machine resumes as if its process had merely been slow: peers'
// reference-listing state remains valid, in-flight detections involving it
// abort safely and restart later. Wrap the result in a driver (Restore for
// a Node shell, RestoreLiveRuntime for the wall-clock runtime).
func RestoreMachine(cfg Config, data []byte) (*Machine, error) {
	r := &pReader{data: data}
	if string(r.bytes(len(persistMagic))) != persistMagic {
		return nil, fmt.Errorf("node: Restore: bad magic")
	}
	id := ids.NodeID(r.str())
	clock := r.uvarint()
	snapVersion := r.uvarint()
	detectCursor := r.uvarint()

	heapLen := r.uvarint()
	if heapLen > uint64(len(data)) {
		return nil, fmt.Errorf("node: Restore: implausible heap size %d", heapLen)
	}
	heapBlob := r.bytes(int(heapLen))
	if r.err != nil {
		return nil, fmt.Errorf("node: Restore: %w", r.err)
	}
	h, err := (snapshot.BinaryCodec{}).Decode(heapBlob)
	if err != nil {
		return nil, fmt.Errorf("node: Restore: heap: %w", err)
	}
	if h.Node() != id {
		return nil, fmt.Errorf("node: Restore: heap belongs to %s, state to %s", h.Node(), id)
	}

	m := NewMachine(id, cfg)
	m.clock = clock
	m.snapVersion = snapVersion
	m.detectCursor = detectCursor
	m.heap = h
	m.lgc = lgc.New(m.heap, m.table)

	nStubs := r.count()
	for i := 0; i < nStubs && r.err == nil; i++ {
		tgt := ids.GlobalRef{Node: ids.NodeID(r.str()), Obj: ids.ObjID(r.uvarint())}
		m.table.RestoreStub(tgt, r.uvarint())
	}
	nScions := r.count()
	for i := 0; i < nScions && r.err == nil; i++ {
		src := ids.NodeID(r.str())
		obj := ids.ObjID(r.uvarint())
		m.table.RestoreScion(src, obj, r.uvarint())
	}

	var seqs [2][]refs.SeqEntry
	for s := 0; s < 2; s++ {
		cnt := r.count()
		for i := 0; i < cnt && r.err == nil; i++ {
			seqs[s] = append(seqs[s], refs.SeqEntry{Node: ids.NodeID(r.str()), Seq: r.uvarint()})
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("node: Restore: %w", r.err)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("node: Restore: %d trailing bytes", len(data)-r.pos)
	}
	m.acyclic.RestoreSeqState(seqs[0], seqs[1])
	return m, nil
}

// ---- tiny binary helpers (persist format only) ----

func putPStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type pReader struct {
	data []byte
	pos  int
	err  error
}

func (r *pReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Uvarint(r.data[r.pos:])
	if w <= 0 {
		r.err = fmt.Errorf("truncated varint at %d", r.pos)
		return 0
	}
	r.pos += w
	return v
}

func (r *pReader) count() int {
	v := r.uvarint()
	if v > uint64(len(r.data)) {
		r.err = fmt.Errorf("implausible count %d", v)
		return 0
	}
	return int(v)
}

func (r *pReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = fmt.Errorf("truncated bytes at %d (+%d)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *pReader) str() string {
	n := r.count()
	return string(r.bytes(n))
}
