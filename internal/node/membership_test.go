package node

import (
	"testing"

	"dgc/internal/ids"
	"dgc/internal/membership"
	"dgc/internal/wire"
)

// Machine-level membership tests: the gossip directory, failure detector and
// holder leases driven directly through machine inputs and effects, with no
// transport at all (the same style as machine_test.go).

func membCfg() Config {
	return Config{Membership: &membership.Config{
		GossipEvery:  4,
		SuspectAfter: 4,
		DeadAfter:    4,
		LeaseTicks:   10,
		DrainLinger:  2,
	}}
}

// exchange drives one round: both machines advance their clocks, then every
// accumulated envelope is delivered to its destination machine.
func exchange(ms map[ids.NodeID]*Machine) {
	for _, m := range ms {
		m.AdvanceClock()
	}
	for id, m := range ms {
		for _, env := range m.TakeEffects() {
			if dst, ok := ms[env.To]; ok && env.To != id {
				dst.HandleMessage(id, env.Msg)
			}
		}
	}
}

func TestMachineMembershipDeadPeerReclaimsScions(t *testing.T) {
	m := NewMachine("A", membCfg())
	var obj ids.ObjID
	m.With(func(mut Mutator) { obj = mut.Alloc(nil) })
	if err := m.AddMember("B", ""); err != nil {
		t.Fatal(err)
	}
	if got := m.MemberState("B"); got != membership.Joining {
		t.Fatalf("seeded peer state = %s, want joining", got)
	}

	// Traffic from B: scion created, directory flips B to alive, lease starts.
	m.HandleMessage("B", &wire.CreateScion{ExportID: 1, From: "B", Holder: "B", Obj: obj})
	m.TakeEffects()
	if got := m.MemberState("B"); got != membership.Alive {
		t.Fatalf("after traffic, B = %s, want alive", got)
	}
	if m.NumScions() != 1 {
		t.Fatalf("scions = %d", m.NumScions())
	}

	// Silence: B must pass through suspect on its way to dead, and the scion
	// must survive until BOTH the directory says dead AND the lease lapsed.
	sawSuspect := false
	for i := 0; i < 40 && m.MemberState("B") != membership.Dead; i++ {
		m.AdvanceClock()
		m.TakeEffects()
		if m.MemberState("B") == membership.Suspect {
			sawSuspect = true
			if m.NumScions() != 1 {
				t.Fatal("scion reclaimed while B merely suspect")
			}
		}
	}
	if !sawSuspect {
		t.Fatal("B never passed through suspect")
	}
	if m.MemberState("B") != membership.Dead {
		t.Fatal("B never declared dead under silence")
	}
	for i := 0; i < 20 && m.NumScions() > 0; i++ {
		m.AdvanceClock()
		m.TakeEffects()
	}
	if m.NumScions() != 0 {
		t.Fatal("dead holder's scion never reclaimed after lease expiry")
	}
	// With the scion gone the object is unreferenced: the local collector
	// sweeps it.
	if res := m.RunLGC(); res.Swept != 1 {
		t.Fatalf("swept = %d after reclamation, want 1", res.Swept)
	}
}

func TestMachineMembershipGossipConverges(t *testing.T) {
	ms := map[ids.NodeID]*Machine{
		"A": NewMachine("A", membCfg()),
		"B": NewMachine("B", membCfg()),
	}
	// Asymmetric seeding: only A knows about B. B must discover A purely
	// from the gossip A pushes at it.
	if err := ms["A"].AddMember("B", "b:1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		exchange(ms)
	}
	if got := ms["A"].MemberState("B"); got != membership.Alive {
		t.Fatalf("A's view of B = %s, want alive", got)
	}
	if got := ms["B"].MemberState("A"); got != membership.Alive {
		t.Fatalf("B's view of A = %s, want alive (discovered via gossip)", got)
	}
	if got := ms["B"].MemberState("B"); got != membership.Alive {
		t.Fatalf("B's self state = %s, want alive", got)
	}
	// The gossiped record carried B's address to... B itself; more usefully,
	// B's directory must have recorded A's discovery with an address-free
	// record (A never set one) without inventing state.
	if n := len(ms["B"].Members()); n != 2 {
		t.Fatalf("B's directory has %d records, want 2", n)
	}
}

func TestMachineDrainHandsOffAndRetires(t *testing.T) {
	ms := map[ids.NodeID]*Machine{
		"A": NewMachine("A", membCfg()),
		"B": NewMachine("B", membCfg()),
	}
	a, b := ms["A"], ms["B"]
	if err := a.AddMember("B", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMember("A", ""); err != nil {
		t.Fatal(err)
	}

	// B owns an object; A holds a reference to it (stub at A, scion at B).
	var target ids.ObjID
	b.With(func(mut Mutator) { target = mut.Alloc(nil) })
	b.HandleMessage("A", &wire.CreateScion{ExportID: 1, From: "A", Holder: "A", Obj: target})
	b.TakeEffects()
	var holder ids.ObjID
	a.With(func(mut Mutator) {
		holder = mut.Alloc(nil)
		if err := mut.Root(holder); err != nil {
			t.Fatal(err)
		}
	})
	if err := a.HoldRemote(holder, ids.GlobalRef{Node: "B", Obj: target}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		exchange(ms)
	}
	if b.NumScions() != 1 {
		t.Fatalf("B scions = %d before drain", b.NumScions())
	}

	// Drain A: the handoff must reach B before A retires, and a draining
	// node must refuse to launch detections.
	if err := a.BeginDrain(); err != nil {
		t.Fatal(err)
	}
	sawHandoff := false
	for _, env := range a.TakeEffects() {
		if ho, ok := env.Msg.(*wire.LeaseHandoff); ok && env.To == "B" {
			sawHandoff = true
			if len(ho.Objs) != 1 || ho.Objs[0] != target {
				t.Fatalf("handoff objs = %v, want [%d]", ho.Objs, target)
			}
			b.HandleMessage("A", env.Msg)
		} else if env.To == "B" {
			b.HandleMessage("A", env.Msg)
		}
	}
	if !sawHandoff {
		t.Fatal("BeginDrain sent no LeaseHandoff to the referent's owner")
	}
	if got := a.RunDetection(); got != 0 {
		t.Fatalf("draining node launched %d detections", got)
	}
	b.TakeEffects()
	if got := b.MemberState("A"); got != membership.Draining {
		t.Fatalf("B's view of A = %s, want draining (piggybacked on the handoff)", got)
	}

	// Linger out: A declares itself dead, gossip carries it, and B releases
	// the custodial scion so the former referent can be collected.
	for i := 0; i < 30 && b.NumScions() > 0; i++ {
		exchange(ms)
	}
	if got := b.MemberState("A"); got != membership.Dead {
		t.Fatalf("B's view of A = %s, want dead after drain linger", got)
	}
	if b.NumScions() != 0 {
		t.Fatal("custodial scion never released after the drained holder retired")
	}
	if res := b.RunLGC(); res.Swept != 1 {
		t.Fatalf("swept = %d after custodial release, want 1", res.Swept)
	}
}
