package node

import (
	"fmt"
	"sync/atomic"
	"time"

	"dgc/internal/core"
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/membership"
	"dgc/internal/obs"
	"dgc/internal/refs"
	"dgc/internal/snapshot"
	"dgc/internal/trace"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// Machine is the pure protocol core of one process: the object heap, the
// local collector, the reference-listing tables and acyclic DGC, the
// snapshot summarizer, the cycle detector and the remote-invocation
// machinery — with no lock and no transport. Every input (a mutator
// operation, an incoming wire message, a daemon run, a clock advance)
// mutates the machine and accumulates its outputs as an explicit effect
// list (outbound messages) that the driver drains with TakeEffects and
// transmits however it likes.
//
// A Machine is NOT safe for concurrent use: a driver serializes inputs.
// Two drivers are provided:
//
//   - Node: a mutex shell preserving the historical blocking API, used by
//     the deterministic cluster simulator (and valid over any transport);
//   - LiveRuntime: a mailbox goroutine with wall-clock daemon tickers and
//     backpressure-aware sends, for real deployments over TCP.
type Machine struct {
	id       ids.NodeID
	cfg      Config
	heap     *heap.Heap
	table    *refs.Table
	acyclic  *refs.AcyclicDGC
	lgc      *lgc.Collector
	detector *core.Detector
	selector *core.Selector
	summary  *snapshot.Summary

	clock        uint64
	snapVersion  uint64
	detectCursor uint64 // round-robin offset for bounded detection rounds

	// sumHeapGen/sumTableGen record the heap and table mutation epochs at
	// the last summary rebuild; while both still match, Summarize is a
	// cache hit and skips re-encoding and re-summarizing.
	sumHeapGen  uint64
	sumTableGen uint64

	methods map[string]Method

	nextCallID   uint64
	pendingCalls map[uint64]*pendingCall

	nextExportID   uint64
	pendingExports map[uint64]*pendingExport

	// pins counts in-flight references that must keep their stubs across
	// local collections (exported args, pending call targets).
	pins map[ids.GlobalRef]int

	// cdmAcc accumulates, per detection, the union of every CDM algebra
	// delivered to this node together with the scions it arrived along
	// (see handleCDM). cdmAborted marks detections whose accumulated view
	// hit a counter conflict. Both are droppable cache state, cleared on
	// each summarization and when the cap is hit.
	cdmAcc     map[core.DetectionID]*detAcc
	cdmAborted map[core.DetectionID]struct{}

	// batch, when non-nil, buffers the current input's CDM traffic per
	// outgoing edge (BatchDetection/AggregateDetection modes); the
	// detector's SendCDMs callback appends to it instead of emitting
	// per-detection messages. Bracketed by beginCDMBatch/flushCDMBatch
	// around every input that can produce detection traffic.
	batch *cdmBatcher

	// memb/leases are the elastic-membership state: the gossip directory and
	// the per-holder lease table guarding scion reclamation. Both nil when
	// Config.Membership is nil (the simulator's static-directory mode), and
	// every membership code path guards on that. membGossiped records, per
	// peer, the directory version last pushed to it, so piggybacked gossip
	// only rides along when the peer's view may be stale.
	memb         *membership.Tracker
	leases       *refs.HolderLeases
	membGossiped map[ids.NodeID]uint64

	stats Stats

	// met is the node's observability instrument block (a private registry
	// when Config.Metrics is nil, so no instrumentation site needs a guard).
	// Metric observations may read the wall clock but never feed back into
	// protocol decisions, keeping the machine's behaviour deterministic.
	met *obs.NodeMetrics

	// inflight tracks detections currently known to this node for causal
	// tracing and the per-detection latency histogram: keyed by detection,
	// carrying the trace id and the wall-clock time of first sight here.
	// Droppable cache (bounded by inflightCap, aged out on clock advances):
	// losing an entry only loses a latency sample.
	inflight map[core.DetectionID]detInflight

	// lastLGC/lastSummarize timestamp the most recent daemon runs, for the
	// /debug/dgc snapshot.
	lastLGC       time.Time
	lastSummarize time.Time

	// out accumulates the outbound-message effects of the current input.
	// Drivers drain it with TakeEffects after every input they feed in.
	out []transport.Envelope

	// cbGoid holds the id of the goroutine currently executing a
	// user-provided callback (Method handler, ReplyFunc, With body), zero
	// otherwise. Drivers read it from other goroutines to turn callback
	// re-entrance into a panic instead of a deadlock; hence atomic.
	cbGoid atomic.Uint64
}

// detAcc is one detection's accumulated state at this node.
type detAcc struct {
	alg    core.Alg
	alongs map[ids.RefID]struct{} // scions this detection arrived along
	// alongsSorted caches the alongs set in canonical order; maintained
	// incrementally so each delivery iterates without rebuilding it.
	alongsSorted []ids.RefID
	// first is when this accumulator was created, for the /debug/dgc
	// per-detection age report. Wall clock: diagnostic only, never read by
	// the protocol.
	first time.Time
	// ver counts changes to alg; retVer is ver at the last aggregation-mode
	// partial return, so an unchanged accumulator never returns twice.
	ver    uint64
	retVer uint64
}

// cdmBatcher buffers the CDM traffic of one machine input (a detection
// round or one delivered CDM/BatchCDM), grouped per outgoing edge with one
// section per detection, plus aggregation-mode partial returns grouped per
// origin. Flushing emits one message per edge (a plain CDM for single
// sections, a BatchCDM otherwise) in canonical edge order. Only active
// under BatchDetection/AggregateDetection; nil otherwise, so the default
// send path is untouched.
type cdmBatcher struct {
	edges map[ids.RefID]*edgeBatch
	order []ids.RefID // edge insertion order; sorted canonically at flush

	rets     map[ids.NodeID][]wire.BatchSection
	retOrder []ids.NodeID
	retHops  int
}

// outSection is one buffered (detection, algebra) pair bound for an edge.
type outSection struct {
	det   core.DetectionID
	trace uint64
	alg   core.Alg
	hops  int
}

type edgeBatch struct {
	secs  []outSection
	index map[core.DetectionID]int
}

// add buffers one detector fan-out. A later derivation of a detection
// already buffered for an edge supersedes the earlier one: within one input
// the accumulated algebra only grows, so the newest derivation subsumes
// what it replaces.
func (b *cdmBatcher) add(det core.DetectionID, trace uint64, alongs []ids.RefID, alg core.Alg, hops int) {
	for _, along := range alongs {
		eb := b.edges[along]
		if eb == nil {
			eb = &edgeBatch{index: make(map[core.DetectionID]int)}
			b.edges[along] = eb
			b.order = append(b.order, along)
		}
		if i, ok := eb.index[det]; ok {
			eb.secs[i] = outSection{det: det, trace: trace, alg: alg, hops: hops}
			continue
		}
		eb.index[det] = len(eb.secs)
		eb.secs = append(eb.secs, outSection{det: det, trace: trace, alg: alg, hops: hops})
	}
}

// addReturn buffers one partial-match result bound for the detection's
// origin. alg must be safe to share (the caller clones the accumulator).
func (b *cdmBatcher) addReturn(det core.DetectionID, trace uint64, alg core.Alg, hops int) {
	if _, ok := b.rets[det.Origin]; !ok {
		b.retOrder = append(b.retOrder, det.Origin)
	}
	b.rets[det.Origin] = append(b.rets[det.Origin], wire.NewBatchSection(det, trace, alg))
	if hops > b.retHops {
		b.retHops = hops
	}
}

func newCDMBatcher() *cdmBatcher {
	return &cdmBatcher{
		edges: make(map[ids.RefID]*edgeBatch),
		rets:  make(map[ids.NodeID][]wire.BatchSection),
	}
}

// cdmAccCap bounds the per-detection accumulator cache; overflowing flushes
// it, which only costs repeated work.
const cdmAccCap = 1 << 10

// detInflight is one tracked detection: its causal trace id and when this
// node first saw it.
type detInflight struct {
	trace uint64
	first time.Time
}

// inflightCap bounds the inflight-detection table; overflowing flushes it,
// which only loses latency samples and debug visibility, never correctness.
const inflightCap = 1 << 12

// inflightMaxAge ages out tracked detections that never reached a terminal
// outcome at this node (e.g. the origin of a detection that ended
// elsewhere). Swept on clock advances.
const inflightMaxAge = 2 * time.Minute

type pendingCall struct {
	target   ids.GlobalRef
	pinned   []ids.GlobalRef
	cb       ReplyFunc
	deadline uint64 // clock tick after which the call expires (0 = never)
}

type pendingExport struct {
	waiting int // outstanding CreateScion acks
	failed  bool
	errMsg  string
	ready   func(ok bool, errMsg string) // continuation inside the machine
}

// NewMachine assembles the protocol core for process id.
func NewMachine(id ids.NodeID, cfg Config) *Machine {
	m := &Machine{
		id:             id,
		cfg:            cfg,
		heap:           heap.New(id),
		table:          refs.NewTable(id),
		methods:        make(map[string]Method),
		pendingCalls:   make(map[uint64]*pendingCall),
		pendingExports: make(map[uint64]*pendingExport),
		pins:           make(map[ids.GlobalRef]int),
		cdmAcc:         make(map[core.DetectionID]*detAcc),
		cdmAborted:     make(map[core.DetectionID]struct{}),
		inflight:       make(map[core.DetectionID]detInflight),
	}
	m.met = obs.NewNodeMetrics(cfg.Metrics.Node(string(id)))
	m.acyclic = refs.NewAcyclicDGC(m.table)
	m.acyclic.EmptySetRepeats = cfg.EmptySetRepeats
	m.lgc = lgc.New(m.heap, m.table)
	m.selector = core.NewSelector(cfg.CandidateMinAge)
	if cfg.Membership != nil {
		mc := cfg.Membership.WithDefaults()
		m.cfg.Membership = &mc
		m.memb = membership.NewTracker(id, "", mc)
		m.leases = refs.NewHolderLeases(m.table, mc.LeaseTicks)
		m.membGossiped = make(map[ids.NodeID]uint64)
	}
	if m.cfg.batchDetectionOn() {
		// Batched mode implies eager completion: a sender-side verdict on the
		// derived algebra collapses the terminal fan-out the receivers would
		// otherwise each evaluate (the matching rule is location-independent,
		// so the verdict is identical wherever it is computed).
		m.cfg.Detector.EagerComplete = true
		cfg.Detector.EagerComplete = true
	}
	m.detector = core.NewDetector(id, cfg.Detector, (*detectorActions)(m))
	registerBuiltins(m)
	return m
}

// ID returns the process identifier.
func (m *Machine) ID() ids.NodeID { return m.id }

// Metrics returns the machine's instrument block. Instruments are atomic
// and safe to read from any goroutine.
func (m *Machine) Metrics() *obs.NodeMetrics { return m.met }

// syncGauges refreshes the instantaneous-state gauges from the heap and
// tables; called from the daemon paths, which are the only inputs that can
// change them in bulk.
func (m *Machine) syncGauges() {
	m.met.HeapObjects.Set(int64(m.heap.Len()))
	m.met.Scions.Set(int64(m.table.NumScions()))
	m.met.Stubs.Set(int64(m.table.NumStubs()))
	m.met.PendingCalls.Set(int64(len(m.pendingCalls)))
	m.met.DetectionsInflight.Set(int64(len(m.inflight)))
	m.met.DetectionInflightAge.Set(int64(m.oldestInflightAge(time.Now()).Seconds()))
}

// oldestInflightAge returns the age of the longest-tracked inflight
// detection (zero when none): the "stuck batch" signal behind the
// dgc_detection_inflight_age_seconds gauge.
func (m *Machine) oldestInflightAge(now time.Time) time.Duration {
	var oldest time.Duration
	for _, inf := range m.inflight {
		if age := now.Sub(inf.first); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// beginCDMBatch arms per-edge CDM buffering for the current input when a
// batching mode is enabled; flushCDMBatch drains it. No-ops otherwise, so
// the default path emits exactly the historical message sequence.
func (m *Machine) beginCDMBatch() {
	if m.cfg.batchDetectionOn() || m.cfg.AggregateDetection {
		m.batch = newCDMBatcher()
	}
}

// flushCDMBatch emits the buffered traffic: per edge in canonical order,
// one plain CDM for a single section or one BatchCDM for several; then the
// aggregation-mode partial returns, one BatchCDM per origin.
func (m *Machine) flushCDMBatch() {
	b := m.batch
	if b == nil {
		return
	}
	m.batch = nil
	m.filterDeadEdges(b)
	ids.SortRefIDs(b.order)
	for _, edge := range b.order {
		eb := b.edges[edge]
		if len(eb.secs) == 1 {
			s := eb.secs[0]
			m.stats.CDMMsgsSent++
			m.emitT(trace.KindCDMSent, s.trace, "det=%s/%d to=%s along=%s hops=%d",
				s.det.Origin, s.det.Seq, edge.Dst.Node, edge, s.hops)
			m.send(edge.Dst.Node, wire.NewCDMFromAlg(s.det, edge, s.alg, s.hops, s.trace))
			continue
		}
		secs := make([]wire.BatchSection, len(eb.secs))
		hops := 0
		for i, s := range eb.secs {
			secs[i] = wire.NewBatchSection(s.det, s.trace, s.alg)
			if s.hops > hops {
				hops = s.hops
			}
			m.emitT(trace.KindCDMSent, s.trace, "det=%s/%d to=%s along=%s hops=%d batched",
				s.det.Origin, s.det.Seq, edge.Dst.Node, edge, s.hops)
		}
		m.stats.CDMMsgsSent++
		m.stats.BatchCDMsSent++
		m.stats.BatchSectionsSent += uint64(len(secs))
		m.met.BatchCDMsSent.Inc()
		m.met.BatchSections.Observe(float64(len(secs)))
		m.emit(trace.KindBatchCDM, "to=%s sections=%d hops=%d sent", edge.Dst.Node, len(secs), hops)
		m.send(edge.Dst.Node, wire.NewBatchCDM(edge, hops, false, secs))
	}
	for _, origin := range b.retOrder {
		m.stats.CDMMsgsSent++
		m.emit(trace.KindBatchCDM, "to=%s sections=%d hops=%d return sent",
			origin, len(b.rets[origin]), b.retHops)
		m.send(origin, wire.NewBatchCDM(ids.RefID{}, b.retHops, true, b.rets[origin]))
	}
}

// trackDetection records a detection for causal tracing, stamping its first
// sight at this node.
func (m *Machine) trackDetection(det core.DetectionID, trace uint64) {
	if _, ok := m.inflight[det]; ok {
		return
	}
	if len(m.inflight) >= inflightCap {
		m.inflight = make(map[core.DetectionID]detInflight)
	}
	m.inflight[det] = detInflight{trace: trace, first: time.Now()}
	m.met.DetectionsInflight.Set(int64(len(m.inflight)))
}

// detectionDone observes the detection's latency at this node (first sight
// to terminal outcome), emits the journal's terminal event, and stops
// tracking it. outcome names the verdict ("cycle-found", "aborted",
// "race-dropped") for the detection-end event dgcctl's stream-driven
// follow terminates on.
func (m *Machine) detectionDone(det core.DetectionID, outcome string) {
	inf, ok := m.inflight[det]
	if !ok {
		return
	}
	m.emitT(trace.KindDetectionEnd, inf.trace, "det=%s/%d outcome=%s", det.Origin, det.Seq, outcome)
	m.met.DetectionLatency.Observe(time.Since(inf.first).Seconds())
	delete(m.inflight, det)
	m.met.DetectionsInflight.Set(int64(len(m.inflight)))
}

// TakeEffects returns the outbound messages accumulated since the last
// call, transferring ownership to the caller (the machine starts a fresh
// buffer). Drivers call it after every input and transmit the result; the
// order of the slice is the order the protocol produced the sends in, which
// deterministic drivers must preserve.
func (m *Machine) TakeEffects() []transport.Envelope {
	out := m.out
	m.out = nil
	return out
}

// send appends one outbound message effect, piggybacking a membership gossip
// on the same envelope burst when the destination's view is stale.
func (m *Machine) send(to ids.NodeID, msg wire.Message) {
	m.out = append(m.out, transport.Envelope{To: to, Msg: msg})
	m.maybePiggybackGossip(to, msg)
}

// callback invokes a user-provided callback (Method handler, ReplyFunc,
// AcquireRemote continuation, With body). While it runs, the machine
// records the executing goroutine so driver entry points can detect
// re-entrance — a callback calling back into the public Node/LiveRuntime
// API, which would deadlock on the driver's lock or mailbox — and panic
// with a diagnostic instead.
func (m *Machine) callback(fn func()) {
	prev := m.cbGoid.Load()
	m.cbGoid.Store(goid())
	defer m.cbGoid.Store(prev)
	fn()
}

// guardReentry panics when called from the goroutine that is currently
// executing one of this machine's user callbacks. entry names the public
// method for the diagnostic.
func (m *Machine) guardReentry(entry string) {
	if g := m.cbGoid.Load(); g != 0 && g == goid() {
		panic("node: " + entry + " re-entered from a Method/ReplyFunc/With callback; " +
			"callbacks run inside the machine and must use the Mutator they were handed " +
			"(m.Invoke, m.Store, ...) instead of calling public entry points, " +
			"which would deadlock")
	}
}

// Stats returns a copy of the machine's counters.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Clock = m.clock
	s.Detector = m.detector.Stats
	s.ExportsPending = uint64(len(m.pendingExports))
	return s
}

// Clock returns the machine's logical time.
func (m *Machine) Clock() uint64 { return m.clock }

// NumObjects returns the current heap size.
func (m *Machine) NumObjects() int { return m.heap.Len() }

// NumScions returns the number of incoming-reference scions.
func (m *Machine) NumScions() int { return m.table.NumScions() }

// NumStubs returns the number of outgoing-reference stubs.
func (m *Machine) NumStubs() int { return m.table.NumStubs() }

// CloneHeap returns a deep copy of the machine's heap, for ground-truth
// analysis by harnesses and tests.
func (m *Machine) CloneHeap() *heap.Heap { return m.heap.Clone() }

// ScionRefs returns the current scions as reference identifiers, in
// canonical order.
func (m *Machine) ScionRefs() []ids.RefID {
	out := make([]ids.RefID, 0, m.table.NumScions())
	for _, sc := range m.table.Scions() {
		out = append(out, sc.RefID(m.id))
	}
	return out
}

// RegisterMethod installs (or replaces) a remotely invocable method.
func (m *Machine) RegisterMethod(name string, fn Method) { m.methods[name] = fn }

// With runs fn with a Mutator over this machine: the scenario-building and
// method-handler entry point for direct heap manipulation.
func (m *Machine) With(fn func(mut Mutator)) {
	m.callback(func() { fn(Mutator{n: m}) })
}

// EnsureScionFor records an incoming reference from holder to the local
// object obj: the owner half of a reference grant. Exposed for harness
// bootstrap (cluster scenario construction); the protocol path is
// CreateScion/Ack.
func (m *Machine) EnsureScionFor(holder ids.NodeID, obj ids.ObjID) error {
	if !m.heap.Contains(obj) {
		return m.errf("EnsureScionFor: no object %d", obj)
	}
	if _, created := m.table.EnsureScion(holder, obj); created {
		m.stats.ScionsCreated++
		m.met.ScionsCreated.Inc()
	}
	m.selector.Touch(ids.RefID{Src: holder, Dst: ids.GlobalRef{Node: m.id, Obj: obj}}, m.clock)
	return nil
}

// HoldRemote makes the local object from hold the remote reference target,
// materializing the stub: the holder half of a reference grant. The caller
// must have arranged the owner's scion first (EnsureScionFor), preserving
// scion-before-stub.
func (m *Machine) HoldRemote(from ids.ObjID, target ids.GlobalRef) error {
	if target.Node == m.id {
		return m.heap.AddLocalRef(from, target.Obj)
	}
	if err := m.heap.AddRemoteRef(from, target); err != nil {
		return err
	}
	m.table.EnsureStub(target)
	return nil
}

// pin/unpin manage the in-flight reference set.
func (m *Machine) pin(ref ids.GlobalRef) {
	if ref.Node == m.id {
		return // own objects are protected by scions/roots, not pins
	}
	m.pins[ref]++
	// Materialize the stub immediately so the reference is valid.
	m.table.EnsureStub(ref)
}

func (m *Machine) unpin(ref ids.GlobalRef) {
	if ref.Node == m.id {
		return
	}
	if c := m.pins[ref]; c <= 1 {
		delete(m.pins, ref)
	} else {
		m.pins[ref] = c - 1
	}
}

func (m *Machine) pinnedRefs() []ids.GlobalRef {
	out := make([]ids.GlobalRef, 0, len(m.pins))
	for r := range m.pins {
		out = append(out, r)
	}
	ids.SortGlobalRefs(out)
	return out
}

// errf is an internal invariant violation reporter.
func (m *Machine) errf(format string, args ...any) error {
	return fmt.Errorf("node %s: %s", m.id, fmt.Sprintf(format, args...))
}

// emit records a trace event when tracing is configured. The trace log is
// an order-preserving, lock-protected in-memory sink, not transport I/O,
// so the machine writes it directly rather than routing it through the
// effect list.
func (m *Machine) emit(kind trace.Kind, format string, args ...any) {
	if m.cfg.Trace != nil {
		m.cfg.Trace.Emit(m.id, kind, format, args...)
	}
}

// emitT records a trace event carrying a detection's causal trace id, the
// key the timeline assembler merges per-node streams on.
func (m *Machine) emitT(kind trace.Kind, traceID uint64, format string, args ...any) {
	if m.cfg.Trace != nil {
		m.cfg.Trace.EmitTraced(m.id, kind, traceID, format, args...)
	}
}

// Journal returns the machine's event journal (nil when tracing is not
// configured). The log itself is safe for concurrent use from any
// goroutine; the config pointer is immutable after construction.
func (m *Machine) Journal() *trace.Log { return m.cfg.Trace }
