package node

import (
	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// HandleMessage feeds one delivered protocol message into the machine.
// Unknown messages are ignored (datagram semantics). Any sends the message
// triggers (CDM fan-out, acks, replies) accumulate as effects for the
// driver to transmit.
func (m *Machine) HandleMessage(from ids.NodeID, msg wire.Message) {
	switch msg := msg.(type) {
	case *wire.InvokeRequest:
		m.handleInvokeRequest(msg)
	case *wire.InvokeReply:
		m.handleInvokeReply(msg)
	case *wire.CreateScion:
		m.handleCreateScion(msg)
	case *wire.CreateScionAck:
		m.handleCreateScionAck(msg)
	case *wire.NewSetStubs:
		m.handleNewSetStubs(msg)
	case *wire.CDM:
		m.handleCDM(msg)
	case *wire.DeleteScion:
		m.detector.HandleDeleteScion(msg.Ref)
	default:
		// Baseline traffic and future kinds are not for this handler.
	}
	_ = from // sender identity travels inside each message
}

// handleCDM merges an arriving cycle detection message into the machine's
// per-detection accumulated algebra and processes the union.
//
// Accumulation is the key to polynomial traffic on dense graphs: CDMs of
// one detection reach a node over many converging paths, each carrying a
// different partial closure; merging them makes every processed delivery
// STRICTLY GROW the node's view, bounding processed deliveries per
// detection by the number of references in the closure. A delivery that
// adds nothing is dropped; a delivery whose counters conflict with the
// accumulated view is a mutator race and terminates the detection here.
// The accumulator is droppable cache (cleared on summarization and when
// full): losing it repeats work but never affects safety, preserving the
// paper's "no correctness-critical per-detection state at intermediate
// processes" property.
func (m *Machine) handleCDM(msg *wire.CDM) {
	m.met.CDMsHandled.Inc()
	m.met.CDMHops.Observe(float64(msg.Hops))
	if _, aborted := m.cdmAborted[msg.Det]; aborted {
		m.stats.CDMsRaceDropped++
		m.met.CDMsRaceDropped.Inc()
		return
	}
	m.trackDetection(msg.Det, msg.Trace)
	acc, ok := m.cdmAcc[msg.Det]
	if !ok {
		if len(m.cdmAcc) >= cdmAccCap {
			m.cdmAcc = make(map[core.DetectionID]*detAcc)
			m.cdmAborted = make(map[core.DetectionID]struct{})
		}
		acc = &detAcc{alg: core.NewAlg(), alongs: make(map[ids.RefID]struct{})}
		m.cdmAcc[msg.Det] = acc
	}
	changed, conflict := msg.MergeAlgInto(acc.alg)
	if conflict {
		m.stats.CDMsRaceDropped++
		m.met.CDMsRaceDropped.Inc()
		delete(m.cdmAcc, msg.Det)
		m.cdmAborted[msg.Det] = struct{}{}
		m.detectionDone(msg.Det)
		return
	}
	_, knownAlong := acc.alongs[msg.Along]
	if !knownAlong {
		acc.alongs[msg.Along] = struct{}{}
		acc.alongsSorted = append(acc.alongsSorted, msg.Along)
		ids.SortRefIDs(acc.alongsSorted)
	}
	if !changed && knownAlong {
		m.stats.CDMsDeduped++
		m.met.CDMsDeduped.Inc()
		return
	}

	// Process the union through EVERY scion this detection has arrived
	// along: information that arrived via one scion must also flow out
	// through the stubs reachable from the others, or converging paths
	// would starve each other of the closure they jointly build.
	for _, along := range acc.alongsSorted {
		out := m.detector.HandleCDM(m.summary, msg.Det, along, acc.alg, int(msg.Hops), msg.Trace)
		switch out.Kind {
		case core.OutcomeDropped:
			m.met.CDMsDropped.Inc()
		case core.OutcomeAborted:
			m.met.DetectionsAborted.Inc()
		case core.OutcomeCycleFound:
			m.met.CyclesFound.Inc()
		case core.OutcomeForwarded:
			m.met.CDMsSent.Add(uint64(out.Forwarded))
		}
		if m.cfg.Trace != nil {
			m.emit(trace.KindCDMHandled, "det=%s/%d along=%s outcome=%s entries=%d",
				msg.Det.Origin, msg.Det.Seq, along, out.Kind, acc.alg.Len())
			if out.Kind == core.OutcomeCycleFound {
				m.emit(trace.KindCycleFound, "det=%s/%d scions=%d",
					msg.Det.Origin, msg.Det.Seq, len(out.GarbageScions))
			}
		}
		if out.Kind == core.OutcomeForwarded && out.Derived != nil {
			// Fold the shipped derivation back into the union: later
			// expansions then recognize it and stop re-forwarding
			// information every downstream node already has.
			if _, conflict := acc.alg.Merge(*out.Derived); conflict {
				m.stats.CDMsRaceDropped++
				m.met.CDMsRaceDropped.Inc()
				delete(m.cdmAcc, msg.Det)
				m.cdmAborted[msg.Det] = struct{}{}
				m.detectionDone(msg.Det)
				return
			}
		}
		if out.Kind == core.OutcomeCycleFound || out.Kind == core.OutcomeAborted {
			// Terminal outcome observed at this node: close the latency
			// measurement for the detection's causal trace.
			m.detectionDone(msg.Det)
			break
		}
	}
}

// handleNewSetStubs applies a reference-listing stub set: scions from the
// sender not listed are deleted and the objects they protected become
// eligible for the next local collection.
func (m *Machine) handleNewSetStubs(msg *wire.NewSetStubs) {
	deleted := m.acyclic.ApplyStubSet(msg.Set)
	m.stats.StubSetsApplied++
	m.met.StubSetsApplied.Inc()
	if len(deleted) == 0 {
		return
	}
	m.stats.ScionsDropped += uint64(len(deleted))
	m.met.ScionsDropped.Add(uint64(len(deleted)))
	for _, sc := range deleted {
		ref := sc.RefID(m.id)
		m.selector.Forget(ref)
		m.emit(trace.KindScionDeleted, "ref=%s reason=stub-set", ref)
	}
}
