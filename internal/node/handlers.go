package node

import (
	"time"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// HandleMessage feeds one delivered protocol message into the machine.
// Unknown messages are ignored (datagram semantics). Any sends the message
// triggers (CDM fan-out, acks, replies) accumulate as effects for the
// driver to transmit.
func (m *Machine) HandleMessage(from ids.NodeID, msg wire.Message) {
	m.observeMember(from)
	switch msg := msg.(type) {
	case *wire.InvokeRequest:
		m.handleInvokeRequest(msg)
	case *wire.InvokeReply:
		m.handleInvokeReply(msg)
	case *wire.CreateScion:
		m.handleCreateScion(msg)
	case *wire.CreateScionAck:
		m.handleCreateScionAck(msg)
	case *wire.NewSetStubs:
		m.handleNewSetStubs(msg)
	case *wire.CDM:
		m.handleCDM(msg)
	case *wire.BatchCDM:
		m.handleBatchCDM(msg)
	case *wire.DeleteScion:
		m.detector.HandleDeleteScion(msg.Ref)
	case *wire.Gossip:
		m.handleGossip(from, msg)
	case *wire.LeaseHandoff:
		m.handleLeaseHandoff(msg)
	default:
		// Baseline traffic and future kinds are not for this handler.
	}
}

// handleCDM merges an arriving cycle detection message into the machine's
// per-detection accumulated algebra and processes the union.
//
// Accumulation is the key to polynomial traffic on dense graphs: CDMs of
// one detection reach a node over many converging paths, each carrying a
// different partial closure; merging them makes every processed delivery
// STRICTLY GROW the node's view, bounding processed deliveries per
// detection by the number of references in the closure. A delivery that
// adds nothing is dropped; a delivery whose counters conflict with the
// accumulated view is a mutator race and terminates the detection here.
// The accumulator is droppable cache (cleared on summarization and when
// full): losing it repeats work but never affects safety, preserving the
// paper's "no correctness-critical per-detection state at intermediate
// processes" property.
func (m *Machine) handleCDM(msg *wire.CDM) {
	m.beginCDMBatch()
	m.processCDMSection(msg.Det, msg.Trace, msg.Along, int(msg.Hops), msg.MergeAlgInto)
	m.flushCDMBatch()
}

// handleBatchCDM processes a multi-candidate detection message: every
// section is matched against the local summary exactly as a standalone CDM
// would be — per-detection accumulators, dedup, race-drop and trace ids all
// apply section by section — and the surviving forwards are re-grouped per
// outgoing edge into sub-batches by the bracketing cdmBatcher. Return
// messages instead merge each section into the origin's accumulated view
// and re-launch only the unresolved residue.
func (m *Machine) handleBatchCDM(msg *wire.BatchCDM) {
	if len(msg.Sections) == 0 {
		return // decoder rejects these; in-process senders never build them
	}
	if m.cfg.Trace != nil {
		if msg.Return {
			m.emit(trace.KindBatchCDM, "sections=%d hops=%d return received", len(msg.Sections), msg.Hops)
		} else {
			m.emit(trace.KindBatchCDM, "from=%s sections=%d hops=%d received",
				msg.Along.Src, len(msg.Sections), msg.Hops)
		}
	}
	m.beginCDMBatch()
	for i := range msg.Sections {
		s := &msg.Sections[i]
		if msg.Return {
			m.handleReturnSection(s, int(msg.Hops))
		} else {
			m.processCDMSection(s.Det, s.Trace, msg.Along, int(msg.Hops), s.MergeAlgInto)
		}
	}
	m.flushCDMBatch()
}

// accumulatorFor returns (creating if needed) the detection's accumulated
// state, flushing the cache when the cap is hit.
func (m *Machine) accumulatorFor(det core.DetectionID) *detAcc {
	acc, ok := m.cdmAcc[det]
	if !ok {
		if len(m.cdmAcc) >= cdmAccCap {
			m.cdmAcc = make(map[core.DetectionID]*detAcc)
			m.cdmAborted = make(map[core.DetectionID]struct{})
		}
		acc = &detAcc{alg: core.NewAlg(), alongs: make(map[ids.RefID]struct{}), first: time.Now()}
		m.cdmAcc[det] = acc
	}
	return acc
}

// raceDropDetection records a counter conflict against the accumulated
// view: the accumulator is discarded, further deliveries of the detection
// are dropped, and the latency measurement closes.
func (m *Machine) raceDropDetection(det core.DetectionID) {
	m.stats.CDMsRaceDropped++
	m.met.CDMsRaceDropped.Inc()
	delete(m.cdmAcc, det)
	m.cdmAborted[det] = struct{}{}
	m.detectionDone(det, "race-dropped")
}

// processCDMSection is the per-detection core of handleCDM/handleBatchCDM:
// one delivered algebra (a standalone CDM or one batch section), arriving
// along one scion, merged and processed against the accumulated view.
func (m *Machine) processCDMSection(det core.DetectionID, traceID uint64, along ids.RefID, hops int, merge func(core.Alg) (bool, bool)) {
	m.met.CDMsHandled.Inc()
	m.met.CDMHops.Observe(float64(hops))
	if _, aborted := m.cdmAborted[det]; aborted {
		m.stats.CDMsRaceDropped++
		m.met.CDMsRaceDropped.Inc()
		return
	}
	m.trackDetection(det, traceID)
	acc := m.accumulatorFor(det)
	changed, conflict := merge(acc.alg)
	if conflict {
		m.raceDropDetection(det)
		return
	}
	if changed {
		acc.ver++
	}
	_, knownAlong := acc.alongs[along]
	if !knownAlong {
		acc.alongs[along] = struct{}{}
		acc.alongsSorted = append(acc.alongsSorted, along)
		ids.SortRefIDs(acc.alongsSorted)
	}
	if !changed && knownAlong {
		m.stats.CDMsDeduped++
		m.met.CDMsDeduped.Inc()
		return
	}

	// Process the union through EVERY scion this detection has arrived
	// along: information that arrived via one scion must also flow out
	// through the stubs reachable from the others, or converging paths
	// would starve each other of the closure they jointly build.
	terminal, forwarded := false, false
	for _, a := range acc.alongsSorted {
		out := m.detector.HandleCDM(m.summary, det, a, acc.alg, hops, traceID)
		switch out.Kind {
		case core.OutcomeDropped:
			m.met.CDMsDropped.Inc()
		case core.OutcomeAborted:
			m.met.DetectionsAborted.Inc()
		case core.OutcomeCycleFound:
			m.met.CyclesFound.Inc()
		case core.OutcomeForwarded:
			forwarded = true
			m.met.CDMsSent.Add(uint64(out.Forwarded))
		}
		if m.cfg.Trace != nil {
			m.emitT(trace.KindCDMHandled, traceID, "det=%s/%d along=%s outcome=%s entries=%d",
				det.Origin, det.Seq, a, out.Kind, acc.alg.Len())
			if out.Kind == core.OutcomeCycleFound {
				m.emitT(trace.KindCycleFound, traceID, "det=%s/%d scions=%d",
					det.Origin, det.Seq, len(out.GarbageScions))
			}
		}
		if out.Kind == core.OutcomeForwarded && out.Derived != nil {
			// Fold the shipped derivation back into the union: later
			// expansions then recognize it and stop re-forwarding
			// information every downstream node already has.
			ch, conflict := acc.alg.Merge(*out.Derived)
			if conflict {
				m.raceDropDetection(det)
				return
			}
			if ch {
				acc.ver++
			}
		}
		if out.Kind == core.OutcomeCycleFound || out.Kind == core.OutcomeAborted {
			// Terminal outcome observed at this node: close the latency
			// measurement for the detection's causal trace.
			m.detectionDone(det, out.Kind.String())
			terminal = true
			break
		}
	}

	// Hierarchical aggregation: a branch that died here without a verdict
	// is a partial match. Return the accumulated view to the origin (once
	// per accumulator version) so the coordinator can merge fragments from
	// every branch and re-launch only what remains unresolved.
	if m.cfg.AggregateDetection && !terminal && !forwarded &&
		det.Origin != m.id && acc.ver > acc.retVer && acc.alg.Len() > 0 {
		acc.retVer = acc.ver
		m.emitT(trace.KindPartialReturn, traceID, "det=%s/%d to=%s entries=%d hops=%d",
			det.Origin, det.Seq, det.Origin, acc.alg.Len(), hops+1)
		m.batch.addReturn(det, traceID, acc.alg.Clone(), hops+1)
	}
}

// handleReturnSection merges one aggregation-mode partial result into the
// origin's accumulated view and evaluates it: a conflict aborts the
// detection, a source-empty reduction proves the cycle, anything else
// re-launches the unresolved residue through the origin's own scions.
func (m *Machine) handleReturnSection(s *wire.BatchSection, hops int) {
	det := s.Det
	if det.Origin != m.id {
		return // misrouted; returns only mean something at the coordinator
	}
	m.stats.PartialReturns++
	m.met.PartialReturns.Inc()
	if _, aborted := m.cdmAborted[det]; aborted {
		m.stats.CDMsRaceDropped++
		m.met.CDMsRaceDropped.Inc()
		return
	}
	if m.summary == nil {
		return
	}
	m.trackDetection(det, s.Trace)
	acc := m.accumulatorFor(det)
	changed, conflict := s.MergeAlgInto(acc.alg)
	if conflict {
		m.raceDropDetection(det)
		return
	}
	if !changed {
		m.stats.CDMsDeduped++
		m.met.CDMsDeduped.Inc()
		return
	}
	acc.ver++
	out := m.detector.HandleReturn(m.summary, det, acc.alg, hops, s.Trace)
	switch out.Kind {
	case core.OutcomeAborted:
		m.met.DetectionsAborted.Inc()
	case core.OutcomeCycleFound:
		m.met.CyclesFound.Inc()
	case core.OutcomeForwarded:
		m.stats.DetectionRelaunches++
		m.met.DetectionRelaunches.Inc()
		m.met.CDMsSent.Add(uint64(out.Forwarded))
		m.emitT(trace.KindRelaunch, s.Trace, "det=%s/%d forwarded=%d entries=%d",
			det.Origin, det.Seq, out.Forwarded, acc.alg.Len())
	}
	if m.cfg.Trace != nil {
		m.emitT(trace.KindCDMHandled, s.Trace, "det=%s/%d along=return outcome=%s entries=%d",
			det.Origin, det.Seq, out.Kind, acc.alg.Len())
		if out.Kind == core.OutcomeCycleFound {
			m.emitT(trace.KindCycleFound, s.Trace, "det=%s/%d scions=%d",
				det.Origin, det.Seq, len(out.GarbageScions))
		}
	}
	if out.Kind == core.OutcomeForwarded && out.Derived != nil {
		ch, conflict := acc.alg.Merge(*out.Derived)
		if conflict {
			m.raceDropDetection(det)
			return
		}
		if ch {
			acc.ver++
		}
	}
	if out.Kind == core.OutcomeCycleFound || out.Kind == core.OutcomeAborted {
		m.detectionDone(det, out.Kind.String())
	}
}

// handleNewSetStubs applies a reference-listing stub set: scions from the
// sender not listed are deleted and the objects they protected become
// eligible for the next local collection.
func (m *Machine) handleNewSetStubs(msg *wire.NewSetStubs) {
	deleted := m.acyclic.ApplyStubSet(msg.Set)
	m.stats.StubSetsApplied++
	m.met.StubSetsApplied.Inc()
	if len(deleted) == 0 {
		return
	}
	m.stats.ScionsDropped += uint64(len(deleted))
	m.met.ScionsDropped.Add(uint64(len(deleted)))
	for _, sc := range deleted {
		ref := sc.RefID(m.id)
		m.selector.Forget(ref)
		m.emit(trace.KindScionDeleted, "ref=%s reason=stub-set", ref)
	}
}
