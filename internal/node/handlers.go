package node

import (
	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// HandleMessage is the transport delivery entry point. It dispatches every
// protocol message under the node lock; unknown messages are ignored
// (datagram semantics). Sends triggered by the handler (CDM fan-out,
// acks, replies) are staged and flushed as a batch when the transport
// supports it.
func (n *Node) HandleMessage(from ids.NodeID, msg wire.Message) {
	n.withStage(func() { n.dispatchMessage(from, msg) })
}

func (n *Node) dispatchMessage(from ids.NodeID, msg wire.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()

	switch m := msg.(type) {
	case *wire.InvokeRequest:
		n.handleInvokeRequest(m)
	case *wire.InvokeReply:
		n.handleInvokeReply(m)
	case *wire.CreateScion:
		n.handleCreateScion(m)
	case *wire.CreateScionAck:
		n.handleCreateScionAck(m)
	case *wire.NewSetStubs:
		n.handleNewSetStubs(m)
	case *wire.CDM:
		n.handleCDM(m)
	case *wire.DeleteScion:
		n.detector.HandleDeleteScion(m.Ref)
	default:
		// Baseline traffic and future kinds are not for this handler.
	}
}

// handleCDM merges an arriving cycle detection message into the node's
// per-detection accumulated algebra and processes the union.
//
// Accumulation is the key to polynomial traffic on dense graphs: CDMs of
// one detection reach a node over many converging paths, each carrying a
// different partial closure; merging them makes every processed delivery
// STRICTLY GROW the node's view, bounding processed deliveries per
// detection by the number of references in the closure. A delivery that
// adds nothing is dropped; a delivery whose counters conflict with the
// accumulated view is a mutator race and terminates the detection here.
// The accumulator is droppable cache (cleared on summarization and when
// full): losing it repeats work but never affects safety, preserving the
// paper's "no correctness-critical per-detection state at intermediate
// processes" property.
func (n *Node) handleCDM(m *wire.CDM) {
	if _, aborted := n.cdmAborted[m.Det]; aborted {
		n.stats.CDMsRaceDropped++
		return
	}
	acc, ok := n.cdmAcc[m.Det]
	if !ok {
		if len(n.cdmAcc) >= cdmAccCap {
			n.cdmAcc = make(map[core.DetectionID]*detAcc)
			n.cdmAborted = make(map[core.DetectionID]struct{})
		}
		acc = &detAcc{alg: core.NewAlg(), alongs: make(map[ids.RefID]struct{})}
		n.cdmAcc[m.Det] = acc
	}
	changed, conflict := m.MergeAlgInto(acc.alg)
	if conflict {
		n.stats.CDMsRaceDropped++
		delete(n.cdmAcc, m.Det)
		n.cdmAborted[m.Det] = struct{}{}
		return
	}
	_, knownAlong := acc.alongs[m.Along]
	if !knownAlong {
		acc.alongs[m.Along] = struct{}{}
		acc.alongsSorted = append(acc.alongsSorted, m.Along)
		ids.SortRefIDs(acc.alongsSorted)
	}
	if !changed && knownAlong {
		n.stats.CDMsDeduped++
		return
	}

	// Process the union through EVERY scion this detection has arrived
	// along: information that arrived via one scion must also flow out
	// through the stubs reachable from the others, or converging paths
	// would starve each other of the closure they jointly build.
	for _, along := range acc.alongsSorted {
		out := n.detector.HandleCDM(n.summary, m.Det, along, acc.alg, int(m.Hops))
		if n.cfg.Trace != nil {
			n.emit(trace.KindCDMHandled, "det=%s/%d along=%s outcome=%s entries=%d",
				m.Det.Origin, m.Det.Seq, along, out.Kind, acc.alg.Len())
			if out.Kind == core.OutcomeCycleFound {
				n.emit(trace.KindCycleFound, "det=%s/%d scions=%d",
					m.Det.Origin, m.Det.Seq, len(out.GarbageScions))
			}
		}
		if out.Kind == core.OutcomeForwarded && out.Derived != nil {
			// Fold the shipped derivation back into the union: later
			// expansions then recognize it and stop re-forwarding
			// information every downstream node already has.
			if _, conflict := acc.alg.Merge(*out.Derived); conflict {
				n.stats.CDMsRaceDropped++
				delete(n.cdmAcc, m.Det)
				n.cdmAborted[m.Det] = struct{}{}
				return
			}
		}
		if out.Kind == core.OutcomeCycleFound || out.Kind == core.OutcomeAborted {
			break
		}
	}
}

// handleNewSetStubs applies a reference-listing stub set: scions from the
// sender not listed are deleted and the objects they protected become
// eligible for the next local collection. Caller holds the lock.
func (n *Node) handleNewSetStubs(m *wire.NewSetStubs) {
	deleted := n.acyclic.ApplyStubSet(m.Set)
	n.stats.StubSetsApplied++
	if len(deleted) == 0 {
		return
	}
	n.stats.ScionsDropped += uint64(len(deleted))
	for _, sc := range deleted {
		ref := sc.RefID(n.id)
		n.selector.Forget(ref)
		n.emit(trace.KindScionDeleted, "ref=%s reason=stub-set", ref)
	}
}
