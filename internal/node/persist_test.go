package node

import (
	"testing"

	"dgc/internal/ids"
	"dgc/internal/transport"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	x := alloc(a)
	a.With(func(m Mutator) {
		if err := m.Link(holder, x); err != nil {
			t.Fatal(err)
		}
	})
	target := alloc(b)
	tn.grant("A", holder, "B", target)
	// Some activity to give counters and sequence numbers non-zero values.
	ref := ids.GlobalRef{Node: "B", Obj: target}
	for i := 0; i < 3; i++ {
		if err := a.Invoke(ref, "noop", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	tn.settle()
	a.RunLGC()
	tn.settle()
	a.Tick()
	a.Tick()

	data, err := a.Save()
	if err != nil {
		t.Fatal(err)
	}

	// Restore onto a fresh endpoint (simulating a new process).
	net2 := transport.NewNetwork(2)
	a2, err := Restore(net2.Endpoint("A"), Config{}, data)
	if err != nil {
		t.Fatal(err)
	}
	if a2.ID() != "A" {
		t.Fatalf("restored id = %s", a2.ID())
	}
	if a2.NumObjects() != a.NumObjects() {
		t.Fatalf("objects: %d vs %d", a2.NumObjects(), a.NumObjects())
	}
	if a2.NumStubs() != a.NumStubs() || a2.NumScions() != a.NumScions() {
		t.Fatalf("tables differ: stubs %d/%d scions %d/%d",
			a2.NumStubs(), a.NumStubs(), a2.NumScions(), a.NumScions())
	}
	if a2.Clock() != a.Clock() {
		t.Fatalf("clock: %d vs %d", a2.Clock(), a.Clock())
	}
	// Invocation counters survive.
	var icOld, icNew uint64
	a.With(func(m Mutator) { icOld = m.n.table.Stub(ref).IC })
	a2.With(func(m Mutator) { icNew = m.n.table.Stub(ref).IC })
	if icOld == 0 || icOld != icNew {
		t.Fatalf("stub IC: %d vs %d", icOld, icNew)
	}
	// Sequence numbers survive: the next stub set is newer than any sent
	// before the save.
	a2.With(func(m Mutator) {
		out, _ := m.n.acyclic.SeqState()
		if len(out) == 0 || out[0].Seq == 0 {
			t.Errorf("outbound sequence state lost: %+v", out)
		}
	})
	// The restored heap is independent of the original.
	before := a.NumObjects()
	a2.With(func(m Mutator) { m.Alloc(nil) })
	if a.NumObjects() != before {
		t.Error("allocation in restored node affected original heap")
	}
	if a2.NumObjects() != before+1 {
		t.Error("allocation in restored node not visible there")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	net := transport.NewNetwork(1)
	cases := [][]byte{
		nil,
		[]byte("bogus"),
		[]byte(persistMagic), // truncated
	}
	for _, data := range cases {
		if _, err := Restore(net.Endpoint("X"), Config{}, data); err == nil {
			t.Errorf("Restore(%q) succeeded", data)
		}
	}
	// Truncations of a valid state must all fail.
	tn := newTestNet(t, Config{}, "A")
	allocRooted(t, tn.n("A"))
	data, err := tn.n("A").Save()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += 3 {
		if _, err := Restore(net.Endpoint("X"), Config{}, data[:len(data)-cut]); err == nil {
			t.Fatalf("truncation at -%d accepted", cut)
		}
	}
	// Trailing garbage must fail.
	if _, err := Restore(net.Endpoint("X"), Config{}, append(append([]byte{}, data...), 7)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestRestartedNodeStubSetsNotStale(t *testing.T) {
	// The sequence-number persistence requirement: after a restart, the
	// node's stub sets must still be accepted by peers (a reset to zero
	// would be discarded as stale, leaking the peer's scions forever).
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	target := alloc(b)
	tn.grant("A", holder, "B", target)
	a.RunLGC() // seq 1 delivered
	tn.settle()

	data, err := a.Save()
	if err != nil {
		t.Fatal(err)
	}
	// "Restart": restore A on the same network (replacing the endpoint
	// handler).
	a2, err := Restore(tn.net.Endpoint("A"), Config{}, data)
	if err != nil {
		t.Fatal(err)
	}
	// A2 drops the reference and collects.
	a2.With(func(m Mutator) {
		if err := m.Drop(holder, ids.GlobalRef{Node: "B", Obj: target}); err != nil {
			t.Fatal(err)
		}
	})
	a2.RunLGC()
	tn.settle()
	if b.NumScions() != 0 {
		t.Fatal("post-restart stub set was discarded as stale; scion leaked")
	}
	b.RunLGC()
	if b.NumObjects() != 0 {
		t.Fatal("garbage not reclaimed after restart")
	}
}
