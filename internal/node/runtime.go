package node

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/membership"
	"dgc/internal/snapshot"
	"dgc/internal/trace"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// ErrRuntimeClosed is returned by LiveRuntime entry points after Close.
var ErrRuntimeClosed = errors.New("node: runtime closed")

// RuntimeConfig tunes the wall-clock driver. All intervals are real time;
// the machine's logical-tick daemon fields (Config.LGCEvery, SnapshotEvery,
// DetectEvery) are ignored by LiveRuntime — daemons run on these tickers
// instead.
type RuntimeConfig struct {
	// Tick is the logical-clock advance period (drives call expiry and
	// candidate aging). Default 100ms.
	Tick time.Duration
	// LGCInterval runs the local collector periodically (0 disables).
	LGCInterval time.Duration
	// SnapshotInterval runs graph summarization periodically (0 disables).
	SnapshotInterval time.Duration
	// DetectInterval nominates candidates and starts detections
	// periodically (0 disables).
	DetectInterval time.Duration
	// Mailbox bounds the event queue. Inbound transport messages beyond it
	// are dropped (the protocol tolerates loss — blocking the transport's
	// read loop instead could deadlock a cycle of full nodes); local API
	// calls always block until queued. Default 1024.
	Mailbox int

	// Backpressure enables credit-based flow control on the outbound path:
	// at most CreditWindow messages may be in flight per destination edge
	// beyond what the peer has acknowledged consuming. Excess messages park
	// on the sender (counted by dgc_credit_stalls_total / dgc_credit_pending)
	// until a grant opens the window, so a slow peer throttles its producers
	// instead of having its mailbox shed load. Enable it cluster-wide: a
	// backpressured sender needs its peers to announce grants back.
	Backpressure bool

	// CreditWindow is the per-edge in-flight message budget when
	// Backpressure is on. Default 256.
	CreditWindow int
}

func (c RuntimeConfig) withDefaults() RuntimeConfig {
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 1024
	}
	if c.CreditWindow <= 0 {
		c.CreditWindow = 256
	}
	return c
}

// rtEvent is one mailbox entry: an inbound message (msg != nil) or a local
// call (fn != nil, done closed after the effects are on the wire).
type rtEvent struct {
	from ids.NodeID
	msg  wire.Message
	fn   func(m *Machine)
	done chan struct{}
}

// LiveRuntime is the wall-clock driver over a Machine: one goroutine owns
// the machine outright (no lock) and consumes a bounded mailbox of inputs —
// transport deliveries, local API calls, and daemon ticks. Effects are
// transmitted by the loop after each input, so the transport is never
// entered from its own delivery context, and a slow peer exerts
// backpressure only on this node's outbound path, never on the protocol
// core.
//
// This is the engine behind cmd/dgc-node and examples/tcpcluster; the
// deterministic simulator uses the Node driver instead.
type LiveRuntime struct {
	mach *Machine
	ep   transport.Endpoint
	rcfg RuntimeConfig

	mailbox chan rtEvent
	quit    chan struct{}
	wg      sync.WaitGroup

	// daemonTickers holds the periodic daemon tickers; owned by the loop
	// goroutine (created on entry, stopped on exit).
	daemonTickers []*time.Ticker

	// closeMu serializes local-call enqueues against Close: enqueues hold
	// the read side across the mailbox send, so once Close holds the write
	// side and sets closed, no further event can commit and the loop's
	// final drain unblocks every caller that did.
	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once

	// consumedByPeer counts inbound messages per source edge when
	// backpressure is on — accepted AND dropped both, since a message shed
	// on overflow still left the peer's window (never refunding it would
	// leak window capacity until the edge wedged shut). Keys are ids.NodeID,
	// values *atomic.Uint64; written from the transport's delivery
	// goroutine, read by the loop's grant announcements.
	consumedByPeer sync.Map

	// credits is the sender-side window state per destination edge; owned
	// by the loop goroutine.
	credits map[ids.NodeID]*creditEdge
}

// creditEdge tracks one destination's flow-control window on the sender
// side: cumulative messages admitted to the transport, the peer's latest
// cumulative consumed grant, and messages parked while the window is shut.
type creditEdge struct {
	sent    uint64
	acked   uint64
	pending []wire.Message
}

// inflight is the window occupancy, saturating at 0 while an over-claiming
// grant (acked transiently above sent inside applyCredit) is being drained.
func (e *creditEdge) inflight() uint64 {
	if e.acked >= e.sent {
		return 0
	}
	return e.sent - e.acked
}

// NewLiveRuntime assembles a live node over the endpoint and starts its
// event loop and daemon tickers. Close stops the loop; the caller retains
// ownership of the endpoint and closes it separately.
func NewLiveRuntime(id ids.NodeID, ep transport.Endpoint, cfg Config, rcfg RuntimeConfig) *LiveRuntime {
	return startLiveRuntime(NewMachine(id, cfg), ep, rcfg)
}

// RestoreLiveRuntime reconstructs a live node from state produced by Save
// (see RestoreMachine for the recovery semantics) and starts it.
func RestoreLiveRuntime(ep transport.Endpoint, cfg Config, rcfg RuntimeConfig, data []byte) (*LiveRuntime, error) {
	mach, err := RestoreMachine(cfg, data)
	if err != nil {
		return nil, err
	}
	return startLiveRuntime(mach, ep, rcfg), nil
}

func startLiveRuntime(mach *Machine, ep transport.Endpoint, rcfg RuntimeConfig) *LiveRuntime {
	rcfg = rcfg.withDefaults()
	r := &LiveRuntime{
		mach:    mach,
		ep:      ep,
		rcfg:    rcfg,
		mailbox: make(chan rtEvent, rcfg.Mailbox),
		quit:    make(chan struct{}),
	}
	mach.met.MailboxCapacity.Set(int64(rcfg.Mailbox))
	if ep != nil {
		ep.SetHandler(r.handleMessage)
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// handleMessage is the transport delivery entry point: enqueue and return.
// The loop transmits any response effects itself, so the returned effect
// list is always empty. A full mailbox drops the message — every protocol
// layer tolerates loss, and blocking here would stall the transport's read
// loop (and, transitively, a cycle of loaded nodes).
func (r *LiveRuntime) handleMessage(from ids.NodeID, msg wire.Message) []transport.Envelope {
	select {
	case r.mailbox <- rtEvent{from: from, msg: msg}:
	default:
		r.mach.met.MailboxDropped.Inc()
		// The journal is a lock-protected sink and cfg is immutable, so
		// emitting from the transport's delivery goroutine is safe.
		r.mach.emit(trace.KindMailboxDrop, "from=%s kind=%s", from, msg.Kind())
		// A shed message still spends the peer's window: count it consumed
		// right here (it will never reach the loop), or the edge's window
		// capacity would leak away drop by drop until it wedged shut.
		r.creditConsumed(from, msg)
	}
	return nil
}

// creditConsumed advances the inbound consumed counter for the edge a
// message arrived on. Called by the loop as it processes each inbound
// message — credits replenish on consumption, so the sender's window covers
// both the transport AND this node's mailbox backlog — and by handleMessage
// for messages shed on overflow. Credit traffic itself is exempt.
func (r *LiveRuntime) creditConsumed(from ids.NodeID, msg wire.Message) {
	if !r.rcfg.Backpressure || msg.Kind() == wire.KindCredit {
		return
	}
	v, ok := r.consumedByPeer.Load(from)
	if !ok {
		v, _ = r.consumedByPeer.LoadOrStore(from, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
}

// do submits a local call to the loop and blocks until its effects are on
// the wire. Returns ErrRuntimeClosed (with fn not run) after Close. A panic
// raised by fn — including the re-entrancy guard tripping inside a callback
// — is captured on the loop and re-raised here on the caller's goroutine,
// so a misbehaving callback does not take the event loop down with it.
func (r *LiveRuntime) do(entry string, fn func(m *Machine)) error {
	r.mach.guardReentry(entry)
	r.closeMu.RLock()
	if r.closed {
		r.closeMu.RUnlock()
		return ErrRuntimeClosed
	}
	var pv any
	ev := rtEvent{done: make(chan struct{})}
	ev.fn = func(m *Machine) {
		defer func() { pv = recover() }()
		fn(m)
	}
	r.mailbox <- ev
	r.closeMu.RUnlock()
	<-ev.done
	if pv != nil {
		panic(pv)
	}
	return nil
}

// loop is the single goroutine that owns the machine.
func (r *LiveRuntime) loop() {
	defer r.wg.Done()

	tick := time.NewTicker(r.rcfg.Tick)
	defer tick.Stop()
	lgcC := r.newDaemonTicker(r.rcfg.LGCInterval)
	snapC := r.newDaemonTicker(r.rcfg.SnapshotInterval)
	detC := r.newDaemonTicker(r.rcfg.DetectInterval)
	defer r.stopDaemonTickers()

	for {
		select {
		case ev := <-r.mailbox:
			r.consume(ev)
		case <-tick.C:
			r.mach.AdvanceClock()
			r.flush()
			r.announceCredits()
		case <-lgcC:
			r.mach.RunLGC()
			r.flush()
		case <-snapC:
			_ = r.mach.Summarize()
			r.flush()
		case <-detC:
			r.mach.RunDetection()
			r.flush()
		case <-r.quit:
			// Drain events that committed before Close flipped closed, so
			// every blocked do() caller unblocks, then exit.
			for {
				select {
				case ev := <-r.mailbox:
					r.consume(ev)
				default:
					return
				}
			}
		}
	}
}

// newDaemonTicker starts a ticker for interval d and returns its channel,
// or a nil channel (never ready) when the daemon is disabled.
func (r *LiveRuntime) newDaemonTicker(d time.Duration) <-chan time.Time {
	if d <= 0 {
		return nil
	}
	t := time.NewTicker(d)
	r.daemonTickers = append(r.daemonTickers, t)
	return t.C
}

func (r *LiveRuntime) stopDaemonTickers() {
	for _, t := range r.daemonTickers {
		t.Stop()
	}
}

// consume feeds one event to the machine and transmits its effects before
// signalling completion. Credit grants are a runtime-level concern and are
// intercepted before the machine sees them.
func (r *LiveRuntime) consume(ev rtEvent) {
	r.mach.met.MailboxDepth.Set(int64(len(r.mailbox)))
	switch {
	case ev.msg != nil:
		if c, ok := ev.msg.(*wire.Credit); ok {
			r.applyCredit(ev.from, c)
			break
		}
		r.mach.HandleMessage(ev.from, ev.msg)
		r.creditConsumed(ev.from, ev.msg)
	case ev.fn != nil:
		ev.fn(r.mach)
	}
	r.flush()
	if ev.done != nil {
		close(ev.done)
	}
}

// flush transmits the machine's accumulated effects in production order,
// staging multi-message bursts into one batch frame per peer. Under
// backpressure, messages to an exhausted edge park in per-edge FIFO queues
// instead of entering the transport; applyCredit drains them when the peer
// grants window back.
func (r *LiveRuntime) flush() {
	r.applyAddrUpdates()
	outs := r.mach.TakeEffects()
	if len(outs) == 0 || r.ep == nil {
		return
	}
	if st, ok := r.ep.(transport.Stager); ok && len(outs) > 1 {
		st.BeginStage()
		defer st.FlushStage()
	}
	if !r.rcfg.Backpressure {
		for _, o := range outs {
			_ = r.ep.Send(o.To, o.Msg)
		}
		return
	}
	for _, o := range outs {
		e := r.creditEdgeFor(o.To)
		// FIFO per edge: once anything is parked, everything after it parks
		// too, or the peer would see reordered protocol traffic.
		if len(e.pending) > 0 || e.inflight() >= uint64(r.rcfg.CreditWindow) {
			e.pending = append(e.pending, o.Msg)
			r.mach.met.CreditStalls.Inc()
			r.mach.emit(trace.KindCreditStall, "to=%s kind=%s pending=%d",
				o.To, o.Msg.Kind(), len(e.pending))
			continue
		}
		e.sent++
		_ = r.ep.Send(o.To, o.Msg)
	}
	r.updateCreditPending()
}

// applyAddrUpdates reprograms the endpoint with transport addresses the
// membership directory learned through gossip, BEFORE the pending effects
// are sent — a message to a just-discovered member needs its route first.
// Endpoints without dynamic peer programming simply never learn new routes.
func (r *LiveRuntime) applyAddrUpdates() {
	ups := r.mach.TakeAddrUpdates()
	if len(ups) == 0 || r.ep == nil {
		return
	}
	ap, ok := r.ep.(interface{ AddPeer(ids.NodeID, string) })
	if !ok {
		return
	}
	for _, u := range ups {
		if u.Node == r.mach.ID() || u.Addr == "" {
			continue
		}
		ap.AddPeer(u.Node, u.Addr)
	}
}

// creditEdgeFor returns (allocating on first use) the window state for one
// destination. Loop goroutine only.
func (r *LiveRuntime) creditEdgeFor(to ids.NodeID) *creditEdge {
	e := r.credits[to]
	if e == nil {
		if r.credits == nil {
			r.credits = make(map[ids.NodeID]*creditEdge)
		}
		e = &creditEdge{}
		r.credits[to] = e
	}
	return e
}

// applyCredit merges an inbound grant into the edge's window and drains as
// many parked messages as the new window admits. Grants carry cumulative
// consumed counts and merge by maximum, so duplicated, reordered or lost
// Credit messages never corrupt the window — the next grant restates it.
func (r *LiveRuntime) applyCredit(from ids.NodeID, c *wire.Credit) {
	e := r.creditEdgeFor(from)
	if c.Consumed <= e.acked {
		return
	}
	e.acked = c.Consumed
	n := 0
	for ; n < len(e.pending) && e.inflight() < uint64(r.rcfg.CreditWindow); n++ {
		e.sent++
		_ = r.ep.Send(from, e.pending[n])
	}
	if n > 0 {
		e.pending = append(e.pending[:0], e.pending[n:]...)
		r.updateCreditPending()
	}
	if e.acked > e.sent {
		// A peer cannot have consumed more than we sent; clamp (after the
		// drain, so the window it opened is fully used) rather than carry an
		// over-claim around as permanent extra window. Reachable when a peer
		// restarts with stale counts or misattributes an edge.
		e.acked = e.sent
	}
}

// announceCredits re-broadcasts every inbound edge's cumulative consumed
// count. Ticking unconditionally — not only on change — is the loss
// recovery: a dropped grant merely delays the window one tick.
func (r *LiveRuntime) announceCredits() {
	if !r.rcfg.Backpressure || r.ep == nil {
		return
	}
	r.consumedByPeer.Range(func(k, v any) bool {
		_ = r.ep.Send(k.(ids.NodeID), &wire.Credit{Consumed: v.(*atomic.Uint64).Load()})
		r.mach.met.CreditGrants.Inc()
		return true
	})
}

func (r *LiveRuntime) updateCreditPending() {
	total := 0
	for _, e := range r.credits {
		total += len(e.pending)
	}
	r.mach.met.CreditPending.Set(int64(total))
}

// Close detaches the runtime from its endpoint, stops the loop and waits
// for it. Idempotent. Pending local calls enqueued before Close complete;
// later ones fail with ErrRuntimeClosed. The endpoint itself stays open
// (the caller owns it).
func (r *LiveRuntime) Close() error {
	r.closeOnce.Do(func() {
		if r.ep != nil {
			r.ep.SetHandler(nil)
		}
		r.closeMu.Lock()
		r.closed = true
		r.closeMu.Unlock()
		close(r.quit)
		r.wg.Wait()
	})
	return nil
}

// Journal returns the node's event journal (nil when tracing is not
// configured). Safe from any goroutine, even after Close: the journal is
// shared, concurrent-safe state, not loop-owned.
func (r *LiveRuntime) Journal() *trace.Log { return r.mach.Journal() }

// DroppedInbound reports transport deliveries discarded on mailbox
// overflow since the runtime started. It reads the
// dgc_mailbox_dropped_total counter — the metric is the single source of
// truth for drop accounting (a shadow field here once drifted from it).
func (r *LiveRuntime) DroppedInbound() uint64 { return r.mach.met.MailboxDropped.Value() }

// ID returns the node identifier.
func (r *LiveRuntime) ID() ids.NodeID { return r.mach.ID() }

// Stats returns a copy of the node's counters (zero after Close).
func (r *LiveRuntime) Stats() Stats {
	var s Stats
	_ = r.do("Stats", func(m *Machine) { s = m.Stats() })
	return s
}

// NumObjects returns the current heap size.
func (r *LiveRuntime) NumObjects() int {
	var v int
	_ = r.do("NumObjects", func(m *Machine) { v = m.NumObjects() })
	return v
}

// NumScions returns the number of incoming-reference scions.
func (r *LiveRuntime) NumScions() int {
	var v int
	_ = r.do("NumScions", func(m *Machine) { v = m.NumScions() })
	return v
}

// NumStubs returns the number of outgoing-reference stubs.
func (r *LiveRuntime) NumStubs() int {
	var v int
	_ = r.do("NumStubs", func(m *Machine) { v = m.NumStubs() })
	return v
}

// CloneHeap returns a deep copy of the node's heap (nil after Close).
func (r *LiveRuntime) CloneHeap() *heap.Heap {
	var h *heap.Heap
	_ = r.do("CloneHeap", func(m *Machine) { h = m.CloneHeap() })
	return h
}

// ScionRefs returns the node's current scions in canonical order.
func (r *LiveRuntime) ScionRefs() []ids.RefID {
	var out []ids.RefID
	_ = r.do("ScionRefs", func(m *Machine) { out = m.ScionRefs() })
	return out
}

// RegisterMethod installs (or replaces) a remotely invocable method.
func (r *LiveRuntime) RegisterMethod(name string, fn Method) {
	_ = r.do("RegisterMethod", func(m *Machine) { m.RegisterMethod(name, fn) })
}

// With runs fn on the runtime's loop with a Mutator over the machine.
func (r *LiveRuntime) With(fn func(m Mutator)) error {
	return r.do("With", func(m *Machine) { m.With(fn) })
}

// EnsureScionFor records an incoming reference from holder to the local
// object obj (harness bootstrap; the protocol path is CreateScion/Ack).
func (r *LiveRuntime) EnsureScionFor(holder ids.NodeID, obj ids.ObjID) error {
	var err error
	if derr := r.do("EnsureScionFor", func(m *Machine) { err = m.EnsureScionFor(holder, obj) }); derr != nil {
		return derr
	}
	return err
}

// HoldRemote makes the local object from hold the remote reference target,
// materializing the stub. Arrange the owner's scion first (EnsureScionFor),
// preserving scion-before-stub.
func (r *LiveRuntime) HoldRemote(from ids.ObjID, target ids.GlobalRef) error {
	var err error
	if derr := r.do("HoldRemote", func(m *Machine) { err = m.HoldRemote(from, target) }); derr != nil {
		return derr
	}
	return err
}

// Clock returns the node's logical time.
func (r *LiveRuntime) Clock() uint64 {
	var v uint64
	_ = r.do("Clock", func(m *Machine) { v = m.Clock() })
	return v
}

// RunLGC performs one local collection immediately, in addition to any
// periodic schedule.
func (r *LiveRuntime) RunLGC() lgc.Result {
	var res lgc.Result
	_ = r.do("RunLGC", func(m *Machine) { res = m.RunLGC() })
	return res
}

// Summarize rebuilds the summarized graph description immediately.
func (r *LiveRuntime) Summarize() error {
	var err error
	if derr := r.do("Summarize", func(m *Machine) { err = m.Summarize() }); derr != nil {
		return derr
	}
	return err
}

// RunDetection nominates candidates and starts detections immediately,
// returning the number started.
func (r *LiveRuntime) RunDetection() int {
	var started int
	_ = r.do("RunDetection", func(m *Machine) { started = m.RunDetection() })
	return started
}

// Summary returns the node's current summarized snapshot (nil before the
// first summarization and after Close).
func (r *LiveRuntime) Summary() *snapshot.Summary {
	var s *snapshot.Summary
	_ = r.do("Summary", func(m *Machine) { s = m.Summary() })
	return s
}

// Invoke performs an asynchronous remote invocation of method on target,
// exporting args to the callee; cb (optional) receives the reply on the
// runtime's loop. Invoke returns once the request is on the wire.
func (r *LiveRuntime) Invoke(target ids.GlobalRef, method string, args []ids.GlobalRef, cb ReplyFunc) error {
	var err error
	if derr := r.do("Invoke", func(m *Machine) { err = m.Invoke(target, method, args, cb) }); derr != nil {
		return derr
	}
	return err
}

// AcquireRemote bootstraps possession of a remote reference via the
// CreateScion protocol; cb runs on the runtime's loop once acknowledged.
func (r *LiveRuntime) AcquireRemote(ref ids.GlobalRef, cb func(m Mutator, ok bool)) error {
	var err error
	if derr := r.do("AcquireRemote", func(m *Machine) { err = m.AcquireRemote(ref, cb) }); derr != nil {
		return derr
	}
	return err
}

// Members returns the node's membership directory in canonical order (nil
// when Config.Membership is nil or after Close).
func (r *LiveRuntime) Members() []membership.Member {
	var out []membership.Member
	_ = r.do("Members", func(m *Machine) { out = m.Members() })
	return out
}

// AddMember seeds a peer into the membership directory as joining.
func (r *LiveRuntime) AddMember(node ids.NodeID, addr string) error {
	var err error
	if derr := r.do("AddMember", func(m *Machine) { err = m.AddMember(node, addr) }); derr != nil {
		return derr
	}
	return err
}

// BeginDrain starts this node's voluntary departure: exported references are
// handed to their owners and the node gossips itself draining, then dead.
func (r *LiveRuntime) BeginDrain() error {
	var err error
	if derr := r.do("BeginDrain", func(m *Machine) { err = m.BeginDrain() }); derr != nil {
		return derr
	}
	return err
}

// SetAdvertiseAddr records the transport address this node gossips for
// itself, so joiners discovered through the directory can dial it.
func (r *LiveRuntime) SetAdvertiseAddr(addr string) {
	_ = r.do("SetAdvertiseAddr", func(m *Machine) { m.SetSelfAddr(addr) })
}

// Save serializes the node's durable collector state. Typically paired
// with Close: save, close, restart elsewhere with RestoreLiveRuntime.
func (r *LiveRuntime) Save() ([]byte, error) {
	var data []byte
	var err error
	if derr := r.do("Save", func(m *Machine) { data, err = m.Save() }); derr != nil {
		return nil, derr
	}
	return data, err
}
