package node

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/snapshot"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// ErrRuntimeClosed is returned by LiveRuntime entry points after Close.
var ErrRuntimeClosed = errors.New("node: runtime closed")

// RuntimeConfig tunes the wall-clock driver. All intervals are real time;
// the machine's logical-tick daemon fields (Config.LGCEvery, SnapshotEvery,
// DetectEvery) are ignored by LiveRuntime — daemons run on these tickers
// instead.
type RuntimeConfig struct {
	// Tick is the logical-clock advance period (drives call expiry and
	// candidate aging). Default 100ms.
	Tick time.Duration
	// LGCInterval runs the local collector periodically (0 disables).
	LGCInterval time.Duration
	// SnapshotInterval runs graph summarization periodically (0 disables).
	SnapshotInterval time.Duration
	// DetectInterval nominates candidates and starts detections
	// periodically (0 disables).
	DetectInterval time.Duration
	// Mailbox bounds the event queue. Inbound transport messages beyond it
	// are dropped (the protocol tolerates loss — blocking the transport's
	// read loop instead could deadlock a cycle of full nodes); local API
	// calls always block until queued. Default 1024.
	Mailbox int
}

func (c RuntimeConfig) withDefaults() RuntimeConfig {
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 1024
	}
	return c
}

// rtEvent is one mailbox entry: an inbound message (msg != nil) or a local
// call (fn != nil, done closed after the effects are on the wire).
type rtEvent struct {
	from ids.NodeID
	msg  wire.Message
	fn   func(m *Machine)
	done chan struct{}
}

// LiveRuntime is the wall-clock driver over a Machine: one goroutine owns
// the machine outright (no lock) and consumes a bounded mailbox of inputs —
// transport deliveries, local API calls, and daemon ticks. Effects are
// transmitted by the loop after each input, so the transport is never
// entered from its own delivery context, and a slow peer exerts
// backpressure only on this node's outbound path, never on the protocol
// core.
//
// This is the engine behind cmd/dgc-node and examples/tcpcluster; the
// deterministic simulator uses the Node driver instead.
type LiveRuntime struct {
	mach *Machine
	ep   transport.Endpoint
	rcfg RuntimeConfig

	mailbox chan rtEvent
	quit    chan struct{}
	wg      sync.WaitGroup

	// daemonTickers holds the periodic daemon tickers; owned by the loop
	// goroutine (created on entry, stopped on exit).
	daemonTickers []*time.Ticker

	// closeMu serializes local-call enqueues against Close: enqueues hold
	// the read side across the mailbox send, so once Close holds the write
	// side and sets closed, no further event can commit and the loop's
	// final drain unblocks every caller that did.
	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once

	// droppedInbound counts transport deliveries discarded because the
	// mailbox was full.
	droppedInbound atomic.Uint64
}

// NewLiveRuntime assembles a live node over the endpoint and starts its
// event loop and daemon tickers. Close stops the loop; the caller retains
// ownership of the endpoint and closes it separately.
func NewLiveRuntime(id ids.NodeID, ep transport.Endpoint, cfg Config, rcfg RuntimeConfig) *LiveRuntime {
	return startLiveRuntime(NewMachine(id, cfg), ep, rcfg)
}

// RestoreLiveRuntime reconstructs a live node from state produced by Save
// (see RestoreMachine for the recovery semantics) and starts it.
func RestoreLiveRuntime(ep transport.Endpoint, cfg Config, rcfg RuntimeConfig, data []byte) (*LiveRuntime, error) {
	mach, err := RestoreMachine(cfg, data)
	if err != nil {
		return nil, err
	}
	return startLiveRuntime(mach, ep, rcfg), nil
}

func startLiveRuntime(mach *Machine, ep transport.Endpoint, rcfg RuntimeConfig) *LiveRuntime {
	rcfg = rcfg.withDefaults()
	r := &LiveRuntime{
		mach:    mach,
		ep:      ep,
		rcfg:    rcfg,
		mailbox: make(chan rtEvent, rcfg.Mailbox),
		quit:    make(chan struct{}),
	}
	mach.met.MailboxCapacity.Set(int64(rcfg.Mailbox))
	if ep != nil {
		ep.SetHandler(r.handleMessage)
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// handleMessage is the transport delivery entry point: enqueue and return.
// The loop transmits any response effects itself, so the returned effect
// list is always empty. A full mailbox drops the message — every protocol
// layer tolerates loss, and blocking here would stall the transport's read
// loop (and, transitively, a cycle of loaded nodes).
func (r *LiveRuntime) handleMessage(from ids.NodeID, msg wire.Message) []transport.Envelope {
	select {
	case r.mailbox <- rtEvent{from: from, msg: msg}:
	default:
		r.droppedInbound.Add(1)
		r.mach.met.MailboxDropped.Inc()
	}
	return nil
}

// do submits a local call to the loop and blocks until its effects are on
// the wire. Returns ErrRuntimeClosed (with fn not run) after Close. A panic
// raised by fn — including the re-entrancy guard tripping inside a callback
// — is captured on the loop and re-raised here on the caller's goroutine,
// so a misbehaving callback does not take the event loop down with it.
func (r *LiveRuntime) do(entry string, fn func(m *Machine)) error {
	r.mach.guardReentry(entry)
	r.closeMu.RLock()
	if r.closed {
		r.closeMu.RUnlock()
		return ErrRuntimeClosed
	}
	var pv any
	ev := rtEvent{done: make(chan struct{})}
	ev.fn = func(m *Machine) {
		defer func() { pv = recover() }()
		fn(m)
	}
	r.mailbox <- ev
	r.closeMu.RUnlock()
	<-ev.done
	if pv != nil {
		panic(pv)
	}
	return nil
}

// loop is the single goroutine that owns the machine.
func (r *LiveRuntime) loop() {
	defer r.wg.Done()

	tick := time.NewTicker(r.rcfg.Tick)
	defer tick.Stop()
	lgcC := r.newDaemonTicker(r.rcfg.LGCInterval)
	snapC := r.newDaemonTicker(r.rcfg.SnapshotInterval)
	detC := r.newDaemonTicker(r.rcfg.DetectInterval)
	defer r.stopDaemonTickers()

	for {
		select {
		case ev := <-r.mailbox:
			r.consume(ev)
		case <-tick.C:
			r.mach.AdvanceClock()
			r.flush()
		case <-lgcC:
			r.mach.RunLGC()
			r.flush()
		case <-snapC:
			_ = r.mach.Summarize()
			r.flush()
		case <-detC:
			r.mach.RunDetection()
			r.flush()
		case <-r.quit:
			// Drain events that committed before Close flipped closed, so
			// every blocked do() caller unblocks, then exit.
			for {
				select {
				case ev := <-r.mailbox:
					r.consume(ev)
				default:
					return
				}
			}
		}
	}
}

// newDaemonTicker starts a ticker for interval d and returns its channel,
// or a nil channel (never ready) when the daemon is disabled.
func (r *LiveRuntime) newDaemonTicker(d time.Duration) <-chan time.Time {
	if d <= 0 {
		return nil
	}
	t := time.NewTicker(d)
	r.daemonTickers = append(r.daemonTickers, t)
	return t.C
}

func (r *LiveRuntime) stopDaemonTickers() {
	for _, t := range r.daemonTickers {
		t.Stop()
	}
}

// consume feeds one event to the machine and transmits its effects before
// signalling completion.
func (r *LiveRuntime) consume(ev rtEvent) {
	r.mach.met.MailboxDepth.Set(int64(len(r.mailbox)))
	switch {
	case ev.msg != nil:
		r.mach.HandleMessage(ev.from, ev.msg)
	case ev.fn != nil:
		ev.fn(r.mach)
	}
	r.flush()
	if ev.done != nil {
		close(ev.done)
	}
}

// flush transmits the machine's accumulated effects in production order,
// staging multi-message bursts into one batch frame per peer.
func (r *LiveRuntime) flush() {
	outs := r.mach.TakeEffects()
	if len(outs) == 0 || r.ep == nil {
		return
	}
	if st, ok := r.ep.(transport.Stager); ok && len(outs) > 1 {
		st.BeginStage()
		defer st.FlushStage(nil)
	}
	for _, o := range outs {
		_ = r.ep.Send(o.To, o.Msg)
	}
}

// Close detaches the runtime from its endpoint, stops the loop and waits
// for it. Idempotent. Pending local calls enqueued before Close complete;
// later ones fail with ErrRuntimeClosed. The endpoint itself stays open
// (the caller owns it).
func (r *LiveRuntime) Close() error {
	r.closeOnce.Do(func() {
		if r.ep != nil {
			r.ep.SetHandler(nil)
		}
		r.closeMu.Lock()
		r.closed = true
		r.closeMu.Unlock()
		close(r.quit)
		r.wg.Wait()
	})
	return nil
}

// DroppedInbound reports transport deliveries discarded on mailbox
// overflow since the runtime started.
func (r *LiveRuntime) DroppedInbound() uint64 { return r.droppedInbound.Load() }

// ID returns the node identifier.
func (r *LiveRuntime) ID() ids.NodeID { return r.mach.ID() }

// Stats returns a copy of the node's counters (zero after Close).
func (r *LiveRuntime) Stats() Stats {
	var s Stats
	_ = r.do("Stats", func(m *Machine) { s = m.Stats() })
	return s
}

// NumObjects returns the current heap size.
func (r *LiveRuntime) NumObjects() int {
	var v int
	_ = r.do("NumObjects", func(m *Machine) { v = m.NumObjects() })
	return v
}

// NumScions returns the number of incoming-reference scions.
func (r *LiveRuntime) NumScions() int {
	var v int
	_ = r.do("NumScions", func(m *Machine) { v = m.NumScions() })
	return v
}

// NumStubs returns the number of outgoing-reference stubs.
func (r *LiveRuntime) NumStubs() int {
	var v int
	_ = r.do("NumStubs", func(m *Machine) { v = m.NumStubs() })
	return v
}

// CloneHeap returns a deep copy of the node's heap (nil after Close).
func (r *LiveRuntime) CloneHeap() *heap.Heap {
	var h *heap.Heap
	_ = r.do("CloneHeap", func(m *Machine) { h = m.CloneHeap() })
	return h
}

// ScionRefs returns the node's current scions in canonical order.
func (r *LiveRuntime) ScionRefs() []ids.RefID {
	var out []ids.RefID
	_ = r.do("ScionRefs", func(m *Machine) { out = m.ScionRefs() })
	return out
}

// RegisterMethod installs (or replaces) a remotely invocable method.
func (r *LiveRuntime) RegisterMethod(name string, fn Method) {
	_ = r.do("RegisterMethod", func(m *Machine) { m.RegisterMethod(name, fn) })
}

// With runs fn on the runtime's loop with a Mutator over the machine.
func (r *LiveRuntime) With(fn func(m Mutator)) error {
	return r.do("With", func(m *Machine) { m.With(fn) })
}

// EnsureScionFor records an incoming reference from holder to the local
// object obj (harness bootstrap; the protocol path is CreateScion/Ack).
func (r *LiveRuntime) EnsureScionFor(holder ids.NodeID, obj ids.ObjID) error {
	var err error
	if derr := r.do("EnsureScionFor", func(m *Machine) { err = m.EnsureScionFor(holder, obj) }); derr != nil {
		return derr
	}
	return err
}

// HoldRemote makes the local object from hold the remote reference target,
// materializing the stub. Arrange the owner's scion first (EnsureScionFor),
// preserving scion-before-stub.
func (r *LiveRuntime) HoldRemote(from ids.ObjID, target ids.GlobalRef) error {
	var err error
	if derr := r.do("HoldRemote", func(m *Machine) { err = m.HoldRemote(from, target) }); derr != nil {
		return derr
	}
	return err
}

// Clock returns the node's logical time.
func (r *LiveRuntime) Clock() uint64 {
	var v uint64
	_ = r.do("Clock", func(m *Machine) { v = m.Clock() })
	return v
}

// RunLGC performs one local collection immediately, in addition to any
// periodic schedule.
func (r *LiveRuntime) RunLGC() lgc.Result {
	var res lgc.Result
	_ = r.do("RunLGC", func(m *Machine) { res = m.RunLGC() })
	return res
}

// Summarize rebuilds the summarized graph description immediately.
func (r *LiveRuntime) Summarize() error {
	var err error
	if derr := r.do("Summarize", func(m *Machine) { err = m.Summarize() }); derr != nil {
		return derr
	}
	return err
}

// RunDetection nominates candidates and starts detections immediately,
// returning the number started.
func (r *LiveRuntime) RunDetection() int {
	var started int
	_ = r.do("RunDetection", func(m *Machine) { started = m.RunDetection() })
	return started
}

// Summary returns the node's current summarized snapshot (nil before the
// first summarization and after Close).
func (r *LiveRuntime) Summary() *snapshot.Summary {
	var s *snapshot.Summary
	_ = r.do("Summary", func(m *Machine) { s = m.Summary() })
	return s
}

// Invoke performs an asynchronous remote invocation of method on target,
// exporting args to the callee; cb (optional) receives the reply on the
// runtime's loop. Invoke returns once the request is on the wire.
func (r *LiveRuntime) Invoke(target ids.GlobalRef, method string, args []ids.GlobalRef, cb ReplyFunc) error {
	var err error
	if derr := r.do("Invoke", func(m *Machine) { err = m.Invoke(target, method, args, cb) }); derr != nil {
		return derr
	}
	return err
}

// AcquireRemote bootstraps possession of a remote reference via the
// CreateScion protocol; cb runs on the runtime's loop once acknowledged.
func (r *LiveRuntime) AcquireRemote(ref ids.GlobalRef, cb func(m Mutator, ok bool)) error {
	var err error
	if derr := r.do("AcquireRemote", func(m *Machine) { err = m.AcquireRemote(ref, cb) }); derr != nil {
		return derr
	}
	return err
}

// Save serializes the node's durable collector state. Typically paired
// with Close: save, close, restart elsewhere with RestoreLiveRuntime.
func (r *LiveRuntime) Save() ([]byte, error) {
	var data []byte
	var err error
	if derr := r.do("Save", func(m *Machine) { data, err = m.Save() }); derr != nil {
		return nil, derr
	}
	return data, err
}
