// Package node assembles one simulated process of the distributed system:
// an object heap, the local garbage collector, the reference-listing tables
// and acyclic DGC, the snapshot summarizer, the cycle detector, and the
// remote-invocation machinery — everything the paper's Rotor/OBIWAN
// implementations instrument, reproduced over a message transport.
//
// A Node is driven from two sides:
//
//   - the mutator: application code allocating objects, mutating references
//     and performing remote invocations (Invoke / builtin methods);
//   - the collector daemons: RunLGC, Summarize and RunDetection, invoked
//     periodically by Tick (or explicitly by tests).
//
// All entry points serialize on one mutex, making the node an actor whose
// messages may arrive from any transport goroutine.
package node

import (
	"fmt"
	"sync"

	"dgc/internal/core"
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/refs"
	"dgc/internal/snapshot"
	"dgc/internal/trace"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// Config tunes one node.
type Config struct {
	// Detector is handed to the cycle detector.
	Detector core.Config
	// CandidateMinAge is the quiescence threshold (in logical ticks) before
	// a scion becomes a cycle candidate.
	CandidateMinAge uint64
	// MaxDetectionsPerRound bounds detections started per RunDetection
	// call; 0 means all eligible candidates.
	MaxDetectionsPerRound int
	// LGCEvery / SnapshotEvery / DetectEvery run the respective daemon
	// every N ticks (0 disables; drive manually).
	LGCEvery      uint64
	SnapshotEvery uint64
	DetectEvery   uint64
	// CallTimeoutTicks expires pending invocations after this many ticks,
	// releasing their pinned references; 0 means never expire.
	CallTimeoutTicks uint64
	// EmptySetRepeats bounds consecutive empty NewSetStubs messages to a
	// former peer; 0 (default) repeats forever, which is what makes scion
	// reclamation tolerate message loss. See refs.AcyclicDGC.
	EmptySetRepeats int
	// Codec, when non-nil, serializes each snapshot before summarization
	// (the paper's disk snapshot); bytes are accounted in Stats. When
	// SnapshotDir is also set, the snapshot is written there.
	Codec       snapshot.Codec
	SnapshotDir string
	// DisableDGC turns off all stub/scion bookkeeping on the invocation
	// path; used by the Table 1 experiment to measure plain RMI.
	DisableDGC bool
	// Trace, when non-nil, receives structured events (collections,
	// summarizations, detections, CDM outcomes, scion lifecycle).
	Trace *trace.Log
}

// Stats counts node activity.
type Stats struct {
	Clock          uint64
	InvokesSent    uint64
	InvokesHandled uint64
	RepliesHandled uint64
	CallsFailed    uint64
	ExportsPending uint64
	ScionsCreated  uint64
	ScionsDropped  uint64 // deleted by NewSetStubs application
	LGCRuns        uint64
	ObjectsSwept   uint64
	Summarizations uint64
	// SummaryCacheHits counts Summarize calls satisfied by the
	// mutation-epoch cache (heap and tables unchanged since the last
	// rebuild, so the existing summary is still exact).
	SummaryCacheHits uint64
	SnapshotBytes    uint64
	StubSetsSent     uint64
	StubSetsApplied  uint64
	CDMsDeduped      uint64 // CDM deliveries that added no new information
	CDMsRaceDropped  uint64 // CDM deliveries conflicting with the merged view
	Detector         core.Stats
}

// Reply is the caller-side result of a remote invocation.
type Reply struct {
	OK      bool
	Err     string
	Returns []ids.GlobalRef
}

// ReplyFunc consumes an invocation result. It is called with the node lock
// held; implementations may use the Mutator passed alongside but must not
// call public Node methods.
type ReplyFunc func(m Mutator, r Reply)

// Method implements a remotely invocable method. It runs with the node lock
// held and receives a Mutator for heap access, the invoked object and the
// imported argument references. Returned references are exported back to
// the caller.
type Method func(m Mutator, self ids.ObjID, args []ids.GlobalRef) []ids.GlobalRef

// Node is one process of the distributed system.
type Node struct {
	mu sync.Mutex

	id       ids.NodeID
	cfg      Config
	heap     *heap.Heap
	table    *refs.Table
	acyclic  *refs.AcyclicDGC
	lgc      *lgc.Collector
	detector *core.Detector
	selector *core.Selector
	summary  *snapshot.Summary
	ep       transport.Endpoint

	clock        uint64
	snapVersion  uint64
	detectCursor uint64 // round-robin offset for bounded detection rounds

	// sumHeapGen/sumTableGen record the heap and table mutation epochs at
	// the last summary rebuild; while both still match, Summarize is a
	// cache hit and skips re-encoding and re-summarizing.
	sumHeapGen  uint64
	sumTableGen uint64

	methods map[string]Method

	nextCallID   uint64
	pendingCalls map[uint64]*pendingCall

	nextExportID   uint64
	pendingExports map[uint64]*pendingExport

	// pins counts in-flight references that must keep their stubs across
	// local collections (exported args, pending call targets).
	pins map[ids.GlobalRef]int

	// cdmAcc accumulates, per detection, the union of every CDM algebra
	// delivered to this node together with the scions it arrived along
	// (see handleCDM). cdmAborted marks detections whose accumulated view
	// hit a counter conflict. Both are droppable cache state, cleared on
	// each summarization and when the cap is hit.
	cdmAcc     map[core.DetectionID]*detAcc
	cdmAborted map[core.DetectionID]struct{}

	stats Stats
}

// detAcc is one detection's accumulated state at this node.
type detAcc struct {
	alg    core.Alg
	alongs map[ids.RefID]struct{} // scions this detection arrived along
	// alongsSorted caches the alongs set in canonical order; maintained
	// incrementally so each delivery iterates without rebuilding it.
	alongsSorted []ids.RefID
}

// cdmAccCap bounds the per-detection accumulator cache; overflowing flushes
// it, which only costs repeated work.
const cdmAccCap = 1 << 10

type pendingCall struct {
	target   ids.GlobalRef
	pinned   []ids.GlobalRef
	cb       ReplyFunc
	deadline uint64 // clock tick after which the call expires (0 = never)
}

type pendingExport struct {
	waiting int // outstanding CreateScion acks
	failed  bool
	errMsg  string
	ready   func(ok bool, errMsg string) // continuation under lock
}

// New assembles a node over the given endpoint and installs its message
// handler. The endpoint must not deliver messages before New returns.
func New(id ids.NodeID, ep transport.Endpoint, cfg Config) *Node {
	n := &Node{
		id:             id,
		cfg:            cfg,
		heap:           heap.New(id),
		table:          refs.NewTable(id),
		ep:             ep,
		methods:        make(map[string]Method),
		pendingCalls:   make(map[uint64]*pendingCall),
		pendingExports: make(map[uint64]*pendingExport),
		pins:           make(map[ids.GlobalRef]int),
		cdmAcc:         make(map[core.DetectionID]*detAcc),
		cdmAborted:     make(map[core.DetectionID]struct{}),
	}
	n.acyclic = refs.NewAcyclicDGC(n.table)
	n.acyclic.EmptySetRepeats = cfg.EmptySetRepeats
	n.lgc = lgc.New(n.heap, n.table)
	n.selector = core.NewSelector(cfg.CandidateMinAge)
	n.detector = core.NewDetector(id, cfg.Detector, (*detectorActions)(n))
	registerBuiltins(n)
	if ep != nil {
		ep.SetHandler(n.HandleMessage)
	}
	return n
}

// ID returns the node identifier.
func (n *Node) ID() ids.NodeID { return n.id }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.Clock = n.clock
	s.Detector = n.detector.Stats
	s.ExportsPending = uint64(len(n.pendingExports))
	return s
}

// NumObjects returns the current heap size.
func (n *Node) NumObjects() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.heap.Len()
}

// NumScions and NumStubs expose table sizes.
func (n *Node) NumScions() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table.NumScions()
}

// NumStubs returns the number of outgoing-reference stubs.
func (n *Node) NumStubs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table.NumStubs()
}

// CloneHeap returns a deep copy of the node's heap, for ground-truth
// analysis by harnesses and tests.
func (n *Node) CloneHeap() *heap.Heap {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.heap.Clone()
}

// ScionRefs returns the node's current scions as reference identifiers, in
// canonical order.
func (n *Node) ScionRefs() []ids.RefID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ids.RefID, 0, n.table.NumScions())
	for _, sc := range n.table.Scions() {
		out = append(out, sc.RefID(n.id))
	}
	return out
}

// RegisterMethod installs (or replaces) a remotely invocable method.
func (n *Node) RegisterMethod(name string, m Method) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.methods[name] = m
}

// With runs fn under the node lock with a Mutator: the scenario-building and
// method-handler entry point for direct heap manipulation.
func (n *Node) With(fn func(m Mutator)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(Mutator{n: n})
}

// EnsureScionFor records an incoming reference from holder to the local
// object obj: the owner half of a reference grant. Exposed for harness
// bootstrap (cluster scenario construction); the protocol path is
// CreateScion/Ack.
func (n *Node) EnsureScionFor(holder ids.NodeID, obj ids.ObjID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.heap.Contains(obj) {
		return n.errf("EnsureScionFor: no object %d", obj)
	}
	if _, created := n.table.EnsureScion(holder, obj); created {
		n.stats.ScionsCreated++
	}
	n.selector.Touch(ids.RefID{Src: holder, Dst: ids.GlobalRef{Node: n.id, Obj: obj}}, n.clock)
	return nil
}

// HoldRemote makes the local object from hold the remote reference target,
// materializing the stub: the holder half of a reference grant. The caller
// must have arranged the owner's scion first (EnsureScionFor), preserving
// scion-before-stub.
func (n *Node) HoldRemote(from ids.ObjID, target ids.GlobalRef) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if target.Node == n.id {
		return n.heap.AddLocalRef(from, target.Obj)
	}
	if err := n.heap.AddRemoteRef(from, target); err != nil {
		return err
	}
	n.table.EnsureStub(target)
	return nil
}

// pin/unpin manage the in-flight reference set.
func (n *Node) pin(ref ids.GlobalRef) {
	if ref.Node == n.id {
		return // own objects are protected by scions/roots, not pins
	}
	n.pins[ref]++
	// Materialize the stub immediately so the reference is valid.
	n.table.EnsureStub(ref)
}

func (n *Node) unpin(ref ids.GlobalRef) {
	if ref.Node == n.id {
		return
	}
	if c := n.pins[ref]; c <= 1 {
		delete(n.pins, ref)
	} else {
		n.pins[ref] = c - 1
	}
}

func (n *Node) pinnedRefs() []ids.GlobalRef {
	out := make([]ids.GlobalRef, 0, len(n.pins))
	for r := range n.pins {
		out = append(out, r)
	}
	ids.SortGlobalRefs(out)
	return out
}

// withStage runs fn with the endpoint's send staging bracketed around it,
// when the endpoint supports staging (the TCP transport: a burst of sends —
// a GC tick's CDMs, a CDM fan-out — then goes out as one batch frame per
// peer). The inproc endpoint deliberately does not implement Stager; its
// staging belongs to the cluster scheduler, which brackets whole phases on
// the Network itself. fn must take the node lock itself: staged flushing
// happens after fn returns, outside the lock, so handlers running in the
// flush path can re-enter the node.
func (n *Node) withStage(fn func()) {
	if st, ok := n.ep.(transport.Stager); ok {
		st.BeginStage()
		defer st.FlushStage(nil)
	}
	fn()
}

func (n *Node) send(to ids.NodeID, msg wire.Message) {
	if n.ep == nil {
		return
	}
	// Errors are deliberately ignored: every protocol layer above tolerates
	// message loss.
	_ = n.ep.Send(to, msg)
}

// fail is an internal invariant violation reporter.
func (n *Node) errf(format string, args ...any) error {
	return fmt.Errorf("node %s: %s", n.id, fmt.Sprintf(format, args...))
}

// emit records a trace event when tracing is configured.
func (n *Node) emit(kind trace.Kind, format string, args ...any) {
	if n.cfg.Trace != nil {
		n.cfg.Trace.Emit(n.id, kind, format, args...)
	}
}
