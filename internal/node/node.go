// Package node assembles one process of the distributed system: an object
// heap, the local garbage collector, the reference-listing tables and
// acyclic DGC, the snapshot summarizer, the cycle detector, and the
// remote-invocation machinery — everything the paper's Rotor/OBIWAN
// implementations instrument, reproduced over a message transport.
//
// The package is split functional-core / imperative-shell:
//
//   - Machine is the pure protocol state machine. Every input — a mutator
//     operation, an incoming wire message, a daemon run, a clock advance —
//     mutates machine state and accumulates explicit effects (outbound
//     messages) instead of touching a transport. Machines are driven
//     single-threaded and are trivially testable without any network.
//   - Node (this file) is the mutex driver: it serializes inputs from any
//     goroutine, drains the machine's effects and transmits them after the
//     lock is released. The deterministic cluster simulator drives Nodes in
//     its canonical schedule; because effects are transmitted in exactly
//     the order the machine produced them, schedules, fabric counters and
//     the fault-RNG stream are bit-identical to the historical big-lock
//     implementation.
//   - LiveRuntime (runtime.go) is the wall-clock driver: a mailbox
//     goroutine per node with bounded queueing and periodic daemon tickers,
//     for real deployments.
package node

import (
	"sync"

	"dgc/internal/core"
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/membership"
	"dgc/internal/obs"
	"dgc/internal/snapshot"
	"dgc/internal/trace"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// Config tunes one node.
type Config struct {
	// Detector is handed to the cycle detector.
	Detector core.Config
	// CandidateMinAge is the quiescence threshold (in logical ticks) before
	// a scion becomes a cycle candidate.
	CandidateMinAge uint64
	// MaxDetectionsPerRound bounds detections started per RunDetection
	// call; 0 means all eligible candidates.
	MaxDetectionsPerRound int
	// BatchDetection groups the CDM traffic of one machine input per
	// outgoing edge: every detection whose derivation exits via the same
	// reference travels as one section of one wire.BatchCDM instead of one
	// CDM each, and receivers split/drop/forward sub-batches per edge the
	// same way. It also enables the detector's eager-complete check (a
	// closing derivation is declared locally instead of fanning out one
	// more hop). ON by default (nil means on, now that the batched path has
	// soaked in the live binaries); set to Bool(false) for the unbatched
	// path, which remains the property-test reference and keeps simulation
	// fingerprints byte-identical (the cluster simulator pins it off).
	BatchDetection *bool
	// AggregateDetection enables hierarchical match aggregation on top of
	// batching: a node whose processing of a detection ends without
	// forwarding returns its accumulated partial match to the detection's
	// origin, which merges the fragments and re-launches only the
	// unresolved residue. Implies the same opt-in caveats as
	// BatchDetection.
	AggregateDetection bool
	// LGCEvery / SnapshotEvery / DetectEvery run the respective daemon
	// every N ticks (0 disables; drive manually).
	LGCEvery      uint64
	SnapshotEvery uint64
	DetectEvery   uint64
	// CallTimeoutTicks expires pending invocations after this many ticks,
	// releasing their pinned references; 0 means never expire.
	CallTimeoutTicks uint64
	// EmptySetRepeats bounds consecutive empty NewSetStubs messages to a
	// former peer; 0 (default) repeats forever, which is what makes scion
	// reclamation tolerate message loss. See refs.AcyclicDGC.
	EmptySetRepeats int
	// Codec, when non-nil, serializes each snapshot before summarization
	// (the paper's disk snapshot); bytes are accounted in Stats. When
	// SnapshotDir is also set, the snapshot is written there.
	Codec       snapshot.Codec
	SnapshotDir string
	// DisableDGC turns off all stub/scion bookkeeping on the invocation
	// path; used by the Table 1 experiment to measure plain RMI.
	DisableDGC bool
	// Membership, when non-nil, enables the elastic cluster directory: a
	// gossip-propagated member table with failure detection, lease-guarded
	// dead-node scion reclamation and drain handoffs (see internal/membership
	// and DESIGN.md §14). Nil keeps the directory implicitly static — the
	// deterministic simulator's mode.
	Membership *membership.Config
	// Trace, when non-nil, receives structured events (collections,
	// summarizations, detections, CDM outcomes, scion lifecycle).
	Trace *trace.Log
	// Metrics, when non-nil, is the observability set this node's registry
	// is created in (labeled node="<id>"); serve it with obs.NewHTTPHandler.
	// When nil the node still instruments itself into a private registry, so
	// no code path needs a guard — the samples are simply never scraped.
	Metrics *obs.Set
}

// Bool returns a pointer to v, for the tri-state Config fields.
func Bool(v bool) *bool { return &v }

// batchDetectionOn resolves the BatchDetection tri-state: nil means on.
func (c *Config) batchDetectionOn() bool {
	return c.BatchDetection == nil || *c.BatchDetection
}

// Stats counts node activity.
type Stats struct {
	Clock          uint64
	InvokesSent    uint64
	InvokesHandled uint64
	RepliesHandled uint64
	CallsFailed    uint64
	ExportsPending uint64
	ScionsCreated  uint64
	ScionsDropped  uint64 // deleted by NewSetStubs application
	LGCRuns        uint64
	ObjectsSwept   uint64
	Summarizations uint64
	// SummaryCacheHits counts Summarize calls satisfied by the
	// mutation-epoch cache (heap and tables unchanged since the last
	// rebuild, so the existing summary is still exact).
	SummaryCacheHits uint64
	SnapshotBytes    uint64
	StubSetsSent     uint64
	StubSetsApplied  uint64
	CDMsDeduped      uint64 // CDM deliveries that added no new information
	CDMsRaceDropped  uint64 // CDM deliveries conflicting with the merged view
	// CDMMsgsSent counts actual detection-traffic messages handed to the
	// transport: each CDM is one, each BatchCDM is one regardless of its
	// section count. Equals Detector.CDMsSent when batching is off; the
	// batched-vs-unbatched traffic comparison in BENCH_detect.json reads
	// this field.
	CDMMsgsSent uint64
	// BatchCDMsSent / BatchSectionsSent count multi-section messages and
	// the sections they carried (forward direction only, returns excluded).
	BatchCDMsSent     uint64
	BatchSectionsSent uint64
	// PartialReturns counts aggregation-mode partial results merged at this
	// node as the detection origin; DetectionRelaunches counts the residue
	// re-expansions those merges triggered.
	PartialReturns      uint64
	DetectionRelaunches uint64
	Detector            core.Stats
}

// Reply is the caller-side result of a remote invocation.
type Reply struct {
	OK      bool
	Err     string
	Returns []ids.GlobalRef
}

// ReplyFunc consumes an invocation result. It is called inside the machine;
// implementations may use the Mutator passed alongside but must not call
// public Node (or LiveRuntime) methods — the re-entrancy guard panics on
// violations, which would otherwise deadlock.
type ReplyFunc func(m Mutator, r Reply)

// Method implements a remotely invocable method. It runs inside the machine
// and receives a Mutator for heap access, the invoked object and the
// imported argument references. Returned references are exported back to
// the caller. Like ReplyFunc, it must not re-enter public driver methods.
type Method func(m Mutator, self ids.ObjID, args []ids.GlobalRef) []ids.GlobalRef

// Node is the mutex driver over a Machine: one process of the distributed
// system with a blocking, goroutine-safe API. Inputs serialize on one
// mutex; the machine's outbound-message effects are transmitted on the
// caller's goroutine after the lock is released, so the transport is never
// entered under the lock.
type Node struct {
	mu   sync.Mutex
	mach *Machine
	ep   transport.Endpoint
}

// New assembles a node over the given endpoint and installs its message
// handler. The endpoint must not deliver messages before New returns.
func New(id ids.NodeID, ep transport.Endpoint, cfg Config) *Node {
	n := &Node{mach: NewMachine(id, cfg), ep: ep}
	if ep != nil {
		ep.SetHandler(n.HandleMessage)
	}
	return n
}

// Machine exposes the underlying protocol machine. The caller must not use
// it concurrently with the node's own entry points; it is meant for
// drivers and tests that take over scheduling entirely.
func (n *Node) Machine() *Machine { return n.mach }

// step runs one machine input under the node lock and transmits the
// resulting effects after the lock is released.
func (n *Node) step(entry string, fn func(m *Machine)) {
	n.mach.guardReentry(entry)
	n.mu.Lock()
	fn(n.mach)
	outs := n.mach.TakeEffects()
	n.mu.Unlock()
	n.transmit(outs)
}

// transmit performs the machine's effect sends, in order, bracketing
// multi-message bursts with transport staging when available (the TCP
// endpoint ships them as one batch frame per peer). Send errors are
// deliberately ignored: every protocol layer above tolerates message loss.
func (n *Node) transmit(outs []transport.Envelope) {
	if len(outs) == 0 || n.ep == nil {
		return
	}
	if st, ok := n.ep.(transport.Stager); ok && len(outs) > 1 {
		st.BeginStage()
		defer st.FlushStage()
	}
	for _, o := range outs {
		_ = n.ep.Send(o.To, o.Msg)
	}
}

// HandleMessage is the transport delivery entry point: it feeds the message
// to the machine and returns the machine's response sends for the transport
// to transmit (the effect contract of transport.Handler).
func (n *Node) HandleMessage(from ids.NodeID, msg wire.Message) []transport.Envelope {
	n.mach.guardReentry("HandleMessage")
	n.mu.Lock()
	n.mach.HandleMessage(from, msg)
	outs := n.mach.TakeEffects()
	n.mu.Unlock()
	return outs
}

// ID returns the node identifier.
func (n *Node) ID() ids.NodeID { return n.mach.ID() }

// Journal returns the node's event journal (nil when tracing is not
// configured). The journal is concurrent-safe; no lock is needed.
func (n *Node) Journal() *trace.Log { return n.mach.Journal() }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats {
	var s Stats
	n.step("Stats", func(m *Machine) { s = m.Stats() })
	return s
}

// NumObjects returns the current heap size.
func (n *Node) NumObjects() int {
	var v int
	n.step("NumObjects", func(m *Machine) { v = m.NumObjects() })
	return v
}

// NumScions returns the number of incoming-reference scions.
func (n *Node) NumScions() int {
	var v int
	n.step("NumScions", func(m *Machine) { v = m.NumScions() })
	return v
}

// NumStubs returns the number of outgoing-reference stubs.
func (n *Node) NumStubs() int {
	var v int
	n.step("NumStubs", func(m *Machine) { v = m.NumStubs() })
	return v
}

// CloneHeap returns a deep copy of the node's heap, for ground-truth
// analysis by harnesses and tests.
func (n *Node) CloneHeap() *heap.Heap {
	var h *heap.Heap
	n.step("CloneHeap", func(m *Machine) { h = m.CloneHeap() })
	return h
}

// ScionRefs returns the node's current scions as reference identifiers, in
// canonical order.
func (n *Node) ScionRefs() []ids.RefID {
	var out []ids.RefID
	n.step("ScionRefs", func(m *Machine) { out = m.ScionRefs() })
	return out
}

// RegisterMethod installs (or replaces) a remotely invocable method.
func (n *Node) RegisterMethod(name string, fn Method) {
	n.step("RegisterMethod", func(m *Machine) { m.RegisterMethod(name, fn) })
}

// With runs fn under the node lock with a Mutator: the scenario-building and
// method-handler entry point for direct heap manipulation.
func (n *Node) With(fn func(m Mutator)) {
	n.step("With", func(m *Machine) { m.With(fn) })
}

// EnsureScionFor records an incoming reference from holder to the local
// object obj: the owner half of a reference grant (harness bootstrap; the
// protocol path is CreateScion/Ack).
func (n *Node) EnsureScionFor(holder ids.NodeID, obj ids.ObjID) error {
	var err error
	n.step("EnsureScionFor", func(m *Machine) { err = m.EnsureScionFor(holder, obj) })
	return err
}

// HoldRemote makes the local object from hold the remote reference target,
// materializing the stub: the holder half of a reference grant. The caller
// must have arranged the owner's scion first (EnsureScionFor), preserving
// scion-before-stub.
func (n *Node) HoldRemote(from ids.ObjID, target ids.GlobalRef) error {
	var err error
	n.step("HoldRemote", func(m *Machine) { err = m.HoldRemote(from, target) })
	return err
}

// Tick advances the node's logical clock by one, expires timed-out calls
// and runs the periodic daemons configured in Config.
func (n *Node) Tick() {
	n.step("Tick", func(m *Machine) { m.Tick() })
}

// Clock returns the node's logical time.
func (n *Node) Clock() uint64 {
	var v uint64
	n.step("Clock", func(m *Machine) { v = m.Clock() })
	return v
}

// RunLGC performs one local collection and emits NewSetStubs messages.
func (n *Node) RunLGC() lgc.Result {
	var res lgc.Result
	n.step("RunLGC", func(m *Machine) { res = m.RunLGC() })
	return res
}

// Summarize takes a snapshot of the object graph and rebuilds the node's
// summarized graph description (§3 "Graph Summarization").
func (n *Node) Summarize() error {
	var err error
	n.step("Summarize", func(m *Machine) { err = m.Summarize() })
	return err
}

// RunDetection nominates cycle candidates from the current summary and
// starts detections, up to Config.MaxDetectionsPerRound. It returns the
// number started.
func (n *Node) RunDetection() int {
	var started int
	n.step("RunDetection", func(m *Machine) { started = m.RunDetection() })
	return started
}

// Summary returns the node's current summarized snapshot (nil before the
// first summarization). The summary is immutable; callers may read it
// without holding the node lock.
func (n *Node) Summary() *snapshot.Summary {
	var s *snapshot.Summary
	n.step("Summary", func(m *Machine) { s = m.summary })
	return s
}

// Invoke performs an asynchronous remote invocation of method on target,
// exporting args to the callee. cb (optional) receives the reply inside the
// machine. Invoke returns an error only for immediately detectable misuse;
// transport failures surface as a failed or expired reply.
func (n *Node) Invoke(target ids.GlobalRef, method string, args []ids.GlobalRef, cb ReplyFunc) error {
	var err error
	n.step("Invoke", func(m *Machine) { err = m.Invoke(target, method, args, cb) })
	return err
}

// AcquireRemote bootstraps possession of a remote reference: it runs the
// CreateScion protocol with the owner on this node's behalf and, once
// acknowledged, materializes a stub and invokes cb. See Machine.AcquireRemote.
func (n *Node) AcquireRemote(ref ids.GlobalRef, cb func(m Mutator, ok bool)) error {
	var err error
	n.step("AcquireRemote", func(m *Machine) { err = m.AcquireRemote(ref, cb) })
	return err
}

// Members returns the node's membership directory in canonical order (nil
// when Config.Membership is nil).
func (n *Node) Members() []membership.Member {
	var out []membership.Member
	n.step("Members", func(m *Machine) { out = m.Members() })
	return out
}

// AddMember seeds a peer into the membership directory as joining.
func (n *Node) AddMember(node ids.NodeID, addr string) error {
	var err error
	n.step("AddMember", func(m *Machine) { err = m.AddMember(node, addr) })
	return err
}

// BeginDrain starts this node's voluntary departure: its exported references
// are handed to their owners and the node gossips itself draining, then dead.
func (n *Node) BeginDrain() error {
	var err error
	n.step("BeginDrain", func(m *Machine) { err = m.BeginDrain() })
	return err
}

// Save serializes the node's durable collector state.
func (n *Node) Save() ([]byte, error) {
	var data []byte
	var err error
	n.step("Save", func(m *Machine) { data, err = m.Save() })
	return data, err
}

// Restore reconstructs a node from state produced by Save, attaching it to
// the given endpoint with the given configuration. The node resumes as if
// it had merely been slow: peers' reference-listing state remains valid,
// in-flight detections involving it abort safely and restart later.
func Restore(ep transport.Endpoint, cfg Config, data []byte) (*Node, error) {
	mach, err := RestoreMachine(cfg, data)
	if err != nil {
		return nil, err
	}
	n := &Node{mach: mach, ep: ep}
	if ep != nil {
		ep.SetHandler(n.HandleMessage)
	}
	return n, nil
}
