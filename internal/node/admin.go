package node

import (
	"fmt"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/trace"
)

// Operator-plane entry points: the typed payloads and forced-action inputs
// behind internal/admin's versioned JSON API. Like DebugSnapshot, nothing in
// the protocol reads them — they are the control surface dgcctl drives.

// TableDump is a point-in-time listing of one node's reference tables, the
// /api/v1/tables payload: every scion (owner side of an incoming reference)
// and every stub (holder side of an outgoing reference), in canonical order.
type TableDump struct {
	Node   string       `json:"node"`
	Scions []ScionEntry `json:"scions"`
	Stubs  []StubEntry  `json:"stubs"`
}

// ScionEntry is one incoming-reference record in a TableDump. Ref is the
// RefID rendering ("SRC->OBJ@OWNER") accepted back by force-detect.
type ScionEntry struct {
	Src ids.NodeID `json:"src"`
	Obj ids.ObjID  `json:"obj"`
	IC  uint64     `json:"ic"`
	Ref string     `json:"ref"`
}

// StubEntry is one outgoing-reference record in a TableDump.
type StubEntry struct {
	Node ids.NodeID `json:"node"`
	Obj  ids.ObjID  `json:"obj"`
	IC   uint64     `json:"ic"`
	Ref  string     `json:"ref"`
}

// TableDump captures the machine's current reference tables.
func (m *Machine) TableDump() TableDump {
	d := TableDump{
		Node:   string(m.id),
		Scions: make([]ScionEntry, 0, m.table.NumScions()),
		Stubs:  make([]StubEntry, 0, m.table.NumStubs()),
	}
	for _, sc := range m.table.Scions() {
		d.Scions = append(d.Scions, ScionEntry{
			Src: sc.Src, Obj: sc.Obj, IC: sc.IC,
			Ref: sc.RefID(m.id).String(),
		})
	}
	for _, st := range m.table.Stubs() {
		d.Stubs = append(d.Stubs, StubEntry{
			Node: st.Target.Node, Obj: st.Target.Obj, IC: st.IC,
			Ref: ids.RefID{Src: m.id, Dst: st.Target}.String(),
		})
	}
	return d
}

// TableDump captures the node's current reference tables.
func (n *Node) TableDump() TableDump {
	var d TableDump
	n.step("TableDump", func(m *Machine) { d = m.TableDump() })
	return d
}

// TableDump captures the runtime's current reference tables (zero value
// after Close).
func (r *LiveRuntime) TableDump() TableDump {
	var d TableDump
	_ = r.do("TableDump", func(m *Machine) { d = m.TableDump() })
	return d
}

// ForceDetectResult reports one operator-forced detection attempt.
type ForceDetectResult struct {
	Origin  string `json:"origin"`
	Seq     uint64 `json:"seq"`
	TraceID string `json:"trace_id"` // %016x of the causal trace id
	// Outcome is the detector's verdict on the first derivation: "forwarded",
	// "cycle-found", "branch-ended", "dropped" or "aborted".
	Outcome string `json:"outcome"`
	// Forwarded counts CDM derivations sent on the first hop.
	Forwarded int `json:"forwarded"`
	// GarbageScions lists the proven cycle's scions when Outcome is
	// "cycle-found".
	GarbageScions []string `json:"garbage_scions,omitempty"`
}

// ForceDetect starts a cycle detection at the given scion immediately,
// bypassing the candidate selector's quiescence aging (the operator asked).
// The summary is refreshed first so the detection sees current state. The
// candidate must name a scion owned by this node; detections that cannot
// make a first hop report their outcome without sending anything.
func (m *Machine) ForceDetect(candidate ids.RefID) (ForceDetectResult, error) {
	if candidate.Dst.Node != m.id {
		return ForceDetectResult{}, m.errf("ForceDetect: %s is not owned here", candidate)
	}
	if err := m.Summarize(); err != nil {
		return ForceDetectResult{}, err
	}
	m.beginCDMBatch()
	det, out := m.detector.StartDetection(m.summary, candidate)
	res := ForceDetectResult{
		Origin:    string(det.Origin),
		Seq:       det.Seq,
		TraceID:   fmt.Sprintf("%016x", core.TraceIDFor(det)),
		Outcome:   out.Kind.String(),
		Forwarded: out.Forwarded,
	}
	tid := core.TraceIDFor(det)
	switch out.Kind {
	case core.OutcomeForwarded:
		m.met.DetectionsStarted.Inc()
		m.met.CDMsSent.Add(uint64(out.Forwarded))
		m.trackDetection(det, tid)
		m.emitT(trace.KindDetectionStart, tid, "det=%s/%d candidate=%s forced", det.Origin, det.Seq, candidate)
	case core.OutcomeCycleFound:
		m.met.CyclesFound.Inc()
		for _, ref := range out.GarbageScions {
			res.GarbageScions = append(res.GarbageScions, ref.String())
		}
		m.emitT(trace.KindCycleFound, tid, "det=%s/%d scions=%d forced",
			det.Origin, det.Seq, len(out.GarbageScions))
		m.emitT(trace.KindDetectionEnd, tid, "det=%s/%d outcome=%s", det.Origin, det.Seq, out.Kind)
	}
	m.flushCDMBatch()
	m.syncGauges()
	return res, nil
}

// ForceDetect starts a detection at the given scion immediately.
func (n *Node) ForceDetect(candidate ids.RefID) (ForceDetectResult, error) {
	var res ForceDetectResult
	var err error
	n.step("ForceDetect", func(m *Machine) { res, err = m.ForceDetect(candidate) })
	return res, err
}

// ForceDetect starts a detection at the given scion immediately
// (ErrRuntimeClosed after Close).
func (r *LiveRuntime) ForceDetect(candidate ids.RefID) (ForceDetectResult, error) {
	var res ForceDetectResult
	var err error
	if derr := r.do("ForceDetect", func(m *Machine) { res, err = m.ForceDetect(candidate) }); derr != nil {
		return res, derr
	}
	return res, err
}
