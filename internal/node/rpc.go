package node

import (
	"dgc/internal/ids"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// Remote invocation with reference export/import.
//
// The protocol preserves the reference-listing safety invariant
// scion-before-stub: before a reference is handed to a new holder, its
// owner's scion for that holder exists. Exports of self-owned references
// create the scion locally; third-party exports run the CreateScion/Ack
// sub-protocol with the owner and delay the invocation until every ack has
// arrived. While exports are in flight the references are pinned so the
// local collector cannot drop the exporter's stubs (the paper's remoting
// instrumentation gets this for free from the thread stack).

// Invoke performs an asynchronous remote invocation of method on target,
// exporting args to the callee. cb (optional) receives the reply under the
// node lock. Invoke returns an error only for immediately detectable
// misuse; transport failures surface as a failed or expired reply.
func (n *Node) Invoke(target ids.GlobalRef, method string, args []ids.GlobalRef, cb ReplyFunc) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.invokeLocked(target, method, args, cb)
}

func (n *Node) invokeLocked(target ids.GlobalRef, method string, args []ids.GlobalRef, cb ReplyFunc) error {
	if target.Node == n.id {
		return n.errf("Invoke: target %v is local", target)
	}
	if !n.cfg.DisableDGC {
		if n.table.Stub(target) == nil && n.pins[target] == 0 {
			return n.errf("Invoke: reference %v not held by this process", target)
		}
		for _, a := range args {
			if a.Node == n.id {
				if !n.heap.Contains(a.Obj) {
					return n.errf("Invoke: exported object %d does not exist", a.Obj)
				}
				continue
			}
			if n.table.Stub(a) == nil && n.pins[a] == 0 {
				return n.errf("Invoke: exported reference %v not held", a)
			}
		}
	}

	// Pin the target and remote args until the reply (or expiry).
	pinned := make([]ids.GlobalRef, 0, 1+len(args))
	pinRef := func(r ids.GlobalRef) {
		if r.Node != n.id {
			n.pin(r)
			pinned = append(pinned, r)
		}
	}
	if !n.cfg.DisableDGC {
		pinRef(target)
		for _, a := range args {
			pinRef(a)
		}
	}

	n.nextCallID++
	callID := n.nextCallID
	argsCopy := append([]ids.GlobalRef(nil), args...)

	send := func(ok bool, errMsg string) {
		if !ok {
			for _, r := range pinned {
				n.unpin(r)
			}
			n.stats.CallsFailed++
			if cb != nil {
				cb(Mutator{n: n}, Reply{OK: false, Err: "export failed: " + errMsg})
			}
			return
		}
		var stubIC uint64
		if !n.cfg.DisableDGC {
			if ic, err := n.table.BumpStubIC(target); err == nil {
				stubIC = ic
			}
		}
		pc := &pendingCall{target: target, pinned: pinned, cb: cb}
		if n.cfg.CallTimeoutTicks > 0 {
			pc.deadline = n.clock + n.cfg.CallTimeoutTicks
		}
		n.pendingCalls[callID] = pc
		n.stats.InvokesSent++
		n.send(target.Node, &wire.InvokeRequest{
			CallID: callID,
			From:   n.id,
			Target: target,
			Method: method,
			Args:   argsCopy,
			StubIC: stubIC,
		})
	}

	if n.cfg.DisableDGC {
		send(true, "")
		return nil
	}
	n.exportRefs(argsCopy, target.Node, send)
	return nil
}

// exportRefs ensures scions exist for every reference in refs on behalf of
// the new holder, then calls ready under the node lock. Self-owned
// references get their scions synchronously; third-party references go
// through CreateScion/Ack.
//
// Copying an existing remote reference counts as mutator activity on it:
// the exporter bumps its stub-side counter here and the owner bumps the
// matching scion when it learns of the copy (in handleCreateScion for
// third-party exports, in handleInvokeRequest/-Reply for references owned
// by the receiving end). Without this, a root migration performed purely by
// reference copying would slip past the §3.2 barrier ("there have been
// remote invocations, and possibly reference copying, along the CDM-Graph",
// safety rule 3).
func (n *Node) exportRefs(refs []ids.GlobalRef, holder ids.NodeID, ready func(ok bool, errMsg string)) {
	var remoteOwners []ids.GlobalRef
	for _, r := range refs {
		switch r.Node {
		case n.id:
			// We own the object: a brand-new reference, not a copy. Create
			// the scion directly.
			if _, created := n.table.EnsureScion(holder, r.Obj); created {
				n.stats.ScionsCreated++
			}
			n.selector.Touch(ids.RefID{Src: holder, Dst: r}, n.clock)
		case holder:
			// The holder owns it; importing turns it into a local ref.
			// Still a copy of OUR reference to it: bump the stub side (the
			// holder bumps its scion when the request/reply arrives).
			if _, err := n.table.BumpStubIC(r); err != nil {
				n.table.EnsureStub(r) // pinned-only reference: materialize
				_, _ = n.table.BumpStubIC(r)
			}
		default:
			if _, err := n.table.BumpStubIC(r); err != nil {
				n.table.EnsureStub(r)
				_, _ = n.table.BumpStubIC(r)
			}
			remoteOwners = append(remoteOwners, r)
		}
	}
	if len(remoteOwners) == 0 {
		ready(true, "")
		return
	}
	n.nextExportID++
	exportID := n.nextExportID
	n.pendingExports[exportID] = &pendingExport{waiting: len(remoteOwners), ready: ready}
	for _, r := range remoteOwners {
		n.send(r.Node, &wire.CreateScion{
			ExportID: exportID,
			From:     n.id,
			Holder:   holder,
			Obj:      r.Obj,
		})
	}
}

// AcquireRemote bootstraps possession of a remote reference: it runs the
// CreateScion protocol with the owner on this node's behalf and, once
// acknowledged, materializes a stub and invokes cb. This models an external
// name service handing out references (the way the paper's OBIWAN clients
// obtain their first proxy). The acquired reference is pinned for the
// duration of cb; store it somewhere reachable or it will be collected.
func (n *Node) AcquireRemote(ref ids.GlobalRef, cb func(m Mutator, ok bool)) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ref.Node == n.id {
		return n.errf("AcquireRemote: %v is local", ref)
	}
	n.nextExportID++
	exportID := n.nextExportID
	n.pin(ref)
	n.pendingExports[exportID] = &pendingExport{
		waiting: 1,
		ready: func(ok bool, _ string) {
			if ok {
				n.table.EnsureStub(ref)
			}
			if cb != nil {
				cb(Mutator{n: n}, ok)
			}
			n.unpin(ref)
		},
	}
	n.send(ref.Node, &wire.CreateScion{
		ExportID: exportID,
		From:     n.id,
		Holder:   n.id,
		Obj:      ref.Obj,
	})
	return nil
}

// handleInvokeRequest executes an incoming invocation. Caller holds the lock.
func (n *Node) handleInvokeRequest(msg *wire.InvokeRequest) {
	n.stats.InvokesHandled++
	n.emit(trace.KindInvoke, "from=%s target=%d method=%s args=%d",
		msg.From, msg.Target.Obj, msg.Method, len(msg.Args))
	reply := &wire.InvokeReply{CallID: msg.CallID, From: n.id, Target: msg.Target}

	if !n.cfg.DisableDGC {
		// The caller held a stub, so our scion exists (create it defensively
		// if a mixed-configuration caller skipped the protocol), and the
		// invocation bumps its counter (§3.2).
		sc, created := n.table.EnsureScion(msg.From, msg.Target.Obj)
		if created {
			n.stats.ScionsCreated++
		}
		sc.IC++
		n.selector.Touch(ids.RefID{Src: msg.From, Dst: msg.Target}, n.clock)
	}

	if !n.heap.Contains(msg.Target.Obj) {
		reply.Err = "no such object"
		n.send(msg.From, reply)
		return
	}
	handler, ok := n.methods[msg.Method]
	if !ok {
		reply.Err = "no such method: " + msg.Method
		n.send(msg.From, reply)
		return
	}

	// Import argument references: materialize stubs for refs owned
	// elsewhere (their scions were created by the exporter). Arguments WE
	// own were reference copies of the caller's stub to them: bump the
	// matching scion-side counter (the caller bumped its stub side in
	// exportRefs).
	if !n.cfg.DisableDGC {
		for _, a := range msg.Args {
			if a.Node != n.id {
				n.table.EnsureStub(a)
				continue
			}
			if sc := n.table.Scion(msg.From, a.Obj); sc != nil {
				sc.IC++
				n.selector.Touch(ids.RefID{Src: msg.From, Dst: a}, n.clock)
			}
		}
	}

	returns := handler(Mutator{n: n}, msg.Target.Obj, msg.Args)
	reply.OK = true
	reply.Returns = returns

	finish := func(ok bool, errMsg string) {
		if !ok {
			reply.OK = false
			reply.Err = "return export failed: " + errMsg
			reply.Returns = nil
		}
		if !n.cfg.DisableDGC {
			// The reply travels back through the same reference: bump the
			// scion-side counter and piggy-back it.
			if sc := n.table.Scion(msg.From, msg.Target.Obj); sc != nil {
				sc.IC++
				reply.ScionIC = sc.IC
			}
		}
		n.send(msg.From, reply)
	}

	if n.cfg.DisableDGC || len(returns) == 0 {
		finish(true, "")
		return
	}
	// Pin remote returns until their scions are confirmed.
	var pinned []ids.GlobalRef
	for _, r := range returns {
		if r.Node != n.id && r.Node != msg.From {
			n.pin(r)
			pinned = append(pinned, r)
		}
	}
	n.exportRefs(returns, msg.From, func(ok bool, errMsg string) {
		finish(ok, errMsg)
		for _, r := range pinned {
			n.unpin(r)
		}
	})
}

// handleInvokeReply completes a pending call. Caller holds the lock.
func (n *Node) handleInvokeReply(msg *wire.InvokeReply) {
	pc, ok := n.pendingCalls[msg.CallID]
	if !ok {
		return // expired or duplicate: returned refs self-heal via NewSetStubs
	}
	delete(n.pendingCalls, msg.CallID)
	n.stats.RepliesHandled++

	if !n.cfg.DisableDGC {
		// Reply-side counter bump on the stub end (§3.2: "invocation (or
		// reply)").
		if st := n.table.Stub(pc.target); st != nil {
			st.IC++
		}
		// Import returned references. Returns WE own were copies of the
		// callee's reference to them: bump the matching scion counter.
		for _, r := range msg.Returns {
			if r.Node != n.id {
				n.table.EnsureStub(r)
				n.pin(r)
				defer n.unpin(r)
				continue
			}
			if sc := n.table.Scion(msg.From, r.Obj); sc != nil {
				sc.IC++
				n.selector.Touch(ids.RefID{Src: msg.From, Dst: r}, n.clock)
			}
		}
	}
	for _, r := range pc.pinned {
		n.unpin(r)
	}
	if !msg.OK {
		n.stats.CallsFailed++
	}
	if pc.cb != nil {
		pc.cb(Mutator{n: n}, Reply{OK: msg.OK, Err: msg.Err, Returns: msg.Returns})
	}
}

// handleCreateScion serves a scion-creation request. Caller holds the lock.
func (n *Node) handleCreateScion(msg *wire.CreateScion) {
	ack := &wire.CreateScionAck{ExportID: msg.ExportID, From: n.id}
	if !n.heap.Contains(msg.Obj) {
		ack.Err = "no such object"
	} else {
		if _, created := n.table.EnsureScion(msg.Holder, msg.Obj); created {
			n.stats.ScionsCreated++
		}
		n.selector.Touch(ids.RefID{Src: msg.Holder, Dst: ids.GlobalRef{Node: n.id, Obj: msg.Obj}}, n.clock)
		// The exporter copied ITS reference to our object: bump the
		// matching scion counter (it bumped the stub side). A bootstrap
		// acquisition (Holder == From) is a fresh grant, not a copy.
		if msg.Holder != msg.From {
			if sc := n.table.Scion(msg.From, msg.Obj); sc != nil {
				sc.IC++
				n.selector.Touch(ids.RefID{Src: msg.From, Dst: ids.GlobalRef{Node: n.id, Obj: msg.Obj}}, n.clock)
			}
		}
		ack.OK = true
	}
	n.send(msg.From, ack)
}

// handleCreateScionAck resolves one pending export. Caller holds the lock.
func (n *Node) handleCreateScionAck(msg *wire.CreateScionAck) {
	pe, ok := n.pendingExports[msg.ExportID]
	if !ok {
		return
	}
	if !msg.OK {
		pe.failed = true
		pe.errMsg = msg.Err
	}
	pe.waiting--
	if pe.waiting <= 0 {
		delete(n.pendingExports, msg.ExportID)
		pe.ready(!pe.failed, pe.errMsg)
	}
}
