package node

import (
	"dgc/internal/ids"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// Remote invocation with reference export/import.
//
// The protocol preserves the reference-listing safety invariant
// scion-before-stub: before a reference is handed to a new holder, its
// owner's scion for that holder exists. Exports of self-owned references
// create the scion locally; third-party exports run the CreateScion/Ack
// sub-protocol with the owner and delay the invocation until every ack has
// arrived. While exports are in flight the references are pinned so the
// local collector cannot drop the exporter's stubs (the paper's remoting
// instrumentation gets this for free from the thread stack).

// Invoke performs an asynchronous remote invocation of method on target,
// exporting args to the callee. cb (optional) receives the reply inside
// the machine. Invoke returns an error only for immediately detectable
// misuse; transport failures surface as a failed or expired reply.
func (m *Machine) Invoke(target ids.GlobalRef, method string, args []ids.GlobalRef, cb ReplyFunc) error {
	if target.Node == m.id {
		return m.errf("Invoke: target %v is local", target)
	}
	if !m.cfg.DisableDGC {
		if m.table.Stub(target) == nil && m.pins[target] == 0 {
			return m.errf("Invoke: reference %v not held by this process", target)
		}
		for _, a := range args {
			if a.Node == m.id {
				if !m.heap.Contains(a.Obj) {
					return m.errf("Invoke: exported object %d does not exist", a.Obj)
				}
				continue
			}
			if m.table.Stub(a) == nil && m.pins[a] == 0 {
				return m.errf("Invoke: exported reference %v not held", a)
			}
		}
	}

	// Pin the target and remote args until the reply (or expiry).
	pinned := make([]ids.GlobalRef, 0, 1+len(args))
	pinRef := func(r ids.GlobalRef) {
		if r.Node != m.id {
			m.pin(r)
			pinned = append(pinned, r)
		}
	}
	if !m.cfg.DisableDGC {
		pinRef(target)
		for _, a := range args {
			pinRef(a)
		}
	}

	m.nextCallID++
	callID := m.nextCallID
	argsCopy := append([]ids.GlobalRef(nil), args...)

	send := func(ok bool, errMsg string) {
		if !ok {
			for _, r := range pinned {
				m.unpin(r)
			}
			m.stats.CallsFailed++
			m.met.CallsFailed.Inc()
			if cb != nil {
				m.callback(func() { cb(Mutator{n: m}, Reply{OK: false, Err: "export failed: " + errMsg}) })
			}
			return
		}
		var stubIC uint64
		if !m.cfg.DisableDGC {
			if ic, err := m.table.BumpStubIC(target); err == nil {
				stubIC = ic
			}
		}
		pc := &pendingCall{target: target, pinned: pinned, cb: cb}
		if m.cfg.CallTimeoutTicks > 0 {
			pc.deadline = m.clock + m.cfg.CallTimeoutTicks
		}
		m.pendingCalls[callID] = pc
		m.stats.InvokesSent++
		m.met.InvokesSent.Inc()
		m.send(target.Node, &wire.InvokeRequest{
			CallID: callID,
			From:   m.id,
			Target: target,
			Method: method,
			Args:   argsCopy,
			StubIC: stubIC,
		})
	}

	if m.cfg.DisableDGC {
		send(true, "")
		return nil
	}
	m.exportRefs(argsCopy, target.Node, send)
	return nil
}

// exportRefs ensures scions exist for every reference in refs on behalf of
// the new holder, then calls ready inside the machine. Self-owned
// references get their scions synchronously; third-party references go
// through CreateScion/Ack.
//
// Copying an existing remote reference counts as mutator activity on it:
// the exporter bumps its stub-side counter here and the owner bumps the
// matching scion when it learns of the copy (in handleCreateScion for
// third-party exports, in handleInvokeRequest/-Reply for references owned
// by the receiving end). Without this, a root migration performed purely by
// reference copying would slip past the §3.2 barrier ("there have been
// remote invocations, and possibly reference copying, along the CDM-Graph",
// safety rule 3).
func (m *Machine) exportRefs(refs []ids.GlobalRef, holder ids.NodeID, ready func(ok bool, errMsg string)) {
	var remoteOwners []ids.GlobalRef
	for _, r := range refs {
		switch r.Node {
		case m.id:
			// We own the object: a brand-new reference, not a copy. Create
			// the scion directly.
			if _, created := m.table.EnsureScion(holder, r.Obj); created {
				m.stats.ScionsCreated++
				m.met.ScionsCreated.Inc()
			}
			m.selector.Touch(ids.RefID{Src: holder, Dst: r}, m.clock)
		case holder:
			// The holder owns it; importing turns it into a local ref.
			// Still a copy of OUR reference to it: bump the stub side (the
			// holder bumps its scion when the request/reply arrives).
			if _, err := m.table.BumpStubIC(r); err != nil {
				m.table.EnsureStub(r) // pinned-only reference: materialize
				_, _ = m.table.BumpStubIC(r)
			}
		default:
			if _, err := m.table.BumpStubIC(r); err != nil {
				m.table.EnsureStub(r)
				_, _ = m.table.BumpStubIC(r)
			}
			remoteOwners = append(remoteOwners, r)
		}
	}
	if len(remoteOwners) == 0 {
		ready(true, "")
		return
	}
	m.nextExportID++
	exportID := m.nextExportID
	m.pendingExports[exportID] = &pendingExport{waiting: len(remoteOwners), ready: ready}
	for _, r := range remoteOwners {
		m.send(r.Node, &wire.CreateScion{
			ExportID: exportID,
			From:     m.id,
			Holder:   holder,
			Obj:      r.Obj,
		})
	}
}

// AcquireRemote bootstraps possession of a remote reference: it runs the
// CreateScion protocol with the owner on this machine's behalf and, once
// acknowledged, materializes a stub and invokes cb. This models an external
// name service handing out references (the way the paper's OBIWAN clients
// obtain their first proxy). The acquired reference is pinned for the
// duration of cb; store it somewhere reachable or it will be collected.
func (m *Machine) AcquireRemote(ref ids.GlobalRef, cb func(mut Mutator, ok bool)) error {
	if ref.Node == m.id {
		return m.errf("AcquireRemote: %v is local", ref)
	}
	m.nextExportID++
	exportID := m.nextExportID
	m.pin(ref)
	m.pendingExports[exportID] = &pendingExport{
		waiting: 1,
		ready: func(ok bool, _ string) {
			if ok {
				m.table.EnsureStub(ref)
			}
			if cb != nil {
				m.callback(func() { cb(Mutator{n: m}, ok) })
			}
			m.unpin(ref)
		},
	}
	m.send(ref.Node, &wire.CreateScion{
		ExportID: exportID,
		From:     m.id,
		Holder:   m.id,
		Obj:      ref.Obj,
	})
	return nil
}

// handleInvokeRequest executes an incoming invocation.
func (m *Machine) handleInvokeRequest(msg *wire.InvokeRequest) {
	m.stats.InvokesHandled++
	m.met.InvokesHandled.Inc()
	m.emit(trace.KindInvoke, "from=%s target=%d method=%s args=%d",
		msg.From, msg.Target.Obj, msg.Method, len(msg.Args))
	reply := &wire.InvokeReply{CallID: msg.CallID, From: m.id, Target: msg.Target}

	if !m.cfg.DisableDGC {
		// The caller held a stub, so our scion exists (create it defensively
		// if a mixed-configuration caller skipped the protocol), and the
		// invocation bumps its counter (§3.2).
		sc, created := m.table.EnsureScion(msg.From, msg.Target.Obj)
		if created {
			m.stats.ScionsCreated++
			m.met.ScionsCreated.Inc()
		}
		sc.IC++
		m.selector.Touch(ids.RefID{Src: msg.From, Dst: msg.Target}, m.clock)
	}

	if !m.heap.Contains(msg.Target.Obj) {
		reply.Err = "no such object"
		m.send(msg.From, reply)
		return
	}
	handler, ok := m.methods[msg.Method]
	if !ok {
		reply.Err = "no such method: " + msg.Method
		m.send(msg.From, reply)
		return
	}

	// Import argument references: materialize stubs for refs owned
	// elsewhere (their scions were created by the exporter). Arguments WE
	// own were reference copies of the caller's stub to them: bump the
	// matching scion-side counter (the caller bumped its stub side in
	// exportRefs).
	if !m.cfg.DisableDGC {
		for _, a := range msg.Args {
			if a.Node != m.id {
				m.table.EnsureStub(a)
				continue
			}
			if sc := m.table.Scion(msg.From, a.Obj); sc != nil {
				sc.IC++
				m.selector.Touch(ids.RefID{Src: msg.From, Dst: a}, m.clock)
			}
		}
	}

	var returns []ids.GlobalRef
	m.callback(func() { returns = handler(Mutator{n: m}, msg.Target.Obj, msg.Args) })
	reply.OK = true
	reply.Returns = returns

	finish := func(ok bool, errMsg string) {
		if !ok {
			reply.OK = false
			reply.Err = "return export failed: " + errMsg
			reply.Returns = nil
		}
		if !m.cfg.DisableDGC {
			// The reply travels back through the same reference: bump the
			// scion-side counter and piggy-back it.
			if sc := m.table.Scion(msg.From, msg.Target.Obj); sc != nil {
				sc.IC++
				reply.ScionIC = sc.IC
			}
		}
		m.send(msg.From, reply)
	}

	if m.cfg.DisableDGC || len(returns) == 0 {
		finish(true, "")
		return
	}
	// Pin remote returns until their scions are confirmed.
	var pinned []ids.GlobalRef
	for _, r := range returns {
		if r.Node != m.id && r.Node != msg.From {
			m.pin(r)
			pinned = append(pinned, r)
		}
	}
	m.exportRefs(returns, msg.From, func(ok bool, errMsg string) {
		finish(ok, errMsg)
		for _, r := range pinned {
			m.unpin(r)
		}
	})
}

// handleInvokeReply completes a pending call.
func (m *Machine) handleInvokeReply(msg *wire.InvokeReply) {
	pc, ok := m.pendingCalls[msg.CallID]
	if !ok {
		return // expired or duplicate: returned refs self-heal via NewSetStubs
	}
	delete(m.pendingCalls, msg.CallID)
	m.stats.RepliesHandled++
	m.met.RepliesHandled.Inc()

	if !m.cfg.DisableDGC {
		// Reply-side counter bump on the stub end (§3.2: "invocation (or
		// reply)").
		if st := m.table.Stub(pc.target); st != nil {
			st.IC++
		}
		// Import returned references. Returns WE own were copies of the
		// callee's reference to them: bump the matching scion counter.
		for _, r := range msg.Returns {
			if r.Node != m.id {
				m.table.EnsureStub(r)
				m.pin(r)
				defer m.unpin(r)
				continue
			}
			if sc := m.table.Scion(msg.From, r.Obj); sc != nil {
				sc.IC++
				m.selector.Touch(ids.RefID{Src: msg.From, Dst: r}, m.clock)
			}
		}
	}
	for _, r := range pc.pinned {
		m.unpin(r)
	}
	if !msg.OK {
		m.stats.CallsFailed++
		m.met.CallsFailed.Inc()
	}
	if pc.cb != nil {
		m.callback(func() { pc.cb(Mutator{n: m}, Reply{OK: msg.OK, Err: msg.Err, Returns: msg.Returns}) })
	}
}

// handleCreateScion serves a scion-creation request.
func (m *Machine) handleCreateScion(msg *wire.CreateScion) {
	ack := &wire.CreateScionAck{ExportID: msg.ExportID, From: m.id}
	if !m.heap.Contains(msg.Obj) {
		ack.Err = "no such object"
	} else {
		if _, created := m.table.EnsureScion(msg.Holder, msg.Obj); created {
			m.stats.ScionsCreated++
			m.met.ScionsCreated.Inc()
		}
		m.selector.Touch(ids.RefID{Src: msg.Holder, Dst: ids.GlobalRef{Node: m.id, Obj: msg.Obj}}, m.clock)
		// The exporter copied ITS reference to our object: bump the
		// matching scion counter (it bumped the stub side). A bootstrap
		// acquisition (Holder == From) is a fresh grant, not a copy.
		if msg.Holder != msg.From {
			if sc := m.table.Scion(msg.From, msg.Obj); sc != nil {
				sc.IC++
				m.selector.Touch(ids.RefID{Src: msg.From, Dst: ids.GlobalRef{Node: m.id, Obj: msg.Obj}}, m.clock)
			}
		}
		ack.OK = true
	}
	m.send(msg.From, ack)
}

// handleCreateScionAck resolves one pending export.
func (m *Machine) handleCreateScionAck(msg *wire.CreateScionAck) {
	pe, ok := m.pendingExports[msg.ExportID]
	if !ok {
		return
	}
	if !msg.OK {
		pe.failed = true
		pe.errMsg = msg.Err
	}
	pe.waiting--
	if pe.waiting <= 0 {
		delete(m.pendingExports, msg.ExportID)
		pe.ready(!pe.failed, pe.errMsg)
	}
}
