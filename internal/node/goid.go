package node

import "runtime"

// goid returns the current goroutine's id by parsing the header line of
// runtime.Stack ("goroutine N [running]:"). It is used only by the
// callback re-entrancy guard: once when a user callback starts, and on a
// public entry point only while some callback is in flight (the guard's
// fast path is a single atomic load of zero). The parse allocates nothing.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) <= len(prefix) {
		return 0
	}
	var id uint64
	for _, c := range s[len(prefix):] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
