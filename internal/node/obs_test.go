package node

import (
	"testing"
	"time"

	"dgc/internal/obs"
	"dgc/internal/wire"
)

// TestLiveRuntimeMailboxOverflow pins the drop-on-full contract: with the
// loop wedged and the mailbox at capacity, inbound transport deliveries are
// discarded — counted once, in the dgc_mailbox_dropped_total metric, which
// DroppedInbound reads back — and the runtime keeps serving once unwedged.
func TestLiveRuntimeMailboxOverflow(t *testing.T) {
	const cap = 4
	r := NewLiveRuntime("A", nil, Config{}, RuntimeConfig{Tick: time.Hour, Mailbox: cap})
	defer r.Close()

	// Wedge the loop inside a local call so nothing drains the mailbox.
	started := make(chan struct{})
	release := make(chan struct{})
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		_ = r.do("block", func(*Machine) {
			close(started)
			<-release
		})
	}()
	<-started

	// Flood with messages a machine handles as no-ops (ack for an unknown
	// export). The loop is inside consume, so exactly cap of them queue.
	const flood = 100
	for i := 0; i < flood; i++ {
		r.handleMessage("B", &wire.CreateScionAck{ExportID: 999, OK: true})
	}
	if got := r.DroppedInbound(); got != flood-cap {
		t.Fatalf("DroppedInbound = %d, want %d", got, flood-cap)
	}
	if got := r.mach.Metrics().MailboxDropped.Value(); got != flood-cap {
		t.Fatalf("dgc_mailbox_dropped_total = %d, want %d", got, flood-cap)
	}

	// Unwedge: the queued messages drain and the runtime makes progress.
	close(release)
	<-blocked
	if err := r.With(func(m Mutator) {
		obj := m.Alloc(nil)
		if err := m.Root(obj); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.NumObjects(); got != 1 {
		t.Fatalf("objects after overflow = %d", got)
	}

	// The debug snapshot surfaces the same mailbox accounting.
	ds := r.DebugSnapshot()
	if ds.Mailbox == nil {
		t.Fatal("runtime snapshot has no mailbox stats")
	}
	if ds.Mailbox.Capacity != cap || ds.Mailbox.Dropped != flood-cap {
		t.Fatalf("mailbox stats = %+v", *ds.Mailbox)
	}
}

// TestMachineMetricsDaemons verifies the collector instruments move when the
// daemons run, and that gauges track structural state.
func TestMachineMetricsDaemons(t *testing.T) {
	set := obs.NewSet()
	m := NewMachine("A", Config{Metrics: set})
	m.With(func(mu Mutator) {
		live := mu.Alloc(nil)
		if err := mu.Root(live); err != nil {
			t.Error(err)
		}
		mu.Alloc(nil) // unrooted: swept by the next LGC
	})

	res := m.RunLGC()
	met := m.Metrics()
	if met.LGCRuns.Value() != 1 || met.LGCDuration.Count() != 1 {
		t.Fatalf("LGC instruments: runs=%d durations=%d", met.LGCRuns.Value(), met.LGCDuration.Count())
	}
	if met.ObjectsSwept.Value() != uint64(res.Swept) || res.Swept != 1 {
		t.Fatalf("swept: metric=%d result=%d", met.ObjectsSwept.Value(), res.Swept)
	}
	if met.HeapObjects.Value() != 1 {
		t.Fatalf("dgc_heap_objects = %d", met.HeapObjects.Value())
	}

	if err := m.Summarize(); err != nil {
		t.Fatal(err)
	}
	if met.Summarizations.Value() != 1 || met.SummarizeDuration.Count() != 1 {
		t.Fatalf("summarize instruments: %d/%d", met.Summarizations.Value(), met.SummarizeDuration.Count())
	}
	// Unchanged heap: the second run is a cache hit, not a rebuild.
	if err := m.Summarize(); err != nil {
		t.Fatal(err)
	}
	if met.Summarizations.Value() != 2 || met.SummaryCacheHits.Value() != 1 {
		t.Fatalf("cache hit not counted: total=%d hits=%d",
			met.Summarizations.Value(), met.SummaryCacheHits.Value())
	}

	// The shared set carries the node label on every series.
	d := set.Dump()
	if d[`dgc_lgc_runs_total{node="A"}`] != 1 {
		t.Fatalf("set dump missing labeled series: %v", d)
	}
}

// TestMachineDebugSnapshot checks the structural /debug/dgc view at the
// machine level (no runtime: no mailbox block).
func TestMachineDebugSnapshot(t *testing.T) {
	m := NewMachine("A", Config{})
	m.With(func(mu Mutator) {
		obj := mu.Alloc(nil)
		if err := mu.Root(obj); err != nil {
			t.Error(err)
		}
	})
	m.RunLGC()

	ds := m.DebugSnapshot()
	if ds.Node != "A" || ds.Objects != 1 {
		t.Fatalf("snapshot identity: %+v", ds)
	}
	if ds.LastLGC == "" {
		t.Fatal("LastLGC not stamped after RunLGC")
	}
	if ds.Mailbox != nil {
		t.Fatal("machine-level snapshot must not invent mailbox stats")
	}
	if len(ds.InflightDetections) != 0 {
		t.Fatalf("unexpected inflight detections: %+v", ds.InflightDetections)
	}
}
