package node

import (
	"sort"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/membership"
	"dgc/internal/refs"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// Elastic-membership integration: the machine inputs and effects that keep
// the gossip directory (internal/membership) and the holder-lease table
// (refs.HolderLeases) wired into the protocol core. Everything here is a
// no-op when Config.Membership is nil, so the deterministic simulator's
// static-directory behaviour — and its byte-identical fingerprints — are
// untouched.

// MembershipEnabled reports whether the elastic directory is active.
func (m *Machine) MembershipEnabled() bool { return m.memb != nil }

// Members returns the directory in canonical order (nil when membership is
// disabled).
func (m *Machine) Members() []membership.Member {
	if m.memb == nil {
		return nil
	}
	return m.memb.Snapshot()
}

// MemberState returns the directory's state for node (zero when membership
// is disabled or the node is unknown).
func (m *Machine) MemberState(node ids.NodeID) membership.State {
	if m.memb == nil {
		return 0
	}
	return m.memb.State(node)
}

// AddMember seeds a peer into the directory as joining (static wiring, a
// join RPC). Gossip takes it from there.
func (m *Machine) AddMember(node ids.NodeID, addr string) error {
	if m.memb == nil {
		return m.errf("AddMember: membership disabled")
	}
	if tr := m.memb.SeedPeer(node, addr, m.clock); tr != nil {
		m.processMemberTransitions([]membership.Transition{*tr})
	}
	return nil
}

// SetSelfAddr records this node's advertised transport address, gossiped so
// joiners learn how to reach it.
func (m *Machine) SetSelfAddr(addr string) {
	if m.memb != nil {
		m.memb.SetSelfAddr(addr)
	}
}

// TakeAddrUpdates drains directory records whose transport address was
// learned or changed; the live driver reprograms its endpoint with them.
func (m *Machine) TakeAddrUpdates() []membership.Member {
	if m.memb == nil {
		return nil
	}
	return m.memb.TakeAddrUpdates()
}

// BeginDrain starts this node's voluntary departure. The directory record
// flips to draining (incarnation-bumped so it dominates concurrent
// suspicion), and every remote owner this node holds references into
// receives a LeaseHandoff taking those scions into custody. After
// DrainLinger ticks the node declares itself dead (departed) and the
// custodians release the handed-off scions through the normal deletion
// path, letting cycles through the former referents collect.
func (m *Machine) BeginDrain() error {
	if m.memb == nil {
		return m.errf("BeginDrain: membership disabled")
	}
	if m.memb.Draining() {
		return nil
	}
	if tr := m.memb.BeginDrain(m.clock); tr != nil {
		m.processMemberTransitions([]membership.Transition{*tr})
	}
	byOwner := make(map[ids.NodeID][]ids.ObjID)
	var owners []ids.NodeID
	for _, s := range m.table.Stubs() {
		o := s.Target.Node
		if o == m.id {
			continue
		}
		if _, ok := byOwner[o]; !ok {
			owners = append(owners, o)
		}
		byOwner[o] = append(byOwner[o], s.Target.Obj)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, o := range owners {
		objs := byOwner[o]
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		m.met.LeaseHandoffs.Inc()
		m.emit(trace.KindLeaseHandoff, "to=%s objs=%d sent", o, len(objs))
		m.send(o, &wire.LeaseHandoff{Holder: m.id, Objs: objs})
	}
	return nil
}

// observeMember feeds one inbound message into the failure detector and
// renews the sender's holder lease. Called at the top of HandleMessage.
func (m *Machine) observeMember(from ids.NodeID) {
	if m.memb == nil || from == m.id {
		return
	}
	m.leases.Renew(from, m.clock)
	if tr := m.memb.Observe(from, m.clock); tr != nil {
		m.processMemberTransitions([]membership.Transition{*tr})
	}
}

// membTick runs the membership side of one clock advance: failure-detector
// transitions, dead-holder lease expiry, and the periodic anti-entropy push.
func (m *Machine) membTick() {
	if m.memb == nil {
		return
	}
	m.processMemberTransitions(m.memb.Tick(m.clock))
	for _, mem := range m.memb.Snapshot() {
		if mem.Node == m.id || mem.State != membership.Dead {
			continue
		}
		m.reclaimScions(m.leases.ExpireHolder(mem.Node, m.clock), mem.Node, "lease-expired")
	}
	cfg := m.memb.Config()
	if cfg.GossipEvery > 0 && m.clock%cfg.GossipEvery == 0 {
		if peer, ok := m.memb.NextGossipPeer(); ok {
			m.sendGossip(peer, false)
		}
		m.syncMemberGauges()
	}
}

// processMemberTransitions journals and reacts to directory state changes:
// metrics, custodial release when a drained holder's departure is final, and
// lease re-grant when a dead holder returns with a higher incarnation.
func (m *Machine) processMemberTransitions(trs []membership.Transition) {
	if len(trs) == 0 {
		return
	}
	for _, tr := range trs {
		mem := tr.Member
		m.met.MemberTransitions.Inc()
		switch mem.State {
		case membership.Joining:
			m.emit(trace.KindMemberJoin, "node=%s inc=%d", mem.Node, mem.Incarnation)
		case membership.Alive:
			m.emit(trace.KindMemberAlive, "node=%s inc=%d prev=%s", mem.Node, mem.Incarnation, tr.Prev)
			if mem.Node != m.id && tr.Prev == membership.Dead {
				m.leases.Regrant(mem.Node, mem.Incarnation, m.clock)
			}
		case membership.Suspect:
			m.emit(trace.KindMemberSuspect, "node=%s inc=%d", mem.Node, mem.Incarnation)
		case membership.Draining:
			m.emit(trace.KindMemberDrain, "node=%s inc=%d", mem.Node, mem.Incarnation)
		case membership.Dead:
			m.emit(trace.KindMemberDead, "node=%s inc=%d prev=%s", mem.Node, mem.Incarnation, tr.Prev)
			if mem.Node != m.id {
				m.reclaimScions(m.leases.ReleaseCustodial(mem.Node), mem.Node, "drain-departed")
			}
		}
	}
	m.syncMemberGauges()
}

// reclaimScions finalizes scions deleted by lease expiry or custodial
// release: selector cleanup, journal, metrics. The table deletion already
// happened inside HolderLeases through the normal DeleteScion path.
func (m *Machine) reclaimScions(scs []refs.Scion, holder ids.NodeID, reason string) {
	for _, sc := range scs {
		ref := ids.RefID{Src: sc.Src, Dst: ids.GlobalRef{Node: m.id, Obj: sc.Obj}}
		m.selector.Forget(ref)
		m.met.LeaseReclaimed.Inc()
		m.emit(trace.KindLeaseReclaim, "ref=%s holder=%s reason=%s", ref, holder, reason)
		m.emit(trace.KindScionDeleted, "ref=%s reason=%s", ref, reason)
	}
}

// maybePiggybackGossip rides a directory push on an already outbound
// envelope burst when the destination's last-seen version is stale. Gossip
// messages themselves never trigger another (each push records the version
// it carried, and the Kind check stops recursion).
func (m *Machine) maybePiggybackGossip(to ids.NodeID, msg wire.Message) {
	if m.memb == nil || to == m.id || msg.Kind() == wire.KindGossip {
		return
	}
	if m.membGossiped[to] == m.memb.Version() {
		return
	}
	m.sendGossip(to, false)
}

// sendGossip pushes the full directory to one peer. ack marks a reply sent
// because this node held strictly newer records; acks are never answered.
func (m *Machine) sendGossip(to ids.NodeID, ack bool) {
	snap := m.memb.Snapshot()
	recs := make([]wire.MemberRecord, len(snap))
	for i, mem := range snap {
		recs[i] = wire.MemberRecord{
			Node:        mem.Node,
			Addr:        mem.Addr,
			Incarnation: mem.Incarnation,
			State:       uint8(mem.State),
		}
	}
	m.membGossiped[to] = m.memb.Version()
	m.met.GossipSent.Inc()
	m.send(to, &wire.Gossip{Ack: ack, Members: recs})
}

// handleGossip merges a peer's directory push and answers (once) when this
// node holds strictly newer records.
func (m *Machine) handleGossip(from ids.NodeID, g *wire.Gossip) {
	if m.memb == nil {
		return
	}
	m.met.GossipReceived.Inc()
	recs := make([]membership.Member, 0, len(g.Members))
	for _, r := range g.Members {
		recs = append(recs, membership.Member{
			Node:        r.Node,
			Addr:        r.Addr,
			Incarnation: r.Incarnation,
			State:       membership.State(r.State),
		})
	}
	reply := !g.Ack && m.memb.HasNewsFor(recs)
	m.processMemberTransitions(m.memb.Merge(recs, m.clock))
	if reply {
		m.sendGossip(from, true)
	}
}

// handleLeaseHandoff takes a draining holder's scions into custody: pinned
// against lease expiry until the holder's departure is final, then released
// through the normal deletion path (processMemberTransitions).
func (m *Machine) handleLeaseHandoff(msg *wire.LeaseHandoff) {
	if m.memb == nil {
		return
	}
	pinned := 0
	for _, obj := range msg.Objs {
		if m.table.Scion(msg.Holder, obj) == nil {
			continue
		}
		m.leases.Pin(msg.Holder, obj)
		pinned++
	}
	m.met.LeaseHandoffs.Inc()
	m.emit(trace.KindLeaseHandoff, "holder=%s objs=%d pinned=%d received", msg.Holder, len(msg.Objs), pinned)
}

// memberDeadEdge reports whether detection traffic along ref would route
// through a member the directory has declared dead.
func (m *Machine) memberDeadEdge(ref ids.RefID) bool {
	return m.memb != nil && m.memb.IsDead(ref.Dst.Node)
}

// abortDetectionMemberDead terminates a detection whose every outgoing edge
// routes through dead members, journaling the member-dead outcome dgcctl's
// follow loop keys on (relaunch after the holder's scions are reclaimed
// skips the dead edge entirely).
func (m *Machine) abortDetectionMemberDead(det core.DetectionID, traceID uint64) {
	m.met.MemberDetectAborts.Inc()
	if _, ok := m.inflight[det]; ok {
		m.detectionDone(det, "member-dead")
		return
	}
	m.emitT(trace.KindDetectionEnd, traceID, "det=%s/%d outcome=member-dead", det.Origin, det.Seq)
}

// filterDeadEdges strips a flush-pending CDM batch of edges and returns
// routing through dead members. A section whose detection still leaves via
// some live edge is silently narrowed; one with no live exit aborts.
func (m *Machine) filterDeadEdges(b *cdmBatcher) {
	if m.memb == nil {
		return
	}
	liveDet := make(map[core.DetectionID]struct{})
	var liveOrder, deadEdges []ids.RefID
	for _, edge := range b.order {
		if m.memberDeadEdge(edge) {
			deadEdges = append(deadEdges, edge)
			continue
		}
		liveOrder = append(liveOrder, edge)
		for _, s := range b.edges[edge].secs {
			liveDet[s.det] = struct{}{}
		}
	}
	if len(deadEdges) == 0 && len(b.retOrder) == 0 {
		return
	}
	for _, edge := range deadEdges {
		for _, s := range b.edges[edge].secs {
			if _, ok := liveDet[s.det]; ok {
				continue
			}
			m.abortDetectionMemberDead(s.det, s.trace)
			liveDet[s.det] = struct{}{} // abort a detection at most once
		}
		delete(b.edges, edge)
	}
	b.order = liveOrder
	var retOrder []ids.NodeID
	for _, origin := range b.retOrder {
		if m.memb.IsDead(origin) {
			m.emit(trace.KindBatchCDM, "to=%s sections=%d return dropped member-dead",
				origin, len(b.rets[origin]))
			delete(b.rets, origin)
			continue
		}
		retOrder = append(retOrder, origin)
	}
	b.retOrder = retOrder
}

// syncMemberGauges refreshes the membership and lease gauges.
func (m *Machine) syncMemberGauges() {
	if m.memb == nil {
		return
	}
	alive, suspect, dead := m.memb.Counts()
	m.met.MembersAlive.Set(int64(alive))
	m.met.MembersSuspect.Set(int64(suspect))
	m.met.MembersDead.Set(int64(dead))
	m.met.LeaseActiveHolders.Set(int64(m.leases.Holders()))
}
