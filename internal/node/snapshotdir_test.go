package node

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dgc/internal/snapshot"
)

func TestSnapshotDirWritesSerializedSnapshots(t *testing.T) {
	dir := t.TempDir()
	tn := newTestNet(t, Config{Codec: snapshot.BinaryCodec{}, SnapshotDir: dir}, "A")
	a := tn.n("A")
	obj := allocRooted(t, a)
	_ = obj

	if err := a.Summarize(); err != nil {
		t.Fatal(err)
	}
	// An unchanged heap is a summarization cache hit: no new snapshot file.
	if err := a.Summarize(); err != nil {
		t.Fatal(err)
	}
	if entries, err := os.ReadDir(dir); err != nil {
		t.Fatal(err)
	} else if len(entries) != 1 {
		t.Fatalf("snapshot files after cache hit = %d, want 1", len(entries))
	}
	if s := a.Stats(); s.Summarizations != 2 || s.SummaryCacheHits != 1 {
		t.Fatalf("Summarizations=%d CacheHits=%d, want 2 and 1",
			s.Summarizations, s.SummaryCacheHits)
	}
	// A heap mutation invalidates the cache and produces a second file.
	a.With(func(m Mutator) { m.Alloc(nil) })
	if err := a.Summarize(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("snapshot files = %d, want 2", len(entries))
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "A-") || !strings.HasSuffix(e.Name(), ".binary.snap") {
			t.Errorf("unexpected snapshot file name %q", e.Name())
		}
	}
	// The snapshot on disk decodes back to the heap contents.
	h, err := snapshot.ReadFile(snapshot.BinaryCodec{}, filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 || h.Node() != "A" {
		t.Fatalf("decoded snapshot: %d objects on %s", h.Len(), h.Node())
	}
	if s := a.Stats(); s.SnapshotBytes == 0 {
		t.Error("SnapshotBytes not accounted")
	}
}

func TestSnapshotCodecWithoutDirAccountsBytesOnly(t *testing.T) {
	tn := newTestNet(t, Config{Codec: snapshot.ReflectCodec{}}, "A")
	a := tn.n("A")
	allocRooted(t, a)
	if err := a.Summarize(); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.SnapshotBytes == 0 {
		t.Error("SnapshotBytes not accounted without dir")
	}
}
