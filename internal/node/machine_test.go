package node

import (
	"strings"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/wire"
)

// The Machine is driven here with no transport and no driver at all: every
// input mutates state and accumulates outbound messages as effects, which
// the test inspects directly.

func TestMachineAccumulatesSendEffects(t *testing.T) {
	m := NewMachine("A", Config{})
	var obj ids.ObjID
	m.With(func(mut Mutator) {
		obj = mut.Alloc(nil)
		if err := mut.Root(obj); err != nil {
			t.Fatal(err)
		}
	})
	if err := m.HoldRemote(obj, ids.GlobalRef{Node: "B", Obj: 1}); err != nil {
		t.Fatal(err)
	}
	if outs := m.TakeEffects(); len(outs) != 0 {
		t.Fatalf("pure mutation produced %d sends", len(outs))
	}

	// A local collection must emit the reference-listing stub set to B.
	m.RunLGC()
	outs := m.TakeEffects()
	if len(outs) == 0 {
		t.Fatal("RunLGC produced no effects despite a remote reference")
	}
	found := false
	for _, o := range outs {
		if o.To == "B" {
			if _, ok := o.Msg.(*wire.NewSetStubs); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no NewSetStubs to B in effects: %v", outs)
	}
	// TakeEffects transfers ownership: the buffer starts fresh.
	if rest := m.TakeEffects(); len(rest) != 0 {
		t.Fatalf("second TakeEffects returned %d messages", len(rest))
	}
}

func TestMachineHandleMessageEffects(t *testing.T) {
	m := NewMachine("B", Config{})
	var obj ids.ObjID
	m.With(func(mut Mutator) { obj = mut.Alloc(nil) })
	m.TakeEffects()

	m.HandleMessage("A", &wire.CreateScion{ExportID: 7, From: "A", Holder: "A", Obj: obj})
	outs := m.TakeEffects()
	if len(outs) != 1 || outs[0].To != "A" {
		t.Fatalf("effects = %v, want one ack to A", outs)
	}
	ack, ok := outs[0].Msg.(*wire.CreateScionAck)
	if !ok || !ack.OK || ack.ExportID != 7 {
		t.Fatalf("ack = %+v", outs[0].Msg)
	}
	if m.NumScions() != 1 {
		t.Fatalf("scions = %d", m.NumScions())
	}
}

// The re-entrancy guard turns what used to be a silent deadlock — a Method
// handler, ReplyFunc or With body calling back into a public driver entry
// point — into an immediate panic with a diagnostic.

func mustPanicReentered(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("re-entrant call did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "re-entered") {
			t.Fatalf("panic = %v, want re-entry diagnostic", r)
		}
	}()
	fn()
}

func TestReentryGuardWithBlock(t *testing.T) {
	n := New("A", nil, Config{})
	mustPanicReentered(t, func() {
		n.With(func(Mutator) { n.NumObjects() })
	})
}

func TestReentryGuardMethodHandler(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	caller := allocRooted(t, a)
	target := allocRooted(t, b)
	b.RegisterMethod("bad", func(Mutator, ids.ObjID, []ids.GlobalRef) []ids.GlobalRef {
		b.Tick() // illegal: public entry point from inside the machine
		return nil
	})
	tn.grant("A", caller, "B", target)
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "bad", nil, nil); err != nil {
		t.Fatal(err)
	}
	mustPanicReentered(t, func() { tn.settle() })
}

func TestReentryGuardReplyFunc(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	caller := allocRooted(t, a)
	target := allocRooted(t, b)
	tn.grant("A", caller, "B", target)
	err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "noop", nil,
		func(Mutator, Reply) { a.Stats() })
	if err != nil {
		t.Fatal(err)
	}
	mustPanicReentered(t, func() { tn.settle() })
}

func TestGuardAllowsMutatorInvoke(t *testing.T) {
	// The sanctioned path — Mutator.Invoke from callback context — must not
	// trip the guard.
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	caller := allocRooted(t, a)
	target := allocRooted(t, b)
	tn.grant("A", caller, "B", target)
	got := false
	err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "noop", nil,
		func(m Mutator, r Reply) {
			if !r.OK {
				t.Errorf("first call failed: %s", r.Err)
			}
			_ = m.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "noop", nil,
				func(_ Mutator, r2 Reply) { got = r2.OK })
		})
	if err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if !got {
		t.Fatal("chained Mutator.Invoke did not complete")
	}
}
