package node

import (
	"sync"
	"testing"
	"time"

	"dgc/internal/ids"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// captureEndpoint records every send; the credit tests' stand-in transport.
type captureEndpoint struct {
	mu   sync.Mutex
	sent []transport.Envelope
}

func (e *captureEndpoint) Self() ids.NodeID { return "A" }
func (e *captureEndpoint) Send(to ids.NodeID, msg wire.Message) error {
	e.mu.Lock()
	e.sent = append(e.sent, transport.Envelope{To: to, Msg: msg})
	e.mu.Unlock()
	return nil
}
func (e *captureEndpoint) SetHandler(transport.Handler) {}
func (e *captureEndpoint) Close() error                 { return nil }

func (e *captureEndpoint) snapshot() []transport.Envelope {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]transport.Envelope(nil), e.sent...)
}

// barrier flushes the runtime's mailbox FIFO: once a local call returns,
// every event enqueued before it (inbound credits included) has been
// consumed.
func barrier(t *testing.T, r *LiveRuntime) {
	t.Helper()
	if err := r.With(func(Mutator) {}); err != nil {
		t.Fatal(err)
	}
}

// TestLiveRuntimeCreditStallAndReplenish drives the bounded-credit outbound
// path end to end: the window admits CreditWindow messages, the excess parks
// (counted by the stall metrics), grants drain the parked queue in FIFO
// order, and an over-claiming grant is clamped instead of wedging the edge.
func TestLiveRuntimeCreditStallAndReplenish(t *testing.T) {
	ep := &captureEndpoint{}
	r := NewLiveRuntime("A", ep, Config{}, RuntimeConfig{
		Tick:         time.Hour, // no grant announcements; this test injects them
		Backpressure: true,
		CreditWindow: 4,
	})
	defer r.Close()

	// 10 outbound CreateScions to B, one per AcquireRemote.
	const total = 10
	for i := 0; i < total; i++ {
		if err := r.AcquireRemote(ids.GlobalRef{Node: "B", Obj: ids.ObjID(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := ep.snapshot(); len(got) != 4 {
		t.Fatalf("window 4 admitted %d sends", len(got))
	}
	met := r.mach.Metrics()
	if got := met.CreditStalls.Value(); got != total-4 {
		t.Fatalf("dgc_credit_stalls_total = %d, want %d", got, total-4)
	}
	if got := met.CreditPending.Value(); got != total-4 {
		t.Fatalf("dgc_credit_pending = %d, want %d", got, total-4)
	}

	// B consumed 2: window opens by 2, draining exactly 2 parked messages.
	r.handleMessage("B", &wire.Credit{Consumed: 2})
	barrier(t, r)
	if got := ep.snapshot(); len(got) != 6 {
		t.Fatalf("after grant of 2: %d sends, want 6", len(got))
	}
	// A duplicated / stale grant changes nothing (cumulative max-merge).
	r.handleMessage("B", &wire.Credit{Consumed: 2})
	r.handleMessage("B", &wire.Credit{Consumed: 1})
	barrier(t, r)
	if got := ep.snapshot(); len(got) != 6 {
		t.Fatalf("after duplicate grants: %d sends, want 6", len(got))
	}

	// An over-claiming grant (more than ever sent) is clamped to sent and
	// drains everything instead of underflowing the window shut.
	r.handleMessage("B", &wire.Credit{Consumed: 100})
	barrier(t, r)
	got := ep.snapshot()
	if len(got) != total {
		t.Fatalf("after clamped grant: %d sends, want %d", len(got), total)
	}
	if v := met.CreditPending.Value(); v != 0 {
		t.Fatalf("dgc_credit_pending = %d after full drain", v)
	}
	// FIFO through park and drain: the CreateScions carry Obj 0..9 in order.
	for i, env := range got {
		cs, ok := env.Msg.(*wire.CreateScion)
		if !ok || env.To != "B" {
			t.Fatalf("send %d: %T to %s", i, env.Msg, env.To)
		}
		if cs.Obj != ids.ObjID(i) {
			t.Fatalf("send %d carries Obj %d: parked messages reordered", i, cs.Obj)
		}
	}

	// After the window reopens, new sends go straight through again.
	if err := r.AcquireRemote(ids.GlobalRef{Node: "B", Obj: 99}, nil); err != nil {
		t.Fatal(err)
	}
	if got := ep.snapshot(); len(got) != total+1 {
		t.Fatalf("reopened window blocked a send: %d, want %d", len(got), total+1)
	}
}

// TestLiveRuntimeCreditGrantsAnnounced checks the receiving side: consumed
// inbound messages are granted back to the sender on the runtime's tick,
// cumulatively, and re-announced every tick (the loss recovery).
func TestLiveRuntimeCreditGrantsAnnounced(t *testing.T) {
	ep := &captureEndpoint{}
	r := NewLiveRuntime("A", ep, Config{}, RuntimeConfig{
		Tick:         2 * time.Millisecond,
		Backpressure: true,
	})
	defer r.Close()

	// 3 inbound no-ops from B (acks for an unknown export are ignored by
	// the machine but still consume credit).
	for i := 0; i < 3; i++ {
		r.handleMessage("B", &wire.CreateScionAck{ExportID: 999, OK: true})
	}
	barrier(t, r)

	want := func(n int) (grants int, latest uint64) {
		for _, env := range ep.snapshot() {
			if c, ok := env.Msg.(*wire.Credit); ok && env.To == "B" {
				grants++
				latest = c.Consumed
			}
		}
		return
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		grants, latest := want(3)
		// At least two announcements (re-announce each tick), both carrying
		// the full cumulative count.
		if grants >= 2 && latest == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grants=%d latest=%d, want >=2 announcements of 3", grants, latest)
		}
		time.Sleep(time.Millisecond)
	}
	if got := r.mach.Metrics().CreditGrants.Value(); got < 2 {
		t.Fatalf("dgc_credit_grants_total = %d, want >= 2", got)
	}
	// Credit traffic itself never consumes credit: grants stay at 3.
	r.handleMessage("B", &wire.Credit{Consumed: 0})
	barrier(t, r)
	time.Sleep(10 * time.Millisecond)
	if _, latest := want(3); latest != 3 {
		t.Fatalf("credit message consumed credit: latest grant %d, want 3", latest)
	}
}
