package node

import (
	"dgc/internal/ids"
)

// Mutator is the application's view of a process's heap. Mutator values
// are only handed out inside the machine (via With, method handlers and
// reply callbacks), where inputs are already serialized by the driver, so
// their operations need no further locking. Code holding a Mutator must
// not call public Node or LiveRuntime methods — use the Mutator's own
// operations (the re-entrancy guard panics on violations).
//
// The distributed-GC invariants enforced here mirror the paper's remoting
// instrumentation: storing a remote reference requires the process to
// actually hold it (a stub exists — obtained through import, invocation
// results or an explicit Acquire), so reference listing stays sound.
type Mutator struct {
	n *Machine
}

// Node returns the identifier of the mutated process.
func (m Mutator) Node() ids.NodeID { return m.n.id }

// Alloc allocates an object with the given payload and returns its id.
func (m Mutator) Alloc(payload []byte) ids.ObjID {
	return m.n.heap.Alloc(payload).ID
}

// GlobalRef returns the global reference naming a local object.
func (m Mutator) GlobalRef(obj ids.ObjID) ids.GlobalRef {
	return ids.GlobalRef{Node: m.n.id, Obj: obj}
}

// Exists reports whether the local object is still allocated.
func (m Mutator) Exists(obj ids.ObjID) bool { return m.n.heap.Contains(obj) }

// Root adds the object to the process-local root set.
func (m Mutator) Root(obj ids.ObjID) error { return m.n.heap.AddRoot(obj) }

// Unroot removes the object from the root set.
func (m Mutator) Unroot(obj ids.ObjID) { m.n.heap.RemoveRoot(obj) }

// Link adds a local reference from -> to.
func (m Mutator) Link(from, to ids.ObjID) error { return m.n.heap.AddLocalRef(from, to) }

// Unlink removes one local reference from -> to.
func (m Mutator) Unlink(from, to ids.ObjID) error { return m.n.heap.RemoveLocalRef(from, to) }

// Store makes the local object from hold the reference ref. A reference to
// an object of this very process becomes a plain local reference; a remote
// reference requires the process to hold it (stub present or ref pinned by
// the surrounding invocation), which is true for method arguments, returned
// references and acquired references.
func (m Mutator) Store(from ids.ObjID, ref ids.GlobalRef) error {
	if ref.Node == m.n.id {
		return m.n.heap.AddLocalRef(from, ref.Obj)
	}
	if m.n.table.Stub(ref) == nil && m.n.pins[ref] == 0 {
		return m.n.errf("Store: reference %v not held by this process", ref)
	}
	m.n.table.EnsureStub(ref)
	return m.n.heap.AddRemoteRef(from, ref)
}

// Drop removes one held reference from the object (local or remote).
func (m Mutator) Drop(from ids.ObjID, ref ids.GlobalRef) error {
	if ref.Node == m.n.id {
		return m.n.heap.RemoveLocalRef(from, ref.Obj)
	}
	return m.n.heap.RemoveRemoteRef(from, ref)
}

// Refs returns every reference held by the object: local objects as
// GlobalRefs of this process followed by remote references, in stored
// order. Returns nil for a missing object.
func (m Mutator) Refs(obj ids.ObjID) []ids.GlobalRef {
	o := m.n.heap.Get(obj)
	if o == nil {
		return nil
	}
	out := make([]ids.GlobalRef, 0, len(o.Locals)+len(o.Remotes))
	for _, l := range o.Locals {
		out = append(out, ids.GlobalRef{Node: m.n.id, Obj: l})
	}
	out = append(out, o.Remotes...)
	return out
}

// Payload returns the object's payload (nil for a missing object).
func (m Mutator) Payload(obj ids.ObjID) []byte {
	o := m.n.heap.Get(obj)
	if o == nil {
		return nil
	}
	return o.Payload
}

// SetPayload replaces the object's payload.
func (m Mutator) SetPayload(obj ids.ObjID, payload []byte) error {
	return m.n.heap.SetPayload(obj, payload)
}

// Invoke starts a remote invocation from within a handler or With block.
// See Machine.Invoke for the semantics; this variant runs inside the
// machine and is the ONLY legal way to invoke from callback context.
func (m Mutator) Invoke(target ids.GlobalRef, method string, args []ids.GlobalRef, cb ReplyFunc) error {
	return m.n.Invoke(target, method, args, cb)
}
