package node

import (
	"strings"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// testNet spins up nodes on one deterministic in-proc network.
type testNet struct {
	t     *testing.T
	net   *transport.Network
	nodes map[ids.NodeID]*Node
}

func newTestNet(t *testing.T, cfg Config, names ...ids.NodeID) *testNet {
	tn := &testNet{t: t, net: transport.NewNetwork(1), nodes: map[ids.NodeID]*Node{}}
	for _, name := range names {
		tn.nodes[name] = New(name, tn.net.Endpoint(name), cfg)
	}
	return tn
}

func (tn *testNet) settle() { tn.net.Drain(0) }

func (tn *testNet) n(id ids.NodeID) *Node { return tn.nodes[id] }

// grant bootstraps: object fromObj at from references toObj at to.
func (tn *testNet) grant(from ids.NodeID, fromObj ids.ObjID, to ids.NodeID, toObj ids.ObjID) {
	tn.t.Helper()
	if err := tn.n(to).EnsureScionFor(from, toObj); err != nil {
		tn.t.Fatal(err)
	}
	if err := tn.n(from).HoldRemote(fromObj, ids.GlobalRef{Node: to, Obj: toObj}); err != nil {
		tn.t.Fatal(err)
	}
}

func allocRooted(t *testing.T, n *Node) ids.ObjID {
	t.Helper()
	var obj ids.ObjID
	var err error
	n.With(func(m Mutator) {
		obj = m.Alloc(nil)
		err = m.Root(obj)
	})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func alloc(n *Node) ids.ObjID {
	var obj ids.ObjID
	n.With(func(m Mutator) { obj = m.Alloc(nil) })
	return obj
}

func TestInvokeNoopBumpsBothCounters(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	target := alloc(b)
	tn.grant("A", holder, "B", target)

	gotReply := false
	ref := ids.GlobalRef{Node: "B", Obj: target}
	if err := a.Invoke(ref, "noop", nil, func(_ Mutator, r Reply) {
		gotReply = true
		if !r.OK {
			t.Errorf("reply not OK: %s", r.Err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if !gotReply {
		t.Fatal("no reply")
	}
	s := a.Stats()
	if s.InvokesSent != 1 || s.RepliesHandled != 1 {
		t.Fatalf("caller stats = %+v", s)
	}
	// Request bumped both ends once, reply bumped both ends once: 2 == 2.
	a.With(func(m Mutator) {
		if ic := m.n.table.Stub(ref).IC; ic != 2 {
			t.Errorf("stub IC = %d, want 2", ic)
		}
	})
	b.With(func(m Mutator) {
		if ic := m.n.table.Scion("A", target).IC; ic != 2 {
			t.Errorf("scion IC = %d, want 2", ic)
		}
	})
}

func TestInvokeValidation(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a := tn.n("A")
	// Local target.
	if err := a.Invoke(ids.GlobalRef{Node: "A", Obj: 1}, "noop", nil, nil); err == nil {
		t.Error("local target accepted")
	}
	// Reference not held.
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: 1}, "noop", nil, nil); err == nil {
		t.Error("unheld reference accepted")
	}
	// Exporting a nonexistent own object.
	holder := allocRooted(t, a)
	target := alloc(tn.n("B"))
	tn.grant("A", holder, "B", target)
	err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "store",
		[]ids.GlobalRef{{Node: "A", Obj: 999}}, nil)
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("err = %v", err)
	}
}

func TestInvokeNoSuchMethodAndObject(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	target := alloc(b)
	tn.grant("A", holder, "B", target)
	ref := ids.GlobalRef{Node: "B", Obj: target}

	var errs []string
	cb := func(_ Mutator, r Reply) {
		if !r.OK {
			errs = append(errs, r.Err)
		}
	}
	if err := a.Invoke(ref, "bogus", nil, cb); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	// Delete the object at B, then invoke again.
	b.With(func(m Mutator) { m.n.heap.Delete(target) })
	if err := a.Invoke(ref, "noop", nil, cb); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if len(errs) != 2 || !strings.Contains(errs[0], "no such method") || !strings.Contains(errs[1], "no such object") {
		t.Fatalf("errs = %v", errs)
	}
	if got := a.Stats().CallsFailed; got != 2 {
		t.Fatalf("CallsFailed = %d", got)
	}
}

func TestStoreExportCreatesScionAndStub(t *testing.T) {
	// A exports a reference to its own object X into B's object: scion
	// (B -> X) at A, stub at B, and B's object holds the remote ref.
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	x := alloc(a)
	a.With(func(m Mutator) {
		if err := m.Link(holder, x); err != nil {
			t.Error(err)
		}
	})
	target := alloc(b)
	b.With(func(m Mutator) {
		if err := m.Root(target); err != nil {
			t.Error(err)
		}
	})
	tn.grant("A", holder, "B", target)

	xRef := ids.GlobalRef{Node: "A", Obj: x}
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "store", []ids.GlobalRef{xRef}, nil); err != nil {
		t.Fatal(err)
	}
	tn.settle()

	a.With(func(m Mutator) {
		if m.n.table.Scion("B", x) == nil {
			t.Error("scion (B -> X) missing at A")
		}
	})
	b.With(func(m Mutator) {
		if m.n.table.Stub(xRef) == nil {
			t.Error("stub for X missing at B")
		}
		refs := m.Refs(target)
		if len(refs) != 1 || refs[0] != xRef {
			t.Errorf("target refs = %v", refs)
		}
	})
	// Now A drops its local path to X and collects: X must SURVIVE thanks
	// to B's scion.
	a.With(func(m Mutator) {
		if err := m.Unlink(holder, x); err != nil {
			t.Error(err)
		}
	})
	a.RunLGC()
	tn.settle()
	a.With(func(m Mutator) {
		if !m.Exists(x) {
			t.Error("X reclaimed despite remote reference")
		}
	})
}

func TestThirdPartyExportViaCreateScion(t *testing.T) {
	// A holds a ref to C's object and exports it to B: CreateScion flows
	// A -> C, then the invoke A -> B.
	tn := newTestNet(t, Config{}, "A", "B", "C")
	a, b, c := tn.n("A"), tn.n("B"), tn.n("C")
	holderA := allocRooted(t, a)
	objC := alloc(c)
	tn.grant("A", holderA, "C", objC)
	targetB := alloc(b)
	b.With(func(m Mutator) {
		if err := m.Root(targetB); err != nil {
			t.Error(err)
		}
	})
	tn.grant("A", holderA, "B", targetB)

	cRef := ids.GlobalRef{Node: "C", Obj: objC}
	done := false
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: targetB}, "store",
		[]ids.GlobalRef{cRef}, func(_ Mutator, r Reply) {
			done = true
			if !r.OK {
				t.Errorf("reply: %s", r.Err)
			}
		}); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if !done {
		t.Fatal("no reply")
	}
	c.With(func(m Mutator) {
		if m.n.table.Scion("B", objC) == nil {
			t.Error("scion (B -> objC) missing at C")
		}
	})
	b.With(func(m Mutator) {
		if m.n.table.Stub(cRef) == nil {
			t.Error("stub for objC missing at B")
		}
	})
	// The copy bumped the (A -> objC) pair on both ends equally.
	var stubIC, scionIC uint64
	a.With(func(m Mutator) { stubIC = m.n.table.Stub(cRef).IC })
	c.With(func(m Mutator) { scionIC = m.n.table.Scion("A", objC).IC })
	if stubIC == 0 || stubIC != scionIC {
		t.Errorf("copy counters diverge: stub=%d scion=%d", stubIC, scionIC)
	}
}

func TestThirdPartyExportFailureFailsCall(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B", "C")
	a, b := tn.n("A"), tn.n("B")
	holderA := allocRooted(t, a)
	targetB := alloc(b)
	tn.grant("A", holderA, "B", targetB)
	// A claims to hold a reference to a nonexistent C object via pin
	// backdoor (simulating a stale reference).
	staleRef := ids.GlobalRef{Node: "C", Obj: 42}
	if err := a.HoldRemote(holderA, staleRef); err != nil {
		t.Fatal(err)
	}
	var reply *Reply
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: targetB}, "store",
		[]ids.GlobalRef{staleRef}, func(_ Mutator, r Reply) { reply = &r }); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if reply == nil || reply.OK || !strings.Contains(reply.Err, "export failed") {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestGetReturnsRefsAndImportsThem(t *testing.T) {
	// B's object holds a ref to C's object; A calls get on it and receives
	// (imports) the reference, becoming able to invoke C directly.
	tn := newTestNet(t, Config{}, "A", "B", "C")
	a, b, c := tn.n("A"), tn.n("B"), tn.n("C")
	holderA := allocRooted(t, a)
	objB := alloc(b)
	b.With(func(m Mutator) {
		if err := m.Root(objB); err != nil {
			t.Error(err)
		}
	})
	objC := alloc(c)
	tn.grant("B", objB, "C", objC)
	tn.grant("A", holderA, "B", objB)

	cRef := ids.GlobalRef{Node: "C", Obj: objC}
	var got []ids.GlobalRef
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: objB}, "get", nil,
		func(m Mutator, r Reply) {
			if !r.OK {
				t.Errorf("get failed: %s", r.Err)
				return
			}
			got = r.Returns
			// Store the imported ref while pinned.
			for _, ref := range r.Returns {
				if err := m.Store(holderA, ref); err != nil {
					t.Error(err)
				}
			}
		}); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if len(got) != 1 || got[0] != cRef {
		t.Fatalf("returns = %v", got)
	}
	// A can now invoke C.
	ok := false
	if err := a.Invoke(cRef, "noop", nil, func(_ Mutator, r Reply) { ok = r.OK }); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if !ok {
		t.Fatal("invoke through imported reference failed")
	}
	// Scion (A -> objC) must exist at C (created during return export).
	c.With(func(m Mutator) {
		if m.n.table.Scion("A", objC) == nil {
			t.Error("scion (A -> objC) missing at C")
		}
	})
}

func TestAcquireRemote(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	target := alloc(b)
	ref := ids.GlobalRef{Node: "B", Obj: target}

	acquired := false
	if err := a.AcquireRemote(ref, func(m Mutator, ok bool) {
		acquired = ok
		if ok {
			if err := m.Store(holder, ref); err != nil {
				t.Error(err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if !acquired {
		t.Fatal("acquire failed")
	}
	b.With(func(m Mutator) {
		if m.n.table.Scion("A", target) == nil {
			t.Error("scion missing after acquire")
		}
	})
	// Acquire of a local or missing object.
	if err := a.AcquireRemote(ids.GlobalRef{Node: "A", Obj: 1}, nil); err == nil {
		t.Error("local acquire accepted")
	}
	failed := false
	if err := a.AcquireRemote(ids.GlobalRef{Node: "B", Obj: 999}, func(_ Mutator, ok bool) {
		failed = !ok
	}); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if !failed {
		t.Error("acquire of missing object reported success")
	}
}

func TestAllocChildMethod(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	target := alloc(b)
	b.With(func(m Mutator) {
		if err := m.Root(target); err != nil {
			t.Error(err)
		}
	})
	tn.grant("A", holder, "B", target)

	var child ids.GlobalRef
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "alloc-child", nil,
		func(m Mutator, r Reply) {
			if !r.OK || len(r.Returns) != 1 {
				t.Errorf("reply = %+v", r)
				return
			}
			child = r.Returns[0]
			if err := m.Store(holder, child); err != nil {
				t.Error(err)
			}
		}); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if child.Node != "B" {
		t.Fatalf("child = %v", child)
	}
	if b.NumObjects() != 2 {
		t.Fatalf("B objects = %d", b.NumObjects())
	}
	// A holds the child remotely: scion must exist.
	b.With(func(m Mutator) {
		if m.n.table.Scion("A", child.Obj) == nil {
			t.Error("scion for returned child missing")
		}
	})
}

func TestDropAllAndDropMethods(t *testing.T) {
	tn := newTestNet(t, Config{}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	target := alloc(b)
	other := alloc(b)
	b.With(func(m Mutator) {
		if err := m.Root(target); err != nil {
			t.Error(err)
		}
		if err := m.Link(target, other); err != nil {
			t.Error(err)
		}
	})
	tn.grant("A", holder, "B", target)

	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "drop-all", nil, nil); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	b.With(func(m Mutator) {
		if refs := m.Refs(target); len(refs) != 0 {
			t.Errorf("refs after drop-all = %v", refs)
		}
	})
}

func TestDisableDGCSkipsBookkeeping(t *testing.T) {
	tn := newTestNet(t, Config{DisableDGC: true}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	target := alloc(b)
	ok := false
	// No stub needed with DGC disabled.
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "noop", nil,
		func(_ Mutator, r Reply) { ok = r.OK }); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	if !ok {
		t.Fatal("invoke failed")
	}
	if a.NumStubs() != 0 || b.NumScions() != 0 {
		t.Fatalf("bookkeeping happened: stubs=%d scions=%d", a.NumStubs(), b.NumScions())
	}
}

func TestCallTimeoutReleasesPins(t *testing.T) {
	tn := newTestNet(t, Config{CallTimeoutTicks: 2}, "A", "B")
	a, b := tn.n("A"), tn.n("B")
	holder := allocRooted(t, a)
	target := alloc(b)
	tn.grant("A", holder, "B", target)
	// Lose the request so no reply ever comes.
	tn.net.SetFaults(transport.Faults{LossRate: 1.0, Affects: []wire.Kind{wire.KindInvokeRequest}})

	var timedOut bool
	if err := a.Invoke(ids.GlobalRef{Node: "B", Obj: target}, "noop", nil,
		func(_ Mutator, r Reply) { timedOut = !r.OK && strings.Contains(r.Err, "timed out") }); err != nil {
		t.Fatal(err)
	}
	tn.settle()
	a.Tick()
	a.Tick()
	a.Tick()
	if !timedOut {
		t.Fatal("call did not time out")
	}
	a.With(func(m Mutator) {
		if len(m.n.pins) != 0 {
			t.Errorf("pins leaked: %v", m.n.pins)
		}
	})
}

func TestTickRunsDaemons(t *testing.T) {
	tn := newTestNet(t, Config{LGCEvery: 2, SnapshotEvery: 3, DetectEvery: 6}, "A")
	a := tn.n("A")
	for i := 0; i < 6; i++ {
		a.Tick()
	}
	s := a.Stats()
	if s.Clock != 6 {
		t.Fatalf("clock = %d", s.Clock)
	}
	if s.LGCRuns != 3 {
		t.Errorf("LGCRuns = %d, want 3", s.LGCRuns)
	}
	if s.Summarizations != 2 {
		t.Errorf("Summarizations = %d, want 2", s.Summarizations)
	}
	if a.Summary() == nil {
		t.Error("no summary after ticks")
	}
}

func TestMutatorStoreRequiresHeldRef(t *testing.T) {
	tn := newTestNet(t, Config{}, "A")
	a := tn.n("A")
	obj := alloc(a)
	a.With(func(m Mutator) {
		if err := m.Store(obj, ids.GlobalRef{Node: "B", Obj: 7}); err == nil {
			t.Error("storing unheld remote ref accepted")
		}
	})
}

func TestMutatorLocalOps(t *testing.T) {
	tn := newTestNet(t, Config{}, "A")
	a := tn.n("A")
	a.With(func(m Mutator) {
		x := m.Alloc([]byte("hi"))
		y := m.Alloc(nil)
		if err := m.Link(x, y); err != nil {
			t.Fatal(err)
		}
		if got := m.Refs(x); len(got) != 1 || got[0] != m.GlobalRef(y) {
			t.Fatalf("refs = %v", got)
		}
		if string(m.Payload(x)) != "hi" {
			t.Fatalf("payload = %q", m.Payload(x))
		}
		if err := m.SetPayload(x, []byte("bye")); err != nil {
			t.Fatal(err)
		}
		if err := m.SetPayload(999, nil); err == nil {
			t.Fatal("SetPayload on missing object accepted")
		}
		if m.Payload(999) != nil {
			t.Fatal("payload of missing object")
		}
		// Store of a local ref via GlobalRef form.
		if err := m.Store(y, m.GlobalRef(x)); err != nil {
			t.Fatal(err)
		}
		if err := m.Drop(y, m.GlobalRef(x)); err != nil {
			t.Fatal(err)
		}
		if err := m.Unlink(x, y); err != nil {
			t.Fatal(err)
		}
		m.Unroot(x) // no-op, must not panic
	})
	if a.ID() != "A" {
		t.Fatal("ID mismatch")
	}
}
