package node

import (
	"fmt"
	"path/filepath"
	"time"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/snapshot"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// Collector daemons: machine inputs invoked periodically by a driver
// (Node.Tick under the simulator's schedule, LiveRuntime's wall-clock
// tickers) or explicitly by tests.

// Tick advances the logical clock by one, expires timed-out calls and runs
// the periodic daemons configured in Config. The order within a tick is
// LGC, then snapshot/summarize, then detection — matching the data flow
// (detection consumes summaries, summaries consume post-LGC tables).
func (m *Machine) Tick() {
	m.AdvanceClock()
	if m.cfg.LGCEvery > 0 && m.clock%m.cfg.LGCEvery == 0 {
		m.RunLGC()
	}
	if m.cfg.SnapshotEvery > 0 && m.clock%m.cfg.SnapshotEvery == 0 {
		_ = m.Summarize()
	}
	if m.cfg.DetectEvery > 0 && m.clock%m.cfg.DetectEvery == 0 {
		m.RunDetection()
	}
}

// AdvanceClock moves logical time forward by one tick and expires pending
// calls whose deadline passed. Drivers with wall-clock daemon scheduling
// (LiveRuntime) use it instead of Tick, which additionally runs the
// Config-scheduled daemons.
func (m *Machine) AdvanceClock() {
	m.clock++
	m.expireCalls()
	m.membTick()
	// Periodically age out tracked detections that never reached a terminal
	// outcome here (e.g. the origin of a detection that ended elsewhere).
	if m.clock%64 == 0 && len(m.inflight) > 0 {
		cutoff := time.Now().Add(-inflightMaxAge)
		for det, inf := range m.inflight {
			if inf.first.Before(cutoff) {
				delete(m.inflight, det)
			}
		}
		m.met.DetectionsInflight.Set(int64(len(m.inflight)))
	}
}

func (m *Machine) expireCalls() {
	for id, pc := range m.pendingCalls {
		if pc.deadline != 0 && m.clock > pc.deadline {
			delete(m.pendingCalls, id)
			for _, r := range pc.pinned {
				m.unpin(r)
			}
			m.stats.CallsFailed++
			m.met.CallsFailed.Inc()
			if pc.cb != nil {
				m.callback(func() { pc.cb(Mutator{n: m}, Reply{OK: false, Err: "call timed out"}) })
			}
		}
	}
}

// RunLGC performs one local collection and emits NewSetStubs messages.
func (m *Machine) RunLGC() lgc.Result {
	start := time.Now()
	// Remember every current peer before the collection can delete their
	// last stub, so they still receive the (empty) stub set that lets them
	// reclaim scions.
	for _, s := range m.table.Stubs() {
		m.acyclic.NotePeer(s.Target.Node)
	}
	res := m.lgc.Collect(m.pinnedRefs()...)
	m.stats.LGCRuns++
	m.stats.ObjectsSwept += uint64(res.Swept)
	m.met.LGCRuns.Inc()
	m.met.ObjectsSwept.Add(uint64(res.Swept))
	m.emit(trace.KindLGC, "swept=%d live=%d stubs-deleted=%d", res.Swept, res.Live, res.StubsDeleted)

	// "This new set of stubs is then sent to remote processes" (§1).
	for _, ts := range m.acyclic.GenerateTargeted() {
		m.stats.StubSetsSent++
		m.met.StubSetsSent.Inc()
		m.send(ts.To, &wire.NewSetStubs{Set: ts.Msg})
	}
	m.lastLGC = start
	m.met.LGCDuration.Observe(time.Since(start).Seconds())
	m.syncGauges()
	return res
}

// Summarize takes a snapshot of the object graph and rebuilds the
// summarized graph description (§3 "Graph Summarization"). When a codec is
// configured the snapshot is serialized first — the operation whose cost §4
// measures — and optionally written to SnapshotDir.
func (m *Machine) Summarize() error {
	// Mutation-epoch cache: when neither the heap nor the reference tables
	// changed since the last rebuild, the existing summary is still exact,
	// so serialization and summarization are both skipped. The CDM
	// accumulators are still reset — reprocessing re-delivered CDMs against
	// the same summary is the loss-retry mechanism, and must not be
	// suppressed by dedup state surviving a (cheap) summarization round.
	if m.summary != nil && m.heap.Gen() == m.sumHeapGen && m.table.Gen() == m.sumTableGen {
		m.stats.Summarizations++
		m.stats.SummaryCacheHits++
		m.met.Summarizations.Inc()
		m.met.SummaryCacheHits.Inc()
		m.lastSummarize = time.Now()
		m.emit(trace.KindSummarize, "version=%d scions=%d stubs=%d cached",
			m.summary.Version, len(m.summary.Scions), len(m.summary.Stubs))
		m.cdmAcc = make(map[core.DetectionID]*detAcc)
		m.cdmAborted = make(map[core.DetectionID]struct{})
		return nil
	}
	start := time.Now()
	m.snapVersion++
	if m.cfg.Codec != nil {
		data, err := m.cfg.Codec.Encode(m.heap)
		if err != nil {
			return m.errf("snapshot encode: %v", err)
		}
		m.stats.SnapshotBytes += uint64(len(data))
		if m.cfg.SnapshotDir != "" {
			path := filepath.Join(m.cfg.SnapshotDir,
				fmt.Sprintf("%s-%06d.%s.snap", m.id, m.snapVersion, m.cfg.Codec.Name()))
			if err := snapshot.WriteFile(m.cfg.Codec, m.heap, path); err != nil {
				return err
			}
		}
	}
	m.summary = snapshot.Summarize(m.heap, m.table, m.snapVersion)
	m.stats.Summarizations++
	m.met.Summarizations.Inc()
	m.lastSummarize = start
	m.met.SummarizeDuration.Observe(time.Since(start).Seconds())
	m.emit(trace.KindSummarize, "version=%d scions=%d stubs=%d",
		m.snapVersion, len(m.summary.Scions), len(m.summary.Stubs))
	// A new summary changes CDM processing results: reset the accumulators
	// so stale drops cannot mask newly-useful deliveries.
	m.cdmAcc = make(map[core.DetectionID]*detAcc)
	m.cdmAborted = make(map[core.DetectionID]struct{})
	m.sumHeapGen = m.heap.Gen()
	m.sumTableGen = m.table.Gen()
	m.syncGauges()
	return nil
}

// RunDetection nominates cycle candidates from the current summary and
// starts detections, up to Config.MaxDetectionsPerRound. It returns the
// number started.
func (m *Machine) RunDetection() int {
	if m.summary == nil {
		return 0
	}
	if m.memb != nil && m.memb.Draining() {
		// A departing node starts no new detections; its handoffs and the
		// survivors' relaunches cover its candidates.
		return 0
	}
	cands := m.selector.Candidates(m.summary, m.clock)
	if m.memb != nil {
		// Scions held by dead members are waiting on lease reclamation, not
		// cycle detection; launching from them would only abort.
		live := cands[:0]
		for _, c := range cands {
			if !m.memb.IsDead(c.Src) {
				live = append(live, c)
			}
		}
		cands = live
	}
	if m.cfg.MaxDetectionsPerRound > 0 && len(cands) > m.cfg.MaxDetectionsPerRound {
		// Rotate through the candidate list across rounds so a bounded
		// budget still eventually tries every candidate (completeness: a
		// detection started at a dependency-blocked scion fails until its
		// upstream is reclaimed, so no fixed prefix may monopolize the
		// budget).
		k := m.cfg.MaxDetectionsPerRound
		off := int(m.detectCursor) % len(cands)
		rotated := make([]ids.RefID, 0, k)
		for i := 0; i < k; i++ {
			rotated = append(rotated, cands[(off+i)%len(cands)])
		}
		m.detectCursor += uint64(k)
		cands = rotated
	}
	started := 0
	m.beginCDMBatch()
	for _, c := range cands {
		det, out := m.detector.StartDetection(m.summary, c)
		tid := core.TraceIDFor(det)
		switch out.Kind {
		case core.OutcomeForwarded:
			started++
			m.met.DetectionsStarted.Inc()
			m.met.CDMsSent.Add(uint64(out.Forwarded))
			m.trackDetection(det, tid)
			m.emitT(trace.KindDetectionStart, tid, "det=%s/%d candidate=%s", det.Origin, det.Seq, c)
		case core.OutcomeCycleFound:
			// EagerComplete only: the first derivation already closed.
			m.met.CyclesFound.Inc()
			m.emitT(trace.KindCycleFound, tid, "det=%s/%d scions=%d",
				det.Origin, det.Seq, len(out.GarbageScions))
			m.emitT(trace.KindDetectionEnd, tid, "det=%s/%d outcome=%s", det.Origin, det.Seq, out.Kind)
		}
	}
	m.flushCDMBatch()
	m.syncGauges()
	return started
}

// Summary returns the machine's current summarized snapshot (nil before
// the first summarization). The summary is immutable.
func (m *Machine) Summary() *snapshot.Summary { return m.summary }

// detectorActions adapts Machine to core.Actions. Methods are invoked by
// the detector, which only runs inside the machine.
type detectorActions Machine

// SendCDMs implements core.Actions. The derivation is shared, unflattened,
// by every outgoing message of the fan-out: in-process receivers merge it
// directly and the codec flattens lazily if a message reaches a real socket.
// The detection's trace id rides every message of the fan-out.
func (a *detectorActions) SendCDMs(det core.DetectionID, traceID uint64, alongs []ids.RefID, alg core.Alg, hops int) {
	m := (*Machine)(a)
	if m.batch != nil {
		// Batched mode: park the fan-out per edge; flushCDMBatch groups
		// every detection exiting via the same reference into one message
		// (and strips edges through dead members there).
		m.batch.add(det, traceID, alongs, alg, hops)
		return
	}
	if m.memb != nil {
		live := make([]ids.RefID, 0, len(alongs))
		for _, along := range alongs {
			if !m.memberDeadEdge(along) {
				live = append(live, along)
			}
		}
		if len(live) == 0 && len(alongs) > 0 {
			m.abortDetectionMemberDead(det, traceID)
			return
		}
		alongs = live
	}
	m.stats.CDMMsgsSent += uint64(len(alongs))
	for _, along := range alongs {
		m.emitT(trace.KindCDMSent, traceID, "det=%s/%d to=%s along=%s hops=%d",
			det.Origin, det.Seq, along.Dst.Node, along, hops)
		m.send(along.Dst.Node, wire.NewCDMFromAlg(det, along, alg, hops, traceID))
	}
}

// DeleteOwnScion implements core.Actions: the detector proved the scion
// belongs to a distributed garbage cycle.
func (a *detectorActions) DeleteOwnScion(ref ids.RefID) {
	m := (*Machine)(a)
	if ref.Dst.Node != m.id {
		return
	}
	m.table.DeleteScion(ref.Src, ref.Dst.Obj)
	m.selector.Forget(ref)
	m.met.ScionsFreed.Inc()
	m.emit(trace.KindScionDeleted, "ref=%s reason=cycle", ref)
}

// SendDeleteScion implements core.Actions (BroadcastDelete mode).
func (a *detectorActions) SendDeleteScion(det core.DetectionID, ref ids.RefID) {
	m := (*Machine)(a)
	m.send(ref.Dst.Node, &wire.DeleteScion{Det: det, Ref: ref})
}
