package node

import (
	"fmt"
	"path/filepath"

	"dgc/internal/core"
	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/snapshot"
	"dgc/internal/trace"
	"dgc/internal/wire"
)

// Collector daemons. Each public entry locks; tests and the cluster
// scheduler may also drive them through Tick.

// Tick advances the node's logical clock by one, expires timed-out calls and
// runs the periodic daemons configured in Config. The order within a tick is
// LGC, then snapshot/summarize, then detection — matching the data flow
// (detection consumes summaries, summaries consume post-LGC tables).
func (n *Node) Tick() {
	n.withStage(func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.clock++
		n.expireCallsLocked()
		if n.cfg.LGCEvery > 0 && n.clock%n.cfg.LGCEvery == 0 {
			n.runLGCLocked()
		}
		if n.cfg.SnapshotEvery > 0 && n.clock%n.cfg.SnapshotEvery == 0 {
			n.summarizeLocked()
		}
		if n.cfg.DetectEvery > 0 && n.clock%n.cfg.DetectEvery == 0 {
			n.runDetectionLocked()
		}
	})
}

// Clock returns the node's logical time.
func (n *Node) Clock() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clock
}

func (n *Node) expireCallsLocked() {
	for id, pc := range n.pendingCalls {
		if pc.deadline != 0 && n.clock > pc.deadline {
			delete(n.pendingCalls, id)
			for _, r := range pc.pinned {
				n.unpin(r)
			}
			n.stats.CallsFailed++
			if pc.cb != nil {
				pc.cb(Mutator{n: n}, Reply{OK: false, Err: "call timed out"})
			}
		}
	}
}

// RunLGC performs one local collection and emits NewSetStubs messages.
func (n *Node) RunLGC() lgc.Result {
	var res lgc.Result
	n.withStage(func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		res = n.runLGCLocked()
	})
	return res
}

func (n *Node) runLGCLocked() lgc.Result {
	// Remember every current peer before the collection can delete their
	// last stub, so they still receive the (empty) stub set that lets them
	// reclaim scions.
	for _, s := range n.table.Stubs() {
		n.acyclic.NotePeer(s.Target.Node)
	}
	res := n.lgc.Collect(n.pinnedRefs()...)
	n.stats.LGCRuns++
	n.stats.ObjectsSwept += uint64(res.Swept)
	n.emit(trace.KindLGC, "swept=%d live=%d stubs-deleted=%d", res.Swept, res.Live, res.StubsDeleted)

	// "This new set of stubs is then sent to remote processes" (§1).
	for _, ts := range n.acyclic.GenerateTargeted() {
		n.stats.StubSetsSent++
		n.send(ts.To, &wire.NewSetStubs{Set: ts.Msg})
	}
	return res
}

// Summarize takes a snapshot of the object graph and rebuilds the node's
// summarized graph description (§3 "Graph Summarization"). When a codec is
// configured the snapshot is serialized first — the operation whose cost §4
// measures — and optionally written to SnapshotDir.
func (n *Node) Summarize() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.summarizeLocked()
}

func (n *Node) summarizeLocked() error {
	// Mutation-epoch cache: when neither the heap nor the reference tables
	// changed since the last rebuild, the existing summary is still exact,
	// so serialization and summarization are both skipped. The CDM
	// accumulators are still reset — reprocessing re-delivered CDMs against
	// the same summary is the loss-retry mechanism, and must not be
	// suppressed by dedup state surviving a (cheap) summarization round.
	if n.summary != nil && n.heap.Gen() == n.sumHeapGen && n.table.Gen() == n.sumTableGen {
		n.stats.Summarizations++
		n.stats.SummaryCacheHits++
		n.emit(trace.KindSummarize, "version=%d scions=%d stubs=%d cached",
			n.summary.Version, len(n.summary.Scions), len(n.summary.Stubs))
		n.cdmAcc = make(map[core.DetectionID]*detAcc)
		n.cdmAborted = make(map[core.DetectionID]struct{})
		return nil
	}
	n.snapVersion++
	if n.cfg.Codec != nil {
		data, err := n.cfg.Codec.Encode(n.heap)
		if err != nil {
			return n.errf("snapshot encode: %v", err)
		}
		n.stats.SnapshotBytes += uint64(len(data))
		if n.cfg.SnapshotDir != "" {
			path := filepath.Join(n.cfg.SnapshotDir,
				fmt.Sprintf("%s-%06d.%s.snap", n.id, n.snapVersion, n.cfg.Codec.Name()))
			if err := snapshot.WriteFile(n.cfg.Codec, n.heap, path); err != nil {
				return err
			}
		}
	}
	n.summary = snapshot.Summarize(n.heap, n.table, n.snapVersion)
	n.stats.Summarizations++
	n.emit(trace.KindSummarize, "version=%d scions=%d stubs=%d",
		n.snapVersion, len(n.summary.Scions), len(n.summary.Stubs))
	// A new summary changes CDM processing results: reset the accumulators
	// so stale drops cannot mask newly-useful deliveries.
	n.cdmAcc = make(map[core.DetectionID]*detAcc)
	n.cdmAborted = make(map[core.DetectionID]struct{})
	n.sumHeapGen = n.heap.Gen()
	n.sumTableGen = n.table.Gen()
	return nil
}

// RunDetection nominates cycle candidates from the current summary and
// starts detections, up to Config.MaxDetectionsPerRound. It returns the
// number started.
func (n *Node) RunDetection() int {
	var started int
	n.withStage(func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		started = n.runDetectionLocked()
	})
	return started
}

func (n *Node) runDetectionLocked() int {
	if n.summary == nil {
		return 0
	}
	cands := n.selector.Candidates(n.summary, n.clock)
	if n.cfg.MaxDetectionsPerRound > 0 && len(cands) > n.cfg.MaxDetectionsPerRound {
		// Rotate through the candidate list across rounds so a bounded
		// budget still eventually tries every candidate (completeness: a
		// detection started at a dependency-blocked scion fails until its
		// upstream is reclaimed, so no fixed prefix may monopolize the
		// budget).
		k := n.cfg.MaxDetectionsPerRound
		off := int(n.detectCursor) % len(cands)
		rotated := make([]ids.RefID, 0, k)
		for i := 0; i < k; i++ {
			rotated = append(rotated, cands[(off+i)%len(cands)])
		}
		n.detectCursor += uint64(k)
		cands = rotated
	}
	started := 0
	for _, c := range cands {
		det, out := n.detector.StartDetection(n.summary, c)
		if out.Kind == core.OutcomeForwarded {
			started++
			n.emit(trace.KindDetectionStart, "det=%s/%d candidate=%s", det.Origin, det.Seq, c)
		}
	}
	return started
}

// Summary returns the node's current summarized snapshot (nil before the
// first summarization). The summary is immutable; callers may read it
// without holding the node lock.
func (n *Node) Summary() *snapshot.Summary {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.summary
}

// detectorActions adapts Node to core.Actions. Methods are invoked by the
// detector, which only runs under the node lock.
type detectorActions Node

// SendCDMs implements core.Actions. The derivation is shared, unflattened,
// by every outgoing message of the fan-out: in-process receivers merge it
// directly and the codec flattens lazily if a message reaches a real socket.
func (a *detectorActions) SendCDMs(det core.DetectionID, alongs []ids.RefID, alg core.Alg, hops int) {
	n := (*Node)(a)
	for _, along := range alongs {
		n.send(along.Dst.Node, wire.NewCDMFromAlg(det, along, alg, hops))
	}
}

// DeleteOwnScion implements core.Actions: the detector proved the scion
// belongs to a distributed garbage cycle.
func (a *detectorActions) DeleteOwnScion(ref ids.RefID) {
	n := (*Node)(a)
	if ref.Dst.Node != n.id {
		return
	}
	n.table.DeleteScion(ref.Src, ref.Dst.Obj)
	n.selector.Forget(ref)
	n.emit(trace.KindScionDeleted, "ref=%s reason=cycle", ref)
}

// SendDeleteScion implements core.Actions (BroadcastDelete mode).
func (a *detectorActions) SendDeleteScion(det core.DetectionID, ref ids.RefID) {
	n := (*Node)(a)
	n.send(ref.Dst.Node, &wire.DeleteScion{Det: det, Ref: ref})
}
