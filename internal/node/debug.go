package node

import (
	"fmt"
	"sort"
	"time"
)

// DebugSnapshot is a point-in-time, JSON-friendly view of one node's
// collector state, served by the /debug/dgc endpoint (obs.NewHTTPHandler).
// It is diagnostic output only: nothing in the protocol reads it.
type DebugSnapshot struct {
	Node            string `json:"node"`
	Clock           uint64 `json:"clock"`
	Objects         int    `json:"objects"`
	Scions          int    `json:"scions"`
	Stubs           int    `json:"stubs"`
	SummaryVersion  uint64 `json:"summary_version"`
	PendingCalls    int    `json:"pending_calls"`
	PendingExports  int    `json:"pending_exports"`
	CDMAccumulators int    `json:"cdm_accumulators"`

	// LastLGC/LastSummarize are RFC3339Nano wall-clock stamps of the most
	// recent daemon runs; empty before the first run.
	LastLGC       string `json:"last_lgc,omitempty"`
	LastSummarize string `json:"last_summarize,omitempty"`

	// InflightDetections lists the detections currently tracked for causal
	// tracing, in (origin, seq) order.
	InflightDetections []InflightDetection `json:"inflight_detections"`

	// Accumulators lists the per-detection CDM accumulators with their ages,
	// in (origin, seq) order: the "which detection is stuck" view behind the
	// dgc_detection_inflight_age_seconds gauge.
	Accumulators []AccumulatorInfo `json:"accumulators"`

	// TraceEventsDropped is the trace ring's eviction count (0 when no
	// trace.Log is configured).
	TraceEventsDropped uint64 `json:"trace_events_dropped,omitempty"`

	// Mailbox reports the LiveRuntime event queue; nil under other drivers.
	Mailbox *MailboxStats `json:"mailbox,omitempty"`
}

// InflightDetection is one tracked detection in a DebugSnapshot.
type InflightDetection struct {
	Origin    string `json:"origin"`
	Seq       uint64 `json:"seq"`
	TraceID   string `json:"trace_id"` // %016x of the causal trace id
	FirstSeen string `json:"first_seen"`
	AgeMS     int64  `json:"age_ms"`
}

// AccumulatorInfo is one per-detection CDM accumulator in a DebugSnapshot.
type AccumulatorInfo struct {
	Origin  string `json:"origin"`
	Seq     uint64 `json:"seq"`
	Entries int    `json:"entries"` // references in the accumulated algebra
	Alongs  int    `json:"alongs"`  // distinct scions the detection arrived along
	AgeMS   int64  `json:"age_ms"`  // since the accumulator was created
}

// MailboxStats reports a LiveRuntime's bounded event queue.
type MailboxStats struct {
	Depth    int    `json:"depth"`
	Capacity int    `json:"capacity"`
	Dropped  uint64 `json:"dropped"`
}

// DebugSnapshot captures the machine's current diagnostic view.
func (m *Machine) DebugSnapshot() DebugSnapshot {
	now := time.Now()
	snap := DebugSnapshot{
		Node:            string(m.id),
		Clock:           m.clock,
		Objects:         m.heap.Len(),
		Scions:          m.table.NumScions(),
		Stubs:           m.table.NumStubs(),
		PendingCalls:    len(m.pendingCalls),
		PendingExports:  len(m.pendingExports),
		CDMAccumulators: len(m.cdmAcc),
	}
	if m.summary != nil {
		snap.SummaryVersion = m.summary.Version
	}
	if !m.lastLGC.IsZero() {
		snap.LastLGC = m.lastLGC.Format(time.RFC3339Nano)
	}
	if !m.lastSummarize.IsZero() {
		snap.LastSummarize = m.lastSummarize.Format(time.RFC3339Nano)
	}
	snap.InflightDetections = make([]InflightDetection, 0, len(m.inflight))
	for det, inf := range m.inflight {
		snap.InflightDetections = append(snap.InflightDetections, InflightDetection{
			Origin:    string(det.Origin),
			Seq:       det.Seq,
			TraceID:   fmt.Sprintf("%016x", inf.trace),
			FirstSeen: inf.first.Format(time.RFC3339Nano),
			AgeMS:     now.Sub(inf.first).Milliseconds(),
		})
	}
	sort.Slice(snap.InflightDetections, func(i, j int) bool {
		a, b := snap.InflightDetections[i], snap.InflightDetections[j]
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
	snap.Accumulators = make([]AccumulatorInfo, 0, len(m.cdmAcc))
	for det, acc := range m.cdmAcc {
		snap.Accumulators = append(snap.Accumulators, AccumulatorInfo{
			Origin:  string(det.Origin),
			Seq:     det.Seq,
			Entries: acc.alg.Len(),
			Alongs:  len(acc.alongs),
			AgeMS:   now.Sub(acc.first).Milliseconds(),
		})
	}
	sort.Slice(snap.Accumulators, func(i, j int) bool {
		a, b := snap.Accumulators[i], snap.Accumulators[j]
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
	if m.cfg.Trace != nil {
		snap.TraceEventsDropped = m.cfg.Trace.Dropped()
	}
	return snap
}

// DebugSnapshot captures the node's current diagnostic view.
func (n *Node) DebugSnapshot() DebugSnapshot {
	var snap DebugSnapshot
	n.step("DebugSnapshot", func(m *Machine) { snap = m.DebugSnapshot() })
	return snap
}

// DebugSnapshot captures the runtime's current diagnostic view, including
// mailbox statistics (zero value after Close).
func (r *LiveRuntime) DebugSnapshot() DebugSnapshot {
	var snap DebugSnapshot
	_ = r.do("DebugSnapshot", func(m *Machine) { snap = m.DebugSnapshot() })
	snap.Mailbox = &MailboxStats{
		Depth:    len(r.mailbox),
		Capacity: r.rcfg.Mailbox,
		Dropped:  r.mach.met.MailboxDropped.Value(),
	}
	return snap
}
