package node

import (
	"dgc/internal/ids"
)

// Builtin methods registered on every node. Together they let applications
// (and the workload generators) perform arbitrary distributed graph
// mutation through the remote-invocation path alone, which is what
// exercises the stub/scion instrumentation the way the paper's remoting
// layer does.
//
//	noop            — pure invocation: only bumps invocation counters.
//	store           — target object stores every argument reference.
//	drop            — target object drops every argument reference.
//	drop-all        — target object drops all references it holds.
//	get             — returns every reference held by the target object.
//	alloc-child     — allocates a fresh object, links it from the target,
//	                  and returns its reference.
func registerBuiltins(n *Machine) {
	n.methods["noop"] = func(Mutator, ids.ObjID, []ids.GlobalRef) []ids.GlobalRef {
		return nil
	}
	n.methods["store"] = func(m Mutator, self ids.ObjID, args []ids.GlobalRef) []ids.GlobalRef {
		for _, a := range args {
			// Errors are swallowed: a failed store simply does not create
			// the reference (the exporter's scion self-heals via
			// NewSetStubs).
			_ = m.Store(self, a)
		}
		return nil
	}
	n.methods["drop"] = func(m Mutator, self ids.ObjID, args []ids.GlobalRef) []ids.GlobalRef {
		for _, a := range args {
			_ = m.Drop(self, a)
		}
		return nil
	}
	n.methods["drop-all"] = func(m Mutator, self ids.ObjID, _ []ids.GlobalRef) []ids.GlobalRef {
		for _, r := range m.Refs(self) {
			_ = m.Drop(self, r)
		}
		return nil
	}
	n.methods["get"] = func(m Mutator, self ids.ObjID, _ []ids.GlobalRef) []ids.GlobalRef {
		return m.Refs(self)
	}
	n.methods["alloc-child"] = func(m Mutator, self ids.ObjID, _ []ids.GlobalRef) []ids.GlobalRef {
		child := m.Alloc(nil)
		_ = m.Link(self, child)
		return []ids.GlobalRef{m.GlobalRef(child)}
	}
}
