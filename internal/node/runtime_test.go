package node

import (
	"errors"
	"testing"
	"time"

	"dgc/internal/ids"
	"dgc/internal/transport"
)

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLiveRuntimeLocalLifecycle(t *testing.T) {
	r := NewLiveRuntime("A", nil, Config{}, RuntimeConfig{Tick: time.Millisecond})
	var obj ids.ObjID
	if err := r.With(func(m Mutator) {
		obj = m.Alloc(nil)
		if err := m.Root(obj); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := r.NumObjects(); got != 1 {
		t.Fatalf("objects = %d", got)
	}
	// The wall-clock ticker advances logical time without any manual Tick.
	waitUntil(t, 2*time.Second, "clock advance", func() bool { return r.Clock() > 0 })

	// A callback re-entering the public API panics at the CALLER (the loop
	// survives and keeps serving).
	mustPanicReentered(t, func() {
		_ = r.With(func(Mutator) { r.NumObjects() })
	})
	if got := r.NumObjects(); got != 1 {
		t.Fatalf("loop dead after guarded panic: objects = %d", got)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := r.With(func(Mutator) {}); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("post-Close With error = %v", err)
	}
	if _, err := r.Save(); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("post-Close Save error = %v", err)
	}
}

func TestLiveRuntimeDaemonTickers(t *testing.T) {
	r := NewLiveRuntime("A", nil, Config{}, RuntimeConfig{
		Tick:             time.Millisecond,
		LGCInterval:      2 * time.Millisecond,
		SnapshotInterval: 2 * time.Millisecond,
		DetectInterval:   2 * time.Millisecond,
	})
	defer r.Close()
	waitUntil(t, 2*time.Second, "periodic daemons", func() bool {
		s := r.Stats()
		return s.LGCRuns > 1 && s.Summarizations+s.SummaryCacheHits > 1
	})
	if r.Summary() == nil {
		t.Fatal("no summary after periodic summarization")
	}
}

func TestLiveRuntimeInvokeOverTCP(t *testing.T) {
	epA, err := transport.ListenTCP("A", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := transport.ListenTCP("B", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	epA.AddPeer("B", epB.Addr())
	epB.AddPeer("A", epA.Addr())

	rcfg := RuntimeConfig{Tick: 5 * time.Millisecond}
	a := NewLiveRuntime("A", epA, Config{CallTimeoutTicks: 200}, rcfg)
	defer a.Close()
	b := NewLiveRuntime("B", epB, Config{CallTimeoutTicks: 200}, rcfg)
	defer b.Close()

	var caller, target ids.ObjID
	if err := a.With(func(m Mutator) {
		caller = m.Alloc(nil)
		_ = m.Root(caller)
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.With(func(m Mutator) {
		target = m.Alloc(nil)
		_ = m.Root(target)
	}); err != nil {
		t.Fatal(err)
	}

	// Acquire B's object, store it, then invoke it — all over real sockets
	// with replies landing on the runtime's loop.
	ref := ids.GlobalRef{Node: "B", Obj: target}
	acquired := make(chan bool, 1)
	if err := a.AcquireRemote(ref, func(m Mutator, ok bool) {
		if ok {
			ok = m.Store(caller, ref) == nil
		}
		acquired <- ok
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-acquired:
		if !ok {
			t.Fatal("acquire failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire timed out")
	}

	replied := make(chan Reply, 1)
	if err := a.Invoke(ref, "noop", nil, func(_ Mutator, r Reply) { replied <- r }); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-replied:
		if !r.OK {
			t.Fatalf("invoke failed: %s", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("invoke timed out")
	}
	if got := b.Stats().InvokesHandled; got != 1 {
		t.Fatalf("B handled %d invokes", got)
	}
	if got := a.Stats().RepliesHandled; got != 1 {
		t.Fatalf("A handled %d replies", got)
	}
}

func TestLiveRuntimeSaveRestore(t *testing.T) {
	r := NewLiveRuntime("A", nil, Config{}, RuntimeConfig{Tick: time.Millisecond})
	if err := r.With(func(m Mutator) {
		obj := m.Alloc([]byte("keep"))
		_ = m.Root(obj)
	}); err != nil {
		t.Fatal(err)
	}
	data, err := r.Save()
	if err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2, err := RestoreLiveRuntime(nil, Config{}, RuntimeConfig{Tick: time.Millisecond}, data)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.NumObjects(); got != 1 {
		t.Fatalf("restored objects = %d", got)
	}
	if r2.ID() != "A" {
		t.Fatalf("restored id = %s", r2.ID())
	}
}
