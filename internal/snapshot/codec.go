package snapshot

import (
	"fmt"
	"os"

	"dgc/internal/heap"
)

// Codec serializes and deserializes a whole process heap. Two
// implementations reproduce the paper's serialization experiment:
//
//   - ReflectCodec: a deliberately naive reflective, textual serializer
//     standing in for Rotor's "very inefficient serialization code";
//   - BinaryCodec: a compact length-prefixed binary serializer standing in
//     for production .NET serialization ("roughly, 100 times faster").
type Codec interface {
	// Name identifies the codec in experiment output.
	Name() string
	// Encode serializes the heap.
	Encode(h *heap.Heap) ([]byte, error)
	// Decode reconstructs a heap from Encode's output.
	Decode(data []byte) (*heap.Heap, error)
}

// WriteFile serializes the heap with the codec and writes it to path —
// the paper's "each process stores a snapshot of its internal object graph
// on disk" (§2.2).
func WriteFile(c Codec, h *heap.Heap, path string) error {
	data, err := c.Encode(h)
	if err != nil {
		return fmt.Errorf("snapshot: encode with %s: %w", c.Name(), err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	return nil
}

// ReadFile reads a serialized snapshot from path and decodes it.
func ReadFile(c Codec, path string) (*heap.Heap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	h, err := c.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode %s with %s: %w", path, c.Name(), err)
	}
	return h, nil
}
