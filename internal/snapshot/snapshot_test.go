package snapshot

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

func gref(n ids.NodeID, o ids.ObjID) ids.GlobalRef { return ids.GlobalRef{Node: n, Obj: o} }

// buildSampleHeap creates the P2 fragment of the paper's Figure 3:
// scion (P1 -> F), local chain F -> H -> J plus F -> G -> H, and J holding a
// remote reference to Q at P4 (so a stub for Q_P4).
func buildSampleHeap(t *testing.T) (*heap.Heap, *refs.Table, map[string]ids.ObjID) {
	t.Helper()
	h := heap.New("P2")
	tb := refs.NewTable("P2")
	names := map[string]ids.ObjID{}
	for _, n := range []string{"F", "G", "H", "J"} {
		names[n] = h.Alloc(nil).ID
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(h.AddLocalRef(names["F"], names["H"]))
	must(h.AddLocalRef(names["F"], names["G"]))
	must(h.AddLocalRef(names["G"], names["H"]))
	must(h.AddLocalRef(names["H"], names["J"]))
	must(h.AddRemoteRef(names["J"], gref("P4", 17)))
	tb.EnsureScion("P1", names["F"])
	tb.EnsureStub(gref("P4", 17))
	return h, tb, names
}

func TestSummarizeFigure3Fragment(t *testing.T) {
	h, tb, names := buildSampleHeap(t)
	sum := Summarize(h, tb, 1)

	scionRef := ids.RefID{Src: "P1", Dst: gref("P2", names["F"])}
	sc := sum.Scion(scionRef)
	if sc == nil {
		t.Fatal("scion summary missing")
	}
	// Paper: Scion(F_P2) => {StubsFrom == {Q_P4}}
	if len(sc.StubsFrom) != 1 || sc.StubsFrom[0] != gref("P4", 17) {
		t.Fatalf("StubsFrom = %v", sc.StubsFrom)
	}
	// Paper: Stub(Q_P4) => {ScionsTo == {F_P2}, Local.Reach == false}
	st := sum.Stub(gref("P4", 17))
	if st == nil {
		t.Fatal("stub summary missing")
	}
	if len(st.ScionsTo) != 1 || st.ScionsTo[0] != scionRef {
		t.Fatalf("ScionsTo = %v", st.ScionsTo)
	}
	if st.LocalReach {
		t.Fatal("Local.Reach must be false: no local root")
	}
}

func TestSummarizeLocalReach(t *testing.T) {
	h, tb, names := buildSampleHeap(t)
	// Root G: G reaches H -> J which holds the remote ref, so the stub
	// becomes locally reachable.
	if err := h.AddRoot(names["G"]); err != nil {
		t.Fatal(err)
	}
	sum := Summarize(h, tb, 2)
	if !sum.Stub(gref("P4", 17)).LocalReach {
		t.Fatal("Local.Reach should be true with G rooted")
	}
}

func TestSummarizeMultipleScionsToSameStub(t *testing.T) {
	// Two scions on different objects, both leading to the same stub: the
	// stub's ScionsTo must list both (the extra-dependency mechanism §3.1).
	h := heap.New("P5")
	tb := refs.NewTable("P5")
	v := h.Alloc(nil)
	y := h.Alloc(nil)
	mid := h.Alloc(nil)
	for _, err := range []error{
		h.AddLocalRef(v.ID, mid.ID),
		h.AddLocalRef(y.ID, mid.ID),
		h.AddRemoteRef(mid.ID, gref("P4", 20)),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	tb.EnsureScion("P2", v.ID)
	tb.EnsureScion("P6", y.ID)
	tb.EnsureStub(gref("P4", 20))

	sum := Summarize(h, tb, 1)
	st := sum.Stub(gref("P4", 20))
	if len(st.ScionsTo) != 2 {
		t.Fatalf("ScionsTo = %v, want two scions", st.ScionsTo)
	}
}

func TestSummarizeCapturesICs(t *testing.T) {
	h, tb, names := buildSampleHeap(t)
	if _, err := tb.BumpScionIC("P1", names["F"]); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.BumpStubIC(gref("P4", 17)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.BumpStubIC(gref("P4", 17)); err != nil {
		t.Fatal(err)
	}
	sum := Summarize(h, tb, 1)
	if ic := sum.Scion(ids.RefID{Src: "P1", Dst: gref("P2", names["F"])}).IC; ic != 1 {
		t.Fatalf("scion IC = %d", ic)
	}
	if ic := sum.Stub(gref("P4", 17)).IC; ic != 2 {
		t.Fatalf("stub IC = %d", ic)
	}
}

func TestSummaryIsImmutableAgainstMutator(t *testing.T) {
	h, tb, names := buildSampleHeap(t)
	snap := h.Clone()
	sum := Summarize(snap, tb, 1)
	// Mutator deletes the path F -> H after the snapshot.
	if err := h.RemoveLocalRef(names["F"], names["H"]); err != nil {
		t.Fatal(err)
	}
	// Summary still reflects snapshot state.
	if got := sum.Scion(ids.RefID{Src: "P1", Dst: gref("P2", names["F"])}); len(got.StubsFrom) != 1 {
		t.Fatalf("summary changed under mutation: %v", got.StubsFrom)
	}
}

func TestNilSummaryLookupsAreSafe(t *testing.T) {
	var s *Summary
	if s.Scion(ids.RefID{}) != nil || s.Stub(ids.GlobalRef{}) != nil {
		t.Fatal("nil summary lookups must return nil")
	}
}

func codecs() []Codec { return []Codec{BinaryCodec{}, ReflectCodec{}} }

func TestCodecRoundTripSample(t *testing.T) {
	h, _, names := buildSampleHeap(t)
	if err := h.AddRoot(names["G"]); err != nil {
		t.Fatal(err)
	}
	h.Get(names["F"]).Payload = []byte{0x00, 0x01, 0xFF}
	for _, c := range codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(h)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			assertHeapsEqual(t, h, got)
		})
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	for _, c := range codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				h := randomHeap(seed)
				data, err := c.Encode(h)
				if err != nil {
					return false
				}
				got, err := c.Decode(data)
				if err != nil {
					return false
				}
				return heapsEqual(h, got)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestBinaryDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a snapshot"),
		[]byte(binaryMagic), // truncated after magic
	}
	for _, data := range cases {
		if _, err := (BinaryCodec{}).Decode(data); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", data)
		}
	}
}

func TestBinaryDecodeRejectsTruncation(t *testing.T) {
	h, _, _ := buildSampleHeap(t)
	data, err := (BinaryCodec{}).Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += 7 {
		if _, err := (BinaryCodec{}).Decode(data[:len(data)-cut]); err == nil {
			t.Fatalf("decoding %d-byte truncation succeeded", cut)
		}
	}
}

func TestReflectDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"field ID = 3\n",           // field outside object
		"bogus line\n",             // unknown directive
		"object\n  field ID = x\n", // bad integer
		"",                         // missing header
	}
	for _, s := range cases {
		if _, err := (ReflectCodec{}).Decode([]byte(s)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", s)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	h, _, _ := buildSampleHeap(t)
	for _, c := range codecs() {
		path := filepath.Join(dir, "snap."+c.Name())
		if err := WriteFile(c, h, path); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(c, path)
		if err != nil {
			t.Fatal(err)
		}
		assertHeapsEqual(t, h, got)
	}
	if _, err := ReadFile(BinaryCodec{}, filepath.Join(dir, "missing")); err == nil {
		t.Error("ReadFile on missing path should fail")
	}
}

func TestBinarySmallerThanReflect(t *testing.T) {
	h := randomHeap(42)
	bin, err := (BinaryCodec{}).Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := (ReflectCodec{}).Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(txt) {
		t.Errorf("binary (%d bytes) not smaller than reflect (%d bytes)", len(bin), len(txt))
	}
}

func randomHeap(seed int64) *heap.Heap {
	rng := rand.New(rand.NewSource(seed))
	h := heap.New(ids.NodeID("P" + string(rune('1'+rng.Intn(5)))))
	n := 1 + rng.Intn(25)
	objs := make([]ids.ObjID, n)
	for i := range objs {
		var payload []byte
		if rng.Intn(2) == 0 {
			payload = make([]byte, rng.Intn(16))
			rng.Read(payload)
			if len(payload) == 0 {
				payload = nil
			}
		}
		objs[i] = h.Alloc(payload).ID
	}
	for i := 0; i < 2*n; i++ {
		_ = h.AddLocalRef(objs[rng.Intn(n)], objs[rng.Intn(n)])
	}
	for i := 0; i < n/2; i++ {
		_ = h.AddRemoteRef(objs[rng.Intn(n)], gref(ids.NodeID("Q"+string(rune('1'+rng.Intn(3)))), ids.ObjID(rng.Intn(50))))
	}
	for i := 0; i < n/4; i++ {
		_ = h.AddRoot(objs[rng.Intn(n)])
	}
	return h
}

func heapsEqual(a, b *heap.Heap) bool {
	if a.Node() != b.Node() || a.Len() != b.Len() || a.NextID() != b.NextID() {
		return false
	}
	ra, rb := a.Roots(), b.Roots()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	equal := true
	a.ForEach(func(oa *heap.Object) {
		ob := b.Get(oa.ID)
		if ob == nil {
			equal = false
			return
		}
		if len(oa.Locals) != len(ob.Locals) || len(oa.Remotes) != len(ob.Remotes) || !bytes.Equal(oa.Payload, ob.Payload) {
			equal = false
			return
		}
		for i := range oa.Locals {
			if oa.Locals[i] != ob.Locals[i] {
				equal = false
			}
		}
		for i := range oa.Remotes {
			if oa.Remotes[i] != ob.Remotes[i] {
				equal = false
			}
		}
	})
	return equal
}

func assertHeapsEqual(t *testing.T, a, b *heap.Heap) {
	t.Helper()
	if !heapsEqual(a, b) {
		t.Fatal("heaps differ after round trip")
	}
}
