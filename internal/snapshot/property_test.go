package snapshot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

// randomProcess builds a random single-process graph with scions, stubs and
// roots, returning everything the summarizer consumes.
func randomProcess(seed int64) (*heap.Heap, *refs.Table) {
	rng := rand.New(rand.NewSource(seed))
	h := heap.New("P1")
	tb := refs.NewTable("P1")
	n := 3 + rng.Intn(25)
	objs := make([]ids.ObjID, n)
	for i := range objs {
		objs[i] = h.Alloc(nil).ID
	}
	for i := 0; i < 2*n; i++ {
		_ = h.AddLocalRef(objs[rng.Intn(n)], objs[rng.Intn(n)])
	}
	// Remote references + stubs.
	for i := 0; i < n/2; i++ {
		tgt := ids.GlobalRef{Node: "P2", Obj: ids.ObjID(rng.Intn(10))}
		if err := h.AddRemoteRef(objs[rng.Intn(n)], tgt); err == nil {
			tb.EnsureStub(tgt)
		}
	}
	// Scions.
	for i := 0; i < n/3; i++ {
		src := ids.NodeID([]string{"P3", "P4", "P5"}[rng.Intn(3)])
		tb.EnsureScion(src, objs[rng.Intn(n)])
	}
	// Roots.
	for i := 0; i < n/4; i++ {
		_ = h.AddRoot(objs[rng.Intn(n)])
	}
	return h, tb
}

// TestSummaryInversionProperty checks the core duality of the summarized
// graph: a scion s lists stub st in StubsFrom EXACTLY when st lists s in
// ScionsTo. The detector's dependency mechanism (§3.1) relies on this
// inversion being exact.
func TestSummaryInversionProperty(t *testing.T) {
	f := func(seed int64) bool {
		h, tb := randomProcess(seed)
		sum := Summarize(h, tb, 1)
		// Forward direction.
		for ref, sc := range sum.Scions {
			for _, tgt := range sc.StubsFrom {
				st := sum.Stubs[tgt]
				if st == nil {
					return false
				}
				found := false
				for _, back := range st.ScionsTo {
					if back == ref {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		// Backward direction.
		for tgt, st := range sum.Stubs {
			for _, ref := range st.ScionsTo {
				sc := sum.Scions[ref]
				if sc == nil {
					return false
				}
				found := false
				for _, fwd := range sc.StubsFrom {
					if fwd == tgt {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSummaryReachabilityConsistency verifies the summary against direct
// heap reachability: StubsFrom(s) is exactly the set of stub targets whose
// holders are reachable from s's object, and LocalReach flags agree with a
// direct root trace.
func TestSummaryReachabilityConsistency(t *testing.T) {
	f := func(seed int64) bool {
		h, tb := randomProcess(seed)
		sum := Summarize(h, tb, 1)
		rootReach := h.ReachableFromRoots()
		for _, sc := range tb.Scions() {
			ref := sc.RefID("P1")
			ss := sum.Scions[ref]
			if ss == nil {
				return false
			}
			reach := h.ReachableFrom(sc.Obj)
			want := map[ids.GlobalRef]bool{}
			for _, tgt := range h.RemoteRefsFrom(reach) {
				if tb.Stub(tgt) != nil {
					want[tgt] = true
				}
			}
			if len(want) != len(ss.StubsFrom) {
				return false
			}
			for _, tgt := range ss.StubsFrom {
				if !want[tgt] {
					return false
				}
			}
			if _, lr := rootReach[sc.Obj]; lr != ss.LocalReach {
				return false
			}
		}
		for _, st := range tb.Stubs() {
			ss := sum.Stubs[st.Target]
			if ss == nil {
				return false
			}
			wantLocal := false
			for holder := range h.HoldersOf(st.Target) {
				if _, ok := rootReach[holder]; ok {
					wantLocal = true
					break
				}
			}
			if wantLocal != ss.LocalReach {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
