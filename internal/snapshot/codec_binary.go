package snapshot

import (
	"encoding/binary"
	"fmt"

	"dgc/internal/heap"
	"dgc/internal/ids"
)

// BinaryCodec is the fast snapshot serializer: a compact, length-prefixed
// binary format with varint integers and interned node names. It plays the
// role of production .NET serialization in the paper's experiment.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

const binaryMagic = "DGCS\x01"

// Encode implements Codec.
func (BinaryCodec) Encode(h *heap.Heap) ([]byte, error) {
	// Intern node names appearing in remote references.
	nodeIndex := make(map[ids.NodeID]uint64)
	var nodeNames []ids.NodeID
	intern := func(n ids.NodeID) uint64 {
		if i, ok := nodeIndex[n]; ok {
			return i
		}
		i := uint64(len(nodeNames))
		nodeIndex[n] = i
		nodeNames = append(nodeNames, n)
		return i
	}
	h.ForEach(func(o *heap.Object) {
		for _, r := range o.Remotes {
			intern(r.Node)
		}
	})

	buf := make([]byte, 0, 64+h.Len()*16)
	buf = append(buf, binaryMagic...)
	buf = appendString(buf, string(h.Node()))
	buf = binary.AppendUvarint(buf, uint64(h.NextID()))

	buf = binary.AppendUvarint(buf, uint64(len(nodeNames)))
	for _, n := range nodeNames {
		buf = appendString(buf, string(n))
	}

	roots := h.Roots()
	buf = binary.AppendUvarint(buf, uint64(len(roots)))
	for _, r := range roots {
		buf = binary.AppendUvarint(buf, uint64(r))
	}

	buf = binary.AppendUvarint(buf, uint64(h.Len()))
	var encodeErr error
	h.ForEach(func(o *heap.Object) {
		buf = binary.AppendUvarint(buf, uint64(o.ID))
		buf = binary.AppendUvarint(buf, uint64(len(o.Locals)))
		for _, l := range o.Locals {
			buf = binary.AppendUvarint(buf, uint64(l))
		}
		buf = binary.AppendUvarint(buf, uint64(len(o.Remotes)))
		for _, r := range o.Remotes {
			buf = binary.AppendUvarint(buf, nodeIndex[r.Node])
			buf = binary.AppendUvarint(buf, uint64(r.Obj))
		}
		buf = binary.AppendUvarint(buf, uint64(len(o.Payload)))
		buf = append(buf, o.Payload...)
	})
	return buf, encodeErr
}

// Decode implements Codec.
func (BinaryCodec) Decode(data []byte) (*heap.Heap, error) {
	r := &byteReader{data: data}
	magic := r.bytes(len(binaryMagic))
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("binary codec: bad magic")
	}
	node := ids.NodeID(r.str())
	nextID := ids.ObjID(r.uvarint())

	numNodes := r.uvarint()
	if numNodes > uint64(len(data)) {
		return nil, fmt.Errorf("binary codec: implausible node-name count %d", numNodes)
	}
	nodeNames := make([]ids.NodeID, numNodes)
	for i := range nodeNames {
		nodeNames[i] = ids.NodeID(r.str())
	}

	numRoots := r.uvarint()
	if numRoots > uint64(len(data)) {
		return nil, fmt.Errorf("binary codec: implausible root count %d", numRoots)
	}
	roots := make([]ids.ObjID, numRoots)
	for i := range roots {
		roots[i] = ids.ObjID(r.uvarint())
	}

	numObjs := r.uvarint()
	if numObjs > uint64(len(data)) {
		return nil, fmt.Errorf("binary codec: implausible object count %d", numObjs)
	}
	objects := make([]*heap.Object, 0, numObjs)
	for i := uint64(0); i < numObjs && r.err == nil; i++ {
		o := &heap.Object{ID: ids.ObjID(r.uvarint())}
		nl := r.uvarint()
		for j := uint64(0); j < nl && r.err == nil; j++ {
			o.Locals = append(o.Locals, ids.ObjID(r.uvarint()))
		}
		nr := r.uvarint()
		for j := uint64(0); j < nr && r.err == nil; j++ {
			ni := r.uvarint()
			obj := ids.ObjID(r.uvarint())
			if ni >= uint64(len(nodeNames)) {
				return nil, fmt.Errorf("binary codec: node index %d out of range", ni)
			}
			o.Remotes = append(o.Remotes, ids.GlobalRef{Node: nodeNames[ni], Obj: obj})
		}
		np := r.uvarint()
		if p := r.bytes(int(np)); p != nil {
			o.Payload = append([]byte(nil), p...)
		}
		objects = append(objects, o)
	}
	if r.err != nil {
		return nil, fmt.Errorf("binary codec: %w", r.err)
	}
	return heap.Restore(node, objects, roots, nextID)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// byteReader is a tiny cursor with sticky error handling.
type byteReader struct {
	data []byte
	pos  int
	err  error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = fmt.Errorf("truncated bytes at %d (+%d)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *byteReader) str() string {
	n := r.uvarint()
	if n > uint64(len(r.data)) {
		r.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	return string(r.bytes(int(n)))
}
