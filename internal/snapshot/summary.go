// Package snapshot implements the two snapshot facilities of the paper:
//
//   - serialization of a process's object graph (the costly operation §4
//     measures, with a deliberately naive reflective codec standing in for
//     Rotor's serializer and a compact binary codec standing in for
//     production .NET), and
//
//   - graph summarization: reducing a snapshot to the only information the
//     cycle detector needs — per scion, the stubs transitively reachable
//     from it (StubsFrom); per stub, the scions leading to it (ScionsTo) and
//     a local-reachability flag (Local.Reach); plus the invocation counters
//     captured at snapshot time (§3 "Graph Summarization").
package snapshot

import (
	"math/bits"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

// ScionSummary is the summarized-graph record for one scion.
type ScionSummary struct {
	Ref ids.RefID // the incoming reference (Src node -> local object)
	IC  uint64    // scion invocation counter at snapshot time
	// StubsFrom lists the targets of stubs transitively reachable from the
	// scion's object, in canonical order.
	StubsFrom []ids.GlobalRef
	// LocalReach is true when the scion's object is reachable from the
	// local root set; such scions are never cycle candidates.
	LocalReach bool
}

// StubSummary is the summarized-graph record for one stub.
type StubSummary struct {
	Target ids.GlobalRef // the outgoing reference target
	IC     uint64        // stub invocation counter at snapshot time
	// ScionsTo lists the scions (as RefIDs) from which this stub is
	// transitively reachable, in canonical order.
	ScionsTo []ids.RefID
	// LocalReach is the Local.Reach flag: true when at least one object
	// holding this outgoing reference is reachable from the local root set.
	LocalReach bool
}

// Summary is the summarized graph description of one process snapshot. It is
// immutable once built: detectors read it without synchronizing with the
// mutator, which is the whole point of the paper's design.
type Summary struct {
	Node    ids.NodeID
	Version uint64 // monotonically increasing snapshot version per node

	Scions map[ids.RefID]*ScionSummary
	Stubs  map[ids.GlobalRef]*StubSummary
}

// Scion returns the summary record for the given incoming reference, or nil
// if the reference was not present in the snapshot (the condition behind the
// paper's safety rule 1: "stub without corresponding scion -> ignore CDM").
func (s *Summary) Scion(ref ids.RefID) *ScionSummary {
	if s == nil {
		return nil
	}
	return s.Scions[ref]
}

// Stub returns the summary record for the given outgoing reference target,
// or nil.
func (s *Summary) Stub(target ids.GlobalRef) *StubSummary {
	if s == nil {
		return nil
	}
	return s.Stubs[target]
}

// Summarize builds the summarized graph description from a heap and its
// reference tables. The heap passed in should be a snapshot (heap.Clone) when
// the mutator runs concurrently; in the deterministic simulation the live
// heap may be summarized directly between mutator steps.
//
// The engine is single-pass: it builds a dense heap.Index (adjacency plus a
// reverse holder table), condenses the local graph into strongly connected
// components, and propagates per-component *scion bitsets* along the
// condensation in topological order. Every scion's transitive stub set and
// every stub's scion set then fall out of one O(words) union per holder,
// for a total cost of O(V + E x S/64) instead of the former per-scion BFS's
// O(S x (V + E)). References strictly internal to the process fold away;
// output lists are emitted directly in canonical order.
func Summarize(h *heap.Heap, table *refs.Table, version uint64) *Summary {
	sum := &Summary{
		Node:    h.Node(),
		Version: version,
		Scions:  make(map[ids.RefID]*ScionSummary),
		Stubs:   make(map[ids.GlobalRef]*StubSummary),
	}

	ix := h.BuildIndex()
	rootReach := ix.RootFlags() // Local.Reach per dense index

	// Stub records from the stub table. A remote ref held in the heap
	// without a stub record (possible between LGC rounds) is skipped
	// conservatively, exactly as the per-scion implementation did.
	for _, st := range table.Stubs() {
		sum.Stubs[st.Target] = &StubSummary{Target: st.Target, IC: st.IC}
	}

	// Scion records in canonical (Src, Obj) order. Because every RefID
	// shares this node as Dst.Node, canonical RefID order coincides with
	// this order, so lists built by ascending scion index need no sort.
	self := h.Node()
	scions := table.Scions()
	nscions := len(scions)
	words := (nscions + 63) / 64
	refIDs := make([]ids.RefID, nscions)
	scSums := make([]*ScionSummary, nscions)
	for i, sc := range scions {
		refIDs[i] = sc.RefID(self)
		lr := false
		if p, ok := ix.Pos(sc.Obj); ok {
			lr = rootReach[p]
		}
		scSums[i] = &ScionSummary{Ref: refIDs[i], IC: sc.IC, LocalReach: lr}
		sum.Scions[refIDs[i]] = scSums[i]
	}

	if nscions > 0 {
		// Seed each scion's bit at its object's component, then push the
		// bitsets through the condensation DAG. Component ids come out of
		// Tarjan in completion order, so descending id is a topological
		// order: processing a component pushes the union of everything
		// that reaches it onto its successors exactly once.
		comp, ncomp := ix.SCC()
		rows := make([]uint64, int(ncomp)*words)
		for i, sc := range scions {
			if p, ok := ix.Pos(sc.Obj); ok {
				row := rows[int(comp[p])*words:]
				row[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		compAdj := ix.Condense(comp, ncomp)
		for c := int(ncomp) - 1; c >= 0; c-- {
			row := rows[c*words : (c+1)*words]
			for _, d := range compAdj[c] {
				drow := rows[int(d)*words : (int(d)+1)*words]
				for w := range drow {
					drow[w] |= row[w]
				}
			}
		}

		// Emit: for each stub target (canonical order), union the scion
		// sets of its holders, then distribute the set bits into StubsFrom
		// and ScionsTo. Both orders are canonical by construction.
		union := make([]uint64, words)
		for t, tgt := range ix.Targets() {
			ss := sum.Stubs[tgt]
			if ss == nil {
				continue
			}
			for w := range union {
				union[w] = 0
			}
			for _, hp := range ix.Holders(int32(t)) {
				if rootReach[hp] {
					ss.LocalReach = true
				}
				row := rows[int(comp[hp])*words:]
				for w := 0; w < words; w++ {
					union[w] |= row[w]
				}
			}
			for w := 0; w < words; w++ {
				word := union[w]
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << uint(b)
					si := w*64 + b
					scSums[si].StubsFrom = append(scSums[si].StubsFrom, tgt)
					ss.ScionsTo = append(ss.ScionsTo, refIDs[si])
				}
			}
		}
	} else {
		// No scions: only the stubs' Local.Reach flags are needed.
		for t, tgt := range ix.Targets() {
			ss := sum.Stubs[tgt]
			if ss == nil {
				continue
			}
			for _, hp := range ix.Holders(int32(t)) {
				if rootReach[hp] {
					ss.LocalReach = true
					break
				}
			}
		}
	}
	return sum
}
