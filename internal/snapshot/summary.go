// Package snapshot implements the two snapshot facilities of the paper:
//
//   - serialization of a process's object graph (the costly operation §4
//     measures, with a deliberately naive reflective codec standing in for
//     Rotor's serializer and a compact binary codec standing in for
//     production .NET), and
//
//   - graph summarization: reducing a snapshot to the only information the
//     cycle detector needs — per scion, the stubs transitively reachable
//     from it (StubsFrom); per stub, the scions leading to it (ScionsTo) and
//     a local-reachability flag (Local.Reach); plus the invocation counters
//     captured at snapshot time (§3 "Graph Summarization").
package snapshot

import (
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
)

// ScionSummary is the summarized-graph record for one scion.
type ScionSummary struct {
	Ref ids.RefID // the incoming reference (Src node -> local object)
	IC  uint64    // scion invocation counter at snapshot time
	// StubsFrom lists the targets of stubs transitively reachable from the
	// scion's object, in canonical order.
	StubsFrom []ids.GlobalRef
	// LocalReach is true when the scion's object is reachable from the
	// local root set; such scions are never cycle candidates.
	LocalReach bool
}

// StubSummary is the summarized-graph record for one stub.
type StubSummary struct {
	Target ids.GlobalRef // the outgoing reference target
	IC     uint64        // stub invocation counter at snapshot time
	// ScionsTo lists the scions (as RefIDs) from which this stub is
	// transitively reachable, in canonical order.
	ScionsTo []ids.RefID
	// LocalReach is the Local.Reach flag: true when at least one object
	// holding this outgoing reference is reachable from the local root set.
	LocalReach bool
}

// Summary is the summarized graph description of one process snapshot. It is
// immutable once built: detectors read it without synchronizing with the
// mutator, which is the whole point of the paper's design.
type Summary struct {
	Node    ids.NodeID
	Version uint64 // monotonically increasing snapshot version per node

	Scions map[ids.RefID]*ScionSummary
	Stubs  map[ids.GlobalRef]*StubSummary
}

// Scion returns the summary record for the given incoming reference, or nil
// if the reference was not present in the snapshot (the condition behind the
// paper's safety rule 1: "stub without corresponding scion -> ignore CDM").
func (s *Summary) Scion(ref ids.RefID) *ScionSummary {
	if s == nil {
		return nil
	}
	return s.Scions[ref]
}

// Stub returns the summary record for the given outgoing reference target,
// or nil.
func (s *Summary) Stub(target ids.GlobalRef) *StubSummary {
	if s == nil {
		return nil
	}
	return s.Stubs[target]
}

// Summarize builds the summarized graph description from a heap and its
// reference tables. The heap passed in should be a snapshot (heap.Clone) when
// the mutator runs concurrently; in the deterministic simulation the live
// heap may be summarized directly between mutator steps.
//
// The traversal is breadth-first per scion, mirroring the paper's
// implementation note. Cost is O(scions x heap) worst case; references
// strictly internal to the process are folded away.
func Summarize(h *heap.Heap, table *refs.Table, version uint64) *Summary {
	sum := &Summary{
		Node:    h.Node(),
		Version: version,
		Scions:  make(map[ids.RefID]*ScionSummary),
		Stubs:   make(map[ids.GlobalRef]*StubSummary),
	}

	// Local.Reach: objects reachable from real local roots.
	fromRoots := h.ReachableFromRoots()

	// Initialize stub summaries from the stub table.
	for _, st := range table.Stubs() {
		localReach := false
		for holder := range h.HoldersOf(st.Target) {
			if _, ok := fromRoots[holder]; ok {
				localReach = true
				break
			}
		}
		sum.Stubs[st.Target] = &StubSummary{
			Target:     st.Target,
			IC:         st.IC,
			LocalReach: localReach,
		}
	}

	// Per-scion reachability: which stubs does each scion lead to?
	self := h.Node()
	for _, sc := range table.Scions() {
		ref := sc.RefID(self)
		reach := h.ReachableFrom(sc.Obj)
		stubTargets := h.RemoteRefsFrom(reach)
		// Keep only targets with a stub record (they should all have one
		// after an LGC round; between rounds a remote ref may briefly lack
		// a stub — the summarizer registers it with IC from the table or
		// skips it conservatively).
		kept := stubTargets[:0]
		for _, tgt := range stubTargets {
			if _, ok := sum.Stubs[tgt]; ok {
				kept = append(kept, tgt)
			}
		}
		_, localReach := fromRoots[sc.Obj]
		sum.Scions[ref] = &ScionSummary{
			Ref:        ref,
			IC:         sc.IC,
			StubsFrom:  append([]ids.GlobalRef(nil), kept...),
			LocalReach: localReach,
		}
		// Invert into ScionsTo.
		for _, tgt := range kept {
			ss := sum.Stubs[tgt]
			ss.ScionsTo = append(ss.ScionsTo, ref)
		}
	}
	// Canonical order for ScionsTo lists.
	for _, ss := range sum.Stubs {
		ids.SortRefIDs(ss.ScionsTo)
	}
	return sum
}
