package snapshot

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"dgc/internal/heap"
	"dgc/internal/ids"
)

// ReflectCodec is the slow snapshot serializer: it discovers the object
// layout through reflection on every single object and emits a verbose
// field-per-line textual format, one fmt call per field element, preceded —
// like Rotor's serializer, which re-derives and re-writes type metadata for
// every serialized instance — by a per-object type-descriptor block listing
// each field's name, kind and type string. This stands in for Rotor's "very
// inefficient serialization code (for any purpose)": the point of the
// experiment is the cost ratio against BinaryCodec, not the format itself.
type ReflectCodec struct{}

// writeTypeDescriptor emits the per-object type metadata block. Rotor
// re-walked type information for every instance; doing the same here (with
// a reflect.Type traversal and formatted output per field) reproduces that
// cost profile.
func writeTypeDescriptor(buf *bytes.Buffer, v reflect.Value) {
	t := v.Type()
	fmt.Fprintf(buf, "  type %s size=%d fields=%d\n", t.String(), t.Size(), t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		ft := f.Type
		// Re-derive nested element type info per field, per object.
		elem := ""
		if ft.Kind() == reflect.Slice {
			elem = fmt.Sprintf(" elem=%s kind=%s size=%d",
				ft.Elem().String(), ft.Elem().Kind(), ft.Elem().Size())
		}
		fmt.Fprintf(buf, "  descr %s offset=%d kind=%s type=%s%s\n",
			f.Name, f.Offset, ft.Kind(), ft.String(), elem)
	}
}

// Name implements Codec.
func (ReflectCodec) Name() string { return "reflect" }

// Encode implements Codec.
func (ReflectCodec) Encode(h *heap.Heap) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "heap node=%s next=%d\n", h.Node(), h.NextID())
	for _, r := range h.Roots() {
		fmt.Fprintf(&buf, "root %d\n", r)
	}
	var encErr error
	h.ForEach(func(o *heap.Object) {
		if encErr != nil {
			return
		}
		fmt.Fprintf(&buf, "object\n")
		// Reflectively walk every field of the object, exactly the kind of
		// per-object type discovery a naive serializer performs.
		v := reflect.ValueOf(o).Elem()
		writeTypeDescriptor(&buf, v)
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := v.Field(i)
			name := t.Field(i).Name
			switch f.Kind() {
			case reflect.Uint64:
				fmt.Fprintf(&buf, "  field %s = %s\n", name, strconv.FormatUint(f.Uint(), 10))
			case reflect.Slice:
				elem := f.Type().Elem()
				switch {
				case elem.Kind() == reflect.Uint8:
					fmt.Fprintf(&buf, "  field %s = hex:%s\n", name, hex.EncodeToString(f.Bytes()))
				case elem.Kind() == reflect.Uint64:
					for j := 0; j < f.Len(); j++ {
						fmt.Fprintf(&buf, "  elem %s = %s\n", name, strconv.FormatUint(f.Index(j).Uint(), 10))
					}
				case elem == reflect.TypeOf(ids.GlobalRef{}):
					for j := 0; j < f.Len(); j++ {
						g := f.Index(j).Interface().(ids.GlobalRef)
						fmt.Fprintf(&buf, "  elem %s = %s/%d\n", name, g.Node, g.Obj)
					}
				default:
					encErr = fmt.Errorf("reflect codec: unsupported slice %s", elem)
				}
			default:
				encErr = fmt.Errorf("reflect codec: unsupported field kind %s", f.Kind())
			}
		}
	})
	if encErr != nil {
		return nil, encErr
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (ReflectCodec) Decode(data []byte) (*heap.Heap, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)

	var (
		node    ids.NodeID
		nextID  ids.ObjID
		roots   []ids.ObjID
		objects []*heap.Object
		cur     *heap.Object
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "heap "):
			var n string
			var next uint64
			if _, err := fmt.Sscanf(line, "heap node=%s next=%d", &n, &next); err != nil {
				return nil, fmt.Errorf("reflect codec: line %d: %w", lineNo, err)
			}
			node, nextID = ids.NodeID(n), ids.ObjID(next)
		case strings.HasPrefix(line, "root "):
			v, err := strconv.ParseUint(strings.TrimPrefix(line, "root "), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("reflect codec: line %d: %w", lineNo, err)
			}
			roots = append(roots, ids.ObjID(v))
		case line == "object":
			cur = &heap.Object{}
			objects = append(objects, cur)
		case strings.HasPrefix(line, "type ") || strings.HasPrefix(line, "descr "):
			// Per-object type metadata: redundant by design, skipped.
			if cur == nil {
				return nil, fmt.Errorf("reflect codec: line %d: metadata outside object", lineNo)
			}
		case strings.HasPrefix(line, "field ") || strings.HasPrefix(line, "elem "):
			if cur == nil {
				return nil, fmt.Errorf("reflect codec: line %d: field outside object", lineNo)
			}
			if err := applyField(cur, line); err != nil {
				return nil, fmt.Errorf("reflect codec: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("reflect codec: line %d: unrecognized %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reflect codec: scan: %w", err)
	}
	if node == "" {
		return nil, fmt.Errorf("reflect codec: missing heap header")
	}
	return heap.Restore(node, objects, roots, nextID)
}

func applyField(o *heap.Object, line string) error {
	parts := strings.SplitN(line, " = ", 2)
	if len(parts) != 2 {
		return fmt.Errorf("malformed field line %q", line)
	}
	head := strings.Fields(parts[0])
	if len(head) != 2 {
		return fmt.Errorf("malformed field head %q", parts[0])
	}
	kind, name, val := head[0], head[1], parts[1]
	switch {
	case kind == "field" && name == "ID":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return err
		}
		o.ID = ids.ObjID(v)
	case kind == "field" && name == "Payload":
		b, err := hex.DecodeString(strings.TrimPrefix(val, "hex:"))
		if err != nil {
			return err
		}
		if len(b) > 0 {
			o.Payload = b
		}
	case kind == "elem" && name == "Locals":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return err
		}
		o.Locals = append(o.Locals, ids.ObjID(v))
	case kind == "elem" && name == "Remotes":
		slash := strings.LastIndexByte(val, '/')
		if slash < 0 {
			return fmt.Errorf("malformed remote %q", val)
		}
		obj, err := strconv.ParseUint(val[slash+1:], 10, 64)
		if err != nil {
			return err
		}
		o.Remotes = append(o.Remotes, ids.GlobalRef{Node: ids.NodeID(val[:slash]), Obj: ids.ObjID(obj)})
	default:
		return fmt.Errorf("unknown field %s %s", kind, name)
	}
	return nil
}
