package snapshot

import (
	"testing"
)

// FuzzBinaryDecode: the binary snapshot decoder must never panic and must
// round-trip whatever it accepts.
func FuzzBinaryDecode(f *testing.F) {
	data, err := (BinaryCodec{}).Encode(randomHeap(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(binaryMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := (BinaryCodec{}).Decode(data)
		if err != nil {
			return
		}
		re, err := (BinaryCodec{}).Encode(h)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		h2, err := (BinaryCodec{}).Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !heapsEqual(h, h2) {
			t.Fatal("decode/encode not stable")
		}
	})
}

// FuzzReflectDecode: the textual decoder must never panic.
func FuzzReflectDecode(f *testing.F) {
	data, err := (ReflectCodec{}).Encode(randomHeap(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(data))
	f.Add("heap node=P1 next=2\nobject\n  field ID = 1\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, s string) {
		h, err := (ReflectCodec{}).Decode([]byte(s))
		if err != nil {
			return
		}
		// Accepted input must re-encode and decode stably.
		re, err := (ReflectCodec{}).Encode(h)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		h2, err := (ReflectCodec{}).Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !heapsEqual(h, h2) {
			t.Fatal("decode/encode not stable")
		}
	})
}
