package snapshot

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
	"dgc/internal/workload"
)

// summarizeReference is the original per-scion BFS summarizer, kept verbatim
// as the executable specification the single-pass engine is checked against.
// Cost is O(scions x heap) worst case.
func summarizeReference(h *heap.Heap, table *refs.Table, version uint64) *Summary {
	sum := &Summary{
		Node:    h.Node(),
		Version: version,
		Scions:  make(map[ids.RefID]*ScionSummary),
		Stubs:   make(map[ids.GlobalRef]*StubSummary),
	}

	// Local.Reach: objects reachable from real local roots.
	fromRoots := h.ReachableFromRoots()

	// Initialize stub summaries from the stub table.
	for _, st := range table.Stubs() {
		localReach := false
		for holder := range h.HoldersOf(st.Target) {
			if _, ok := fromRoots[holder]; ok {
				localReach = true
				break
			}
		}
		sum.Stubs[st.Target] = &StubSummary{
			Target:     st.Target,
			IC:         st.IC,
			LocalReach: localReach,
		}
	}

	// Per-scion reachability: which stubs does each scion lead to?
	self := h.Node()
	for _, sc := range table.Scions() {
		ref := sc.RefID(self)
		reach := h.ReachableFrom(sc.Obj)
		stubTargets := h.RemoteRefsFrom(reach)
		kept := stubTargets[:0]
		for _, tgt := range stubTargets {
			if _, ok := sum.Stubs[tgt]; ok {
				kept = append(kept, tgt)
			}
		}
		_, localReach := fromRoots[sc.Obj]
		sum.Scions[ref] = &ScionSummary{
			Ref:        ref,
			IC:         sc.IC,
			StubsFrom:  append([]ids.GlobalRef(nil), kept...),
			LocalReach: localReach,
		}
		// Invert into ScionsTo.
		for _, tgt := range kept {
			ss := sum.Stubs[tgt]
			ss.ScionsTo = append(ss.ScionsTo, ref)
		}
	}
	// Canonical order for ScionsTo lists.
	for _, ss := range sum.Stubs {
		ids.SortRefIDs(ss.ScionsTo)
	}
	return sum
}

// diffSummaries reports the first difference between two summaries, down to
// nil-versus-empty slices: the engines must agree byte for byte once encoded,
// so the in-memory structures must be indistinguishable too.
func diffSummaries(got, want *Summary) string {
	if got.Node != want.Node || got.Version != want.Version {
		return fmt.Sprintf("header: got (%s,%d) want (%s,%d)", got.Node, got.Version, want.Node, want.Version)
	}
	if len(got.Scions) != len(want.Scions) {
		return fmt.Sprintf("scion count: got %d want %d", len(got.Scions), len(want.Scions))
	}
	for ref, w := range want.Scions {
		g := got.Scions[ref]
		if g == nil {
			return fmt.Sprintf("scion %v missing", ref)
		}
		if !reflect.DeepEqual(g, w) {
			return fmt.Sprintf("scion %v: got %+v want %+v", ref, g, w)
		}
	}
	if len(got.Stubs) != len(want.Stubs) {
		return fmt.Sprintf("stub count: got %d want %d", len(got.Stubs), len(want.Stubs))
	}
	for tgt, w := range want.Stubs {
		g := got.Stubs[tgt]
		if g == nil {
			return fmt.Sprintf("stub %v missing", tgt)
		}
		if !reflect.DeepEqual(g, w) {
			return fmt.Sprintf("stub %v: got %+v want %+v", tgt, g, w)
		}
	}
	return ""
}

// TestSummarizeMatchesReferenceRandomProcess checks the single-pass engine
// against the per-scion BFS reference on the single-process random corpus.
func TestSummarizeMatchesReferenceRandomProcess(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		h, tb := randomProcess(seed)
		got := Summarize(h, tb, uint64(seed)+1)
		want := summarizeReference(h, tb, uint64(seed)+1)
		if d := diffSummaries(got, want); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
	}
}

// materialize builds per-node heaps and reference tables directly from a
// workload topology: a cross-process edge becomes a remote reference plus a
// stub on the holder and a scion on the owner, exactly as the cluster
// harness would install them.
func materialize(t *testing.T, topo *workload.Topology) (map[ids.NodeID]*heap.Heap, map[ids.NodeID]*refs.Table) {
	t.Helper()
	if err := topo.Validate(); err != nil {
		t.Fatalf("topology %s: %v", topo.Name, err)
	}
	heaps := make(map[ids.NodeID]*heap.Heap)
	tables := make(map[ids.NodeID]*refs.Table)
	for _, n := range topo.Nodes() {
		heaps[n] = heap.New(n)
		tables[n] = refs.NewTable(n)
	}
	place := make(map[string]ids.GlobalRef, len(topo.Objects))
	for _, o := range topo.Objects {
		id := heaps[o.Node].Alloc(nil).ID
		place[o.Name] = ids.GlobalRef{Node: o.Node, Obj: id}
		if o.Rooted {
			if err := heaps[o.Node].AddRoot(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range topo.Edges {
		from, to := place[e.From], place[e.To]
		if from.Node == to.Node {
			if err := heaps[from.Node].AddLocalRef(from.Obj, to.Obj); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := heaps[from.Node].AddRemoteRef(from.Obj, to); err != nil {
			t.Fatal(err)
		}
		tables[from.Node].EnsureStub(to)
		tables[to.Node].EnsureScion(from.Node, to.Obj)
	}
	return heaps, tables
}

// TestSummarizeMatchesReferenceWorkloads checks engine-versus-reference
// equivalence on every node of randomized multi-process workload topologies
// and the paper's figure presets.
func TestSummarizeMatchesReferenceWorkloads(t *testing.T) {
	topos := []*workload.Topology{
		workload.Ring(4, 3),
		workload.LiveRing(5, 2),
		workload.Figure1(),
		workload.Figure3(),
		workload.Figure4(),
		workload.AcyclicChain(6),
	}
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 60; seed++ {
		topos = append(topos, workload.RandomGraph(seed, workload.RandomConfig{
			Procs:       2 + rng.Intn(5),
			ObjsPerProc: 1 + rng.Intn(40),
			OutDegree:   rng.Float64() * 4,
			RemoteFrac:  rng.Float64(),
			RootFrac:    rng.Float64() * 0.5,
		}))
	}
	for _, topo := range topos {
		heaps, tables := materialize(t, topo)
		nodes := make([]ids.NodeID, 0, len(heaps))
		for n := range heaps {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			got := Summarize(heaps[n], tables[n], 1)
			want := summarizeReference(heaps[n], tables[n], 1)
			if d := diffSummaries(got, want); d != "" {
				t.Fatalf("topology %s node %s: %s", topo.Name, n, d)
			}
		}
	}
}

// TestSummarizeMatchesReferenceAfterMutation re-checks equivalence after
// structural churn (deletions, root flips, extra edges) on the same heap, so
// the engines stay in lockstep on graphs with dangling references.
func TestSummarizeMatchesReferenceAfterMutation(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		h, tb := randomProcess(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		all := h.IDs()
		for _, id := range all {
			switch rng.Intn(5) {
			case 0:
				h.Delete(id) // leaves dangling local/remote refs behind
			case 1:
				_ = h.AddRoot(id)
			case 2:
				h.RemoveRoot(id)
			}
		}
		got := Summarize(h, tb, 2)
		want := summarizeReference(h, tb, 2)
		if d := diffSummaries(got, want); d != "" {
			t.Fatalf("seed %d after mutation: %s", seed, d)
		}
	}
}
