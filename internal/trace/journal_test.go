package trace

import (
	"sync"
	"testing"
	"time"
)

// TestSeqMonotoneUnderConcurrentWriters runs many writers against one log
// (under -race in CI) and checks the journal's core contract: the sequence
// is gapless and strictly increasing across whatever the ring retained.
func TestSeqMonotoneUnderConcurrentWriters(t *testing.T) {
	l := New(256)
	const writers, per = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.EmitTraced("P1", KindCustom, uint64(g), "w=%d i=%d", g, i)
			}
		}()
	}
	wg.Wait()
	if l.Total() != writers*per {
		t.Fatalf("Total = %d, want %d", l.Total(), writers*per)
	}
	events, missed := l.Since(0)
	if len(events) != 256 {
		t.Fatalf("retained %d events, want 256", len(events))
	}
	if missed != writers*per-256 {
		t.Fatalf("missed = %d, want %d", missed, writers*per-256)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
	if last := events[len(events)-1].Seq; last != writers*per {
		t.Fatalf("last seq = %d, want %d", last, writers*per)
	}
}

// TestSinceResumeAcrossTruncation drives the ?since= resume protocol: a
// consumer that kept up resumes gaplessly; one that slept through a ring
// wrap is told exactly how many events it can never see.
func TestSinceResumeAcrossTruncation(t *testing.T) {
	l := New(16)
	for i := 0; i < 10; i++ {
		l.Emit("P1", KindCustom, "n=%d", i)
	}
	events, missed := l.Since(4)
	if missed != 0 {
		t.Fatalf("missed = %d before any eviction", missed)
	}
	if len(events) != 6 || events[0].Seq != 5 || events[5].Seq != 10 {
		t.Fatalf("resume window = %+v", events)
	}

	// Wrap the ring: seq 1..24 emitted, 16 retained (9..24), 8 evicted.
	for i := 10; i < 24; i++ {
		l.Emit("P1", KindCustom, "n=%d", i)
	}
	events, missed = l.Since(4)
	if missed != 4 {
		t.Fatalf("missed = %d, want 4 (seqs 5..8 evicted)", missed)
	}
	if len(events) != 16 || events[0].Seq != 9 {
		t.Fatalf("post-truncation window starts at %d, want 9", events[0].Seq)
	}
	// A consumer current through the last retained event resumes empty.
	events, missed = l.Since(24)
	if len(events) != 0 || missed != 0 {
		t.Fatalf("caught-up resume = %d events, %d missed", len(events), missed)
	}
}

// TestSubscribeDelivery checks ordered fan-out to a keeping-up subscriber
// and clean detach on Close.
func TestSubscribeDelivery(t *testing.T) {
	l := New(64)
	sub := l.Subscribe(32)
	for i := 0; i < 5; i++ {
		l.EmitTraced("P1", KindCDMSent, 7, "n=%d", i)
	}
	for i := 0; i < 5; i++ {
		select {
		case e := <-sub.Events():
			if e.Seq != uint64(i+1) || e.Trace != 7 {
				t.Fatalf("event %d = %+v", i, e)
			}
		case <-time.After(time.Second):
			t.Fatal("subscriber starved")
		}
	}
	sub.Close()
	if _, open := <-sub.Events(); open {
		t.Fatal("channel open after Close")
	}
	if sub.Evicted() {
		t.Fatal("explicit Close reported as eviction")
	}
	if st := l.Stats(); st.Subscribers != 0 {
		t.Fatalf("Subscribers = %d after Close", st.Subscribers)
	}
	l.Emit("P1", KindCustom, "after close") // must not panic or block
}

// TestSlowSubscriberEvictedNotBlocking is the backpressure contract: a
// subscriber that never drains fills its buffer and is evicted, while Emit
// keeps completing (bounded time, no deadlock) and other subscribers and the
// ring are unaffected.
func TestSlowSubscriberEvictedNotBlocking(t *testing.T) {
	l := New(64)
	slow := l.Subscribe(16)
	fast := l.Subscribe(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			l.Emit("P1", KindCustom, "n=%d", i)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a slow subscriber")
	}
	if !slow.Evicted() {
		t.Fatal("slow subscriber not evicted")
	}
	// The evicted channel holds its buffered prefix, then closes.
	n := 0
	for range slow.Events() {
		n++
	}
	if n != 16 {
		t.Fatalf("slow subscriber drained %d buffered events, want 16", n)
	}
	// The fast subscriber saw everything, in order.
	for i := 0; i < 100; i++ {
		e := <-fast.Events()
		if e.Seq != uint64(i+1) {
			t.Fatalf("fast subscriber: event %d has seq %d", i, e.Seq)
		}
	}
	st := l.Stats()
	if st.Subscribers != 1 || st.SubscriberEvictions != 1 {
		t.Fatalf("stats = %+v, want 1 live subscriber and 1 eviction", st)
	}
	if l.Total() != 100 {
		t.Fatalf("Total = %d", l.Total())
	}
	slow.Close() // idempotent after eviction
	fast.Close()
}

// TestParseKind round-trips every named kind and rejects junk.
func TestParseKind(t *testing.T) {
	for k := KindLGC; k <= KindFault; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v,%v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("nonsense"); ok {
		t.Error("ParseKind accepted junk")
	}
}

// TestEmitTracedFields pins the new Event fields: trace id and a wall-clock
// stamp, with the String rendering unchanged (the simulator's -trace output
// depends on it).
func TestEmitTracedFields(t *testing.T) {
	l := New(16)
	before := time.Now()
	l.EmitTraced("P1", KindDetectionEnd, 0xabc, "outcome=%s", "cycle-found")
	e := l.Snapshot()[0]
	if e.Trace != 0xabc {
		t.Fatalf("Trace = %#x", e.Trace)
	}
	if e.At.Before(before) || time.Since(e.At) > time.Minute {
		t.Fatalf("At = %v not a fresh wall-clock stamp", e.At)
	}
	if got, want := e.String(), "#1 P1 detection-end: outcome=cycle-found"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
