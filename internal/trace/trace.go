// Package trace provides the cluster's event journal: a bounded,
// thread-safe, sequenced log for observing the distributed collector at
// work — which node swept what, which CDMs were sent and handled with what
// outcome, which detections reached a verdict. The node layer emits events
// when a Log is configured; tests assert on event sequences, cmd/dgc-sim can
// dump them for debugging, and internal/admin streams them over
// /api/v1/events for dgcctl's cross-node detection timelines.
//
// The journal is three things at once:
//
//   - a monotonic sequence: every retained-or-evicted event carries a
//     1-based, gapless per-log sequence number, so consumers can resume
//     (Since) and detect truncation exactly;
//   - a bounded ring: the most recent events are retained, older ones are
//     evicted and reported via an explicit truncation marker;
//   - a fan-out hub: subscribers receive events on buffered channels with
//     non-blocking delivery — a slow consumer is evicted (its channel
//     closed) rather than ever blocking the emitting hot path.
package trace

import (
	"fmt"
	"sync"
	"time"

	"dgc/internal/ids"
)

// Kind classifies events.
type Kind uint8

// Event kinds emitted by the node layer. Values are stable within a build
// but not a wire contract — the admin API serializes kinds by name.
const (
	KindLGC Kind = iota + 1
	KindSummarize
	KindDetectionStart
	KindCDMHandled
	KindCycleFound
	KindScionCreated
	KindScionDeleted
	KindInvoke
	KindCustom
	// KindDropped marks the synthetic truncation event Snapshot prepends
	// (and /api/v1/events emits) when the ring has evicted events, so
	// consumers can tell the log is truncated.
	KindDropped
	// KindCDMSent records one cycle-detection message (or batch section)
	// leaving a node, with the destination edge in the detail.
	KindCDMSent
	// KindBatchCDM records a multi-section BatchCDM sent or received.
	KindBatchCDM
	// KindPartialReturn records an aggregation-mode partial result returned
	// toward the detection's origin.
	KindPartialReturn
	// KindRelaunch records the origin re-launching a detection's unresolved
	// residue after merging partial returns.
	KindRelaunch
	// KindDetectionEnd records a detection reaching a terminal outcome at a
	// node (cycle-found, aborted, race-dropped), closing its causal trace.
	KindDetectionEnd
	// KindCreditStall records an outbound message parking because the
	// destination edge's credit window is exhausted.
	KindCreditStall
	// KindMailboxDrop records an inbound message shed on mailbox overflow.
	KindMailboxDrop
	// KindFault records an operator fault-injection action (kill, restart,
	// delay, drop, partition, heal) against a node.
	KindFault
	// KindMemberJoin / KindMemberAlive / KindMemberSuspect / KindMemberDead /
	// KindMemberDrain record membership-directory transitions: a member
	// registered, confirmed alive, suspected by the failure detector,
	// declared dead (or departed), or beginning a voluntary drain.
	KindMemberJoin
	KindMemberAlive
	KindMemberSuspect
	KindMemberDead
	KindMemberDrain
	// KindLeaseHandoff records a draining holder migrating its references:
	// emitted by the drainer per referent owner, by the owner taking the
	// scions into custody, and again when custody is released.
	KindLeaseHandoff
	// KindLeaseReclaim records scions deleted because their holder was
	// declared dead and its lease ran out.
	KindLeaseReclaim
)

// kindNames is the canonical kind -> display-name table; parseKinds inverts
// it for the admin API's ?kind= filter.
var kindNames = map[Kind]string{
	KindLGC:            "lgc",
	KindSummarize:      "summarize",
	KindDetectionStart: "detection-start",
	KindCDMHandled:     "cdm",
	KindCycleFound:     "cycle-found",
	KindScionCreated:   "scion-created",
	KindScionDeleted:   "scion-deleted",
	KindInvoke:         "invoke",
	KindCustom:         "custom",
	KindDropped:        "dropped",
	KindCDMSent:        "cdm-sent",
	KindBatchCDM:       "batch-cdm",
	KindPartialReturn:  "partial-return",
	KindRelaunch:       "relaunch",
	KindDetectionEnd:   "detection-end",
	KindCreditStall:    "credit-stall",
	KindMailboxDrop:    "mailbox-drop",
	KindFault:          "fault",
	KindMemberJoin:     "member-join",
	KindMemberAlive:    "member-alive",
	KindMemberSuspect:  "member-suspect",
	KindMemberDead:     "member-dead",
	KindMemberDrain:    "member-drain",
	KindLeaseHandoff:   "lease-handoff",
	KindLeaseReclaim:   "lease-reclaim",
}

// String returns the kind's display name.
func (k Kind) String() string {
	if name, ok := kindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a display name (as produced by Kind.String) back to
// its Kind. The second result is false for unknown names.
func ParseKind(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// Event is one recorded occurrence.
type Event struct {
	Seq  uint64 // per-log sequence number, 1-based, gapless
	Node ids.NodeID
	Kind Kind
	// Trace is the causal detection trace id the event belongs to (0 when
	// the event is not part of a detection's causal history).
	Trace uint64
	// At is the wall-clock emission time. Diagnostic only: nothing in the
	// protocol reads it, and the deterministic simulator's -trace output
	// renders events without it.
	At     time.Time
	Detail string
}

// String renders the event as one log line. The format is pinned by
// cmd/dgc-sim's -trace output; Trace and At are intentionally omitted.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s: %s", e.Seq, e.Node, e.Kind, e.Detail)
}

// Subscription is one live tap on a Log's event stream. Events arrive on
// Events() in emission order. Delivery is non-blocking on the emitter's
// side: when the subscriber's buffer fills, the subscription is evicted —
// its channel closes and Evicted reports true — so a stalled consumer can
// never block the protocol hot path. An evicted consumer resumes by
// re-subscribing and backfilling with Since.
type Subscription struct {
	log *Log
	ch  chan Event
	// evicted/closed are guarded by log.mu.
	evicted bool
	closed  bool
}

// Events returns the subscription's delivery channel. It is closed when the
// subscription is evicted or Close is called.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Evicted reports whether the log evicted this subscription for falling
// behind (as opposed to an explicit Close).
func (s *Subscription) Evicted() bool {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	return s.evicted
}

// Close detaches the subscription and closes its channel. Idempotent; safe
// after eviction.
func (s *Subscription) Close() {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	s.log.closeSubLocked(s, false)
}

// JournalStats is a point-in-time report of a Log's journal mechanics, the
// source of the dgc_trace_* metrics.
type JournalStats struct {
	// Emitted is the number of events ever sequenced (Total).
	Emitted uint64
	// RingDropped is the number of events evicted by the ring bound.
	RingDropped uint64
	// Subscribers is the number of live subscriptions.
	Subscribers int
	// SubscriberEvictions counts subscriptions evicted for falling behind.
	SubscriberEvictions uint64
	// MaxLag is the deepest live subscriber backlog (buffered, undelivered
	// events) at the time of the call.
	MaxLag int
}

// Log is a bounded ring of events shared by any number of nodes. The zero
// value is unusable; create with New.
type Log struct {
	mu      sync.Mutex
	buf     []Event // circular once full: oldest at head, not index 0
	head    int     // index of the oldest retained event when len(buf) == cap
	cap     int
	seq     uint64
	dropped uint64        // events evicted by the ring bound
	filter  map[Kind]bool // nil = all kinds

	subs      []*Subscription
	evictions uint64 // subscriptions evicted for falling behind
}

// forEachLocked visits the retained events oldest first (caller holds l.mu).
func (l *Log) forEachLocked(fn func(Event)) {
	for _, e := range l.buf[l.head:] {
		fn(e)
	}
	for _, e := range l.buf[:l.head] {
		fn(e)
	}
}

// New returns a log retaining the most recent capacity events (minimum 16).
func New(capacity int) *Log {
	if capacity < 16 {
		capacity = 16
	}
	return &Log{cap: capacity}
}

// Only restricts the log to the given kinds (replacing any earlier filter);
// calling with no kinds removes the filter.
func (l *Log) Only(kinds ...Kind) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(kinds) == 0 {
		l.filter = nil
		return l
	}
	l.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		l.filter[k] = true
	}
	return l
}

// Emit records an event with no causal trace id. Safe for concurrent use.
func (l *Log) Emit(node ids.NodeID, kind Kind, format string, args ...any) {
	l.EmitTraced(node, kind, 0, format, args...)
}

// EmitTraced records an event carrying a detection's causal trace id. Safe
// for concurrent use; never blocks on subscribers (slow ones are evicted).
func (l *Log) EmitTraced(node ids.NodeID, kind Kind, traceID uint64, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filter != nil && !l.filter[kind] {
		return
	}
	l.seq++
	e := Event{Seq: l.seq, Node: node, Kind: kind, Trace: traceID, At: time.Now(),
		Detail: fmt.Sprintf(format, args...)}
	// O(1) ring store: overwrite the oldest slot in place — never a
	// whole-buffer shift, which would put an O(capacity) memmove on the
	// protocol hot path once the journal fills.
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.head] = e
		l.head++
		if l.head == l.cap {
			l.head = 0
		}
		l.dropped++
	}
	// Fan out without ever blocking: a full subscriber buffer means the
	// consumer fell a whole buffer behind — evict it (close the channel) and
	// let it resume via Since, rather than stall the protocol hot path.
	for i := 0; i < len(l.subs); {
		s := l.subs[i]
		select {
		case s.ch <- e:
			i++
		default:
			l.evictions++
			l.closeSubLocked(s, true)
			// closeSubLocked swapped the tail into position i; revisit it.
		}
	}
}

// closeSubLocked detaches s from the log (caller holds l.mu). evicted marks
// involuntary removal.
func (l *Log) closeSubLocked(s *Subscription, evicted bool) {
	if s.closed {
		return
	}
	s.closed = true
	s.evicted = evicted
	for i, sub := range l.subs {
		if sub == s {
			last := len(l.subs) - 1
			l.subs[i] = l.subs[last]
			l.subs[last] = nil
			l.subs = l.subs[:last]
			break
		}
	}
	close(s.ch)
}

// Subscribe taps the live event stream with a delivery buffer of at least
// 16 events. See Subscription for the eviction contract.
func (l *Log) Subscribe(buffer int) *Subscription {
	if buffer < 16 {
		buffer = 16
	}
	s := &Subscription{log: l, ch: make(chan Event, buffer)}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, s)
	return s
}

// Since returns the retained events with sequence numbers greater than
// after, oldest first, plus the number of matching events the ring has
// already evicted (0 when the resume is gapless). after=0 replays the full
// retained history.
func (l *Log) Since(after uint64) (events []Event, missed uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) > 0 {
		if first := l.buf[l.head].Seq; after+1 < first {
			missed = first - 1 - after
		}
	} else if after < l.seq {
		missed = l.seq - after
	}
	l.forEachLocked(func(e Event) {
		if e.Seq > after {
			events = append(events, e)
		}
	})
	return events, missed
}

// Dropped returns the number of events evicted by the ring bound since the
// log was created.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns the number of events ever emitted (including evicted and
// filtered-in only).
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats reports the journal's mechanics for the dgc_trace_* metrics.
func (l *Log) Stats() JournalStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := JournalStats{
		Emitted:             l.seq,
		RingDropped:         l.dropped,
		Subscribers:         len(l.subs),
		SubscriberEvictions: l.evictions,
	}
	for _, s := range l.subs {
		if lag := len(s.ch); lag > st.MaxLag {
			st.MaxLag = lag
		}
	}
	return st
}

// Snapshot returns the retained events, oldest first. When the ring has
// evicted events, a synthetic KindDropped event (Seq 0) heads the slice
// stating how many are missing.
func (l *Log) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf)+1)
	if l.dropped > 0 {
		out = append(out, Event{Kind: KindDropped, Detail: fmt.Sprintf("%d earlier events evicted", l.dropped)})
	}
	l.forEachLocked(func(e Event) { out = append(out, e) })
	return out
}

// OfKind returns the retained events of one kind, oldest first.
func (l *Log) OfKind(kind Kind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	l.forEachLocked(func(e Event) {
		if e.Kind == kind {
			out = append(out, e)
		}
	})
	return out
}
