// Package trace provides a bounded, thread-safe event log for observing
// the distributed collector at work: which node swept what, which CDMs were
// handled with what outcome, which scions were created and deleted. The
// node layer emits events when a Log is configured; tests assert on event
// sequences and cmd/dgc-sim can dump them for debugging.
package trace

import (
	"fmt"
	"sync"

	"dgc/internal/ids"
)

// Kind classifies events.
type Kind uint8

// Event kinds emitted by the node layer.
const (
	KindLGC Kind = iota + 1
	KindSummarize
	KindDetectionStart
	KindCDMHandled
	KindCycleFound
	KindScionCreated
	KindScionDeleted
	KindInvoke
	KindCustom
	// KindDropped marks the synthetic head event Snapshot prepends when the
	// ring has evicted events, so consumers can tell the log is truncated.
	KindDropped
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case KindLGC:
		return "lgc"
	case KindSummarize:
		return "summarize"
	case KindDetectionStart:
		return "detection-start"
	case KindCDMHandled:
		return "cdm"
	case KindCycleFound:
		return "cycle-found"
	case KindScionCreated:
		return "scion-created"
	case KindScionDeleted:
		return "scion-deleted"
	case KindInvoke:
		return "invoke"
	case KindCustom:
		return "custom"
	case KindDropped:
		return "dropped"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Seq    uint64 // global sequence number, 1-based
	Node   ids.NodeID
	Kind   Kind
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s: %s", e.Seq, e.Node, e.Kind, e.Detail)
}

// Log is a bounded ring of events shared by any number of nodes. The zero
// value is unusable; create with New.
type Log struct {
	mu      sync.Mutex
	buf     []Event
	cap     int
	seq     uint64
	dropped uint64        // events evicted by the ring bound
	filter  map[Kind]bool // nil = all kinds
}

// New returns a log retaining the most recent capacity events (minimum 16).
func New(capacity int) *Log {
	if capacity < 16 {
		capacity = 16
	}
	return &Log{cap: capacity}
}

// Only restricts the log to the given kinds (replacing any earlier filter);
// calling with no kinds removes the filter.
func (l *Log) Only(kinds ...Kind) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(kinds) == 0 {
		l.filter = nil
		return l
	}
	l.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		l.filter[k] = true
	}
	return l
}

// Emit records an event. Safe for concurrent use.
func (l *Log) Emit(node ids.NodeID, kind Kind, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filter != nil && !l.filter[kind] {
		return
	}
	l.seq++
	e := Event{Seq: l.seq, Node: node, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
		return
	}
	copy(l.buf, l.buf[1:])
	l.buf[len(l.buf)-1] = e
	l.dropped++
}

// Dropped returns the number of events evicted by the ring bound since the
// log was created.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns the number of events ever emitted (including evicted and
// filtered-in only).
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Snapshot returns the retained events, oldest first. When the ring has
// evicted events, a synthetic KindDropped event (Seq 0) heads the slice
// stating how many are missing.
func (l *Log) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dropped == 0 {
		return append([]Event(nil), l.buf...)
	}
	out := make([]Event, 0, len(l.buf)+1)
	out = append(out, Event{Kind: KindDropped, Detail: fmt.Sprintf("%d earlier events evicted", l.dropped)})
	return append(out, l.buf...)
}

// OfKind returns the retained events of one kind, oldest first.
func (l *Log) OfKind(kind Kind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.buf {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
