package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEmitAndSnapshot(t *testing.T) {
	l := New(16)
	l.Emit("P1", KindLGC, "swept=%d", 3)
	l.Emit("P2", KindCycleFound, "scions=%d", 4)
	events := l.Snapshot()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("sequence numbers: %+v", events)
	}
	if events[0].Node != "P1" || events[0].Kind != KindLGC || events[0].Detail != "swept=3" {
		t.Fatalf("event[0] = %+v", events[0])
	}
	if got := events[1].String(); !strings.Contains(got, "cycle-found") || !strings.Contains(got, "P2") {
		t.Errorf("String = %q", got)
	}
}

func TestRingEviction(t *testing.T) {
	l := New(16) // minimum capacity
	for i := 0; i < 40; i++ {
		l.Emit("P1", KindCustom, "n=%d", i)
	}
	if l.Len() != 16 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Total() != 40 {
		t.Fatalf("Total = %d", l.Total())
	}
	events := l.Snapshot()
	// A synthetic KindDropped event heads the snapshot once eviction begins.
	if len(events) != 17 {
		t.Fatalf("snapshot = %d events, want 16 + synthetic head", len(events))
	}
	if events[0].Kind != KindDropped || events[0].Seq != 0 {
		t.Fatalf("head = %+v, want synthetic KindDropped", events[0])
	}
	if events[1].Detail != "n=24" || events[16].Detail != "n=39" {
		t.Fatalf("wrong retained window: first=%q last=%q", events[1].Detail, events[16].Detail)
	}
	// Strictly increasing sequence numbers survive eviction.
	for i := 2; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d", i)
		}
	}
}

func TestDroppedCount(t *testing.T) {
	l := New(16)
	for i := 0; i < 16; i++ {
		l.Emit("P1", KindCustom, "n=%d", i)
	}
	if l.Dropped() != 0 {
		t.Fatalf("Dropped = %d before overflow", l.Dropped())
	}
	if events := l.Snapshot(); len(events) != 16 || events[0].Kind == KindDropped {
		t.Fatalf("synthetic head present before overflow: %+v", events[0])
	}
	for i := 0; i < 24; i++ {
		l.Emit("P1", KindCustom, "n=%d", 16+i)
	}
	if l.Dropped() != 24 {
		t.Fatalf("Dropped = %d, want 24", l.Dropped())
	}
	head := l.Snapshot()[0]
	if head.Kind != KindDropped || !strings.Contains(head.Detail, "24") {
		t.Fatalf("synthetic head = %+v, want 24 evicted", head)
	}
}

func TestMinimumCapacityClamp(t *testing.T) {
	l := New(1)
	for i := 0; i < 20; i++ {
		l.Emit("P1", KindCustom, "x")
	}
	if l.Len() != 16 {
		t.Fatalf("Len = %d, want clamped capacity 16", l.Len())
	}
}

func TestFilter(t *testing.T) {
	l := New(32).Only(KindCycleFound)
	l.Emit("P1", KindLGC, "ignored")
	l.Emit("P1", KindCycleFound, "kept")
	if l.Len() != 1 || l.Snapshot()[0].Kind != KindCycleFound {
		t.Fatalf("filter failed: %+v", l.Snapshot())
	}
	l.Only() // remove filter
	l.Emit("P1", KindLGC, "now kept")
	if l.Len() != 2 {
		t.Fatalf("unfiltered emit dropped: %d", l.Len())
	}
}

func TestOfKind(t *testing.T) {
	l := New(32)
	l.Emit("P1", KindLGC, "a")
	l.Emit("P1", KindCycleFound, "b")
	l.Emit("P2", KindLGC, "c")
	got := l.OfKind(KindLGC)
	if len(got) != 2 || got[0].Detail != "a" || got[1].Detail != "c" {
		t.Fatalf("OfKind = %+v", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindLGC; k <= KindDropped; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestConcurrentEmit(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Emit("P1", KindCustom, "x")
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("Total = %d", l.Total())
	}
	if l.Len() != 64 {
		t.Fatalf("Len = %d", l.Len())
	}
}
