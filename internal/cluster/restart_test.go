package cluster

import (
	"testing"

	"dgc/internal/node"
	"dgc/internal/workload"
)

// TestRestartMidDetection crashes and restores a process while a cycle
// detection is circulating through it. The detection must not produce a
// false result; after the restart the cycle is still detected and
// reclaimed (the persistence counters make the restarted node's state
// indistinguishable from a slow node's).
func TestRestartMidDetection(t *testing.T) {
	cfg := node.Config{}
	c := New(1, cfg)
	if _, err := c.Materialize(workload.Ring(4, 2), cfg); err != nil {
		t.Fatal(err)
	}
	live := c.GlobalLive()
	if len(live) != 0 {
		t.Fatal("ring should be garbage")
	}

	// Prepare detections but stop mid-flight: summaries + detection start,
	// then deliver only a couple of hops.
	for _, n := range c.Nodes() {
		n.RunLGC()
	}
	c.Settle()
	for _, n := range c.Nodes() {
		if err := n.Summarize(); err != nil {
			t.Fatal(err)
		}
	}
	c.Node("P1").RunDetection()
	c.Net.Drain(2) // CDMs in flight through P3/P4...

	// "Crash" P3: persist, replace with a restored instance on the same
	// endpoint. Its summary and CDM accumulators die with the process.
	data, err := c.Node("P3").Save()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := node.Restore(c.Net.Endpoint("P3"), cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	c.Replace("P3", restored)

	// Whatever was in flight lands on the restored node, which has no
	// summary yet: safety rule 1 drops those CDMs.
	c.Settle()
	if got := c.TotalObjects(); got != 8 {
		t.Fatalf("objects after crash = %d, want 8 (nothing falsely reclaimed)", got)
	}

	// Normal rounds resume: the cycle is detected and fully reclaimed.
	rounds := c.CollectFully(15)
	if c.TotalObjects() != 0 {
		t.Fatalf("cycle not reclaimed after restart (%d rounds, %d left)",
			rounds, c.TotalObjects())
	}
}

// TestDeadNodeDoesNotBlockOthers pins the paper's claim that the DCDA
// "makes progress without requiring all processes to participate": a
// process that stops responding prevents collecting cycles THROUGH it, but
// cycles among the live processes are still reclaimed.
func TestDeadNodeDoesNotBlockOthers(t *testing.T) {
	cfg := node.Config{}
	c := New(1, cfg)
	// Two independent garbage rings: P1-P2 and P3-P4.
	topo := &workload.Topology{
		Name: "two-rings",
		Objects: []workload.ObjSpec{
			{Name: "a1", Node: "P1"}, {Name: "a2", Node: "P2"},
			{Name: "b1", Node: "P3"}, {Name: "b2", Node: "P4"},
		},
		Edges: []workload.EdgeSpec{
			{From: "a1", To: "a2"}, {From: "a2", To: "a1"},
			{From: "b1", To: "b2"}, {From: "b2", To: "b1"},
		},
	}
	if _, err := c.Materialize(topo, cfg); err != nil {
		t.Fatal(err)
	}
	// P4 dies: its endpoint stops delivering.
	if err := c.Net.Endpoint("P4").Close(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 8; round++ {
		for _, n := range c.Nodes() {
			if n.ID() == "P4" {
				continue // dead
			}
			n.RunLGC()
		}
		c.Settle()
		for _, n := range c.Nodes() {
			if n.ID() == "P4" {
				continue
			}
			if err := n.Summarize(); err != nil {
				t.Fatal(err)
			}
			n.RunDetection()
		}
		c.Settle()
	}
	// The P1-P2 ring is gone; the ring through dead P4 is conservatively
	// retained (P3 cannot complete a detection without P4's cooperation).
	if got := c.Node("P1").NumObjects() + c.Node("P2").NumObjects(); got != 0 {
		t.Fatalf("live-side ring not reclaimed: %d objects", got)
	}
	if got := c.Node("P3").NumObjects(); got != 1 {
		t.Fatalf("P3 objects = %d, want 1 (conservatively retained)", got)
	}
}
