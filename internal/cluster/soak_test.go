package cluster

import (
	"sync"
	"testing"
	"time"

	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/transport"
)

// TestAsyncSoak exercises the whole stack CONCURRENTLY: every node ticks
// its GC daemons from its own goroutine while separate mutator goroutines
// perform RPC churn, with the in-proc network pumped by yet another
// goroutine. This is the concurrency regime of the TCP deployment (handler
// calls arrive from arbitrary goroutines); run under -race it validates the
// node's locking discipline end to end.
func TestAsyncSoak(t *testing.T) {
	cfg := node.Config{
		LGCEvery:         2,
		SnapshotEvery:    3,
		DetectEvery:      3,
		CallTimeoutTicks: 50,
	}
	net := transport.NewNetwork(1)
	names := []ids.NodeID{"A", "B", "C"}
	nodes := make(map[ids.NodeID]*node.Node, len(names))
	for _, n := range names {
		nodes[n] = node.New(n, net.Endpoint(n), cfg)
	}

	// B hosts a rooted service; A and C hold references to it.
	var service ids.ObjID
	nodes["B"].With(func(m node.Mutator) {
		service = m.Alloc(nil)
		if err := m.Root(service); err != nil {
			t.Error(err)
		}
	})
	serviceRef := ids.GlobalRef{Node: "B", Obj: service}
	for _, n := range []ids.NodeID{"A", "C"} {
		var holder ids.ObjID
		nodes[n].With(func(m node.Mutator) {
			holder = m.Alloc(nil)
			if err := m.Root(holder); err != nil {
				t.Error(err)
			}
		})
		if err := nodes["B"].EnsureScionFor(n, service); err != nil {
			t.Fatal(err)
		}
		if err := nodes[n].HoldRemote(holder, serviceRef); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Network pump.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				net.Drain(0)
				return
			default:
				if !net.Step() {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
	}()

	// GC tickers.
	for _, n := range nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					n.Tick()
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
	}

	// Mutators: churn alloc-child/drop against the service.
	var churns sync.Map
	for _, n := range []ids.NodeID{"A", "C"} {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			count := 0
			for {
				select {
				case <-stop:
					churns.Store(n, count)
					return
				default:
				}
				err := nodes[n].Invoke(serviceRef, "alloc-child", nil,
					func(m node.Mutator, r node.Reply) {
						if r.OK && len(r.Returns) == 1 {
							_ = m.Invoke(serviceRef, "drop", r.Returns, nil)
						}
					})
				if err != nil {
					t.Errorf("%s: %v", n, err)
					return
				}
				count++
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesce deterministically and verify convergence: only the three
	// rooted objects survive.
	net.Drain(0)
	for round := 0; round < 30; round++ {
		for _, id := range names {
			nodes[id].RunLGC()
		}
		net.Drain(0)
		for _, id := range names {
			if err := nodes[id].Summarize(); err != nil {
				t.Fatal(err)
			}
			nodes[id].RunDetection()
		}
		net.Drain(0)
	}
	total := 0
	for _, n := range nodes {
		total += n.NumObjects()
	}
	if total != 3 {
		t.Fatalf("objects after soak = %d, want 3 rooted survivors", total)
	}
	minChurn := 0
	churns.Range(func(_, v any) bool {
		minChurn += v.(int)
		return true
	})
	if minChurn == 0 {
		t.Fatal("mutators performed no work")
	}
	if nodes["B"].Stats().ObjectsSwept == 0 {
		t.Fatal("no garbage was collected during the soak")
	}
}
