package cluster

import (
	"reflect"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/transport"
	"dgc/internal/wire"
	"dgc/internal/workload"
)

// buildFaultyRing materializes a garbage ring plus a live ring on a cluster
// with fault injection enabled, so GC rounds exercise both the parallel
// phases and the fabric's randomness.
func buildFaultyRing(t *testing.T, workers int) *Cluster {
	t.Helper()
	c := New(99, node.Config{})
	c.SetWorkers(workers)
	c.Net.SetFaults(transport.Faults{
		LossRate:    0.05,
		DupRate:     0.05,
		ReorderRate: 0.2,
		Affects:     []wire.Kind{wire.KindCDM},
	})
	materialize(t, c, workload.Ring(6, 3), node.Config{})
	live := workload.LiveRing(6, 2)
	live.Name = "live"
	for i := range live.Objects {
		live.Objects[i].Name = "live-" + live.Objects[i].Name
	}
	for i := range live.Edges {
		live.Edges[i].From = "live-" + live.Edges[i].From
		live.Edges[i].To = "live-" + live.Edges[i].To
	}
	materialize(t, c, live, node.Config{})
	return c
}

// fingerprint captures everything a GC round determines: object/scion/stub
// totals, per-node stats and the fabric's message counters.
type clusterFingerprint struct {
	Objects, Scions, Stubs   int
	Stats                    map[ids.NodeID]node.Stats
	Sent, Delivered, Dropped map[wire.Kind]uint64
}

func fingerprint(c *Cluster) clusterFingerprint {
	f := clusterFingerprint{
		Objects: c.TotalObjects(),
		Scions:  c.TotalScions(),
		Stubs:   c.TotalStubs(),
		Stats:   c.Stats(),
	}
	f.Sent, f.Delivered, f.Dropped = c.Net.Counts()
	return f
}

// TestParallelGCRoundMatchesSequential checks the determinism contract of
// the parallel phase runner: with fault injection active, a run on the full
// worker pool produces bit-identical results to the sequential schedule —
// same survivors, same per-node counters, same fabric counters (hence the
// same fault randomness consumption).
func TestParallelGCRoundMatchesSequential(t *testing.T) {
	seq := buildFaultyRing(t, 1)
	par := buildFaultyRing(t, 8)
	for round := 0; round < 6; round++ {
		seq.GCRound()
		par.GCRound()
		fs, fp := fingerprint(seq), fingerprint(par)
		if !reflect.DeepEqual(fs, fp) {
			t.Fatalf("round %d: sequential and parallel diverge:\nseq: %+v\npar: %+v", round, fs, fp)
		}
	}
	if seq.TotalObjects() != 12 { // live ring survives, garbage ring is gone
		t.Fatalf("sequential end state: %d objects, want 12", seq.TotalObjects())
	}
}

// TestParallelCollectFully checks the parallel pool through the
// collect-to-fixpoint driver on a plain garbage ring.
func TestParallelCollectFully(t *testing.T) {
	c := New(7, node.Config{})
	c.SetWorkers(0) // default pool
	materialize(t, c, workload.Ring(8, 2), node.Config{})
	if c.TotalObjects() != 16 {
		t.Fatalf("materialized %d objects", c.TotalObjects())
	}
	c.CollectFully(32)
	if c.TotalObjects() != 0 || c.TotalScions() != 0 {
		t.Fatalf("ring not collected: objects=%d scions=%d", c.TotalObjects(), c.TotalScions())
	}
}

// TestPhaseCapturesAndMergesCanonically exercises the transport phase
// primitive directly: sends made inside a phase are captured off the shared
// queue, and EndPhase merges them in canonical sender order regardless of
// the order the sends happened in.
func TestPhaseCapturesAndMergesCanonically(t *testing.T) {
	net := transport.NewNetwork(1)
	var got []ids.NodeID
	for _, id := range []ids.NodeID{"A", "B", "C"} {
		ep := net.Endpoint(id)
		ep.SetHandler(func(from ids.NodeID, msg wire.Message) []transport.Envelope {
			got = append(got, from)
			return nil
		})
	}
	net.BeginPhase()
	// Send in anti-canonical source order; the merge must restore canonical.
	if err := net.Endpoint("C").Send("A", &wire.HughesStamp{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Endpoint("B").Send("A", &wire.HughesStamp{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Endpoint("A").Send("B", &wire.HughesStamp{}); err != nil {
		t.Fatal(err)
	}
	if net.Pending() != 0 {
		t.Fatalf("phase sends leaked into the queue: %d pending", net.Pending())
	}
	net.EndPhase()
	if net.Pending() != 3 {
		t.Fatalf("merge enqueued %d messages, want 3", net.Pending())
	}
	net.Drain(0)
	want := []ids.NodeID{"A", "B", "C"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery source order %v, want %v", got, want)
	}
}
