package cluster

import (
	"testing"

	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/workload"
)

func materialize(t *testing.T, c *Cluster, topo *workload.Topology, cfg node.Config) map[string]ids.GlobalRef {
	t.Helper()
	refs, err := c.Materialize(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

func TestMaterializeFigure3Shape(t *testing.T) {
	c := New(1, node.Config{})
	refs := materialize(t, c, workload.Figure3(), node.Config{})
	if len(refs) != 14 {
		t.Fatalf("objects = %d", len(refs))
	}
	if c.TotalObjects() != 14 {
		t.Fatalf("TotalObjects = %d", c.TotalObjects())
	}
	// Four inter-process references: four stubs, four scions.
	if c.TotalStubs() != 4 || c.TotalScions() != 4 {
		t.Fatalf("stubs=%d scions=%d", c.TotalStubs(), c.TotalScions())
	}
	if got := refs["F"].Node; got != "P2" {
		t.Fatalf("F on %s", got)
	}
}

func TestMaterializeRejectsInvalidTopology(t *testing.T) {
	c := New(1, node.Config{})
	bad := &workload.Topology{
		Name:    "bad",
		Objects: []workload.ObjSpec{{Name: "x", Node: "P1"}},
		Edges:   []workload.EdgeSpec{{From: "x", To: "nope"}},
	}
	if _, err := c.Materialize(bad, node.Config{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestConnectLocalAndUnknown(t *testing.T) {
	c := New(1, node.Config{}, "P1")
	var a, b ids.ObjID
	c.Node("P1").With(func(m node.Mutator) {
		a, b = m.Alloc(nil), m.Alloc(nil)
	})
	if err := c.Connect("P1", a, "P1", b); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect("P1", a, "P9", 1); err == nil {
		t.Fatal("connect to unknown node accepted")
	}
}

func TestAcyclicDistributedGarbageReclaimedWithoutDetector(t *testing.T) {
	// A garbage chain across 4 processes: pure reference listing reclaims
	// it; the cycle detector must not even be needed.
	c := New(1, node.Config{})
	materialize(t, c, workload.AcyclicChain(4), node.Config{})
	if c.TotalObjects() != 4 {
		t.Fatalf("TotalObjects = %d", c.TotalObjects())
	}
	rounds := c.CollectFully(10)
	if c.TotalObjects() != 0 || c.TotalScions() != 0 || c.TotalStubs() != 0 {
		t.Fatalf("leftovers after %d rounds: objs=%d scions=%d stubs=%d",
			rounds, c.TotalObjects(), c.TotalScions(), c.TotalStubs())
	}
	for id, s := range c.Stats() {
		if s.Detector.CyclesFound != 0 {
			t.Errorf("%s: detector fired on acyclic garbage", id)
		}
	}
}

func TestFigure3EndToEnd(t *testing.T) {
	c := New(1, node.Config{})
	materialize(t, c, workload.Figure3(), node.Config{})
	rounds := c.CollectFully(12)
	if c.TotalObjects() != 0 {
		t.Fatalf("cycle not fully reclaimed after %d rounds: %d objects left", rounds, c.TotalObjects())
	}
	if c.TotalScions() != 0 || c.TotalStubs() != 0 {
		t.Fatalf("tables not empty: scions=%d stubs=%d", c.TotalScions(), c.TotalStubs())
	}
	var cycles uint64
	for _, s := range c.Stats() {
		cycles += s.Detector.CyclesFound
	}
	if cycles == 0 {
		t.Fatal("no cycle detection reported")
	}
}

func TestFigure3BroadcastDeleteReclaimsFaster(t *testing.T) {
	run := func(broadcast bool) int {
		cfg := node.Config{}
		cfg.Detector.BroadcastDelete = broadcast
		c := New(1, cfg)
		if _, err := c.Materialize(workload.Figure3(), cfg); err != nil {
			panic(err)
		}
		rounds := 0
		for c.TotalObjects() > 0 && rounds < 15 {
			c.GCRound()
			rounds++
		}
		return rounds
	}
	cascade, broadcast := run(false), run(true)
	if broadcast > cascade {
		t.Fatalf("broadcast (%d rounds) slower than cascade (%d rounds)", broadcast, cascade)
	}
	if cascade < 2 {
		t.Fatalf("cascade surprisingly fast (%d rounds): cascade not exercised", cascade)
	}
}

func TestFigure4EndToEnd(t *testing.T) {
	c := New(1, node.Config{})
	materialize(t, c, workload.Figure4(), node.Config{})
	rounds := c.CollectFully(15)
	if c.TotalObjects() != 0 {
		t.Fatalf("mutual cycles not reclaimed after %d rounds: %d left", rounds, c.TotalObjects())
	}
}

func TestFigure1DependencyBlocksThenUnblocks(t *testing.T) {
	c := New(1, node.Config{})
	refs := materialize(t, c, workload.Figure1(), node.Config{})

	c.CollectFully(10)
	// W and the whole cycle must survive; only A (local garbage) dies.
	if got := c.TotalObjects(); got != 14 {
		t.Fatalf("objects = %d, want 14 (cycle+W alive, A dead)", got)
	}
	live := c.GlobalLive()
	if _, ok := live[refs["F"]]; !ok {
		t.Fatal("ground truth says F should be live")
	}

	// The external root dies.
	w := refs["W"]
	c.Node(w.Node).With(func(m node.Mutator) { m.Unroot(w.Obj) })
	rounds := c.CollectFully(12)
	if c.TotalObjects() != 0 {
		t.Fatalf("cycle not reclaimed after dependency death (%d rounds, %d left)",
			rounds, c.TotalObjects())
	}
}

func TestLiveRingNeverCollected(t *testing.T) {
	c := New(1, node.Config{})
	materialize(t, c, workload.LiveRing(4, 2), node.Config{})
	before := c.GlobalLive()
	if len(before) != 8 {
		t.Fatalf("ground truth live = %d, want all 8", len(before))
	}
	for i := 0; i < 8; i++ {
		c.GCRound()
	}
	if v := c.LiveViolations(before); len(v) != 0 {
		t.Fatalf("live objects reclaimed: %v", v)
	}
	if c.TotalObjects() != 8 {
		t.Fatalf("objects = %d", c.TotalObjects())
	}
}

func TestRingLengthsCollect(t *testing.T) {
	for _, procs := range []int{2, 3, 5, 8} {
		c := New(1, node.Config{})
		materialize(t, c, workload.Ring(procs, 2), node.Config{})
		rounds := c.CollectFully(procs*2 + 6)
		if c.TotalObjects() != 0 {
			t.Errorf("ring over %d procs not reclaimed (%d rounds, %d left)",
				procs, rounds, c.TotalObjects())
		}
	}
}

func TestGCRoundIdempotentOnEmptyCluster(t *testing.T) {
	c := New(1, node.Config{}, "P1", "P2")
	c.GCRound()
	c.GCRound()
	if c.TotalObjects() != 0 {
		t.Fatal("objects appeared from nowhere")
	}
}
