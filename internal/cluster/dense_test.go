package cluster

import (
	"testing"

	"dgc/internal/node"
	"dgc/internal/workload"
)

// TestDenseSCCTrafficBounded is the performance regression guard for the
// CDM accumulator: a dense 48-object garbage SCC across 4 processes must be
// fully reclaimed with a polynomial number of CDMs. Without per-detection
// accumulation this topology generated over a million CDMs (per-path
// partial closures defeat naive deduplication); with it, a few thousand.
func TestDenseSCCTrafficBounded(t *testing.T) {
	cfg := node.Config{}
	c := New(2026, cfg)
	topo := workload.RandomGraph(7, workload.RandomConfig{
		Procs: 4, ObjsPerProc: 12, OutDegree: 2.0, RemoteFrac: 0.55, RootFrac: 0,
	})
	if _, err := c.Materialize(topo, cfg); err != nil {
		t.Fatal(err)
	}
	total := c.TotalObjects()

	rounds := 0
	for c.TotalObjects() > 0 && rounds < 20 {
		c.GCRound()
		rounds++
	}
	if c.TotalObjects() != 0 {
		t.Fatalf("dense SCC not reclaimed: %d of %d objects left after %d rounds",
			c.TotalObjects(), total, rounds)
	}
	var cdms uint64
	for _, s := range c.Stats() {
		cdms += s.Detector.CDMsSent
	}
	// Generous bound: well below the per-path explosion regime.
	if cdms > 100_000 {
		t.Fatalf("CDM traffic regressed: %d messages for a %d-object SCC", cdms, total)
	}
}

// TestBoundedDetectionsStillComplete verifies candidate rotation: with one
// detection per node per round, every garbage structure is still
// eventually reclaimed (a fixed candidate prefix would starve blocked
// candidates).
func TestBoundedDetectionsStillComplete(t *testing.T) {
	cfg := node.Config{MaxDetectionsPerRound: 1}
	c := New(3, cfg)
	topo := workload.RandomGraph(11, workload.RandomConfig{
		Procs: 4, ObjsPerProc: 8, OutDegree: 1.8, RemoteFrac: 0.5, RootFrac: 0.1,
	})
	if _, err := c.Materialize(topo, cfg); err != nil {
		t.Fatal(err)
	}
	live := c.GlobalLive()
	rounds := c.CollectFully(60)
	if got := c.TotalObjects(); got != len(live) {
		t.Fatalf("bounded detections incomplete after %d rounds: %d objects, want %d",
			rounds, got, len(live))
	}
	if v := c.LiveViolations(live); len(v) != 0 {
		t.Fatalf("safety violation: %v", v)
	}
}
