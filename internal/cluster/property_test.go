package cluster

import (
	"fmt"
	"testing"

	"dgc/internal/ids"

	"dgc/internal/node"
	"dgc/internal/transport"
	"dgc/internal/wire"
	"dgc/internal/workload"
)

// gcTraffic are the message kinds whose loss the PAPER claims to tolerate
// ("our algorithm ... tolerates message loss"): the collector's own
// protocol. Invocation traffic is the application's problem.
var gcTraffic = []wire.Kind{wire.KindNewSetStubs, wire.KindCDM, wire.KindDeleteScion}

func TestLossToleranceRingStillCollected(t *testing.T) {
	// 30% of GC messages are lost; detection is retried every round, so the
	// ring must still be reclaimed, just later.
	c := New(12345, node.Config{})
	if _, err := c.Materialize(workload.Ring(3, 1), node.Config{}); err != nil {
		t.Fatal(err)
	}
	c.Net.SetFaults(transport.Faults{LossRate: 0.3, Affects: gcTraffic})
	for round := 0; round < 80; round++ {
		c.GCRound()
		if c.TotalObjects() == 0 {
			return
		}
	}
	t.Fatalf("ring not reclaimed under 30%% GC-message loss: %d objects left", c.TotalObjects())
}

func TestDuplicationAndReorderSafety(t *testing.T) {
	// Duplicated and reordered GC traffic must never reclaim live objects.
	c := New(777, node.Config{})
	if _, err := c.Materialize(workload.LiveRing(4, 2), node.Config{}); err != nil {
		t.Fatal(err)
	}
	c.Net.SetFaults(transport.Faults{DupRate: 0.5, ReorderRate: 0.5, Affects: gcTraffic})
	live := c.GlobalLive()
	for round := 0; round < 12; round++ {
		c.GCRound()
	}
	if v := c.LiveViolations(live); len(v) != 0 {
		t.Fatalf("live objects reclaimed under dup/reorder: %v", v)
	}
}

// TestRandomGraphSafetyAndCompleteness is the central property test: on
// seeded random distributed graphs,
//
//	safety        — no globally reachable object is ever reclaimed;
//	completeness  — every unreachable object (acyclic, cyclic or hybrid
//	                garbage) is eventually reclaimed.
func TestRandomGraphSafetyAndCompleteness(t *testing.T) {
	cfgs := []workload.RandomConfig{
		{Procs: 3, ObjsPerProc: 8, OutDegree: 1.5, RemoteFrac: 0.4, RootFrac: 0.15},
		{Procs: 5, ObjsPerProc: 6, OutDegree: 2.0, RemoteFrac: 0.5, RootFrac: 0.1},
		{Procs: 4, ObjsPerProc: 10, OutDegree: 1.2, RemoteFrac: 0.3, RootFrac: 0.05},
		{Procs: 6, ObjsPerProc: 5, OutDegree: 2.5, RemoteFrac: 0.6, RootFrac: 0.2},
	}
	for seed := int64(1); seed <= 10; seed++ {
		for ci, wcfg := range cfgs {
			seed, wcfg, ci := seed, wcfg, ci
			t.Run(fmt.Sprintf("cfg%d/seed%d", ci, seed), func(t *testing.T) {
				t.Parallel()
				c := New(seed, node.Config{})
				topo := workload.RandomGraph(seed, wcfg)
				if _, err := c.Materialize(topo, node.Config{}); err != nil {
					t.Fatal(err)
				}
				live := c.GlobalLive()
				total := c.TotalObjects()
				if len(live) > total {
					t.Fatalf("ground truth inconsistent: %d live of %d", len(live), total)
				}
				rounds := c.CollectFully(40)
				if v := c.LiveViolations(live); len(v) != 0 {
					t.Fatalf("SAFETY violation after %d rounds: reclaimed live %v", rounds, v)
				}
				if got := c.TotalObjects(); got != len(live) {
					t.Fatalf("COMPLETENESS violation after %d rounds: %d objects remain, want %d",
						rounds, got, len(live))
				}
			})
		}
	}
}

// TestRandomGraphSafetyUnderGCMessageLoss repeats the safety check with GC
// traffic loss: completeness within a bounded horizon is no longer
// guaranteed, but safety is absolute.
func TestRandomGraphSafetyUnderGCMessageLoss(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c := New(seed, node.Config{})
			topo := workload.RandomGraph(seed, workload.RandomConfig{
				Procs: 4, ObjsPerProc: 8, OutDegree: 2.0, RemoteFrac: 0.5, RootFrac: 0.1,
			})
			if _, err := c.Materialize(topo, node.Config{}); err != nil {
				t.Fatal(err)
			}
			c.Net.SetFaults(transport.Faults{LossRate: 0.25, DupRate: 0.2, ReorderRate: 0.3, Affects: gcTraffic})
			live := c.GlobalLive()
			for round := 0; round < 25; round++ {
				c.GCRound()
			}
			if v := c.LiveViolations(live); len(v) != 0 {
				t.Fatalf("SAFETY violation under faults: %v", v)
			}
		})
	}
}

// TestMutationChurnSafety runs continuous mutator activity (allocations,
// link churn, remote invocations through the RPC path) interleaved with GC
// rounds, then verifies ground truth is preserved.
func TestMutationChurnSafety(t *testing.T) {
	c := New(9, node.Config{CallTimeoutTicks: 50})
	refs, err := c.Materialize(workload.LiveRing(3, 2), node.Config{CallTimeoutTicks: 50})
	if err != nil {
		t.Fatal(err)
	}
	head := refs[workload.RingHead()]

	// A rooted driver object on each node, all holding the ring head.
	for _, n := range c.Nodes() {
		var driver ids.ObjID
		n.With(func(m node.Mutator) {
			driver = m.Alloc(nil)
			if err := m.Root(driver); err != nil {
				t.Error(err)
			}
		})
		if err := c.Connect(n.ID(), driver, head.Node, head.Obj); err != nil {
			t.Fatal(err)
		}
	}
	c.Settle()

	// Churn: every node keeps invoking alloc-child/get/noop on the head and
	// dropping what it learns, while GC rounds run.
	for round := 0; round < 15; round++ {
		for _, n := range c.Nodes() {
			n := n
			if n.ID() == head.Node {
				continue
			}
			if err := n.Invoke(head, "alloc-child", nil, func(m node.Mutator, r node.Reply) {
				// Unlink the child again right away: it becomes garbage at
				// the owner and must be collected, not leak.
				if r.OK && len(r.Returns) == 1 {
					if err := m.Invoke(head, "drop", r.Returns, nil); err != nil {
						t.Error(err)
					}
				}
			}); err != nil {
				t.Fatal(err)
			}
			if err := n.Invoke(head, "noop", nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		c.Settle()
		c.GCRound()
	}
	// Quiesce fully, then check ground truth equivalence.
	c.Settle()
	live := c.GlobalLive()
	c.CollectFully(25)
	if v := c.LiveViolations(live); len(v) != 0 {
		t.Fatalf("safety violation under churn: %v", v)
	}
	if got := c.TotalObjects(); got != len(live) {
		t.Fatalf("completeness under churn: %d objects, want %d", got, len(live))
	}
}
