package cluster

import (
	"testing"

	"dgc/internal/ids"
	"dgc/internal/node"
)

// raceRig builds the Figure 5 situation at full stack level: a three-process
// ring (o0@P1 -> o1@P2 -> o2@P3 -> o0) held live by rooted R@P1 -> o0, plus
// a rooted-but-empty rootB@P2 that the mutator will migrate the root to
// while a detection is in flight.
type raceRig struct {
	c               *Cluster
	r, o0           ids.ObjID // at P1
	rootB, o1       ids.ObjID // at P2
	o2              ids.ObjID // at P3
	o1Ref, rootBRef ids.GlobalRef
}

func buildRaceRig(t *testing.T) *raceRig {
	t.Helper()
	c := New(1, node.Config{}, "P1", "P2", "P3")
	rig := &raceRig{c: c}
	p1, p2, p3 := c.Node("P1"), c.Node("P2"), c.Node("P3")

	p1.With(func(m node.Mutator) {
		rig.r = m.Alloc(nil)
		rig.o0 = m.Alloc(nil)
		if err := m.Root(rig.r); err != nil {
			t.Error(err)
		}
		if err := m.Link(rig.r, rig.o0); err != nil {
			t.Error(err)
		}
	})
	p2.With(func(m node.Mutator) {
		rig.rootB = m.Alloc(nil)
		rig.o1 = m.Alloc(nil)
		if err := m.Root(rig.rootB); err != nil {
			t.Error(err)
		}
	})
	p3.With(func(m node.Mutator) {
		rig.o2 = m.Alloc(nil)
	})

	mustConnect := func(fn ids.NodeID, fo ids.ObjID, tn ids.NodeID, to ids.ObjID) {
		t.Helper()
		if err := c.Connect(fn, fo, tn, to); err != nil {
			t.Fatal(err)
		}
	}
	mustConnect("P1", rig.o0, "P2", rig.o1)
	mustConnect("P2", rig.o1, "P3", rig.o2)
	mustConnect("P3", rig.o2, "P1", rig.o0)
	mustConnect("P1", rig.r, "P2", rig.rootB) // R can reach rootB remotely

	rig.o1Ref = ids.GlobalRef{Node: "P2", Obj: rig.o1}
	rig.rootBRef = ids.GlobalRef{Node: "P2", Obj: rig.rootB}
	return rig
}

// migrateRoot performs the paper's root switch purely through the mutator
// API: P1 exports its o1 reference into rootB@P2 (creating rootB -> o1) and
// then drops its own path to the ring.
func (rig *raceRig) migrateRoot(t *testing.T) {
	t.Helper()
	p1 := rig.c.Node("P1")
	if err := p1.Invoke(rig.rootBRef, "store", []ids.GlobalRef{rig.o1Ref}, func(_ node.Mutator, r node.Reply) {
		if !r.OK {
			t.Errorf("store failed: %s", r.Err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func (rig *raceRig) dropOldRoot(t *testing.T) {
	t.Helper()
	rig.c.Node("P1").With(func(m node.Mutator) {
		if err := m.Unlink(rig.r, rig.o0); err != nil {
			t.Error(err)
		}
	})
}

// assertRingAlive fails the test if any ring object has been reclaimed.
func (rig *raceRig) assertRingAlive(t *testing.T) {
	t.Helper()
	checks := []struct {
		node ids.NodeID
		obj  ids.ObjID
	}{{"P1", rig.o0}, {"P2", rig.o1}, {"P3", rig.o2}}
	for _, chk := range checks {
		alive := false
		rig.c.Node(chk.node).With(func(m node.Mutator) { alive = m.Exists(chk.obj) })
		if !alive {
			t.Fatalf("live ring object %d@%s was reclaimed", chk.obj, chk.node)
		}
	}
}

// TestFigure5RaceArrivalGuard reproduces the paper's §3.2 race: the root
// migrates (via reference copying through the mutator) while a detection is
// in flight; P1 re-summarizes after the migration, P2 does not. The stale
// CDM must be aborted by the invocation-counter arrival guard.
func TestFigure5RaceArrivalGuard(t *testing.T) {
	rig := buildRaceRig(t)
	c := rig.c

	// Baseline GC state: everyone has collected and summarized.
	for _, n := range c.Nodes() {
		n.RunLGC()
	}
	c.Settle()
	for _, n := range c.Nodes() {
		if err := n.Summarize(); err != nil {
			t.Fatal(err)
		}
	}

	// Detection starts at P2 (scion P1 -> o1 is its only candidate: rootB's
	// scion is locally reachable).
	if started := c.Node("P2").RunDetection(); started != 1 {
		t.Fatalf("detections started = %d, want 1", started)
	}
	// Queue now: CDM(P2 -> P3). Interleave the mutator's root migration.
	rig.migrateRoot(t)
	// Deliver the CDM hop to P3 and the invoke round trip, but NOT the
	// CDM(P3 -> P1) yet... order in queue: CDM(->P3), InvokeReq(->P2).
	c.Net.Drain(2) // CDM at P3 (enqueues CDM->P1), InvokeReq at P2 (enqueues reply)

	// The root switch completes and P1 re-summarizes with fresh counters.
	rig.dropOldRoot(t)
	c.Node("P1").RunLGC()
	if err := c.Node("P1").Summarize(); err != nil {
		t.Fatal(err)
	}

	// Let everything settle: CDM reaches P1 (whose new summary no longer
	// shows local reachability) and is forwarded to P2 with the bumped
	// stub counter; P2's stale scion counter mismatches: abort.
	c.Settle()

	p2stats := c.Node("P2").Stats()
	if p2stats.Detector.CyclesFound != 0 {
		t.Fatal("false cycle detection: live ring declared garbage")
	}
	if p2stats.Detector.Aborted == 0 {
		t.Fatal("detection was not aborted by the IC guard")
	}
	rig.assertRingAlive(t)

	// And the ring survives any number of further honest GC rounds, now
	// rooted at P2.
	for i := 0; i < 6; i++ {
		c.GCRound()
	}
	rig.assertRingAlive(t)
	// R no longer references o0; o0 stays alive only via the ring (which is
	// held by rootB -> o1).
	if got := c.TotalObjects(); got != 5 {
		t.Fatalf("objects = %d, want all 5", got)
	}
}

// TestFigure5RaceMatchAbort is the variant where BOTH P1 and P2 re-summarize
// after the migration: the arrival guard passes but algebra matching sees
// the old counter in the source set and aborts.
func TestFigure5RaceMatchAbort(t *testing.T) {
	rig := buildRaceRig(t)
	c := rig.c

	for _, n := range c.Nodes() {
		n.RunLGC()
	}
	c.Settle()
	for _, n := range c.Nodes() {
		if err := n.Summarize(); err != nil {
			t.Fatal(err)
		}
	}
	if started := c.Node("P2").RunDetection(); started != 1 {
		t.Fatalf("detections started = %d, want 1", started)
	}
	rig.migrateRoot(t)
	c.Net.Drain(2)
	rig.dropOldRoot(t)
	c.Node("P1").RunLGC()
	if err := c.Node("P1").Summarize(); err != nil {
		t.Fatal(err)
	}
	// P2 re-summarizes too: its scion counter is now also fresh, so the
	// in-flight detection's SOURCE entry (recorded at start) is the stale
	// one.
	if err := c.Node("P2").Summarize(); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	p2stats := c.Node("P2").Stats()
	if p2stats.Detector.CyclesFound != 0 {
		t.Fatal("false cycle detection")
	}
	if p2stats.Detector.Aborted == 0 {
		t.Fatal("no abort recorded")
	}
	rig.assertRingAlive(t)
}

// TestRaceThenGarbageIsEventuallyCollected closes the loop: after the failed
// (aborted) detection, the mutator drops the NEW root too, and the ring —
// now genuinely garbage — must be collected by later rounds.
func TestRaceThenGarbageIsEventuallyCollected(t *testing.T) {
	rig := buildRaceRig(t)
	c := rig.c

	for _, n := range c.Nodes() {
		n.RunLGC()
	}
	c.Settle()
	for _, n := range c.Nodes() {
		if err := n.Summarize(); err != nil {
			t.Fatal(err)
		}
	}
	c.Node("P2").RunDetection()
	rig.migrateRoot(t)
	c.Net.Drain(2)
	rig.dropOldRoot(t)
	c.Node("P1").RunLGC()
	if err := c.Node("P1").Summarize(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	rig.assertRingAlive(t)

	// Now rootB drops its reference: the ring is garbage.
	c.Node("P2").With(func(m node.Mutator) {
		if err := m.Drop(rig.rootB, rig.o1Ref); err != nil {
			t.Error(err)
		}
	})
	rounds := c.CollectFully(12)
	// R and rootB survive (rooted); the three ring objects must be gone.
	if got := c.TotalObjects(); got != 2 {
		t.Fatalf("objects = %d after %d rounds, want 2 (R, rootB)", got, rounds)
	}
}
