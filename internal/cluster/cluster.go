// Package cluster harnesses a set of nodes over a deterministic in-process
// network: the simulation backbone for integration tests, experiments and
// examples.
//
// The cluster owns the schedule: Tick drives every node's daemons in a fixed
// order and Settle pumps the network to quiescence, so a run is a pure
// function of (topology, configuration, seed).
package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/transport"
	"dgc/internal/workload"
)

// Cluster is a set of nodes on one in-process network.
type Cluster struct {
	// Net is the underlying fabric; exposed for fault injection and
	// message accounting.
	Net   *transport.Network
	nodes map[ids.NodeID]*node.Node
	order []ids.NodeID

	// workers bounds the worker pool of the parallel GC phases
	// (0 = runtime.NumCPU). Set via SetWorkers; 1 forces sequential
	// execution, which parallel runs are bit-identical to.
	workers int
}

// New creates a cluster of nodes with the given shared configuration. The
// seed drives the network's fault randomness only.
func New(seed int64, cfg node.Config, names ...ids.NodeID) *Cluster {
	c := &Cluster{
		Net:   transport.NewNetwork(seed),
		nodes: make(map[ids.NodeID]*node.Node, len(names)),
	}
	for _, n := range names {
		c.Add(n, cfg)
	}
	return c
}

// Add creates one more node with its own configuration. The simulator pins
// batched detection OFF unless the scenario opts in explicitly: the
// unbatched path is the property-test reference and what the byte-identical
// simulation fingerprints were recorded against, so the library-level
// default flip must not leak in here.
func (c *Cluster) Add(id ids.NodeID, cfg node.Config) *node.Node {
	if _, dup := c.nodes[id]; dup {
		panic(fmt.Sprintf("cluster: duplicate node %s", id))
	}
	if cfg.BatchDetection == nil {
		cfg.BatchDetection = node.Bool(false)
	}
	n := node.New(id, c.Net.Endpoint(id), cfg)
	c.nodes[id] = n
	// Insert in canonical position instead of re-sorting the whole slice on
	// every Add (quadratic churn when building large clusters).
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	c.order = append(c.order, "")
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id
	return n
}

// Node returns the named node (nil if absent).
func (c *Cluster) Node(id ids.NodeID) *node.Node { return c.nodes[id] }

// Replace swaps in a different node instance under an existing name —
// the restart primitive (pair with node.Restore). The replacement must
// already be attached to this cluster's endpoint for the name.
func (c *Cluster) Replace(id ids.NodeID, n *node.Node) {
	if _, ok := c.nodes[id]; !ok {
		panic(fmt.Sprintf("cluster: Replace of unknown node %s", id))
	}
	c.nodes[id] = n
}

// Nodes returns all nodes in canonical order.
func (c *Cluster) Nodes() []*node.Node {
	out := make([]*node.Node, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id])
	}
	return out
}

// Settle pumps the network until no messages are in flight and returns the
// number delivered.
func (c *Cluster) Settle() int { return c.Net.Drain(0) }

// Tick advances every node's logical clock once (running their configured
// daemons) and settles the network. Repeated `rounds` times.
func (c *Cluster) Tick(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, id := range c.order {
			c.nodes[id].Tick()
		}
		c.Settle()
	}
}

// SetWorkers bounds the worker pool used by the parallel GC phases.
// 0 restores the default (runtime.NumCPU); 1 forces sequential execution.
// Negative counts are rejected with a panic — they have no meaning, and
// silently clamping them used to mask caller bugs. Parallel runs are
// bit-identical to sequential ones — see runPhase.
func (c *Cluster) SetWorkers(k int) {
	if k < 0 {
		panic(fmt.Sprintf("cluster: SetWorkers(%d): worker count must be >= 0", k))
	}
	c.workers = k
}

// runPhase applies fn to every node. The phases of a GC round are
// node-independent — each call touches only its own node's state and sends
// messages, and no message is delivered until the next Settle — so fn runs
// on a pool of w workers that claim nodes off a shared cursor, each node
// owned end to end by one goroutine. Determinism is preserved by the
// fabric's phase mode: every endpoint captures its own sends (stamped with
// per-edge sequence numbers) without touching shared fabric state, and
// EndPhase merges them in canonical sender order through fault injection and
// the queue, so the queue contents and the fault-randomness stream are
// bit-identical to running the phase sequentially.
func (c *Cluster) runPhase(fn func(n *node.Node) error) {
	w := c.workers
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w > len(c.order) {
		w = len(c.order)
	}
	if w <= 1 || len(c.order) <= 1 {
		for _, id := range c.order {
			if err := fn(c.nodes[id]); err != nil {
				panic(fmt.Sprintf("cluster: %s: %v", id, err))
			}
		}
		return
	}
	c.Net.BeginPhase()
	errs := make([]error, len(c.order))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(c.order) {
					return
				}
				errs[i] = fn(c.nodes[c.order[i]])
			}
		}()
	}
	wg.Wait()
	c.Net.EndPhase()
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("cluster: %s: %v", c.order[i], err))
		}
	}
}

// GCRound runs one explicit, fully-settled collection round on every node:
// local collections (emitting NewSetStubs), then summarization and detection
// fused into one parallel pass. Summarization emits no messages, so running
// a node's detection immediately after its own summarization — while other
// nodes are still summarizing — changes no message order and no outcome, and
// keeps each node under a single worker end to end instead of paying a
// cluster-wide barrier between the two. Used by tests that drive the
// collectors manually instead of through Tick. Each phase runs on the
// parallel worker pool (see runPhase); results are identical to the
// sequential schedule.
func (c *Cluster) GCRound() {
	c.runPhase(func(n *node.Node) error {
		n.RunLGC()
		return nil
	})
	c.Settle()
	c.runPhase(func(n *node.Node) error {
		if err := n.Summarize(); err != nil {
			return fmt.Errorf("summarize: %w", err)
		}
		n.RunDetection()
		return nil
	})
	c.Settle()
}

// CollectFully runs GCRounds until the global object count stops shrinking
// or maxRounds is hit, returning the number of rounds executed. This is the
// "let the collectors finish" primitive of the completeness tests.
func (c *Cluster) CollectFully(maxRounds int) int {
	prev := -1
	for r := 0; r < maxRounds; r++ {
		cur := c.TotalObjects() + c.TotalScions()
		if cur == prev {
			return r
		}
		prev = cur
		c.GCRound()
	}
	return maxRounds
}

// TotalObjects sums heap sizes over all nodes, in canonical node order (a
// deterministic visit order, so aggregation work is reproducible).
func (c *Cluster) TotalObjects() int {
	total := 0
	for _, id := range c.order {
		total += c.nodes[id].NumObjects()
	}
	return total
}

// TotalScions sums scion counts over all nodes in canonical order.
func (c *Cluster) TotalScions() int {
	total := 0
	for _, id := range c.order {
		total += c.nodes[id].NumScions()
	}
	return total
}

// TotalStubs sums stub counts over all nodes in canonical order.
func (c *Cluster) TotalStubs() int {
	total := 0
	for _, id := range c.order {
		total += c.nodes[id].NumStubs()
	}
	return total
}

// Stats collects every node's counters in canonical order.
func (c *Cluster) Stats() map[ids.NodeID]node.Stats {
	out := make(map[ids.NodeID]node.Stats, len(c.order))
	for _, id := range c.order {
		out[id] = c.nodes[id].Stats()
	}
	return out
}

// Connect grants object fromObj on node from a reference to toObj on node
// to, preserving scion-before-stub. The harness bootstrap primitive.
func (c *Cluster) Connect(from ids.NodeID, fromObj ids.ObjID, to ids.NodeID, toObj ids.ObjID) error {
	fn, tn := c.nodes[from], c.nodes[to]
	if fn == nil || tn == nil {
		return fmt.Errorf("cluster: unknown node %s or %s", from, to)
	}
	if from == to {
		var err error
		fn.With(func(m node.Mutator) { err = m.Link(fromObj, toObj) })
		return err
	}
	if err := tn.EnsureScionFor(from, toObj); err != nil {
		return err
	}
	return fn.HoldRemote(fromObj, ids.GlobalRef{Node: to, Obj: toObj})
}

// Materialize instantiates a workload topology: allocates the objects
// (creating nodes on demand with cfg), applies roots, and wires the edges.
// It returns the mapping from topology object names to global references.
func (c *Cluster) Materialize(t *workload.Topology, cfg node.Config) (map[string]ids.GlobalRef, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	for _, id := range t.Nodes() {
		if c.nodes[id] == nil {
			c.Add(id, cfg)
		}
	}
	refs := make(map[string]ids.GlobalRef, len(t.Objects))
	for _, spec := range t.Objects {
		n := c.nodes[spec.Node]
		var ref ids.GlobalRef
		var err error
		n.With(func(m node.Mutator) {
			var payload []byte
			if spec.Payload > 0 {
				payload = make([]byte, spec.Payload)
			}
			obj := m.Alloc(payload)
			ref = m.GlobalRef(obj)
			if spec.Rooted {
				err = m.Root(obj)
			}
		})
		if err != nil {
			return nil, err
		}
		refs[spec.Name] = ref
	}
	for _, e := range t.Edges {
		f, g := refs[e.From], refs[e.To]
		if err := c.Connect(f.Node, f.Obj, g.Node, g.Obj); err != nil {
			return nil, fmt.Errorf("cluster: edge %s->%s: %w", e.From, e.To, err)
		}
	}
	return refs, nil
}

// GlobalLive computes ground truth: the set of objects reachable from any
// process root following local AND remote references — what an omniscient
// collector would keep. Used by safety/completeness tests; it reads
// consistent heap clones, so call it while the cluster is quiescent.
func (c *Cluster) GlobalLive() map[ids.GlobalRef]struct{} {
	heaps := make(map[ids.NodeID]*heap.Heap, len(c.nodes))
	for id, n := range c.nodes {
		heaps[id] = n.CloneHeap()
	}
	live := make(map[ids.GlobalRef]struct{})
	var queue []ids.GlobalRef
	push := func(ref ids.GlobalRef) {
		h := heaps[ref.Node]
		if h == nil || !h.Contains(ref.Obj) {
			return
		}
		if _, ok := live[ref]; ok {
			return
		}
		live[ref] = struct{}{}
		queue = append(queue, ref)
	}
	for _, id := range c.order {
		for _, r := range heaps[id].Roots() {
			push(ids.GlobalRef{Node: id, Obj: r})
		}
	}
	for len(queue) > 0 {
		ref := queue[0]
		queue = queue[1:]
		o := heaps[ref.Node].Get(ref.Obj)
		for _, l := range o.Locals {
			push(ids.GlobalRef{Node: ref.Node, Obj: l})
		}
		for _, r := range o.Remotes {
			push(r)
		}
	}
	return live
}

// LiveViolations reports objects that SHOULD be alive (per GlobalLive
// ground truth computed before collection) but have been reclaimed: any
// entry here is a safety bug.
func (c *Cluster) LiveViolations(expectedLive map[ids.GlobalRef]struct{}) []ids.GlobalRef {
	var out []ids.GlobalRef
	for ref := range expectedLive {
		n := c.nodes[ref.Node]
		if n == nil {
			out = append(out, ref)
			continue
		}
		found := false
		h := n.CloneHeap()
		found = h.Contains(ref.Obj)
		if !found {
			out = append(out, ref)
		}
	}
	ids.SortGlobalRefs(out)
	return out
}
