package cluster

import (
	"strings"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/trace"
	"dgc/internal/workload"
)

// TestTraceRecordsCollectionStory verifies the node layer narrates a full
// Figure 3 collection: collections, summarizations, detection starts, CDM
// handling, the cycle-found event and both scion-deletion reasons.
func TestTraceRecordsCollectionStory(t *testing.T) {
	log := trace.New(4096)
	cfg := node.Config{Trace: log}
	c := New(1, cfg)
	if _, err := c.Materialize(workload.Figure3(), cfg); err != nil {
		t.Fatal(err)
	}
	c.CollectFully(12)
	if c.TotalObjects() != 0 {
		t.Fatal("not collected")
	}

	if len(log.OfKind(trace.KindLGC)) == 0 {
		t.Error("no LGC events")
	}
	if len(log.OfKind(trace.KindSummarize)) == 0 {
		t.Error("no summarize events")
	}
	starts := log.OfKind(trace.KindDetectionStart)
	if len(starts) == 0 {
		t.Error("no detection-start events")
	}
	found := log.OfKind(trace.KindCycleFound)
	if len(found) == 0 {
		t.Fatal("no cycle-found events")
	}
	if !strings.Contains(found[0].Detail, "scions=4") {
		t.Errorf("cycle-found detail = %q, want the 4-scion cycle", found[0].Detail)
	}
	// All four cycle scions disappear, each attributed to a reason (the
	// detector's own deletion, or the stub-set cascade when another node's
	// detection beat this one's).
	var cycleDel, stubSetDel int
	for _, e := range log.OfKind(trace.KindScionDeleted) {
		switch {
		case strings.Contains(e.Detail, "reason=cycle"):
			cycleDel++
		case strings.Contains(e.Detail, "reason=stub-set"):
			stubSetDel++
		}
	}
	if cycleDel == 0 {
		t.Error("no cycle-reason scion deletions")
	}
	if cycleDel+stubSetDel != 4 {
		t.Errorf("scion deletions = %d cycle + %d stub-set, want 4 total", cycleDel, stubSetDel)
	}
	// A cycle-found event must come after at least one CDM event.
	events := log.Snapshot()
	firstCDM, firstFound := uint64(0), uint64(0)
	for _, e := range events {
		if e.Kind == trace.KindCDMHandled && firstCDM == 0 {
			firstCDM = e.Seq
		}
		if e.Kind == trace.KindCycleFound && firstFound == 0 {
			firstFound = e.Seq
		}
	}
	if firstCDM == 0 || firstFound == 0 || firstFound < firstCDM {
		t.Errorf("event order wrong: firstCDM=%d firstFound=%d", firstCDM, firstFound)
	}
}

func TestTraceRecordsInvocations(t *testing.T) {
	log := trace.New(256)
	cfg := node.Config{Trace: log}
	c := New(1, cfg, "A", "B")
	var target ids.ObjID
	c.Node("B").With(func(m node.Mutator) { target = m.Alloc(nil) })
	var holder ids.ObjID
	c.Node("A").With(func(m node.Mutator) {
		holder = m.Alloc(nil)
		if err := m.Root(holder); err != nil {
			t.Error(err)
		}
	})
	if err := c.Connect("A", holder, "B", target); err != nil {
		t.Fatal(err)
	}
	if err := c.Node("A").Invoke(ids.GlobalRef{Node: "B", Obj: target}, "noop", nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	invokes := log.OfKind(trace.KindInvoke)
	if len(invokes) != 1 || invokes[0].Node != "B" || !strings.Contains(invokes[0].Detail, "method=noop") {
		t.Fatalf("invoke events = %+v", invokes)
	}
}
