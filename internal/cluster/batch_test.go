package cluster

import (
	"fmt"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/transport"
	"dgc/internal/wire"
	"dgc/internal/workload"
)

// modeConfig returns the node configuration for one detection mode.
func modeConfig(mode string) node.Config {
	var cfg node.Config
	switch mode {
	case "batched":
		cfg.BatchDetection = node.Bool(true)
	case "aggregate":
		cfg.BatchDetection = node.Bool(true)
		cfg.AggregateDetection = true
	}
	return cfg
}

// modeOutcome is the observable result of collecting one topology under one
// detection mode: what survived (per node, in canonical order) and the
// cluster-wide traffic counters.
type modeOutcome struct {
	rounds   int
	perNode  []nodeSurvivors
	msgs     uint64 // transport-level CDM+BatchCDM messages
	batch    uint64 // BatchCDM messages
	sections uint64 // sections carried by those BatchCDMs
	cycles   uint64 // detections that proved a cycle, cluster-wide
	aborted  uint64
}

// nodeSurvivors is one node's post-collection state.
type nodeSurvivors struct {
	ID                     string
	Objects, Scions, Stubs int
}

func runMode(t *testing.T, seed int64, topo *workload.Topology, mode string, maxRounds int) (modeOutcome, map[ids.GlobalRef]struct{}) {
	t.Helper()
	cfg := modeConfig(mode)
	c := New(seed, cfg)
	if _, err := c.Materialize(topo, cfg); err != nil {
		t.Fatal(err)
	}
	live := c.GlobalLive()
	out := modeOutcome{rounds: c.CollectFully(maxRounds)}
	if v := c.LiveViolations(live); len(v) != 0 {
		t.Fatalf("%s/%s: SAFETY violation: reclaimed live %v", topo.Name, mode, v)
	}
	for _, n := range c.Nodes() {
		out.perNode = append(out.perNode, nodeSurvivors{
			ID: string(n.ID()), Objects: n.NumObjects(), Scions: n.NumScions(), Stubs: n.NumStubs(),
		})
	}
	for _, s := range c.Stats() {
		out.msgs += s.CDMMsgsSent
		out.batch += s.BatchCDMsSent
		out.sections += s.BatchSectionsSent
		out.cycles += s.Detector.CyclesFound
		out.aborted += s.Detector.Aborted
	}
	return out, live
}

// TestBatchedDetectionEquivalence is the batching property test: on seeded
// ring, shared-trunk, web and random graphs, batched and unbatched detection
// (and batched+aggregated) must reclaim EXACTLY the same objects — same
// per-node survivor counts, full collection of garbage, no safety
// violations — differing only in how the detection traffic is packaged.
func TestBatchedDetectionEquivalence(t *testing.T) {
	topos := []*workload.Topology{
		workload.Ring(5, 2),
		workload.SharedTrunk(8, 4),
		workload.WebGraph(11, 4, 3, 4),
		workload.WebGraph(13, 5, 4, 6),
		workload.WebGraph(17, 5, 4, 6),
	}
	for _, seed := range []int64{101, 102, 104, 105, 106, 108} {
		topos = append(topos, workload.RandomGraph(seed, workload.RandomConfig{
			Procs: 4, ObjsPerProc: 8, OutDegree: 2.0, RemoteFrac: 0.5, RootFrac: 0.1,
		}))
	}
	for _, topo := range topos {
		topo := topo
		t.Run(topo.Name, func(t *testing.T) {
			t.Parallel()
			base, live := runMode(t, 42, topo, "unbatched", 120)
			if got := sumObjects(base.perNode); got != len(live) {
				t.Fatalf("unbatched: %d objects remain, want %d live", got, len(live))
			}
			for _, mode := range []string{"batched", "aggregate"} {
				out, _ := runMode(t, 42, topo, mode, 120)
				if fmt.Sprint(out.perNode) != fmt.Sprint(base.perNode) {
					t.Errorf("%s: survivors %v, unbatched %v", mode, out.perNode, base.perNode)
				}
			}
		})
	}
}

// TestAggregationCollectsDenseWeb: on a dense overlapping-cycle web where
// per-node expansion stalls (the unbatched baseline and plain batched mode
// both leave objects behind on this graph), hierarchical aggregation must
// still fully collect — the origin merges the partial fragments every
// branch returns and re-launches only the unresolved residue — and must
// never reclaim a live object doing so (checked inside runMode).
func TestAggregationCollectsDenseWeb(t *testing.T) {
	topo := workload.WebGraph(11, 5, 6, 8)
	out, live := runMode(t, 42, topo, "aggregate", 120)
	if got := sumObjects(out.perNode); got != len(live) {
		t.Errorf("aggregate: %d objects remain, want %d live", got, len(live))
	}
	if out.msgs == 0 {
		t.Error("no detection traffic recorded")
	}
}

func sumObjects(perNode []nodeSurvivors) int {
	n := 0
	for _, s := range perNode {
		n += s.Objects
	}
	return n
}

// TestSharedTrunkBatchingReducesMessages is the traffic claim behind the
// tentpole: K cycles exiting the first process via the same reference must
// cost fewer transport messages batched than unbatched, and the batched run
// must actually ship multi-section BatchCDMs.
func TestSharedTrunkBatchingReducesMessages(t *testing.T) {
	topo := workload.SharedTrunk(16, 4)
	base, _ := runMode(t, 7, topo, "unbatched", 40)
	if base.cycles == 0 {
		t.Fatal("unbatched run found no cycles")
	}
	for _, mode := range []string{"batched", "aggregate"} {
		out, _ := runMode(t, 7, topo, mode, 40)
		if out.batch == 0 {
			t.Fatalf("%s: no BatchCDMs sent on a shared-trunk workload", mode)
		}
		if out.sections <= out.batch {
			t.Fatalf("%s: batches carry no extra sections (%d sections / %d batches)",
				mode, out.sections, out.batch)
		}
		if out.msgs >= base.msgs {
			t.Fatalf("%s: %d CDM messages, unbatched needed only %d", mode, out.msgs, base.msgs)
		}
		t.Logf("%s: msgs %d vs unbatched %d (batches=%d sections=%d)",
			mode, out.msgs, base.msgs, out.batch, out.sections)
	}
}

// TestBatchedDetectionLossTolerance: BatchCDM loss must degrade batched
// detection into retries, never into unsafety or permanent leaks.
func TestBatchedDetectionLossTolerance(t *testing.T) {
	cfg := modeConfig("batched")
	c := New(54321, cfg)
	if _, err := c.Materialize(workload.SharedTrunk(6, 3), cfg); err != nil {
		t.Fatal(err)
	}
	c.Net.SetFaults(transport.Faults{LossRate: 0.3, Affects: []wire.Kind{
		wire.KindNewSetStubs, wire.KindCDM, wire.KindBatchCDM, wire.KindDeleteScion,
	}})
	for round := 0; round < 80; round++ {
		c.GCRound()
		if c.TotalObjects() == 0 {
			return
		}
	}
	t.Fatalf("shared trunk not reclaimed under 30%% loss: %d objects left", c.TotalObjects())
}
