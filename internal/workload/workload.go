// Package workload generates abstract distributed object topologies: named
// objects placed on nodes, reference edges between them and root
// designations. Topologies are pure descriptions with no dependency on the
// runtime; the cluster harness materializes them into live heaps and
// stub/scion tables.
//
// The presets reproduce the paper's figures (simple distributed cycle,
// mutually-linked cycles, cycle with an external dependency) and provide the
// parameterized families the benchmarks sweep over (rings of arbitrary
// length, random graphs, acyclic chains, forests of local garbage).
package workload

import (
	"fmt"
	"math/rand"

	"dgc/internal/ids"
)

// ObjSpec places one named object on a node.
type ObjSpec struct {
	Name    string
	Node    ids.NodeID
	Rooted  bool
	Payload int // payload size in bytes (zero for none)
}

// EdgeSpec is a reference between two named objects (local or remote is
// implied by their placement).
type EdgeSpec struct {
	From, To string
}

// Topology is a complete description of a distributed object graph.
type Topology struct {
	Name    string
	Objects []ObjSpec
	Edges   []EdgeSpec
}

// Nodes returns the distinct node identifiers used, in canonical order.
func (t *Topology) Nodes() []ids.NodeID {
	seen := make(map[ids.NodeID]struct{})
	var out []ids.NodeID
	for _, o := range t.Objects {
		if _, ok := seen[o.Node]; !ok {
			seen[o.Node] = struct{}{}
			out = append(out, o.Node)
		}
	}
	ids.SortNodeIDs(out)
	return out
}

// Validate checks internal consistency: unique names, edges between known
// objects.
func (t *Topology) Validate() error {
	names := make(map[string]struct{}, len(t.Objects))
	for _, o := range t.Objects {
		if o.Name == "" {
			return fmt.Errorf("workload %s: unnamed object", t.Name)
		}
		if _, dup := names[o.Name]; dup {
			return fmt.Errorf("workload %s: duplicate object %q", t.Name, o.Name)
		}
		names[o.Name] = struct{}{}
	}
	for _, e := range t.Edges {
		if _, ok := names[e.From]; !ok {
			return fmt.Errorf("workload %s: edge from unknown %q", t.Name, e.From)
		}
		if _, ok := names[e.To]; !ok {
			return fmt.Errorf("workload %s: edge to unknown %q", t.Name, e.To)
		}
	}
	return nil
}

// CountRemoteEdges returns how many edges cross process boundaries.
func (t *Topology) CountRemoteEdges() int {
	place := make(map[string]ids.NodeID, len(t.Objects))
	for _, o := range t.Objects {
		place[o.Name] = o.Node
	}
	n := 0
	for _, e := range t.Edges {
		if place[e.From] != place[e.To] {
			n++
		}
	}
	return n
}

// nodeName returns the canonical simulation node name P1..Pn.
func nodeName(i int) ids.NodeID { return ids.NodeID(fmt.Sprintf("P%d", i+1)) }

// Ring builds a distributed garbage cycle spanning `procs` processes with
// `chain` objects per process: the generalization of the paper's Figure 3.
// The last object of each process holds a remote reference to the first
// object of the next; no object is rooted, so the whole ring is garbage
// detectable only by the DCDA.
func Ring(procs, chain int) *Topology {
	if procs < 2 {
		procs = 2
	}
	if chain < 1 {
		chain = 1
	}
	t := &Topology{Name: fmt.Sprintf("ring-%dx%d", procs, chain)}
	for p := 0; p < procs; p++ {
		for c := 0; c < chain; c++ {
			t.Objects = append(t.Objects, ObjSpec{
				Name: ringObj(p, c),
				Node: nodeName(p),
			})
			if c > 0 {
				t.Edges = append(t.Edges, EdgeSpec{From: ringObj(p, c-1), To: ringObj(p, c)})
			}
		}
		next := (p + 1) % procs
		t.Edges = append(t.Edges, EdgeSpec{From: ringObj(p, chain-1), To: ringObj(next, 0)})
	}
	return t
}

func ringObj(p, c int) string { return fmt.Sprintf("p%d.o%d", p, c) }

// RingHead returns the name of the ring entry object on the first process
// (the object whose scion is the natural detection candidate).
func RingHead() string { return ringObj(0, 0) }

// LiveRing is Ring with the head object rooted: a live distributed cycle
// that must never be collected.
func LiveRing(procs, chain int) *Topology {
	t := Ring(procs, chain)
	t.Name = fmt.Sprintf("live-%s", t.Name)
	t.Objects[0].Rooted = true
	return t
}

// Figure3 is the paper's Figure 3 verbatim: four processes, the garbage
// cycle {F,H,J}@P2 -> {Q,R,S}@P4 -> {O,M,K}@P3 -> {D,C,B}@P1 -> F@P2, plus
// the internal references F->G->H and the unrooted leftover A@P1.
func Figure3() *Topology {
	return &Topology{
		Name: "figure3",
		Objects: []ObjSpec{
			{Name: "A", Node: "P1"}, {Name: "B", Node: "P1"}, {Name: "C", Node: "P1"}, {Name: "D", Node: "P1"},
			{Name: "F", Node: "P2"}, {Name: "G", Node: "P2"}, {Name: "H", Node: "P2"}, {Name: "J", Node: "P2"},
			{Name: "O", Node: "P3"}, {Name: "M", Node: "P3"}, {Name: "K", Node: "P3"},
			{Name: "Q", Node: "P4"}, {Name: "R", Node: "P4"}, {Name: "S", Node: "P4"},
		},
		Edges: []EdgeSpec{
			{From: "A", To: "C"},
			{From: "D", To: "C"}, {From: "C", To: "B"},
			{From: "F", To: "H"}, {From: "F", To: "G"}, {From: "G", To: "H"}, {From: "H", To: "J"},
			{From: "O", To: "M"}, {From: "M", To: "K"},
			{From: "Q", To: "R"}, {From: "R", To: "S"},
			{From: "B", To: "F"}, // P1 -> P2
			{From: "J", To: "Q"}, // P2 -> P4
			{From: "S", To: "O"}, // P4 -> P3
			{From: "K", To: "D"}, // P3 -> P1
		},
	}
}

// Figure4 is the paper's Figure 4: two mutually-linked distributed cycles
// over six processes, converging on the T stub at P5.
func Figure4() *Topology {
	return &Topology{
		Name: "figure4",
		Objects: []ObjSpec{
			{Name: "F", Node: "P2"},
			{Name: "V", Node: "P5"}, {Name: "Y", Node: "P5"},
			{Name: "T", Node: "P4"},
			{Name: "D", Node: "P1"},
			{Name: "K", Node: "P3"},
			{Name: "ZB", Node: "P6"}, {Name: "ZD", Node: "P6"},
		},
		Edges: []EdgeSpec{
			{From: "F", To: "V"}, {From: "F", To: "K"},
			{From: "V", To: "T"}, {From: "Y", To: "T"},
			{From: "T", To: "D"}, {From: "D", To: "F"},
			{From: "K", To: "ZB"}, {From: "ZB", To: "ZD"}, {From: "ZD", To: "Y"},
		},
	}
}

// Figure1 is Figure 3 plus a fifth process holding a rooted reference into
// the cycle: the "extra dependency" of the paper's Figure 1 discussion.
func Figure1() *Topology {
	t := Figure3()
	t.Name = "figure1"
	t.Objects = append(t.Objects, ObjSpec{Name: "W", Node: "P5", Rooted: true})
	t.Edges = append(t.Edges, EdgeSpec{From: "W", To: "F"})
	return t
}

// AcyclicChain builds a garbage chain crossing `procs` processes (one object
// each): purely acyclic distributed garbage, reclaimable by reference
// listing alone.
func AcyclicChain(procs int) *Topology {
	if procs < 2 {
		procs = 2
	}
	t := &Topology{Name: fmt.Sprintf("acyclic-%d", procs)}
	for p := 0; p < procs; p++ {
		t.Objects = append(t.Objects, ObjSpec{Name: fmt.Sprintf("c%d", p), Node: nodeName(p)})
		if p > 0 {
			t.Edges = append(t.Edges, EdgeSpec{From: fmt.Sprintf("c%d", p-1), To: fmt.Sprintf("c%d", p)})
		}
	}
	return t
}

// SharedTrunk builds `k` distributed garbage cycles that all traverse the
// same trunk of processes: K fan-in objects a0..a(k-1) on the first process
// each reference a shared hub, the hub starts a chain crossing every other
// process, and a fan object on the last process closes all K cycles with
// remote back-references to the fan-in objects. Nothing is rooted.
//
// This is the batched-detection stress shape: every one of the K detections
// started at the first process exits through the SAME outgoing reference
// (hub -> trunk), so unbatched detection ships K CDMs per trunk hop while
// batched mode ships one BatchCDM with K sections.
func SharedTrunk(k, procs int) *Topology {
	if k < 1 {
		k = 1
	}
	if procs < 2 {
		procs = 2
	}
	t := &Topology{Name: fmt.Sprintf("shared-trunk-%dx%d", k, procs)}
	for i := 0; i < k; i++ {
		t.Objects = append(t.Objects, ObjSpec{Name: trunkEntry(i), Node: nodeName(0)})
		t.Edges = append(t.Edges, EdgeSpec{From: trunkEntry(i), To: "hub"})
	}
	t.Objects = append(t.Objects, ObjSpec{Name: "hub", Node: nodeName(0)})
	prev := "hub"
	for p := 1; p < procs; p++ {
		name := fmt.Sprintf("t%d", p)
		t.Objects = append(t.Objects, ObjSpec{Name: name, Node: nodeName(p)})
		t.Edges = append(t.Edges, EdgeSpec{From: prev, To: name})
		prev = name
	}
	t.Objects = append(t.Objects, ObjSpec{Name: "fan", Node: nodeName(procs - 1)})
	t.Edges = append(t.Edges, EdgeSpec{From: prev, To: "fan"})
	for i := 0; i < k; i++ {
		t.Edges = append(t.Edges, EdgeSpec{From: "fan", To: trunkEntry(i)})
	}
	return t
}

func trunkEntry(i int) string { return fmt.Sprintf("a%d", i) }

// SharedTrunkEntries returns the names of the K fan-in objects of
// SharedTrunk(k, ...): the detection candidates.
func SharedTrunkEntries(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = trunkEntry(i)
	}
	return out
}

// WebGraph builds a seeded web of overlapping distributed garbage cycles:
// `cycles` rings of random length threaded across `procs` processes, plus
// `chords` extra references between randomly-chosen cycle objects. Nothing
// is rooted, so everything is garbage, but the chords make cycles share
// objects and edges — many detections traverse the same references, which
// is where batching and hierarchical aggregation pay off. All randomness
// comes from seed.
func WebGraph(seed int64, procs, cycles, chords int) *Topology {
	rng := rand.New(rand.NewSource(seed))
	if procs < 2 {
		procs = 2
	}
	if cycles < 1 {
		cycles = 1
	}
	t := &Topology{Name: fmt.Sprintf("web-%d-%dx%d+%d", seed, procs, cycles, chords)}
	var all []string
	for c := 0; c < cycles; c++ {
		length := 3 + rng.Intn(procs+2)
		names := make([]string, length)
		for i := range names {
			names[i] = fmt.Sprintf("w%d.%d", c, i)
			t.Objects = append(t.Objects, ObjSpec{
				Name: names[i],
				Node: nodeName(rng.Intn(procs)),
			})
		}
		for i := range names {
			t.Edges = append(t.Edges, EdgeSpec{From: names[i], To: names[(i+1)%length]})
		}
		all = append(all, names...)
	}
	for i := 0; i < chords && len(all) > 1; i++ {
		from := all[rng.Intn(len(all))]
		to := all[rng.Intn(len(all))]
		if from == to {
			continue
		}
		t.Edges = append(t.Edges, EdgeSpec{From: from, To: to})
	}
	return t
}

// RandomConfig parameterizes RandomGraph.
type RandomConfig struct {
	Procs       int     // number of processes
	ObjsPerProc int     // objects per process
	OutDegree   float64 // mean references per object
	RemoteFrac  float64 // fraction of references that cross processes
	RootFrac    float64 // fraction of objects that are roots
}

// RandomGraph builds a seeded random distributed graph: the safety /
// completeness property-test workload. All randomness comes from seed.
func RandomGraph(seed int64, cfg RandomConfig) *Topology {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.ObjsPerProc < 1 {
		cfg.ObjsPerProc = 1
	}
	t := &Topology{Name: fmt.Sprintf("random-%d", seed)}
	names := make([][]string, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		for o := 0; o < cfg.ObjsPerProc; o++ {
			name := fmt.Sprintf("r%d.%d", p, o)
			names[p] = append(names[p], name)
			t.Objects = append(t.Objects, ObjSpec{
				Name:   name,
				Node:   nodeName(p),
				Rooted: rng.Float64() < cfg.RootFrac,
			})
		}
	}
	edges := int(float64(cfg.Procs*cfg.ObjsPerProc) * cfg.OutDegree)
	for i := 0; i < edges; i++ {
		fp := rng.Intn(cfg.Procs)
		from := names[fp][rng.Intn(cfg.ObjsPerProc)]
		tp := fp
		if cfg.Procs > 1 && rng.Float64() < cfg.RemoteFrac {
			for tp == fp {
				tp = rng.Intn(cfg.Procs)
			}
		}
		to := names[tp][rng.Intn(cfg.ObjsPerProc)]
		if from == to {
			continue // self references add nothing here
		}
		t.Edges = append(t.Edges, EdgeSpec{From: from, To: to})
	}
	return t
}
