package workload

import (
	"testing"
	"testing/quick"
)

func TestRingShape(t *testing.T) {
	topo := Ring(4, 3)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Objects); got != 12 {
		t.Fatalf("objects = %d", got)
	}
	// 2 internal edges per process + 1 crossing edge per process.
	if got := len(topo.Edges); got != 12 {
		t.Fatalf("edges = %d", got)
	}
	if got := topo.CountRemoteEdges(); got != 4 {
		t.Fatalf("remote edges = %d", got)
	}
	if got := len(topo.Nodes()); got != 4 {
		t.Fatalf("nodes = %d", got)
	}
	for _, o := range topo.Objects {
		if o.Rooted {
			t.Fatal("ring must be garbage (no roots)")
		}
	}
}

func TestRingClampsDegenerateParams(t *testing.T) {
	topo := Ring(0, 0)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes()) != 2 {
		t.Fatalf("nodes = %d, want clamp to 2", len(topo.Nodes()))
	}
}

func TestLiveRingRootsHead(t *testing.T) {
	topo := LiveRing(3, 2)
	rooted := 0
	for _, o := range topo.Objects {
		if o.Rooted {
			rooted++
			if o.Name != RingHead() {
				t.Fatalf("rooted object %q, want %q", o.Name, RingHead())
			}
		}
	}
	if rooted != 1 {
		t.Fatalf("rooted = %d", rooted)
	}
}

func TestFigurePresetsValidate(t *testing.T) {
	for _, topo := range []*Topology{Figure1(), Figure3(), Figure4()} {
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", topo.Name, err)
		}
	}
	if got := Figure3().CountRemoteEdges(); got != 4 {
		t.Errorf("figure3 remote edges = %d", got)
	}
	// 8 remote edges; V->T and Y->T share one stub, so 7 distinct refs.
	if got := Figure4().CountRemoteEdges(); got != 8 {
		t.Errorf("figure4 remote edges = %d", got)
	}
	if got := Figure1().CountRemoteEdges(); got != 5 {
		t.Errorf("figure1 remote edges = %d", got)
	}
}

func TestAcyclicChainShape(t *testing.T) {
	topo := AcyclicChain(5)
	if len(topo.Objects) != 5 || len(topo.Edges) != 4 {
		t.Fatalf("objects=%d edges=%d", len(topo.Objects), len(topo.Edges))
	}
	if topo.CountRemoteEdges() != 4 {
		t.Fatalf("remote edges = %d", topo.CountRemoteEdges())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []*Topology{
		{Objects: []ObjSpec{{Name: "", Node: "P1"}}},
		{Objects: []ObjSpec{{Name: "a", Node: "P1"}, {Name: "a", Node: "P2"}}},
		{Objects: []ObjSpec{{Name: "a", Node: "P1"}}, Edges: []EdgeSpec{{From: "zz", To: "a"}}},
		{Objects: []ObjSpec{{Name: "a", Node: "P1"}}, Edges: []EdgeSpec{{From: "a", To: "zz"}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid topology accepted", i)
		}
	}
}

func TestRandomGraphDeterministicPerSeed(t *testing.T) {
	cfg := RandomConfig{Procs: 4, ObjsPerProc: 5, OutDegree: 2, RemoteFrac: 0.5, RootFrac: 0.2}
	a := RandomGraph(7, cfg)
	b := RandomGraph(7, cfg)
	if len(a.Objects) != len(b.Objects) || len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	c := RandomGraph(8, cfg)
	same := len(a.Edges) == len(c.Edges)
	if same {
		identical := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestRandomGraphAlwaysValid(t *testing.T) {
	f := func(seed int64, procs, objs uint8) bool {
		cfg := RandomConfig{
			Procs:       int(procs%6) + 1,
			ObjsPerProc: int(objs%8) + 1,
			OutDegree:   1.5,
			RemoteFrac:  0.5,
			RootFrac:    0.2,
		}
		return RandomGraph(seed, cfg).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomGraphClampsDegenerate(t *testing.T) {
	topo := RandomGraph(1, RandomConfig{})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Objects) != 1 {
		t.Fatalf("objects = %d", len(topo.Objects))
	}
}
