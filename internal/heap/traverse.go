package heap

import (
	"dgc/internal/ids"
)

// nextMarkGen advances the epoch of the shared marking scratch and returns
// it. Allocates the scratch map lazily; an epoch is never zero, so stale
// entries from earlier traversals can never satisfy a Contains check.
func (h *Heap) nextMarkGen() uint64 {
	if h.marked == nil {
		h.marked = make(map[ids.ObjID]uint64, len(h.objects))
	}
	h.markGen++
	return h.markGen
}

// traverse breadth-first marks every object reachable from seeds in the
// shared epoch scratch, returning the epoch and the visited objects in BFS
// order. The returned slice aliases the reusable queue buffer: it is valid
// only until the next traversal. The queue is drained with an index cursor
// (the former queue = queue[1:] head-slicing retained the backing array
// while still growing a fresh one per call).
func (h *Heap) traverse(seeds []ids.ObjID) (gen uint64, visited []ids.ObjID) {
	gen = h.nextMarkGen()
	queue := h.queueBuf[:0]
	for _, s := range seeds {
		if h.Contains(s) && h.marked[s] != gen {
			h.marked[s] = gen
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		o := h.objects[queue[head]]
		for _, next := range o.Locals {
			if !h.Contains(next) {
				continue // dangling local ref to an already-swept object
			}
			if h.marked[next] != gen {
				h.marked[next] = gen
				queue = append(queue, next)
			}
		}
	}
	h.queueBuf = queue
	return gen, queue
}

// Mark is an epoch-stamped reachability marking over a heap, produced by
// MarkReachable. A Mark is a view into shared scratch: it stays valid only
// until the heap's next marking traversal (MarkReachable, ReachableFrom or
// ReachableFromRoots), which recycles the epoch structure. Collectors that
// need one set at a time (the LGC mark phase) use Marks to avoid allocating
// a fresh map per collection; callers that retain sets use ReachableFrom.
type Mark struct {
	h     *Heap
	gen   uint64
	count int
}

// Contains reports whether the object was reachable when the mark was taken.
// Must not be called after a newer marking traversal on the same heap.
func (m Mark) Contains(id ids.ObjID) bool {
	if m.h.markGen != m.gen {
		panic("heap: Mark used after a newer traversal invalidated it")
	}
	return m.h.marked[id] == m.gen
}

// Len returns the number of marked objects.
func (m Mark) Len() int { return m.count }

// MarkReachable computes the set of objects transitively reachable from the
// given seeds following intra-process references only, as an epoch Mark over
// reusable scratch (no per-call allocation once the scratch is warm). Seeds
// that do not exist are ignored.
func (h *Heap) MarkReachable(seeds ...ids.ObjID) Mark {
	gen, visited := h.traverse(seeds)
	return Mark{h: h, gen: gen, count: len(visited)}
}

// ReachableFrom computes the set of objects transitively reachable from the
// given seed objects following intra-process references only (inter-process
// references are the boundary of the local trace; the distributed layers
// handle them through stubs and scions). Seeds that do not exist are ignored.
//
// The traversal is breadth-first, matching the paper's summarizer ("it
// transverses the graph, breadth-first, in order to minimize overhead"). The
// returned map is owned by the caller; internal traversal state is reused
// across calls.
func (h *Heap) ReachableFrom(seeds ...ids.ObjID) map[ids.ObjID]struct{} {
	_, order := h.traverse(seeds)
	visited := make(map[ids.ObjID]struct{}, len(order))
	for _, id := range order {
		visited[id] = struct{}{}
	}
	return visited
}

// ReachableFromRoots computes the locally reachable set: objects transitively
// reachable from the process-local root set.
func (h *Heap) ReachableFromRoots() map[ids.ObjID]struct{} {
	return h.ReachableFrom(h.Roots()...)
}

// RemoteRefsFrom returns the distinct inter-process references held by
// objects in the given set, in canonical order. This is the stub-set
// computation: the stubs a process needs are exactly the remote references
// held by its live objects.
func (h *Heap) RemoteRefsFrom(set map[ids.ObjID]struct{}) []ids.GlobalRef {
	seen := make(map[ids.GlobalRef]struct{})
	for id := range set {
		o := h.objects[id]
		if o == nil {
			continue
		}
		for _, r := range o.Remotes {
			seen[r] = struct{}{}
		}
	}
	out := make([]ids.GlobalRef, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	ids.SortGlobalRefs(out)
	return out
}

// RemoteRefsFromMark is RemoteRefsFrom over an epoch Mark instead of a
// caller-owned set.
func (h *Heap) RemoteRefsFromMark(m Mark) []ids.GlobalRef {
	seen := make(map[ids.GlobalRef]struct{})
	for id, o := range h.objects {
		if !m.Contains(id) {
			continue
		}
		for _, r := range o.Remotes {
			seen[r] = struct{}{}
		}
	}
	out := make([]ids.GlobalRef, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	ids.SortGlobalRefs(out)
	return out
}

// HoldersOf returns the set of objects that directly hold a remote reference
// to target. This is a full-heap scan; the summarizer uses Index's reverse
// holder table instead, built once per summarization.
func (h *Heap) HoldersOf(target ids.GlobalRef) map[ids.ObjID]struct{} {
	holders := make(map[ids.ObjID]struct{})
	for id, o := range h.objects {
		for _, r := range o.Remotes {
			if r == target {
				holders[id] = struct{}{}
				break
			}
		}
	}
	return holders
}

// EdgeCount returns the total number of intra-process plus inter-process
// references in the heap. Used by workload generators and stats.
func (h *Heap) EdgeCount() (local, remote int) {
	for _, o := range h.objects {
		local += len(o.Locals)
		remote += len(o.Remotes)
	}
	return local, remote
}
