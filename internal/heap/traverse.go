package heap

import (
	"dgc/internal/ids"
)

// ReachableFrom computes the set of objects transitively reachable from the
// given seed objects following intra-process references only (inter-process
// references are the boundary of the local trace; the distributed layers
// handle them through stubs and scions). Seeds that do not exist are ignored.
//
// The traversal is breadth-first, matching the paper's summarizer ("it
// transverses the graph, breadth-first, in order to minimize overhead").
func (h *Heap) ReachableFrom(seeds ...ids.ObjID) map[ids.ObjID]struct{} {
	visited := make(map[ids.ObjID]struct{})
	queue := make([]ids.ObjID, 0, len(seeds))
	for _, s := range seeds {
		if h.Contains(s) {
			if _, ok := visited[s]; !ok {
				visited[s] = struct{}{}
				queue = append(queue, s)
			}
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		o := h.objects[id]
		for _, next := range o.Locals {
			if !h.Contains(next) {
				continue // dangling local ref to an already-swept object
			}
			if _, ok := visited[next]; !ok {
				visited[next] = struct{}{}
				queue = append(queue, next)
			}
		}
	}
	return visited
}

// ReachableFromRoots computes the locally reachable set: objects transitively
// reachable from the process-local root set.
func (h *Heap) ReachableFromRoots() map[ids.ObjID]struct{} {
	return h.ReachableFrom(h.Roots()...)
}

// RemoteRefsFrom returns the distinct inter-process references held by
// objects in the given set, in canonical order. This is the stub-set
// computation: the stubs a process needs are exactly the remote references
// held by its live objects.
func (h *Heap) RemoteRefsFrom(set map[ids.ObjID]struct{}) []ids.GlobalRef {
	seen := make(map[ids.GlobalRef]struct{})
	for id := range set {
		o := h.objects[id]
		if o == nil {
			continue
		}
		for _, r := range o.Remotes {
			seen[r] = struct{}{}
		}
	}
	out := make([]ids.GlobalRef, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	ids.SortGlobalRefs(out)
	return out
}

// HoldersOf returns the set of objects that directly hold a remote reference
// to target.
func (h *Heap) HoldersOf(target ids.GlobalRef) map[ids.ObjID]struct{} {
	holders := make(map[ids.ObjID]struct{})
	for id, o := range h.objects {
		for _, r := range o.Remotes {
			if r == target {
				holders[id] = struct{}{}
				break
			}
		}
	}
	return holders
}

// EdgeCount returns the total number of intra-process plus inter-process
// references in the heap. Used by workload generators and stats.
func (h *Heap) EdgeCount() (local, remote int) {
	for _, o := range h.objects {
		local += len(o.Locals)
		remote += len(o.Remotes)
	}
	return local, remote
}
