package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgc/internal/ids"
)

func TestAllocAssignsDenseIDs(t *testing.T) {
	h := New("P1")
	a := h.Alloc(nil)
	b := h.Alloc(nil)
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids = %d, %d, want 1, 2", a.ID, b.ID)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
}

func TestGetAndContains(t *testing.T) {
	h := New("P1")
	a := h.Alloc([]byte("x"))
	if got := h.Get(a.ID); got != a {
		t.Errorf("Get returned %v, want %v", got, a)
	}
	if h.Get(99) != nil {
		t.Error("Get(99) should be nil")
	}
	if !h.Contains(a.ID) || h.Contains(99) {
		t.Error("Contains mismatch")
	}
}

func TestDeleteRemovesObjectAndRoot(t *testing.T) {
	h := New("P1")
	a := h.Alloc(nil)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	h.Delete(a.ID)
	if h.Contains(a.ID) {
		t.Error("object still present after Delete")
	}
	if h.IsRoot(a.ID) {
		t.Error("root entry still present after Delete")
	}
	h.Delete(a.ID) // must be a no-op
}

func TestAddRootErrors(t *testing.T) {
	h := New("P1")
	if err := h.AddRoot(7); err == nil {
		t.Error("AddRoot on missing object should fail")
	}
}

func TestRootsSorted(t *testing.T) {
	h := New("P1")
	var allocated []ids.ObjID
	for i := 0; i < 5; i++ {
		allocated = append(allocated, h.Alloc(nil).ID)
	}
	// add in reverse
	for i := len(allocated) - 1; i >= 0; i-- {
		if err := h.AddRoot(allocated[i]); err != nil {
			t.Fatal(err)
		}
	}
	roots := h.Roots()
	for i := 1; i < len(roots); i++ {
		if roots[i-1] >= roots[i] {
			t.Fatalf("roots not sorted: %v", roots)
		}
	}
	h.RemoveRoot(allocated[0])
	if h.IsRoot(allocated[0]) {
		t.Error("RemoveRoot did not remove")
	}
}

func TestLocalRefLifecycle(t *testing.T) {
	h := New("P1")
	a, b := h.Alloc(nil), h.Alloc(nil)
	if err := h.AddLocalRef(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if len(a.Locals) != 1 || a.Locals[0] != b.ID {
		t.Fatalf("Locals = %v", a.Locals)
	}
	if err := h.RemoveLocalRef(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if len(a.Locals) != 0 {
		t.Fatalf("Locals = %v after remove", a.Locals)
	}
	if err := h.RemoveLocalRef(a.ID, b.ID); err == nil {
		t.Error("removing a missing reference should fail")
	}
	if err := h.AddLocalRef(a.ID, 99); err == nil {
		t.Error("AddLocalRef to missing target should fail")
	}
	if err := h.AddLocalRef(99, a.ID); err == nil {
		t.Error("AddLocalRef from missing source should fail")
	}
}

func TestRemoteRefLifecycle(t *testing.T) {
	h := New("P1")
	a := h.Alloc(nil)
	target := ids.GlobalRef{Node: "P2", Obj: 6}
	if err := h.AddRemoteRef(a.ID, target); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRemoteRef(a.ID, ids.GlobalRef{Node: "P1", Obj: 1}); err == nil {
		t.Error("AddRemoteRef to own node should fail")
	}
	if err := h.RemoveRemoteRef(a.ID, target); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveRemoteRef(a.ID, target); err == nil {
		t.Error("removing missing remote ref should fail")
	}
	if err := h.RemoveRemoteRef(99, target); err == nil {
		t.Error("removing from missing object should fail")
	}
}

func TestReachableFromChain(t *testing.T) {
	h := New("P1")
	objs := make([]*Object, 5)
	for i := range objs {
		objs[i] = h.Alloc(nil)
	}
	for i := 0; i < 4; i++ {
		if err := h.AddLocalRef(objs[i].ID, objs[i+1].ID); err != nil {
			t.Fatal(err)
		}
	}
	got := h.ReachableFrom(objs[2].ID)
	if len(got) != 3 {
		t.Fatalf("reachable set size = %d, want 3 (%v)", len(got), got)
	}
	for _, o := range objs[2:] {
		if _, ok := got[o.ID]; !ok {
			t.Errorf("object %d missing from reachable set", o.ID)
		}
	}
}

func TestReachableFromCycleTerminates(t *testing.T) {
	h := New("P1")
	a, b, c := h.Alloc(nil), h.Alloc(nil), h.Alloc(nil)
	mustRef(t, h, a.ID, b.ID)
	mustRef(t, h, b.ID, c.ID)
	mustRef(t, h, c.ID, a.ID)
	got := h.ReachableFrom(a.ID)
	if len(got) != 3 {
		t.Fatalf("cycle reachable set size = %d, want 3", len(got))
	}
}

func TestReachableFromIgnoresDanglingAndMissingSeeds(t *testing.T) {
	h := New("P1")
	a, b := h.Alloc(nil), h.Alloc(nil)
	mustRef(t, h, a.ID, b.ID)
	h.Delete(b.ID) // leaves dangling local ref in a
	got := h.ReachableFrom(a.ID, 77)
	if len(got) != 1 {
		t.Fatalf("reachable = %v, want only {a}", got)
	}
}

func TestReachableFromRoots(t *testing.T) {
	h := New("P1")
	a, b, c := h.Alloc(nil), h.Alloc(nil), h.Alloc(nil)
	mustRef(t, h, a.ID, b.ID)
	_ = c
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	got := h.ReachableFromRoots()
	if len(got) != 2 {
		t.Fatalf("locally reachable = %v, want {a,b}", got)
	}
	if _, ok := got[c.ID]; ok {
		t.Error("c should be unreachable")
	}
}

func TestRemoteRefsFromDeduplicatesAndSorts(t *testing.T) {
	h := New("P1")
	a, b := h.Alloc(nil), h.Alloc(nil)
	t1 := ids.GlobalRef{Node: "P3", Obj: 1}
	t2 := ids.GlobalRef{Node: "P2", Obj: 5}
	mustRemote(t, h, a.ID, t1)
	mustRemote(t, h, b.ID, t1)
	mustRemote(t, h, b.ID, t2)
	set := map[ids.ObjID]struct{}{a.ID: {}, b.ID: {}}
	got := h.RemoteRefsFrom(set)
	if len(got) != 2 || got[0] != t2 || got[1] != t1 {
		t.Fatalf("RemoteRefsFrom = %v, want [%v %v]", got, t2, t1)
	}
}

func TestHoldersOf(t *testing.T) {
	h := New("P1")
	a, b, c := h.Alloc(nil), h.Alloc(nil), h.Alloc(nil)
	target := ids.GlobalRef{Node: "P2", Obj: 1}
	mustRemote(t, h, a.ID, target)
	mustRemote(t, h, c.ID, target)
	holders := h.HoldersOf(target)
	if len(holders) != 2 {
		t.Fatalf("holders = %v", holders)
	}
	if _, ok := holders[b.ID]; ok {
		t.Error("b should not hold the reference")
	}
}

func TestEdgeCount(t *testing.T) {
	h := New("P1")
	a, b := h.Alloc(nil), h.Alloc(nil)
	mustRef(t, h, a.ID, b.ID)
	mustRemote(t, h, b.ID, ids.GlobalRef{Node: "P2", Obj: 1})
	l, r := h.EdgeCount()
	if l != 1 || r != 1 {
		t.Fatalf("EdgeCount = %d, %d, want 1, 1", l, r)
	}
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	h := New("P1")
	a, b := h.Alloc([]byte("payload")), h.Alloc(nil)
	mustRef(t, h, a.ID, b.ID)
	mustRemote(t, h, a.ID, ids.GlobalRef{Node: "P2", Obj: 3})
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}

	c := h.Clone()
	if c.Len() != h.Len() || !c.IsRoot(a.ID) {
		t.Fatal("clone differs from original")
	}
	// Mutate original; clone must not change.
	if err := h.RemoveLocalRef(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	h.Get(a.ID).Payload[0] = 'X'
	h.Delete(b.ID)
	h.RemoveRoot(a.ID)

	ca := c.Get(a.ID)
	if len(ca.Locals) != 1 || ca.Locals[0] != b.ID {
		t.Error("clone lost local ref after original mutation")
	}
	if string(ca.Payload) != "payload" {
		t.Errorf("clone payload mutated: %q", ca.Payload)
	}
	if !c.Contains(b.ID) || !c.IsRoot(a.ID) {
		t.Error("clone lost object or root after original mutation")
	}
	// Clone allocates independently of original.
	n := c.Alloc(nil)
	if h.Contains(n.ID) {
		t.Error("allocation in clone leaked into original")
	}
}

func TestForEachVisitsAllInOrder(t *testing.T) {
	h := New("P1")
	for i := 0; i < 10; i++ {
		h.Alloc(nil)
	}
	var prev ids.ObjID
	count := 0
	h.ForEach(func(o *Object) {
		if o.ID <= prev {
			t.Fatalf("ForEach out of order: %d after %d", o.ID, prev)
		}
		prev = o.ID
		count++
	})
	if count != 10 {
		t.Fatalf("visited %d objects, want 10", count)
	}
}

// Property: reachability is monotone in the seed set, and the reachable set
// is closed under following live local references.
func TestReachabilityClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New("P1")
		n := 2 + rng.Intn(30)
		objs := make([]ids.ObjID, n)
		for i := range objs {
			objs[i] = h.Alloc(nil).ID
		}
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			from := objs[rng.Intn(n)]
			to := objs[rng.Intn(n)]
			if err := h.AddLocalRef(from, to); err != nil {
				return false
			}
		}
		start := objs[rng.Intn(n)]
		set := h.ReachableFrom(start)
		// Closure: every local ref out of the set lands in the set.
		for id := range set {
			for _, next := range h.Get(id).Locals {
				if _, ok := set[next]; !ok {
					return false
				}
			}
		}
		// Monotone: adding a seed can only grow the set.
		extra := objs[rng.Intn(n)]
		bigger := h.ReachableFrom(start, extra)
		if len(bigger) < len(set) {
			return false
		}
		for id := range set {
			if _, ok := bigger[id]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustRef(t *testing.T, h *Heap, from, to ids.ObjID) {
	t.Helper()
	if err := h.AddLocalRef(from, to); err != nil {
		t.Fatal(err)
	}
}

func mustRemote(t *testing.T, h *Heap, from ids.ObjID, target ids.GlobalRef) {
	t.Helper()
	if err := h.AddRemoteRef(from, target); err != nil {
		t.Fatal(err)
	}
}
