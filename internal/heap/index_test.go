package heap

import (
	"testing"

	"dgc/internal/ids"
)

func TestGenAdvancesOnEveryStructuralChange(t *testing.T) {
	h := New("P1")
	last := h.Gen()
	step := func(what string, fn func()) {
		t.Helper()
		fn()
		if h.Gen() <= last {
			t.Fatalf("%s did not advance gen (still %d)", what, h.Gen())
		}
		last = h.Gen()
	}
	var a, b *Object
	step("Alloc", func() { a = h.Alloc(nil) })
	step("Alloc b", func() { b = h.Alloc(nil) })
	step("AddRoot", func() {
		if err := h.AddRoot(a.ID); err != nil {
			t.Fatal(err)
		}
	})
	step("AddLocalRef", func() {
		if err := h.AddLocalRef(a.ID, b.ID); err != nil {
			t.Fatal(err)
		}
	})
	step("AddRemoteRef", func() {
		if err := h.AddRemoteRef(a.ID, ids.GlobalRef{Node: "P2", Obj: 1}); err != nil {
			t.Fatal(err)
		}
	})
	step("SetPayload", func() {
		if err := h.SetPayload(b.ID, []byte{1}); err != nil {
			t.Fatal(err)
		}
	})
	step("RemoveRemoteRef", func() {
		if err := h.RemoveRemoteRef(a.ID, ids.GlobalRef{Node: "P2", Obj: 1}); err != nil {
			t.Fatal(err)
		}
	})
	step("RemoveLocalRef", func() {
		if err := h.RemoveLocalRef(a.ID, b.ID); err != nil {
			t.Fatal(err)
		}
	})
	step("RemoveRoot", func() { h.RemoveRoot(a.ID) })
	step("Delete", func() { h.Delete(b.ID) })

	// No-op operations must NOT advance the epoch: a cache keyed on Gen
	// would otherwise be invalidated for free.
	for name, fn := range map[string]func(){
		"Delete missing":     func() { h.Delete(999) },
		"RemoveRoot missing": func() { h.RemoveRoot(999) },
	} {
		fn()
		if h.Gen() != last {
			t.Fatalf("%s advanced gen", name)
		}
	}
}

func TestMarkReachableAndInvalidation(t *testing.T) {
	h := New("P1")
	a, b, c := h.Alloc(nil), h.Alloc(nil), h.Alloc(nil)
	if err := h.AddLocalRef(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	m := h.MarkReachable(a.ID)
	if !m.Contains(a.ID) || !m.Contains(b.ID) || m.Contains(c.ID) {
		t.Fatalf("mark contents wrong")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	// A newer traversal invalidates the old mark.
	m2 := h.MarkReachable(c.ID)
	if !m2.Contains(c.ID) || m2.Contains(a.ID) {
		t.Fatalf("second mark contents wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stale Mark did not panic")
		}
	}()
	m.Contains(a.ID)
}

func TestReachableFromResultSurvivesLaterTraversals(t *testing.T) {
	h := New("P1")
	a, b := h.Alloc(nil), h.Alloc(nil)
	if err := h.AddLocalRef(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	set := h.ReachableFrom(a.ID)
	_ = h.ReachableFrom(b.ID) // recycles scratch; set must be unaffected
	if len(set) != 2 {
		t.Fatalf("set size %d after later traversal, want 2", len(set))
	}
}

func buildIndexedHeap(t *testing.T) (*Heap, [4]ids.ObjID) {
	t.Helper()
	h := New("P1")
	var o [4]ids.ObjID
	for i := range o {
		o[i] = h.Alloc(nil).ID
	}
	// 0 <-> 1 form an SCC; 1 -> 2; 3 isolated. 0 and 2 hold remote refs.
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}} {
		if err := h.AddLocalRef(o[e[0]], o[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddRemoteRef(o[0], ids.GlobalRef{Node: "P2", Obj: 9}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRemoteRef(o[2], ids.GlobalRef{Node: "P2", Obj: 9}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRemoteRef(o[2], ids.GlobalRef{Node: "P3", Obj: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(o[3]); err != nil {
		t.Fatal(err)
	}
	return h, o
}

func TestIndexHoldersMatchHoldersOf(t *testing.T) {
	h, _ := buildIndexedHeap(t)
	ix := h.BuildIndex()
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for _, tgt := range ix.Targets() {
		want := h.HoldersOf(tgt)
		got := ix.HoldersOfTarget(tgt)
		if len(got) != len(want) {
			t.Fatalf("target %v: %d holders via index, %d via scan", tgt, len(got), len(want))
		}
		for _, hp := range got {
			if _, ok := want[ix.ids[hp]]; !ok {
				t.Fatalf("target %v: index holder %d not in scan set", tgt, ix.ids[hp])
			}
		}
	}
	if ix.HoldersOfTarget(ids.GlobalRef{Node: "P9", Obj: 1}) != nil {
		t.Fatal("holders for unheld target")
	}
}

func TestIndexSCCAndCondensationOrder(t *testing.T) {
	h, o := buildIndexedHeap(t)
	ix := h.BuildIndex()
	comp, ncomp := ix.SCC()
	if ncomp != 3 {
		t.Fatalf("ncomp = %d, want 3 ({0,1}, {2}, {3})", ncomp)
	}
	p0, _ := ix.Pos(o[0])
	p1, _ := ix.Pos(o[1])
	p2, _ := ix.Pos(o[2])
	if comp[p0] != comp[p1] {
		t.Fatal("cycle members in different components")
	}
	if comp[p2] == comp[p0] {
		t.Fatal("chain target merged into the cycle component")
	}
	// Completion order: every condensation edge u->v has comp[u] > comp[v].
	for v := range ix.adj {
		for _, w := range ix.adj[v] {
			if comp[v] != comp[w] && comp[v] <= comp[w] {
				t.Fatalf("edge %d->%d violates reverse-topological component ids", v, w)
			}
		}
	}
	compAdj := ix.Condense(comp, ncomp)
	for c, succs := range compAdj {
		for _, d := range succs {
			if int32(c) == d {
				t.Fatalf("self edge in condensation at %d", c)
			}
		}
	}
}

func TestIndexRootFlags(t *testing.T) {
	h, o := buildIndexedHeap(t)
	ix := h.BuildIndex()
	reach := ix.RootFlags()
	want := h.ReachableFromRoots()
	for i, id := range ix.ids {
		if _, ok := want[id]; ok != reach[i] {
			t.Fatalf("RootFlags[%d] (obj %d) = %v, scan says %v", i, id, reach[i], ok)
		}
	}
	_ = o
}
