package heap

import (
	"dgc/internal/ids"
)

// Index is a dense, array-backed view of one heap, built in a single pass:
// objects are numbered by ascending ObjID, local references become int32
// adjacency lists, and the distinct remote targets get both a forward table
// (remote refs per object) and a reverse holder table (objects per target).
//
// The summarizer builds one Index per summarization and runs every
// traversal against it, replacing the per-scion BFS over maps and the
// per-stub full-heap HoldersOf scans. An Index is a snapshot of the heap's
// structure: it is not updated by later mutations.
type Index struct {
	h   *Heap
	ids []ids.ObjID         // ascending; slice position is the dense index
	pos map[ids.ObjID]int32 // reverse of ids

	adj [][]int32 // local out-edges by dense index; dangling refs dropped

	targets []ids.GlobalRef         // distinct remote targets, canonical order
	tpos    map[ids.GlobalRef]int32 // reverse of targets
	holders [][]int32               // target index -> holder object indices, ascending
}

// BuildIndex constructs the dense view of the heap's current structure in
// O(V + E).
func (h *Heap) BuildIndex() *Index {
	n := len(h.objects)
	ix := &Index{
		h:   h,
		ids: h.IDs(),
		pos: make(map[ids.ObjID]int32, n),
	}
	for i, id := range ix.ids {
		ix.pos[id] = int32(i)
	}

	// Remote target numbering, canonical order so downstream lists come out
	// sorted without a per-list sort.
	seen := make(map[ids.GlobalRef]struct{})
	for _, id := range ix.ids {
		for _, r := range h.objects[id].Remotes {
			seen[r] = struct{}{}
		}
	}
	ix.targets = make([]ids.GlobalRef, 0, len(seen))
	for r := range seen {
		ix.targets = append(ix.targets, r)
	}
	ids.SortGlobalRefs(ix.targets)
	ix.tpos = make(map[ids.GlobalRef]int32, len(ix.targets))
	for i, r := range ix.targets {
		ix.tpos[r] = int32(i)
	}

	ix.adj = make([][]int32, n)
	ix.holders = make([][]int32, len(ix.targets))
	for i, id := range ix.ids {
		o := h.objects[id]
		if len(o.Locals) > 0 {
			edges := make([]int32, 0, len(o.Locals))
			for _, l := range o.Locals {
				if p, ok := ix.pos[l]; ok { // dangling refs fold away
					edges = append(edges, p)
				}
			}
			ix.adj[i] = edges
		}
		// Reverse holder table, deduplicated per object (an object holding
		// the same remote ref twice is one holder).
		for ri, r := range o.Remotes {
			t := ix.tpos[r]
			dup := false
			for _, prev := range o.Remotes[:ri] {
				if prev == r {
					dup = true
					break
				}
			}
			if !dup {
				ix.holders[t] = append(ix.holders[t], int32(i))
			}
		}
	}
	return ix
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.ids) }

// Pos returns the dense index of an object id.
func (ix *Index) Pos(id ids.ObjID) (int32, bool) {
	p, ok := ix.pos[id]
	return p, ok
}

// Targets returns the distinct remote targets held anywhere in the heap, in
// canonical order.
func (ix *Index) Targets() []ids.GlobalRef { return ix.targets }

// Holders returns the dense indices of the objects directly holding the
// remote target with index t, in ascending order. This is the reverse
// holder index: one map lookup plus a slice, replacing a full-heap scan.
func (ix *Index) Holders(t int32) []int32 { return ix.holders[t] }

// HoldersOfTarget returns the holder indices for a remote target value (nil
// when the target is held nowhere).
func (ix *Index) HoldersOfTarget(target ids.GlobalRef) []int32 {
	t, ok := ix.tpos[target]
	if !ok {
		return nil
	}
	return ix.holders[t]
}

// RootFlags computes, per dense index, whether the object is reachable from
// the process-local root set: the Local.Reach input of the summarizer.
func (ix *Index) RootFlags() []bool {
	reach := make([]bool, len(ix.ids))
	queue := make([]int32, 0, len(ix.ids))
	for id := range ix.h.roots {
		if p, ok := ix.pos[id]; ok && !reach[p] {
			reach[p] = true
			queue = append(queue, p)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, e := range ix.adj[queue[head]] {
			if !reach[e] {
				reach[e] = true
				queue = append(queue, e)
			}
		}
	}
	return reach
}

// SCC computes the strongly connected components of the local reference
// graph with an iterative Tarjan traversal. It returns the component id per
// dense index and the component count. Component ids are assigned in
// completion order, so every condensation edge u -> v satisfies
// comp[u] > comp[v]: ascending component id is a reverse-topological order
// of the condensation.
func (ix *Index) SCC() (comp []int32, ncomp int32) {
	n := len(ix.adj)
	comp = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onstack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	stack := make([]int32, 0, n)
	type frame struct {
		v  int32
		ei int
	}
	var call []frame
	var next int32

	push := func(v int32) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onstack[v] = true
		call = append(call, frame{v: v})
	}

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		push(int32(root))
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(ix.adj[f.v]) {
				w := ix.adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					push(w)
				} else if onstack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// f.v fully explored.
			if low[f.v] == index[f.v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					comp[w] = ncomp
					if w == f.v {
						break
					}
				}
				ncomp++
			}
			lowV := low[f.v]
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := &call[len(call)-1]
				if lowV < low[parent.v] {
					low[parent.v] = lowV
				}
			}
		}
	}
	return comp, ncomp
}

// Condense returns the condensation adjacency: for each component, the
// distinct successor components (self-edges removed). The dedup is
// best-effort via a last-seen stamp; occasional duplicate entries are
// harmless to bitset propagation and bounded by the edge count.
func (ix *Index) Condense(comp []int32, ncomp int32) [][]int32 {
	compAdj := make([][]int32, ncomp)
	lastSeen := make([]int32, ncomp)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for v := range ix.adj {
		cv := comp[v]
		for _, w := range ix.adj[v] {
			cw := comp[w]
			if cw == cv || lastSeen[cw] == cv {
				continue
			}
			lastSeen[cw] = cv
			compAdj[cv] = append(compAdj[cv], cw)
		}
	}
	return compAdj
}
