// Package heap implements the per-process object heap the distributed
// garbage collector operates on.
//
// Each simulated process owns one Heap. Objects hold intra-process
// references (to other objects in the same heap), inter-process references
// (GlobalRefs to objects owned by other nodes) and an opaque payload used by
// the serialization experiments. The heap also tracks the process-local root
// set (the paper's "global variables and threads stack").
package heap

import (
	"fmt"
	"sort"

	"dgc/internal/ids"
)

// Object is a heap-allocated object within one process.
type Object struct {
	ID      ids.ObjID
	Locals  []ids.ObjID     // intra-process references
	Remotes []ids.GlobalRef // inter-process references
	Payload []byte          // opaque application data
}

// clone returns a deep copy of the object (used by snapshots).
func (o *Object) clone() *Object {
	c := &Object{ID: o.ID}
	if len(o.Locals) > 0 {
		c.Locals = append([]ids.ObjID(nil), o.Locals...)
	}
	if len(o.Remotes) > 0 {
		c.Remotes = append([]ids.GlobalRef(nil), o.Remotes...)
	}
	if len(o.Payload) > 0 {
		c.Payload = append([]byte(nil), o.Payload...)
	}
	return c
}

// Heap is the object store of one process. Heap is not safe for concurrent
// use; the owning node serializes access.
type Heap struct {
	node    ids.NodeID
	nextID  ids.ObjID
	objects map[ids.ObjID]*Object
	roots   map[ids.ObjID]struct{}

	// gen is the mutation epoch: it advances on every structural change
	// (allocation, deletion, reference or root edit, payload replacement).
	// Consumers such as the summarization cache compare generations to
	// detect that a heap is unchanged since they last read it.
	gen uint64

	// Traversal scratch, reused across ReachableFrom/MarkReachable calls so
	// mark and summarize rounds stop allocating queues and visited maps per
	// call. Guarded by the same single-goroutine discipline as the heap.
	queueBuf []ids.ObjID
	marked   map[ids.ObjID]uint64
	markGen  uint64
}

// New returns an empty heap owned by the given node.
func New(node ids.NodeID) *Heap {
	return &Heap{
		node:    node,
		nextID:  1,
		objects: make(map[ids.ObjID]*Object),
		roots:   make(map[ids.ObjID]struct{}),
	}
}

// Restore reconstructs a heap from snapshot data: a list of objects (which
// are adopted, not copied), the root set and the next object id to allocate.
// Used by snapshot codecs when decoding.
func Restore(node ids.NodeID, objects []*Object, roots []ids.ObjID, nextID ids.ObjID) (*Heap, error) {
	h := New(node)
	for _, o := range objects {
		if o == nil {
			return nil, fmt.Errorf("heap %s: Restore: nil object", node)
		}
		if _, dup := h.objects[o.ID]; dup {
			return nil, fmt.Errorf("heap %s: Restore: duplicate object %d", node, o.ID)
		}
		if o.ID >= nextID {
			return nil, fmt.Errorf("heap %s: Restore: object %d >= nextID %d", node, o.ID, nextID)
		}
		h.objects[o.ID] = o
	}
	for _, r := range roots {
		if err := h.AddRoot(r); err != nil {
			return nil, err
		}
	}
	h.nextID = nextID
	return h, nil
}

// Node returns the identifier of the owning process.
func (h *Heap) Node() ids.NodeID { return h.node }

// Gen returns the heap's mutation epoch. Two equal Gen values bracket a
// window with no structural change, so any derived artifact (summary,
// snapshot encoding) computed inside the window is still valid.
func (h *Heap) Gen() uint64 { return h.gen }

// NextID returns the id the next allocation will receive. Exposed for
// snapshot codecs.
func (h *Heap) NextID() ids.ObjID { return h.nextID }

// Len returns the number of live (allocated, not yet swept) objects.
func (h *Heap) Len() int { return len(h.objects) }

// Alloc allocates a fresh object with the given payload and returns it.
func (h *Heap) Alloc(payload []byte) *Object {
	o := &Object{ID: h.nextID, Payload: payload}
	h.nextID++
	h.objects[o.ID] = o
	h.gen++
	return o
}

// Get returns the object with the given id, or nil if it does not exist.
func (h *Heap) Get(id ids.ObjID) *Object { return h.objects[id] }

// Contains reports whether an object with the given id exists.
func (h *Heap) Contains(id ids.ObjID) bool {
	_, ok := h.objects[id]
	return ok
}

// Delete removes the object with the given id from the heap. Deleting a
// missing object is a no-op. Used by the local garbage collector's sweep.
func (h *Heap) Delete(id ids.ObjID) {
	if _, ok := h.objects[id]; !ok {
		return
	}
	delete(h.objects, id)
	delete(h.roots, id)
	h.gen++
}

// AddRoot marks the object as a member of the process-local root set.
// It returns an error if the object does not exist.
func (h *Heap) AddRoot(id ids.ObjID) error {
	if !h.Contains(id) {
		return fmt.Errorf("heap %s: AddRoot: no object %d", h.node, id)
	}
	h.roots[id] = struct{}{}
	h.gen++
	return nil
}

// RemoveRoot removes the object from the root set (no-op if absent).
func (h *Heap) RemoveRoot(id ids.ObjID) {
	if _, ok := h.roots[id]; !ok {
		return
	}
	delete(h.roots, id)
	h.gen++
}

// IsRoot reports whether the object is in the root set.
func (h *Heap) IsRoot(id ids.ObjID) bool {
	_, ok := h.roots[id]
	return ok
}

// Roots returns the root set in canonical (ascending) order.
func (h *Heap) Roots() []ids.ObjID {
	out := make([]ids.ObjID, 0, len(h.roots))
	for id := range h.roots {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLocalRef appends a reference from object from to object to.
// Both objects must exist.
func (h *Heap) AddLocalRef(from, to ids.ObjID) error {
	f := h.Get(from)
	if f == nil {
		return fmt.Errorf("heap %s: AddLocalRef: no object %d", h.node, from)
	}
	if !h.Contains(to) {
		return fmt.Errorf("heap %s: AddLocalRef: no object %d", h.node, to)
	}
	f.Locals = append(f.Locals, to)
	h.gen++
	return nil
}

// RemoveLocalRef removes one occurrence of the reference from -> to.
// It returns an error if the source object or the reference does not exist.
func (h *Heap) RemoveLocalRef(from, to ids.ObjID) error {
	f := h.Get(from)
	if f == nil {
		return fmt.Errorf("heap %s: RemoveLocalRef: no object %d", h.node, from)
	}
	for i, r := range f.Locals {
		if r == to {
			f.Locals = append(f.Locals[:i], f.Locals[i+1:]...)
			h.gen++
			return nil
		}
	}
	return fmt.Errorf("heap %s: RemoveLocalRef: no reference %d->%d", h.node, from, to)
}

// AddRemoteRef appends an inter-process reference from object from to the
// remote object target. The target must be owned by a different node.
func (h *Heap) AddRemoteRef(from ids.ObjID, target ids.GlobalRef) error {
	f := h.Get(from)
	if f == nil {
		return fmt.Errorf("heap %s: AddRemoteRef: no object %d", h.node, from)
	}
	if target.Node == h.node {
		return fmt.Errorf("heap %s: AddRemoteRef: target %v is local", h.node, target)
	}
	f.Remotes = append(f.Remotes, target)
	h.gen++
	return nil
}

// RemoveRemoteRef removes one occurrence of the inter-process reference
// from -> target.
func (h *Heap) RemoveRemoteRef(from ids.ObjID, target ids.GlobalRef) error {
	f := h.Get(from)
	if f == nil {
		return fmt.Errorf("heap %s: RemoveRemoteRef: no object %d", h.node, from)
	}
	for i, r := range f.Remotes {
		if r == target {
			f.Remotes = append(f.Remotes[:i], f.Remotes[i+1:]...)
			h.gen++
			return nil
		}
	}
	return fmt.Errorf("heap %s: RemoveRemoteRef: no reference %d->%v", h.node, from, target)
}

// SetPayload replaces the payload of an existing object. Routed through the
// heap (rather than poking the Object) so the mutation epoch advances: a
// payload change invalidates serialized snapshots even though it cannot
// change reachability.
func (h *Heap) SetPayload(id ids.ObjID, payload []byte) error {
	o := h.Get(id)
	if o == nil {
		return fmt.Errorf("heap %s: SetPayload: no object %d", h.node, id)
	}
	o.Payload = payload
	h.gen++
	return nil
}

// IDs returns all object identifiers in ascending order.
func (h *Heap) IDs() []ids.ObjID {
	out := make([]ids.ObjID, 0, len(h.objects))
	for id := range h.objects {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEach calls fn for every object in ascending id order.
func (h *Heap) ForEach(fn func(*Object)) {
	for _, id := range h.IDs() {
		fn(h.objects[id])
	}
}

// Clone returns a deep copy of the heap: the snapshot primitive. The clone
// shares nothing with the original, so the mutator may continue to run while
// the snapshot is summarized or serialized.
func (h *Heap) Clone() *Heap {
	c := &Heap{
		node:    h.node,
		nextID:  h.nextID,
		gen:     h.gen,
		objects: make(map[ids.ObjID]*Object, len(h.objects)),
		roots:   make(map[ids.ObjID]struct{}, len(h.roots)),
	}
	for id, o := range h.objects {
		c.objects[id] = o.clone()
	}
	for id := range h.roots {
		c.roots[id] = struct{}{}
	}
	return c
}
