package refs

import (
	"testing"

	"dgc/internal/ids"
)

func gref(n ids.NodeID, o ids.ObjID) ids.GlobalRef { return ids.GlobalRef{Node: n, Obj: o} }

func TestEnsureStubIdempotent(t *testing.T) {
	tb := NewTable("P1")
	s1, created := tb.EnsureStub(gref("P2", 6))
	if !created {
		t.Fatal("first EnsureStub should create")
	}
	s2, created := tb.EnsureStub(gref("P2", 6))
	if created {
		t.Fatal("second EnsureStub should not create")
	}
	if s1 != s2 {
		t.Fatal("EnsureStub returned distinct stubs for same target")
	}
	if tb.NumStubs() != 1 {
		t.Fatalf("NumStubs = %d", tb.NumStubs())
	}
}

func TestStubLookupAndDelete(t *testing.T) {
	tb := NewTable("P1")
	tb.EnsureStub(gref("P2", 6))
	if tb.Stub(gref("P2", 6)) == nil {
		t.Fatal("Stub lookup failed")
	}
	if tb.Stub(gref("P2", 7)) != nil {
		t.Fatal("Stub lookup should miss")
	}
	tb.DeleteStub(gref("P2", 6))
	if tb.Stub(gref("P2", 6)) != nil {
		t.Fatal("stub still present after delete")
	}
	tb.DeleteStub(gref("P2", 6)) // no-op
}

func TestStubsSorted(t *testing.T) {
	tb := NewTable("P1")
	tb.EnsureStub(gref("P3", 1))
	tb.EnsureStub(gref("P2", 9))
	tb.EnsureStub(gref("P2", 2))
	stubs := tb.Stubs()
	if len(stubs) != 3 {
		t.Fatalf("len = %d", len(stubs))
	}
	if stubs[0].Target != gref("P2", 2) || stubs[1].Target != gref("P2", 9) || stubs[2].Target != gref("P3", 1) {
		t.Fatalf("unsorted stubs: %v %v %v", stubs[0].Target, stubs[1].Target, stubs[2].Target)
	}
}

func TestEnsureScionIdempotentPerSource(t *testing.T) {
	tb := NewTable("P2")
	s1, created := tb.EnsureScion("P1", 6)
	if !created {
		t.Fatal("first EnsureScion should create")
	}
	_, created = tb.EnsureScion("P1", 6)
	if created {
		t.Fatal("duplicate EnsureScion should not create")
	}
	// Same object, different source: a distinct scion (reference listing).
	s3, created := tb.EnsureScion("P5", 6)
	if !created || s3 == s1 {
		t.Fatal("scion from another source must be distinct")
	}
	if tb.NumScions() != 2 {
		t.Fatalf("NumScions = %d", tb.NumScions())
	}
}

func TestDeleteScion(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	if !tb.DeleteScion("P1", 6) {
		t.Fatal("DeleteScion should report true")
	}
	if tb.DeleteScion("P1", 6) {
		t.Fatal("second DeleteScion should report false")
	}
	if tb.Scion("P1", 6) != nil {
		t.Fatal("scion still present")
	}
}

func TestScionTargetsDeduplicated(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P5", 6)
	tb.EnsureScion("P1", 2)
	targets := tb.ScionTargets()
	if len(targets) != 2 || targets[0] != 2 || targets[1] != 6 {
		t.Fatalf("ScionTargets = %v", targets)
	}
}

func TestScionsForObject(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P5", 6)
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P1", 3)
	got := tb.ScionsForObject(6)
	if len(got) != 2 || got[0].Src != "P1" || got[1].Src != "P5" {
		t.Fatalf("ScionsForObject = %+v", got)
	}
}

func TestScionRefID(t *testing.T) {
	s := Scion{Src: "P1", Obj: 6}
	r := s.RefID("P2")
	want := ids.RefID{Src: "P1", Dst: gref("P2", 6)}
	if r != want {
		t.Fatalf("RefID = %v, want %v", r, want)
	}
}

func TestBumpICs(t *testing.T) {
	tb := NewTable("P1")
	tb.EnsureStub(gref("P2", 6))
	if ic, err := tb.BumpStubIC(gref("P2", 6)); err != nil || ic != 1 {
		t.Fatalf("BumpStubIC = %d, %v", ic, err)
	}
	if ic, err := tb.BumpStubIC(gref("P2", 6)); err != nil || ic != 2 {
		t.Fatalf("BumpStubIC = %d, %v", ic, err)
	}
	if _, err := tb.BumpStubIC(gref("P9", 9)); err == nil {
		t.Fatal("BumpStubIC on missing stub should fail")
	}

	tb2 := NewTable("P2")
	tb2.EnsureScion("P1", 6)
	if ic, err := tb2.BumpScionIC("P1", 6); err != nil || ic != 1 {
		t.Fatalf("BumpScionIC = %d, %v", ic, err)
	}
	if _, err := tb2.BumpScionIC("P9", 6); err == nil {
		t.Fatal("BumpScionIC on missing scion should fail")
	}
}

func TestScionsSorted(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P5", 1)
	tb.EnsureScion("P1", 9)
	tb.EnsureScion("P1", 3)
	s := tb.Scions()
	if s[0].Src != "P1" || s[0].Obj != 3 || s[1].Obj != 9 || s[2].Src != "P5" {
		t.Fatalf("Scions order: %+v %+v %+v", s[0], s[1], s[2])
	}
}
