package refs

import (
	"sort"

	"dgc/internal/ids"
)

// LeaseDGC is leased reference listing: the alternative acyclic collector
// the paper's evaluation alludes to when it calls its own "a safe DGC (not
// a lease-based one)". Included as an ablation.
//
// Every scion carries a lease that each received stub set renews; a scion
// whose lease has not been renewed for Duration ticks is expired and
// deleted even though no stub set ever dropped it. Expiry makes the
// collector self-cleaning when client processes die silently — and UNSAFE
// when they merely go quiet: a partition or a burst of lost messages longer
// than the lease deletes scions for references that are still held, letting
// the owner reclaim live objects. The ablation experiment quantifies
// exactly that failure against the paper's loss-tolerant design.
type LeaseDGC struct {
	*AcyclicDGC
	// Duration is the lease length in ticks.
	Duration uint64

	renewed map[ScionKey]uint64 // last renewal tick per scion
}

// NewLeaseDGC wraps a table with leased reference listing.
func NewLeaseDGC(table *Table, duration uint64) *LeaseDGC {
	return &LeaseDGC{
		AcyclicDGC: NewAcyclicDGC(table),
		Duration:   duration,
		renewed:    make(map[ScionKey]uint64),
	}
}

// Grant starts (or restarts) the lease of a scion at tick now. Call on
// scion creation.
func (l *LeaseDGC) Grant(src ids.NodeID, obj ids.ObjID, now uint64) {
	l.renewed[ScionKey{Src: src, Obj: obj}] = now
}

// ApplyStubSetAt applies a stub set like reference listing AND renews the
// leases of every listed scion at tick now. Stale messages renew nothing.
func (l *LeaseDGC) ApplyStubSetAt(msg StubSetMsg, now uint64) []Scion {
	if msg.Seq <= l.LastAppliedSeq(msg.From) {
		return nil
	}
	deleted := l.ApplyStubSet(msg)
	for _, sc := range deleted {
		delete(l.renewed, ScionKey{Src: sc.Src, Obj: sc.Obj})
	}
	for _, obj := range msg.Objs {
		key := ScionKey{Src: msg.From, Obj: obj}
		if l.table.Scion(msg.From, obj) != nil {
			l.renewed[key] = now
		}
	}
	return deleted
}

// Expire deletes every scion whose lease ran out at tick now and returns
// them in canonical order. The caller treats them exactly like stub-set
// deletions — this is where the unsafety enters.
func (l *LeaseDGC) Expire(now uint64) []Scion {
	var out []Scion
	for _, sc := range l.table.Scions() {
		key := ScionKey{Src: sc.Src, Obj: sc.Obj}
		last, ok := l.renewed[key]
		if !ok {
			// Never granted: treat as granted now (defensive).
			l.renewed[key] = now
			continue
		}
		if now-last > l.Duration {
			l.table.DeleteScion(sc.Src, sc.Obj)
			delete(l.renewed, key)
			out = append(out, *sc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}
