package refs

import (
	"sort"

	"dgc/internal/ids"
)

// LeaseDGC is leased reference listing: the alternative acyclic collector
// the paper's evaluation alludes to when it calls its own "a safe DGC (not
// a lease-based one)". Included as an ablation.
//
// Every scion carries a lease that each received stub set renews; a scion
// whose lease has not been renewed for Duration ticks is expired and
// deleted even though no stub set ever dropped it. Expiry makes the
// collector self-cleaning when client processes die silently — and UNSAFE
// when they merely go quiet: a partition or a burst of lost messages longer
// than the lease deletes scions for references that are still held, letting
// the owner reclaim live objects. The ablation experiment quantifies
// exactly that failure against the paper's loss-tolerant design.
type LeaseDGC struct {
	*AcyclicDGC
	// Duration is the lease length in ticks.
	Duration uint64

	renewed map[ScionKey]uint64 // last renewal tick per scion
}

// NewLeaseDGC wraps a table with leased reference listing.
func NewLeaseDGC(table *Table, duration uint64) *LeaseDGC {
	return &LeaseDGC{
		AcyclicDGC: NewAcyclicDGC(table),
		Duration:   duration,
		renewed:    make(map[ScionKey]uint64),
	}
}

// Grant starts (or restarts) the lease of a scion at tick now. Call on
// scion creation.
func (l *LeaseDGC) Grant(src ids.NodeID, obj ids.ObjID, now uint64) {
	l.renewed[ScionKey{Src: src, Obj: obj}] = now
}

// ApplyStubSetAt applies a stub set like reference listing AND renews the
// leases of every listed scion at tick now. Stale messages renew nothing.
func (l *LeaseDGC) ApplyStubSetAt(msg StubSetMsg, now uint64) []Scion {
	if msg.Seq <= l.LastAppliedSeq(msg.From) {
		return nil
	}
	deleted := l.ApplyStubSet(msg)
	for _, sc := range deleted {
		delete(l.renewed, ScionKey{Src: sc.Src, Obj: sc.Obj})
	}
	for _, obj := range msg.Objs {
		key := ScionKey{Src: msg.From, Obj: obj}
		if l.table.Scion(msg.From, obj) != nil {
			l.renewed[key] = now
		}
	}
	return deleted
}

// HolderLeases guards scions per HOLDER rather than per scion: every
// inbound message from a member renews that member's single lease over all
// scions it holds here. Unlike the LeaseDGC ablation above — where silence
// alone deletes scions — HolderLeases only reclaims when the cluster
// membership directory has ALSO declared the holder dead, so quiet-but-alive
// members never lose references. Scions taken into custody during a drain
// handoff (Pin) are exempt from expiry and released only when the drained
// holder's departure is final.
type HolderLeases struct {
	table *Table
	// Duration is the lease length in ticks.
	Duration uint64

	renewed     map[ids.NodeID]uint64 // last tick each holder was heard from
	incarnation map[ids.NodeID]uint64 // incarnation the current grant belongs to
	custodial   map[ScionKey]struct{} // drain-handoff scions pinned against expiry
}

// NewHolderLeases wraps a table with per-holder lease accounting.
func NewHolderLeases(table *Table, duration uint64) *HolderLeases {
	return &HolderLeases{
		table:       table,
		Duration:    duration,
		renewed:     make(map[ids.NodeID]uint64),
		incarnation: make(map[ids.NodeID]uint64),
		custodial:   make(map[ScionKey]struct{}),
	}
}

// Renew marks the holder alive at tick now: any inbound traffic qualifies.
func (h *HolderLeases) Renew(holder ids.NodeID, now uint64) {
	h.renewed[holder] = now
}

// Valid reports whether the holder's lease covers tick now. A holder never
// heard from is granted defensively at now — reclamation requires positive
// evidence of silence spanning a full lease, not missing bookkeeping.
func (h *HolderLeases) Valid(holder ids.NodeID, now uint64) bool {
	last, ok := h.renewed[holder]
	if !ok {
		h.renewed[holder] = now
		return true
	}
	return now-last <= h.Duration
}

// Regrant re-arms a previously expired holder that returned with a higher
// incarnation, reporting whether the grant was fresh. Re-joining with a
// stale or equal incarnation does not resurrect the lease: the member must
// prove it restarted.
func (h *HolderLeases) Regrant(holder ids.NodeID, incarnation, now uint64) bool {
	if incarnation <= h.incarnation[holder] {
		return false
	}
	h.incarnation[holder] = incarnation
	h.renewed[holder] = now
	return true
}

// Holders returns how many distinct holders currently carry a lease.
func (h *HolderLeases) Holders() int { return len(h.renewed) }

// Pin takes the scion (src, obj) into custody: a drain handoff transferred
// responsibility for it to this owner, so lease expiry must not touch it.
func (h *HolderLeases) Pin(src ids.NodeID, obj ids.ObjID) {
	h.custodial[ScionKey{Src: src, Obj: obj}] = struct{}{}
}

// ReleaseCustodial deletes every custodial scion held on behalf of holder —
// called when the drained holder's departure becomes final — and returns
// them in canonical order for journaling and sweep.
func (h *HolderLeases) ReleaseCustodial(holder ids.NodeID) []Scion {
	var out []Scion
	for key := range h.custodial {
		if key.Src != holder {
			continue
		}
		delete(h.custodial, key)
		if sc := h.table.Scion(key.Src, key.Obj); sc != nil {
			out = append(out, *sc)
			h.table.DeleteScion(key.Src, key.Obj)
		}
	}
	sortScions(out)
	return out
}

// ExpireHolder deletes every non-custodial scion held for holder if — and
// only if — its lease has lapsed at tick now, returning the deletions in
// canonical order. Callers gate this on the membership directory declaring
// the holder dead; the lease is the second, independent safety condition.
func (h *HolderLeases) ExpireHolder(holder ids.NodeID, now uint64) []Scion {
	if h.Valid(holder, now) {
		return nil
	}
	var out []Scion
	for _, sc := range h.table.Scions() {
		if sc.Src != holder {
			continue
		}
		if _, pinned := h.custodial[ScionKey{Src: sc.Src, Obj: sc.Obj}]; pinned {
			continue
		}
		out = append(out, *sc)
		h.table.DeleteScion(sc.Src, sc.Obj)
	}
	delete(h.renewed, holder)
	return out
}

func sortScions(out []Scion) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Obj < out[j].Obj
	})
}

// Expire deletes every scion whose lease ran out at tick now and returns
// them in canonical order. The caller treats them exactly like stub-set
// deletions — this is where the unsafety enters.
func (l *LeaseDGC) Expire(now uint64) []Scion {
	var out []Scion
	for _, sc := range l.table.Scions() {
		key := ScionKey{Src: sc.Src, Obj: sc.Obj}
		last, ok := l.renewed[key]
		if !ok {
			// Never granted: treat as granted now (defensive).
			l.renewed[key] = now
			continue
		}
		if now-last > l.Duration {
			l.table.DeleteScion(sc.Src, sc.Obj)
			delete(l.renewed, key)
			out = append(out, *sc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}
