package refs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgc/internal/ids"
)

func TestGenerateTargetedGroupsByNode(t *testing.T) {
	tb := NewTable("P1")
	tb.EnsureStub(gref("P2", 6))
	tb.EnsureStub(gref("P2", 3))
	tb.EnsureStub(gref("P3", 1))
	a := NewAcyclicDGC(tb)
	out := a.GenerateTargeted()
	if len(out) != 2 {
		t.Fatalf("messages = %d, want 2", len(out))
	}
	if out[0].To != "P2" || out[1].To != "P3" {
		t.Fatalf("destinations = %v, %v", out[0].To, out[1].To)
	}
	if len(out[0].Msg.Objs) != 2 || out[0].Msg.Objs[0] != 3 || out[0].Msg.Objs[1] != 6 {
		t.Fatalf("P2 objs = %v", out[0].Msg.Objs)
	}
	if out[0].Msg.Seq != 1 || out[0].Msg.From != "P1" {
		t.Fatalf("msg header = %+v", out[0].Msg)
	}
}

func TestGenerateTargetedRepeatsEmptySetsByDefault(t *testing.T) {
	// Default (EmptySetRepeats == 0): empty sets repeat forever so scion
	// reclamation survives message loss.
	tb := NewTable("P1")
	tb.EnsureStub(gref("P2", 6))
	a := NewAcyclicDGC(tb)
	a.GenerateTargeted()
	tb.DeleteStub(gref("P2", 6))
	for round := 0; round < 5; round++ {
		out := a.GenerateTargeted()
		if len(out) != 1 || out[0].To != "P2" || len(out[0].Msg.Objs) != 0 {
			t.Fatalf("round %d: %+v, want a repeated empty set", round, out)
		}
	}
}

func TestGenerateTargetedSendsEmptySetOnceAfterLastStubGone(t *testing.T) {
	tb := NewTable("P1")
	tb.EnsureStub(gref("P2", 6))
	a := NewAcyclicDGC(tb)
	a.EmptySetRepeats = 1
	if got := a.GenerateTargeted(); len(got) != 1 || len(got[0].Msg.Objs) != 1 {
		t.Fatalf("round 1 = %+v", got)
	}
	tb.DeleteStub(gref("P2", 6))
	// P2 must receive exactly one empty set so it can delete scions.
	out := a.GenerateTargeted()
	if len(out) != 1 || out[0].To != "P2" || len(out[0].Msg.Objs) != 0 || out[0].Msg.Seq != 2 {
		t.Fatalf("round 2 = %+v", out)
	}
	// Afterwards, no more messages to P2.
	if out := a.GenerateTargeted(); len(out) != 0 {
		t.Fatalf("round 3 = %+v, want none", out)
	}
	// A stub reappearing resumes messaging with a higher sequence number.
	tb.EnsureStub(gref("P2", 9))
	out = a.GenerateTargeted()
	if len(out) != 1 || out[0].Msg.Seq != 3 {
		t.Fatalf("round 4 = %+v", out)
	}
}

func TestNotePeerForcesEmptySetAfterSilentStubDeath(t *testing.T) {
	// A stub deleted before the FIRST generation round (e.g. by the first
	// local collection) must still produce an empty set for its peer.
	tb := NewTable("P1")
	tb.EnsureStub(gref("P2", 6))
	a := NewAcyclicDGC(tb)
	a.NotePeer("P2")
	tb.DeleteStub(gref("P2", 6)) // dies before any GenerateTargeted
	out := a.GenerateTargeted()
	if len(out) != 1 || out[0].To != "P2" || len(out[0].Msg.Objs) != 0 {
		t.Fatalf("generated = %+v, want one empty set for P2", out)
	}
}

func TestApplyStubSetDeletesUnlistedScions(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P1", 3)
	tb.EnsureScion("P5", 6) // different source: must survive
	a := NewAcyclicDGC(tb)

	deleted := a.ApplyStubSet(StubSetMsg{From: "P1", Seq: 1, Objs: []ids.ObjID{6}})
	if len(deleted) != 1 || deleted[0].Obj != 3 || deleted[0].Src != "P1" {
		t.Fatalf("deleted = %+v", deleted)
	}
	if tb.Scion("P1", 6) == nil || tb.Scion("P5", 6) == nil {
		t.Fatal("listed or foreign scions were deleted")
	}
}

func TestApplyStubSetIgnoresStaleAndDuplicate(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	a := NewAcyclicDGC(tb)

	if d := a.ApplyStubSet(StubSetMsg{From: "P1", Seq: 2, Objs: []ids.ObjID{6}}); len(d) != 0 {
		t.Fatalf("deleted = %+v", d)
	}
	// Duplicate of seq 2: ignored even though it would delete.
	if d := a.ApplyStubSet(StubSetMsg{From: "P1", Seq: 2, Objs: nil}); len(d) != 0 {
		t.Fatal("duplicate message was applied")
	}
	// Older message (seq 1) that would delete: ignored.
	if d := a.ApplyStubSet(StubSetMsg{From: "P1", Seq: 1, Objs: nil}); len(d) != 0 {
		t.Fatal("stale message was applied")
	}
	if tb.Scion("P1", 6) == nil {
		t.Fatal("scion deleted by stale/duplicate message")
	}
	// Newer empty set: applied.
	if d := a.ApplyStubSet(StubSetMsg{From: "P1", Seq: 3, Objs: nil}); len(d) != 1 {
		t.Fatalf("deleted = %+v", d)
	}
	if a.LastAppliedSeq("P1") != 3 {
		t.Fatalf("LastAppliedSeq = %d", a.LastAppliedSeq("P1"))
	}
}

// Property: after any interleaving of sender rounds and (possibly lossy,
// reordered, duplicated) deliveries, delivering the latest generated set
// leaves the receiver's scions from the sender exactly equal to that set.
func TestStubSetConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sender := NewTable("P1")
		receiver := NewTable("P2")
		sDGC := NewAcyclicDGC(sender)
		rDGC := NewAcyclicDGC(receiver)

		// Receiver starts with scions for objects 0..9 from P1.
		for o := ids.ObjID(0); o < 10; o++ {
			receiver.EnsureScion("P1", o)
		}
		var backlog []StubSetMsg
		for round := 0; round < 8; round++ {
			// Mutate sender stub set randomly over objects 0..9 at P2.
			for o := ids.ObjID(0); o < 10; o++ {
				if rng.Intn(2) == 0 {
					sender.EnsureStub(gref("P2", o))
				} else {
					sender.DeleteStub(gref("P2", o))
				}
			}
			for _, ts := range sDGC.GenerateTargeted() {
				if ts.To == "P2" {
					backlog = append(backlog, ts.Msg)
				}
			}
			// Deliver a random subset, in random order, with duplicates.
			for i := 0; i < len(backlog); i++ {
				j := rng.Intn(len(backlog))
				if rng.Intn(3) != 0 {
					rDGC.ApplyStubSet(backlog[j])
				}
			}
		}
		// Final round: a fresh set, delivered reliably.
		final := sDGC.GenerateTargeted()
		for _, ts := range final {
			if ts.To == "P2" {
				rDGC.ApplyStubSet(ts.Msg)
			}
		}
		// Receiver scions from P1 must now equal the sender's stub set
		// restricted to objects that still have scions (scions only shrink:
		// reference listing never recreates them here).
		current := make(map[ids.ObjID]bool)
		for _, s := range sender.Stubs() {
			if s.Target.Node == "P2" {
				current[s.Target.Obj] = true
			}
		}
		for _, sc := range receiver.Scions() {
			if sc.Src == "P1" && !current[sc.Obj] {
				return false // scion survived that the sender no longer lists
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Safety: a scion for a listed object is never deleted, no matter the
// interleaving — reference listing must not over-collect.
func TestApplyStubSetNeverDeletesListed(t *testing.T) {
	f := func(seqs []uint64, keep uint8) bool {
		tb := NewTable("P2")
		kept := ids.ObjID(keep % 4)
		tb.EnsureScion("P1", kept)
		a := NewAcyclicDGC(tb)
		for _, s := range seqs {
			a.ApplyStubSet(StubSetMsg{From: "P1", Seq: s % 16, Objs: []ids.ObjID{kept}})
		}
		return tb.Scion("P1", kept) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
