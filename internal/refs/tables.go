// Package refs implements the data structures and protocol of the acyclic
// distributed garbage collector the paper builds on: reference listing
// (Shapiro, Dickman, Plainfossé 1992).
//
// A Stub represents an outgoing inter-process reference held by this
// process; a Scion represents an incoming inter-process reference to one of
// this process's objects. Both carry an invocation counter (IC), the paper's
// concurrency-control extension (§3.2): the counter is incremented on every
// remote invocation (and reply) performed through the reference and
// piggy-backed on the message, so the two ends of a quiescent reference hold
// equal counters.
package refs

import (
	"fmt"
	"sort"

	"dgc/internal/ids"
)

// Stub is the client-side record of one outgoing inter-process reference.
// There is at most one stub per (this process, target object); several local
// objects may hold the same remote reference and share the stub.
type Stub struct {
	Target ids.GlobalRef // the remote object referenced
	IC     uint64        // invocation counter (paper §3.2)
}

// Scion is the owner-side record of one incoming inter-process reference.
// There is at most one scion per (source process, local object): reference
// listing keeps one entry per client process, not a count.
type Scion struct {
	Src ids.NodeID // process holding the reference
	Obj ids.ObjID  // local object referenced
	IC  uint64     // invocation counter (paper §3.2)
}

// RefID returns the inter-process reference this scion is one end of.
func (s Scion) RefID(owner ids.NodeID) ids.RefID {
	return ids.RefID{Src: s.Src, Dst: ids.GlobalRef{Node: owner, Obj: s.Obj}}
}

// ScionKey identifies a scion within one process.
type ScionKey struct {
	Src ids.NodeID
	Obj ids.ObjID
}

// Table holds the stub and scion tables of one process. Table is not safe
// for concurrent use; the owning node serializes access.
type Table struct {
	node   ids.NodeID
	stubs  map[ids.GlobalRef]*Stub
	scions map[ScionKey]*Scion

	// gen is the mutation epoch: it advances whenever a table entry is
	// created, deleted, restored or has its invocation counter bumped.
	// Together with the heap's epoch it lets the summarization cache prove
	// that a previously built summary is still exact.
	gen uint64
}

// NewTable returns empty stub/scion tables for the given process.
func NewTable(node ids.NodeID) *Table {
	return &Table{
		node:   node,
		stubs:  make(map[ids.GlobalRef]*Stub),
		scions: make(map[ScionKey]*Scion),
	}
}

// Node returns the owning process identifier.
func (t *Table) Node() ids.NodeID { return t.node }

// Gen returns the table's mutation epoch.
func (t *Table) Gen() uint64 { return t.gen }

// EnsureStub returns the stub for target, creating it (with IC zero) if
// needed. created reports whether a new stub was created.
func (t *Table) EnsureStub(target ids.GlobalRef) (s *Stub, created bool) {
	if s = t.stubs[target]; s != nil {
		return s, false
	}
	s = &Stub{Target: target}
	t.stubs[target] = s
	t.gen++
	return s, true
}

// Stub returns the stub for target, or nil.
func (t *Table) Stub(target ids.GlobalRef) *Stub { return t.stubs[target] }

// DeleteStub removes the stub for target (no-op if absent).
func (t *Table) DeleteStub(target ids.GlobalRef) {
	if _, ok := t.stubs[target]; !ok {
		return
	}
	delete(t.stubs, target)
	t.gen++
}

// Stubs returns all stubs in canonical target order.
func (t *Table) Stubs() []*Stub {
	out := make([]*Stub, 0, len(t.stubs))
	for _, s := range t.stubs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target.Less(out[j].Target) })
	return out
}

// NumStubs returns the number of stubs.
func (t *Table) NumStubs() int { return len(t.stubs) }

// EnsureScion returns the scion for (src, obj), creating it (with IC zero)
// if needed. created reports whether a new scion was created.
func (t *Table) EnsureScion(src ids.NodeID, obj ids.ObjID) (s *Scion, created bool) {
	k := ScionKey{Src: src, Obj: obj}
	if s = t.scions[k]; s != nil {
		return s, false
	}
	s = &Scion{Src: src, Obj: obj}
	t.scions[k] = s
	t.gen++
	return s, true
}

// Scion returns the scion for (src, obj), or nil.
func (t *Table) Scion(src ids.NodeID, obj ids.ObjID) *Scion {
	return t.scions[ScionKey{Src: src, Obj: obj}]
}

// DeleteScion removes the scion for (src, obj). It reports whether a scion
// was present.
func (t *Table) DeleteScion(src ids.NodeID, obj ids.ObjID) bool {
	k := ScionKey{Src: src, Obj: obj}
	if _, ok := t.scions[k]; !ok {
		return false
	}
	delete(t.scions, k)
	t.gen++
	return true
}

// Scions returns all scions in canonical (src, obj) order.
func (t *Table) Scions() []*Scion {
	out := make([]*Scion, 0, len(t.scions))
	for _, s := range t.scions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// NumScions returns the number of scions.
func (t *Table) NumScions() int { return len(t.scions) }

// ScionTargets returns the distinct local objects protected by at least one
// scion, in ascending order. These are extra roots for the local collector.
func (t *Table) ScionTargets() []ids.ObjID {
	seen := make(map[ids.ObjID]struct{})
	for k := range t.scions {
		seen[k.Obj] = struct{}{}
	}
	out := make([]ids.ObjID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ScionsForObject returns all scions protecting the given local object, in
// canonical source order.
func (t *Table) ScionsForObject(obj ids.ObjID) []*Scion {
	var out []*Scion
	for _, s := range t.scions {
		if s.Obj == obj {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// RestoreStub reinstates a stub with an explicit invocation counter.
// Used when loading persisted state; overwrites any existing entry.
func (t *Table) RestoreStub(target ids.GlobalRef, ic uint64) {
	t.stubs[target] = &Stub{Target: target, IC: ic}
	t.gen++
}

// RestoreScion reinstates a scion with an explicit invocation counter.
// Used when loading persisted state; overwrites any existing entry.
func (t *Table) RestoreScion(src ids.NodeID, obj ids.ObjID, ic uint64) {
	t.scions[ScionKey{Src: src, Obj: obj}] = &Scion{Src: src, Obj: obj, IC: ic}
	t.gen++
}

// BumpStubIC increments the invocation counter of the stub for target and
// returns the new value. It is an error if the stub does not exist: an
// invocation can only travel through an existing reference.
func (t *Table) BumpStubIC(target ids.GlobalRef) (uint64, error) {
	s := t.stubs[target]
	if s == nil {
		return 0, fmt.Errorf("refs %s: BumpStubIC: no stub for %v", t.node, target)
	}
	s.IC++
	t.gen++
	return s.IC, nil
}

// BumpScionIC increments the invocation counter of the scion for (src, obj)
// and returns the new value.
func (t *Table) BumpScionIC(src ids.NodeID, obj ids.ObjID) (uint64, error) {
	s := t.Scion(src, obj)
	if s == nil {
		return 0, fmt.Errorf("refs %s: BumpScionIC: no scion for %s->%d", t.node, src, obj)
	}
	s.IC++
	t.gen++
	return s.IC, nil
}
