package refs

import (
	"sort"

	"dgc/internal/ids"
)

// The NewSetStubs protocol (paper §1):
//
//	"Starting from local roots and scions, the LGC generates a new set of
//	 stubs each time it runs. This new set of stubs is then sent to remote
//	 processes (this message is called NewSetStubs); these processes, based
//	 on the set of stubs received, may conclude which scions are no longer
//	 reachable so that they can be safely deleted."
//
// Each message carries the COMPLETE current set of this process's stubs that
// target one remote process, together with a per-(sender, receiver) monotonic
// sequence number. Because messages are complete sets, the protocol tolerates
// message loss (the next message supersedes) and, with the sequence number,
// reordering and duplication (stale messages are ignored).

// StubSetMsg is the payload of one NewSetStubs message: the full set of
// objects at the receiver that the sender still references.
type StubSetMsg struct {
	From ids.NodeID  // sender (the process holding the stubs)
	Seq  uint64      // per-(sender,receiver) monotonic sequence number
	Objs []ids.ObjID // receiver-local objects still referenced, sorted
}

// AcyclicDGC implements the sender and receiver sides of the NewSetStubs
// protocol for one process.
type AcyclicDGC struct {
	table *Table
	// EmptySetRepeats bounds how many consecutive EMPTY stub sets are sent
	// to a peer that no longer has any stubs here before the peer is
	// forgotten. Zero (the default) repeats forever: an empty set is tiny,
	// and repeating it is what makes scion reclamation tolerate message
	// loss — a single lost empty set would otherwise leak the peer's
	// scions permanently.
	EmptySetRepeats int

	// outSeq is the next sequence number per destination node.
	outSeq map[ids.NodeID]uint64
	// inSeq is the highest sequence number applied per source node.
	inSeq map[ids.NodeID]uint64
	// knownPeers remembers every node we have ever sent a stub set to, so
	// that a process whose last stub to a peer disappears still sends the
	// (empty) set that lets the peer drop its remaining scions. The value
	// counts consecutive empty sets sent.
	knownPeers map[ids.NodeID]int
}

// NewAcyclicDGC returns the acyclic collector state bound to a table.
func NewAcyclicDGC(table *Table) *AcyclicDGC {
	return &AcyclicDGC{
		table:      table,
		outSeq:     make(map[ids.NodeID]uint64),
		inSeq:      make(map[ids.NodeID]uint64),
		knownPeers: make(map[ids.NodeID]int),
	}
}

// NotePeer records that the process currently holds (or held) stubs to the
// given node, guaranteeing the peer a stub-set message in the next
// generation round even if every such stub disappears before it. Callers
// must invoke this for each stub's target node BEFORE a local collection
// deletes stubs, otherwise a peer whose last stub dies in the collection
// never learns about it and its scions leak.
func (a *AcyclicDGC) NotePeer(n ids.NodeID) {
	a.knownPeers[n] = 0
}

// TargetedStubSet pairs a NewSetStubs message with its destination.
type TargetedStubSet struct {
	To  ids.NodeID
	Msg StubSetMsg
}

// GenerateTargeted builds one NewSetStubs message per peer process from the
// current stub table. It must be called after a local collection has
// recomputed the stub table (see lgc). Peers that previously received a
// non-empty set and now have no stubs receive an explicit empty set exactly
// once, so their scions from this process can be reclaimed.
func (a *AcyclicDGC) GenerateTargeted() []TargetedStubSet {
	byNode := make(map[ids.NodeID][]ids.ObjID)
	for _, s := range a.table.Stubs() {
		byNode[s.Target.Node] = append(byNode[s.Target.Node], s.Target.Obj)
	}
	for n := range byNode {
		a.knownPeers[n] = 0
	}
	nodes := make([]ids.NodeID, 0, len(a.knownPeers))
	for n := range a.knownPeers {
		nodes = append(nodes, n)
	}
	ids.SortNodeIDs(nodes)

	out := make([]TargetedStubSet, 0, len(nodes))
	for _, n := range nodes {
		objs := byNode[n]
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		a.outSeq[n]++
		out = append(out, TargetedStubSet{
			To:  n,
			Msg: StubSetMsg{From: a.table.Node(), Seq: a.outSeq[n], Objs: objs},
		})
		if len(objs) == 0 {
			a.knownPeers[n]++
			if a.EmptySetRepeats > 0 && a.knownPeers[n] >= a.EmptySetRepeats {
				delete(a.knownPeers, n)
			}
		}
	}
	return out
}

// ApplyStubSet processes a received NewSetStubs message: every scion from
// msg.From whose object is not listed is deleted. Stale or duplicate
// messages (sequence number not larger than the last applied) are ignored.
// It returns the scions deleted, in canonical order.
func (a *AcyclicDGC) ApplyStubSet(msg StubSetMsg) []Scion {
	if msg.Seq <= a.inSeq[msg.From] {
		return nil // stale or duplicate
	}
	a.inSeq[msg.From] = msg.Seq

	listed := make(map[ids.ObjID]struct{}, len(msg.Objs))
	for _, o := range msg.Objs {
		listed[o] = struct{}{}
	}
	var deleted []Scion
	for _, s := range a.table.Scions() {
		if s.Src != msg.From {
			continue
		}
		if _, ok := listed[s.Obj]; !ok {
			a.table.DeleteScion(s.Src, s.Obj)
			deleted = append(deleted, *s)
		}
	}
	return deleted
}

// LastAppliedSeq returns the highest sequence number applied from src.
func (a *AcyclicDGC) LastAppliedSeq(src ids.NodeID) uint64 { return a.inSeq[src] }

// SeqEntry is one persisted sequence-number record.
type SeqEntry struct {
	Node ids.NodeID
	Seq  uint64
}

// SeqState exports the protocol's sequence numbers for persistence, in
// canonical node order: outbound (next stub-set per destination) and
// inbound (last applied per source). Sequence numbers MUST survive a
// process restart — a rebooted process restarting from sequence zero would
// have its fresh (authoritative) stub sets discarded as stale by peers.
func (a *AcyclicDGC) SeqState() (out, in []SeqEntry) {
	collect := func(m map[ids.NodeID]uint64) []SeqEntry {
		nodes := make([]ids.NodeID, 0, len(m))
		for n := range m {
			nodes = append(nodes, n)
		}
		ids.SortNodeIDs(nodes)
		entries := make([]SeqEntry, 0, len(nodes))
		for _, n := range nodes {
			entries = append(entries, SeqEntry{Node: n, Seq: m[n]})
		}
		return entries
	}
	return collect(a.outSeq), collect(a.inSeq)
}

// RestoreSeqState reinstates persisted sequence numbers and re-registers
// every outbound peer (so empty sets resume if stubs died with the crash).
func (a *AcyclicDGC) RestoreSeqState(out, in []SeqEntry) {
	for _, e := range out {
		a.outSeq[e.Node] = e.Seq
		a.knownPeers[e.Node] = 0
	}
	for _, e := range in {
		a.inSeq[e.Node] = e.Seq
	}
}
