package refs

import (
	"testing"

	"dgc/internal/ids"
)

func TestLeaseRenewalKeepsScionAlive(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 0)

	// Renewals arrive every tick: the scion survives indefinitely.
	for now := uint64(1); now <= 10; now++ {
		l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: now, Objs: []ids.ObjID{6}}, now)
		if got := l.Expire(now); len(got) != 0 {
			t.Fatalf("tick %d: renewed scion expired: %v", now, got)
		}
	}
	if tb.Scion("P1", 6) == nil {
		t.Fatal("scion gone despite renewals")
	}
}

func TestLeaseExpiryDeletesQuietScion(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 0)

	for now := uint64(1); now <= 3; now++ {
		if got := l.Expire(now); len(got) != 0 {
			t.Fatalf("tick %d: expired within lease: %v", now, got)
		}
	}
	got := l.Expire(4)
	if len(got) != 1 || got[0].Src != "P1" || got[0].Obj != 6 {
		t.Fatalf("Expire = %v", got)
	}
	if tb.Scion("P1", 6) != nil {
		t.Fatal("scion survived expiry")
	}
}

func TestLeaseUnsafetyUnderSilence(t *testing.T) {
	// THE point of the ablation: the holder still references the object,
	// but its renewals are lost for longer than the lease. Leased reference
	// listing deletes the scion (unsafe); plain reference listing keeps it.
	leasedTable := NewTable("P2")
	leasedTable.EnsureScion("P1", 6)
	leased := NewLeaseDGC(leasedTable, 2)
	leased.Grant("P1", 6, 0)

	plainTable := NewTable("P2")
	plainTable.EnsureScion("P1", 6)
	plain := NewAcyclicDGC(plainTable)
	_ = plain

	// Five ticks of silence (messages lost); the reference is still held
	// by P1 the whole time.
	for now := uint64(1); now <= 5; now++ {
		leased.Expire(now)
	}
	if leasedTable.Scion("P1", 6) != nil {
		t.Fatal("lease did not expire: ablation would show nothing")
	}
	if plainTable.Scion("P1", 6) == nil {
		t.Fatal("plain reference listing dropped a scion without a stub set")
	}
}

func TestLeaseStaleMessagesDoNotRenew(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 2)
	l.Grant("P1", 6, 0)
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 5, Objs: []ids.ObjID{6}}, 1)
	// A duplicate of seq 5 delivered later must NOT extend the lease.
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 5, Objs: []ids.ObjID{6}}, 4)
	if got := l.Expire(4); len(got) != 1 {
		t.Fatalf("stale renewal extended the lease: %v", got)
	}
}

func TestLeaseApplyStubSetStillDeletesUnlisted(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P1", 7)
	l := NewLeaseDGC(tb, 5)
	l.Grant("P1", 6, 0)
	l.Grant("P1", 7, 0)
	deleted := l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 1, Objs: []ids.ObjID{6}}, 1)
	if len(deleted) != 1 || deleted[0].Obj != 7 {
		t.Fatalf("deleted = %v", deleted)
	}
	// The deletion also cleared its lease record; expiry finds nothing new.
	if got := l.Expire(1); len(got) != 0 {
		t.Fatalf("Expire = %v", got)
	}
}

func TestLeaseUngrantedScionGetsDefensiveLease(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6) // created without Grant
	l := NewLeaseDGC(tb, 2)
	if got := l.Expire(10); len(got) != 0 {
		t.Fatalf("ungranted scion expired immediately: %v", got)
	}
	// But it ages out from that point on.
	if got := l.Expire(13); len(got) != 1 {
		t.Fatalf("defensive lease never expired: %v", got)
	}
}
