package refs

import (
	"testing"

	"dgc/internal/ids"
)

func TestLeaseRenewalKeepsScionAlive(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 0)

	// Renewals arrive every tick: the scion survives indefinitely.
	for now := uint64(1); now <= 10; now++ {
		l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: now, Objs: []ids.ObjID{6}}, now)
		if got := l.Expire(now); len(got) != 0 {
			t.Fatalf("tick %d: renewed scion expired: %v", now, got)
		}
	}
	if tb.Scion("P1", 6) == nil {
		t.Fatal("scion gone despite renewals")
	}
}

func TestLeaseExpiryDeletesQuietScion(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 0)

	for now := uint64(1); now <= 3; now++ {
		if got := l.Expire(now); len(got) != 0 {
			t.Fatalf("tick %d: expired within lease: %v", now, got)
		}
	}
	got := l.Expire(4)
	if len(got) != 1 || got[0].Src != "P1" || got[0].Obj != 6 {
		t.Fatalf("Expire = %v", got)
	}
	if tb.Scion("P1", 6) != nil {
		t.Fatal("scion survived expiry")
	}
}

func TestLeaseUnsafetyUnderSilence(t *testing.T) {
	// THE point of the ablation: the holder still references the object,
	// but its renewals are lost for longer than the lease. Leased reference
	// listing deletes the scion (unsafe); plain reference listing keeps it.
	leasedTable := NewTable("P2")
	leasedTable.EnsureScion("P1", 6)
	leased := NewLeaseDGC(leasedTable, 2)
	leased.Grant("P1", 6, 0)

	plainTable := NewTable("P2")
	plainTable.EnsureScion("P1", 6)
	plain := NewAcyclicDGC(plainTable)
	_ = plain

	// Five ticks of silence (messages lost); the reference is still held
	// by P1 the whole time.
	for now := uint64(1); now <= 5; now++ {
		leased.Expire(now)
	}
	if leasedTable.Scion("P1", 6) != nil {
		t.Fatal("lease did not expire: ablation would show nothing")
	}
	if plainTable.Scion("P1", 6) == nil {
		t.Fatal("plain reference listing dropped a scion without a stub set")
	}
}

func TestLeaseStaleMessagesDoNotRenew(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 2)
	l.Grant("P1", 6, 0)
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 5, Objs: []ids.ObjID{6}}, 1)
	// A duplicate of seq 5 delivered later must NOT extend the lease.
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 5, Objs: []ids.ObjID{6}}, 4)
	if got := l.Expire(4); len(got) != 1 {
		t.Fatalf("stale renewal extended the lease: %v", got)
	}
}

func TestLeaseApplyStubSetStillDeletesUnlisted(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P1", 7)
	l := NewLeaseDGC(tb, 5)
	l.Grant("P1", 6, 0)
	l.Grant("P1", 7, 0)
	deleted := l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 1, Objs: []ids.ObjID{6}}, 1)
	if len(deleted) != 1 || deleted[0].Obj != 7 {
		t.Fatalf("deleted = %v", deleted)
	}
	// The deletion also cleared its lease record; expiry finds nothing new.
	if got := l.Expire(1); len(got) != 0 {
		t.Fatalf("Expire = %v", got)
	}
}

func TestLeaseExpiryBoundaryIsExclusive(t *testing.T) {
	// A lease of N ticks means the scion survives through now-last == N and
	// expires at now-last == N+1: renewal cadence equal to the lease length
	// is safe.
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 10)
	if got := l.Expire(13); len(got) != 0 {
		t.Fatalf("expired at exactly Duration ticks: %v", got)
	}
	if got := l.Expire(14); len(got) != 1 {
		t.Fatalf("survived past Duration: %v", got)
	}
}

func TestLeaseExpireCanonicalOrder(t *testing.T) {
	// Expiry reports are consumed like stub-set deletions, so they must be
	// in canonical (Src, Obj) order regardless of table iteration order.
	tb := NewTable("P9")
	for _, sc := range []struct {
		src ids.NodeID
		obj ids.ObjID
	}{{"P3", 1}, {"P1", 9}, {"P1", 2}, {"P2", 5}} {
		tb.EnsureScion(sc.src, sc.obj)
	}
	l := NewLeaseDGC(tb, 1)
	for _, sc := range tb.Scions() {
		l.Grant(sc.Src, sc.Obj, 0)
	}
	got := l.Expire(5)
	if len(got) != 4 {
		t.Fatalf("Expire = %v", got)
	}
	want := []struct {
		src ids.NodeID
		obj ids.ObjID
	}{{"P1", 2}, {"P1", 9}, {"P2", 5}, {"P3", 1}}
	for i, w := range want {
		if got[i].Src != w.src || got[i].Obj != w.obj {
			t.Fatalf("Expire[%d] = %v, want %s/%d", i, got[i], w.src, w.obj)
		}
	}
}

func TestLeaseRegrantAfterExpiryRestartsClock(t *testing.T) {
	// A reference that reappears after its scion expired (holder resends, a
	// new remote store arrives) gets a fresh lease, not the stale record.
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 2)
	l.Grant("P1", 6, 0)
	if got := l.Expire(3); len(got) != 1 {
		t.Fatalf("setup expiry failed: %v", got)
	}
	tb.EnsureScion("P1", 6)
	l.Grant("P1", 6, 3)
	if got := l.Expire(5); len(got) != 0 {
		t.Fatalf("re-granted scion expired on the old clock: %v", got)
	}
	if got := l.Expire(6); len(got) != 1 {
		t.Fatalf("re-granted lease never expired: %v", got)
	}
}

func TestLeaseRenewalIgnoresUnknownScions(t *testing.T) {
	// A stub set listing an object with no scion here must not create lease
	// state: only real scions carry leases.
	tb := NewTable("P2")
	l := NewLeaseDGC(tb, 2)
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 1, Objs: []ids.ObjID{42}}, 1)
	if len(l.renewed) != 0 {
		t.Fatalf("phantom lease records: %v", l.renewed)
	}
	if got := l.Expire(10); len(got) != 0 {
		t.Fatalf("Expire on empty table = %v", got)
	}
}

func TestLeaseUngrantedScionGetsDefensiveLease(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6) // created without Grant
	l := NewLeaseDGC(tb, 2)
	if got := l.Expire(10); len(got) != 0 {
		t.Fatalf("ungranted scion expired immediately: %v", got)
	}
	// But it ages out from that point on.
	if got := l.Expire(13); len(got) != 1 {
		t.Fatalf("defensive lease never expired: %v", got)
	}
}
