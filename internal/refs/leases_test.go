package refs

import (
	"testing"

	"dgc/internal/ids"
)

func TestLeaseRenewalKeepsScionAlive(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 0)

	// Renewals arrive every tick: the scion survives indefinitely.
	for now := uint64(1); now <= 10; now++ {
		l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: now, Objs: []ids.ObjID{6}}, now)
		if got := l.Expire(now); len(got) != 0 {
			t.Fatalf("tick %d: renewed scion expired: %v", now, got)
		}
	}
	if tb.Scion("P1", 6) == nil {
		t.Fatal("scion gone despite renewals")
	}
}

func TestLeaseExpiryDeletesQuietScion(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 0)

	for now := uint64(1); now <= 3; now++ {
		if got := l.Expire(now); len(got) != 0 {
			t.Fatalf("tick %d: expired within lease: %v", now, got)
		}
	}
	got := l.Expire(4)
	if len(got) != 1 || got[0].Src != "P1" || got[0].Obj != 6 {
		t.Fatalf("Expire = %v", got)
	}
	if tb.Scion("P1", 6) != nil {
		t.Fatal("scion survived expiry")
	}
}

func TestLeaseUnsafetyUnderSilence(t *testing.T) {
	// THE point of the ablation: the holder still references the object,
	// but its renewals are lost for longer than the lease. Leased reference
	// listing deletes the scion (unsafe); plain reference listing keeps it.
	leasedTable := NewTable("P2")
	leasedTable.EnsureScion("P1", 6)
	leased := NewLeaseDGC(leasedTable, 2)
	leased.Grant("P1", 6, 0)

	plainTable := NewTable("P2")
	plainTable.EnsureScion("P1", 6)
	plain := NewAcyclicDGC(plainTable)
	_ = plain

	// Five ticks of silence (messages lost); the reference is still held
	// by P1 the whole time.
	for now := uint64(1); now <= 5; now++ {
		leased.Expire(now)
	}
	if leasedTable.Scion("P1", 6) != nil {
		t.Fatal("lease did not expire: ablation would show nothing")
	}
	if plainTable.Scion("P1", 6) == nil {
		t.Fatal("plain reference listing dropped a scion without a stub set")
	}
}

func TestLeaseStaleMessagesDoNotRenew(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 2)
	l.Grant("P1", 6, 0)
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 5, Objs: []ids.ObjID{6}}, 1)
	// A duplicate of seq 5 delivered later must NOT extend the lease.
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 5, Objs: []ids.ObjID{6}}, 4)
	if got := l.Expire(4); len(got) != 1 {
		t.Fatalf("stale renewal extended the lease: %v", got)
	}
}

func TestLeaseApplyStubSetStillDeletesUnlisted(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P1", 7)
	l := NewLeaseDGC(tb, 5)
	l.Grant("P1", 6, 0)
	l.Grant("P1", 7, 0)
	deleted := l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 1, Objs: []ids.ObjID{6}}, 1)
	if len(deleted) != 1 || deleted[0].Obj != 7 {
		t.Fatalf("deleted = %v", deleted)
	}
	// The deletion also cleared its lease record; expiry finds nothing new.
	if got := l.Expire(1); len(got) != 0 {
		t.Fatalf("Expire = %v", got)
	}
}

func TestLeaseExpiryBoundaryIsExclusive(t *testing.T) {
	// A lease of N ticks means the scion survives through now-last == N and
	// expires at now-last == N+1: renewal cadence equal to the lease length
	// is safe.
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 3)
	l.Grant("P1", 6, 10)
	if got := l.Expire(13); len(got) != 0 {
		t.Fatalf("expired at exactly Duration ticks: %v", got)
	}
	if got := l.Expire(14); len(got) != 1 {
		t.Fatalf("survived past Duration: %v", got)
	}
}

func TestLeaseExpireCanonicalOrder(t *testing.T) {
	// Expiry reports are consumed like stub-set deletions, so they must be
	// in canonical (Src, Obj) order regardless of table iteration order.
	tb := NewTable("P9")
	for _, sc := range []struct {
		src ids.NodeID
		obj ids.ObjID
	}{{"P3", 1}, {"P1", 9}, {"P1", 2}, {"P2", 5}} {
		tb.EnsureScion(sc.src, sc.obj)
	}
	l := NewLeaseDGC(tb, 1)
	for _, sc := range tb.Scions() {
		l.Grant(sc.Src, sc.Obj, 0)
	}
	got := l.Expire(5)
	if len(got) != 4 {
		t.Fatalf("Expire = %v", got)
	}
	want := []struct {
		src ids.NodeID
		obj ids.ObjID
	}{{"P1", 2}, {"P1", 9}, {"P2", 5}, {"P3", 1}}
	for i, w := range want {
		if got[i].Src != w.src || got[i].Obj != w.obj {
			t.Fatalf("Expire[%d] = %v, want %s/%d", i, got[i], w.src, w.obj)
		}
	}
}

func TestLeaseRegrantAfterExpiryRestartsClock(t *testing.T) {
	// A reference that reappears after its scion expired (holder resends, a
	// new remote store arrives) gets a fresh lease, not the stale record.
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	l := NewLeaseDGC(tb, 2)
	l.Grant("P1", 6, 0)
	if got := l.Expire(3); len(got) != 1 {
		t.Fatalf("setup expiry failed: %v", got)
	}
	tb.EnsureScion("P1", 6)
	l.Grant("P1", 6, 3)
	if got := l.Expire(5); len(got) != 0 {
		t.Fatalf("re-granted scion expired on the old clock: %v", got)
	}
	if got := l.Expire(6); len(got) != 1 {
		t.Fatalf("re-granted lease never expired: %v", got)
	}
}

func TestLeaseRenewalIgnoresUnknownScions(t *testing.T) {
	// A stub set listing an object with no scion here must not create lease
	// state: only real scions carry leases.
	tb := NewTable("P2")
	l := NewLeaseDGC(tb, 2)
	l.ApplyStubSetAt(StubSetMsg{From: "P1", Seq: 1, Objs: []ids.ObjID{42}}, 1)
	if len(l.renewed) != 0 {
		t.Fatalf("phantom lease records: %v", l.renewed)
	}
	if got := l.Expire(10); len(got) != 0 {
		t.Fatalf("Expire on empty table = %v", got)
	}
}

func TestLeaseUngrantedScionGetsDefensiveLease(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6) // created without Grant
	l := NewLeaseDGC(tb, 2)
	if got := l.Expire(10); len(got) != 0 {
		t.Fatalf("ungranted scion expired immediately: %v", got)
	}
	// But it ages out from that point on.
	if got := l.Expire(13); len(got) != 1 {
		t.Fatalf("defensive lease never expired: %v", got)
	}
}

// --- HolderLeases: the membership-gated per-holder leases (DESIGN.md §14) ---

func TestHolderLeaseExpiryReclaimsScions(t *testing.T) {
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P1", 3)
	tb.EnsureScion("P3", 9) // different holder: must survive P1's expiry
	h := NewHolderLeases(tb, 4)
	h.Renew("P1", 0)
	h.Renew("P3", 0)

	if got := h.ExpireHolder("P1", 4); got != nil {
		t.Fatalf("expired within lease: %v", got)
	}
	got := h.ExpireHolder("P1", 5)
	if len(got) != 2 || got[0].Obj != 3 || got[1].Obj != 6 {
		t.Fatalf("ExpireHolder = %v, want P1's scions 3,6 in canonical order", got)
	}
	if tb.Scion("P1", 6) != nil || tb.Scion("P1", 3) != nil {
		t.Fatal("P1 scions survived reclamation")
	}
	if tb.Scion("P3", 9) == nil {
		t.Fatal("false reclamation: P3's scion deleted by P1's expiry")
	}
}

func TestHolderLeaseRenewalRacesExpiry(t *testing.T) {
	// A renewal landing one tick before the horizon keeps every scion; the
	// same silence without it reclaims. This is the churn race: traffic from
	// a suspected-but-alive holder must always win over the expiry sweep.
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	h := NewHolderLeases(tb, 4)
	h.Renew("P1", 0)

	h.Renew("P1", 4) // renewal racing the tick-5 sweep
	if got := h.ExpireHolder("P1", 5); got != nil {
		t.Fatalf("renewed holder reclaimed: %v", got)
	}
	if got := h.ExpireHolder("P1", 9); len(got) != 1 {
		t.Fatalf("silent holder kept lease: %v", got)
	}
}

func TestHolderLeaseRegrantRequiresHigherIncarnation(t *testing.T) {
	tb := NewTable("P2")
	h := NewHolderLeases(tb, 4)
	if !h.Regrant("P1", 1, 10) {
		t.Fatal("first regrant at incarnation 1 refused")
	}
	if h.Regrant("P1", 1, 20) {
		t.Fatal("equal incarnation re-granted: a rejoining member must prove a restart")
	}
	if h.Regrant("P1", 0, 20) {
		t.Fatal("stale incarnation re-granted")
	}
	if !h.Regrant("P1", 2, 20) {
		t.Fatal("higher incarnation refused")
	}
	if !h.Valid("P1", 24) {
		t.Fatal("regrant did not restart the lease clock")
	}
	if h.Valid("P1", 25) {
		t.Fatal("regranted lease never ages")
	}
}

func TestHolderLeaseNeverHeardIsDefensivelyGranted(t *testing.T) {
	// Reclamation needs positive evidence of a full lease of silence; a
	// holder with no bookkeeping at all starts its clock at first check.
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	h := NewHolderLeases(tb, 4)
	if !h.Valid("P1", 100) {
		t.Fatal("never-heard holder treated as expired")
	}
	if got := h.ExpireHolder("P1", 104); got != nil {
		t.Fatalf("reclaimed within the defensive grant: %v", got)
	}
	if got := h.ExpireHolder("P1", 105); len(got) != 1 {
		t.Fatalf("defensive grant never expired: %v", got)
	}
}

func TestHolderLeaseCustodialPinsSurviveExpiry(t *testing.T) {
	// Drain handoffs pin scions into custody: holder death reclaims only the
	// unpinned remainder, and ReleaseCustodial sweeps the pinned set when the
	// departure is final.
	tb := NewTable("P2")
	tb.EnsureScion("P1", 6)
	tb.EnsureScion("P1", 3)
	h := NewHolderLeases(tb, 4)
	h.Renew("P1", 0)
	h.Pin("P1", 3)

	got := h.ExpireHolder("P1", 5)
	if len(got) != 1 || got[0].Obj != 6 {
		t.Fatalf("ExpireHolder = %v, want only the unpinned scion 6", got)
	}
	if tb.Scion("P1", 3) == nil {
		t.Fatal("custodial scion reclaimed by lease expiry")
	}
	rel := h.ReleaseCustodial("P1")
	if len(rel) != 1 || rel[0].Obj != 3 {
		t.Fatalf("ReleaseCustodial = %v", rel)
	}
	if tb.Scion("P1", 3) != nil {
		t.Fatal("custodial scion survived release")
	}
}
