package admin

import (
	"runtime"
	"runtime/debug"

	"dgc/internal/obs"
)

// Build identity. The variables are overridable at link time:
//
//	go build -ldflags "-X dgc/internal/admin.buildVersion=v1.2.3 -X dgc/internal/admin.buildCommit=abc123"
//
// When unset they fall back to the module build info stamped by the Go
// toolchain (VCS revision when built from a checkout).
var (
	buildVersion string
	buildCommit  string
)

// BuildInfo identifies the running binary: the payload of the status API's
// "build" block and the labels of the dgc_build_info gauge.
type BuildInfo struct {
	Version string `json:"version"`
	Commit  string `json:"commit"`
	Go      string `json:"go"`
}

// Build returns the binary's build identity.
func Build() BuildInfo {
	b := BuildInfo{Version: buildVersion, Commit: buildCommit, Go: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if ok {
		if b.Version == "" && info.Main.Version != "" && info.Main.Version != "(devel)" {
			b.Version = info.Main.Version
		}
		if b.Commit == "" {
			for _, s := range info.Settings {
				if s.Key == "vcs.revision" {
					b.Commit = s.Value
					if len(b.Commit) > 12 {
						b.Commit = b.Commit[:12]
					}
				}
			}
		}
	}
	if b.Version == "" {
		b.Version = "devel"
	}
	if b.Commit == "" {
		b.Commit = "unknown"
	}
	return b
}

// RegisterBuildInfo publishes the dgc_build_info gauge (constant 1, with
// version/commit/goversion labels — the Prometheus idiom for joining build
// identity onto other series) into set. Idempotent per set.
func RegisterBuildInfo(set *obs.Set) BuildInfo {
	b := Build()
	reg := set.Labeled("build",
		obs.Label{Key: "version", Value: b.Version},
		obs.Label{Key: "commit", Value: b.Commit},
		obs.Label{Key: "goversion", Value: b.Go},
	)
	reg.Gauge("dgc_build_info", "Build identity of this binary; always 1, labels carry version and commit.").Set(1)
	return b
}
