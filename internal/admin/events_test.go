package admin

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dgc/internal/trace"
)

// journaledHandle is a fakeHandle that exposes an event journal.
type journaledHandle struct {
	fakeHandle
	log *trace.Log
}

func (j *journaledHandle) Journal() *trace.Log { return j.log }

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func decodeNDJSON(t *testing.T, body string) []EventJSON {
	t.Helper()
	var out []EventJSON
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var e EventJSON
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, e)
	}
	return out
}

func TestEventsEndpointSinceAndFilters(t *testing.T) {
	log := trace.New(16) // 16 is also the floor New imposes
	for i := 1; i <= 24; i++ {
		kind := trace.KindLGC
		if i%2 == 0 {
			kind = trace.KindCDMSent
		}
		log.EmitTraced("P1", kind, uint64(0xabc), "ev=%d", i)
	}
	s := NewServer(nil)
	s.AddNode(&journaledHandle{fakeHandle: fakeHandle{id: "P1"}, log: log})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Resume from seq 2: the ring retains 9..24, so events 3..8 were evicted
	// and the stream opens with a truncation marker carrying the exact count.
	resp, err := http.Get(srv.URL + "/api/v1/events?since=2")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if got := resp.Header.Get("Dgc-Journal-Head"); got != "24" {
		t.Errorf("Dgc-Journal-Head = %q, want 24", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	events := decodeNDJSON(t, body)
	if len(events) != 17 {
		t.Fatalf("got %d lines, want marker + 16 events:\n%s", len(events), body)
	}
	if events[0].Kind != "dropped" || events[0].Missed != 6 {
		t.Errorf("first line = %+v, want dropped marker with missed=6", events[0])
	}
	for i, e := range events[1:] {
		if want := uint64(9 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if events[1].Trace != fmt.Sprintf("%016x", 0xabc) {
		t.Errorf("trace id = %q", events[1].Trace)
	}

	// Kind filter keeps only cdm-sent (even seqs among the retained 9..24).
	resp, err = http.Get(srv.URL + "/api/v1/events?kind=cdm-sent")
	if err != nil {
		t.Fatal(err)
	}
	events = decodeNDJSON(t, readAll(t, resp))
	// since=0 with a truncated ring still reports the gap before filtering.
	if len(events) != 9 || events[0].Kind != "dropped" ||
		events[1].Seq != 10 || events[8].Seq != 24 {
		t.Errorf("kind filter got %+v", events)
	}

	// Unknown kind and malformed trace are 400s.
	for _, q := range []string{"?kind=wibble", "?trace=zz", "?since=x", "?timeout=-1s"} {
		resp, err := http.Get(srv.URL + "/api/v1/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestEventsEndpointFollowStreamsLive(t *testing.T) {
	log := trace.New(64)
	log.Emit("P1", trace.KindLGC, "before")
	s := NewServer(nil)
	s.AddNode(&journaledHandle{fakeHandle: fakeHandle{id: "P1"}, log: log})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/events?follow=true&timeout=5s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	// Backlog first.
	if !sc.Scan() {
		t.Fatal("no backlog line")
	}
	var e EventJSON
	if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Seq != 1 {
		t.Fatalf("backlog line = %s (err %v)", sc.Text(), err)
	}
	// Then live events, in order, exactly once.
	go func() {
		for i := 0; i < 3; i++ {
			log.Emit("P1", trace.KindDetectionEnd, "live")
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for want := uint64(2); want <= 4; want++ {
		if !sc.Scan() {
			t.Fatalf("stream ended before seq %d", want)
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Seq != want {
			t.Fatalf("live seq = %d, want %d (dup or gap)", e.Seq, want)
		}
	}
}

func TestEventsEndpointNoJournal(t *testing.T) {
	s := NewServer(nil)
	s.AddNode(&fakeHandle{id: "P1"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("status = %d, want 501", resp.StatusCode)
	}
}

func TestJournalMetricsAtScrape(t *testing.T) {
	log := trace.New(16)
	for i := 0; i < 20; i++ {
		log.Emit("P1", trace.KindLGC, "ev")
	}
	s := NewServer(nil)
	s.AddNode(&journaledHandle{fakeHandle: fakeHandle{id: "P1"}, log: log})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		`dgc_trace_events_emitted{node="P1"} 20`,
		`dgc_trace_events_ring_dropped{node="P1"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestPprofEnabled(t *testing.T) {
	cases := []struct {
		mode, addr string
		want       bool
	}{
		{"on", "0.0.0.0:9090", true},
		{"off", "127.0.0.1:9090", false},
		{"auto", "127.0.0.1:9090", true},
		{"auto", "localhost:9090", true},
		{"auto", ":9090", true},
		{"auto", "[::1]:9090", true},
		{"auto", "0.0.0.0:9090", false},
		{"auto", "10.1.2.3:9090", false},
	}
	for _, c := range cases {
		if got := PprofEnabled(c.mode, c.addr); got != c.want {
			t.Errorf("PprofEnabled(%q, %q) = %v, want %v", c.mode, c.addr, got, c.want)
		}
	}
}

func TestPprofServedWhenEnabled(t *testing.T) {
	s := NewServer(nil)
	s.EnablePprof()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d, want 200", resp.StatusCode)
	}
}
