package admin

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// AttachPprof registers the net/http/pprof handlers on mux. The binaries
// serve the admin API on their own ServeMux (never http.DefaultServeMux),
// so the profiler's self-registration in init() does not reach them; this
// wires the same handlers explicitly. CPU, heap, goroutine and the rest of
// the standard profiles become grabbable at /debug/pprof/ on the metrics
// address of a live cluster.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// PprofEnabled resolves the -pprof tri-state flag against the serve
// address: "on"/"off" are explicit, anything else ("auto") enables the
// profiler only when addr binds a loopback interface — profiles expose
// memory contents, so a non-loopback admin listener must opt in.
func PprofEnabled(mode, addr string) bool {
	switch mode {
	case "on", "true", "1":
		return true
	case "off", "false", "0":
		return false
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	if host == "" || strings.EqualFold(host, "localhost") {
		return true
	}
	if ip := net.ParseIP(host); ip != nil {
		return ip.IsLoopback()
	}
	return false
}
