package admin

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"dgc/internal/ids"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// FaultEndpoint layers operator-driven fault injection over a transport
// endpoint: outbound message loss (drop rate), outbound delivery delay, and
// bidirectional partitions from named peers (or from everyone). It is the
// mechanism behind `dgcctl inject delay|drop|partition` — chaos the paper's
// loss-tolerance claims can be exercised against on a live cluster, not just
// under the simulator's seeded fault fabric.
//
// The wrapped endpoint is swappable (setInner) so a supervisor can carry one
// FaultEndpoint — and the operator's standing fault configuration — across a
// kill/restart of the underlying socket. All fault decisions happen at this
// layer; the inner endpoint and the protocol stack above see only ordinary
// loss and latency, which they tolerate by design.
type FaultEndpoint struct {
	mu      sync.Mutex
	inner   transport.Endpoint
	h       transport.Handler
	rng     *rand.Rand
	drop    float64
	delay   time.Duration
	part    map[ids.NodeID]struct{}
	isolate bool
	gen     uint64 // bumped on every fault change; expiry timers check it

	dropped uint64 // messages discarded by drop rate or partition, both ways
	delayed uint64 // messages deferred by the delay injector
}

// FaultStatus is the JSON view of a FaultEndpoint's current configuration
// and cumulative effect, reported in the status API.
type FaultStatus struct {
	DropRate  float64  `json:"drop_rate,omitempty"`
	DelayMS   int64    `json:"delay_ms,omitempty"`
	Partition []string `json:"partition,omitempty"`
	Isolate   bool     `json:"isolate,omitempty"`
	Dropped   uint64   `json:"dropped_total"`
	Delayed   uint64   `json:"delayed_total"`
}

// Active reports whether any fault is currently injected.
func (st FaultStatus) Active() bool {
	return st.DropRate > 0 || st.DelayMS > 0 || len(st.Partition) > 0 || st.Isolate
}

// NewFaultEndpoint wraps inner (which may be nil until setInner). The seed
// drives the drop-rate coin only.
func NewFaultEndpoint(inner transport.Endpoint, seed int64) *FaultEndpoint {
	return &FaultEndpoint{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

var (
	_ transport.Endpoint = (*FaultEndpoint)(nil)
	_ transport.Stager   = (*FaultEndpoint)(nil)
)

// setInner swaps the wrapped endpoint (nil detaches), re-installing the
// delivery shim when a handler is registered. Fault configuration persists
// across the swap.
func (e *FaultEndpoint) setInner(inner transport.Endpoint) {
	e.mu.Lock()
	e.inner = inner
	h := e.h
	e.mu.Unlock()
	if inner != nil && h != nil {
		inner.SetHandler(e.deliver)
	}
}

func (e *FaultEndpoint) innerEP() transport.Endpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner
}

// Self implements transport.Endpoint.
func (e *FaultEndpoint) Self() ids.NodeID {
	if in := e.innerEP(); in != nil {
		return in.Self()
	}
	return ""
}

// Send implements transport.Endpoint, applying partition, drop-rate and
// delay injection on the outbound path. Dropped messages report success —
// exactly how real loss looks to a sender.
func (e *FaultEndpoint) Send(to ids.NodeID, msg wire.Message) error {
	e.mu.Lock()
	in := e.inner
	if in == nil {
		e.mu.Unlock()
		return nil
	}
	if e.blockedLocked(to) || (e.drop > 0 && e.rng.Float64() < e.drop) {
		e.dropped++
		e.mu.Unlock()
		return nil
	}
	d := e.delay
	if d > 0 {
		e.delayed++
	}
	e.mu.Unlock()
	if d > 0 {
		// Delayed delivery escapes any staging bracket; the protocol
		// tolerates the resulting reordering, which is the point of the fault.
		time.AfterFunc(d, func() { _ = in.Send(to, msg) })
		return nil
	}
	return in.Send(to, msg)
}

// SetHandler implements transport.Endpoint: the handler is wrapped so
// partitioned peers' inbound traffic is discarded at this layer.
func (e *FaultEndpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	e.h = h
	in := e.inner
	e.mu.Unlock()
	if in == nil {
		return
	}
	if h == nil {
		in.SetHandler(nil)
		return
	}
	in.SetHandler(e.deliver)
}

// deliver is the inbound shim: partition faults cut both directions.
func (e *FaultEndpoint) deliver(from ids.NodeID, msg wire.Message) []transport.Envelope {
	e.mu.Lock()
	h := e.h
	if e.blockedLocked(from) {
		e.dropped++
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(from, msg)
}

// AddPeer forwards a peer dial-address registration to the inner endpoint
// when it supports one (the TCP transport does). This is the path
// gossip-learned addresses take from the runtime through the fault layer to
// the socket's dial table.
func (e *FaultEndpoint) AddPeer(peer ids.NodeID, addr string) {
	if ap, ok := e.innerEP().(interface{ AddPeer(ids.NodeID, string) }); ok {
		ap.AddPeer(peer, addr)
	}
}

// Close implements transport.Endpoint.
func (e *FaultEndpoint) Close() error {
	if in := e.innerEP(); in != nil {
		return in.Close()
	}
	return nil
}

// BeginStage implements transport.Stager, delegating when the inner
// endpoint stages (the TCP transport) and no-opping otherwise.
func (e *FaultEndpoint) BeginStage() {
	if st, ok := e.innerEP().(transport.Stager); ok {
		st.BeginStage()
	}
}

// FlushStage implements transport.Stager.
func (e *FaultEndpoint) FlushStage() {
	if st, ok := e.innerEP().(transport.Stager); ok {
		st.FlushStage()
	}
}

func (e *FaultEndpoint) blockedLocked(peer ids.NodeID) bool {
	if e.isolate {
		return true
	}
	_, cut := e.part[peer]
	return cut
}

// SetDrop injects outbound message loss at the given rate (0..1). A non-zero
// ttl reverts the rate to zero after it elapses, unless reconfigured since.
func (e *FaultEndpoint) SetDrop(rate float64, ttl time.Duration) {
	e.mutate(ttl, func() { e.drop = rate }, func() { e.drop = 0 })
}

// SetDelay injects a fixed outbound delivery delay. A non-zero ttl reverts
// it, unless reconfigured since.
func (e *FaultEndpoint) SetDelay(d, ttl time.Duration) {
	e.mutate(ttl, func() { e.delay = d }, func() { e.delay = 0 })
}

// SetPartition cuts traffic to and from the named peers — or, when isolate
// is true (or the peer list is empty), from every peer. A non-zero ttl heals
// the partition after it elapses, unless reconfigured since.
func (e *FaultEndpoint) SetPartition(peers []ids.NodeID, isolate bool, ttl time.Duration) {
	e.mutate(ttl, func() {
		e.isolate = isolate || len(peers) == 0
		e.part = make(map[ids.NodeID]struct{}, len(peers))
		for _, p := range peers {
			e.part[p] = struct{}{}
		}
	}, func() {
		e.isolate = false
		e.part = nil
	})
}

// Heal clears every injected fault.
func (e *FaultEndpoint) Heal() {
	e.mutate(0, func() {
		e.drop = 0
		e.delay = 0
		e.part = nil
		e.isolate = false
	}, nil)
}

// mutate applies a fault change under the lock and, when ttl > 0, schedules
// revert — guarded by a generation counter so a newer injection is never
// clobbered by an older expiry.
func (e *FaultEndpoint) mutate(ttl time.Duration, apply, revert func()) {
	e.mu.Lock()
	apply()
	e.gen++
	gen := e.gen
	e.mu.Unlock()
	if ttl <= 0 || revert == nil {
		return
	}
	time.AfterFunc(ttl, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.gen == gen {
			revert()
			e.gen++
		}
	})
}

// FaultStatus returns the endpoint's current fault configuration and
// cumulative drop/delay counts.
func (e *FaultEndpoint) FaultStatus() FaultStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := FaultStatus{
		DropRate: e.drop,
		DelayMS:  e.delay.Milliseconds(),
		Isolate:  e.isolate,
		Dropped:  e.dropped,
		Delayed:  e.delayed,
	}
	for p := range e.part {
		st.Partition = append(st.Partition, string(p))
	}
	if len(st.Partition) > 1 {
		sort.Strings(st.Partition)
	}
	return st
}
