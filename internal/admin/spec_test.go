package admin

import (
	"strings"
	"testing"
	"time"
)

const sampleYAML = `
# three-node demo cluster
cluster:
  name: demo
  tick: 50ms
  detect_every: 4
  state_dir: /tmp/dgc-states
  demo_ring: garbage
  backpressure: true
nodes:
  - id: A
    listen: 127.0.0.1:7001
    admin: 127.0.0.1:9001
  - id: B
    detect_every: 0        # only forced detections
    batch_detect: false
  - id: C
    workers: 4
`

func TestParseClusterSpecYAML(t *testing.T) {
	spec, err := ParseClusterSpec([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || spec.DemoRing != "garbage" || spec.StateDir != "/tmp/dgc-states" {
		t.Errorf("cluster header = %+v", spec)
	}
	if len(spec.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(spec.Nodes))
	}
	if spec.Nodes[0].ID != "A" || spec.Nodes[0].Listen != "127.0.0.1:7001" || spec.Nodes[0].Admin != "127.0.0.1:9001" {
		t.Errorf("node A = %+v", spec.Nodes[0])
	}
	if len(spec.Warnings) != 1 || !strings.Contains(spec.Warnings[0], "workers") {
		t.Errorf("warnings = %v, want one about workers", spec.Warnings)
	}

	specs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	a, b := specs[0], specs[1]
	if a.Runtime.Tick != 50*time.Millisecond {
		t.Errorf("A tick = %v", a.Runtime.Tick)
	}
	if a.Runtime.DetectInterval != 200*time.Millisecond {
		t.Errorf("A detect interval = %v, want 200ms", a.Runtime.DetectInterval)
	}
	if b.Runtime.DetectInterval != 0 {
		t.Errorf("B detect interval = %v, want 0 (override)", b.Runtime.DetectInterval)
	}
	if !a.Runtime.Backpressure || !b.Runtime.Backpressure {
		t.Error("backpressure default did not propagate")
	}
	// Batched detection defaults ON for declarative clusters; the per-node
	// escape hatch turns it off.
	if a.Config.BatchDetection == nil || !*a.Config.BatchDetection {
		t.Error("A batch detection should default on")
	}
	if b.Config.BatchDetection == nil || *b.Config.BatchDetection {
		t.Error("B batch detection should honor the escape hatch")
	}
	if a.StateFile != "/tmp/dgc-states/A.state" {
		t.Errorf("A state file = %q", a.StateFile)
	}
	// dgc-node built-in defaults fill the rest.
	if a.Config.CandidateMinAge != 4 || a.Config.CallTimeoutTicks != 40 {
		t.Errorf("A config defaults = %+v", a.Config)
	}
	if a.Runtime.LGCInterval != 100*time.Millisecond {
		t.Errorf("A lgc interval = %v, want 100ms (2 ticks)", a.Runtime.LGCInterval)
	}
}

func TestParseClusterSpecJSON(t *testing.T) {
	jsonSpec := `{
	  "cluster": {"tick": "25ms", "batch_detect": false, "seed_objects": 2},
	  "nodes": [{"id": "X"}, {"id": "Y", "seed_objects": 0}]
	}`
	spec, err := ParseClusterSpec([]byte(jsonSpec))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Runtime.Tick != 25*time.Millisecond {
		t.Errorf("X tick = %v", specs[0].Runtime.Tick)
	}
	if specs[0].Config.BatchDetection == nil || *specs[0].Config.BatchDetection {
		t.Error("X batch detection should be off (cluster default false)")
	}
	if specs[0].SeedObjects != 2 || specs[1].SeedObjects != 0 {
		t.Errorf("seed objects = %d/%d, want 2/0", specs[0].SeedObjects, specs[1].SeedObjects)
	}
}

func TestParseClusterSpecErrors(t *testing.T) {
	cases := map[string]string{
		"unknown key":    "cluster:\n  wibble: 3\nnodes:\n  - id: A\n",
		"bad duration":   "cluster:\n  tick: fast\nnodes:\n  - id: A\n",
		"stray content":  "tick: 50ms\n",
		"field before -": "nodes:\n  id: A\n",
	}
	for name, text := range cases {
		if _, err := ParseClusterSpec([]byte(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
	// Structural errors surface at Resolve.
	for name, text := range map[string]string{
		"no nodes":     "cluster:\n  tick: 50ms\n",
		"duplicate id": "nodes:\n  - id: A\n  - id: A\n",
		"missing id":   "nodes:\n  - listen: 127.0.0.1:0\n",
		"bad ring":     "cluster:\n  demo_ring: pentagon\nnodes:\n  - id: A\n",
	} {
		spec, err := ParseClusterSpec([]byte(text))
		if err != nil {
			continue // also acceptable at parse time
		}
		if _, err := spec.Resolve(); err == nil {
			t.Errorf("%s: resolved %q", name, text)
		}
	}
}
