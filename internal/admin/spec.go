package admin

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"dgc/internal/ids"
	"dgc/internal/membership"
	"dgc/internal/node"
	"dgc/internal/snapshot"
)

// ClusterSpec is the declarative input to `dgcctl up`: cluster-wide collector
// settings plus one entry per node, each able to override any cluster
// setting. It is decoded from a YAML subset (or JSON) by ParseClusterSpec and
// turned into runnable NodeSpecs by Resolve.
type ClusterSpec struct {
	Name string
	// DemoRing seeds the canonical 3+-node demo topology: "none" (default),
	// "rooted" (an inter-node ring anchored by a root) or "garbage" (the same
	// ring unrooted — distributed cyclic garbage only the DCDA can reclaim).
	DemoRing string
	// StateDir, when set, gives every node a state file <dir>/<id>.state.
	StateDir string
	Defaults NodeSettings
	Nodes    []ClusterNode
	// Warnings collects accepted-but-ignored settings from parsing.
	Warnings []string
}

// ClusterNode is one node entry in a ClusterSpec.
type ClusterNode struct {
	ID     string
	Listen string // transport listen address (default 127.0.0.1:0)
	Admin  string // admin API listen address (default 127.0.0.1:0)
	NodeSettings
}

// NodeSettings are the per-node tunables of a cluster spec. Pointer fields
// distinguish "unset" (inherit the cluster default, then the built-in
// default) from an explicit zero (e.g. detect_every: 0 disables the
// detection daemon so only forced detections run).
type NodeSettings struct {
	Tick            *time.Duration
	LGCEvery        *uint64
	SnapshotEvery   *uint64
	DetectEvery     *uint64
	CandidateAge    *uint64
	CallTimeout     *uint64
	BatchDetect     *bool
	AggregateDetect *bool
	// Membership gates the elastic cluster directory (default on for live
	// clusters); the tick-denominated tuning knobs below inherit the
	// membership package defaults when unset.
	Membership      *bool
	GossipEvery     *uint64
	SuspectAfter    *uint64
	DeadAfter       *uint64
	LeaseTicks      *uint64
	BroadcastDelete *bool
	Backpressure    *bool
	CreditWindow    *int
	Mailbox         *int
	SeedObjects     *int
	Codec           *string
	SnapshotDir     *string
	StateFile       *string
	FaultSeed       *int64
}

// merge returns s with any unset field filled from base.
func (s NodeSettings) merge(base NodeSettings) NodeSettings {
	if s.Tick == nil {
		s.Tick = base.Tick
	}
	if s.LGCEvery == nil {
		s.LGCEvery = base.LGCEvery
	}
	if s.SnapshotEvery == nil {
		s.SnapshotEvery = base.SnapshotEvery
	}
	if s.DetectEvery == nil {
		s.DetectEvery = base.DetectEvery
	}
	if s.CandidateAge == nil {
		s.CandidateAge = base.CandidateAge
	}
	if s.CallTimeout == nil {
		s.CallTimeout = base.CallTimeout
	}
	if s.BatchDetect == nil {
		s.BatchDetect = base.BatchDetect
	}
	if s.AggregateDetect == nil {
		s.AggregateDetect = base.AggregateDetect
	}
	if s.Membership == nil {
		s.Membership = base.Membership
	}
	if s.GossipEvery == nil {
		s.GossipEvery = base.GossipEvery
	}
	if s.SuspectAfter == nil {
		s.SuspectAfter = base.SuspectAfter
	}
	if s.DeadAfter == nil {
		s.DeadAfter = base.DeadAfter
	}
	if s.LeaseTicks == nil {
		s.LeaseTicks = base.LeaseTicks
	}
	if s.BroadcastDelete == nil {
		s.BroadcastDelete = base.BroadcastDelete
	}
	if s.Backpressure == nil {
		s.Backpressure = base.Backpressure
	}
	if s.CreditWindow == nil {
		s.CreditWindow = base.CreditWindow
	}
	if s.Mailbox == nil {
		s.Mailbox = base.Mailbox
	}
	if s.SeedObjects == nil {
		s.SeedObjects = base.SeedObjects
	}
	if s.Codec == nil {
		s.Codec = base.Codec
	}
	if s.SnapshotDir == nil {
		s.SnapshotDir = base.SnapshotDir
	}
	if s.StateFile == nil {
		s.StateFile = base.StateFile
	}
	if s.FaultSeed == nil {
		s.FaultSeed = base.FaultSeed
	}
	return s
}

// Resolve turns the spec into one NodeSpec per entry, applying cluster
// defaults and the built-in dgc-node defaults (tick 250ms, lgc_every 2,
// snapshot_every 4, detect_every 4, candidate_age 4, call_timeout 40).
// Batched detection defaults ON for declarative clusters — `batch_detect:
// false` is the escape hatch. Peer maps are left empty: live clusters wire
// them after the ephemeral ports are known (Supervisor.AddPeer).
func (c *ClusterSpec) Resolve() ([]NodeSpec, error) {
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("cluster spec has no nodes")
	}
	switch c.DemoRing {
	case "", "none", "rooted", "garbage":
	default:
		return nil, fmt.Errorf("demo_ring %q: want none, rooted or garbage", c.DemoRing)
	}
	seen := make(map[string]bool, len(c.Nodes))
	specs := make([]NodeSpec, 0, len(c.Nodes))
	for _, cn := range c.Nodes {
		if cn.ID == "" {
			return nil, fmt.Errorf("cluster node without id")
		}
		if seen[cn.ID] {
			return nil, fmt.Errorf("duplicate node id %q", cn.ID)
		}
		seen[cn.ID] = true
		st := cn.NodeSettings.merge(c.Defaults)

		tick := 250 * time.Millisecond
		if st.Tick != nil {
			tick = *st.Tick
		}
		if tick <= 0 {
			return nil, fmt.Errorf("node %s: tick must be positive", cn.ID)
		}
		every := func(p *uint64, def uint64) uint64 {
			if p != nil {
				return *p
			}
			return def
		}
		spec := NodeSpec{
			ID:     ids.NodeID(cn.ID),
			Listen: cn.Listen,
			Peers:  map[ids.NodeID]string{},
		}
		spec.Config.CandidateMinAge = every(st.CandidateAge, 4)
		spec.Config.CallTimeoutTicks = every(st.CallTimeout, 40)
		spec.Config.BatchDetection = node.Bool(st.BatchDetect == nil || *st.BatchDetect)
		if st.AggregateDetect != nil && *st.AggregateDetect {
			spec.Config.AggregateDetection = true
			spec.Config.BatchDetection = node.Bool(true)
		}
		if st.Membership == nil || *st.Membership {
			spec.Config.Membership = &membership.Config{
				GossipEvery:  every(st.GossipEvery, 0),
				SuspectAfter: every(st.SuspectAfter, 0),
				DeadAfter:    every(st.DeadAfter, 0),
				LeaseTicks:   every(st.LeaseTicks, 0),
			}
		}
		if st.BroadcastDelete != nil {
			spec.Config.Detector.BroadcastDelete = *st.BroadcastDelete
		}
		if st.Codec != nil {
			switch *st.Codec {
			case "", "binary":
				spec.Config.Codec = snapshot.BinaryCodec{}
			case "reflect":
				spec.Config.Codec = snapshot.ReflectCodec{}
			default:
				return nil, fmt.Errorf("node %s: unknown codec %q", cn.ID, *st.Codec)
			}
		}
		if st.SnapshotDir != nil {
			spec.Config.SnapshotDir = *st.SnapshotDir
			if spec.Config.Codec == nil {
				spec.Config.Codec = snapshot.BinaryCodec{}
			}
		}
		spec.Runtime.Tick = tick
		spec.Runtime.LGCInterval = time.Duration(every(st.LGCEvery, 2)) * tick
		spec.Runtime.SnapshotInterval = time.Duration(every(st.SnapshotEvery, 4)) * tick
		spec.Runtime.DetectInterval = time.Duration(every(st.DetectEvery, 4)) * tick
		if st.Backpressure != nil {
			spec.Runtime.Backpressure = *st.Backpressure
		}
		if st.CreditWindow != nil {
			spec.Runtime.CreditWindow = *st.CreditWindow
		}
		if st.Mailbox != nil {
			spec.Runtime.Mailbox = *st.Mailbox
		}
		if st.SeedObjects != nil {
			spec.SeedObjects = *st.SeedObjects
		}
		if st.StateFile != nil {
			spec.StateFile = *st.StateFile
		} else if c.StateDir != "" {
			spec.StateFile = filepath.Join(c.StateDir, cn.ID+".state")
		}
		if st.FaultSeed != nil {
			spec.FaultSeed = *st.FaultSeed
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// ParseClusterSpec decodes a cluster spec from YAML-subset or JSON text
// (JSON when the first non-space byte is '{'). The YAML subset covers
// exactly what cluster files need — two top-level sections:
//
//	# comments and blank lines are ignored
//	cluster:
//	  tick: 50ms
//	  detect_every: 4
//	  batch_detect: true
//	  demo_ring: garbage
//	  state_dir: /tmp/dgc
//	nodes:
//	  - id: A
//	    listen: 127.0.0.1:7001
//	    admin: 127.0.0.1:9001
//	  - id: B
//	    detect_every: 0        # per-node override
//
// No nesting beyond these two levels, no flow syntax, no anchors. Scalars
// only; quotes around values are stripped.
func ParseClusterSpec(text []byte) (*ClusterSpec, error) {
	trimmed := strings.TrimSpace(string(text))
	if strings.HasPrefix(trimmed, "{") {
		return parseJSONSpec([]byte(trimmed))
	}
	cluster := map[string]string{}
	var nodes []map[string]string
	section := ""
	var nodeIndent int
	for ln, raw := range strings.Split(string(text), "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " \t"))
		body := strings.TrimSpace(line)
		if indent == 0 {
			switch {
			case body == "cluster:":
				section = "cluster"
			case body == "nodes:":
				section = "nodes"
			default:
				return nil, fmt.Errorf("line %d: expected 'cluster:' or 'nodes:', got %q", ln+1, body)
			}
			continue
		}
		switch section {
		case "cluster":
			k, v, err := splitKV(body, ln+1)
			if err != nil {
				return nil, err
			}
			cluster[k] = v
		case "nodes":
			if strings.HasPrefix(body, "- ") || body == "-" {
				nodes = append(nodes, map[string]string{})
				nodeIndent = indent
				body = strings.TrimSpace(strings.TrimPrefix(body, "-"))
				if body == "" {
					continue
				}
			} else if len(nodes) == 0 || indent <= nodeIndent {
				return nil, fmt.Errorf("line %d: node fields must follow a '- ' item", ln+1)
			}
			k, v, err := splitKV(body, ln+1)
			if err != nil {
				return nil, err
			}
			nodes[len(nodes)-1][k] = v
		default:
			return nil, fmt.Errorf("line %d: content before 'cluster:'/'nodes:' section", ln+1)
		}
	}
	return assembleSpec(cluster, nodes)
}

func splitKV(body string, line int) (string, string, error) {
	k, v, ok := strings.Cut(body, ":")
	if !ok {
		return "", "", fmt.Errorf("line %d: expected key: value, got %q", line, body)
	}
	v = strings.TrimSpace(v)
	v = strings.Trim(v, `"'`)
	return strings.TrimSpace(k), v, nil
}

// parseJSONSpec accepts the same shape as the YAML subset, as JSON:
// {"cluster": {...}, "nodes": [{...}, ...]}. Values may be JSON numbers,
// bools or strings; all are normalized to strings for the shared converter.
func parseJSONSpec(text []byte) (*ClusterSpec, error) {
	var doc struct {
		Cluster map[string]any   `json:"cluster"`
		Nodes   []map[string]any `json:"nodes"`
	}
	if err := json.Unmarshal(text, &doc); err != nil {
		return nil, fmt.Errorf("bad JSON cluster spec: %w", err)
	}
	norm := func(m map[string]any) map[string]string {
		out := make(map[string]string, len(m))
		for k, v := range m {
			switch t := v.(type) {
			case string:
				out[k] = t
			case bool:
				out[k] = strconv.FormatBool(t)
			case float64:
				out[k] = strconv.FormatFloat(t, 'f', -1, 64)
			default:
				out[k] = fmt.Sprint(v)
			}
		}
		return out
	}
	nodes := make([]map[string]string, 0, len(doc.Nodes))
	for _, n := range doc.Nodes {
		nodes = append(nodes, norm(n))
	}
	return assembleSpec(norm(doc.Cluster), nodes)
}

func assembleSpec(cluster map[string]string, nodes []map[string]string) (*ClusterSpec, error) {
	spec := &ClusterSpec{}
	if v, ok := cluster["name"]; ok {
		spec.Name = v
		delete(cluster, "name")
	}
	if v, ok := cluster["demo_ring"]; ok {
		spec.DemoRing = v
		delete(cluster, "demo_ring")
	}
	if v, ok := cluster["state_dir"]; ok {
		spec.StateDir = v
		delete(cluster, "state_dir")
	}
	var err error
	spec.Defaults, spec.Warnings, err = settingsFrom(cluster, "cluster")
	if err != nil {
		return nil, err
	}
	for _, nm := range nodes {
		cn := ClusterNode{}
		if v, ok := nm["id"]; ok {
			cn.ID = v
			delete(nm, "id")
		}
		if v, ok := nm["listen"]; ok {
			cn.Listen = v
			delete(nm, "listen")
		}
		if v, ok := nm["admin"]; ok {
			cn.Admin = v
			delete(nm, "admin")
		}
		var warns []string
		cn.NodeSettings, warns, err = settingsFrom(nm, "node "+cn.ID)
		if err != nil {
			return nil, err
		}
		spec.Warnings = append(spec.Warnings, warns...)
		spec.Nodes = append(spec.Nodes, cn)
	}
	return spec, nil
}

// settingsFrom converts a flat key/value map into NodeSettings. Unknown keys
// are errors; recognized-but-reserved keys (workers) become warnings.
func settingsFrom(m map[string]string, where string) (NodeSettings, []string, error) {
	var s NodeSettings
	var warns []string
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := m[k]
		var err error
		switch k {
		case "tick":
			var d time.Duration
			if d, err = time.ParseDuration(v); err == nil {
				s.Tick = &d
			}
		case "lgc_every":
			s.LGCEvery, err = parseU64(v)
		case "snapshot_every":
			s.SnapshotEvery, err = parseU64(v)
		case "detect_every":
			s.DetectEvery, err = parseU64(v)
		case "candidate_age":
			s.CandidateAge, err = parseU64(v)
		case "call_timeout":
			s.CallTimeout, err = parseU64(v)
		case "batch_detect":
			s.BatchDetect, err = parseBool(v)
		case "aggregate_detect":
			s.AggregateDetect, err = parseBool(v)
		case "membership":
			s.Membership, err = parseBool(v)
		case "gossip_every":
			s.GossipEvery, err = parseU64(v)
		case "suspect_after":
			s.SuspectAfter, err = parseU64(v)
		case "dead_after":
			s.DeadAfter, err = parseU64(v)
		case "lease_ticks":
			s.LeaseTicks, err = parseU64(v)
		case "broadcast_delete":
			s.BroadcastDelete, err = parseBool(v)
		case "backpressure":
			s.Backpressure, err = parseBool(v)
		case "credit_window":
			s.CreditWindow, err = parseInt(v)
		case "mailbox":
			s.Mailbox, err = parseInt(v)
		case "seed_objects":
			s.SeedObjects, err = parseInt(v)
		case "codec":
			s.Codec = &v
		case "snapshot_dir":
			s.SnapshotDir = &v
		case "state_file":
			s.StateFile = &v
		case "fault_seed":
			var n int64
			if n, err = strconv.ParseInt(v, 10, 64); err == nil {
				s.FaultSeed = &n
			}
		case "workers":
			// Reserved: per-node worker pools apply to the sharded simulator,
			// not the live mailbox runtime. Accepted so specs stay portable.
			warns = append(warns, fmt.Sprintf("%s: 'workers' is reserved and ignored for live clusters", where))
		default:
			return s, warns, fmt.Errorf("%s: unknown setting %q", where, k)
		}
		if err != nil {
			return s, warns, fmt.Errorf("%s: %s: %v", where, k, err)
		}
	}
	return s, warns, nil
}

func parseU64(v string) (*uint64, error) {
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return nil, err
	}
	return &n, nil
}

func parseInt(v string) (*int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return nil, err
	}
	return &n, nil
}

func parseBool(v string) (*bool, error) {
	b, err := strconv.ParseBool(v)
	if err != nil {
		return nil, err
	}
	return &b, nil
}
