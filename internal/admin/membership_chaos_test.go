package admin

import (
	"testing"
	"time"

	"dgc/internal/ids"
	"dgc/internal/membership"
	"dgc/internal/node"
)

// Membership chaos: repeated partitions, all shorter than the
// suspect+dead+lease reclamation horizon, injected through the operator
// FaultEndpoint while a live rooted reference mesh is up. The property under
// test is the lease-safety half of DESIGN.md §14: transient silence — even
// adversarially timed, even bidirectional — must never reclaim a scion whose
// holder is still alive. Run under -race this also shakes out the
// supervisor/runtime/gossip locking.

func startMemberTrio(t *testing.T) []*Supervisor {
	t.Helper()
	names := []ids.NodeID{"A", "B", "C"}
	mc := &membership.Config{
		GossipEvery:  2,
		SuspectAfter: 8,
		DeadAfter:    8,
		LeaseTicks:   400, // reclamation horizon far beyond any injected partition
	}
	sups := make([]*Supervisor, 0, len(names))
	for _, n := range names {
		cfg := node.Config{CallTimeoutTicks: 400, CandidateMinAge: 2}
		cfg.Membership = mc
		sup, err := StartNode(NodeSpec{
			ID:     n,
			Config: cfg,
			Runtime: node.RuntimeConfig{
				Tick:             5 * time.Millisecond,
				LGCInterval:      10 * time.Millisecond,
				SnapshotInterval: 20 * time.Millisecond,
				DetectInterval:   20 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = sup.Stop() })
		sups = append(sups, sup)
	}
	for _, a := range sups {
		for _, b := range sups {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}
	return sups
}

// linkRooted makes from's rooted anchor hold a reference to to's rooted
// anchor: a live remote reference whose scion must survive any chaos.
func linkRooted(t *testing.T, from, to *Supervisor) {
	t.Helper()
	var holder, target ids.ObjID
	if err := from.Runtime().With(func(m node.Mutator) {
		holder = m.Alloc(nil)
		if err := m.Root(holder); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := to.Runtime().With(func(m node.Mutator) {
		target = m.Alloc(nil)
		if err := m.Root(target); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	ref := ids.GlobalRef{Node: to.ID(), Obj: target}
	if err := from.Runtime().AcquireRemote(ref, func(m node.Mutator, ok bool) {
		if !ok {
			done <- node.ErrRuntimeClosed
			return
		}
		done <- m.Store(holder, ref)
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("linking %s -> %s timed out", from.ID(), to.ID())
	}
}

func chaosWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMembershipChaosShortPartitionsNeverReclaim(t *testing.T) {
	sups := startMemberTrio(t)
	a, b, c := sups[0], sups[1], sups[2]

	// Ring of live references: every node both holds and hosts one.
	linkRooted(t, a, b)
	linkRooted(t, b, c)
	linkRooted(t, c, a)
	scions := func(s *Supervisor) int {
		rt := s.Runtime()
		if rt == nil {
			return -1
		}
		return rt.NumScions()
	}
	for _, s := range sups {
		if got := scions(s); got != 1 {
			t.Fatalf("%s scions = %d before chaos, want 1", s.ID(), got)
		}
	}
	allAlive := func() bool {
		for _, s := range sups {
			rt := s.Runtime()
			if rt == nil {
				return false
			}
			ms := rt.Members()
			if len(ms) != 3 {
				return false
			}
			for _, m := range ms {
				if m.State != membership.Alive {
					return false
				}
			}
		}
		return true
	}
	chaosWait(t, "initial all-alive convergence", allAlive)

	// Chaos: each round isolates one node for 150ms — long enough for
	// suspicion (8 ticks * 5ms = 40ms) but a tiny fraction of the 2s lease
	// horizon — then heals and lets gossip recover before the next round.
	for round := 0; round < 6; round++ {
		victim := sups[round%3]
		victim.Faults().SetPartition(nil, true, 150*time.Millisecond)
		time.Sleep(200 * time.Millisecond)
		for _, s := range sups {
			if got := scions(s); got != 1 {
				t.Fatalf("round %d: %s scions = %d — live reference reclaimed during a short partition", round, s.ID(), got)
			}
		}
	}
	for _, s := range sups {
		s.Faults().Heal()
	}

	// Every view converges back to all-alive and every live reference is
	// intact: zero false reclamations.
	chaosWait(t, "post-chaos all-alive convergence", allAlive)
	for _, s := range sups {
		if got := scions(s); got != 1 {
			t.Fatalf("%s scions = %d after chaos, want 1", s.ID(), got)
		}
		if got := s.Runtime().NumObjects(); got != 2 {
			t.Fatalf("%s objects = %d after chaos, want 2", s.ID(), got)
		}
	}
}
