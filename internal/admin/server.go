package admin

import (
	"crypto/subtle"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/membership"
	"dgc/internal/node"
	"dgc/internal/obs"
	"dgc/internal/trace"
)

// SchemaVersion is the version of every JSON payload the admin API serves
// (including /debug/dgc). It increments whenever a field changes meaning or
// disappears; additions are backward compatible and do not bump it.
const SchemaVersion = 1

// Handle is the per-node surface the admin server operates on. Both drivers
// satisfy it (*node.Node, *node.LiveRuntime), as does *Supervisor — which
// additionally implements the optional capability interfaces below.
type Handle interface {
	ID() ids.NodeID
	Stats() node.Stats
	DebugSnapshot() node.DebugSnapshot
	TableDump() node.TableDump
	RunDetection() int
	Summarize() error
	ForceDetect(candidate ids.RefID) (node.ForceDetectResult, error)
	Save() ([]byte, error)
}

// Statuser optionally reports process-level state ("running"/"down") and the
// node's transport address. Supervisors implement it; bare drivers don't.
type Statuser interface {
	State() string
	Addr() string
}

// FaultController optionally exposes fault injection. Implemented by
// *Supervisor (via its FaultEndpoint).
type FaultController interface {
	Faults() *FaultEndpoint
}

// Killer optionally supports crash/restart chaos.
type Killer interface {
	Kill(recoverAfter time.Duration) error
	Restart() error
}

// Restorer optionally supports replacing the node's collector state.
type Restorer interface {
	RestoreState(data []byte) error
}

// LGCRunner optionally supports forcing a local collection. (Split from
// Handle so the interface stays satisfiable by test fakes that don't model
// local GC.)
type LGCRunner interface {
	RunLGC() lgc.Result
}

// MemberLister optionally exposes the node's view of the elastic membership
// directory (nil when Config.Membership is off).
type MemberLister interface {
	Members() []membership.Member
}

// Joiner optionally supports seeding a new cluster member into the node's
// directory and transport dial table.
type Joiner interface {
	Join(peer ids.NodeID, addr string) error
}

// Drainer optionally supports voluntary departure: the node migrates its
// exported references before declaring itself dead.
type Drainer interface {
	Drain() error
}

// Server is the unified admin control plane: one HTTP surface per process
// exposing every hosted node's status, tables, in-flight detections, forced
// actions, snapshots and fault injection as a versioned JSON API. It replaces
// the per-binary /metrics + /debug/dgc wiring that cmd/dgc-node, cmd/dgc-sim
// and examples/tcpcluster each duplicated.
type Server struct {
	set   *obs.Set
	build BuildInfo
	pprof bool
	token string

	mu    sync.Mutex
	nodes map[string]Handle
	order []string
}

// SetToken enables bearer-token authentication: every /api/v1/* and /debug/*
// request must carry "Authorization: Bearer <token>" or is answered 401.
// /metrics stays open — Prometheus scrape configs rarely send auth headers
// and the exposition carries no mutating capability. An empty token leaves
// the API open. Call before Handler.
func (s *Server) SetToken(token string) { s.token = token }

// EnablePprof makes Handler also serve the net/http/pprof profiles at
// /debug/pprof/. Call before Handler; see PprofEnabled for the flag policy.
func (s *Server) EnablePprof() { s.pprof = true }

// NewServer creates a server over the given metrics set (a fresh set when
// nil) and publishes the dgc_build_info gauge into it.
func NewServer(set *obs.Set) *Server {
	if set == nil {
		set = obs.NewSet()
	}
	return &Server{
		set:   set,
		build: RegisterBuildInfo(set),
		nodes: make(map[string]Handle),
	}
}

// AddNode registers a node with the server. Safe before or after Handler is
// serving.
func (s *Server) AddNode(h Handle) {
	id := string(h.ID())
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.nodes[id]; !dup {
		s.order = append(s.order, id)
	}
	s.nodes[id] = h
}

// Metrics returns the server's metrics set.
func (s *Server) Metrics() *obs.Set { return s.set }

func (s *Server) handles() []Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Handle, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.nodes[id])
	}
	return out
}

// pick resolves the ?node= selector: required only when the server hosts
// more than one node.
func (s *Server) pick(r *http.Request) (Handle, error) {
	want := r.URL.Query().Get("node")
	s.mu.Lock()
	defer s.mu.Unlock()
	if want == "" {
		if len(s.order) == 1 {
			return s.nodes[s.order[0]], nil
		}
		return nil, fmt.Errorf("?node= is required (hosting %d nodes)", len(s.order))
	}
	h, ok := s.nodes[want]
	if !ok {
		return nil, fmt.Errorf("unknown node %q", want)
	}
	return h, nil
}

// NodeStatus is one node's row in the /api/v1/status payload.
type NodeStatus struct {
	Node    string `json:"node"`
	State   string `json:"state"` // "running" or "down" ("running" for bare drivers)
	Addr    string `json:"addr,omitempty"`
	Clock   uint64 `json:"clock"`
	Objects int    `json:"objects"`
	Scions  int    `json:"scions"`
	Stubs   int    `json:"stubs"`

	ObjectsSwept uint64 `json:"objects_swept"`
	LGCRuns      uint64 `json:"lgc_runs"`

	Detections DetectionStats     `json:"detections"`
	Mailbox    *node.MailboxStats `json:"mailbox,omitempty"`
	Faults     *FaultStatus       `json:"faults,omitempty"`
}

// DetectionStats summarizes one node's detector counters for the status API.
type DetectionStats struct {
	Started     uint64 `json:"started"`
	CyclesFound uint64 `json:"cycles_found"`
	Aborted     uint64 `json:"aborted"`
	CDMsSent    uint64 `json:"cdms_sent"`
	ScionsFreed uint64 `json:"scions_freed"`
	Inflight    int    `json:"inflight"`
}

// StatusReply is the /api/v1/status payload.
type StatusReply struct {
	SchemaVersion int                   `json:"schema_version"`
	Build         BuildInfo             `json:"build"`
	Nodes         map[string]NodeStatus `json:"nodes"`
}

func statusOf(h Handle) NodeStatus {
	st := NodeStatus{Node: string(h.ID()), State: "running"}
	if ss, ok := h.(Statuser); ok {
		st.State = ss.State()
		st.Addr = ss.Addr()
	}
	snap := h.DebugSnapshot()
	stats := h.Stats()
	st.Clock = snap.Clock
	st.Objects = snap.Objects
	st.Scions = snap.Scions
	st.Stubs = snap.Stubs
	st.ObjectsSwept = stats.ObjectsSwept
	st.LGCRuns = stats.LGCRuns
	st.Detections = DetectionStats{
		Started:     stats.Detector.Started,
		CyclesFound: stats.Detector.CyclesFound,
		Aborted:     stats.Detector.Aborted,
		CDMsSent:    stats.Detector.CDMsSent,
		ScionsFreed: stats.Detector.ScionsFreed,
		Inflight:    len(snap.InflightDetections),
	}
	st.Mailbox = snap.Mailbox
	if fc, ok := h.(FaultController); ok {
		fs := fc.Faults().FaultStatus()
		if fs.Active() || fs.Dropped > 0 || fs.Delayed > 0 {
			st.Faults = &fs
		}
	}
	return st
}

// DebugReply is the versioned /debug/dgc payload: the same per-node
// DebugSnapshot the endpoint always served, now inside a schema_version
// envelope keyed by node id.
type DebugReply struct {
	SchemaVersion int                           `json:"schema_version"`
	Nodes         map[string]node.DebugSnapshot `json:"nodes"`
}

// DetectionsReply is the /api/v1/detections payload.
type DetectionsReply struct {
	SchemaVersion int                                 `json:"schema_version"`
	Nodes         map[string][]node.InflightDetection `json:"nodes"`
}

// DetectReply is the /api/v1/detect payload. With a scion, Result carries the
// forced detection; without, Started counts the detections launched by a full
// candidate round.
type DetectReply struct {
	SchemaVersion int                     `json:"schema_version"`
	Node          string                  `json:"node"`
	Started       int                     `json:"started"`
	Result        *node.ForceDetectResult `json:"result,omitempty"`
}

// SnapshotReply is the /api/v1/snapshot payload.
type SnapshotReply struct {
	SchemaVersion int    `json:"schema_version"`
	Node          string `json:"node"`
	Bytes         int    `json:"bytes"`
	State         string `json:"state"` // base64 of the durable collector state
}

// InjectRequest is the /api/v1/inject body.
type InjectRequest struct {
	// Action is one of kill, restart, delay, drop, partition, heal.
	Action string `json:"action"`
	// Rate is the drop probability for action=drop.
	Rate float64 `json:"rate,omitempty"`
	// Delay is the injected latency for action=delay (Go duration string).
	Delay string `json:"delay,omitempty"`
	// Peers names the partitioned peers for action=partition (empty = all).
	Peers []string `json:"peers,omitempty"`
	// For bounds delay/drop/partition faults (Go duration string; empty =
	// until healed).
	For string `json:"for,omitempty"`
	// Recover schedules self-restart after action=kill (empty = stay down).
	Recover string `json:"recover,omitempty"`
}

// MemberInfo is one directory record in the /api/v1/members payload.
type MemberInfo struct {
	Node        string `json:"node"`
	Addr        string `json:"addr,omitempty"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// MembersReply is the /api/v1/members payload: each hosted node's view of the
// membership directory. Views can disagree transiently — that divergence is
// exactly what the endpoint exists to observe.
type MembersReply struct {
	SchemaVersion int                     `json:"schema_version"`
	Nodes         map[string][]MemberInfo `json:"nodes"`
}

// JoinRequest is the /api/v1/join body: the new member's name and transport
// dial address, seeded into every hosted node's directory.
type JoinRequest struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
}

func memberInfos(ms []membership.Member) []MemberInfo {
	out := make([]MemberInfo, 0, len(ms))
	for _, m := range ms {
		out = append(out, MemberInfo{
			Node:        string(m.Node),
			Addr:        m.Addr,
			State:       m.State.String(),
			Incarnation: m.Incarnation,
		})
	}
	return out
}

// Handler returns the admin API:
//
//	GET  /metrics             Prometheus text exposition
//	GET  /debug/dgc           versioned per-node debug snapshots
//	GET  /api/v1/status       cluster status: build, per-node state/counters
//	GET  /api/v1/tables       one node's scion/stub tables (?node=)
//	GET  /api/v1/detections   in-flight detections with trace ids
//	GET  /api/v1/members      per-node membership directory views
//	GET  /api/v1/events       journal event stream, NDJSON (?since=&kind=&trace=&follow=)
//	POST /api/v1/join         seed a new member {node, addr} into every hosted node
//	POST /api/v1/drain        start one node's voluntary departure (?node=)
//	POST /api/v1/detect       force detection round, or one scion (&scion=)
//	POST /api/v1/lgc          force a local collection
//	POST /api/v1/summarize    force a summary rebuild
//	POST /api/v1/snapshot     serialize durable state (base64)
//	POST /api/v1/restore      replace durable state (base64 body)
//	POST /api/v1/inject       fault injection (kill/restart/delay/drop/partition/heal)
//
// Every JSON payload carries schema_version. Errors are {"error": "..."}.
// With SetToken, /api/v1/* and /debug/* require a bearer token; /metrics
// stays open.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	if s.pprof {
		AttachPprof(mux)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.syncJournalMetrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.set.WriteText(w)
	})
	mux.HandleFunc("/debug/dgc", func(w http.ResponseWriter, r *http.Request) {
		reply := DebugReply{SchemaVersion: SchemaVersion, Nodes: make(map[string]node.DebugSnapshot)}
		for _, h := range s.handles() {
			reply.Nodes[string(h.ID())] = h.DebugSnapshot()
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("/api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		reply := StatusReply{SchemaVersion: SchemaVersion, Build: s.build, Nodes: make(map[string]NodeStatus)}
		for _, h := range s.handles() {
			reply.Nodes[string(h.ID())] = statusOf(h)
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("/api/v1/tables", func(w http.ResponseWriter, r *http.Request) {
		h, err := s.pick(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			SchemaVersion int `json:"schema_version"`
			node.TableDump
		}{SchemaVersion, h.TableDump()})
	})
	mux.HandleFunc("/api/v1/detections", func(w http.ResponseWriter, r *http.Request) {
		reply := DetectionsReply{SchemaVersion: SchemaVersion, Nodes: make(map[string][]node.InflightDetection)}
		for _, h := range s.handles() {
			reply.Nodes[string(h.ID())] = h.DebugSnapshot().InflightDetections
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("/api/v1/detect", s.post(func(w http.ResponseWriter, r *http.Request) {
		h, err := s.pick(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		reply := DetectReply{SchemaVersion: SchemaVersion, Node: string(h.ID())}
		if scion := r.URL.Query().Get("scion"); scion != "" {
			ref, err := ParseRefID(scion)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			res, err := h.ForceDetect(ref)
			if err != nil {
				writeErr(w, http.StatusUnprocessableEntity, err)
				return
			}
			reply.Result = &res
			if res.Outcome == "forwarded" {
				reply.Started = 1
			}
		} else {
			reply.Started = h.RunDetection()
		}
		writeJSON(w, http.StatusOK, reply)
	}))
	mux.HandleFunc("/api/v1/lgc", s.post(func(w http.ResponseWriter, r *http.Request) {
		h, err := s.pick(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		runner, ok := h.(LGCRunner)
		if !ok {
			writeErr(w, http.StatusNotImplemented, errors.New("node does not support forced LGC"))
			return
		}
		res := runner.RunLGC()
		writeJSON(w, http.StatusOK, struct {
			SchemaVersion int    `json:"schema_version"`
			Node          string `json:"node"`
			Swept         int    `json:"swept"`
			Live          int    `json:"live"`
			StubsCreated  int    `json:"stubs_created"`
			StubsDeleted  int    `json:"stubs_deleted"`
		}{SchemaVersion, string(h.ID()), res.Swept, res.Live, res.StubsCreated, res.StubsDeleted})
	}))
	mux.HandleFunc("/api/v1/summarize", s.post(func(w http.ResponseWriter, r *http.Request) {
		h, err := s.pick(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := h.Summarize(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			SchemaVersion int    `json:"schema_version"`
			Node          string `json:"node"`
			OK            bool   `json:"ok"`
		}{SchemaVersion, string(h.ID()), true})
	}))
	mux.HandleFunc("/api/v1/snapshot", s.post(func(w http.ResponseWriter, r *http.Request) {
		h, err := s.pick(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		data, err := h.Save()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, SnapshotReply{
			SchemaVersion: SchemaVersion,
			Node:          string(h.ID()),
			Bytes:         len(data),
			State:         base64.StdEncoding.EncodeToString(data),
		})
	}))
	mux.HandleFunc("/api/v1/restore", s.post(func(w http.ResponseWriter, r *http.Request) {
		h, err := s.pick(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		rs, ok := h.(Restorer)
		if !ok {
			writeErr(w, http.StatusNotImplemented, errors.New("node does not support state restore"))
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		data, err := base64.StdEncoding.DecodeString(strings.TrimSpace(string(body)))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("body must be base64 state: %w", err))
			return
		}
		if err := rs.RestoreState(data); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			SchemaVersion int    `json:"schema_version"`
			Node          string `json:"node"`
			OK            bool   `json:"ok"`
			Bytes         int    `json:"bytes"`
		}{SchemaVersion, string(h.ID()), true, len(data)})
	}))
	mux.HandleFunc("/api/v1/events", s.handleEvents)
	mux.HandleFunc("/api/v1/inject", s.post(s.handleInject))
	mux.HandleFunc("/api/v1/members", s.handleMembers)
	mux.HandleFunc("/api/v1/join", s.post(s.handleJoin))
	mux.HandleFunc("/api/v1/drain", s.post(s.handleDrain))
	if s.token == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.authorized(r) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="dgc-admin"`)
			writeErr(w, http.StatusUnauthorized, errors.New("missing or invalid bearer token"))
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// authorized checks the request's bearer token against the configured one.
// Only /api/v1/* and /debug/* are gated; everything else (i.e. /metrics)
// passes.
func (s *Server) authorized(r *http.Request) bool {
	p := r.URL.Path
	if !strings.HasPrefix(p, "/api/v1/") && !strings.HasPrefix(p, "/debug/") {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(s.token)) == 1
}

func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	reply := MembersReply{SchemaVersion: SchemaVersion, Nodes: make(map[string][]MemberInfo)}
	for _, h := range s.handles() {
		ml, ok := h.(MemberLister)
		if !ok {
			continue
		}
		if ms := ml.Members(); ms != nil {
			reply.Nodes[string(h.ID())] = memberInfos(ms)
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad join body: %w", err))
		return
	}
	if req.Node == "" || req.Addr == "" {
		writeErr(w, http.StatusBadRequest, errors.New("join needs node and addr"))
		return
	}
	// Seed the newcomer into every hosted node; gossip spreads it from there.
	seeded := make([]string, 0, 4)
	var firstErr error
	for _, h := range s.handles() {
		j, ok := h.(Joiner)
		if !ok {
			continue
		}
		if err := j.Join(ids.NodeID(req.Node), req.Addr); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", h.ID(), err)
			}
			continue
		}
		seeded = append(seeded, string(h.ID()))
	}
	if len(seeded) == 0 {
		if firstErr != nil {
			writeErr(w, http.StatusConflict, firstErr)
		} else {
			writeErr(w, http.StatusNotImplemented, errors.New("no hosted node supports membership join"))
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion int      `json:"schema_version"`
		Node          string   `json:"node"`
		Addr          string   `json:"addr"`
		SeededInto    []string `json:"seeded_into"`
	}{SchemaVersion, req.Node, req.Addr, seeded})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	h, err := s.pick(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d, ok := h.(Drainer)
	if !ok {
		writeErr(w, http.StatusNotImplemented, errors.New("node does not support drain"))
		return
	}
	if err := d.Drain(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion int    `json:"schema_version"`
		Node          string `json:"node"`
		Draining      bool   `json:"draining"`
	}{SchemaVersion, string(h.ID()), true})
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	h, err := s.pick(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req InjectRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad inject body: %w", err))
		return
	}
	ttl, err := optionalDuration(req.For)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	faults := func() (*FaultEndpoint, bool) {
		fc, ok := h.(FaultController)
		if !ok {
			writeErr(w, http.StatusNotImplemented, errors.New("node does not support fault injection"))
			return nil, false
		}
		return fc.Faults(), true
	}
	switch req.Action {
	case "kill":
		k, ok := h.(Killer)
		if !ok {
			writeErr(w, http.StatusNotImplemented, errors.New("node does not support kill"))
			return
		}
		recoverAfter, err := optionalDuration(req.Recover)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := k.Kill(recoverAfter); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
	case "restart":
		k, ok := h.(Killer)
		if !ok {
			writeErr(w, http.StatusNotImplemented, errors.New("node does not support restart"))
			return
		}
		if err := k.Restart(); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
	case "delay":
		f, ok := faults()
		if !ok {
			return
		}
		d, err := optionalDuration(req.Delay)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		f.SetDelay(d, ttl)
	case "drop":
		f, ok := faults()
		if !ok {
			return
		}
		if req.Rate < 0 || req.Rate > 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("rate %v outside [0,1]", req.Rate))
			return
		}
		f.SetDrop(req.Rate, ttl)
	case "partition":
		f, ok := faults()
		if !ok {
			return
		}
		peers := make([]ids.NodeID, 0, len(req.Peers))
		for _, p := range req.Peers {
			peers = append(peers, ids.NodeID(p))
		}
		f.SetPartition(peers, len(peers) == 0, ttl)
	case "heal":
		f, ok := faults()
		if !ok {
			return
		}
		f.Heal()
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown action %q", req.Action))
		return
	}
	// Journal the fault action so event timelines show operator-induced
	// chaos next to the protocol's reaction. Kill/restart are journaled by
	// the supervisor itself (covering timed auto-recovery, which never
	// passes through this handler).
	if req.Action != "kill" && req.Action != "restart" {
		if j, ok := h.(Journaler); ok && j.Journal() != nil {
			detail := "action=" + req.Action
			if req.Rate > 0 {
				detail += fmt.Sprintf(" rate=%.2f", req.Rate)
			}
			if req.Delay != "" {
				detail += " delay=" + req.Delay
			}
			if len(req.Peers) > 0 {
				detail += " peers=" + strings.Join(req.Peers, "+")
			}
			if req.For != "" {
				detail += " for=" + req.For
			}
			j.Journal().Emit(h.ID(), trace.KindFault, "%s", detail)
		}
	}
	reply := struct {
		SchemaVersion int          `json:"schema_version"`
		Node          string       `json:"node"`
		Action        string       `json:"action"`
		State         string       `json:"state"`
		Faults        *FaultStatus `json:"faults,omitempty"`
	}{SchemaVersion: SchemaVersion, Node: string(h.ID()), Action: req.Action, State: "running"}
	if ss, ok := h.(Statuser); ok {
		reply.State = ss.State()
	}
	if fc, ok := h.(FaultController); ok {
		fs := fc.Faults().FaultStatus()
		reply.Faults = &fs
	}
	writeJSON(w, http.StatusOK, reply)
}

// post gates a handler to the POST method.
func (s *Server) post(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		fn(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func optionalDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	return d, nil
}

// ParseRefID parses the canonical "SRC->OBJ@NODE" rendering (the Ref field
// of table dumps) back into an ids.RefID.
func ParseRefID(s string) (ids.RefID, error) {
	src, rest, ok := strings.Cut(s, "->")
	if !ok {
		return ids.RefID{}, fmt.Errorf("bad ref %q: want SRC->OBJ@NODE", s)
	}
	objStr, nodeStr, ok := strings.Cut(rest, "@")
	if !ok || src == "" || nodeStr == "" {
		return ids.RefID{}, fmt.Errorf("bad ref %q: want SRC->OBJ@NODE", s)
	}
	obj, err := strconv.ParseUint(objStr, 10, 64)
	if err != nil {
		return ids.RefID{}, fmt.Errorf("bad ref %q: object id: %w", s, err)
	}
	return ids.RefID{
		Src: ids.NodeID(src),
		Dst: ids.GlobalRef{Node: ids.NodeID(nodeStr), Obj: ids.ObjID(obj)},
	}, nil
}

// NodeIDs returns the server's hosted node ids, sorted.
func (s *Server) NodeIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.order...)
	sort.Strings(out)
	return out
}
