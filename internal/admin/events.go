package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dgc/internal/trace"
)

// Journaler is the optional capability of handles that expose the node's
// event journal. Both drivers and *Supervisor implement it; a nil Journal
// means tracing is not configured on that node.
type Journaler interface {
	Journal() *trace.Log
}

// EventJSON is one /api/v1/events NDJSON line: a journal event, or a
// truncation marker (kind "dropped", seq 0) telling a resuming consumer how
// many events the ring evicted before its ?since= position.
type EventJSON struct {
	Node   string `json:"node"`
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Trace  string `json:"trace,omitempty"` // %016x causal trace id, omitted when 0
	TS     string `json:"ts,omitempty"`    // RFC3339Nano wall-clock stamp
	Detail string `json:"detail"`
	// Missed is set on truncation markers: events evicted before the resume
	// point that this stream can never replay.
	Missed uint64 `json:"missed,omitempty"`
}

func eventToJSON(e trace.Event) EventJSON {
	out := EventJSON{
		Node:   string(e.Node),
		Seq:    e.Seq,
		Kind:   e.Kind.String(),
		Detail: e.Detail,
	}
	if e.Trace != 0 {
		out.Trace = fmt.Sprintf("%016x", e.Trace)
	}
	if !e.At.IsZero() {
		out.TS = e.At.Format(time.RFC3339Nano)
	}
	return out
}

// eventFilter is the parsed ?kind= / ?trace= selection.
type eventFilter struct {
	kinds   map[trace.Kind]bool // nil = all kinds
	traceID uint64              // 0 = all traces
}

func (f eventFilter) match(e trace.Event) bool {
	if f.kinds != nil && !f.kinds[e.Kind] {
		return false
	}
	if f.traceID != 0 && e.Trace != f.traceID {
		return false
	}
	return true
}

func parseEventFilter(r *http.Request) (eventFilter, error) {
	var f eventFilter
	if kinds := r.URL.Query().Get("kind"); kinds != "" {
		f.kinds = make(map[trace.Kind]bool)
		for _, name := range strings.Split(kinds, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			k, ok := trace.ParseKind(name)
			if !ok {
				return f, fmt.Errorf("unknown event kind %q", name)
			}
			f.kinds[k] = true
		}
	}
	if tid := r.URL.Query().Get("trace"); tid != "" {
		v, err := strconv.ParseUint(tid, 16, 64)
		if err != nil {
			return f, fmt.Errorf("bad trace id %q: want hex", tid)
		}
		f.traceID = v
	}
	return f, nil
}

// pickJournal resolves the journal to stream: the ?node= handle when given,
// otherwise the first hosted node exposing a journal (a multi-node server
// like dgc-sim shares one journal across its nodes, so any exposes the full
// cluster view).
func (s *Server) pickJournal(r *http.Request) (*trace.Log, error) {
	if want := r.URL.Query().Get("node"); want != "" {
		h, err := s.pick(r)
		if err != nil {
			return nil, err
		}
		j, ok := h.(Journaler)
		if !ok || j.Journal() == nil {
			return nil, fmt.Errorf("node %q has no event journal", want)
		}
		return j.Journal(), nil
	}
	for _, h := range s.handles() {
		if j, ok := h.(Journaler); ok && j.Journal() != nil {
			return j.Journal(), nil
		}
	}
	return nil, fmt.Errorf("no hosted node has an event journal")
}

// handleEvents serves GET /api/v1/events: the node's journal as NDJSON.
//
//	?since=N      resume after sequence number N (0 = full retained history)
//	?kind=a,b     keep only the named event kinds
//	?trace=HEX    keep only events of one causal trace id
//	?follow=true  long-poll: stream live events until timeout/disconnect
//	?timeout=30s  follow mode's maximum stream duration (default 30s)
//
// The first line after a gap is a truncation marker {"kind":"dropped",
// "missed":N}: the ring evicted N events the stream can never replay. In
// follow mode a slow reader is evicted server-side; the stream ends with a
// second marker and the client resumes with ?since=<last seq it saw>.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, err := s.pickJournal(r)
	if err != nil {
		writeErr(w, http.StatusNotImplemented, err)
		return
	}
	filter, err := parseEventFilter(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		since, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since %q: %w", v, err))
			return
		}
	}
	follow := r.URL.Query().Get("follow") == "true"
	streamFor := 30 * time.Second
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q", v))
			return
		}
		if d > 10*time.Minute {
			d = 10 * time.Minute
		}
		streamFor = d
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	// The journal head at request time, so clients can baseline a follow
	// ("everything after now") without replaying the retained history.
	w.Header().Set("Dgc-Journal-Head", strconv.FormatUint(log.Total(), 10))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeEvent := func(e EventJSON) bool { return enc.Encode(e) == nil }

	// Subscribe BEFORE reading the backlog so no event can fall between
	// history and the live stream; the overlap is deduplicated by sequence
	// number below.
	var sub *trace.Subscription
	if follow {
		sub = log.Subscribe(1024)
		defer sub.Close()
	}

	backlog, missed := log.Since(since)
	if missed > 0 {
		writeEvent(EventJSON{Kind: trace.KindDropped.String(), Missed: missed,
			Detail: fmt.Sprintf("%d events evicted before since=%d", missed, since)})
	}
	last := since
	for _, e := range backlog {
		if e.Seq > last {
			last = e.Seq
		}
		if filter.match(e) {
			if !writeEvent(eventToJSON(e)) {
				return
			}
		}
	}
	flush()
	if !follow {
		return
	}

	deadline := time.NewTimer(streamFor)
	defer deadline.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			return
		case e, ok := <-sub.Events():
			if !ok {
				// Evicted for falling behind: tell the client where to
				// resume and end the stream.
				writeEvent(EventJSON{Kind: trace.KindDropped.String(),
					Detail: fmt.Sprintf("stream evicted (slow reader); resume with ?since=%d", last)})
				flush()
				return
			}
			if e.Seq <= last {
				continue // overlap with the backlog read
			}
			last = e.Seq
			if filter.match(e) {
				if !writeEvent(eventToJSON(e)) {
					return
				}
				flush()
			}
		}
	}
}

// syncJournalMetrics refreshes the per-node dgc_trace_* gauges from each
// hosted journal's stats. Called at scrape time, so the journal needs no
// dependency on the metrics package and the series never lag.
func (s *Server) syncJournalMetrics() {
	for _, h := range s.handles() {
		j, ok := h.(Journaler)
		if !ok || j.Journal() == nil {
			continue
		}
		st := j.Journal().Stats()
		reg := s.set.Node(string(h.ID()))
		reg.Gauge("dgc_trace_events_emitted",
			"Events sequenced into the node's trace journal.").Set(int64(st.Emitted))
		reg.Gauge("dgc_trace_events_ring_dropped",
			"Journal events evicted by the ring bound.").Set(int64(st.RingDropped))
		reg.Gauge("dgc_trace_subscribers",
			"Live journal subscriptions (event stream consumers).").Set(int64(st.Subscribers))
		reg.Gauge("dgc_trace_subscriber_evictions",
			"Journal subscriptions evicted for falling behind.").Set(int64(st.SubscriberEvictions))
		reg.Gauge("dgc_trace_subscriber_max_lag",
			"Deepest live subscriber backlog in buffered events.").Set(int64(st.MaxLag))
	}
}
