package admin

import (
	"sync"
	"testing"
	"time"

	"dgc/internal/ids"
	"dgc/internal/transport"
	"dgc/internal/wire"
)

// memEndpoint is a minimal in-memory endpoint recording sends.
type memEndpoint struct {
	mu   sync.Mutex
	self ids.NodeID
	sent []ids.NodeID
	h    transport.Handler
}

func (m *memEndpoint) Self() ids.NodeID { return m.self }
func (m *memEndpoint) Send(to ids.NodeID, msg wire.Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = append(m.sent, to)
	return nil
}
func (m *memEndpoint) SetHandler(h transport.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.h = h
}
func (m *memEndpoint) Close() error { return nil }

func (m *memEndpoint) sentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sent)
}

// inject pushes an inbound message through whatever handler the fault layer
// installed on this endpoint.
func (m *memEndpoint) inject(from ids.NodeID, msg wire.Message) []transport.Envelope {
	m.mu.Lock()
	h := m.h
	m.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(from, msg)
}

var testMsg wire.Message = &wire.CreateScionAck{}

func TestFaultEndpointDrop(t *testing.T) {
	inner := &memEndpoint{self: "P1"}
	fe := NewFaultEndpoint(inner, 1)
	fe.SetDrop(1.0, 0)
	for i := 0; i < 10; i++ {
		if err := fe.Send("P2", testMsg); err != nil {
			t.Fatal(err)
		}
	}
	if inner.sentCount() != 0 {
		t.Errorf("sent %d messages through a rate-1.0 drop", inner.sentCount())
	}
	st := fe.FaultStatus()
	if st.Dropped != 10 || st.DropRate != 1.0 || !st.Active() {
		t.Errorf("status = %+v", st)
	}
	fe.Heal()
	if err := fe.Send("P2", testMsg); err != nil {
		t.Fatal(err)
	}
	if inner.sentCount() != 1 {
		t.Errorf("healed endpoint still dropping")
	}
	if fe.FaultStatus().Active() {
		t.Errorf("healed status still active: %+v", fe.FaultStatus())
	}
}

func TestFaultEndpointPartitionBothWays(t *testing.T) {
	inner := &memEndpoint{self: "P1"}
	fe := NewFaultEndpoint(inner, 0)
	var delivered int
	fe.SetHandler(func(from ids.NodeID, msg wire.Message) []transport.Envelope {
		delivered++
		return nil
	})
	fe.SetPartition([]ids.NodeID{"P2"}, false, 0)

	// Outbound to the partitioned peer is cut; other peers pass.
	_ = fe.Send("P2", testMsg)
	_ = fe.Send("P3", testMsg)
	if inner.sentCount() != 1 {
		t.Errorf("outbound: sent %d, want 1 (P3 only)", inner.sentCount())
	}

	// Inbound from the partitioned peer is cut at the shim.
	inner.inject("P2", testMsg)
	inner.inject("P3", testMsg)
	if delivered != 1 {
		t.Errorf("inbound: delivered %d, want 1 (P3 only)", delivered)
	}

	// Isolation (empty peer list) cuts everyone.
	fe.SetPartition(nil, true, 0)
	_ = fe.Send("P3", testMsg)
	inner.inject("P3", testMsg)
	if inner.sentCount() != 1 || delivered != 1 {
		t.Errorf("isolate leaked: sent=%d delivered=%d", inner.sentCount(), delivered)
	}
}

func TestFaultEndpointTTLAndGeneration(t *testing.T) {
	inner := &memEndpoint{self: "P1"}
	fe := NewFaultEndpoint(inner, 0)
	fe.SetDrop(1.0, 10*time.Millisecond)
	// Reconfigure before the TTL fires: the stale expiry must not clobber
	// the newer injection.
	fe.SetDrop(0.5, 0)
	time.Sleep(30 * time.Millisecond)
	if st := fe.FaultStatus(); st.DropRate != 0.5 {
		t.Errorf("stale TTL reverted a newer injection: %+v", st)
	}

	fe.SetDrop(1.0, 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for fe.FaultStatus().DropRate != 0 {
		if time.Now().After(deadline) {
			t.Fatal("TTL never reverted the drop rate")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFaultEndpointSetInnerKeepsConfigAndHandler(t *testing.T) {
	inner1 := &memEndpoint{self: "P1"}
	fe := NewFaultEndpoint(inner1, 0)
	var delivered int
	fe.SetHandler(func(from ids.NodeID, msg wire.Message) []transport.Envelope {
		delivered++
		return nil
	})
	fe.SetDrop(1.0, 0)

	// Swap the socket, as a supervisor restart does.
	inner2 := &memEndpoint{self: "P1"}
	fe.setInner(inner2)

	if err := fe.Send("P2", testMsg); err != nil {
		t.Fatal(err)
	}
	if inner2.sentCount() != 0 {
		t.Error("drop config lost across setInner")
	}
	inner2.inject("P2", testMsg)
	if delivered != 1 {
		t.Error("handler not re-installed on the new inner endpoint")
	}
}

func TestFaultEndpointDelay(t *testing.T) {
	inner := &memEndpoint{self: "P1"}
	fe := NewFaultEndpoint(inner, 0)
	fe.SetDelay(20*time.Millisecond, 0)
	if err := fe.Send("P2", testMsg); err != nil {
		t.Fatal(err)
	}
	if inner.sentCount() != 0 {
		t.Error("delayed message sent immediately")
	}
	deadline := time.Now().Add(2 * time.Second)
	for inner.sentCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delayed message never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := fe.FaultStatus(); st.Delayed != 1 || st.DelayMS != 20 {
		t.Errorf("status = %+v", st)
	}
}
