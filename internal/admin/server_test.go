package admin

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dgc/internal/ids"
	"dgc/internal/node"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeHandle is a deterministic Handle for API-shape tests.
type fakeHandle struct {
	id    string
	snap  node.DebugSnapshot
	dump  node.TableDump
	stats node.Stats

	forced     []ids.RefID
	forceRes   node.ForceDetectResult
	forceErr   error
	detections int
}

func (f *fakeHandle) ID() ids.NodeID                    { return ids.NodeID(f.id) }
func (f *fakeHandle) Stats() node.Stats                 { return f.stats }
func (f *fakeHandle) DebugSnapshot() node.DebugSnapshot { return f.snap }
func (f *fakeHandle) TableDump() node.TableDump         { return f.dump }
func (f *fakeHandle) RunDetection() int                 { return f.detections }
func (f *fakeHandle) Summarize() error                  { return nil }
func (f *fakeHandle) Save() ([]byte, error)             { return []byte("state-" + f.id), nil }
func (f *fakeHandle) ForceDetect(c ids.RefID) (node.ForceDetectResult, error) {
	f.forced = append(f.forced, c)
	return f.forceRes, f.forceErr
}

func goldenServer() *Server {
	s := NewServer(nil)
	s.AddNode(&fakeHandle{
		id: "P1",
		snap: node.DebugSnapshot{
			Node: "P1", Clock: 42, Objects: 3, Scions: 1, Stubs: 2,
			SummaryVersion: 7,
			InflightDetections: []node.InflightDetection{{
				Origin: "P1", Seq: 5, TraceID: "00000000deadbeef",
				FirstSeen: "2026-01-02T03:04:05Z", AgeMS: 1500,
			}},
			Accumulators: []node.AccumulatorInfo{},
		},
	})
	s.AddNode(&fakeHandle{
		id: "P2",
		snap: node.DebugSnapshot{
			Node: "P2", Clock: 40, Objects: 1, Scions: 2, Stubs: 0,
			InflightDetections: []node.InflightDetection{},
			Accumulators:       []node.AccumulatorInfo{},
			Mailbox:            &node.MailboxStats{Depth: 1, Capacity: 1024, Dropped: 3},
		},
	})
	return s
}

// TestDebugEndpointGolden pins the rendered /debug/dgc JSON — the versioned
// schema consumers scrape. Additions to DebugSnapshot will change this file
// (rerun with -update and review the diff); removals or renames additionally
// require a SchemaVersion bump.
func TestDebugEndpointGolden(t *testing.T) {
	srv := httptest.NewServer(goldenServer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/dgc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "debug_dgc.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/debug/dgc drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}

	var reply DebugReply
	if err := json.Unmarshal(got, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d, want %d", reply.SchemaVersion, SchemaVersion)
	}
	if len(reply.Nodes) != 2 {
		t.Errorf("nodes = %d, want 2", len(reply.Nodes))
	}
}

func TestStatusEndpoint(t *testing.T) {
	s := goldenServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d", reply.SchemaVersion)
	}
	if reply.Build.Version == "" || reply.Build.Go == "" {
		t.Errorf("build info incomplete: %+v", reply.Build)
	}
	p1 := reply.Nodes["P1"]
	if p1.Clock != 42 || p1.Objects != 3 || p1.State != "running" {
		t.Errorf("P1 status = %+v", p1)
	}
	if p1.Detections.Inflight != 1 {
		t.Errorf("P1 inflight = %d, want 1", p1.Detections.Inflight)
	}
	if mb := reply.Nodes["P2"].Mailbox; mb == nil || mb.Dropped != 3 {
		t.Errorf("P2 mailbox = %+v", mb)
	}
}

func TestDetectEndpoint(t *testing.T) {
	fh := &fakeHandle{
		id:         "P1",
		detections: 2,
		forceRes: node.ForceDetectResult{
			Origin: "P1", Seq: 9, TraceID: "0000000000000009", Outcome: "forwarded", Forwarded: 1,
		},
	}
	s := NewServer(nil)
	s.AddNode(fh)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// GET is rejected.
	resp, err := http.Get(srv.URL + "/api/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET detect = %d, want 405", resp.StatusCode)
	}

	// Round mode.
	resp, err = http.Post(srv.URL+"/api/v1/detect", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var reply DetectReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reply.Started != 2 || reply.Result != nil {
		t.Errorf("round reply = %+v", reply)
	}

	// Forced-scion mode.
	resp, err = http.Post(srv.URL+"/api/v1/detect?scion=P2-%3E7@P1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reply.Result == nil || reply.Result.TraceID != "0000000000000009" || reply.Started != 1 {
		t.Errorf("forced reply = %+v", reply)
	}
	want := ids.RefID{Src: "P2", Dst: ids.GlobalRef{Node: "P1", Obj: 7}}
	if len(fh.forced) != 1 || fh.forced[0] != want {
		t.Errorf("forced candidates = %v, want %v", fh.forced, want)
	}

	// Bad scion syntax.
	resp, err = http.Post(srv.URL+"/api/v1/detect?scion=nonsense", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scion = %d, want 400", resp.StatusCode)
	}
}

func TestCapabilityGating(t *testing.T) {
	// A bare Handle (no Killer/FaultController/Restorer) must refuse inject
	// and restore with 501, not crash.
	s := NewServer(nil)
	s.AddNode(&fakeHandle{id: "P1"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/v1/inject", "application/json",
		strings.NewReader(`{"action":"kill"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("inject kill on bare handle = %d, want 501", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/api/v1/restore", "", strings.NewReader("AAAA"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("restore on bare handle = %d, want 501", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/api/v1/inject", "application/json",
		strings.NewReader(`{"action":"frobnicate"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown action = %d, want 400", resp.StatusCode)
	}
}

func TestNodeSelector(t *testing.T) {
	s := goldenServer() // two nodes: selector is mandatory
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tables without ?node= on 2-node server = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/api/v1/tables?node=P2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tables?node=P2 = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/api/v1/tables?node=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tables?node=nope = %d, want 400", resp.StatusCode)
	}
}

func TestParseRefID(t *testing.T) {
	ref := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 3}}
	got, err := ParseRefID(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("round trip: got %v, want %v", got, ref)
	}
	for _, bad := range []string{"", "P1", "P1->", "P1->x@P2", "P1->3", "->3@P2", "P1->3@"} {
		if _, err := ParseRefID(bad); err == nil {
			t.Errorf("ParseRefID(%q) accepted", bad)
		}
	}
}
