package admin

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dgc/internal/ids"
	"dgc/internal/node"
)

func TestSupervisorLifecycle(t *testing.T) {
	sup, err := StartNode(NodeSpec{ID: "P1", SeedObjects: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if sup.State() != "running" {
		t.Fatalf("state = %q, want running", sup.State())
	}
	if sup.Addr() == "" {
		t.Fatal("no concrete address after start")
	}
	if got := sup.DebugSnapshot().Objects; got != 3 {
		t.Fatalf("objects = %d, want 3 seeded", got)
	}

	addr := sup.Addr()
	if err := sup.Kill(0); err != nil {
		t.Fatal(err)
	}
	if sup.State() != "down" {
		t.Fatalf("state after kill = %q", sup.State())
	}
	if _, err := sup.ForceDetect(mustRef(t, "P2->1@P1")); err == nil {
		t.Error("ForceDetect on a down node should error")
	}
	// The debug view degrades to a stub naming the node, not a panic.
	if snap := sup.DebugSnapshot(); snap.Node != "P1" || snap.Objects != 0 {
		t.Errorf("down snapshot = %+v", snap)
	}

	if err := sup.Restart(); err != nil {
		t.Fatal(err)
	}
	if sup.State() != "running" {
		t.Fatalf("state after restart = %q", sup.State())
	}
	if sup.Addr() != addr {
		t.Errorf("address changed across restart: %s -> %s", addr, sup.Addr())
	}
	// The heap came back from the kill-time snapshot, not re-seeded.
	if got := sup.DebugSnapshot().Objects; got != 3 {
		t.Errorf("objects after restart = %d, want 3 restored", got)
	}
}

func TestSupervisorKillAutoRecover(t *testing.T) {
	sup, err := StartNode(NodeSpec{ID: "P1", SeedObjects: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if err := sup.Kill(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sup.State() != "running" {
		if time.Now().After(deadline) {
			t.Fatal("node never auto-recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sup.DebugSnapshot().Objects; got != 1 {
		t.Errorf("objects after auto-recover = %d, want 1", got)
	}
}

func TestSupervisorStateFileRoundTrip(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "p1.state")
	sup, err := StartNode(NodeSpec{ID: "P1", SeedObjects: 2, StateFile: stateFile})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stateFile); err != nil {
		t.Fatalf("state file not written: %v", err)
	}
	// Stop is terminal and idempotent.
	if err := sup.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Restart(); err == nil {
		t.Error("restart after stop should error")
	}

	// A fresh supervisor on the same state file resumes the heap without
	// re-seeding.
	sup2, err := StartNode(NodeSpec{ID: "P1", SeedObjects: 99, StateFile: stateFile})
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Stop()
	if got := sup2.DebugSnapshot().Objects; got != 2 {
		t.Errorf("objects after state-file restart = %d, want 2 (no re-seed)", got)
	}
}

func TestSupervisorRestoreState(t *testing.T) {
	sup, err := StartNode(NodeSpec{ID: "P1", SeedObjects: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	state, err := sup.Save()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate past the snapshot, then restore: the heap rolls back.
	if err := sup.Runtime().With(func(m node.Mutator) { m.Alloc(nil) }); err != nil {
		t.Fatal(err)
	}
	if got := sup.DebugSnapshot().Objects; got != 5 {
		t.Fatalf("objects = %d, want 5", got)
	}
	if err := sup.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if got := sup.DebugSnapshot().Objects; got != 4 {
		t.Errorf("objects after restore = %d, want 4", got)
	}
}

func mustRef(t *testing.T, s string) ids.RefID {
	t.Helper()
	r, err := ParseRefID(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
