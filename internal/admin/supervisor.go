package admin

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"dgc/internal/ids"
	"dgc/internal/lgc"
	"dgc/internal/membership"
	"dgc/internal/node"
	"dgc/internal/obs"
	"dgc/internal/trace"
	"dgc/internal/transport"
)

// ErrNodeDown is returned by supervisor operations that need a running
// runtime while the node is killed or stopped.
var ErrNodeDown = errors.New("admin: node is down")

// defaultJournalCapacity sizes the event journal StartNode creates when the
// spec doesn't bring its own.
const defaultJournalCapacity = 8192

// NodeSpec describes one live node: everything cmd/dgc-node used to wire by
// hand — transport listen address, peers, collector configuration, runtime
// intervals, persistent state — in one declarative value shared by dgc-node's
// flag parsing and dgcctl's cluster.yaml loader.
type NodeSpec struct {
	ID     ids.NodeID
	Listen string                // transport listen address ("host:port", port 0 ephemeral)
	Peers  map[ids.NodeID]string // peer name -> transport dial address

	Config  node.Config // Metrics is populated by the supervisor
	Runtime node.RuntimeConfig

	// StateFile, when set, is loaded at start (if present) and written by
	// Stop and Kill: the node's durable collector state.
	StateFile string

	// SeedObjects allocates N rooted demo objects on a fresh start (not on
	// restore).
	SeedObjects int

	// FaultSeed seeds the fault injector's drop coin (0 = time-free default).
	FaultSeed int64
}

// Supervisor owns one live node end to end: the TCP endpoint (wrapped in a
// fault injector), the LiveRuntime driving the machine, the metrics set, and
// the node's durable state. It is the process-lifecycle half of the admin
// control plane: Stop for graceful shutdown, Kill/Restart for chaos
// injection, RestoreState for operator-driven state replacement — with the
// fault configuration and the listen port stable across restarts so peers
// reconnect to the same address.
type Supervisor struct {
	spec   NodeSpec
	set    *obs.Set
	faults *FaultEndpoint

	mu        sync.Mutex
	ep        *transport.TCPEndpoint
	rt        *node.LiveRuntime
	addr      string // concrete listen address after first bind
	lastState []byte // most recent Save, for restart-after-kill
	stopped   bool   // Stop is terminal; Kill is not
}

// StartNode binds the spec's transport address, assembles the runtime
// (restoring from StateFile when present) and returns its supervisor. The
// supervisor's metrics set (spec.Config.Metrics, created when nil) carries
// the node, transport and build-info series.
func StartNode(spec NodeSpec) (*Supervisor, error) {
	if spec.ID == "" {
		return nil, errors.New("admin: NodeSpec.ID is required")
	}
	if spec.Listen == "" {
		spec.Listen = "127.0.0.1:0"
	}
	if spec.Config.Metrics == nil {
		spec.Config.Metrics = obs.NewSet()
	}
	if spec.Config.Trace == nil {
		// Live nodes journal by default: the event stream is the admin
		// plane's observability backbone, and an 8k ring is cheap. Pass an
		// explicit Log (or a filtered one) to override.
		spec.Config.Trace = trace.New(defaultJournalCapacity)
	}
	s := &Supervisor{
		spec:   spec,
		set:    spec.Config.Metrics,
		faults: NewFaultEndpoint(nil, spec.FaultSeed),
	}
	var state []byte
	if spec.StateFile != "" {
		data, err := os.ReadFile(spec.StateFile)
		switch {
		case err == nil:
			state = data
		case !os.IsNotExist(err):
			return nil, fmt.Errorf("admin: read state %s: %w", spec.StateFile, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.startLocked(state); err != nil {
		return nil, err
	}
	return s, nil
}

// startLocked binds the transport and starts the runtime. Caller holds mu.
func (s *Supervisor) startLocked(state []byte) error {
	listen := s.spec.Listen
	if s.addr != "" {
		// Restarts re-bind the concrete first-bind address so peers' dial
		// tables stay valid without a membership update.
		listen = s.addr
	}
	ep, err := transport.ListenTCP(s.spec.ID, listen, s.spec.Peers)
	if err != nil {
		return err
	}
	ep.SetMetrics(obs.NewTransportMetrics(s.set.Node(string(s.spec.ID))))
	s.faults.setInner(ep)

	var rt *node.LiveRuntime
	if state != nil {
		rt, err = node.RestoreLiveRuntime(s.faults, s.spec.Config, s.spec.Runtime, state)
		if err != nil {
			ep.Close()
			return fmt.Errorf("admin: restore %s: %w", s.spec.ID, err)
		}
	} else {
		rt = node.NewLiveRuntime(s.spec.ID, s.faults, s.spec.Config, s.spec.Runtime)
		if s.spec.SeedObjects > 0 {
			err := rt.With(func(m node.Mutator) {
				for i := 0; i < s.spec.SeedObjects; i++ {
					obj := m.Alloc(nil)
					if rerr := m.Root(obj); rerr != nil {
						panic(rerr) // fresh heap: Root on a just-allocated object cannot fail
					}
				}
			})
			if err != nil {
				rt.Close()
				ep.Close()
				return err
			}
		}
	}
	// With the elastic directory on, the node advertises its concrete bound
	// address and seeds the static peer list as joining members — they flip
	// to alive on first traffic, so a half-started cluster is visibly
	// "joining" until gossip has actually flowed. Membership state is
	// volatile by design: a restart re-seeds and re-learns.
	if s.spec.Config.Membership != nil {
		rt.SetAdvertiseAddr(ep.Addr())
		peers := make([]ids.NodeID, 0, len(s.spec.Peers))
		for p := range s.spec.Peers {
			peers = append(peers, p)
		}
		ids.SortNodeIDs(peers)
		for _, p := range peers {
			_ = rt.AddMember(p, s.spec.Peers[p])
		}
	}
	s.ep, s.rt = ep, rt
	s.addr = ep.Addr()
	s.lastState = state
	return nil
}

// ID returns the supervised node's identifier.
func (s *Supervisor) ID() ids.NodeID { return s.spec.ID }

// Addr returns the node's concrete transport address.
func (s *Supervisor) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// State reports "running" or "down".
func (s *Supervisor) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rt != nil {
		return "running"
	}
	return "down"
}

// AddPeer registers or updates a peer's transport dial address (on the
// current endpoint and in the spec, so restarts keep it). With membership on
// the peer is also seeded into the directory as joining.
func (s *Supervisor) AddPeer(peer ids.NodeID, addr string) {
	s.mu.Lock()
	if s.spec.Peers == nil {
		s.spec.Peers = make(map[ids.NodeID]string)
	}
	s.spec.Peers[peer] = addr
	if s.ep != nil {
		s.ep.AddPeer(peer, addr)
	}
	rt := s.rt
	s.mu.Unlock()
	if rt != nil && s.spec.Config.Membership != nil {
		_ = rt.AddMember(peer, addr)
	}
}

// Runtime returns the current LiveRuntime, or nil while the node is down.
// Callers race with Kill by design: a runtime obtained here may be closed
// underneath them, in which case its methods return zero values or
// ErrRuntimeClosed.
func (s *Supervisor) Runtime() *node.LiveRuntime {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt
}

// Metrics returns the supervisor's metrics set.
func (s *Supervisor) Metrics() *obs.Set { return s.set }

// Faults returns the node's fault injector (stable across restarts).
func (s *Supervisor) Faults() *FaultEndpoint { return s.faults }

// Journal returns the node's event journal. It lives in the spec, not the
// runtime, so the stream (and its sequence numbers) survives Kill/Restart —
// the observability-across-faults property the admin event API depends on.
func (s *Supervisor) Journal() *trace.Log { return s.spec.Config.Trace }

// teardownLocked saves, closes and detaches the current runtime and
// endpoint. Caller holds mu.
func (s *Supervisor) teardownLocked() {
	rt, ep := s.rt, s.ep
	s.rt, s.ep = nil, nil
	s.mu.Unlock()
	defer s.mu.Lock()
	if rt != nil {
		if state, err := rt.Save(); err == nil {
			s.mu.Lock()
			s.lastState = state
			s.mu.Unlock()
		}
		rt.Close()
	}
	if ep != nil {
		ep.Close()
	}
}

// Kill simulates a node crash-with-snapshot: the durable state is captured,
// the runtime stops and the socket closes — peers see connection failures
// and message loss, exactly as if the process died. When recoverAfter is
// positive the node restarts itself from the captured state after that
// delay; otherwise it stays down until Restart.
func (s *Supervisor) Kill(recoverAfter time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrNodeDown
	}
	if s.rt == nil {
		return ErrNodeDown
	}
	s.teardownLocked()
	if j := s.spec.Config.Trace; j != nil {
		j.Emit(s.spec.ID, trace.KindFault, "action=kill recover=%s", recoverAfter)
	}
	if recoverAfter > 0 {
		time.AfterFunc(recoverAfter, func() { _ = s.Restart() })
	}
	return nil
}

// Restart brings a killed node back on its original address, restoring the
// state captured at kill time. No-op when already running.
func (s *Supervisor) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("admin: supervisor stopped")
	}
	if s.rt != nil {
		return nil
	}
	if err := s.startLocked(s.lastState); err != nil {
		return err
	}
	if j := s.spec.Config.Trace; j != nil {
		j.Emit(s.spec.ID, trace.KindFault, "action=restart")
	}
	return nil
}

// RestoreState replaces the node's collector state in place: the current
// runtime closes, a new one starts from data on the same endpoint. The
// transport stays up throughout.
func (s *Supervisor) RestoreState(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrNodeDown
	}
	if s.rt != nil {
		rt := s.rt
		s.rt = nil
		s.mu.Unlock()
		rt.Close()
		s.mu.Lock()
	}
	if s.ep == nil {
		// Node was killed: bring the transport back first.
		if err := s.startLocked(data); err != nil {
			return err
		}
		return nil
	}
	rt, err := node.RestoreLiveRuntime(s.faults, s.spec.Config, s.spec.Runtime, data)
	if err != nil {
		return fmt.Errorf("admin: restore %s: %w", s.spec.ID, err)
	}
	s.rt = rt
	s.lastState = data
	return nil
}

// Stop is the graceful shutdown: the durable state is flushed to StateFile
// (when configured), the runtime stops, and the transport closes cleanly.
// Terminal — a stopped supervisor cannot restart. Idempotent.
func (s *Supervisor) Stop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil
	}
	s.stopped = true
	s.teardownLocked()
	if s.spec.StateFile != "" && s.lastState != nil {
		if err := os.WriteFile(s.spec.StateFile, s.lastState, 0o644); err != nil {
			return fmt.Errorf("admin: write state %s: %w", s.spec.StateFile, err)
		}
	}
	return nil
}

// StateBytes returns the most recently captured durable state (from the
// last Save/Kill/Stop), or nil.
func (s *Supervisor) StateBytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastState
}

// --- Handle: the admin API surface, delegating to the current runtime. ---

// Stats returns the node's counters (zero while down).
func (s *Supervisor) Stats() node.Stats {
	if rt := s.Runtime(); rt != nil {
		return rt.Stats()
	}
	return node.Stats{}
}

// DebugSnapshot returns the node's diagnostic view (a stub naming the node
// while down).
func (s *Supervisor) DebugSnapshot() node.DebugSnapshot {
	if rt := s.Runtime(); rt != nil {
		return rt.DebugSnapshot()
	}
	return node.DebugSnapshot{Node: string(s.spec.ID)}
}

// TableDump returns the node's reference tables (empty while down).
func (s *Supervisor) TableDump() node.TableDump {
	if rt := s.Runtime(); rt != nil {
		return rt.TableDump()
	}
	return node.TableDump{Node: string(s.spec.ID)}
}

// RunLGC forces one local collection.
func (s *Supervisor) RunLGC() lgc.Result {
	if rt := s.Runtime(); rt != nil {
		return rt.RunLGC()
	}
	return lgc.Result{}
}

// RunDetection forces one detection round, returning detections started.
func (s *Supervisor) RunDetection() int {
	if rt := s.Runtime(); rt != nil {
		return rt.RunDetection()
	}
	return 0
}

// Summarize forces a summary rebuild.
func (s *Supervisor) Summarize() error {
	if rt := s.Runtime(); rt != nil {
		return rt.Summarize()
	}
	return ErrNodeDown
}

// ForceDetect starts a detection at the given scion immediately.
func (s *Supervisor) ForceDetect(candidate ids.RefID) (node.ForceDetectResult, error) {
	if rt := s.Runtime(); rt != nil {
		return rt.ForceDetect(candidate)
	}
	return node.ForceDetectResult{}, ErrNodeDown
}

// Members returns the node's membership directory view (nil while down or
// when membership is disabled).
func (s *Supervisor) Members() []membership.Member {
	if rt := s.Runtime(); rt != nil {
		return rt.Members()
	}
	return nil
}

// Join seeds a new cluster member: the dial address lands in the spec and
// endpoint (surviving restarts) and the directory records the peer as
// joining, from where gossip takes over.
func (s *Supervisor) Join(peer ids.NodeID, addr string) error {
	if s.spec.Config.Membership == nil {
		return errors.New("admin: membership is disabled on this node")
	}
	if s.Runtime() == nil {
		return ErrNodeDown
	}
	s.AddPeer(peer, addr)
	return nil
}

// Drain starts the node's voluntary departure: exported references migrate
// to their referents' owners, then the node declares itself dead.
func (s *Supervisor) Drain() error {
	rt := s.Runtime()
	if rt == nil {
		return ErrNodeDown
	}
	return rt.BeginDrain()
}

// Save serializes the node's durable collector state.
func (s *Supervisor) Save() ([]byte, error) {
	if rt := s.Runtime(); rt != nil {
		data, err := rt.Save()
		if err == nil {
			s.mu.Lock()
			s.lastState = data
			s.mu.Unlock()
		}
		return data, err
	}
	if state := s.StateBytes(); state != nil {
		return state, nil
	}
	return nil, ErrNodeDown
}
