package core

import (
	"dgc/internal/ids"
	"dgc/internal/snapshot"
)

// DetectionID names one cycle detection: the process that initiated it and a
// per-origin sequence number. Several detections proceed in parallel without
// conflict (§3.1); intermediate processes keep NO state about detections in
// course — a design point the paper contrasts with back-tracing and
// group-merger collectors.
type DetectionID struct {
	Origin ids.NodeID
	Seq    uint64
}

// TraceIDFor derives the causal trace id of a detection: a well-mixed
// 64-bit tag carried by every CDM of the detection (through the wire codec,
// across every hop), so one detection can be followed across nodes in
// /debug/dgc snapshots and trace logs. The id is a pure function of the
// DetectionID — FNV-1a over the origin name folded with the sequence number,
// finished with the splitmix64 mixer — so it is deterministic (simulation
// fingerprints are unaffected) and any process can recompute it without
// coordination.
func TraceIDFor(det DetectionID) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(det.Origin); i++ {
		h ^= uint64(det.Origin[i])
		h *= 1099511628211 // FNV-64 prime
	}
	h ^= det.Seq
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Config tunes a node's detector.
type Config struct {
	// BroadcastDelete, when set, makes a cycle-finding node send DeleteScion
	// notifications for the source-set scions owned by other processes,
	// short-cutting the acyclic collector's cascade. When unset (the
	// paper's behaviour), only the finder's own scions are deleted and the
	// cascade unravels the rest.
	BroadcastDelete bool
	// MaxAlgebraSize aborts detections whose CDM grows beyond this many
	// references; 0 means unlimited. A deployment safety valve, not needed
	// for termination (the algebra grows monotonically within a finite
	// reference set).
	MaxAlgebraSize int
	// MaxHops drops CDMs that have been forwarded more than this many
	// times; 0 uses DefaultMaxHops. Dropping a CDM is always safe; the hop
	// budget bounds worst-case traffic on pathological graphs.
	MaxHops int
	// EagerAbort enables the optimization of §3.2: before forwarding a
	// derivation, the process analyzes the counters in the algebra it is
	// about to send and aborts locally on a mismatch instead of letting
	// the next hop discover it. "However, that is not required to
	// maintain safety" — off by default, benchmarked as an ablation.
	EagerAbort bool
	// EagerComplete is EagerAbort's dual: before forwarding, the process
	// also checks whether the derivation it is about to send already
	// reduces to {{} -> {}} and declares the cycle locally instead of
	// paying one more fan-out hop for the next node to reach the same
	// verdict on the same algebra. The matching rule is location-
	// independent — every source scion matched by a consistently-countered
	// stub — so the declaration is exactly the one the receiver would have
	// made. Enabled by the node's batched detection mode, where it
	// collapses the terminal fan-out of wide cycles.
	EagerComplete bool
}

// DefaultMaxHops is the CDM hop budget used when Config.MaxHops is zero. A
// detection needs at most O(|closure|) strictly-growing hops, so 256 covers
// any realistic cycle while bounding adversarial topologies.
const DefaultMaxHops = 256

// Actions is the detector's outbound interface, implemented by the node: it
// decouples the algorithm from transport and tables.
type Actions interface {
	// SendCDMs forwards a CDM derivation along each of the stubs in
	// `alongs` (along.Src is the local node, along.Dst the remote object).
	// hops is the derivation's forwarding depth and trace the detection's
	// causal trace id (TraceIDFor), both carried in every message. Handing
	// the whole fan-out to the implementation at once lets it flatten the
	// algebra a single time and share the result across peers.
	SendCDMs(det DetectionID, trace uint64, alongs []ids.RefID, alg Alg, hops int)
	// DeleteOwnScion removes the local scion for ref (ref.Dst.Node is the
	// local node) and must trigger acyclic-DGC reclamation.
	DeleteOwnScion(ref ids.RefID)
	// SendDeleteScion notifies ref.Dst.Node that the scion for ref belongs
	// to a detected garbage cycle (only used with BroadcastDelete).
	SendDeleteScion(det DetectionID, ref ids.RefID)
}

// OutcomeKind classifies the result of processing one CDM (or starting a
// detection).
type OutcomeKind int

const (
	// OutcomeDropped: the CDM referenced a scion absent from the current
	// summarized snapshot (safety rules 1/2, §2.2) — silently discarded.
	OutcomeDropped OutcomeKind = iota
	// OutcomeAborted: an invocation-counter mismatch proved a mutator race
	// (safety rule 3) — detection terminated.
	OutcomeAborted
	// OutcomeCycleFound: matching reduced the CDM to {{} -> {}}.
	OutcomeCycleFound
	// OutcomeForwarded: one or more derivations were sent (safety rule 4).
	OutcomeForwarded
	// OutcomeBranchEnded: nothing forwarded — every outgoing stub was
	// locally reachable, carried no new information, or the algebra size
	// valve tripped.
	OutcomeBranchEnded
)

// String returns a short human-readable name.
func (k OutcomeKind) String() string {
	switch k {
	case OutcomeDropped:
		return "dropped"
	case OutcomeAborted:
		return "aborted"
	case OutcomeCycleFound:
		return "cycle-found"
	case OutcomeForwarded:
		return "forwarded"
	case OutcomeBranchEnded:
		return "branch-ended"
	default:
		return "unknown"
	}
}

// Outcome reports the processing of one CDM delivery or detection start.
type Outcome struct {
	Kind OutcomeKind
	// Forwarded counts CDM derivations sent.
	Forwarded int
	// GarbageScions holds, for OutcomeCycleFound, every scion of the
	// detected cycle (the full source set).
	GarbageScions []ids.RefID
	// Derived is the algebra that was forwarded (OutcomeForwarded only).
	// Callers that accumulate per-detection state merge it back so later
	// expansions recognize already-shipped information.
	Derived *Alg
}

// Stats counts detector activity on one node.
type Stats struct {
	Started     uint64
	CDMsSent    uint64
	CDMsHandled uint64
	Dropped     uint64
	Aborted     uint64
	CyclesFound uint64
	ScionsFreed uint64
}

// Detector runs the DCDA for one process. It is driven entirely by the
// owning node (which serializes calls) and touches only summarized
// snapshots — never the live heap — so it needs no synchronization with the
// mutator (§3.2 "there is no contention between the mutator and the DCDA").
type Detector struct {
	self    ids.NodeID
	cfg     Config
	actions Actions
	seq     uint64
	Stats   Stats
}

// NewDetector returns a detector for the given node.
func NewDetector(self ids.NodeID, cfg Config, actions Actions) *Detector {
	return &Detector{self: self, cfg: cfg, actions: actions}
}

// Self returns the owning node's identifier.
func (d *Detector) Self() ids.NodeID { return d.self }

// StartDetection initiates a cycle detection with the given scion as
// candidate (the scion plays the role of F_P2 in §3). The candidate must be
// a scion of this node present in sum. Returns the detection id and an
// outcome; detections that cannot make a first hop (locally reachable
// candidate, no outgoing stubs) report OutcomeBranchEnded or OutcomeDropped
// and send nothing.
func (d *Detector) StartDetection(sum *snapshot.Summary, candidate ids.RefID) (DetectionID, Outcome) {
	d.seq++
	det := DetectionID{Origin: d.self, Seq: d.seq}
	sc := sum.Scion(candidate)
	if sc == nil {
		d.Stats.Dropped++
		return det, Outcome{Kind: OutcomeDropped}
	}
	if sc.LocalReach {
		// Locally reachable objects are live by definition; never trace.
		return det, Outcome{Kind: OutcomeBranchEnded}
	}
	d.Stats.Started++
	out := d.expand(sum, det, sc, NewAlg(), 0, TraceIDFor(det))
	return det, out
}

// HandleCDM processes a CDM delivered along the reference `along`
// (along.Dst.Node must be this node). sum is the node's current summarized
// snapshot; hops is the forwarding depth and trace the causal trace id
// carried by the message (propagated unchanged into any forwarded CDMs).
func (d *Detector) HandleCDM(sum *snapshot.Summary, det DetectionID, along ids.RefID, alg Alg, hops int, trace uint64) Outcome {
	d.Stats.CDMsHandled++

	// Safety rules 1/2 (§2.2): the reference must have a scion in the
	// current summary. A CDM for a scion created after the last
	// summarization, or already deleted, is simply discarded ("these CDM
	// are simply discarded and those detections terminated", §3.2).
	sc := sum.Scion(along)
	if sc == nil {
		d.Stats.Dropped++
		return Outcome{Kind: OutcomeDropped}
	}

	// Arrival guard (safety rule 3): the sender recorded its stub-side
	// counter for `along`; our scion-side counter must agree, otherwise an
	// invocation crossed this reference between the two snapshots.
	if e, ok := alg.Get(along); ok && e.InTarget && e.TgtIC != sc.IC {
		d.Stats.Aborted++
		return Outcome{Kind: OutcomeAborted}
	}

	// CDM matching at delivery (§3 steps 6, 13, 19, 25...).
	cycleFound, abort := alg.MatchStatus()
	if abort {
		d.Stats.Aborted++
		return Outcome{Kind: OutcomeAborted}
	}
	if cycleFound {
		return d.cycleFound(det, alg)
	}

	// Safety rule 4: combine the CDM with this process's snapshot and
	// continue detection.
	return d.expand(sum, det, sc, alg, hops, trace)
}

// HandleReturn processes a partial-match result returned to this node — the
// detection's origin — under the hierarchical aggregation mode. alg is the
// origin's accumulated union of every returned fragment (the caller merged
// the arriving section in already). Evaluating it here is the same operation
// an intermediate node performs on its own accumulator: a counter mismatch
// aborts, a source-empty reduction proves the cycle (the matching rule is a
// property of the algebra, not of where it is evaluated). Otherwise only the
// unresolved residue is re-launched: the union is re-expanded through each
// of this node's own scions named in its source set, and expand's no-new-
// information check guarantees the relaunch forwards nothing downstream
// already has.
func (d *Detector) HandleReturn(sum *snapshot.Summary, det DetectionID, alg Alg, hops int, trace uint64) Outcome {
	cycleFound, abort := alg.MatchStatus()
	if abort {
		d.Stats.Aborted++
		return Outcome{Kind: OutcomeAborted}
	}
	if cycleFound {
		return d.cycleFound(det, alg)
	}
	agg := Outcome{Kind: OutcomeBranchEnded}
	cur := alg
	for _, ref := range alg.SourceRefs() {
		if ref.Dst.Node != d.self {
			continue
		}
		sc := sum.Scion(ref)
		if sc == nil || sc.LocalReach {
			continue
		}
		out := d.expand(sum, det, sc, cur, hops, trace)
		switch out.Kind {
		case OutcomeCycleFound, OutcomeAborted:
			return out
		case OutcomeForwarded:
			agg.Kind = OutcomeForwarded
			agg.Forwarded += out.Forwarded
			agg.Derived = out.Derived
			// Later expansions work off the grown view so they recognize
			// (and skip re-shipping) what this relaunch already sent.
			cur = *out.Derived
		}
	}
	return agg
}

// cycleFound deletes this node's scions named in the CDM source set and,
// optionally, notifies the owners of the remaining ones.
func (d *Detector) cycleFound(det DetectionID, alg Alg) Outcome {
	d.Stats.CyclesFound++
	garbage := alg.SourceRefs()
	for _, ref := range garbage {
		if ref.Dst.Node == d.self {
			d.actions.DeleteOwnScion(ref)
			d.Stats.ScionsFreed++
		} else if d.cfg.BroadcastDelete {
			d.actions.SendDeleteScion(det, ref)
		}
	}
	return Outcome{Kind: OutcomeCycleFound, GarbageScions: garbage}
}

// HandleDeleteScion processes a DeleteScion notification (BroadcastDelete
// mode): the sender proved ref's scion belongs to a garbage cycle.
func (d *Detector) HandleDeleteScion(ref ids.RefID) {
	if ref.Dst.Node != d.self {
		return
	}
	d.actions.DeleteOwnScion(ref)
	d.Stats.ScionsFreed++
}

// expand implements the forwarding step: from the scion sc (either the
// candidate at detection start or the scion a CDM arrived at), build ONE
// derivation that merges every followable stub and its dependencies into
// the algebra, and forward it along each of those stubs.
//
// The paper's worked examples derive a separate algebra per stub (Alg_1a,
// Alg_1b, ...); merging is equivalent for detection purposes — cycle-found
// still requires every source scion matched by a consistently-countered
// stub — but makes the algebra a function of the VISITED SET rather than
// the traversal order. Per-path derivations explode combinatorially on
// dense graphs (every interleaving of a diamond yields a distinct algebra
// that keeps breeding); the merged form converges to the closure in
// O(closure) growth steps and lets receivers deduplicate identical CDMs.
func (d *Detector) expand(sum *snapshot.Summary, det DetectionID, sc *snapshot.ScionSummary, alg Alg, hops int, trace uint64) Outcome {
	maxHops := d.cfg.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	if hops >= maxHops {
		return Outcome{Kind: OutcomeBranchEnded}
	}

	derived := alg.Clone()
	conflict := false
	var eligible []ids.GlobalRef
	for _, tgt := range sc.StubsFrom {
		st := sum.Stub(tgt)
		if st == nil {
			// Stub vanished from the summary (rule 2's mirror): the path
			// cannot be followed consistently; skip it.
			continue
		}
		if st.LocalReach {
			// "Those stubs that are locally reachable are immediately
			// discarded from the point of view of the DCDA" (§2.1): the
			// path may be live; do not follow it.
			continue
		}
		eligible = append(eligible, tgt)
		if _, c := derived.AddTarget(ids.RefID{Src: d.self, Dst: tgt}, st.IC); c {
			conflict = true
		}
		// "All other scions that may lead to any of the aforementioned
		// stubs are included as dependencies" (§2.1, §3.1 step 5).
		for _, dep := range st.ScionsTo {
			depSc := sum.Scion(dep)
			if depSc == nil {
				continue
			}
			if _, c := derived.AddSource(dep, depSc.IC); c {
				conflict = true
			}
		}
	}
	if conflict {
		// Same reference observed with two different counters: race.
		d.Stats.Aborted++
		return Outcome{Kind: OutcomeAborted}
	}
	if d.cfg.EagerAbort {
		// §3.2 optimization: analyze unmatched counters before sending.
		if _, abort := derived.MatchStatus(); abort {
			d.Stats.Aborted++
			return Outcome{Kind: OutcomeAborted}
		}
	}
	if len(eligible) == 0 {
		return Outcome{Kind: OutcomeBranchEnded}
	}
	if derived.Equal(alg) {
		// §3.1 step 15: the derivation holds no new information — the
		// branch would loop forever denouncing the same dependency.
		return Outcome{Kind: OutcomeBranchEnded}
	}
	if d.cfg.EagerComplete {
		// The derivation already closes: declare here instead of forwarding
		// it along every eligible stub for the receivers to conclude the
		// same thing from the same algebra.
		if found, _ := derived.MatchStatus(); found {
			return d.cycleFound(det, derived)
		}
	}
	if d.cfg.MaxAlgebraSize > 0 && derived.Len() > d.cfg.MaxAlgebraSize {
		return Outcome{Kind: OutcomeBranchEnded}
	}
	alongs := make([]ids.RefID, len(eligible))
	for i, tgt := range eligible {
		alongs[i] = ids.RefID{Src: d.self, Dst: tgt}
	}
	d.actions.SendCDMs(det, trace, alongs, derived, hops+1)
	d.Stats.CDMsSent += uint64(len(eligible))
	return Outcome{Kind: OutcomeForwarded, Forwarded: len(eligible), Derived: &derived}
}
