package core

import (
	"testing"
)

// TestEagerAbortStopsBeforeForwarding reproduces the §3.2 optimization: in
// the arrival-guard race (P1 re-summarized after an invocation, P2 did
// not), eager mode aborts at P1 — before the final hop — instead of
// shipping the doomed CDM to P2.
func TestEagerAbortStopsBeforeForwarding(t *testing.T) {
	f := buildFig3(t, Config{EagerAbort: true})
	out := f.start(f.refF)
	if out.Kind != OutcomeForwarded {
		t.Fatalf("start = %+v", out)
	}
	// Invocation crosses P1 -> F@P2 after the detection started.
	if _, err := f.proc("P1").tb.BumpStubIC(f.refF.Dst); err != nil {
		t.Fatal(err)
	}
	if _, err := f.proc("P2").tb.BumpScionIC("P1", f.objF); err != nil {
		t.Fatal(err)
	}
	f.summarize("P1", 2)

	f.pump()
	if len(f.found) != 0 {
		t.Fatal("race produced a false detection")
	}
	// The abort happens at P1 (the sender), not P2.
	if got := f.proc("P1").det.Stats.Aborted; got != 1 {
		t.Fatalf("P1 aborted = %d, want 1 (eager)", got)
	}
	if got := f.proc("P2").det.Stats.Aborted; got != 0 {
		t.Fatalf("P2 aborted = %d, want 0 (CDM never sent)", got)
	}
	// One hop saved: P1 sent nothing.
	if got := f.proc("P1").det.Stats.CDMsSent; got != 0 {
		t.Fatalf("P1 sent %d CDMs, want 0", got)
	}
}

// TestEagerAbortOffForwardsToFinalHop pins the default behaviour: without
// the optimization the mismatch is discovered on arrival at P2 (one extra
// message), exactly as in the paper's main description.
func TestEagerAbortOffForwardsToFinalHop(t *testing.T) {
	f := buildFig3(t, Config{})
	f.start(f.refF)
	if _, err := f.proc("P1").tb.BumpStubIC(f.refF.Dst); err != nil {
		t.Fatal(err)
	}
	if _, err := f.proc("P2").tb.BumpScionIC("P1", f.objF); err != nil {
		t.Fatal(err)
	}
	f.summarize("P1", 2)
	f.pump()
	if got := f.proc("P1").det.Stats.CDMsSent; got != 1 {
		t.Fatalf("P1 sent %d CDMs, want 1", got)
	}
	if got := f.proc("P2").det.Stats.Aborted; got != 1 {
		t.Fatalf("P2 aborted = %d, want 1", got)
	}
}

// TestEagerAbortDoesNotDisturbCleanDetection ensures the optimization is
// inert when counters are consistent.
func TestEagerAbortDoesNotDisturbCleanDetection(t *testing.T) {
	f := buildFig3(t, Config{EagerAbort: true})
	f.start(f.refF)
	f.pump()
	if len(f.found) != 1 || len(f.found[0].GarbageScions) != 4 {
		t.Fatalf("clean detection disturbed: %+v", f.found)
	}
}
