package core

import (
	"dgc/internal/ids"
	"dgc/internal/snapshot"
)

// Selector implements a candidate-selection heuristic for cycle detection.
//
// The paper leaves candidate selection out of scope ("efficient selection of
// cycle candidates is an issue out of the scope of this paper; heuristics
// found in the literature may be used") but describes the intuition in §2.1:
// an object kept alive solely by remote references that has not been invoked
// for a certain amount of time is a reasonable guess. The Selector tracks a
// logical last-activity time per scion and nominates scions that are
//
//   - not locally reachable in the summarized snapshot,
//   - have at least one outgoing path (StubsFrom non-empty), and
//   - have been quiescent for at least MinAge ticks.
//
// Any selection policy is safe — the DCDA itself rejects live candidates —
// so this type only affects efficiency, never correctness.
type Selector struct {
	// MinAge is the quiescence threshold in logical ticks.
	MinAge uint64

	lastActivity map[ids.RefID]uint64
}

// NewSelector returns a selector with the given quiescence threshold.
func NewSelector(minAge uint64) *Selector {
	return &Selector{MinAge: minAge, lastActivity: make(map[ids.RefID]uint64)}
}

// Touch records activity (creation or invocation) on a scion at the given
// logical time, postponing its candidacy.
func (s *Selector) Touch(ref ids.RefID, now uint64) {
	s.lastActivity[ref] = now
}

// Forget drops bookkeeping for a deleted scion.
func (s *Selector) Forget(ref ids.RefID) {
	delete(s.lastActivity, ref)
}

// Candidates returns the scions of sum eligible for detection at logical
// time now, in canonical order. Scions never touched are treated as created
// at time zero.
func (s *Selector) Candidates(sum *snapshot.Summary, now uint64) []ids.RefID {
	var out []ids.RefID
	for ref, sc := range sum.Scions {
		if sc.LocalReach || len(sc.StubsFrom) == 0 {
			continue
		}
		last := s.lastActivity[ref]
		if now < last+s.MinAge {
			continue
		}
		out = append(out, ref)
	}
	ids.SortRefIDs(out)
	return out
}
