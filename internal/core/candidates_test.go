package core

import (
	"testing"

	"dgc/internal/ids"
)

func TestSelectorNominatesQuiescentUnreachableScions(t *testing.T) {
	f := buildFig3(t, Config{})
	sel := NewSelector(5)
	p2sum := f.proc("P2").sum

	// Never touched: eligible from time MinAge onwards (created at 0).
	if got := sel.Candidates(p2sum, 4); len(got) != 0 {
		t.Fatalf("too-young candidates = %v", got)
	}
	got := sel.Candidates(p2sum, 5)
	if len(got) != 1 || got[0] != f.refF {
		t.Fatalf("candidates = %v, want [%v]", got, f.refF)
	}
}

func TestSelectorTouchPostponesCandidacy(t *testing.T) {
	f := buildFig3(t, Config{})
	sel := NewSelector(5)
	sel.Touch(f.refF, 10)
	p2sum := f.proc("P2").sum
	if got := sel.Candidates(p2sum, 14); len(got) != 0 {
		t.Fatalf("touched scion nominated too early: %v", got)
	}
	if got := sel.Candidates(p2sum, 15); len(got) != 1 {
		t.Fatalf("candidates = %v", got)
	}
}

func TestSelectorSkipsLocallyReachable(t *testing.T) {
	f := buildFig3(t, Config{})
	if err := f.proc("P2").h.AddRoot(f.objF); err != nil {
		t.Fatal(err)
	}
	f.summarizeAll(2)
	sel := NewSelector(0)
	if got := sel.Candidates(f.proc("P2").sum, 100); len(got) != 0 {
		t.Fatalf("locally reachable scion nominated: %v", got)
	}
}

func TestSelectorSkipsScionsWithoutOutgoingPath(t *testing.T) {
	// A scion whose object reaches no stub cannot head a distributed cycle.
	f := buildFig3(t, Config{})
	p2 := f.proc("P2")
	leaf := p2.h.Alloc(nil)
	p2.tb.EnsureScion("P9", leaf.ID)
	f.summarizeAll(2)
	sel := NewSelector(0)
	got := sel.Candidates(p2.sum, 100)
	if len(got) != 1 || got[0] != f.refF {
		t.Fatalf("candidates = %v, want only %v", got, f.refF)
	}
}

func TestSelectorForget(t *testing.T) {
	sel := NewSelector(5)
	r := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 1}}
	sel.Touch(r, 100)
	sel.Forget(r)
	if sel.lastActivity[r] != 0 {
		t.Fatal("Forget did not clear activity")
	}
}

func TestSelectorDeterministicOrder(t *testing.T) {
	f := buildFig4(t, Config{})
	sel := NewSelector(0)
	p5sum := f.proc("P5").sum
	a := sel.Candidates(p5sum, 1)
	b := sel.Candidates(p5sum, 1)
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("nondeterministic candidates: %v vs %v", a, b)
	}
	if !a[0].Less(a[1]) {
		t.Fatalf("candidates not sorted: %v", a)
	}
}
