// Package core implements the paper's primary contribution: the Distributed
// Cycle Detection Algorithm (DCDA) and the algebraic representation carried
// by cycle detection messages (CDMs).
//
// A CDM carries two sets over inter-process references (§3 "Algebra"):
//
//   - the SOURCE set: compiled dependencies — scions that lead into the
//     distributed sub-graph traced so far; every one of them must be
//     resolved (traced through) before a cycle may be declared;
//   - the TARGET set: the stubs the message has been forwarded along.
//
// Following the paper's implementation note (§4: "each scion/stub
// representation holds two bits, indicating whether they are present in the
// CDM source and/or target set"), the algebra is stored as one entry per
// reference with two presence bits plus the invocation counter observed on
// each side. Matching removes references present in both sets when their
// counters agree; a counter disagreement proves a mutator invocation raced
// the detection and aborts it (§3.2).
//
// Representation: entries are keyed by a process-local interned reference id
// (see ids.Interner) and kept in a slice sorted by that id. Derivation
// clones are a single slice copy, matching is a linear scan, and merging two
// algebras is a linear merge-join — the string-keyed map this replaces made
// every CDM hop rehash and copy each reference. The map implementation is
// retained as algReference in the package tests and the two are verified
// equivalent (including wire bytes) by property tests.
package core

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"dgc/internal/ids"
)

// Entry records one reference's state within a CDM.
type Entry struct {
	InSource bool   // present in the source (dependency/scion) set
	SrcIC    uint64 // scion-side invocation counter (valid when InSource)
	InTarget bool   // present in the target (stub) set
	TgtIC    uint64 // stub-side invocation counter (valid when InTarget)
}

// Presence bits of algEntry.bits.
const (
	bitSource = 1 << 0
	bitTarget = 1 << 1
)

// algEntry is the dense in-memory form of one algebra entry: the interned
// reference id, packed presence bits and both invocation counters. Counters
// are kept even when the matching bit is clear, mirroring the map
// representation where a full Entry value sat under each key.
type algEntry struct {
	ref   int32
	bits  uint8
	srcIC uint64
	tgtIC uint64
}

func (e algEntry) entry() Entry {
	return Entry{
		InSource: e.bits&bitSource != 0,
		SrcIC:    e.srcIC,
		InTarget: e.bits&bitTarget != 0,
		TgtIC:    e.tgtIC,
	}
}

func packEntry(ref int32, e Entry) algEntry {
	var bits uint8
	if e.InSource {
		bits |= bitSource
	}
	if e.InTarget {
		bits |= bitTarget
	}
	return algEntry{ref: ref, bits: bits, srcIC: e.SrcIC, tgtIC: e.TgtIC}
}

// refTab interns every RefID that enters a CDM algebra in this process.
// Interned ids are process-local (never on the wire) and grow with the set
// of distinct references seen, which the reference-listing tables bound.
var refTab = ids.NewInterner()

// InternRef exposes the algebra's interning table: the stable dense id for
// r in this process. Intended for diagnostics and tests.
func InternRef(r ids.RefID) int32 { return refTab.Intern(r) }

// Alg is the CDM algebra: a mapping from references to entries. The zero
// value is not usable; construct with NewAlg. Alg values are mutated by Add*
// and copied with Clone before derivation, mirroring the paper's CDM
// derivations (Alg_1a, Alg_1b, ...).
type Alg struct {
	s *algState
}

// algState holds the entries sorted by interned reference id. Alg is a
// value-with-pointer so the historical value-receiver mutation API keeps
// working.
type algState struct {
	entries []algEntry
}

// NewAlg returns an empty algebra.
func NewAlg() Alg {
	return Alg{s: &algState{}}
}

// NewAlgSized returns an empty algebra with capacity for n entries — the
// CDM-decode constructor, which knows the entry count up front.
func NewAlgSized(n int) Alg {
	return Alg{s: &algState{entries: make([]algEntry, 0, n)}}
}

// find returns the index of ref in the sorted entry slice, or the insertion
// point with ok=false.
func (s *algState) find(ref int32) (int, bool) {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.entries[mid].ref < ref {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.entries) && s.entries[lo].ref == ref
}

// insertAt splices e into the sorted slice at index i.
func (s *algState) insertAt(i int, e algEntry) {
	s.entries = append(s.entries, algEntry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
}

// cloneSlack is the spare capacity a Clone carries: the cloner is the
// detector's derivation step, which immediately adds the followed stub and a
// handful of dependencies, and the slack makes those inserts realloc-free.
const cloneSlack = 8

// inlineEntries is the entry capacity allocated inline with the state header
// on small clones. The paper's cycles span a handful of processes, so most
// derivations fit and clone in ONE allocation; larger algebras fall back to
// a separate backing array.
const inlineEntries = 24

// algBlock co-allocates an algState with its initial backing array. Growth
// past the inline capacity reallocates the slice away from buf as usual.
type algBlock struct {
	algState
	buf [inlineEntries]algEntry
}

// Clone returns an independent copy: a single slice copy, with slack for the
// derivation's inserts, in one allocation for small algebras.
func (a Alg) Clone() Alg {
	es := a.entries()
	if len(es)+cloneSlack <= inlineEntries {
		b := &algBlock{}
		b.entries = append(b.buf[:0:inlineEntries], es...)
		return Alg{s: &b.algState}
	}
	return Alg{s: &algState{entries: append(make([]algEntry, 0, len(es)+cloneSlack), es...)}}
}

// AddSource inserts ref into the source set with the given scion-side
// invocation counter.
//
// changed reports whether the algebra grew. conflict reports that ref was
// already in the source set with a DIFFERENT counter — possible only when
// two distinct snapshot versions of the same process were combined into one
// CDM-Graph with an interleaved invocation, which is exactly the race the
// algorithm must abort on.
func (a Alg) AddSource(ref ids.RefID, ic uint64) (changed, conflict bool) {
	id := refTab.Intern(ref)
	i, ok := a.s.find(id)
	if ok {
		e := &a.s.entries[i]
		if e.bits&bitSource != 0 {
			return false, e.srcIC != ic
		}
		e.bits |= bitSource
		e.srcIC = ic
		return true, false
	}
	a.s.insertAt(i, algEntry{ref: id, bits: bitSource, srcIC: ic})
	return true, false
}

// AddTarget inserts ref into the target set with the given stub-side
// invocation counter. Semantics mirror AddSource.
func (a Alg) AddTarget(ref ids.RefID, ic uint64) (changed, conflict bool) {
	id := refTab.Intern(ref)
	i, ok := a.s.find(id)
	if ok {
		e := &a.s.entries[i]
		if e.bits&bitTarget != 0 {
			return false, e.tgtIC != ic
		}
		e.bits |= bitTarget
		e.tgtIC = ic
		return true, false
	}
	a.s.insertAt(i, algEntry{ref: id, bits: bitTarget, tgtIC: ic})
	return true, false
}

// Get returns the entry recorded for ref.
func (a Alg) Get(ref ids.RefID) (Entry, bool) {
	if a.s == nil {
		return Entry{}, false
	}
	id, ok := refTab.Lookup(ref)
	if !ok {
		return Entry{}, false
	}
	i, ok := a.s.find(id)
	if !ok {
		return Entry{}, false
	}
	return a.s.entries[i].entry(), true
}

// Set stores a full entry for ref, replacing any previous one. Primarily a
// constructor aid (CDM decode) and test hook; protocol code grows algebras
// through AddSource/AddTarget.
func (a Alg) Set(ref ids.RefID, e Entry) {
	id := refTab.Intern(ref)
	i, ok := a.s.find(id)
	if ok {
		a.s.entries[i] = packEntry(id, e)
		return
	}
	a.s.insertAt(i, packEntry(id, e))
}

// Delete removes ref's entry, if present.
func (a Alg) Delete(ref ids.RefID) {
	if a.s == nil {
		return
	}
	id, ok := refTab.Lookup(ref)
	if !ok {
		return
	}
	i, ok := a.s.find(id)
	if !ok {
		return
	}
	a.s.entries = append(a.s.entries[:i], a.s.entries[i+1:]...)
}

// Each calls fn for every entry until fn returns false. Iteration order is
// unspecified (it is the interning order, not the canonical reference
// order); callers needing determinism sort, as with the map this replaces.
func (a Alg) Each(fn func(ids.RefID, Entry) bool) {
	if a.s == nil {
		return
	}
	for _, e := range a.s.entries {
		if !fn(refTab.Ref(e.ref), e.entry()) {
			return
		}
	}
}

// canonRanks maps every interned reference id to its rank in the canonical
// (RefID.Less) order over all references interned so far. Restricting the
// ranks to any subset of references preserves their canonical relative order,
// so sorting algebra entries by rank is an integer sort that yields exactly
// the string order — the wire flattener's hot path.
//
// The cache is published through an atomic pointer, so readers never lock.
// Coverage is checked per interner shard: the cache records the per-shard id
// counts it was built from, and a caller's snapshot exceeding any of them
// proves new ids exist (shard counters are monotone, and a caller always
// observes the counts covering its own entries' ids). A per-shard check is
// required — comparing only the summed total could, under concurrent
// assignment, balance a stale low read of one shard against a fresh high
// read of another and wrongly validate a stale table.
//
// Rebuilds are incremental: only ids assigned since the cached generation
// are sorted (O(new log new)) and merged with the previous canonical order
// (O(n)), instead of re-sorting the whole table. With sharded interleaved
// id spaces the ranks slice has holes at unassigned ids; they are never
// read, because every queried id comes from an algebra entry.
type rankCache struct {
	ranks  []int32                 // id -> canonical rank, holes unassigned
	sorted []int32                 // assigned ids in canonical order
	lens   [ids.InternShards]int32 // per-shard id counts at build time
}

var (
	canonMu  sync.Mutex
	canonPtr atomic.Pointer[rankCache]
)

// covers reports whether a cache built at lens still covers a current
// shard-count snapshot.
func (c *rankCache) covers(cur [ids.InternShards]int32) bool {
	for s, n := range cur {
		if n > c.lens[s] {
			return false
		}
	}
	return true
}

func canonRanks() []int32 {
	cur := refTab.ShardLens()
	if c := canonPtr.Load(); c != nil && c.covers(cur) {
		return c.ranks
	}
	canonMu.Lock()
	defer canonMu.Unlock()
	cur = refTab.ShardLens()
	prev := canonPtr.Load()
	if prev != nil && prev.covers(cur) {
		return prev.ranks
	}
	var prevSorted []int32
	var prevLens [ids.InternShards]int32
	if prev != nil {
		prevSorted, prevLens = prev.sorted, prev.lens
	}
	fresh := make([]int32, 0, 64)
	for s := 0; s < ids.InternShards; s++ {
		for local := prevLens[s]; local < cur[s]; local++ {
			fresh = append(fresh, local*ids.InternShards+int32(s))
		}
	}
	less := func(x, y int32) int {
		rx, ry := refTab.Ref(x), refTab.Ref(y)
		if rx.Less(ry) {
			return -1
		}
		if ry.Less(rx) {
			return 1
		}
		return 0
	}
	slices.SortFunc(fresh, less)
	sorted := make([]int32, 0, len(prevSorted)+len(fresh))
	i, j := 0, 0
	for i < len(prevSorted) && j < len(fresh) {
		if less(prevSorted[i], fresh[j]) < 0 {
			sorted = append(sorted, prevSorted[i])
			i++
		} else {
			sorted = append(sorted, fresh[j])
			j++
		}
	}
	sorted = append(sorted, prevSorted[i:]...)
	sorted = append(sorted, fresh[j:]...)
	ranks := make([]int32, ids.InternBound(cur))
	for rank, id := range sorted {
		ranks[id] = int32(rank)
	}
	c := &rankCache{ranks: ranks, sorted: sorted, lens: cur}
	canonPtr.Store(c)
	return ranks
}

// EachCanonical calls fn for every entry in canonical reference order (the
// order ids.SortRefIDs produces) until fn returns false. Unlike sorting the
// output of Each, the iteration order is decided by comparing cached integer
// ranks, never by re-comparing reference strings.
func (a Alg) EachCanonical(fn func(ids.RefID, Entry) bool) {
	a.EachCanonicalInterned(func(_ int32, r ids.RefID, e Entry) bool {
		return fn(r, e)
	})
}

// EachCanonicalInterned is EachCanonical with the entry's interned id also
// supplied, for callers that cache ids alongside flattened entries (the wire
// layer keeps them next to CDM entries so in-process deliveries rebuild
// algebras without re-hashing references).
// canonScratch pools the sort scratch of EachCanonicalInterned: the sorted
// view is only needed for the duration of one iteration, so the detection
// fan-out path allocates nothing for ordering.
var canonScratch = sync.Pool{New: func() any { return new([]algEntry) }}

func (a Alg) EachCanonicalInterned(fn func(id int32, r ids.RefID, e Entry) bool) {
	es := a.entries()
	switch len(es) {
	case 0:
		return
	case 1:
		fn(es[0].ref, refTab.Ref(es[0].ref), es[0].entry())
		return
	}
	ranks := canonRanks()
	sp := canonScratch.Get().(*[]algEntry)
	defer canonScratch.Put(sp)
	tmp := append((*sp)[:0], es...)
	*sp = tmp
	slices.SortFunc(tmp, func(x, y algEntry) int {
		return int(ranks[x.ref]) - int(ranks[y.ref])
	})
	for _, e := range tmp {
		if !fn(e.ref, refTab.Ref(e.ref), e.entry()) {
			return
		}
	}
}

// BuildAlg constructs an algebra from the n entries produced by at(0..n-1).
// It is the bulk form of repeated Set — entries are interned and appended,
// then sorted once by interned id (an integer sort) — and the constructor of
// choice for CDM decode, where the per-entry sorted insertion of Set turned
// message rebuild quadratic. When at yields the same reference more than
// once, the last occurrence wins, matching Set semantics.
func BuildAlg(n int, at func(int) (ids.RefID, Entry)) Alg {
	entries := make([]algEntry, 0, n)
	for i := 0; i < n; i++ {
		r, e := at(i)
		entries = append(entries, packEntry(refTab.Intern(r), e))
	}
	slices.SortStableFunc(entries, func(x, y algEntry) int {
		return int(x.ref) - int(y.ref)
	})
	out := entries[:0]
	for i := range entries {
		if i+1 < len(entries) && entries[i+1].ref == entries[i].ref {
			continue // a later duplicate overrides this one
		}
		out = append(out, entries[i])
	}
	return Alg{s: &algState{entries: out}}
}

// BuildAlgInterned is BuildAlg for entries whose references are already
// interned: at yields the interned id directly, so construction performs no
// reference hashing at all. ids must come from this process's interning table
// (InternRef / EachCanonicalInterned) — feeding a peer's ids corrupts the
// algebra, which is why interned ids never travel on the wire.
func BuildAlgInterned(n int, at func(int) (int32, Entry)) Alg {
	entries := make([]algEntry, 0, n)
	for i := 0; i < n; i++ {
		id, e := at(i)
		entries = append(entries, packEntry(id, e))
	}
	slices.SortStableFunc(entries, func(x, y algEntry) int {
		return int(x.ref) - int(y.ref)
	})
	out := entries[:0]
	for i := range entries {
		if i+1 < len(entries) && entries[i+1].ref == entries[i].ref {
			continue
		}
		out = append(out, entries[i])
	}
	return Alg{s: &algState{entries: out}}
}

// Equal reports whether two algebras hold exactly the same entries. Used for
// the branch-termination rule of §3.1 step 15: a derivation identical to the
// delivered CDM carries no new information and must not be forwarded.
func (a Alg) Equal(b Alg) bool {
	ae, be := a.entries(), b.entries()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func (a Alg) entries() []algEntry {
	if a.s == nil {
		return nil
	}
	return a.s.entries
}

// Len returns the number of distinct references in the algebra.
func (a Alg) Len() int { return len(a.entries()) }

// SourceRefs returns the references in the source set, in canonical order.
// When a cycle is found, these are precisely the scions of the garbage
// cycle.
func (a Alg) SourceRefs() []ids.RefID {
	var out []ids.RefID
	for _, e := range a.entries() {
		if e.bits&bitSource != 0 {
			out = append(out, refTab.Ref(e.ref))
		}
	}
	ids.SortRefIDs(out)
	return out
}

// TargetRefs returns the references in the target set, in canonical order.
func (a Alg) TargetRefs() []ids.RefID {
	var out []ids.RefID
	for _, e := range a.entries() {
		if e.bits&bitTarget != 0 {
			out = append(out, refTab.Ref(e.ref))
		}
	}
	ids.SortRefIDs(out)
	return out
}

// MatchResult is the outcome of algebra matching at one process (§3 "CDM
// Matching").
type MatchResult struct {
	// Unresolved lists references in the source set with no matching target
	// entry: dependencies not yet traced (e.g. {Y_P5} in §3.1 step 10).
	Unresolved []ids.RefID
	// Frontier lists references in the target set with no matching source
	// entry: the wave front of the detection.
	Frontier []ids.RefID
	// Abort is set when a reference present in both sets carries different
	// invocation counters: a remote invocation raced the detection (§3.2
	// step 8: "different IC values (x and x+1) ... detection abort").
	Abort bool
	// AbortRef names the reference that triggered the abort.
	AbortRef ids.RefID
	// CycleFound is set when the reduced SOURCE set is empty and no abort
	// occurred: every dependency scion has been traversed with consistent
	// invocation counters.
	//
	// The paper states the condition as "Matching(Alg_4) => {{} -> {}}"
	// because with its per-path derivations a completed cycle leaves both
	// sets empty. With this package's merged derivations (see
	// Detector.expand) followed-but-dead-end stubs legitimately remain as
	// frontier leftovers, so the safe and complete condition is
	// source-empty: each matched source scion is proven (a) not locally
	// reachable at its holder (Local.Reach false on the followed stub) and
	// (b) reachable only through scions that are themselves in the matched
	// source set — a closed induction showing no root reaches any of them.
	// Frontier-only entries never participate in that proof.
	CycleFound bool
}

// Match performs algebraic matching. It is a pure view: the algebra itself
// is not reduced, because the full sets are still needed by downstream
// processes (the paper's Alg_n always carries full sets). Detection hot
// paths that only need the verdict use MatchStatus, which allocates nothing.
func (a Alg) Match() MatchResult {
	var res MatchResult
	for _, e := range a.entries() {
		switch e.bits {
		case bitSource | bitTarget:
			if e.srcIC != e.tgtIC {
				res.Abort = true
				// Prefer the smallest aborting ref for determinism.
				r := refTab.Ref(e.ref)
				if res.AbortRef == (ids.RefID{}) || r.Less(res.AbortRef) {
					res.AbortRef = r
				}
			}
		case bitSource:
			res.Unresolved = append(res.Unresolved, refTab.Ref(e.ref))
		case bitTarget:
			res.Frontier = append(res.Frontier, refTab.Ref(e.ref))
		}
	}
	ids.SortRefIDs(res.Unresolved)
	ids.SortRefIDs(res.Frontier)
	res.CycleFound = !res.Abort && len(res.Unresolved) == 0
	return res
}

// MatchStatus is the allocation-free core of Match: one linear scan over the
// dense entries yielding only the verdict bits the detector acts on.
// Equivalent to m := Match(); (m.CycleFound, m.Abort).
func (a Alg) MatchStatus() (cycleFound, abort bool) {
	unresolved := false
	for _, e := range a.entries() {
		switch e.bits {
		case bitSource | bitTarget:
			if e.srcIC != e.tgtIC {
				abort = true
			}
		case bitSource:
			unresolved = true
		}
	}
	return !abort && !unresolved, abort
}

// Merge unions b's entries into a. changed reports whether a grew;
// conflict reports that some reference carries different invocation
// counters on the same side in a and b — two inconsistent observations of
// the same reference, i.e. a mutator race (the detection must abort).
//
// Merging is how a node combines CDMs of one detection that arrived over
// different paths: the CDM-Graph is a set of consistent snapshot fragments,
// and the union of two consistent sets is consistent exactly when the
// counter equality holds. Nodes keep the merged algebra as droppable cache
// state — losing it costs repeated work, never correctness.
//
// Both operands are sorted by interned id, so the union is a linear
// merge-join. A first detection pass avoids allocating when b adds nothing —
// the common case for re-delivered CDMs, which the node layer dedupes on
// changed=false.
func (a Alg) Merge(b Alg) (changed, conflict bool) {
	return a.mergeEntries(b.entries())
}

// MergeInterned unions n pre-interned entries, yielded by at(0..n-1) as
// (interned id, Entry) pairs in any order, into a. It is Merge without the
// intermediate algebra: the receive path merges a flattened in-process CDM
// straight into its accumulator, ordering the operand in a pooled scratch
// buffer. Semantics (changed/conflict, last-duplicate-wins) match building
// an algebra from the same pairs and merging it.
func (a Alg) MergeInterned(n int, at func(int) (int32, Entry)) (changed, conflict bool) {
	if n == 0 {
		return false, false
	}
	sp := canonScratch.Get().(*[]algEntry)
	defer canonScratch.Put(sp)
	tmp := (*sp)[:0]
	for i := 0; i < n; i++ {
		id, e := at(i)
		tmp = append(tmp, packEntry(id, e))
	}
	*sp = tmp
	slices.SortStableFunc(tmp, func(x, y algEntry) int {
		return int(x.ref) - int(y.ref)
	})
	be := tmp[:0]
	for i := range tmp {
		if i+1 < len(tmp) && tmp[i+1].ref == tmp[i].ref {
			continue
		}
		be = append(be, tmp[i])
	}
	return a.mergeEntries(be)
}

func (a Alg) mergeEntries(be []algEntry) (changed, conflict bool) {
	ae := a.entries()
	if len(be) == 0 {
		return false, false
	}
	// Detection pass: does b add any entry or presence bit?
	i, j := 0, 0
	for i < len(ae) && j < len(be) && !changed {
		switch {
		case ae[i].ref < be[j].ref:
			i++
		case ae[i].ref > be[j].ref:
			changed = true
		default:
			if be[j].bits&^ae[i].bits != 0 {
				changed = true
			}
			i++
			j++
		}
	}
	if j < len(be) {
		changed = true
	}
	if !changed {
		// Pure subset: only counter consistency can differ.
		i, j = 0, 0
		for i < len(ae) && j < len(be) {
			switch {
			case ae[i].ref < be[j].ref:
				i++
			default:
				if mergeConflict(ae[i], be[j]) {
					conflict = true
				}
				i++
				j++
			}
		}
		return false, conflict
	}

	out := make([]algEntry, 0, len(ae)+len(be))
	i, j = 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i].ref < be[j].ref:
			out = append(out, ae[i])
			i++
		case ae[i].ref > be[j].ref:
			out = append(out, be[j])
			j++
		default:
			m := ae[i]
			eb := be[j]
			if eb.bits&bitSource != 0 {
				if m.bits&bitSource != 0 {
					if m.srcIC != eb.srcIC {
						conflict = true
					}
				} else {
					m.bits |= bitSource
					m.srcIC = eb.srcIC
				}
			}
			if eb.bits&bitTarget != 0 {
				if m.bits&bitTarget != 0 {
					if m.tgtIC != eb.tgtIC {
						conflict = true
					}
				} else {
					m.bits |= bitTarget
					m.tgtIC = eb.tgtIC
				}
			}
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, ae[i:]...)
	out = append(out, be[j:]...)
	a.s.entries = out
	return true, conflict
}

// mergeConflict reports whether two observations of the same reference carry
// different counters on a side present in both.
func mergeConflict(ea, eb algEntry) bool {
	both := ea.bits & eb.bits
	return (both&bitSource != 0 && ea.srcIC != eb.srcIC) ||
		(both&bitTarget != 0 && ea.tgtIC != eb.tgtIC)
}

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// fpChunkSize is the slot count of one fingerprint-prefix cache chunk.
const fpChunkSize = 1024

type fpChunk [fpChunkSize]atomic.Uint64

// fpSpine caches, per interned reference id, the FNV-1a state after mixing
// the reference's strings — the expensive, entry-independent part of the
// per-entry hash. Slots are plain atomics in copy-on-write chunked storage:
// readers take no lock at all (the former RWMutex was read-locked once per
// entry per Fingerprint, a measurable serialization point under parallel
// detection). A zero slot means "not computed yet"; the prefix is a pure
// function of the reference, so racing fillers store the same value and a
// genuine zero-valued hash merely recomputes. fpGrowMu serializes spine
// growth only.
var (
	fpGrowMu sync.Mutex
	fpSpine  atomic.Pointer[[]*fpChunk]
)

func init() {
	fpSpine.Store(&[]*fpChunk{})
}

func fpMix(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= 0xFF
	h *= prime64
	return h
}

func fpMixU(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= prime64
		v >>= 8
	}
	return h
}

func fpRefPrefix(id int32) uint64 {
	ci, si := int(id)/fpChunkSize, int(id)%fpChunkSize
	spine := *fpSpine.Load()
	if ci >= len(spine) {
		fpGrowMu.Lock()
		spine = *fpSpine.Load()
		for ci >= len(spine) {
			grown := make([]*fpChunk, len(spine), len(spine)+1)
			copy(grown, spine)
			grown = append(grown, new(fpChunk))
			fpSpine.Store(&grown)
			spine = grown
		}
		fpGrowMu.Unlock()
	}
	slot := &spine[ci][si]
	if h := slot.Load(); h != 0 {
		return h
	}
	r := refTab.Ref(id)
	h := fpMix(uint64(offset64), string(r.Src))
	h = fpMix(h, string(r.Dst.Node))
	h = fpMixU(h, uint64(r.Dst.Obj))
	slot.Store(h)
	return h
}

// Fingerprint returns an order-independent 64-bit hash of the algebra's
// entries. Receivers use it (together with the detection id and arrival
// reference) to deduplicate CDMs that arrive through different paths with
// identical content; dropping such duplicates is always safe because CDM
// processing is deterministic. The string-dependent hash prefix is cached
// per interned reference, so repeat fingerprints never re-hash strings.
func (a Alg) Fingerprint() uint64 {
	// XOR of per-entry FNV-1a hashes: commutative, so no sorting needed.
	var acc uint64
	for _, e := range a.entries() {
		h := fpRefPrefix(e.ref)
		var bits uint64
		if e.bits&bitSource != 0 {
			bits |= 1
		}
		if e.bits&bitTarget != 0 {
			bits |= 2
		}
		h = fpMixU(h, bits)
		h = fpMixU(h, e.srcIC)
		h = fpMixU(h, e.tgtIC)
		acc ^= h
	}
	return acc
}

// String renders the algebra in the paper's notation, e.g.
// "{{P1->6@P2} -> {P2->17@P4}}", with invocation counters shown when
// non-zero.
func (a Alg) String() string {
	var b strings.Builder
	b.WriteString("{{")
	a.writeSide(&b, a.SourceRefs(), true)
	b.WriteString("} -> {")
	a.writeSide(&b, a.TargetRefs(), false)
	b.WriteString("}}")
	return b.String()
}

func (a Alg) writeSide(b *strings.Builder, refs []ids.RefID, source bool) {
	for i, r := range refs {
		if i > 0 {
			b.WriteString(", ")
		}
		e, _ := a.Get(r)
		ic := e.TgtIC
		if source {
			ic = e.SrcIC
		}
		if ic != 0 {
			fmt.Fprintf(b, "{%s, %d}", r, ic)
		} else {
			b.WriteString(r.String())
		}
	}
}
