// Package core implements the paper's primary contribution: the Distributed
// Cycle Detection Algorithm (DCDA) and the algebraic representation carried
// by cycle detection messages (CDMs).
//
// A CDM carries two sets over inter-process references (§3 "Algebra"):
//
//   - the SOURCE set: compiled dependencies — scions that lead into the
//     distributed sub-graph traced so far; every one of them must be
//     resolved (traced through) before a cycle may be declared;
//   - the TARGET set: the stubs the message has been forwarded along.
//
// Following the paper's implementation note (§4: "each scion/stub
// representation holds two bits, indicating whether they are present in the
// CDM source and/or target set"), the algebra is stored as one entry per
// reference with two presence bits plus the invocation counter observed on
// each side. Matching removes references present in both sets when their
// counters agree; a counter disagreement proves a mutator invocation raced
// the detection and aborts it (§3.2).
package core

import (
	"fmt"
	"strings"

	"dgc/internal/ids"
)

// Entry records one reference's state within a CDM.
type Entry struct {
	InSource bool   // present in the source (dependency/scion) set
	SrcIC    uint64 // scion-side invocation counter (valid when InSource)
	InTarget bool   // present in the target (stub) set
	TgtIC    uint64 // stub-side invocation counter (valid when InTarget)
}

// Alg is the CDM algebra: a mapping from references to entries. The zero
// value is not usable; construct with NewAlg. Alg values are mutated by Add*
// and copied with Clone before derivation, mirroring the paper's CDM
// derivations (Alg_1a, Alg_1b, ...).
type Alg struct {
	Entries map[ids.RefID]Entry
}

// NewAlg returns an empty algebra.
func NewAlg() Alg {
	return Alg{Entries: make(map[ids.RefID]Entry)}
}

// Clone returns an independent copy.
func (a Alg) Clone() Alg {
	c := Alg{Entries: make(map[ids.RefID]Entry, len(a.Entries))}
	for k, v := range a.Entries {
		c.Entries[k] = v
	}
	return c
}

// AddSource inserts ref into the source set with the given scion-side
// invocation counter.
//
// changed reports whether the algebra grew. conflict reports that ref was
// already in the source set with a DIFFERENT counter — possible only when
// two distinct snapshot versions of the same process were combined into one
// CDM-Graph with an interleaved invocation, which is exactly the race the
// algorithm must abort on.
func (a Alg) AddSource(ref ids.RefID, ic uint64) (changed, conflict bool) {
	e, ok := a.Entries[ref]
	if ok && e.InSource {
		return false, e.SrcIC != ic
	}
	e.InSource = true
	e.SrcIC = ic
	a.Entries[ref] = e
	return true, false
}

// AddTarget inserts ref into the target set with the given stub-side
// invocation counter. Semantics mirror AddSource.
func (a Alg) AddTarget(ref ids.RefID, ic uint64) (changed, conflict bool) {
	e, ok := a.Entries[ref]
	if ok && e.InTarget {
		return false, e.TgtIC != ic
	}
	e.InTarget = true
	e.TgtIC = ic
	a.Entries[ref] = e
	return true, false
}

// Equal reports whether two algebras hold exactly the same entries. Used for
// the branch-termination rule of §3.1 step 15: a derivation identical to the
// delivered CDM carries no new information and must not be forwarded.
func (a Alg) Equal(b Alg) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for k, v := range a.Entries {
		if bv, ok := b.Entries[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// Len returns the number of distinct references in the algebra.
func (a Alg) Len() int { return len(a.Entries) }

// SourceRefs returns the references in the source set, in canonical order.
// When a cycle is found, these are precisely the scions of the garbage
// cycle.
func (a Alg) SourceRefs() []ids.RefID {
	var out []ids.RefID
	for r, e := range a.Entries {
		if e.InSource {
			out = append(out, r)
		}
	}
	ids.SortRefIDs(out)
	return out
}

// TargetRefs returns the references in the target set, in canonical order.
func (a Alg) TargetRefs() []ids.RefID {
	var out []ids.RefID
	for r, e := range a.Entries {
		if e.InTarget {
			out = append(out, r)
		}
	}
	ids.SortRefIDs(out)
	return out
}

// MatchResult is the outcome of algebra matching at one process (§3 "CDM
// Matching").
type MatchResult struct {
	// Unresolved lists references in the source set with no matching target
	// entry: dependencies not yet traced (e.g. {Y_P5} in §3.1 step 10).
	Unresolved []ids.RefID
	// Frontier lists references in the target set with no matching source
	// entry: the wave front of the detection.
	Frontier []ids.RefID
	// Abort is set when a reference present in both sets carries different
	// invocation counters: a remote invocation raced the detection (§3.2
	// step 8: "different IC values (x and x+1) ... detection abort").
	Abort bool
	// AbortRef names the reference that triggered the abort.
	AbortRef ids.RefID
	// CycleFound is set when the reduced SOURCE set is empty and no abort
	// occurred: every dependency scion has been traversed with consistent
	// invocation counters.
	//
	// The paper states the condition as "Matching(Alg_4) => {{} -> {}}"
	// because with its per-path derivations a completed cycle leaves both
	// sets empty. With this package's merged derivations (see
	// Detector.expand) followed-but-dead-end stubs legitimately remain as
	// frontier leftovers, so the safe and complete condition is
	// source-empty: each matched source scion is proven (a) not locally
	// reachable at its holder (Local.Reach false on the followed stub) and
	// (b) reachable only through scions that are themselves in the matched
	// source set — a closed induction showing no root reaches any of them.
	// Frontier-only entries never participate in that proof.
	CycleFound bool
}

// Match performs algebraic matching. It is a pure view: the algebra itself
// is not reduced, because the full sets are still needed by downstream
// processes (the paper's Alg_n always carries full sets).
func (a Alg) Match() MatchResult {
	var res MatchResult
	for r, e := range a.Entries {
		switch {
		case e.InSource && e.InTarget:
			if e.SrcIC != e.TgtIC {
				res.Abort = true
				// Prefer the smallest aborting ref for determinism.
				if res.AbortRef == (ids.RefID{}) || r.Less(res.AbortRef) {
					res.AbortRef = r
				}
			}
		case e.InSource:
			res.Unresolved = append(res.Unresolved, r)
		case e.InTarget:
			res.Frontier = append(res.Frontier, r)
		}
	}
	ids.SortRefIDs(res.Unresolved)
	ids.SortRefIDs(res.Frontier)
	res.CycleFound = !res.Abort && len(res.Unresolved) == 0
	return res
}

// Merge unions b's entries into a. changed reports whether a grew;
// conflict reports that some reference carries different invocation
// counters on the same side in a and b — two inconsistent observations of
// the same reference, i.e. a mutator race (the detection must abort).
//
// Merging is how a node combines CDMs of one detection that arrived over
// different paths: the CDM-Graph is a set of consistent snapshot fragments,
// and the union of two consistent sets is consistent exactly when the
// counter equality holds. Nodes keep the merged algebra as droppable cache
// state — losing it costs repeated work, never correctness.
func (a Alg) Merge(b Alg) (changed, conflict bool) {
	for r, eb := range b.Entries {
		ea, ok := a.Entries[r]
		if !ok {
			a.Entries[r] = eb
			changed = true
			continue
		}
		merged := ea
		if eb.InSource {
			if ea.InSource {
				if ea.SrcIC != eb.SrcIC {
					conflict = true
				}
			} else {
				merged.InSource = true
				merged.SrcIC = eb.SrcIC
				changed = true
			}
		}
		if eb.InTarget {
			if ea.InTarget {
				if ea.TgtIC != eb.TgtIC {
					conflict = true
				}
			} else {
				merged.InTarget = true
				merged.TgtIC = eb.TgtIC
				changed = true
			}
		}
		a.Entries[r] = merged
	}
	return changed, conflict
}

// Fingerprint returns an order-independent 64-bit hash of the algebra's
// entries. Receivers use it (together with the detection id and arrival
// reference) to deduplicate CDMs that arrive through different paths with
// identical content; dropping such duplicates is always safe because CDM
// processing is deterministic.
func (a Alg) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	// XOR of per-entry FNV-1a hashes: commutative, so no sorting needed.
	var acc uint64
	for r, e := range a.Entries {
		h := uint64(offset64)
		mix := func(s string) {
			for i := 0; i < len(s); i++ {
				h ^= uint64(s[i])
				h *= prime64
			}
			h ^= 0xFF
			h *= prime64
		}
		mixU := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= v & 0xFF
				h *= prime64
				v >>= 8
			}
		}
		mix(string(r.Src))
		mix(string(r.Dst.Node))
		mixU(uint64(r.Dst.Obj))
		var bits uint64
		if e.InSource {
			bits |= 1
		}
		if e.InTarget {
			bits |= 2
		}
		mixU(bits)
		mixU(e.SrcIC)
		mixU(e.TgtIC)
		acc ^= h
	}
	return acc
}

// String renders the algebra in the paper's notation, e.g.
// "{{P1->6@P2} -> {P2->17@P4}}", with invocation counters shown when
// non-zero.
func (a Alg) String() string {
	var b strings.Builder
	b.WriteString("{{")
	writeSide(&b, a.SourceRefs(), a.Entries, true)
	b.WriteString("} -> {")
	writeSide(&b, a.TargetRefs(), a.Entries, false)
	b.WriteString("}}")
	return b.String()
}

func writeSide(b *strings.Builder, refs []ids.RefID, entries map[ids.RefID]Entry, source bool) {
	for i, r := range refs {
		if i > 0 {
			b.WriteString(", ")
		}
		e := entries[r]
		ic := e.TgtIC
		if source {
			ic = e.SrcIC
		}
		if ic != 0 {
			fmt.Fprintf(b, "{%s, %d}", r, ic)
		} else {
			b.WriteString(r.String())
		}
	}
}
