package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgc/internal/ids"
)

func randomAlg(rng *rand.Rand) Alg {
	a := NewAlg()
	n := rng.Intn(12)
	for i := 0; i < n; i++ {
		r := ids.RefID{
			Src: ids.NodeID([]string{"P1", "P2", "P3"}[rng.Intn(3)]),
			Dst: ids.GlobalRef{Node: ids.NodeID([]string{"P4", "P5"}[rng.Intn(2)]), Obj: ids.ObjID(rng.Intn(6))},
		}
		if rng.Intn(2) == 0 {
			a.AddSource(r, uint64(rng.Intn(4)))
		}
		if rng.Intn(2) == 0 {
			a.AddTarget(r, uint64(rng.Intn(4)))
		}
	}
	return a
}

// TestFingerprintEqualityProperty: equal algebras have equal fingerprints
// regardless of construction order (the hash is order-independent).
func TestFingerprintEqualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomAlg(rng)
		// Rebuild the same algebra in a shuffled insertion order.
		type entry struct {
			ref ids.RefID
			e   Entry
		}
		var entries []entry
		a.Each(func(r ids.RefID, e Entry) bool {
			entries = append(entries, entry{r, e})
			return true
		})
		rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
		b := NewAlg()
		for _, en := range entries {
			if en.e.InSource {
				b.AddSource(en.ref, en.e.SrcIC)
			}
			if en.e.InTarget {
				b.AddTarget(en.ref, en.e.TgtIC)
			}
		}
		if !a.Equal(b) {
			return false
		}
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFingerprintSensitivity: mutating any aspect of an entry (presence
// bits or counters) changes the fingerprint. Not a collision-resistance
// proof — a sanity check that every field participates.
func TestFingerprintSensitivity(t *testing.T) {
	base := NewAlg()
	r1 := ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P2", Obj: 1}}
	r2 := ids.RefID{Src: "P3", Dst: ids.GlobalRef{Node: "P4", Obj: 2}}
	base.AddSource(r1, 3)
	base.AddTarget(r2, 5)
	fp := base.Fingerprint()

	variants := []func(Alg){
		func(a Alg) { a.Set(r1, Entry{InSource: true, SrcIC: 4}) },                           // IC change
		func(a Alg) { a.AddTarget(r1, 3) },                                                   // extra bit
		func(a Alg) { a.Delete(r2) },                                                         // entry removed
		func(a Alg) { a.AddSource(ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P2"}}, 0) }, // entry added
		func(a Alg) { a.Set(r2, Entry{InSource: true, TgtIC: 5, SrcIC: 0, InTarget: true}) }, // bit flip
	}
	for i, mutate := range variants {
		v := base.Clone()
		mutate(v)
		if v.Fingerprint() == fp {
			t.Errorf("variant %d left the fingerprint unchanged", i)
		}
	}
	if base.Fingerprint() != fp {
		t.Error("fingerprint not deterministic")
	}
	if NewAlg().Fingerprint() != 0 {
		t.Error("empty algebra should hash to zero")
	}
}
