package core

import (
	"strings"
	"testing"
	"testing/quick"

	"dgc/internal/ids"
)

func ref(src ids.NodeID, dstNode ids.NodeID, obj ids.ObjID) ids.RefID {
	return ids.RefID{Src: src, Dst: ids.GlobalRef{Node: dstNode, Obj: obj}}
}

func TestAddSourceAndTarget(t *testing.T) {
	a := NewAlg()
	r := ref("P1", "P2", 6)
	changed, conflict := a.AddSource(r, 3)
	if !changed || conflict {
		t.Fatalf("first AddSource: changed=%v conflict=%v", changed, conflict)
	}
	// Same IC: no change, no conflict.
	changed, conflict = a.AddSource(r, 3)
	if changed || conflict {
		t.Fatalf("repeat AddSource: changed=%v conflict=%v", changed, conflict)
	}
	// Different IC: conflict (race).
	_, conflict = a.AddSource(r, 4)
	if !conflict {
		t.Fatal("AddSource with different IC must conflict")
	}
	// Target side is independent.
	changed, conflict = a.AddTarget(r, 7)
	if !changed || conflict {
		t.Fatalf("AddTarget: changed=%v conflict=%v", changed, conflict)
	}
	if _, conflict = a.AddTarget(r, 8); !conflict {
		t.Fatal("AddTarget with different IC must conflict")
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (same ref, two bits)", a.Len())
	}
}

func TestMatchPaperFigure3Steps(t *testing.T) {
	// Reproduces the matching results of §3 steps 6, 13, 19, 25 using the
	// paper's cycle: F_P2 -> Q_P4 -> O_P3 -> D_P1 -> F_P2.
	refF := ref("P1", "P2", 1) // scion of F at P2, stub at P1
	refQ := ref("P2", "P4", 2)
	refO := ref("P4", "P3", 3)
	refD := ref("P3", "P1", 4)

	// Alg_1 = {{F} -> {Q}}: Matching => {{F} -> {Q}}, no cycle.
	a := NewAlg()
	a.AddSource(refF, 0)
	a.AddTarget(refQ, 0)
	m := a.Match()
	if m.CycleFound || m.Abort {
		t.Fatalf("Alg_1 match: %+v", m)
	}
	if len(m.Unresolved) != 1 || m.Unresolved[0] != refF {
		t.Fatalf("Alg_1 unresolved = %v", m.Unresolved)
	}
	if len(m.Frontier) != 1 || m.Frontier[0] != refQ {
		t.Fatalf("Alg_1 frontier = %v", m.Frontier)
	}

	// Alg_3 = {{F,Q,O} -> {Q,O,D}}: Matching => {{F} -> {D}}.
	a.AddSource(refQ, 0)
	a.AddTarget(refO, 0)
	a.AddSource(refO, 0)
	a.AddTarget(refD, 0)
	m = a.Match()
	if len(m.Unresolved) != 1 || m.Unresolved[0] != refF ||
		len(m.Frontier) != 1 || m.Frontier[0] != refD || m.CycleFound {
		t.Fatalf("Alg_3 match: %+v", m)
	}

	// Alg_4 = {{F,Q,O,D} -> {Q,O,D,F}}: Matching => {{} -> {}}, cycle.
	a.AddSource(refD, 0)
	a.AddTarget(refF, 0)
	m = a.Match()
	if !m.CycleFound || m.Abort || len(m.Unresolved) != 0 || len(m.Frontier) != 0 {
		t.Fatalf("Alg_4 match: %+v", m)
	}
}

func TestMatchICMismatchAborts(t *testing.T) {
	// §3.2 step 7-8: Matching(Alg_4a) => {{{F,x}} -> {{F,x+1}}} aborts.
	refF := ref("P1", "P2", 1)
	a := NewAlg()
	a.AddSource(refF, 5)
	a.AddTarget(refF, 6)
	m := a.Match()
	if !m.Abort {
		t.Fatal("IC mismatch must abort")
	}
	if m.CycleFound {
		t.Fatal("aborted match must not report a cycle")
	}
	if m.AbortRef != refF {
		t.Fatalf("AbortRef = %v", m.AbortRef)
	}
}

func TestMatchEmptyAlgebraIsCycle(t *testing.T) {
	// Degenerate: an empty algebra matches to {{} -> {}}. The detector
	// never produces this (detections start with at least one entry) but
	// Match must be total.
	if m := NewAlg().Match(); !m.CycleFound {
		t.Fatalf("empty match: %+v", m)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := NewAlg()
	a.AddSource(ref("P1", "P2", 1), 1)
	a.AddTarget(ref("P2", "P4", 2), 2)

	b := a.Clone()
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("clone not equal")
	}
	b.AddTarget(ref("P4", "P3", 3), 0)
	if a.Equal(b) {
		t.Fatal("grown clone still equal")
	}
	if a.Len() != 2 || b.Len() != 3 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	// Same refs, different IC: not equal.
	c := a.Clone()
	c.Set(ref("P1", "P2", 1), Entry{InSource: true, SrcIC: 99})
	if a.Equal(c) {
		t.Fatal("different IC still equal")
	}
}

func TestSourceAndTargetRefsSorted(t *testing.T) {
	a := NewAlg()
	a.AddSource(ref("P3", "P1", 4), 0)
	a.AddSource(ref("P1", "P2", 1), 0)
	a.AddTarget(ref("P2", "P4", 2), 0)
	src := a.SourceRefs()
	if len(src) != 2 || !src[0].Less(src[1]) {
		t.Fatalf("SourceRefs = %v", src)
	}
	tgt := a.TargetRefs()
	if len(tgt) != 1 || tgt[0] != ref("P2", "P4", 2) {
		t.Fatalf("TargetRefs = %v", tgt)
	}
}

func TestAlgString(t *testing.T) {
	a := NewAlg()
	a.AddSource(ref("P1", "P2", 6), 3)
	a.AddTarget(ref("P2", "P4", 17), 0)
	s := a.String()
	if !strings.Contains(s, "{P1->6@P2, 3}") || !strings.Contains(s, "P2->17@P4") {
		t.Errorf("String = %q", s)
	}
	if !strings.HasPrefix(s, "{{") || !strings.HasSuffix(s, "}}") {
		t.Errorf("String = %q", s)
	}
}

// Property: matching is consistent with set semantics — every ref lands in
// exactly one of {matched, unresolved, frontier}, and CycleFound iff both
// reduced sets empty and no abort.
func TestMatchPartitionProperty(t *testing.T) {
	f := func(srcBits, tgtBits uint16, icSeed uint8) bool {
		a := NewAlg()
		var refs []ids.RefID
		for i := 0; i < 10; i++ {
			refs = append(refs, ref("P1", "P2", ids.ObjID(i)))
		}
		for i, r := range refs {
			if srcBits&(1<<i) != 0 {
				a.AddSource(r, uint64(icSeed%3))
			}
			if tgtBits&(1<<i) != 0 {
				a.AddTarget(r, uint64(icSeed%3))
			}
		}
		m := a.Match()
		if m.Abort {
			return false // ICs identical by construction: never aborts
		}
		nBoth := 0
		for i := range refs {
			s := srcBits&(1<<i) != 0
			g := tgtBits&(1<<i) != 0
			if s && g {
				nBoth++
			}
		}
		wantUnresolved := popcount16(srcBits&^tgtBits, 10)
		wantFrontier := popcount16(tgtBits&^srcBits, 10)
		if len(m.Unresolved) != wantUnresolved || len(m.Frontier) != wantFrontier {
			return false
		}
		// Cycle-found is exactly "source fully matched" (see MatchResult).
		return m.CycleFound == (wantUnresolved == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func popcount16(v uint16, width int) int {
	n := 0
	for i := 0; i < width; i++ {
		if v&(1<<i) != 0 {
			n++
		}
	}
	return n
}

// Property: Clone is independent and Equal is an equivalence on the
// generated algebras.
func TestCloneIndependenceProperty(t *testing.T) {
	f := func(bits uint8) bool {
		a := NewAlg()
		for i := 0; i < 8; i++ {
			if bits&(1<<i) != 0 {
				a.AddSource(ref("P1", "P2", ids.ObjID(i)), uint64(i))
			}
		}
		b := a.Clone()
		b.AddTarget(ref("P9", "P8", 99), 1)
		if _, ok := a.Get(ref("P9", "P8", 99)); ok {
			return false // leaked into original
		}
		return a.Equal(a.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
