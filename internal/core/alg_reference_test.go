package core

// algReference is the retired map[ids.RefID]Entry implementation of the CDM
// algebra, kept verbatim as the executable specification for the interned
// dense representation in algebra.go (the same pattern as
// summarizeReference for PR 1's summarization engine). The property tests
// below drive both implementations through identical operation sequences
// drawn from the random corpus and require identical observable behaviour:
// return values, match results, canonical listings, String renderings and
// Fingerprint values. The wire-level byte-identity check lives in
// internal/wire (wire_test.go), which core cannot import.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dgc/internal/ids"
)

type algReference struct {
	Entries map[ids.RefID]Entry
}

func newAlgReference() algReference {
	return algReference{Entries: make(map[ids.RefID]Entry)}
}

func (a algReference) Clone() algReference {
	c := algReference{Entries: make(map[ids.RefID]Entry, len(a.Entries))}
	for k, v := range a.Entries {
		c.Entries[k] = v
	}
	return c
}

func (a algReference) AddSource(ref ids.RefID, ic uint64) (changed, conflict bool) {
	e, ok := a.Entries[ref]
	if ok && e.InSource {
		return false, e.SrcIC != ic
	}
	e.InSource = true
	e.SrcIC = ic
	a.Entries[ref] = e
	return true, false
}

func (a algReference) AddTarget(ref ids.RefID, ic uint64) (changed, conflict bool) {
	e, ok := a.Entries[ref]
	if ok && e.InTarget {
		return false, e.TgtIC != ic
	}
	e.InTarget = true
	e.TgtIC = ic
	a.Entries[ref] = e
	return true, false
}

func (a algReference) Equal(b algReference) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for k, v := range a.Entries {
		if bv, ok := b.Entries[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func (a algReference) Len() int { return len(a.Entries) }

func (a algReference) SourceRefs() []ids.RefID {
	var out []ids.RefID
	for r, e := range a.Entries {
		if e.InSource {
			out = append(out, r)
		}
	}
	ids.SortRefIDs(out)
	return out
}

func (a algReference) TargetRefs() []ids.RefID {
	var out []ids.RefID
	for r, e := range a.Entries {
		if e.InTarget {
			out = append(out, r)
		}
	}
	ids.SortRefIDs(out)
	return out
}

func (a algReference) Match() MatchResult {
	var res MatchResult
	for r, e := range a.Entries {
		switch {
		case e.InSource && e.InTarget:
			if e.SrcIC != e.TgtIC {
				res.Abort = true
				if res.AbortRef == (ids.RefID{}) || r.Less(res.AbortRef) {
					res.AbortRef = r
				}
			}
		case e.InSource:
			res.Unresolved = append(res.Unresolved, r)
		case e.InTarget:
			res.Frontier = append(res.Frontier, r)
		}
	}
	ids.SortRefIDs(res.Unresolved)
	ids.SortRefIDs(res.Frontier)
	res.CycleFound = !res.Abort && len(res.Unresolved) == 0
	return res
}

func (a algReference) Merge(b algReference) (changed, conflict bool) {
	for r, eb := range b.Entries {
		ea, ok := a.Entries[r]
		if !ok {
			a.Entries[r] = eb
			changed = true
			continue
		}
		merged := ea
		if eb.InSource {
			if ea.InSource {
				if ea.SrcIC != eb.SrcIC {
					conflict = true
				}
			} else {
				merged.InSource = true
				merged.SrcIC = eb.SrcIC
				changed = true
			}
		}
		if eb.InTarget {
			if ea.InTarget {
				if ea.TgtIC != eb.TgtIC {
					conflict = true
				}
			} else {
				merged.InTarget = true
				merged.TgtIC = eb.TgtIC
				changed = true
			}
		}
		a.Entries[r] = merged
	}
	return changed, conflict
}

func (a algReference) Fingerprint() uint64 {
	const (
		refOffset64 = 14695981039346656037
		refPrime64  = 1099511628211
	)
	var acc uint64
	for r, e := range a.Entries {
		h := uint64(refOffset64)
		mix := func(s string) {
			for i := 0; i < len(s); i++ {
				h ^= uint64(s[i])
				h *= refPrime64
			}
			h ^= 0xFF
			h *= refPrime64
		}
		mixU := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= v & 0xFF
				h *= refPrime64
				v >>= 8
			}
		}
		mix(string(r.Src))
		mix(string(r.Dst.Node))
		mixU(uint64(r.Dst.Obj))
		var bits uint64
		if e.InSource {
			bits |= 1
		}
		if e.InTarget {
			bits |= 2
		}
		mixU(bits)
		mixU(e.SrcIC)
		mixU(e.TgtIC)
		acc ^= h
	}
	return acc
}

func (a algReference) String() string {
	var b strings.Builder
	b.WriteString("{{")
	refWriteSide(&b, a.SourceRefs(), a.Entries, true)
	b.WriteString("} -> {")
	refWriteSide(&b, a.TargetRefs(), a.Entries, false)
	b.WriteString("}}")
	return b.String()
}

func refWriteSide(b *strings.Builder, refs []ids.RefID, entries map[ids.RefID]Entry, source bool) {
	for i, r := range refs {
		if i > 0 {
			b.WriteString(", ")
		}
		e := entries[r]
		ic := e.TgtIC
		if source {
			ic = e.SrcIC
		}
		if ic != 0 {
			fmt.Fprintf(b, "{%s, %d}", r, ic)
		} else {
			b.WriteString(r.String())
		}
	}
}

// ---- differential harness -------------------------------------------------

// algPair drives both implementations through the same operations and checks
// every observable after each step.
type algPair struct {
	a Alg
	r algReference
}

func newAlgPair() *algPair {
	return &algPair{a: NewAlg(), r: newAlgReference()}
}

// randomRef draws from the same small universe as randomAlg so collisions
// (re-adds, conflicting counters, overlapping merges) are common.
func randomRef(rng *rand.Rand) ids.RefID {
	return ids.RefID{
		Src: ids.NodeID([]string{"P1", "P2", "P3"}[rng.Intn(3)]),
		Dst: ids.GlobalRef{
			Node: ids.NodeID([]string{"P4", "P5"}[rng.Intn(2)]),
			Obj:  ids.ObjID(rng.Intn(6)),
		},
	}
}

func (p *algPair) check(t *testing.T, op string) {
	t.Helper()
	if got, want := p.a.Len(), p.r.Len(); got != want {
		t.Fatalf("%s: Len = %d, reference %d", op, got, want)
	}
	if got, want := refIDsKey(p.a.SourceRefs()), refIDsKey(p.r.SourceRefs()); got != want {
		t.Fatalf("%s: SourceRefs = %s, reference %s", op, got, want)
	}
	if got, want := refIDsKey(p.a.TargetRefs()), refIDsKey(p.r.TargetRefs()); got != want {
		t.Fatalf("%s: TargetRefs = %s, reference %s", op, got, want)
	}
	ma, mr := p.a.Match(), p.r.Match()
	if refIDsKey(ma.Unresolved) != refIDsKey(mr.Unresolved) ||
		refIDsKey(ma.Frontier) != refIDsKey(mr.Frontier) ||
		ma.Abort != mr.Abort || ma.AbortRef != mr.AbortRef || ma.CycleFound != mr.CycleFound {
		t.Fatalf("%s: Match = %+v, reference %+v", op, ma, mr)
	}
	if cf, ab := p.a.MatchStatus(); cf != ma.CycleFound || ab != ma.Abort {
		t.Fatalf("%s: MatchStatus = (%v, %v), Match says (%v, %v)", op, cf, ab, ma.CycleFound, ma.Abort)
	}
	if got, want := p.a.Fingerprint(), p.r.Fingerprint(); got != want {
		t.Fatalf("%s: Fingerprint = %#x, reference %#x", op, got, want)
	}
	if got, want := p.a.String(), p.r.String(); got != want {
		t.Fatalf("%s: String = %q, reference %q", op, got, want)
	}
	// Every entry readable and identical via Get.
	for ref, want := range p.r.Entries {
		got, ok := p.a.Get(ref)
		if !ok || got != want {
			t.Fatalf("%s: Get(%v) = (%+v, %v), reference %+v", op, ref, got, ok, want)
		}
	}
}

func refIDsKey(refs []ids.RefID) string {
	var b strings.Builder
	for _, r := range refs {
		b.WriteString(r.String())
		b.WriteByte('|')
	}
	return b.String()
}

// TestAlgMatchesReferenceProperty drives random operation sequences —
// AddSource, AddTarget, Set, Delete, Clone, Merge with a random other
// algebra — through the interned and the map implementation and requires
// identical observable behaviour at every step.
func TestAlgMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newAlgPair()
		steps := 3 + rng.Intn(30)
		for i := 0; i < steps; i++ {
			var op string
			switch rng.Intn(7) {
			case 0, 1:
				ref, ic := randomRef(rng), uint64(rng.Intn(4))
				op = fmt.Sprintf("AddSource(%v, %d)", ref, ic)
				c1, x1 := p.a.AddSource(ref, ic)
				c2, x2 := p.r.AddSource(ref, ic)
				if c1 != c2 || x1 != x2 {
					t.Logf("%s: returned (%v, %v), reference (%v, %v)", op, c1, x1, c2, x2)
					return false
				}
			case 2, 3:
				ref, ic := randomRef(rng), uint64(rng.Intn(4))
				op = fmt.Sprintf("AddTarget(%v, %d)", ref, ic)
				c1, x1 := p.a.AddTarget(ref, ic)
				c2, x2 := p.r.AddTarget(ref, ic)
				if c1 != c2 || x1 != x2 {
					t.Logf("%s: returned (%v, %v), reference (%v, %v)", op, c1, x1, c2, x2)
					return false
				}
			case 4:
				ref := randomRef(rng)
				e := Entry{
					InSource: rng.Intn(2) == 0, SrcIC: uint64(rng.Intn(4)),
					InTarget: rng.Intn(2) == 0, TgtIC: uint64(rng.Intn(4)),
				}
				op = fmt.Sprintf("Set(%v, %+v)", ref, e)
				p.a.Set(ref, e)
				p.r.Entries[ref] = e
			case 5:
				ref := randomRef(rng)
				op = fmt.Sprintf("Delete(%v)", ref)
				p.a.Delete(ref)
				delete(p.r.Entries, ref)
			case 6:
				// Merge a random algebra built the same way on both sides.
				ops := rng.Intn(8)
				ob := NewAlg()
				or := newAlgReference()
				for j := 0; j < ops; j++ {
					ref, ic := randomRef(rng), uint64(rng.Intn(4))
					if rng.Intn(2) == 0 {
						ob.AddSource(ref, ic)
						or.AddSource(ref, ic)
					} else {
						ob.AddTarget(ref, ic)
						or.AddTarget(ref, ic)
					}
				}
				op = fmt.Sprintf("Merge(%v)", or)
				c1, x1 := p.a.Merge(ob)
				c2, x2 := p.r.Merge(or)
				if c1 != c2 || x1 != x2 {
					t.Logf("%s: returned (%v, %v), reference (%v, %v)", op, c1, x1, c2, x2)
					return false
				}
			}
			p.check(t, op)

			// Clone independence: mutating a clone never leaks back.
			if rng.Intn(4) == 0 {
				ca, cr := p.a.Clone(), p.r.Clone()
				ref := randomRef(rng)
				ca.AddTarget(ref, 9)
				cr.AddTarget(ref, 9)
				p.check(t, op+" [post-clone]")
				if ca.Fingerprint() != cr.Fingerprint() {
					t.Logf("%s: clone fingerprints diverged", op)
					return false
				}
			}
		}
		// Equal agreement: against itself, a clone and a rebuilt copy.
		if !p.a.Equal(p.a.Clone()) || !p.r.Equal(p.r.Clone()) {
			t.Log("Equal(clone) = false")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAlgMatchesReferenceOnCorpus replays the randomAlg corpus (the same
// generator the fingerprint property tests use) through both
// implementations.
func TestAlgMatchesReferenceOnCorpus(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := randomAlg(rng)
		r := newAlgReference()
		a.Each(func(ref ids.RefID, e Entry) bool {
			r.Entries[ref] = e
			return true
		})
		p := &algPair{a: a, r: r}
		p.check(t, fmt.Sprintf("corpus seed %d", seed))
	}
}

// TestMergeInternedMatchesMerge: merging a flattened (id, Entry) stream must
// behave exactly like building an algebra from it and merging that — for any
// order of the stream, including injected duplicates (last occurrence wins).
func TestMergeInternedMatchesMerge(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		a := randomAlg(rng)
		b := randomAlg(rng)

		type pair struct {
			id int32
			e  Entry
		}
		var pairs []pair
		b.EachCanonicalInterned(func(id int32, r ids.RefID, e Entry) bool {
			if InternRef(r) != id {
				t.Fatalf("seed %d: EachCanonicalInterned id %d != InternRef %d", seed, id, InternRef(r))
			}
			pairs = append(pairs, pair{id: id, e: e})
			return true
		})
		// Yield order must not matter for distinct references: shuffle.
		rng.Shuffle(len(pairs), func(i, j int) {
			pairs[i], pairs[j] = pairs[j], pairs[i]
		})
		// Then prepend a stale duplicate of one reference: the original,
		// yielded later, must win.
		if len(pairs) > 1 {
			stale := pairs[rng.Intn(len(pairs))]
			stale.e.SrcIC += 7
			pairs = append([]pair{stale}, pairs...)
		}

		viaMerge := a.Clone()
		viaInterned := a.Clone()
		c1, f1 := viaMerge.Merge(b)
		c2, f2 := viaInterned.MergeInterned(len(pairs), func(i int) (int32, Entry) {
			return pairs[i].id, pairs[i].e
		})
		if c2 != c1 || f2 != f1 {
			t.Fatalf("seed %d: MergeInterned = (%v,%v), Merge = (%v,%v)", seed, c2, f2, c1, f1)
		}
		if !viaInterned.Equal(viaMerge) {
			t.Fatalf("seed %d: MergeInterned result differs:\n%v\n%v", seed, viaInterned, viaMerge)
		}
	}
}

// TestAlgEqualDisagreements: Equal must reject the same near-misses as the
// reference (size, missing key, differing entry).
func TestAlgEqualDisagreements(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := randomAlg(rng)
		b := randomAlg(rng)
		ra, rb := newAlgReference(), newAlgReference()
		a.Each(func(ref ids.RefID, e Entry) bool { ra.Entries[ref] = e; return true })
		b.Each(func(ref ids.RefID, e Entry) bool { rb.Entries[ref] = e; return true })
		if a.Equal(b) != ra.Equal(rb) {
			t.Fatalf("trial %d: Equal = %v, reference %v\na=%v\nb=%v", trial, a.Equal(b), ra.Equal(rb), a, b)
		}
	}
}
