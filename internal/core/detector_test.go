package core

import (
	"testing"

	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/refs"
	"dgc/internal/snapshot"
)

// ---- summary-level multi-process simulator ----------------------------
//
// Drives Detectors on hand-built heaps through an in-memory CDM queue,
// with no transport or node machinery: the algorithm in isolation.

type simProc struct {
	h   *heap.Heap
	tb  *refs.Table
	det *Detector
	sum *snapshot.Summary
}

type cdmEnv struct {
	det   DetectionID
	along ids.RefID
	alg   Alg
	hops  int
	trace uint64
}

type sim struct {
	t       *testing.T
	cfg     Config
	procs   map[ids.NodeID]*simProc
	queue   []cdmEnv
	deleted []ids.RefID // DeleteOwnScion calls, in order
	found   []Outcome   // OutcomeCycleFound outcomes
}

type simActions struct {
	s    *sim
	self ids.NodeID
}

func (a simActions) SendCDMs(det DetectionID, trace uint64, alongs []ids.RefID, alg Alg, hops int) {
	for _, along := range alongs {
		a.s.queue = append(a.s.queue, cdmEnv{det: det, along: along, alg: alg.Clone(), hops: hops, trace: trace})
	}
}

func (a simActions) DeleteOwnScion(ref ids.RefID) {
	a.s.deleted = append(a.s.deleted, ref)
	a.s.procs[a.self].tb.DeleteScion(ref.Src, ref.Dst.Obj)
}

func (a simActions) SendDeleteScion(det DetectionID, ref ids.RefID) {
	// Deliver immediately in the simulator.
	p := a.s.procs[ref.Dst.Node]
	if p != nil {
		p.det.HandleDeleteScion(ref)
	}
}

func newSim(t *testing.T, cfg Config, names ...ids.NodeID) *sim {
	s := &sim{t: t, cfg: cfg, procs: make(map[ids.NodeID]*simProc)}
	for _, n := range names {
		p := &simProc{h: heap.New(n), tb: refs.NewTable(n)}
		p.det = NewDetector(n, cfg, simActions{s: s, self: n})
		s.procs[n] = p
	}
	return s
}

func (s *sim) proc(n ids.NodeID) *simProc { return s.procs[n] }

func (s *sim) summarizeAll(version uint64) {
	for _, p := range s.procs {
		p.sum = snapshot.Summarize(p.h, p.tb, version)
	}
}

func (s *sim) summarize(n ids.NodeID, version uint64) {
	p := s.procs[n]
	p.sum = snapshot.Summarize(p.h, p.tb, version)
}

// pump delivers queued CDMs until quiescence, recording cycle-found
// outcomes. Returns the number of CDMs processed.
func (s *sim) pump() int {
	processed := 0
	for len(s.queue) > 0 {
		env := s.queue[0]
		s.queue = s.queue[1:]
		p := s.procs[env.along.Dst.Node]
		if p == nil {
			s.t.Fatalf("CDM to unknown node %s", env.along.Dst.Node)
		}
		out := p.det.HandleCDM(p.sum, env.det, env.along, env.alg, env.hops, env.trace)
		if out.Kind == OutcomeCycleFound {
			s.found = append(s.found, out)
		}
		processed++
		if processed > 10000 {
			s.t.Fatal("pump did not terminate: CDM loop")
		}
	}
	return processed
}

// start initiates a detection at the node owning candidate's scion.
func (s *sim) start(candidate ids.RefID) Outcome {
	p := s.procs[candidate.Dst.Node]
	_, out := p.det.StartDetection(p.sum, candidate)
	if out.Kind == OutcomeCycleFound {
		s.found = append(s.found, out)
	}
	return out
}

func mustNoErr(t *testing.T, errs ...error) {
	t.Helper()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// ---- Figure 3: a simple distributed garbage cycle ---------------------
//
// P2{F->H->J, F->G->H} --J->Q--> P4{Q->R->S} --S->O--> P3{O->M->K}
// --K->D--> P1{D->C->B} --B->F--> P2. Object A in P1 is unrooted garbage.

type fig3 struct {
	*sim
	refF, refQ, refO, refD ids.RefID // the four inter-process references
	objB                   ids.ObjID // B at P1, holder of the F stub
	objF                   ids.ObjID
}

func buildFig3(t *testing.T, cfg Config) *fig3 {
	s := newSim(t, cfg, "P1", "P2", "P3", "P4")
	f := &fig3{sim: s}

	// P2: F(1) -> H(2), F -> G(3), G -> H, H -> J(4), J -> Q@P4.
	p2 := s.proc("P2")
	F, H, G, J := p2.h.Alloc(nil), p2.h.Alloc(nil), p2.h.Alloc(nil), p2.h.Alloc(nil)
	f.objF = F.ID
	mustNoErr(t,
		p2.h.AddLocalRef(F.ID, H.ID),
		p2.h.AddLocalRef(F.ID, G.ID),
		p2.h.AddLocalRef(G.ID, H.ID),
		p2.h.AddLocalRef(H.ID, J.ID),
	)

	// P4: Q(1) -> R(2) -> S(3), S -> O@P3.
	p4 := s.proc("P4")
	Q, R, S := p4.h.Alloc(nil), p4.h.Alloc(nil), p4.h.Alloc(nil)
	mustNoErr(t, p4.h.AddLocalRef(Q.ID, R.ID), p4.h.AddLocalRef(R.ID, S.ID))

	// P3: O(1) -> M(2) -> K(3), K -> D@P1.
	p3 := s.proc("P3")
	O, M, K := p3.h.Alloc(nil), p3.h.Alloc(nil), p3.h.Alloc(nil)
	mustNoErr(t, p3.h.AddLocalRef(O.ID, M.ID), p3.h.AddLocalRef(M.ID, K.ID))

	// P1: D(1) -> C(2) -> B(3), B -> F@P2; A(4) is local garbage.
	p1 := s.proc("P1")
	D, C, B := p1.h.Alloc(nil), p1.h.Alloc(nil), p1.h.Alloc(nil)
	p1.h.Alloc(nil) // A
	f.objB = B.ID
	mustNoErr(t, p1.h.AddLocalRef(D.ID, C.ID), p1.h.AddLocalRef(C.ID, B.ID))

	// Inter-process references with their stubs and scions.
	link := func(srcProc *simProc, holder ids.ObjID, dstProc *simProc, target ids.ObjID) ids.RefID {
		g := ids.GlobalRef{Node: dstProc.h.Node(), Obj: target}
		mustNoErr(t, srcProc.h.AddRemoteRef(holder, g))
		srcProc.tb.EnsureStub(g)
		dstProc.tb.EnsureScion(srcProc.h.Node(), target)
		return ids.RefID{Src: srcProc.h.Node(), Dst: g}
	}
	f.refQ = link(p2, J.ID, p4, Q.ID)
	f.refO = link(p4, S.ID, p3, O.ID)
	f.refD = link(p3, K.ID, p1, D.ID)
	f.refF = link(p1, B.ID, p2, F.ID)

	s.summarizeAll(1)
	return f
}

func TestFig3DetectionFindsCycle(t *testing.T) {
	f := buildFig3(t, Config{})
	out := f.start(f.refF)
	if out.Kind != OutcomeForwarded || out.Forwarded != 1 {
		t.Fatalf("start outcome = %+v", out)
	}
	f.pump()
	if len(f.found) != 1 {
		t.Fatalf("cycles found = %d, want 1", len(f.found))
	}
	garbage := f.found[0].GarbageScions
	if len(garbage) != 4 {
		t.Fatalf("garbage scions = %v, want the 4 cycle references", garbage)
	}
	want := map[ids.RefID]bool{f.refF: true, f.refQ: true, f.refO: true, f.refD: true}
	for _, g := range garbage {
		if !want[g] {
			t.Errorf("unexpected garbage scion %v", g)
		}
	}
	// The finder is P2 (the origin): it must have deleted its own scion.
	if len(f.deleted) != 1 || f.deleted[0] != f.refF {
		t.Fatalf("deleted = %v, want [%v]", f.deleted, f.refF)
	}
	if f.proc("P2").tb.Scion("P1", f.objF) != nil {
		t.Fatal("scion for F still in table")
	}
	// Other processes keep their scions; the acyclic DGC cascade reclaims
	// them (not simulated at this level).
	if f.proc("P4").tb.NumScions() != 1 {
		t.Fatal("P4 scion should survive at this layer")
	}
}

func TestFig3CDMHopCountIsCycleLength(t *testing.T) {
	f := buildFig3(t, Config{})
	f.start(f.refF)
	processed := f.pump()
	// One CDM per process in the 4-process ring: P4, P3, P1, P2.
	if processed != 4 {
		t.Fatalf("CDMs processed = %d, want 4", processed)
	}
	total := uint64(0)
	for _, p := range f.procs {
		total += p.det.Stats.CDMsSent
	}
	if total != 4 {
		t.Fatalf("CDMs sent = %d, want 4", total)
	}
}

func TestFig3LiveCycleStopsAtLocalReach(t *testing.T) {
	f := buildFig3(t, Config{})
	// Root C at P1: B (holder of the F stub) becomes locally reachable, so
	// the cycle is live.
	mustNoErr(t, f.proc("P1").h.AddRoot(2 /* C */))
	f.summarizeAll(2)

	out := f.start(f.refF)
	if out.Kind != OutcomeForwarded {
		t.Fatalf("start outcome = %+v", out)
	}
	f.pump()
	if len(f.found) != 0 {
		t.Fatal("live cycle was detected as garbage")
	}
	if len(f.deleted) != 0 {
		t.Fatal("live cycle scion deleted")
	}
	// The branch must have ended at P1 where Local.Reach(F stub) is true.
	if f.proc("P1").det.Stats.CDMsSent != 0 {
		t.Fatal("P1 forwarded past a locally reachable stub")
	}
}

func TestFig3LocallyReachableCandidateRefused(t *testing.T) {
	f := buildFig3(t, Config{})
	// Root F itself at P2.
	mustNoErr(t, f.proc("P2").h.AddRoot(f.objF))
	f.summarizeAll(2)
	out := f.start(f.refF)
	if out.Kind != OutcomeBranchEnded {
		t.Fatalf("outcome = %+v, want branch-ended", out)
	}
	if len(f.queue) != 0 {
		t.Fatal("CDMs sent for a locally reachable candidate")
	}
}

func TestFig3UnknownScionCandidateDropped(t *testing.T) {
	f := buildFig3(t, Config{})
	bogus := ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P2", Obj: 99}}
	if out := f.start(bogus); out.Kind != OutcomeDropped {
		t.Fatalf("outcome = %+v, want dropped", out)
	}
}

func TestCDMToUnknownScionDropped(t *testing.T) {
	// Safety rule 1/2: a CDM arriving for a scion not in the summary is
	// discarded silently.
	f := buildFig3(t, Config{})
	p2 := f.proc("P2")
	alg := NewAlg()
	alg.AddTarget(ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P2", Obj: 42}}, 0)
	out := p2.det.HandleCDM(p2.sum, DetectionID{Origin: "P9", Seq: 1},
		ids.RefID{Src: "P9", Dst: ids.GlobalRef{Node: "P2", Obj: 42}}, alg, 0,
		TraceIDFor(DetectionID{Origin: "P9", Seq: 1}))
	if out.Kind != OutcomeDropped {
		t.Fatalf("outcome = %+v", out)
	}
	if p2.det.Stats.Dropped != 1 {
		t.Fatalf("Dropped stat = %d", p2.det.Stats.Dropped)
	}
}

func TestFig3BroadcastDeleteClearsAllScions(t *testing.T) {
	f := buildFig3(t, Config{BroadcastDelete: true})
	f.start(f.refF)
	f.pump()
	if len(f.found) != 1 {
		t.Fatalf("cycles found = %d", len(f.found))
	}
	// Every process's cycle scion must be gone without any LGC cascade.
	for _, n := range []ids.NodeID{"P1", "P2", "P3", "P4"} {
		if got := f.proc(n).tb.NumScions(); got != 0 {
			t.Errorf("%s still has %d scions", n, got)
		}
	}
	if len(f.deleted) != 4 {
		t.Errorf("deleted = %v, want all 4", f.deleted)
	}
}

// ---- §3.2 races: invocation counters ----------------------------------

func TestRaceArrivalGuardAborts(t *testing.T) {
	// Fig 5 shape: an invocation crosses P1->F@P2 after P2's snapshot; P1
	// re-summarizes afterwards, P2 does not. The CDM's stub-side counter
	// (x+1) disagrees with P2's scion-side snapshot counter (x) on arrival.
	f := buildFig3(t, Config{})
	out := f.start(f.refF) // detection in flight with old counters
	if out.Kind != OutcomeForwarded {
		t.Fatalf("start = %+v", out)
	}

	// Mutator invokes through P1->F@P2: both ends bump their counters.
	if _, err := f.proc("P1").tb.BumpStubIC(f.refF.Dst); err != nil {
		t.Fatal(err)
	}
	if _, err := f.proc("P2").tb.BumpScionIC("P1", f.objF); err != nil {
		t.Fatal(err)
	}
	// Only P1 re-summarizes ("snapshot information becomes available at Px
	// now stating..."). P2 keeps its stale summary.
	f.summarize("P1", 2)

	f.pump()
	if len(f.found) != 0 || len(f.deleted) != 0 {
		t.Fatal("race produced a false cycle detection")
	}
	if f.proc("P2").det.Stats.Aborted != 1 {
		t.Fatalf("P2 aborted = %d, want 1", f.proc("P2").det.Stats.Aborted)
	}
}

func TestRaceMatchAborts(t *testing.T) {
	// Variant: BOTH ends re-summarize after the invocation, but the
	// detection started from the pre-invocation summary. The source entry
	// for F carries the old counter; matching at P2 sees x vs x+1.
	f := buildFig3(t, Config{})
	out := f.start(f.refF)
	if out.Kind != OutcomeForwarded {
		t.Fatalf("start = %+v", out)
	}
	if _, err := f.proc("P1").tb.BumpStubIC(f.refF.Dst); err != nil {
		t.Fatal(err)
	}
	if _, err := f.proc("P2").tb.BumpScionIC("P1", f.objF); err != nil {
		t.Fatal(err)
	}
	f.summarize("P1", 2)
	f.summarize("P2", 2)

	f.pump()
	if len(f.found) != 0 || len(f.deleted) != 0 {
		t.Fatal("race produced a false cycle detection")
	}
	aborted := f.proc("P2").det.Stats.Aborted
	if aborted != 1 {
		t.Fatalf("P2 aborted = %d, want 1", aborted)
	}
}

func TestQuiescentReSummarizationDoesNotAbort(t *testing.T) {
	// §3.2: "detections already in course for real cycles are never aborted
	// due to updates in summarized graph information" — re-summarizing
	// without mutator activity must not disturb a detection in flight.
	f := buildFig3(t, Config{})
	f.start(f.refF)
	f.summarizeAll(2) // fresh summaries, same counters
	f.pump()
	if len(f.found) != 1 {
		t.Fatalf("cycles found = %d, want 1 despite re-summarization", len(f.found))
	}
}

// ---- Figure 1: extra dependency ----------------------------------------

func TestFig1ExtraDependencyPreventsDetection(t *testing.T) {
	// A fifth process holds a (live) reference to F: the cycle has an extra
	// dependency that is never resolved, so no cycle may be declared.
	f := buildFig3(t, Config{})
	p5 := &simProc{h: heap.New("P5"), tb: refs.NewTable("P5")}
	p5.det = NewDetector("P5", Config{}, simActions{s: f.sim, self: "P5"})
	f.procs["P5"] = p5
	w := p5.h.Alloc(nil)
	mustNoErr(t,
		p5.h.AddRemoteRef(w.ID, ids.GlobalRef{Node: "P2", Obj: f.objF}),
		p5.h.AddRoot(w.ID),
	)
	p5.tb.EnsureStub(ids.GlobalRef{Node: "P2", Obj: f.objF})
	f.proc("P2").tb.EnsureScion("P5", f.objF)
	f.summarizeAll(2)

	f.start(f.refF)
	f.pump()
	if len(f.found) != 0 || len(f.deleted) != 0 {
		t.Fatal("cycle with live external dependency was collected")
	}

	// The dependency dies: P5 drops its reference (simulating W's death and
	// the acyclic DGC deleting the scion), and after re-summarization the
	// cycle is detected.
	f.proc("P2").tb.DeleteScion("P5", f.objF)
	f.summarizeAll(3)
	f.start(f.refF)
	f.pump()
	if len(f.found) != 1 {
		t.Fatalf("cycles found after dependency removal = %d, want 1", len(f.found))
	}
}

// ---- Figure 4: mutually-linked cycles ----------------------------------

type fig4 struct {
	*sim
	refF, refV, refK, refT, refD, refZB, refY ids.RefID
}

// buildFig4 reproduces the six-process, two-cycle topology of Figure 4:
//
//	left cycle:  F@P2 -> V@P5 -> T@P4 -> D@P1 -> F@P2
//	right cycle: F@P2 -> K@P3 -> ZB@P6 -> (ZD) -> Y@P5 -> T@P4 -> ...
//
// Y@P5 converges on the same T stub as V, so ScionsTo(T) = {V, Y}: the
// extra-dependency mechanism of §3.1.
func buildFig4(t *testing.T, cfg Config) *fig4 {
	s := newSim(t, cfg, "P1", "P2", "P3", "P4", "P5", "P6")
	f := &fig4{sim: s}

	p1, p2, p3 := s.proc("P1"), s.proc("P2"), s.proc("P3")
	p4, p5, p6 := s.proc("P4"), s.proc("P5"), s.proc("P6")

	F := p2.h.Alloc(nil)  // F(1)@P2
	V := p5.h.Alloc(nil)  // V(1)@P5
	Y := p5.h.Alloc(nil)  // Y(2)@P5
	T := p4.h.Alloc(nil)  // T(1)@P4
	D := p1.h.Alloc(nil)  // D(1)@P1
	K := p3.h.Alloc(nil)  // K(1)@P3
	ZB := p6.h.Alloc(nil) // ZB(1)@P6
	ZD := p6.h.Alloc(nil) // ZD(2)@P6
	mustNoErr(t, p6.h.AddLocalRef(ZB.ID, ZD.ID))

	link := func(srcProc *simProc, holder ids.ObjID, dstProc *simProc, target ids.ObjID) ids.RefID {
		g := ids.GlobalRef{Node: dstProc.h.Node(), Obj: target}
		mustNoErr(t, srcProc.h.AddRemoteRef(holder, g))
		srcProc.tb.EnsureStub(g)
		dstProc.tb.EnsureScion(srcProc.h.Node(), target)
		return ids.RefID{Src: srcProc.h.Node(), Dst: g}
	}
	f.refV = link(p2, F.ID, p5, V.ID)
	f.refK = link(p2, F.ID, p3, K.ID)
	f.refT = link(p5, V.ID, p4, T.ID)
	// Y shares the T stub: AddRemoteRef again but the stub already exists.
	mustNoErr(t, p5.h.AddRemoteRef(Y.ID, ids.GlobalRef{Node: "P4", Obj: T.ID}))
	f.refD = link(p4, T.ID, p1, D.ID)
	f.refF = link(p1, D.ID, p2, F.ID)
	f.refZB = link(p3, K.ID, p6, ZB.ID)
	f.refY = link(p6, ZD.ID, p5, Y.ID)

	s.summarizeAll(1)
	return f
}

func TestFig4MutualCyclesDetected(t *testing.T) {
	f := buildFig4(t, Config{})
	out := f.start(f.refF)
	// StubsFrom(F) = {K@P3, V@P5}: two derivations (§3.1 steps 2-3).
	if out.Kind != OutcomeForwarded || out.Forwarded != 2 {
		t.Fatalf("start = %+v, want 2 derivations", out)
	}
	f.pump()
	if len(f.found) == 0 {
		t.Fatal("mutually-linked cycles not detected")
	}
	// The first completed detection must cover all seven references.
	garbage := f.found[0].GarbageScions
	if len(garbage) != 7 {
		t.Fatalf("garbage scions = %d (%v), want 7", len(garbage), garbage)
	}
	want := map[ids.RefID]bool{
		f.refF: true, f.refV: true, f.refK: true, f.refT: true,
		f.refD: true, f.refZB: true, f.refY: true,
	}
	for _, g := range garbage {
		if !want[g] {
			t.Errorf("unexpected garbage scion %v", g)
		}
	}
	// The finder deletes its own scions from the source set. (With the
	// merged derivation the finder is the origin P2, which holds the F
	// scion; in the paper's per-path derivation it happens to be P5 —
	// either is correct, any node where matching empties may conclude.)
	if len(f.deleted) == 0 {
		t.Fatal("finder deleted no scions")
	}
	for _, d := range f.deleted {
		if !want[d] {
			t.Errorf("deleted scion %v not part of the cycles", d)
		}
	}
}

func TestFig4SummaryShowsConvergingDependency(t *testing.T) {
	f := buildFig4(t, Config{})
	st := f.proc("P5").sum.Stub(ids.GlobalRef{Node: "P4", Obj: 1})
	if st == nil {
		t.Fatal("T stub summary missing at P5")
	}
	if len(st.ScionsTo) != 2 {
		t.Fatalf("ScionsTo(T) = %v, want {V scion, Y scion}", st.ScionsTo)
	}
}

func TestFig4BranchTerminationNoNewInformation(t *testing.T) {
	// §3.1 step 15: when the CDM returns to P2, the derivation through the
	// V stub equals the delivered algebra and must not be forwarded; the
	// pump must terminate (this test would loop forever otherwise).
	f := buildFig4(t, Config{})
	f.start(f.refF)
	processed := f.pump()
	if processed == 0 || processed > 50 {
		t.Fatalf("processed = %d, want a small finite number", processed)
	}
}

func TestFig4LiveViaRightCycleRoot(t *testing.T) {
	// Root ZD at P6: the right cycle is live, and because the left cycle is
	// reachable from it through Y -> T, nothing may be collected.
	f := buildFig4(t, Config{})
	mustNoErr(t, f.proc("P6").h.AddRoot(2 /* ZD */))
	f.summarizeAll(2)
	f.start(f.refF)
	f.pump()
	if len(f.found) != 0 || len(f.deleted) != 0 {
		t.Fatalf("live mutual cycles collected: found=%v deleted=%v", f.found, f.deleted)
	}
}

// ---- misc detector behaviour -------------------------------------------

func TestMaxAlgebraSizeValve(t *testing.T) {
	f := buildFig3(t, Config{MaxAlgebraSize: 2})
	f.start(f.refF)
	f.pump()
	if len(f.found) != 0 {
		t.Fatal("valve should have stopped the detection before completion")
	}
}

func TestDetectionIDsIncrease(t *testing.T) {
	f := buildFig3(t, Config{})
	p2 := f.proc("P2")
	id1, _ := p2.det.StartDetection(p2.sum, f.refF)
	id2, _ := p2.det.StartDetection(p2.sum, f.refF)
	if id1.Origin != "P2" || id2.Seq != id1.Seq+1 {
		t.Fatalf("ids = %+v, %+v", id1, id2)
	}
}

func TestHandleDeleteScionIgnoresForeign(t *testing.T) {
	f := buildFig3(t, Config{})
	p2 := f.proc("P2")
	before := p2.tb.NumScions()
	p2.det.HandleDeleteScion(ids.RefID{Src: "P1", Dst: ids.GlobalRef{Node: "P9", Obj: 1}})
	if p2.tb.NumScions() != before {
		t.Fatal("foreign DeleteScion mutated local table")
	}
}

func TestOutcomeKindStrings(t *testing.T) {
	kinds := map[OutcomeKind]string{
		OutcomeDropped:     "dropped",
		OutcomeAborted:     "aborted",
		OutcomeCycleFound:  "cycle-found",
		OutcomeForwarded:   "forwarded",
		OutcomeBranchEnded: "branch-ended",
		OutcomeKind(99):    "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), want)
		}
	}
}
