package experiments

import (
	"fmt"
	"time"

	"dgc/internal/cluster"
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/refs"
	"dgc/internal/snapshot"
)

// ---- lease ablation ---------------------------------------------------------
//
// The paper positions its acyclic collector as "a safe DGC (not a
// lease-based one)". This experiment quantifies the difference: a holder
// process goes silent (its stub-set messages are lost) for a number of
// rounds while STILL holding a live reference. Plain reference listing
// never deletes the scion; leased reference listing deletes it once the
// silence outlasts the lease, reclaiming a live object.

// LeaseRow reports one silence length's outcome for both collectors.
type LeaseRow struct {
	SilenceRounds   uint64
	LeaseDuration   uint64
	LeaseReclaimed  bool // live object lost under leases (unsafe)
	PlainReclaimed  bool // must always be false
	LeaseRenewalMsg uint64
}

// LeaseAblation runs the silence scenario for each silence length.
func LeaseAblation(silences []uint64, leaseDuration uint64) ([]LeaseRow, error) {
	rows := make([]LeaseRow, 0, len(silences))
	for _, silence := range silences {
		run := func(leased bool) (reclaimed bool, renewals uint64, err error) {
			// Owner P2 has one object referenced by holder P1 (rooted
			// there). The holder's LGC emits stub sets every round; during
			// the silence window they are all lost.
			owner := heap.New("P2")
			obj := owner.Alloc(nil)
			ownerTable := refs.NewTable("P2")
			ownerTable.EnsureScion("P1", obj.ID)

			holder := heap.New("P1")
			h := holder.Alloc(nil)
			if err := holder.AddRoot(h.ID); err != nil {
				return false, 0, err
			}
			if err := holder.AddRemoteRef(h.ID, ids.GlobalRef{Node: "P2", Obj: obj.ID}); err != nil {
				return false, 0, err
			}
			holderTable := refs.NewTable("P1")
			holderTable.EnsureStub(ids.GlobalRef{Node: "P2", Obj: obj.ID})
			holderDGC := refs.NewAcyclicDGC(holderTable)

			plain := refs.NewAcyclicDGC(ownerTable)
			var lease *refs.LeaseDGC
			if leased {
				lease = refs.NewLeaseDGC(ownerTable, leaseDuration)
				lease.Grant("P1", obj.ID, 0)
			}

			total := silence + leaseDuration + 4
			for now := uint64(1); now <= total; now++ {
				for _, ts := range holderDGC.GenerateTargeted() {
					renewals++
					if now <= silence {
						continue // lost
					}
					if leased {
						lease.ApplyStubSetAt(ts.Msg, now)
					} else {
						plain.ApplyStubSet(ts.Msg)
					}
				}
				if leased {
					lease.Expire(now)
				}
				// Owner LGC: sweep if the scion is gone.
				if ownerTable.Scion("P1", obj.ID) == nil {
					owner.Delete(obj.ID)
				}
			}
			return !owner.Contains(obj.ID), renewals, nil
		}
		leaseReclaimed, renewals, err := run(true)
		if err != nil {
			return nil, err
		}
		plainReclaimed, _, err := run(false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LeaseRow{
			SilenceRounds:   silence,
			LeaseDuration:   leaseDuration,
			LeaseReclaimed:  leaseReclaimed,
			PlainReclaimed:  plainReclaimed,
			LeaseRenewalMsg: renewals,
		})
	}
	return rows, nil
}

// ---- mutator disruption -------------------------------------------------------
//
// §4: "The most relevant performance results ... are those related to
// phases critical to applications performance: i) stub/scion creation ...
// and ii) snapshot serialization. These phases could delay and potentially
// disrupt the mutator." Table 1 covers (i); this experiment covers (ii):
// the pause a snapshot imposes, per codec, against the invocation latency
// the mutator sees.

// DisruptionRow reports one codec's snapshot pause on a given heap size.
type DisruptionRow struct {
	Codec         string // "none", "binary", "reflect"
	HeapObjects   int
	SnapshotPause time.Duration // one Summarize() call
	InvokeLatency time.Duration // mean RPC round trip between snapshots
}

// Disruption measures snapshot pauses and invocation latency for each
// snapshot codec on a server with heapObjects live objects.
func Disruption(heapObjects, invokes int) ([]DisruptionRow, error) {
	if invokes < 1 {
		invokes = 1
	}
	codecs := []struct {
		name  string
		codec snapshot.Codec
	}{
		{"none", nil},
		{"binary", snapshot.BinaryCodec{}},
		{"reflect", snapshot.ReflectCodec{}},
	}
	var rows []DisruptionRow
	for _, cd := range codecs {
		serverCfg := node.Config{Codec: cd.codec}
		c := cluster.New(1, node.Config{})
		client := c.Add("client", node.Config{})
		server := c.Add("server", serverCfg)

		var anchor ids.ObjID
		server.With(func(m node.Mutator) {
			anchor = m.Alloc(nil)
			if err := m.Root(anchor); err != nil {
				panic(err)
			}
			prev := anchor
			for i := 1; i < heapObjects; i++ {
				o := m.Alloc(nil)
				if err := m.Link(prev, o); err != nil {
					panic(err)
				}
				prev = o
			}
		})
		var holder ids.ObjID
		client.With(func(m node.Mutator) {
			holder = m.Alloc(nil)
			if err := m.Root(holder); err != nil {
				panic(err)
			}
		})
		if err := c.Connect("client", holder, "server", anchor); err != nil {
			return nil, err
		}
		target := ids.GlobalRef{Node: "server", Obj: anchor}

		// Warm-up. The touch afterwards advances the heap's mutation epoch
		// so the timed run below actually rebuilds instead of hitting the
		// summarization cache.
		if err := server.Summarize(); err != nil {
			return nil, err
		}
		server.With(func(m node.Mutator) {
			if err := m.SetPayload(anchor, nil); err != nil {
				panic(err)
			}
		})

		start := time.Now()
		if err := server.Summarize(); err != nil {
			return nil, err
		}
		pause := time.Since(start)

		start = time.Now()
		for i := 0; i < invokes; i++ {
			ok := false
			if err := client.Invoke(target, "noop", nil, func(_ node.Mutator, r node.Reply) { ok = r.OK }); err != nil {
				return nil, err
			}
			c.Settle()
			if !ok {
				return nil, fmt.Errorf("experiments: disruption invoke failed")
			}
		}
		lat := time.Since(start) / time.Duration(invokes)

		rows = append(rows, DisruptionRow{
			Codec:         cd.name,
			HeapObjects:   heapObjects,
			SnapshotPause: pause,
			InvokeLatency: lat,
		})
	}
	return rows, nil
}
