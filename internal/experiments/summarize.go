package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dgc/internal/cluster"
	"dgc/internal/heap"
	"dgc/internal/ids"
	"dgc/internal/node"
	"dgc/internal/refs"
	"dgc/internal/snapshot"
	"dgc/internal/workload"
)

// BuildSummarizeHeap constructs the summarization stress graph shared by
// BenchmarkSummarize, the dgc-bench summarize experiment and the
// summarizer equivalence tests: `objects` objects on one process with a
// spine chain (so scions near the head reach almost the whole heap), one
// extra random edge per object, a remote reference every 32 objects (the
// stub population) and `scions` incoming references spread evenly across
// the heap. Deterministic for a given (objects, scions).
func BuildSummarizeHeap(objects, scions int) (*heap.Heap, *refs.Table) {
	rng := rand.New(rand.NewSource(42))
	h := heap.New("P1")
	tb := refs.NewTable("P1")

	objs := make([]ids.ObjID, objects)
	for i := range objs {
		objs[i] = h.Alloc(nil).ID
	}
	// Spine: object i -> i+1, making per-scion reachability deep.
	for i := 1; i < objects; i++ {
		if err := h.AddLocalRef(objs[i-1], objs[i]); err != nil {
			panic(err)
		}
	}
	// One extra random edge per object (cycles included).
	for i := 0; i < objects; i++ {
		if err := h.AddLocalRef(objs[rng.Intn(objects)], objs[rng.Intn(objects)]); err != nil {
			panic(err)
		}
	}
	// Remote references: one stub-holding object every 32, across 4 peers.
	peers := []ids.NodeID{"P2", "P3", "P4", "P5"}
	for i := 0; i < objects; i += 32 {
		tgt := ids.GlobalRef{Node: peers[rng.Intn(len(peers))], Obj: ids.ObjID(rng.Intn(64))}
		if err := h.AddRemoteRef(objs[i], tgt); err != nil {
			panic(err)
		}
		tb.EnsureStub(tgt)
	}
	// Scions spread evenly over the heap from 3 source processes.
	srcs := []ids.NodeID{"P2", "P3", "P4"}
	if scions > 0 {
		stride := objects / scions
		if stride == 0 {
			stride = 1
		}
		for s := 0; s < scions; s++ {
			tb.EnsureScion(srcs[s%len(srcs)], objs[(s*stride)%objects])
		}
	}
	// A small rooted region at the head of the spine.
	if err := h.AddRoot(objs[0]); err != nil {
		panic(err)
	}
	return h, tb
}

// SummarizeRow is one cell of the summarization scaling matrix.
type SummarizeRow struct {
	Objects  int           `json:"objects"`
	Scions   int           `json:"scions"`
	Duration time.Duration `json:"ns"`
}

// SummarizeScale measures graph summarization across a heap-size × scion
// matrix: the cost model the single-pass engine changes from O(S × (V+E))
// to O(V + E × S/64). Each cell reports the best of reps runs.
func SummarizeScale(objects, scions []int, reps int) ([]SummarizeRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []SummarizeRow
	for _, o := range objects {
		for _, s := range scions {
			h, tb := BuildSummarizeHeap(o, s)
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				sum := snapshot.Summarize(h, tb, uint64(r+1))
				d := time.Since(start)
				if len(sum.Scions) != tb.NumScions() {
					return nil, fmt.Errorf("experiments: summarize %d/%d: %d scion summaries, want %d",
						o, s, len(sum.Scions), tb.NumScions())
				}
				if best == 0 || d < best {
					best = d
				}
			}
			rows = append(rows, SummarizeRow{Objects: o, Scions: s, Duration: best})
		}
	}
	return rows, nil
}

// SummarizeBaseline returns the recorded timings of the retired per-scion
// BFS engine on the same BuildSummarizeHeap matrix (BenchmarkSummarize at
// the pre-rewrite revision, Intel Xeon @ 2.10 GHz). Kept as data so
// BENCH_summarize.json always carries the before/after comparison the
// single-pass engine is judged against.
func SummarizeBaseline() []SummarizeRow {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	return []SummarizeRow{
		{Objects: 1000, Scions: 4, Duration: ms(1.60)},
		{Objects: 1000, Scions: 64, Duration: ms(16.6)},
		{Objects: 1000, Scions: 512, Duration: ms(124.7)},
		{Objects: 10000, Scions: 4, Duration: ms(50.9)},
		{Objects: 10000, Scions: 64, Duration: ms(257)},
		{Objects: 10000, Scions: 512, Duration: ms(1854.7)},
		{Objects: 100000, Scions: 4, Duration: ms(870)},
		{Objects: 100000, Scions: 64, Duration: ms(5120)},
		{Objects: 100000, Scions: 512, Duration: ms(34400)},
	}
}

// GCRoundRow is one cell of the cluster GC-round scaling measurement.
type GCRoundRow struct {
	Procs   int           `json:"procs"`
	Workers int           `json:"workers"`
	Round   time.Duration `json:"round_ns"`
}

// GCRoundScale measures the wall-clock cost of one fully-settled GC round
// on an n-process live ring with per-node local churn, across a worker-pool
// matrix from the sequential schedule (workers=1) through fixed pool sizes
// to the full pool (workers=0): the scaling curve of the node-parallel
// phases. Pool sizes above the process count are skipped — runPhase clamps
// the pool to the node count, so those cells would duplicate the full-pool
// row.
func GCRoundScale(procs []int, rounds int) ([]GCRoundRow, error) {
	if rounds < 1 {
		rounds = 1
	}
	var rows []GCRoundRow
	for _, p := range procs {
		for _, workers := range []int{1, 2, 4, 8, 0} {
			if workers > p {
				continue
			}
			c := cluster.New(11, node.Config{})
			c.SetWorkers(workers)
			if _, err := c.Materialize(workload.LiveRing(p, 2), node.Config{}); err != nil {
				return nil, err
			}
			// Bulk each node with a rooted local chain so per-node phases
			// have real work to overlap.
			for _, n := range c.Nodes() {
				n.With(func(m node.Mutator) {
					prev := m.Alloc(nil)
					if err := m.Root(prev); err != nil {
						panic(err)
					}
					for i := 1; i < 2000; i++ {
						o := m.Alloc(nil)
						if err := m.Link(prev, o); err != nil {
							panic(err)
						}
						prev = o
					}
				})
			}
			c.GCRound() // warm-up
			best := time.Duration(0)
			for r := 0; r < rounds; r++ {
				// Churn: a short unrooted garbage chain per node, so every
				// round's LGC and summarization do fresh work.
				for _, n := range c.Nodes() {
					n.With(func(m node.Mutator) {
						prev := m.Alloc(nil)
						for i := 0; i < 50; i++ {
							o := m.Alloc(nil)
							if err := m.Link(prev, o); err != nil {
								panic(err)
							}
							prev = o
						}
					})
				}
				start := time.Now()
				c.GCRound()
				d := time.Since(start)
				if best == 0 || d < best {
					best = d
				}
			}
			rows = append(rows, GCRoundRow{Procs: p, Workers: workers, Round: best})
		}
	}
	return rows, nil
}
