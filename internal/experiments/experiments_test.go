package experiments

import (
	"testing"

	"dgc/internal/workload"
)

func TestTable1ShapesMatchPaper(t *testing.T) {
	// Small call counts keep the test fast; the paper's observation is the
	// SHAPE: DGC adds a bounded relative overhead per call.
	rows, err := Table1([]int{10, 50}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Plain <= 0 || r.WithDGC <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		if r.WithDGC < r.Plain {
			t.Logf("note: DGC faster than plain on %d calls (noise at this scale)", r.Calls)
		}
		// Paper band: 7-21%. Allow a broad sanity band here: the overhead
		// must not be an order of magnitude.
		if r.VariationPct > 400 {
			t.Errorf("overhead %.1f%% looks pathological: %+v", r.VariationPct, r)
		}
	}
}

func TestRMIWorkloadCreatesScionsPerCall(t *testing.T) {
	w, err := NewRMIWorkload(10, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Call(); err != nil {
			t.Fatal(err)
		}
	}
	// 10 fresh scions per call at the client (the exported args) plus the
	// bootstrap scion for the server anchor.
	if got := w.client.NumScions(); got != 30 {
		t.Fatalf("client scions = %d, want 30", got)
	}
}

func TestSerializationShapesMatchPaper(t *testing.T) {
	rows, err := Serialization(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]SerializationRow{}
	for _, r := range rows {
		key := r.Codec
		if r.WithStubs {
			key += "+stubs"
		}
		byKey[key] = r
	}
	// Shape 1: stubs add cost, but less than doubling (paper: +73%).
	for _, codec := range []string{"reflect", "binary"} {
		base, stubs := byKey[codec], byKey[codec+"+stubs"]
		if stubs.Duration <= base.Duration {
			t.Logf("note: %s stubs not slower at this size (noise)", codec)
		}
		if stubs.Duration > base.Duration*4 {
			t.Errorf("%s: stubs quadrupled cost: %v vs %v", codec, stubs.Duration, base.Duration)
		}
	}
	// Shape 2: the naive codec is much slower than the binary codec
	// (paper: ~100x between Rotor and production .NET).
	if byKey["reflect"].Duration < byKey["binary"].Duration*2 {
		t.Errorf("reflect (%v) not clearly slower than binary (%v)",
			byKey["reflect"].Duration, byKey["binary"].Duration)
	}
	// And bigger on the wire.
	if byKey["reflect"].Bytes <= byKey["binary"].Bytes {
		t.Errorf("reflect bytes %d <= binary bytes %d", byKey["reflect"].Bytes, byKey["binary"].Bytes)
	}
}

func TestDetectionScaleGrowsLinearly(t *testing.T) {
	rows, err := DetectionScale([]int{2, 4, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// CDMs per completed detection grow with ring length, sub-quadratically
	// in these sizes.
	if rows[2].CDMsSent <= rows[0].CDMsSent {
		t.Errorf("CDMs did not grow with ring size: %+v", rows)
	}
	if rows[2].CDMsSent > rows[0].CDMsSent*64 {
		t.Errorf("CDM growth looks super-linear: %+v", rows)
	}
	for _, r := range rows {
		if r.RoundsToEmpty <= 0 {
			t.Errorf("ring %d uncollected: %+v", r.Procs, r)
		}
	}
}

func TestCompareCollectorsAllComplete(t *testing.T) {
	rows, err := CompareCollectors(workload.Figure3(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Collected {
			t.Errorf("%s did not collect figure3: %+v", r.Collector, r)
		}
		if r.Messages == 0 {
			t.Errorf("%s reported zero messages", r.Collector)
		}
	}
}

func TestQuiescentCostShape(t *testing.T) {
	// On a fully live world, Hughes keeps paying; the DCDA pays only the
	// reference-listing heartbeat and no CDMs.
	rows, err := QuiescentCost(workload.LiveRing(4, 2), 10)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CompareRow{}
	for _, r := range rows {
		byName[r.Collector] = r
	}
	if byName["hughes"].Messages <= byName["dcda"].Messages {
		t.Errorf("expected Hughes to cost more when quiescent: hughes=%d dcda=%d",
			byName["hughes"].Messages, byName["dcda"].Messages)
	}
}

func TestLossSweepDegradesGracefully(t *testing.T) {
	rows, err := LossSweep([]float64{0, 0.3}, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Collected {
			t.Errorf("loss %.0f%%: not collected in %d rounds", r.LossRate*100, r.Rounds)
		}
	}
	if rows[1].Rounds < rows[0].Rounds {
		t.Logf("note: lossy run finished faster (seeded luck): %+v", rows)
	}
}

func TestAblationBroadcastNotSlower(t *testing.T) {
	rows, err := AblationDeleteMode([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int{}
	for _, r := range rows {
		byKey[r.Mode+string(rune('0'+r.Procs))] = r.RoundsToEmpty
	}
	for _, p := range []byte{'4', '8'} {
		if byKey["broadcast"+string(p)] > byKey["cascade"+string(p)] {
			t.Errorf("broadcast slower than cascade at %c procs: %+v", p, rows)
		}
	}
	// Cascade latency grows with ring size; broadcast stays flat-ish.
	if byKey["cascade8"] <= byKey["cascade4"] {
		t.Errorf("cascade latency did not grow with ring size: %+v", rows)
	}
}

func TestRaceAbortRateSafety(t *testing.T) {
	rows, err := RaceAbortRate([]int{0, 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FalsePositives != 0 {
			t.Fatalf("SAFETY: %d live objects reclaimed: %+v", r.FalsePositives, r)
		}
		if r.CyclesFound != 0 {
			t.Fatalf("SAFETY: live ring declared garbage: %+v", r)
		}
	}
	// With migrations racing the detections, counter mismatches must abort
	// at least some of them; without migrations, none abort.
	if rows[0].Aborted != 0 {
		t.Errorf("quiescent run aborted detections: %+v", rows[0])
	}
	if rows[1].Aborted == 0 {
		t.Errorf("racing run produced no aborts: %+v", rows[1])
	}
}
