package experiments

import (
	"fmt"
	"time"

	"dgc/internal/cluster"
	"dgc/internal/node"
	"dgc/internal/workload"
)

// BatchRow is one cell of the batched-detection sweep: a full collection of
// one workload at one candidate count under one detection mode, reporting
// the transport-level CDM traffic (the number batching reduces) next to the
// per-detection derivation count (which batching must NOT change much — the
// same protocol work happens, repackaged).
type BatchRow struct {
	Workload   string        `json:"workload"`
	Candidates int           `json:"candidates"`
	Mode       string        `json:"mode"`
	CDMMsgs    uint64        `json:"cdm_msgs_sent"` // transport messages (CDM + BatchCDM)
	BatchCDMs  uint64        `json:"batch_cdms"`
	Sections   uint64        `json:"batch_sections"`
	Derived    uint64        `json:"cdms_derived"` // detector derivations
	Rounds     int           `json:"rounds"`
	Wall       time.Duration `json:"wall_ns"`
	Collected  bool          `json:"collected"`
}

// BatchModes are the detection modes the sweep compares.
var BatchModes = []string{"unbatched", "batched", "batched+agg"}

func batchModeConfig(mode string) node.Config {
	var cfg node.Config
	switch mode {
	case "batched":
		cfg.BatchDetection = node.Bool(true)
	case "batched+agg":
		cfg.BatchDetection = node.Bool(true)
		cfg.AggregateDetection = true
	default:
		cfg.BatchDetection = node.Bool(false)
	}
	return cfg
}

// batchTopology builds the sweep workload for one family and candidate
// count. "ring" is the shared-trunk ring: cands cycles threaded through one
// ring of processes, every detection exiting the first process via the same
// reference. "webgraph" is a seeded web of overlapping cycles with the
// candidate count controlled by the cycle count.
func batchTopology(family string, cands, procs int) (*workload.Topology, error) {
	switch family {
	case "ring":
		return workload.SharedTrunk(cands, procs), nil
	case "webgraph":
		cycles := cands / 4
		if cycles < 1 {
			cycles = 1
		}
		return workload.WebGraph(int64(17+cands), procs, cycles, cycles), nil
	}
	return nil, fmt.Errorf("experiments: unknown batch workload %q", family)
}

// DetectBatchSweep runs the candidate-count × mode matrix over the ring and
// webgraph families: the measurement behind the claim that batching makes
// detection traffic sublinear in the candidate count when many candidates
// share outgoing references.
func DetectBatchSweep(candCounts []int, procs, maxRounds int) ([]BatchRow, error) {
	var rows []BatchRow
	for _, family := range []string{"ring", "webgraph"} {
		for _, cands := range candCounts {
			topo, err := batchTopology(family, cands, procs)
			if err != nil {
				return nil, err
			}
			for _, mode := range BatchModes {
				cfg := batchModeConfig(mode)
				c := cluster.New(1, cfg)
				c.SetWorkers(1) // sequential: measure traffic, not the pool
				if _, err := c.Materialize(topo, cfg); err != nil {
					return nil, err
				}
				start := time.Now()
				rounds, stalled, prev := 0, 0, -1
				for c.TotalObjects() > 0 && rounds < maxRounds && stalled < 5 {
					c.GCRound()
					rounds++
					if cur := c.TotalObjects() + c.TotalScions(); cur == prev {
						stalled++ // known-stalling cells exit early, honestly uncollected
					} else {
						stalled, prev = 0, cur
					}
				}
				row := BatchRow{
					Workload:   family,
					Candidates: cands,
					Mode:       mode,
					Rounds:     rounds,
					Wall:       time.Since(start),
					Collected:  c.TotalObjects() == 0,
				}
				for _, s := range c.Stats() {
					row.CDMMsgs += s.CDMMsgsSent
					row.BatchCDMs += s.BatchCDMsSent
					row.Sections += s.BatchSectionsSent
					row.Derived += s.Detector.CDMsSent
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
